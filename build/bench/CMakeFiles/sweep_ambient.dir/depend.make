# Empty dependencies file for sweep_ambient.
# This may be replaced when dependencies are built.
