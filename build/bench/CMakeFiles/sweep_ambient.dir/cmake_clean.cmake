file(REMOVE_RECURSE
  "CMakeFiles/sweep_ambient.dir/sweep_ambient.cpp.o"
  "CMakeFiles/sweep_ambient.dir/sweep_ambient.cpp.o.d"
  "sweep_ambient"
  "sweep_ambient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_ambient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
