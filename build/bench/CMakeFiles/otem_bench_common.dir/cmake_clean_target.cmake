file(REMOVE_RECURSE
  "../lib/libotem_bench_common.a"
)
