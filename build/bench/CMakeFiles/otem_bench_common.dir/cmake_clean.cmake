file(REMOVE_RECURSE
  "../lib/libotem_bench_common.a"
  "../lib/libotem_bench_common.pdb"
  "CMakeFiles/otem_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/otem_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otem_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
