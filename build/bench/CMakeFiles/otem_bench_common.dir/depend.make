# Empty dependencies file for otem_bench_common.
# This may be replaced when dependencies are built.
