file(REMOVE_RECURSE
  "CMakeFiles/ablation_battery_fidelity.dir/ablation_battery_fidelity.cpp.o"
  "CMakeFiles/ablation_battery_fidelity.dir/ablation_battery_fidelity.cpp.o.d"
  "ablation_battery_fidelity"
  "ablation_battery_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_battery_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
