# Empty compiler generated dependencies file for ablation_battery_fidelity.
# This may be replaced when dependencies are built.
