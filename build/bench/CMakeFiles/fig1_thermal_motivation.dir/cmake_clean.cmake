file(REMOVE_RECURSE
  "CMakeFiles/fig1_thermal_motivation.dir/fig1_thermal_motivation.cpp.o"
  "CMakeFiles/fig1_thermal_motivation.dir/fig1_thermal_motivation.cpp.o.d"
  "fig1_thermal_motivation"
  "fig1_thermal_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_thermal_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
