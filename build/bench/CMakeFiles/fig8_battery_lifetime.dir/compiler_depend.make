# Empty compiler generated dependencies file for fig8_battery_lifetime.
# This may be replaced when dependencies are built.
