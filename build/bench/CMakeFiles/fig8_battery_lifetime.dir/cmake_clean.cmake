file(REMOVE_RECURSE
  "CMakeFiles/fig8_battery_lifetime.dir/fig8_battery_lifetime.cpp.o"
  "CMakeFiles/fig8_battery_lifetime.dir/fig8_battery_lifetime.cpp.o.d"
  "fig8_battery_lifetime"
  "fig8_battery_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_battery_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
