# Empty compiler generated dependencies file for fig7_teb_preparation.
# This may be replaced when dependencies are built.
