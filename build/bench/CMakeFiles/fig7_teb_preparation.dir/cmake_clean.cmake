file(REMOVE_RECURSE
  "CMakeFiles/fig7_teb_preparation.dir/fig7_teb_preparation.cpp.o"
  "CMakeFiles/fig7_teb_preparation.dir/fig7_teb_preparation.cpp.o.d"
  "fig7_teb_preparation"
  "fig7_teb_preparation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_teb_preparation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
