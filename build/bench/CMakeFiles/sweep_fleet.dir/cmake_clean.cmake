file(REMOVE_RECURSE
  "CMakeFiles/sweep_fleet.dir/sweep_fleet.cpp.o"
  "CMakeFiles/sweep_fleet.dir/sweep_fleet.cpp.o.d"
  "sweep_fleet"
  "sweep_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
