# Empty dependencies file for sweep_fleet.
# This may be replaced when dependencies are built.
