file(REMOVE_RECURSE
  "CMakeFiles/table1_ucap_size_sweep.dir/table1_ucap_size_sweep.cpp.o"
  "CMakeFiles/table1_ucap_size_sweep.dir/table1_ucap_size_sweep.cpp.o.d"
  "table1_ucap_size_sweep"
  "table1_ucap_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ucap_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
