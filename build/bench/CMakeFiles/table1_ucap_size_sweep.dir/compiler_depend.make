# Empty compiler generated dependencies file for table1_ucap_size_sweep.
# This may be replaced when dependencies are built.
