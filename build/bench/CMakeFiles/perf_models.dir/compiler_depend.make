# Empty compiler generated dependencies file for perf_models.
# This may be replaced when dependencies are built.
