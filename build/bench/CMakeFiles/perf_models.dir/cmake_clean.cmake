file(REMOVE_RECURSE
  "CMakeFiles/perf_models.dir/perf_models.cpp.o"
  "CMakeFiles/perf_models.dir/perf_models.cpp.o.d"
  "perf_models"
  "perf_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
