file(REMOVE_RECURSE
  "CMakeFiles/fig6_temperature_traces.dir/fig6_temperature_traces.cpp.o"
  "CMakeFiles/fig6_temperature_traces.dir/fig6_temperature_traces.cpp.o.d"
  "fig6_temperature_traces"
  "fig6_temperature_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_temperature_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
