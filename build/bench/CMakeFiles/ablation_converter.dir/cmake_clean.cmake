file(REMOVE_RECURSE
  "CMakeFiles/ablation_converter.dir/ablation_converter.cpp.o"
  "CMakeFiles/ablation_converter.dir/ablation_converter.cpp.o.d"
  "ablation_converter"
  "ablation_converter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_converter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
