# Empty compiler generated dependencies file for ablation_converter.
# This may be replaced when dependencies are built.
