file(REMOVE_RECURSE
  "CMakeFiles/fig9_power_consumption.dir/fig9_power_consumption.cpp.o"
  "CMakeFiles/fig9_power_consumption.dir/fig9_power_consumption.cpp.o.d"
  "fig9_power_consumption"
  "fig9_power_consumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_power_consumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
