file(REMOVE_RECURSE
  "CMakeFiles/test_optim_linalg.dir/test_optim_linalg.cpp.o"
  "CMakeFiles/test_optim_linalg.dir/test_optim_linalg.cpp.o.d"
  "test_optim_linalg"
  "test_optim_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optim_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
