# Empty dependencies file for test_optim_linalg.
# This may be replaced when dependencies are built.
