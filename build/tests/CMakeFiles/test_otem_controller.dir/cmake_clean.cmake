file(REMOVE_RECURSE
  "CMakeFiles/test_otem_controller.dir/test_otem_controller.cpp.o"
  "CMakeFiles/test_otem_controller.dir/test_otem_controller.cpp.o.d"
  "test_otem_controller"
  "test_otem_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otem_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
