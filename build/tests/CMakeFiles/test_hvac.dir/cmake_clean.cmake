file(REMOVE_RECURSE
  "CMakeFiles/test_hvac.dir/test_hvac.cpp.o"
  "CMakeFiles/test_hvac.dir/test_hvac.cpp.o.d"
  "test_hvac"
  "test_hvac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hvac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
