# Empty dependencies file for test_hvac.
# This may be replaced when dependencies are built.
