# Empty dependencies file for test_thermal_properties.
# This may be replaced when dependencies are built.
