file(REMOVE_RECURSE
  "CMakeFiles/test_thermal_properties.dir/test_thermal_properties.cpp.o"
  "CMakeFiles/test_thermal_properties.dir/test_thermal_properties.cpp.o.d"
  "test_thermal_properties"
  "test_thermal_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermal_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
