file(REMOVE_RECURSE
  "CMakeFiles/test_battery_properties.dir/test_battery_properties.cpp.o"
  "CMakeFiles/test_battery_properties.dir/test_battery_properties.cpp.o.d"
  "test_battery_properties"
  "test_battery_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_battery_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
