# Empty dependencies file for test_battery_properties.
# This may be replaced when dependencies are built.
