# Empty dependencies file for test_teb.
# This may be replaced when dependencies are built.
