file(REMOVE_RECURSE
  "CMakeFiles/test_teb.dir/test_teb.cpp.o"
  "CMakeFiles/test_teb.dir/test_teb.cpp.o.d"
  "test_teb"
  "test_teb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_teb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
