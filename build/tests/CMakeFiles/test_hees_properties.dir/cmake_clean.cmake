file(REMOVE_RECURSE
  "CMakeFiles/test_hees_properties.dir/test_hees_properties.cpp.o"
  "CMakeFiles/test_hees_properties.dir/test_hees_properties.cpp.o.d"
  "test_hees_properties"
  "test_hees_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hees_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
