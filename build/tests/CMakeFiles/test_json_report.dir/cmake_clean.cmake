file(REMOVE_RECURSE
  "CMakeFiles/test_json_report.dir/test_json_report.cpp.o"
  "CMakeFiles/test_json_report.dir/test_json_report.cpp.o.d"
  "test_json_report"
  "test_json_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_json_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
