# Empty dependencies file for test_ultracap.
# This may be replaced when dependencies are built.
