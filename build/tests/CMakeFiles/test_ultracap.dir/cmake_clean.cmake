file(REMOVE_RECURSE
  "CMakeFiles/test_ultracap.dir/test_ultracap.cpp.o"
  "CMakeFiles/test_ultracap.dir/test_ultracap.cpp.o.d"
  "test_ultracap"
  "test_ultracap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ultracap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
