# Empty dependencies file for test_powertrain_properties.
# This may be replaced when dependencies are built.
