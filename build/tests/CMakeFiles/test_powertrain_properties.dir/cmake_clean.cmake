file(REMOVE_RECURSE
  "CMakeFiles/test_powertrain_properties.dir/test_powertrain_properties.cpp.o"
  "CMakeFiles/test_powertrain_properties.dir/test_powertrain_properties.cpp.o.d"
  "test_powertrain_properties"
  "test_powertrain_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_powertrain_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
