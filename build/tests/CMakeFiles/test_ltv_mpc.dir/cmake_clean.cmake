file(REMOVE_RECURSE
  "CMakeFiles/test_ltv_mpc.dir/test_ltv_mpc.cpp.o"
  "CMakeFiles/test_ltv_mpc.dir/test_ltv_mpc.cpp.o.d"
  "test_ltv_mpc"
  "test_ltv_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ltv_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
