# Empty compiler generated dependencies file for test_ltv_mpc.
# This may be replaced when dependencies are built.
