file(REMOVE_RECURSE
  "CMakeFiles/test_rc_model.dir/test_rc_model.cpp.o"
  "CMakeFiles/test_rc_model.dir/test_rc_model.cpp.o.d"
  "test_rc_model"
  "test_rc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
