
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_matrix_sweep.cpp" "tests/CMakeFiles/test_matrix_sweep.dir/test_matrix_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_matrix_sweep.dir/test_matrix_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/otem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/otem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hees/CMakeFiles/otem_hees.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/otem_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/ultracap/CMakeFiles/otem_ultracap.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/otem_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/otem_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/otem_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/otem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
