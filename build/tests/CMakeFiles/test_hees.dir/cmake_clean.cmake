file(REMOVE_RECURSE
  "CMakeFiles/test_hees.dir/test_hees.cpp.o"
  "CMakeFiles/test_hees.dir/test_hees.cpp.o.d"
  "test_hees"
  "test_hees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
