# Empty compiler generated dependencies file for test_hees.
# This may be replaced when dependencies are built.
