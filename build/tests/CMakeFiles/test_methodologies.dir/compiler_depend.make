# Empty compiler generated dependencies file for test_methodologies.
# This may be replaced when dependencies are built.
