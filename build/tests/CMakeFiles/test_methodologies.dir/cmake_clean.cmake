file(REMOVE_RECURSE
  "CMakeFiles/test_methodologies.dir/test_methodologies.cpp.o"
  "CMakeFiles/test_methodologies.dir/test_methodologies.cpp.o.d"
  "test_methodologies"
  "test_methodologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_methodologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
