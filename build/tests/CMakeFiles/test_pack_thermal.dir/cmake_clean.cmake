file(REMOVE_RECURSE
  "CMakeFiles/test_pack_thermal.dir/test_pack_thermal.cpp.o"
  "CMakeFiles/test_pack_thermal.dir/test_pack_thermal.cpp.o.d"
  "test_pack_thermal"
  "test_pack_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pack_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
