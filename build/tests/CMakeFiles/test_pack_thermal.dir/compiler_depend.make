# Empty compiler generated dependencies file for test_pack_thermal.
# This may be replaced when dependencies are built.
