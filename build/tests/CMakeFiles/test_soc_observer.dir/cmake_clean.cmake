file(REMOVE_RECURSE
  "CMakeFiles/test_soc_observer.dir/test_soc_observer.cpp.o"
  "CMakeFiles/test_soc_observer.dir/test_soc_observer.cpp.o.d"
  "test_soc_observer"
  "test_soc_observer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soc_observer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
