# Empty dependencies file for test_charge_planner.
# This may be replaced when dependencies are built.
