file(REMOVE_RECURSE
  "CMakeFiles/test_charge_planner.dir/test_charge_planner.cpp.o"
  "CMakeFiles/test_charge_planner.dir/test_charge_planner.cpp.o.d"
  "test_charge_planner"
  "test_charge_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charge_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
