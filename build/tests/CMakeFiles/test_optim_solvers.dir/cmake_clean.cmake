file(REMOVE_RECURSE
  "CMakeFiles/test_optim_solvers.dir/test_optim_solvers.cpp.o"
  "CMakeFiles/test_optim_solvers.dir/test_optim_solvers.cpp.o.d"
  "test_optim_solvers"
  "test_optim_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optim_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
