# Empty dependencies file for test_optim_solvers.
# This may be replaced when dependencies are built.
