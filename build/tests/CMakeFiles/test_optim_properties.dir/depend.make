# Empty dependencies file for test_optim_properties.
# This may be replaced when dependencies are built.
