file(REMOVE_RECURSE
  "CMakeFiles/test_optim_properties.dir/test_optim_properties.cpp.o"
  "CMakeFiles/test_optim_properties.dir/test_optim_properties.cpp.o.d"
  "test_optim_properties"
  "test_optim_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optim_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
