# Empty compiler generated dependencies file for test_mpc_problem.
# This may be replaced when dependencies are built.
