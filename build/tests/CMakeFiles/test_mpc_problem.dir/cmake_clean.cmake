file(REMOVE_RECURSE
  "CMakeFiles/test_mpc_problem.dir/test_mpc_problem.cpp.o"
  "CMakeFiles/test_mpc_problem.dir/test_mpc_problem.cpp.o.d"
  "test_mpc_problem"
  "test_mpc_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpc_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
