file(REMOVE_RECURSE
  "CMakeFiles/test_mpc_behaviour.dir/test_mpc_behaviour.cpp.o"
  "CMakeFiles/test_mpc_behaviour.dir/test_mpc_behaviour.cpp.o.d"
  "test_mpc_behaviour"
  "test_mpc_behaviour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpc_behaviour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
