# Empty dependencies file for test_mpc_behaviour.
# This may be replaced when dependencies are built.
