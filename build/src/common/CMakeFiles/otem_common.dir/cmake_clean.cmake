file(REMOVE_RECURSE
  "CMakeFiles/otem_common.dir/config.cpp.o"
  "CMakeFiles/otem_common.dir/config.cpp.o.d"
  "CMakeFiles/otem_common.dir/csv.cpp.o"
  "CMakeFiles/otem_common.dir/csv.cpp.o.d"
  "CMakeFiles/otem_common.dir/interp.cpp.o"
  "CMakeFiles/otem_common.dir/interp.cpp.o.d"
  "CMakeFiles/otem_common.dir/json.cpp.o"
  "CMakeFiles/otem_common.dir/json.cpp.o.d"
  "CMakeFiles/otem_common.dir/logging.cpp.o"
  "CMakeFiles/otem_common.dir/logging.cpp.o.d"
  "CMakeFiles/otem_common.dir/rng.cpp.o"
  "CMakeFiles/otem_common.dir/rng.cpp.o.d"
  "CMakeFiles/otem_common.dir/strings.cpp.o"
  "CMakeFiles/otem_common.dir/strings.cpp.o.d"
  "CMakeFiles/otem_common.dir/timeseries.cpp.o"
  "CMakeFiles/otem_common.dir/timeseries.cpp.o.d"
  "libotem_common.a"
  "libotem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otem_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
