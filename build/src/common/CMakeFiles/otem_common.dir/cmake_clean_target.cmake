file(REMOVE_RECURSE
  "libotem_common.a"
)
