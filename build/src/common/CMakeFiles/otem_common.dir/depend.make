# Empty dependencies file for otem_common.
# This may be replaced when dependencies are built.
