
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/cooling_system.cpp" "src/thermal/CMakeFiles/otem_thermal.dir/cooling_system.cpp.o" "gcc" "src/thermal/CMakeFiles/otem_thermal.dir/cooling_system.cpp.o.d"
  "/root/repo/src/thermal/pack_thermal.cpp" "src/thermal/CMakeFiles/otem_thermal.dir/pack_thermal.cpp.o" "gcc" "src/thermal/CMakeFiles/otem_thermal.dir/pack_thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/otem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
