file(REMOVE_RECURSE
  "libotem_thermal.a"
)
