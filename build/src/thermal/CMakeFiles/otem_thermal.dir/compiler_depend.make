# Empty compiler generated dependencies file for otem_thermal.
# This may be replaced when dependencies are built.
