file(REMOVE_RECURSE
  "CMakeFiles/otem_thermal.dir/cooling_system.cpp.o"
  "CMakeFiles/otem_thermal.dir/cooling_system.cpp.o.d"
  "CMakeFiles/otem_thermal.dir/pack_thermal.cpp.o"
  "CMakeFiles/otem_thermal.dir/pack_thermal.cpp.o.d"
  "libotem_thermal.a"
  "libotem_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otem_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
