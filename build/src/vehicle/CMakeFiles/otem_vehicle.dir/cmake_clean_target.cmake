file(REMOVE_RECURSE
  "libotem_vehicle.a"
)
