file(REMOVE_RECURSE
  "CMakeFiles/otem_vehicle.dir/drive_cycle.cpp.o"
  "CMakeFiles/otem_vehicle.dir/drive_cycle.cpp.o.d"
  "CMakeFiles/otem_vehicle.dir/hvac.cpp.o"
  "CMakeFiles/otem_vehicle.dir/hvac.cpp.o.d"
  "CMakeFiles/otem_vehicle.dir/powertrain.cpp.o"
  "CMakeFiles/otem_vehicle.dir/powertrain.cpp.o.d"
  "CMakeFiles/otem_vehicle.dir/route.cpp.o"
  "CMakeFiles/otem_vehicle.dir/route.cpp.o.d"
  "libotem_vehicle.a"
  "libotem_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otem_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
