
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vehicle/drive_cycle.cpp" "src/vehicle/CMakeFiles/otem_vehicle.dir/drive_cycle.cpp.o" "gcc" "src/vehicle/CMakeFiles/otem_vehicle.dir/drive_cycle.cpp.o.d"
  "/root/repo/src/vehicle/hvac.cpp" "src/vehicle/CMakeFiles/otem_vehicle.dir/hvac.cpp.o" "gcc" "src/vehicle/CMakeFiles/otem_vehicle.dir/hvac.cpp.o.d"
  "/root/repo/src/vehicle/powertrain.cpp" "src/vehicle/CMakeFiles/otem_vehicle.dir/powertrain.cpp.o" "gcc" "src/vehicle/CMakeFiles/otem_vehicle.dir/powertrain.cpp.o.d"
  "/root/repo/src/vehicle/route.cpp" "src/vehicle/CMakeFiles/otem_vehicle.dir/route.cpp.o" "gcc" "src/vehicle/CMakeFiles/otem_vehicle.dir/route.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/otem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
