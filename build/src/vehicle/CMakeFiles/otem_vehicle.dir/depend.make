# Empty dependencies file for otem_vehicle.
# This may be replaced when dependencies are built.
