file(REMOVE_RECURSE
  "libotem_core.a"
)
