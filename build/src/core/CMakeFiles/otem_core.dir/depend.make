# Empty dependencies file for otem_core.
# This may be replaced when dependencies are built.
