
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cooling_methodology.cpp" "src/core/CMakeFiles/otem_core.dir/cooling_methodology.cpp.o" "gcc" "src/core/CMakeFiles/otem_core.dir/cooling_methodology.cpp.o.d"
  "/root/repo/src/core/dual_methodology.cpp" "src/core/CMakeFiles/otem_core.dir/dual_methodology.cpp.o" "gcc" "src/core/CMakeFiles/otem_core.dir/dual_methodology.cpp.o.d"
  "/root/repo/src/core/forecast.cpp" "src/core/CMakeFiles/otem_core.dir/forecast.cpp.o" "gcc" "src/core/CMakeFiles/otem_core.dir/forecast.cpp.o.d"
  "/root/repo/src/core/otem/ltv_controller.cpp" "src/core/CMakeFiles/otem_core.dir/otem/ltv_controller.cpp.o" "gcc" "src/core/CMakeFiles/otem_core.dir/otem/ltv_controller.cpp.o.d"
  "/root/repo/src/core/otem/mpc_problem.cpp" "src/core/CMakeFiles/otem_core.dir/otem/mpc_problem.cpp.o" "gcc" "src/core/CMakeFiles/otem_core.dir/otem/mpc_problem.cpp.o.d"
  "/root/repo/src/core/otem/otem_controller.cpp" "src/core/CMakeFiles/otem_core.dir/otem/otem_controller.cpp.o" "gcc" "src/core/CMakeFiles/otem_core.dir/otem/otem_controller.cpp.o.d"
  "/root/repo/src/core/otem/otem_methodology.cpp" "src/core/CMakeFiles/otem_core.dir/otem/otem_methodology.cpp.o" "gcc" "src/core/CMakeFiles/otem_core.dir/otem/otem_methodology.cpp.o.d"
  "/root/repo/src/core/parallel_methodology.cpp" "src/core/CMakeFiles/otem_core.dir/parallel_methodology.cpp.o" "gcc" "src/core/CMakeFiles/otem_core.dir/parallel_methodology.cpp.o.d"
  "/root/repo/src/core/system_spec.cpp" "src/core/CMakeFiles/otem_core.dir/system_spec.cpp.o" "gcc" "src/core/CMakeFiles/otem_core.dir/system_spec.cpp.o.d"
  "/root/repo/src/core/teb.cpp" "src/core/CMakeFiles/otem_core.dir/teb.cpp.o" "gcc" "src/core/CMakeFiles/otem_core.dir/teb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/otem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/otem_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/otem_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/ultracap/CMakeFiles/otem_ultracap.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/otem_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/hees/CMakeFiles/otem_hees.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/otem_vehicle.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
