file(REMOVE_RECURSE
  "CMakeFiles/otem_core.dir/cooling_methodology.cpp.o"
  "CMakeFiles/otem_core.dir/cooling_methodology.cpp.o.d"
  "CMakeFiles/otem_core.dir/dual_methodology.cpp.o"
  "CMakeFiles/otem_core.dir/dual_methodology.cpp.o.d"
  "CMakeFiles/otem_core.dir/forecast.cpp.o"
  "CMakeFiles/otem_core.dir/forecast.cpp.o.d"
  "CMakeFiles/otem_core.dir/otem/ltv_controller.cpp.o"
  "CMakeFiles/otem_core.dir/otem/ltv_controller.cpp.o.d"
  "CMakeFiles/otem_core.dir/otem/mpc_problem.cpp.o"
  "CMakeFiles/otem_core.dir/otem/mpc_problem.cpp.o.d"
  "CMakeFiles/otem_core.dir/otem/otem_controller.cpp.o"
  "CMakeFiles/otem_core.dir/otem/otem_controller.cpp.o.d"
  "CMakeFiles/otem_core.dir/otem/otem_methodology.cpp.o"
  "CMakeFiles/otem_core.dir/otem/otem_methodology.cpp.o.d"
  "CMakeFiles/otem_core.dir/parallel_methodology.cpp.o"
  "CMakeFiles/otem_core.dir/parallel_methodology.cpp.o.d"
  "CMakeFiles/otem_core.dir/system_spec.cpp.o"
  "CMakeFiles/otem_core.dir/system_spec.cpp.o.d"
  "CMakeFiles/otem_core.dir/teb.cpp.o"
  "CMakeFiles/otem_core.dir/teb.cpp.o.d"
  "libotem_core.a"
  "libotem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
