file(REMOVE_RECURSE
  "CMakeFiles/otem_hees.dir/charge_planner.cpp.o"
  "CMakeFiles/otem_hees.dir/charge_planner.cpp.o.d"
  "CMakeFiles/otem_hees.dir/converter.cpp.o"
  "CMakeFiles/otem_hees.dir/converter.cpp.o.d"
  "CMakeFiles/otem_hees.dir/dual_arch.cpp.o"
  "CMakeFiles/otem_hees.dir/dual_arch.cpp.o.d"
  "CMakeFiles/otem_hees.dir/hybrid_arch.cpp.o"
  "CMakeFiles/otem_hees.dir/hybrid_arch.cpp.o.d"
  "CMakeFiles/otem_hees.dir/parallel_arch.cpp.o"
  "CMakeFiles/otem_hees.dir/parallel_arch.cpp.o.d"
  "libotem_hees.a"
  "libotem_hees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otem_hees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
