file(REMOVE_RECURSE
  "libotem_hees.a"
)
