# Empty dependencies file for otem_hees.
# This may be replaced when dependencies are built.
