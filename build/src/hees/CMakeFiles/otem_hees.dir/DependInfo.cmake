
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hees/charge_planner.cpp" "src/hees/CMakeFiles/otem_hees.dir/charge_planner.cpp.o" "gcc" "src/hees/CMakeFiles/otem_hees.dir/charge_planner.cpp.o.d"
  "/root/repo/src/hees/converter.cpp" "src/hees/CMakeFiles/otem_hees.dir/converter.cpp.o" "gcc" "src/hees/CMakeFiles/otem_hees.dir/converter.cpp.o.d"
  "/root/repo/src/hees/dual_arch.cpp" "src/hees/CMakeFiles/otem_hees.dir/dual_arch.cpp.o" "gcc" "src/hees/CMakeFiles/otem_hees.dir/dual_arch.cpp.o.d"
  "/root/repo/src/hees/hybrid_arch.cpp" "src/hees/CMakeFiles/otem_hees.dir/hybrid_arch.cpp.o" "gcc" "src/hees/CMakeFiles/otem_hees.dir/hybrid_arch.cpp.o.d"
  "/root/repo/src/hees/parallel_arch.cpp" "src/hees/CMakeFiles/otem_hees.dir/parallel_arch.cpp.o" "gcc" "src/hees/CMakeFiles/otem_hees.dir/parallel_arch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/otem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/otem_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/ultracap/CMakeFiles/otem_ultracap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
