# Empty dependencies file for otem_optim.
# This may be replaced when dependencies are built.
