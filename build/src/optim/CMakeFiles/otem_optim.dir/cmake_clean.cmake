file(REMOVE_RECURSE
  "CMakeFiles/otem_optim.dir/adam.cpp.o"
  "CMakeFiles/otem_optim.dir/adam.cpp.o.d"
  "CMakeFiles/otem_optim.dir/augmented_lagrangian.cpp.o"
  "CMakeFiles/otem_optim.dir/augmented_lagrangian.cpp.o.d"
  "CMakeFiles/otem_optim.dir/decomposition.cpp.o"
  "CMakeFiles/otem_optim.dir/decomposition.cpp.o.d"
  "CMakeFiles/otem_optim.dir/finite_diff.cpp.o"
  "CMakeFiles/otem_optim.dir/finite_diff.cpp.o.d"
  "CMakeFiles/otem_optim.dir/lbfgs.cpp.o"
  "CMakeFiles/otem_optim.dir/lbfgs.cpp.o.d"
  "CMakeFiles/otem_optim.dir/matrix.cpp.o"
  "CMakeFiles/otem_optim.dir/matrix.cpp.o.d"
  "CMakeFiles/otem_optim.dir/qp.cpp.o"
  "CMakeFiles/otem_optim.dir/qp.cpp.o.d"
  "CMakeFiles/otem_optim.dir/vector_ops.cpp.o"
  "CMakeFiles/otem_optim.dir/vector_ops.cpp.o.d"
  "libotem_optim.a"
  "libotem_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otem_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
