
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/adam.cpp" "src/optim/CMakeFiles/otem_optim.dir/adam.cpp.o" "gcc" "src/optim/CMakeFiles/otem_optim.dir/adam.cpp.o.d"
  "/root/repo/src/optim/augmented_lagrangian.cpp" "src/optim/CMakeFiles/otem_optim.dir/augmented_lagrangian.cpp.o" "gcc" "src/optim/CMakeFiles/otem_optim.dir/augmented_lagrangian.cpp.o.d"
  "/root/repo/src/optim/decomposition.cpp" "src/optim/CMakeFiles/otem_optim.dir/decomposition.cpp.o" "gcc" "src/optim/CMakeFiles/otem_optim.dir/decomposition.cpp.o.d"
  "/root/repo/src/optim/finite_diff.cpp" "src/optim/CMakeFiles/otem_optim.dir/finite_diff.cpp.o" "gcc" "src/optim/CMakeFiles/otem_optim.dir/finite_diff.cpp.o.d"
  "/root/repo/src/optim/lbfgs.cpp" "src/optim/CMakeFiles/otem_optim.dir/lbfgs.cpp.o" "gcc" "src/optim/CMakeFiles/otem_optim.dir/lbfgs.cpp.o.d"
  "/root/repo/src/optim/matrix.cpp" "src/optim/CMakeFiles/otem_optim.dir/matrix.cpp.o" "gcc" "src/optim/CMakeFiles/otem_optim.dir/matrix.cpp.o.d"
  "/root/repo/src/optim/qp.cpp" "src/optim/CMakeFiles/otem_optim.dir/qp.cpp.o" "gcc" "src/optim/CMakeFiles/otem_optim.dir/qp.cpp.o.d"
  "/root/repo/src/optim/vector_ops.cpp" "src/optim/CMakeFiles/otem_optim.dir/vector_ops.cpp.o" "gcc" "src/optim/CMakeFiles/otem_optim.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/otem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
