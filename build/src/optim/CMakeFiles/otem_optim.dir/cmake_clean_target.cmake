file(REMOVE_RECURSE
  "libotem_optim.a"
)
