# Empty compiler generated dependencies file for otem_sim.
# This may be replaced when dependencies are built.
