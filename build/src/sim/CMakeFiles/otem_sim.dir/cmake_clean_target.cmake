file(REMOVE_RECURSE
  "libotem_sim.a"
)
