file(REMOVE_RECURSE
  "CMakeFiles/otem_sim.dir/fleet.cpp.o"
  "CMakeFiles/otem_sim.dir/fleet.cpp.o.d"
  "CMakeFiles/otem_sim.dir/lifetime.cpp.o"
  "CMakeFiles/otem_sim.dir/lifetime.cpp.o.d"
  "CMakeFiles/otem_sim.dir/metrics.cpp.o"
  "CMakeFiles/otem_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/otem_sim.dir/report.cpp.o"
  "CMakeFiles/otem_sim.dir/report.cpp.o.d"
  "CMakeFiles/otem_sim.dir/simulator.cpp.o"
  "CMakeFiles/otem_sim.dir/simulator.cpp.o.d"
  "libotem_sim.a"
  "libotem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
