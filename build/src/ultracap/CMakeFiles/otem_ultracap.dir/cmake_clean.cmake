file(REMOVE_RECURSE
  "CMakeFiles/otem_ultracap.dir/ultracap_model.cpp.o"
  "CMakeFiles/otem_ultracap.dir/ultracap_model.cpp.o.d"
  "libotem_ultracap.a"
  "libotem_ultracap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otem_ultracap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
