# Empty dependencies file for otem_ultracap.
# This may be replaced when dependencies are built.
