file(REMOVE_RECURSE
  "libotem_ultracap.a"
)
