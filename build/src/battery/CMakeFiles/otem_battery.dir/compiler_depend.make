# Empty compiler generated dependencies file for otem_battery.
# This may be replaced when dependencies are built.
