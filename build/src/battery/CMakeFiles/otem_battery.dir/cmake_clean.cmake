file(REMOVE_RECURSE
  "CMakeFiles/otem_battery.dir/aging.cpp.o"
  "CMakeFiles/otem_battery.dir/aging.cpp.o.d"
  "CMakeFiles/otem_battery.dir/battery_model.cpp.o"
  "CMakeFiles/otem_battery.dir/battery_model.cpp.o.d"
  "CMakeFiles/otem_battery.dir/params.cpp.o"
  "CMakeFiles/otem_battery.dir/params.cpp.o.d"
  "CMakeFiles/otem_battery.dir/rc_model.cpp.o"
  "CMakeFiles/otem_battery.dir/rc_model.cpp.o.d"
  "CMakeFiles/otem_battery.dir/soc_observer.cpp.o"
  "CMakeFiles/otem_battery.dir/soc_observer.cpp.o.d"
  "libotem_battery.a"
  "libotem_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otem_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
