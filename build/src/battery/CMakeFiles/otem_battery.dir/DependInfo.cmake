
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/battery/aging.cpp" "src/battery/CMakeFiles/otem_battery.dir/aging.cpp.o" "gcc" "src/battery/CMakeFiles/otem_battery.dir/aging.cpp.o.d"
  "/root/repo/src/battery/battery_model.cpp" "src/battery/CMakeFiles/otem_battery.dir/battery_model.cpp.o" "gcc" "src/battery/CMakeFiles/otem_battery.dir/battery_model.cpp.o.d"
  "/root/repo/src/battery/params.cpp" "src/battery/CMakeFiles/otem_battery.dir/params.cpp.o" "gcc" "src/battery/CMakeFiles/otem_battery.dir/params.cpp.o.d"
  "/root/repo/src/battery/rc_model.cpp" "src/battery/CMakeFiles/otem_battery.dir/rc_model.cpp.o" "gcc" "src/battery/CMakeFiles/otem_battery.dir/rc_model.cpp.o.d"
  "/root/repo/src/battery/soc_observer.cpp" "src/battery/CMakeFiles/otem_battery.dir/soc_observer.cpp.o" "gcc" "src/battery/CMakeFiles/otem_battery.dir/soc_observer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/otem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
