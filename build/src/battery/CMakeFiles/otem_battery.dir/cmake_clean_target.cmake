file(REMOVE_RECURSE
  "libotem_battery.a"
)
