file(REMOVE_RECURSE
  "CMakeFiles/range_estimator.dir/range_estimator.cpp.o"
  "CMakeFiles/range_estimator.dir/range_estimator.cpp.o.d"
  "range_estimator"
  "range_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
