# Empty compiler generated dependencies file for range_estimator.
# This may be replaced when dependencies are built.
