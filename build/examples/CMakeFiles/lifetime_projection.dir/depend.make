# Empty dependencies file for lifetime_projection.
# This may be replaced when dependencies are built.
