file(REMOVE_RECURSE
  "CMakeFiles/lifetime_projection.dir/lifetime_projection.cpp.o"
  "CMakeFiles/lifetime_projection.dir/lifetime_projection.cpp.o.d"
  "lifetime_projection"
  "lifetime_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
