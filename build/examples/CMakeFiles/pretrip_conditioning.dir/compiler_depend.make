# Empty compiler generated dependencies file for pretrip_conditioning.
# This may be replaced when dependencies are built.
