file(REMOVE_RECURSE
  "CMakeFiles/pretrip_conditioning.dir/pretrip_conditioning.cpp.o"
  "CMakeFiles/pretrip_conditioning.dir/pretrip_conditioning.cpp.o.d"
  "pretrip_conditioning"
  "pretrip_conditioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pretrip_conditioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
