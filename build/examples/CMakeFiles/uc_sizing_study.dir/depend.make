# Empty dependencies file for uc_sizing_study.
# This may be replaced when dependencies are built.
