file(REMOVE_RECURSE
  "CMakeFiles/uc_sizing_study.dir/uc_sizing_study.cpp.o"
  "CMakeFiles/uc_sizing_study.dir/uc_sizing_study.cpp.o.d"
  "uc_sizing_study"
  "uc_sizing_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uc_sizing_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
