file(REMOVE_RECURSE
  "CMakeFiles/otem_cli.dir/otem_cli.cpp.o"
  "CMakeFiles/otem_cli.dir/otem_cli.cpp.o.d"
  "otem_cli"
  "otem_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otem_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
