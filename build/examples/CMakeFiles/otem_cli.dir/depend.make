# Empty dependencies file for otem_cli.
# This may be replaced when dependencies are built.
