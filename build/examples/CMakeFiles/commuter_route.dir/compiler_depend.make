# Empty compiler generated dependencies file for commuter_route.
# This may be replaced when dependencies are built.
