file(REMOVE_RECURSE
  "CMakeFiles/commuter_route.dir/commuter_route.cpp.o"
  "CMakeFiles/commuter_route.dir/commuter_route.cpp.o.d"
  "commuter_route"
  "commuter_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commuter_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
