# Empty dependencies file for aggressive_highway.
# This may be replaced when dependencies are built.
