file(REMOVE_RECURSE
  "CMakeFiles/aggressive_highway.dir/aggressive_highway.cpp.o"
  "CMakeFiles/aggressive_highway.dir/aggressive_highway.cpp.o.d"
  "aggressive_highway"
  "aggressive_highway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggressive_highway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
