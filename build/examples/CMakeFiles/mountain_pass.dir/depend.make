# Empty dependencies file for mountain_pass.
# This may be replaced when dependencies are built.
