file(REMOVE_RECURSE
  "CMakeFiles/mountain_pass.dir/mountain_pass.cpp.o"
  "CMakeFiles/mountain_pass.dir/mountain_pass.cpp.o.d"
  "mountain_pass"
  "mountain_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mountain_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
