// ablation_forecast — robustness extension (DESIGN.md §7): how does
// OTEM degrade when the power-request prediction is imperfect? The
// paper's evaluation assumes the route predictor of [3] is exact; a
// deployed controller sees noisy, smoothed or no predictions. Each
// forecast model runs the same closed loop — the PLANT always serves
// the true request; only the MPC's window is distorted.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/forecast.h"
#include "core/otem/otem_methodology.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 2));

  const TimeSeries power =
      bench::cycle_power(spec, vehicle::CycleName::kUs06, repeats);
  const sim::Simulator sim(spec);

  bench::print_header("Ablation: forecast quality (OTEM, US06 x" +
                      std::to_string(repeats) + ")");
  const std::vector<int> w = {28, 12, 14, 12, 14};
  bench::print_row(
      {"forecast", "qloss_%", "avg_power_W", "max_Tb_C", "violation_s"},
      w);
  CsvTable csv({"forecast", "qloss_percent", "avg_power_w", "max_tb_c",
                "violation_s"});

  const std::vector<std::string> specs = {
      "perfect",
      "noisy:7:0.05:500",   // good predictor
      "noisy:7:0.15:2000",  // mediocre predictor
      "noisy:7:0.40:5000",  // poor predictor
      "smoothed:30",        // route-profile only
      "persistence",        // no prediction (zero-order hold)
  };

  for (const auto& fspec : specs) {
    core::OtemMethodology otem(spec, core::MpcOptions::from_config(cfg),
                               core::OtemSolverOptions::from_config(cfg),
                               core::make_forecast(fspec));
    sim::RunOptions opt;
    opt.record_trace = false;
    const sim::RunResult r = sim.run(otem, power, opt);
    bench::print_row({otem.forecast().name(),
                      bench::fmt(r.qloss_percent, 5),
                      bench::fmt(r.average_power_w, 0),
                      bench::fmt(r.max_t_battery_k - 273.15, 2),
                      bench::fmt(r.thermal_violation_s, 0)},
                     w);
    csv.add_row({otem.forecast().name(), bench::fmt(r.qloss_percent, 6),
                 bench::fmt(r.average_power_w, 1),
                 bench::fmt(r.max_t_battery_k - 273.15, 3),
                 bench::fmt(r.thermal_violation_s, 1)});
  }
  std::cout << "\nThe receding horizon replans every second, so moderate "
               "forecast noise costs little; losing the peaks entirely "
               "(smoothed/persistence) erodes the TEB preparation but "
               "the thermal constraints still hold — the controller "
               "degrades toward reactive behaviour rather than failing."
            << "\n";
  bench::maybe_write_csv(cfg, "ablation_forecast", csv);
  return 0;
}
