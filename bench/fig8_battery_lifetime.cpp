// fig8_battery_lifetime — reproduces the paper's Fig. 8: "Battery
// Lifetime Comparison for Different Methodologies in Multiple Drive
// Cycles". For each standard cycle, each methodology's battery capacity
// loss is shown as a percentage of the parallel architecture's on the
// same cycle (parallel = 100 %), plus the average across cycles — the
// paper's headline "OTEM decreases the capacity loss by 16.38 % on
// average compared to the parallel architecture" / the abstract's
// 16.8 % BLT improvement.
//
// Expected shape: OTEM lowest on every cycle; active cooling and dual
// in between; per-cycle spread because cycles heat the pack
// differently.
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.h"
#include "sim/metrics.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 3));

  const auto cycles = vehicle::all_cycles();
  const auto& methods = bench::methodology_names();
  const auto cells =
      bench::run_comparison(spec, cfg, cycles, methods, repeats);

  // Index parallel baselines per cycle.
  std::map<std::string, const sim::RunResult*> baseline;
  for (const auto& c : cells)
    if (c.methodology == "parallel")
      baseline[vehicle::to_string(c.cycle)] = &c.result;

  bench::print_header(
      "Fig. 8: Battery capacity loss relative to Parallel [15] "
      "(100 %), per drive cycle (x" +
      std::to_string(repeats) + ", ambient " +
      bench::fmt(spec.ambient_k - 273.15) + " C)");
  const std::vector<int> w = {9, 16, 13, 15, 13, 18};
  bench::print_row({"cycle", "methodology", "qloss_rel_%", "qloss_abs_%",
                    "max_Tb_C", "lifetime_gain_%"},
                   w);

  CsvTable csv({"cycle", "methodology", "qloss_rel_percent",
                "qloss_abs_percent", "max_tb_c", "lifetime_gain_percent"});

  std::map<std::string, double> sum_rel;
  std::map<std::string, int> count_rel;
  for (const auto& c : cells) {
    const sim::RunResult& base = *baseline.at(vehicle::to_string(c.cycle));
    const double rel = sim::relative_capacity_loss_percent(c.result, base);
    const double gain = sim::lifetime_improvement_percent(c.result, base);
    bench::print_row({vehicle::to_string(c.cycle), c.methodology,
                      bench::fmt(rel, 2),
                      bench::fmt(c.result.qloss_percent, 5),
                      bench::fmt(c.result.max_t_battery_k - 273.15, 1),
                      bench::fmt(gain, 1)},
                     w);
    csv.add_row({vehicle::to_string(c.cycle), c.methodology,
                 bench::fmt(rel, 3), bench::fmt(c.result.qloss_percent, 6),
                 bench::fmt(c.result.max_t_battery_k - 273.15, 2),
                 bench::fmt(gain, 2)});
    sum_rel[c.methodology] += rel;
    count_rel[c.methodology] += 1;
  }

  std::cout << "\nAverage capacity loss vs parallel (paper: OTEM ~42.9-"
               "83.6 % per Table I / Fig. 8; avg reduction 16.38 %):\n";
  for (const auto& name : methods) {
    const double avg = sum_rel[name] / count_rel[name];
    std::cout << "  " << name << ": " << bench::fmt(avg, 2)
              << " % of parallel  (avg reduction "
              << bench::fmt(100.0 - avg, 2) << " %)\n";
  }
  bench::maybe_write_csv(cfg, "fig8", csv);
  return 0;
}
