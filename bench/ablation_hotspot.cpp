// ablation_hotspot — modelling-fidelity extension: how much hotter is
// the HOTTEST cell than the lumped pack temperature the controllers
// regulate? The coolant warms as it traverses the pack (paper Fig. 5;
// studied in depth by [25]), so downstream cells exceed the lumped
// average — the C1 safety threshold on the lumped temperature needs a
// guard band at least as large as this margin.
//
// Method: run each methodology's closed loop as usual (lumped model in
// the loop), then REPLAY the recorded heat and inlet trajectories
// through the cell-resolved pack model and report the hot-spot
// statistics.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "thermal/pack_thermal.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 3));
  const int segments = static_cast<int>(cfg.get_long("segments", 12));

  const TimeSeries power =
      bench::cycle_power(spec, vehicle::CycleName::kUs06, repeats);
  const sim::Simulator sim(spec);
  const thermal::PackThermalModel pack(spec.thermal, segments);

  bench::print_header(
      "Ablation: lumped vs cell-resolved pack temperature (US06 x" +
      std::to_string(repeats) + ", " + std::to_string(segments) +
      " segments)");
  const std::vector<int> w = {16, 14, 16, 16, 18};
  bench::print_row({"methodology", "lumped_max_C", "hottest_cell_C",
                    "margin_max_K", "hidden_violation_s"},
                   w);
  CsvTable csv({"methodology", "lumped_max_c", "hottest_cell_c",
                "margin_max_k", "hidden_violation_s"});

  for (const auto& name : bench::methodology_names()) {
    auto m = bench::make_methodology(name, spec, cfg);
    const sim::RunResult r = sim.run(*m, power);

    // Replay heat + inlet through the distributed model.
    auto state = pack.uniform(r.trace.t_battery_k[0]);
    // Start from the run's initial condition (paper x0 = 298 K).
    state = pack.uniform(298.0);
    double hottest = 0.0;
    double margin_max = 0.0;
    double hidden_violation_s = 0.0;
    for (size_t k = 0; k < r.trace.q_bat_w.size(); ++k) {
      state = pack.step(state, r.trace.q_bat_w[k],
                        r.trace.t_inlet_k[k], power.dt());
      const double hot = pack.hottest_cell(state);
      hottest = std::max(hottest, hot);
      margin_max = std::max(
          margin_max, hot - r.trace.t_battery_k[k]);
      // Steps where the lumped model says "safe" but the hottest cell
      // is over the C1 ceiling.
      if (hot > spec.thermal.max_battery_temp_k &&
          r.trace.t_battery_k[k] <= spec.thermal.max_battery_temp_k)
        hidden_violation_s += power.dt();
    }

    bench::print_row(
        {name, bench::fmt(r.max_t_battery_k - 273.15, 2),
         bench::fmt(hottest - 273.15, 2), bench::fmt(margin_max, 2),
         bench::fmt(hidden_violation_s, 0)},
        w);
    csv.add_row({name, bench::fmt(r.max_t_battery_k - 273.15, 3),
                 bench::fmt(hottest - 273.15, 3),
                 bench::fmt(margin_max, 3),
                 bench::fmt(hidden_violation_s, 1)});
  }
  std::cout << "\n'hidden_violation_s' is time the hottest cell spends "
               "over the C1 ceiling while the lumped temperature reads "
               "safe — size the lumped threshold's guard band from "
               "'margin_max'.\n";
  bench::maybe_write_csv(cfg, "ablation_hotspot", csv);
  return 0;
}
