#!/usr/bin/env python3
"""Fail when warm-started ADMM stops beating cold starts.

Reads a google-benchmark JSON file (as written by perf_solver with
--benchmark_out) and pairs up BM_LtvControlStep/{horizon}/{warm} rows:
warm=0 solves every QP from zero, warm=1 carries terminal iterates
across rounds and steps (LtvOptions::warm_start, the shipped default).
The contract — enforced in CI — is that warm starts cut BOTH the mean
and the median ADMM iterations per control step by at least
--min-percent (default 25, the acceptance bar) at every horizon.

This gates on ITERATION COUNTS, not wall-clock: counts are exact and
machine-independent, so the gate doesn't flake on loaded CI runners.

Usage: check_warm_start.py BENCH_solver.json [--min-percent 25.0]

Exit code 1 when any horizon misses the bar, when the pairs are absent
(so a renamed benchmark can't silently disable the gate), or when the
JSON was not produced from a Release build of this repo
(context.repo_build_type — see checklib.load_release_bench).
"""

import argparse
import re
import sys

import checklib

NAME_RE = re.compile(r"^BM_LtvControlStep/(\d+)/([01])\b")


def collect(benchmarks):
    """horizon -> {0|1 -> {"mean": ..., "median": ...}}."""
    out = {}
    for b in checklib.iteration_rows(benchmarks):
        m = NAME_RE.match(b["name"])
        if not m:
            continue
        horizon, warm = int(m.group(1)), int(m.group(2))
        if "admm_iters_mean" not in b or "admm_iters_median" not in b:
            continue
        out.setdefault(horizon, {})[warm] = {
            "mean": float(b["admm_iters_mean"]),
            "median": float(b["admm_iters_median"]),
        }
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json")
    ap.add_argument("--min-percent", type=float, default=25.0)
    args = ap.parse_args()

    data = checklib.load_release_bench(args.bench_json)
    rows = collect(data["benchmarks"])
    pairs = {h: v for h, v in rows.items() if 0 in v and 1 in v}
    if not pairs:
        print("error: no BM_LtvControlStep cold/warm pairs with "
              f"admm_iters counters in {args.bench_json}", file=sys.stderr)
        return 1

    failed = False
    print(f"{'horizon':>7}  {'stat':>6}  {'cold':>8}  {'warm':>8}  "
          f"{'saved':>7}")
    for horizon in sorted(pairs):
        for stat in ("mean", "median"):
            cold = pairs[horizon][0][stat]
            warm = pairs[horizon][1][stat]
            saved = 100.0 * (1.0 - warm / cold) if cold > 0 else 0.0
            flag = ""
            if saved < args.min_percent:
                failed = True
                flag = f"  <-- below {args.min_percent:g}% bar"
            print(f"{horizon:>7}  {stat:>6}  {cold:>8.1f}  {warm:>8.1f}  "
                  f"{saved:>+6.1f}%{flag}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
