// perf_solver — google-benchmark microbenchmarks of the optimisation
// stack: MPC rollout (forward + adjoint), full augmented-Lagrangian
// solves across horizons, and the dense QP solver. Establishes the
// real-time budget of the controller (the paper's MPC must run every
// second on an automotive ECU).
#include <benchmark/benchmark.h>

#include "core/otem/mpc_problem.h"
#include "core/otem/otem_controller.h"
#include "optim/qp.h"

namespace {

using namespace otem;
using namespace otem::core;

SystemSpec spec() { return SystemSpec::from_config(Config()); }

std::vector<double> load(size_t n) {
  std::vector<double> p(n);
  for (size_t k = 0; k < n; ++k)
    p[k] = 15000.0 + 30000.0 * ((k % 7) / 6.0) - 5000.0 * (k % 3);
  return p;
}

void BM_MpcForward(benchmark::State& state) {
  const size_t horizon = static_cast<size_t>(state.range(0));
  MpcOptions opt;
  opt.horizon = horizon;
  MpcProblem prob(spec(), opt);
  PlantState x0;
  prob.set_window(x0, load(horizon));
  optim::Vector z(prob.dim(), 0.6);
  optim::Vector c(prob.num_constraints());
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob.evaluate(z, c));
  }
}
BENCHMARK(BM_MpcForward)->Arg(10)->Arg(30)->Arg(60);

void BM_MpcForwardBackward(benchmark::State& state) {
  const size_t horizon = static_cast<size_t>(state.range(0));
  MpcOptions opt;
  opt.horizon = horizon;
  MpcProblem prob(spec(), opt);
  PlantState x0;
  prob.set_window(x0, load(horizon));
  optim::Vector z(prob.dim(), 0.6);
  optim::Vector c(prob.num_constraints());
  optim::Vector w(prob.num_constraints(), 0.5);
  optim::Vector g(prob.dim());
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob.evaluate(z, c));
    prob.gradient(z, w, g);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_MpcForwardBackward)->Arg(10)->Arg(30)->Arg(60);

void BM_OtemSolve(benchmark::State& state) {
  const size_t horizon = static_cast<size_t>(state.range(0));
  MpcOptions opt;
  opt.horizon = horizon;
  OtemController ctrl(spec(), opt);
  PlantState x0;
  x0.t_battery_k = 305.0;
  const std::vector<double> p = load(horizon);
  double total_iters = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl.solve(x0, p));
    total_iters += static_cast<double>(ctrl.last_solve().iterations);
  }
  state.counters["iters_per_solve"] = benchmark::Counter(
      total_iters, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_OtemSolve)->Arg(10)->Arg(30)->Arg(60)->Unit(
    benchmark::kMillisecond);

void BM_QpSolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  optim::QpProblem p;
  p.p = optim::Matrix::identity(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    p.p(i, i + 1) = 0.25;
    p.p(i + 1, i) = 0.25;
  }
  p.q.assign(n, -1.0);
  p.a = optim::Matrix::identity(n);
  p.l.assign(n, 0.0);
  p.u.assign(n, 0.7);
  double total_iters = 0.0;
  double total_rho = 0.0;
  for (auto _ : state) {
    const optim::QpResult r = optim::solve_qp(p);
    total_iters += static_cast<double>(r.iterations);
    total_rho += static_cast<double>(r.rho_updates);
    benchmark::DoNotOptimize(r.primal_residual);
  }
  state.counters["admm_iters"] = benchmark::Counter(
      total_iters, benchmark::Counter::kAvgIterations);
  state.counters["rho_updates"] = benchmark::Counter(
      total_rho, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_QpSolve)->Arg(10)->Arg(40)->Arg(120);

}  // namespace

BENCHMARK_MAIN();
