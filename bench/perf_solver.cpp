// perf_solver — google-benchmark microbenchmarks of the optimisation
// stack: MPC rollout (forward + adjoint), full augmented-Lagrangian
// solves across horizons, the dense QP solver cold vs warm-started,
// and the LTV control step with and without ADMM warm starts.
// Establishes the real-time budget of the controller (the paper's MPC
// must run every second on an automotive ECU) and records the
// iteration savings bench/check_warm_start.py gates on in CI.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/otem/ltv_controller.h"
#include "core/otem/mpc_problem.h"
#include "core/otem/otem_controller.h"
#include "obs/sketch.h"
#include "obs/timer.h"
#include "optim/qp.h"

namespace {

using namespace otem;
using namespace otem::core;

SystemSpec spec() { return SystemSpec::from_config(Config()); }

std::vector<double> load(size_t n) {
  std::vector<double> p(n);
  for (size_t k = 0; k < n; ++k)
    p[k] = 15000.0 + 30000.0 * ((k % 7) / 6.0) - 5000.0 * (k % 3);
  return p;
}

void BM_MpcForward(benchmark::State& state) {
  const size_t horizon = static_cast<size_t>(state.range(0));
  MpcOptions opt;
  opt.horizon = horizon;
  MpcProblem prob(spec(), opt);
  PlantState x0;
  prob.set_window(x0, load(horizon));
  optim::Vector z(prob.dim(), 0.6);
  optim::Vector c(prob.num_constraints());
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob.evaluate(z, c));
  }
}
BENCHMARK(BM_MpcForward)->Arg(10)->Arg(30)->Arg(60);

void BM_MpcForwardBackward(benchmark::State& state) {
  const size_t horizon = static_cast<size_t>(state.range(0));
  MpcOptions opt;
  opt.horizon = horizon;
  MpcProblem prob(spec(), opt);
  PlantState x0;
  prob.set_window(x0, load(horizon));
  optim::Vector z(prob.dim(), 0.6);
  optim::Vector c(prob.num_constraints());
  optim::Vector w(prob.num_constraints(), 0.5);
  optim::Vector g(prob.dim());
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob.evaluate(z, c));
    prob.gradient(z, w, g);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_MpcForwardBackward)->Arg(10)->Arg(30)->Arg(60);

void BM_OtemSolve(benchmark::State& state) {
  const size_t horizon = static_cast<size_t>(state.range(0));
  MpcOptions opt;
  opt.horizon = horizon;
  OtemController ctrl(spec(), opt);
  PlantState x0;
  x0.t_battery_k = 305.0;
  const std::vector<double> p = load(horizon);
  double total_iters = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl.solve(x0, p));
    total_iters += static_cast<double>(ctrl.last_solve().iterations);
  }
  state.counters["iters_per_solve"] = benchmark::Counter(
      total_iters, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_OtemSolve)->Arg(10)->Arg(30)->Arg(60)->Unit(
    benchmark::kMillisecond);

void BM_QpSolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  optim::QpProblem p;
  p.p = optim::Matrix::identity(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    p.p(i, i + 1) = 0.25;
    p.p(i + 1, i) = 0.25;
  }
  p.q.assign(n, -1.0);
  p.a = optim::Matrix::identity(n);
  p.l.assign(n, 0.0);
  p.u.assign(n, 0.7);
  double total_iters = 0.0;
  double total_rho = 0.0;
  for (auto _ : state) {
    const optim::QpResult r = optim::solve_qp(p);
    total_iters += static_cast<double>(r.iterations);
    total_rho += static_cast<double>(r.rho_updates);
    benchmark::DoNotOptimize(r.primal_residual);
  }
  state.counters["admm_iters"] = benchmark::Counter(
      total_iters, benchmark::Counter::kAvgIterations);
  state.counters["rho_updates"] = benchmark::Counter(
      total_rho, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_QpSolve)->Arg(10)->Arg(40)->Arg(120);

// Median of a sample set (gbenchmark counters only aggregate means, so
// the per-step median the acceptance gate reads is computed here).
double median_of(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  const size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  return samples[mid];
}

// A receding-horizon QP sequence: same constraint matrix A every step,
// slowly drifting q and bounds (what the LTV controller produces once
// the linearisation settles). Arg(1) selects cold (0: a fresh solve
// from zero each step) vs warm (1: terminal iterates carried forward).
// Compare admm_iters_mean / admm_iters_median across the pair.
void BM_QpSolveSequence(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool warm = state.range(1) != 0;
  optim::QpProblem p;
  p.p = optim::Matrix::identity(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    p.p(i, i + 1) = 0.25;
    p.p(i + 1, i) = 0.25;
  }
  p.q.assign(n, -1.0);
  p.a = optim::Matrix::identity(n);
  p.l.assign(n, 0.0);
  p.u.assign(n, 0.7);

  optim::QpSolver solver;
  optim::QpWarmStart carry;
  bool have_carry = false;
  std::vector<double> iters;
  size_t step = 0;
  for (auto _ : state) {
    // Drift the linear term like a sliding load window.
    for (size_t i = 0; i < n; ++i)
      p.q[i] = -1.0 + 0.05 * (((step + i) % 9) / 8.0);
    const optim::QpResult r = warm && have_carry
                                  ? solver.solve(p, optim::QpOptions{}, carry)
                                  : solver.solve(p);
    if (warm) {
      carry.x = r.x;
      carry.y = r.y;
      carry.rho = r.rho_final;
      have_carry = true;
    }
    iters.push_back(static_cast<double>(r.iterations));
    benchmark::DoNotOptimize(r.primal_residual);
    ++step;
  }
  double total = 0.0;
  for (double v : iters) total += v;
  state.counters["admm_iters_mean"] = benchmark::Counter(
      total, benchmark::Counter::kAvgIterations);
  state.counters["admm_iters_median"] = median_of(iters);
}
BENCHMARK(BM_QpSolveSequence)
    ->Args({40, 0})
    ->Args({40, 1})
    ->Args({120, 0})
    ->Args({120, 1});

// One LTV-QP control step on a sliding load window — the production
// hot path. Arg(0) is the horizon, Arg(1) toggles
// LtvOptions::warm_start (iterate carrying + factorisation reuse stay
// coupled to it, exactly as shipped). The acceptance criterion lives
// here: warm (Arg 1) must cut median ADMM iterations per step by
// >= 25 % against cold at the same horizon.
void ltv_control_step(benchmark::State& state, optim::KktSolveMode mode) {
  const size_t horizon = static_cast<size_t>(state.range(0));
  const bool warm = state.range(1) != 0;
  LtvOptions opt;
  opt.warm_start = warm;
  opt.qp.kkt_mode = mode;
  MpcOptions mpc;
  mpc.horizon = horizon;
  LtvOtemController ctrl(spec(), mpc, opt);
  const std::vector<double> p = load(horizon + 256);
  PlantState x;
  x.t_battery_k = 303.0;
  x.t_coolant_k = 301.0;
  std::vector<double> iters, refactors;
  // Per-solve wall-clock into a quantile sketch: BENCH_solver.json
  // then carries p50/p95/p99 solve latency per (horizon, warm) cell —
  // the tail is what an every-second ECU deadline actually budgets.
  obs::QuantileSketch latency_us;
  double stage_ops_total = 0.0;
  size_t step = 0;
  std::vector<double> window(horizon);
  for (auto _ : state) {
    const size_t base = step % 256;
    for (size_t k = 0; k < horizon; ++k) window[k] = p[base + k];
    const double t0 = obs::now_us();
    benchmark::DoNotOptimize(ctrl.solve(x, window));
    latency_us.add(obs::now_us() - t0);
    iters.push_back(static_cast<double>(ctrl.last_solve().qp_iterations));
    refactors.push_back(
        static_cast<double>(ctrl.last_solve().kkt_refactorizations));
    stage_ops_total +=
        static_cast<double>(ctrl.last_solve().stage_block_ops);
    ++step;
  }
  double iter_total = 0.0, refactor_total = 0.0;
  for (double v : iters) iter_total += v;
  for (double v : refactors) refactor_total += v;
  state.counters["admm_iters_mean"] = benchmark::Counter(
      iter_total, benchmark::Counter::kAvgIterations);
  state.counters["admm_iters_median"] = median_of(iters);
  state.counters["kkt_refactor_mean"] = benchmark::Counter(
      refactor_total, benchmark::Counter::kAvgIterations);
  // Fixed-size block-kernel applications per ADMM iteration: exact,
  // machine-independent, and linear in the horizon on the banded path
  // (always 0 on the dense path) — what bench/check_banded.py gates on.
  state.counters["stage_ops_per_iter"] =
      iter_total > 0.0 ? stage_ops_total / iter_total : 0.0;
  state.counters["solve_p50_us"] = latency_us.quantile(0.50);
  state.counters["solve_p95_us"] = latency_us.quantile(0.95);
  state.counters["solve_p99_us"] = latency_us.quantile(0.99);
}

void BM_LtvControlStep(benchmark::State& state) {
  ltv_control_step(state, optim::KktSolveMode::kBanded);
}
BENCHMARK(BM_LtvControlStep)
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({30, 0})
    ->Args({30, 1})
    ->Args({60, 0})
    ->Args({60, 1})
    ->Unit(benchmark::kMillisecond);

// The dense condensed-KKT path on the same sequence — the correctness
// oracle's cost, kept measured so the banded speedup stays visible in
// BENCH_solver.json (same counters, same workload).
void BM_LtvControlStepDense(benchmark::State& state) {
  ltv_control_step(state, optim::KktSolveMode::kDense);
}
BENCHMARK(BM_LtvControlStepDense)
    ->Args({10, 1})
    ->Args({30, 1})
    ->Args({60, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // How THIS repo's code was compiled (the stock library_build_type
  // context key reports the google-benchmark library's own build, which
  // is debug on many distros). bench/check_*.py refuse baselines whose
  // repo_build_type is not "release", so an unoptimised artifact can
  // never be committed as a perf baseline again.
#ifdef NDEBUG
  benchmark::AddCustomContext("repo_build_type", "release");
#else
  benchmark::AddCustomContext("repo_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
