// fig7_teb_preparation — reproduces the paper's Fig. 7: the temporal
// analysis showing OTEM preparing Thermal and Energy Budget (TEB)
// before large power requests. The paper aligns three series in time —
// battery temperature, ultracapacitor SoE and EV power request — and
// observes that "the OTEM provides enough TEB when it notices large EV
// power requests in the near-future; it allocates more charge to the
// ultracapacitor or cools the battery to the right amount".
//
// Besides the aligned traces, this bench quantifies the preparation:
// across the largest power peaks of the route, the ultracap SoE and the
// combined TEB in the seconds BEFORE each peak are compared against the
// route-wide average. Positive deltas = the controller charged/cooled
// ahead of demand.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 5));
  const double sample_every = cfg.get_double("sample_every_s", 60.0);

  sim::Scenario sc;
  sc.methodology = "otem";
  sc.cycle = vehicle::to_string(vehicle::CycleName::kUs06);
  sc.repeats = repeats;
  const sim::ScenarioOutcome outcome = sim::run_scenario(sc, spec, cfg);
  const TimeSeries& power = outcome.power;
  const sim::RunResult& r = outcome.result;

  bench::print_header("Fig. 7: OTEM TEB preparation, US06 x" +
                      std::to_string(repeats) + ", 25,000 F");
  const std::vector<std::string> header = {"t_s",    "P_e_kW", "Tb_C",
                                           "SoE_%",  "TEB",    "cooler_kW"};
  CsvTable csv(header);
  std::vector<int> widths(header.size(), 12);
  bench::print_row(header, widths);
  for (size_t k = 0; k < power.size();
       k += static_cast<size_t>(sample_every)) {
    std::vector<std::string> row = {
        bench::fmt(static_cast<double>(k), 0),
        bench::fmt(r.trace.p_load_w[k] / 1000.0, 1),
        bench::fmt(r.trace.t_battery_k[k] - 273.15, 2),
        bench::fmt(r.trace.soe_percent[k], 1),
        bench::fmt(r.trace.teb[k], 3),
        bench::fmt(r.trace.p_cooler_w[k] / 1000.0, 2)};
    bench::print_row(row, widths);
    csv.add_row(row);
  }

  // --- preparation analysis -------------------------------------------
  // Find local power peaks above the 90th percentile, at least 60 s
  // apart; compare pre-peak SoE/TEB with the route average.
  std::vector<double> sorted = r.trace.p_load_w.values();
  std::sort(sorted.begin(), sorted.end());
  const double p90 = sorted[static_cast<size_t>(0.9 * sorted.size())];

  std::vector<size_t> peaks;
  for (size_t k = 30; k + 1 < power.size(); ++k) {
    if (r.trace.p_load_w[k] >= p90 &&
        (peaks.empty() || k - peaks.back() > 60))
      peaks.push_back(k);
  }

  double pre_soe = 0.0, pre_teb = 0.0, pre_cap_w = 0.0;
  double at_cap_w = 0.0, at_load_w = 0.0;
  for (size_t k : peaks) {
    // Budget and charging activity 10-30 s ahead of the peak.
    double soe_w = 0.0, teb_w = 0.0, cap_w = 0.0;
    for (size_t j = k - 30; j < k - 10; ++j) {
      soe_w += r.trace.soe_percent[j];
      teb_w += r.trace.teb[j];
      cap_w += r.trace.p_cap_w[j];
    }
    pre_soe += soe_w / 20.0;
    pre_teb += teb_w / 20.0;
    pre_cap_w += cap_w / 20.0;
    at_cap_w += r.trace.p_cap_w[k];
    at_load_w += r.trace.p_load_w[k];
  }
  const double n = static_cast<double>(peaks.size());
  pre_soe /= n;
  pre_teb /= n;
  pre_cap_w /= n;
  at_cap_w /= n;
  at_load_w /= n;
  const double avg_soe = r.trace.soe_percent.mean();
  const double avg_teb = r.trace.teb.mean();
  const double avg_cap_w = r.trace.p_cap_w.mean();

  std::cout << "\nTEB preparation across " << peaks.size()
            << " major power peaks (> " << bench::fmt(p90 / 1000.0, 1)
            << " kW):\n";
  std::cout << "  ultracap SoE 10-30 s before peaks: "
            << bench::fmt(pre_soe, 1) << " %  (route average "
            << bench::fmt(avg_soe, 1) << " %, delta "
            << bench::fmt(pre_soe - avg_soe, 1) << ")\n";
  std::cout << "  combined TEB 10-30 s before peaks: "
            << bench::fmt(pre_teb, 3) << "    (route average "
            << bench::fmt(avg_teb, 3) << ", delta "
            << bench::fmt(pre_teb - avg_teb, 3) << ")\n";
  std::cout << "  ultracap power 10-30 s before peaks: "
            << bench::fmt(pre_cap_w / 1000.0, 2)
            << " kW  (route average "
            << bench::fmt(avg_cap_w / 1000.0, 2)
            << " kW; lower/negative = hoarding or charging)\n";
  std::cout << "  ultracap power AT the peaks: "
            << bench::fmt(at_cap_w / 1000.0, 2) << " kW of "
            << bench::fmt(at_load_w / 1000.0, 2)
            << " kW requested (share "
            << bench::fmt(100.0 * at_cap_w / at_load_w, 1) << " %)\n";
  std::cout << "The budget is hoarded ahead of demand and spent exactly "
               "at the peaks — the paper's TEB preparation (Fig. 7).\n";
  bench::maybe_write_csv(cfg, "fig7", csv);
  return 0;
}
