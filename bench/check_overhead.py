#!/usr/bin/env python3
"""Fail when the instrumentation overhead exceeds its budget.

Reads a google-benchmark JSON file (as written by perf_fleet with
--benchmark_out) and compares BM_FleetEvaluate/N (bare fleet) against
its instrumented variants at the same thread count:

  BM_FleetEvaluateMetrics/N — shared MetricsRegistry, DiagnosticsSink
      per mission, step-loop timing on;
  BM_FleetEvaluateTraced/N  — all of the above PLUS the span tracer
      enabled (fleet.mission / sim.run / sim.step spans into the
      per-thread flight-recorder rings).

The contract — enforced in CI — is that each variant costs < 5 %
wall-clock over the bare fleet. The measured delta is printed per
variant and thread count.

Usage: check_overhead.py BENCH_fleet.json [--max-percent 5.0]

When the file was produced with --benchmark_repetitions, the MINIMUM
real_time per benchmark is used: the min is the least noisy statistic
for "how fast can this go", which is what an overhead ratio needs.
Exit code 1 when any thread count blows the budget, or when the JSON
was not produced from a Release build of this repo
(context.repo_build_type — see checklib.load_release_bench).
"""

import argparse
import re
import sys

import checklib

NAME_RE = re.compile(r"^(BM_FleetEvaluate(?:Metrics|Traced)?)/(\d+)")
NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

VARIANTS = [
    ("BM_FleetEvaluateMetrics", "metrics"),
    ("BM_FleetEvaluateTraced", "traced"),
]


def best_times(benchmarks):
    """name -> {threads -> min real_time in ns} over iteration runs."""
    best = {}
    for b in checklib.iteration_rows(benchmarks):
        m = NAME_RE.match(b["name"])
        if not m:
            continue
        name, threads = m.group(1), int(m.group(2))
        t = float(b["real_time"]) * NS_PER_UNIT[b.get("time_unit", "ns")]
        slot = best.setdefault(name, {})
        slot[threads] = min(slot.get(threads, t), t)
    return best


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json")
    ap.add_argument("--max-percent", type=float, default=5.0)
    args = ap.parse_args()

    data = checklib.load_release_bench(args.bench_json)
    best = best_times(data["benchmarks"])

    base = best.get("BM_FleetEvaluate", {})
    compared = 0
    failed = False
    print(f"{'variant':>8}  {'threads':>7}  {'bare_ms':>10}  "
          f"{'with_ms':>10}  {'overhead':>8}")
    for bench_name, label in VARIANTS:
        instrumented = best.get(bench_name, {})
        for threads in sorted(set(base) & set(instrumented)):
            compared += 1
            t0, t1 = base[threads], instrumented[threads]
            overhead = 100.0 * (t1 - t0) / t0
            flag = ""
            if overhead > args.max_percent:
                failed = True
                flag = f"  <-- exceeds {args.max_percent:g}% budget"
            print(f"{label:>8}  {threads:>7}  {t0 / 1e6:>10.2f}  "
                  f"{t1 / 1e6:>10.2f}  {overhead:>+7.2f}%{flag}")
    if compared == 0:
        print("error: no BM_FleetEvaluate vs instrumented-variant pairs "
              f"in {args.bench_json}", file=sys.stderr)
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
