#!/usr/bin/env python3
"""Fail when the instrumentation overhead exceeds its budget.

Reads a google-benchmark JSON file (as written by perf_fleet with
--benchmark_out) and compares BM_FleetEvaluate/N (bare fleet) against
BM_FleetEvaluateMetrics/N (same fleet with a shared MetricsRegistry,
DiagnosticsSink per mission and step-loop timing on). The contract —
enforced in CI — is that full instrumentation costs < 5 % wall-clock.

Usage: check_overhead.py BENCH_fleet.json [--max-percent 5.0]

When the file was produced with --benchmark_repetitions, the MINIMUM
real_time per benchmark is used: the min is the least noisy statistic
for "how fast can this go", which is what an overhead ratio needs.
Exit code 1 when any thread count blows the budget, or when the JSON
was not produced from a Release build of this repo
(context.repo_build_type — see bench_json.load_release_bench).
"""

import argparse
import re
import sys

import bench_json

NAME_RE = re.compile(r"^(BM_FleetEvaluate(?:Metrics)?)/(\d+)")
NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def best_times(benchmarks):
    """name -> {threads -> min real_time in ns} over iteration runs."""
    best = {}
    for b in benchmarks:
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip mean/median/stddev aggregate rows
        m = NAME_RE.match(b["name"])
        if not m:
            continue
        name, threads = m.group(1), int(m.group(2))
        t = float(b["real_time"]) * NS_PER_UNIT[b.get("time_unit", "ns")]
        slot = best.setdefault(name, {})
        slot[threads] = min(slot.get(threads, t), t)
    return best


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json")
    ap.add_argument("--max-percent", type=float, default=5.0)
    args = ap.parse_args()

    data = bench_json.load_release_bench(args.bench_json)
    best = best_times(data["benchmarks"])

    base = best.get("BM_FleetEvaluate", {})
    instrumented = best.get("BM_FleetEvaluateMetrics", {})
    common = sorted(set(base) & set(instrumented))
    if not common:
        print("error: no BM_FleetEvaluate / BM_FleetEvaluateMetrics pairs "
              f"in {args.bench_json}", file=sys.stderr)
        return 1

    failed = False
    print(f"{'threads':>7}  {'bare_ms':>10}  {'metrics_ms':>10}  "
          f"{'overhead':>8}")
    for threads in common:
        t0, t1 = base[threads], instrumented[threads]
        overhead = 100.0 * (t1 - t0) / t0
        flag = ""
        if overhead > args.max_percent:
            failed = True
            flag = f"  <-- exceeds {args.max_percent:g}% budget"
        print(f"{threads:>7}  {t0 / 1e6:>10.2f}  {t1 / 1e6:>10.2f}  "
              f"{overhead:>+7.2f}%{flag}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
