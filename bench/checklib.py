"""Shared helpers for the bench/check_*.py CI gates.

Lives next to the check scripts; `python3 bench/check_foo.py` puts this
directory on sys.path, so the scripts just `import checklib`. Every
gate funnels its error reporting, JSON loading, schema pinning and
google-benchmark row filtering through here so the policies (Release
stamps, aggregate-row skipping, error formatting) exist exactly once.
"""

import json
import sys


def fail(msg):
    """Print a gate failure and return 1, so `return fail(...)` works."""
    print(f"error: {msg}", file=sys.stderr)
    return 1


def load_json(path):
    """Load a JSON document, exiting 1 with a reason when it can't be."""
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(fail(f"cannot load {path}: {e}"))


def require_schema(doc, schema, path):
    """Exit 1 unless doc carries the exact top-level schema string."""
    if not isinstance(doc, dict) or doc.get("schema") != schema:
        raise SystemExit(fail(
            f"{path} does not carry schema '{schema}' "
            f"(got {doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!r})"))


def iteration_rows(benchmarks):
    """Yield real iteration rows, skipping mean/median/stddev aggregates
    produced by --benchmark_repetitions."""
    for b in benchmarks:
        if b.get("run_type", "iteration") == "iteration":
            yield b


def load_release_bench(path):
    """Load a google-benchmark JSON file, refusing non-Release builds.

    perf_solver / perf_fleet stamp context.repo_build_type with how the
    repo's own code was compiled ("release" iff NDEBUG). The stock
    context.library_build_type key only reports how the google-benchmark
    LIBRARY was built (debug on many distros), which is why a debug
    artifact once slipped into the committed baselines. Any JSON without
    a "release" stamp — including pre-stamp artifacts — is rejected, so
    a stale or unoptimised file can never pass a perf gate again.
    """
    with open(path) as f:
        data = json.load(f)
    build = data.get("context", {}).get("repo_build_type")
    if build != "release":
        print(
            f"error: {path} was measured from a "
            f"'{build or 'unknown (pre-stamp artifact)'}' build of this "
            "repo, not 'release'.\nRegenerate it from a Release tree "
            "(bench/run_benchmarks.sh enforces this).",
            file=sys.stderr,
        )
        raise SystemExit(1)
    lib_build = data.get("context", {}).get("library_build_type")
    if lib_build is not None and lib_build != "release":
        # Advisory only: the timed code is the repo's (gated above); a
        # debug benchmark LIBRARY mostly inflates harness overhead. Fix
        # by configuring with -DOTEM_BENCHMARK_SOURCE_DIR=<checkout>,
        # which vendors a Release build of google/benchmark.
        print(
            f"warning: {path} links a '{lib_build}' build of the "
            "google-benchmark library (repo code itself is release). "
            "Configure with -DOTEM_BENCHMARK_SOURCE_DIR=<benchmark "
            "checkout> for a Release harness.",
            file=sys.stderr,
        )
    return data
