// fig6_temperature_traces — reproduces the paper's Fig. 6: battery
// temperature over time for each methodology, driving US06 five times
// with a 25,000 F ultracapacitor.
//
// Expected shape: the passive parallel architecture drifts to the
// highest temperature; the dual architecture reacts only when the
// threshold is reached and rides near/above it; active cooling holds
// its fixed band; OTEM drives the temperature further down whenever
// that is worth its energy (the paper: "the OTEM attempts to decrease
// the battery temperature further ... to extend the battery lifetime").
#include <iostream>
#include <vector>

#include "bench_common.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 5));
  const double sample_every = cfg.get_double("sample_every_s", 120.0);

  const auto& methods = bench::methodology_names();
  std::vector<sim::RunResult> results;
  size_t steps = 0;
  for (const auto& name : methods) {
    sim::Scenario sc;
    sc.methodology = name;
    sc.cycle = vehicle::to_string(vehicle::CycleName::kUs06);
    sc.repeats = repeats;
    sim::ScenarioOutcome outcome = sim::run_scenario(sc, spec, cfg);
    steps = outcome.power.size();
    results.push_back(std::move(outcome.result));
  }

  bench::print_header("Fig. 6: Battery temperature traces, US06 x" +
                      std::to_string(repeats) + ", 25,000 F");
  std::vector<std::string> header = {"t_s"};
  for (const auto& name : methods) header.push_back("Tb_C_" + name);
  CsvTable csv(header);
  std::vector<int> widths(header.size(), 18);
  bench::print_row(header, widths);
  for (size_t k = 0; k < steps;
       k += static_cast<size_t>(sample_every)) {
    std::vector<std::string> row = {bench::fmt(static_cast<double>(k), 0)};
    for (const auto& r : results)
      row.push_back(bench::fmt(r.trace.t_battery_k[k] - 273.15, 2));
    bench::print_row(row, widths);
    csv.add_row(row);
  }

  std::cout << "\nSummary:\n";
  const std::vector<int> w = {16, 12, 14, 16, 14};
  bench::print_row({"methodology", "max_Tb_C", "mean_Tb_C", "violation_s",
                    "qloss_%"},
                   w);
  for (size_t i = 0; i < methods.size(); ++i) {
    bench::print_row(
        {methods[i], bench::fmt(results[i].max_t_battery_k - 273.15, 2),
         bench::fmt(results[i].trace.t_battery_k.mean() - 273.15, 2),
         bench::fmt(results[i].thermal_violation_s, 0),
         bench::fmt(results[i].qloss_percent, 5)},
        w);
  }
  bench::maybe_write_csv(cfg, "fig6", csv);
  return 0;
}
