// ablation_horizon — design-choice ablation (DESIGN.md §7): how much
// future knowledge does OTEM need? Sweeps the MPC control window N and
// the terminal aging cost-to-go that substitutes for the truncated
// future. The paper uses MPC explicitly so the controller can "provide
// sufficient TEB before the EV power requests arrive"; this bench shows
// what each second of lookahead buys.
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/otem/otem_methodology.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 3));

  const TimeSeries power =
      bench::cycle_power(spec, vehicle::CycleName::kUs06, repeats);
  const sim::Simulator sim(spec);

  bench::print_header("Ablation: MPC horizon and terminal cost-to-go "
                      "(OTEM, US06 x" +
                      std::to_string(repeats) + ")");
  const std::vector<int> w = {10, 10, 12, 14, 14, 14, 14};
  bench::print_row({"N", "tail_s", "qloss_%", "avg_power_W", "max_Tb_C",
                    "violation_s", "ms_per_step"},
                   w);
  CsvTable csv({"horizon", "tail_s", "qloss_percent", "avg_power_w",
                "max_tb_c", "violation_s", "ms_per_step"});

  struct Case {
    size_t horizon;
    double tail;
  };
  const std::vector<Case> cases = {
      {5, 900.0},  {10, 900.0}, {20, 900.0}, {30, 900.0}, {45, 900.0},
      {30, 0.0},   {30, 300.0}, {30, 1800.0},
  };

  for (const Case& c : cases) {
    core::MpcOptions mpc = core::MpcOptions::from_config(cfg);
    mpc.horizon = c.horizon;
    mpc.terminal_aging_tail_s = c.tail;
    core::OtemMethodology otem(spec, mpc,
                               core::OtemSolverOptions::from_config(cfg));
    const auto start = std::chrono::steady_clock::now();
    sim::RunOptions opt;
    opt.record_trace = false;
    const sim::RunResult r = sim.run(otem, power, opt);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count() /
        static_cast<double>(power.size());

    bench::print_row({std::to_string(c.horizon), bench::fmt(c.tail, 0),
                      bench::fmt(r.qloss_percent, 5),
                      bench::fmt(r.average_power_w, 0),
                      bench::fmt(r.max_t_battery_k - 273.15, 2),
                      bench::fmt(r.thermal_violation_s, 0),
                      bench::fmt(ms, 3)},
                     w);
    csv.add_row({std::to_string(c.horizon), bench::fmt(c.tail, 0),
                 bench::fmt(r.qloss_percent, 6),
                 bench::fmt(r.average_power_w, 1),
                 bench::fmt(r.max_t_battery_k - 273.15, 3),
                 bench::fmt(r.thermal_violation_s, 1),
                 bench::fmt(ms, 4)});
  }
  std::cout << "\ntail_s = 0 is the literal Eq. 19 cost: without a "
               "cost-to-go the controller stops pre-cooling (capacity "
               "loss rises) because the Arrhenius benefit lands beyond "
               "the window.\n";
  bench::maybe_write_csv(cfg, "ablation_horizon", csv);
  return 0;
}
