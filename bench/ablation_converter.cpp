// ablation_converter — design-choice ablation (DESIGN.md §7): the
// voltage-dependent DC/DC conversion efficiency (Section II-C.2). The
// paper argues the ultracapacitor's voltage swing degrades HEES
// efficiency through the converter ("power efficiency of the DC/DC
// converter ... may decrease as the voltage of the ultracapacitors
// drop while being overused") — OTEM therefore keeps the bank's SoE
// high. Flattening eta(V) removes that incentive; this bench measures
// what the modelling detail is worth.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/otem/otem_methodology.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 2));

  bench::print_header(
      "Ablation: converter efficiency model (OTEM, US06 x" +
      std::to_string(repeats) + ")");
  const std::vector<int> w = {22, 12, 14, 14, 14};
  bench::print_row({"cap_converter", "qloss_%", "avg_power_W",
                    "mean_SoE_%", "min_SoE_%"},
                   w);
  CsvTable csv({"variant", "qloss_percent", "avg_power_w",
                "mean_soe_percent", "min_soe_percent"});

  struct Variant {
    const char* name;
    double droop;
    double eta_max;
  };
  const std::vector<Variant> variants = {
      {"eta(V) droop=0.25", 0.25, 0.95},  // default: voltage-dependent
      {"flat eta=0.95", 0.0, 0.95},       // idealised converter
      {"flat eta=0.85", 0.0, 0.85},       // pessimistic constant
      {"steep droop=0.50", 0.50, 0.95},
  };

  for (const Variant& v : variants) {
    Config vcfg = cfg;
    vcfg.set("hees.cap_conv.droop", v.droop);
    vcfg.set("hees.cap_conv.eta_max", v.eta_max);
    if (v.eta_max < 0.86) vcfg.set("hees.cap_conv.eta_min", 0.6);
    const core::SystemSpec spec = core::SystemSpec::from_config(vcfg);
    const TimeSeries power =
        bench::cycle_power(spec, vehicle::CycleName::kUs06, repeats);
    const sim::Simulator sim(spec);
    core::OtemMethodology otem(spec, core::MpcOptions::from_config(vcfg),
                               core::OtemSolverOptions::from_config(vcfg));
    const sim::RunResult r = sim.run(otem, power);
    bench::print_row({v.name, bench::fmt(r.qloss_percent, 5),
                      bench::fmt(r.average_power_w, 0),
                      bench::fmt(r.trace.soe_percent.mean(), 1),
                      bench::fmt(r.trace.soe_percent.min(), 1)},
                     w);
    csv.add_row({v.name, bench::fmt(r.qloss_percent, 6),
                 bench::fmt(r.average_power_w, 1),
                 bench::fmt(r.trace.soe_percent.mean(), 2),
                 bench::fmt(r.trace.soe_percent.min(), 2)});
  }
  std::cout << "\nThe converter model is worth real watts: an idealised "
               "flat eta=0.95 understates consumption, and every extra "
               "point of droop is paid on each joule the bank cycles — "
               "the mechanism behind the paper's Section II-C.2 warning "
               "that an overused (low-voltage) ultracapacitor degrades "
               "HEES efficiency.\n";
  bench::maybe_write_csv(cfg, "ablation_converter", csv);
  return 0;
}
