// perf_models — google-benchmark microbenchmarks of the physical model
// evaluations (the per-step primitives every simulation and MPC rollout
// is built from). Not a paper experiment; establishes the performance
// budget that lets the MPC run thousands of rollouts per plant step.
#include <benchmark/benchmark.h>

#include "battery/aging.h"
#include "battery/battery_model.h"
#include "core/system_spec.h"
#include "hees/hybrid_arch.h"
#include "hees/parallel_arch.h"
#include "thermal/cooling_system.h"
#include "ultracap/ultracap_model.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace {

using namespace otem;

const core::SystemSpec& spec() {
  static const core::SystemSpec s = core::SystemSpec::from_config(Config());
  return s;
}

void BM_BatteryVoc(benchmark::State& state) {
  const battery::PackModel pack = spec().make_battery();
  double soc = 20.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack.open_circuit_voltage(soc));
    soc = soc >= 99.0 ? 20.0 : soc + 0.1;
  }
}
BENCHMARK(BM_BatteryVoc);

void BM_BatteryCurrentForPower(benchmark::State& state) {
  const battery::PackModel pack = spec().make_battery();
  double p = -30000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack.current_for_power(70.0, 300.0, p));
    p = p > 60000.0 ? -30000.0 : p + 97.0;
  }
}
BENCHMARK(BM_BatteryCurrentForPower);

void BM_CapacityFadeRate(benchmark::State& state) {
  const battery::CapacityFadeModel fade(spec().battery.cell);
  double i = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fade.loss_rate_percent_per_s(i, 305.0));
    i = i > 9.0 ? 0.0 : i + 0.01;
  }
}
BENCHMARK(BM_CapacityFadeRate);

void BM_UltracapStep(benchmark::State& state) {
  const ultracap::BankModel bank = spec().make_ultracap();
  double soe = 100.0;
  for (auto _ : state) {
    soe = bank.step_soe(soe, 5000.0, 1.0);
    if (soe < 25.0) soe = 100.0;
    benchmark::DoNotOptimize(soe);
  }
}
BENCHMARK(BM_UltracapStep);

void BM_ThermalStep(benchmark::State& state) {
  const thermal::CoolingSystem sys = spec().make_cooling();
  thermal::ThermalState s{305.0, 300.0};
  for (auto _ : state) {
    s = sys.step(s, 2000.0, 295.0, 1.0);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ThermalStep);

void BM_ThermalStepMatrix(benchmark::State& state) {
  const thermal::CoolingSystem sys = spec().make_cooling();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.step_matrix(1.0));
  }
}
BENCHMARK(BM_ThermalStepMatrix);

void BM_ParallelArchStep(benchmark::State& state) {
  const hees::ParallelArchitecture arch = spec().make_parallel_arch();
  double soc = 90.0, soe = 90.0;
  for (auto _ : state) {
    const hees::ArchStep s = arch.step(soc, soe, 300.0, 30000.0, 1.0);
    soc = s.soc_next > 25.0 ? s.soc_next : 90.0;
    soe = s.soe_next > 25.0 ? s.soe_next : 90.0;
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ParallelArchStep);

void BM_HybridArchStep(benchmark::State& state) {
  const hees::HybridArchitecture arch = spec().make_hybrid_arch();
  double soc = 90.0, soe = 90.0;
  for (auto _ : state) {
    const hees::ArchStep s =
        arch.step(soc, soe, 300.0, 20000.0, 10000.0, 1.0);
    soc = s.soc_next > 25.0 ? s.soc_next : 90.0;
    soe = s.soe_next > 25.0 ? s.soe_next : 90.0;
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_HybridArchStep);

void BM_GenerateCycle(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(vehicle::generate(vehicle::CycleName::kUs06));
  }
}
BENCHMARK(BM_GenerateCycle);

void BM_PowerTrace(benchmark::State& state) {
  const vehicle::Powertrain pt(spec().vehicle);
  const TimeSeries speed = vehicle::generate(vehicle::CycleName::kUs06);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.power_trace(speed));
  }
}
BENCHMARK(BM_PowerTrace);

}  // namespace

BENCHMARK_MAIN();
