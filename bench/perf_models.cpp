// perf_models — google-benchmark microbenchmarks of the physical model
// evaluations (the per-step primitives every simulation and MPC rollout
// is built from). Not a paper experiment; establishes the performance
// budget that lets the MPC run thousands of rollouts per plant step.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "battery/aging.h"
#include "battery/battery_model.h"
#include "core/batch_methodology.h"
#include "core/parallel_methodology.h"
#include "core/system_spec.h"
#include "hees/hybrid_arch.h"
#include "hees/parallel_arch.h"
#include "sim/plant_batch.h"
#include "sim/simulator.h"
#include "sim/step_sink.h"
#include "thermal/cooling_system.h"
#include "ultracap/ultracap_model.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace {

using namespace otem;

const core::SystemSpec& spec() {
  static const core::SystemSpec s = core::SystemSpec::from_config(Config());
  return s;
}

void BM_BatteryVoc(benchmark::State& state) {
  const battery::PackModel pack = spec().make_battery();
  double soc = 20.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack.open_circuit_voltage(soc));
    soc = soc >= 99.0 ? 20.0 : soc + 0.1;
  }
}
BENCHMARK(BM_BatteryVoc);

void BM_BatteryCurrentForPower(benchmark::State& state) {
  const battery::PackModel pack = spec().make_battery();
  double p = -30000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack.current_for_power(70.0, 300.0, p));
    p = p > 60000.0 ? -30000.0 : p + 97.0;
  }
}
BENCHMARK(BM_BatteryCurrentForPower);

void BM_CapacityFadeRate(benchmark::State& state) {
  const battery::CapacityFadeModel fade(spec().battery.cell);
  double i = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fade.loss_rate_percent_per_s(i, 305.0));
    i = i > 9.0 ? 0.0 : i + 0.01;
  }
}
BENCHMARK(BM_CapacityFadeRate);

void BM_UltracapStep(benchmark::State& state) {
  const ultracap::BankModel bank = spec().make_ultracap();
  double soe = 100.0;
  for (auto _ : state) {
    soe = bank.step_soe(soe, 5000.0, 1.0);
    if (soe < 25.0) soe = 100.0;
    benchmark::DoNotOptimize(soe);
  }
}
BENCHMARK(BM_UltracapStep);

void BM_ThermalStep(benchmark::State& state) {
  const thermal::CoolingSystem sys = spec().make_cooling();
  thermal::ThermalState s{305.0, 300.0};
  for (auto _ : state) {
    s = sys.step(s, 2000.0, 295.0, 1.0);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ThermalStep);

void BM_ThermalStepMatrix(benchmark::State& state) {
  const thermal::CoolingSystem sys = spec().make_cooling();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.step_matrix(1.0));
  }
}
BENCHMARK(BM_ThermalStepMatrix);

void BM_ParallelArchStep(benchmark::State& state) {
  const hees::ParallelArchitecture arch = spec().make_parallel_arch();
  double soc = 90.0, soe = 90.0;
  for (auto _ : state) {
    const hees::ArchStep s = arch.step(soc, soe, 300.0, 30000.0, 1.0);
    soc = s.soc_next > 25.0 ? s.soc_next : 90.0;
    soe = s.soe_next > 25.0 ? s.soe_next : 90.0;
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ParallelArchStep);

void BM_HybridArchStep(benchmark::State& state) {
  const hees::HybridArchitecture arch = spec().make_hybrid_arch();
  double soc = 90.0, soe = 90.0;
  for (auto _ : state) {
    const hees::ArchStep s =
        arch.step(soc, soe, 300.0, 20000.0, 10000.0, 1.0);
    soc = s.soc_next > 25.0 ? s.soc_next : 90.0;
    soe = s.soe_next > 25.0 ? s.soe_next : 90.0;
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_HybridArchStep);

// --- plant stepping: scalar oracle vs SoA batch -------------------------
// The same 64 short synthetic missions, stepped either one at a time
// through the scalar Simulator loop or in lockstep through a PlantBatch
// at increasing lane widths. items/s = mission-steps/s in both, so the
// two families are directly comparable; bench/check_batch.py gates
// batched >= 1.5x scalar on a single thread.

struct PlantWorkload {
  std::vector<sim::BatchMission> missions;
  size_t total_steps = 0;
};

PlantWorkload& plant_workload() {
  static PlantWorkload w = [] {
    PlantWorkload out;
    const core::SystemSpec& base = spec();
    for (std::uint64_t m = 0; m < 64; ++m) {
      sim::BatchMission mission;
      mission.spec = base;
      mission.spec.ambient_k = 286.0 + static_cast<double>(m % 16);
      const TimeSeries speed =
          vehicle::generate_synthetic(1000 + m, 240.0, 30.0);
      mission.load =
          vehicle::Powertrain(mission.spec.vehicle).power_trace(speed);
      mission.initial.t_battery_k = mission.spec.ambient_k;
      mission.initial.t_coolant_k = mission.spec.ambient_k;
      mission.initial.soe_percent = 50.0 + static_cast<double>(m % 8) * 6.0;
      out.total_steps += mission.load.size();
      out.missions.push_back(std::move(mission));
    }
    return out;
  }();
  return w;
}

void BM_PlantScalarStep(benchmark::State& state) {
  PlantWorkload& w = plant_workload();
  std::int64_t steps = 0;
  for (auto _ : state) {
    for (sim::BatchMission& m : w.missions) {
      core::ParallelMethodology methodology(m.spec);
      sim::RunOptions ropt;
      ropt.record_trace = false;
      ropt.initial = m.initial;
      sim::MetricsAccumulator metrics;
      std::vector<sim::StepSink*> sinks{&metrics};
      sim::Simulator(m.spec).run_with_sinks(methodology, m.load, ropt,
                                            sinks);
      benchmark::DoNotOptimize(metrics.take().qloss_percent);
    }
    steps += static_cast<std::int64_t>(w.total_steps);
  }
  state.SetItemsProcessed(steps);  // items/s = mission-steps/s
}
BENCHMARK(BM_PlantScalarStep)->Unit(benchmark::kMillisecond);

void BM_PlantBatchStep(benchmark::State& state) {
  const size_t lanes = static_cast<size_t>(state.range(0));
  PlantWorkload& w = plant_workload();
  std::vector<sim::MetricsAccumulator> metrics(w.missions.size());
  for (size_t m = 0; m < w.missions.size(); ++m)
    w.missions[m].sinks = {&metrics[m]};
  sim::PlantBatch batch(
      core::make_batch_methodology("parallel", spec(), lanes));
  std::int64_t steps = 0;
  for (auto _ : state) {
    batch.run(w.missions);
    benchmark::DoNotOptimize(metrics.front().take().qloss_percent);
    steps += static_cast<std::int64_t>(w.total_steps);
  }
  state.SetItemsProcessed(steps);
  state.counters["lanes"] = static_cast<double>(lanes);
}
BENCHMARK(BM_PlantBatchStep)
    ->Arg(1)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_GenerateCycle(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(vehicle::generate(vehicle::CycleName::kUs06));
  }
}
BENCHMARK(BM_GenerateCycle);

void BM_PowerTrace(benchmark::State& state) {
  const vehicle::Powertrain pt(spec().vehicle);
  const TimeSeries speed = vehicle::generate(vehicle::CycleName::kUs06);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.power_trace(speed));
  }
}
BENCHMARK(BM_PowerTrace);

}  // namespace

int main(int argc, char** argv) {
  // Same stamp as perf_solver/perf_fleet: how THIS repo was compiled,
  // which the bench/check_*.py gates require to be "release" (the stock
  // library_build_type key only describes the benchmark library).
#ifdef NDEBUG
  benchmark::AddCustomContext("repo_build_type", "release");
#else
  benchmark::AddCustomContext("repo_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
