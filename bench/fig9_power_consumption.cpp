// fig9_power_consumption — reproduces the paper's Fig. 9: "Power
// Consumption Comparison for Different Methodologies in Multiple Drive
// Cycles": average power drawn from the HEES (EV load + cooling
// overheads + all losses) per cycle and methodology.
//
// Expected shape: methodologies with active cooling (active_cooling,
// otem) consume more than the passive ones; OTEM consumes on average
// ~12 % LESS than the pure active-cooling architecture (the paper's
// 12.1 %) because the HEES shares the work the cooler would otherwise
// compensate for.
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.h"
#include "sim/metrics.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 3));

  const auto cycles = vehicle::all_cycles();
  const auto& methods = bench::methodology_names();
  const auto cells =
      bench::run_comparison(spec, cfg, cycles, methods, repeats);

  bench::print_header(
      "Fig. 9: Average power consumption [W], per drive cycle (x" +
      std::to_string(repeats) + ", ambient " +
      bench::fmt(spec.ambient_k - 273.15) + " C)");
  const std::vector<int> w = {9, 16, 14, 15, 14};
  bench::print_row({"cycle", "methodology", "avg_power_W", "cooling_Wavg",
                    "loss_Wavg"},
                   w);

  CsvTable csv({"cycle", "methodology", "avg_power_w", "cooling_w_avg",
                "loss_w_avg"});

  std::map<std::string, double> sum_power;
  std::map<std::string, int> count_power;
  for (const auto& c : cells) {
    const double cooling_avg =
        c.result.energy_cooling_j / c.result.duration_s;
    const double loss_avg = c.result.energy_loss_j / c.result.duration_s;
    bench::print_row({vehicle::to_string(c.cycle), c.methodology,
                      bench::fmt(c.result.average_power_w, 0),
                      bench::fmt(cooling_avg, 0), bench::fmt(loss_avg, 0)},
                     w);
    csv.add_row({vehicle::to_string(c.cycle), c.methodology,
                 bench::fmt(c.result.average_power_w, 1),
                 bench::fmt(cooling_avg, 1), bench::fmt(loss_avg, 1)});
    sum_power[c.methodology] += c.result.average_power_w;
    count_power[c.methodology] += 1;
  }

  std::cout << "\nAverage power across cycles:\n";
  for (const auto& name : methods)
    std::cout << "  " << name << ": "
              << bench::fmt(sum_power[name] / count_power[name], 0)
              << " W\n";

  const double otem = sum_power["otem"] / count_power["otem"];
  const double cool =
      sum_power["active_cooling"] / count_power["active_cooling"];
  std::cout << "\nOTEM vs pure active cooling: "
            << bench::fmt(100.0 * (1.0 - otem / cool), 2)
            << " % average power reduction (paper: 12.1 %)\n";
  bench::maybe_write_csv(cfg, "fig9", csv);
  return 0;
}
