#!/usr/bin/env python3
"""Fail when the batched plant path loses its throughput edge.

Reads a google-benchmark JSON file (as written by perf_models with
--benchmark_out) and compares BM_PlantScalarStep (missions stepped one
at a time through the scalar Simulator loop) against BM_PlantBatchStep/L
(the same missions in SoA lockstep through a PlantBatch at L lanes).
Both report items/s = mission-steps/s, so the ratio is a direct
single-thread throughput comparison. The contract — enforced in CI — is
that the BEST lane width clears the scalar path by at least the given
factor (default 1.5x). Per-lane-width ratios are printed for the record;
only the best one gates, since the 1-lane row exists to measure the
batching overhead, not to win.

Usage: check_batch.py BENCH_models.json [--min-ratio 1.5]

When the file was produced with --benchmark_repetitions, the MAXIMUM
items_per_second per benchmark is used (least-noisy "how fast can this
go" statistic). Exit code 1 when the best batched width misses the
ratio, or when the JSON was not produced from a Release build of this
repo (context.repo_build_type — see checklib.load_release_bench).
"""

import argparse
import re
import sys

import checklib

BATCH_RE = re.compile(r"^BM_PlantBatchStep/(\d+)")


def best_throughputs(benchmarks):
    """(scalar items/s, {lanes -> max items/s}) over iteration runs."""
    scalar = 0.0
    batch = {}
    for b in checklib.iteration_rows(benchmarks):
        ips = float(b.get("items_per_second", 0.0))
        if b["name"].startswith("BM_PlantScalarStep"):
            scalar = max(scalar, ips)
            continue
        m = BATCH_RE.match(b["name"])
        if m:
            lanes = int(m.group(1))
            batch[lanes] = max(batch.get(lanes, 0.0), ips)
    return scalar, batch


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json")
    ap.add_argument("--min-ratio", type=float, default=1.5)
    args = ap.parse_args()

    data = checklib.load_release_bench(args.bench_json)
    scalar, batch = best_throughputs(data["benchmarks"])
    if scalar <= 0.0 or not batch:
        print("error: no BM_PlantScalarStep / BM_PlantBatchStep rows in "
              f"{args.bench_json}", file=sys.stderr)
        return 1

    print(f"scalar: {scalar / 1e6:.3f} M mission-steps/s")
    print(f"{'lanes':>5}  {'Msteps/s':>9}  {'vs scalar':>9}")
    best_ratio = 0.0
    for lanes in sorted(batch):
        ratio = batch[lanes] / scalar
        best_ratio = max(best_ratio, ratio)
        print(f"{lanes:>5}  {batch[lanes] / 1e6:>9.3f}  {ratio:>8.2f}x")
    if best_ratio < args.min_ratio:
        print(f"error: best batched throughput is {best_ratio:.2f}x scalar, "
              f"below the {args.min_ratio:g}x gate", file=sys.stderr)
        return 1
    print(f"best batched width clears scalar by {best_ratio:.2f}x "
          f"(gate: {args.min_ratio:g}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
