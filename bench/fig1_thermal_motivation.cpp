// fig1_thermal_motivation — reproduces the paper's Fig. 1: battery
// cells' temperature while driving US06 under the dual architecture's
// threshold switching [16], for different ultracapacitor sizes.
//
// Expected shape: with a LARGE bank the venting holds the temperature
// near the switching threshold; with small banks the bank depletes
// before the battery has cooled, the load falls back to the (hot)
// battery, and the safe threshold is violated — the paper's motivation
// for adding an active cooling system. Bank recharging visibly re-heats
// the battery.
#include <iostream>
#include <vector>

#include "bench_common.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec base = core::SystemSpec::from_config(cfg);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 3));
  const double sample_every = cfg.get_double("sample_every_s", 120.0);

  const std::vector<double> sizes = {2000.0, 5000.0, 10000.0, 25000.0,
                                     50000.0};

  bench::print_header(
      "Fig. 1: Battery temperature under dual-architecture thermal "
      "management [16], US06 x" +
      std::to_string(repeats) + ", by ultracapacitor size");

  // One run per size; collect sampled traces.
  struct Run {
    double size;
    sim::RunResult result;
  };
  std::vector<Run> runs;
  const TimeSeries power =
      bench::cycle_power(base, vehicle::CycleName::kUs06, repeats);
  for (double size : sizes) {
    const core::SystemSpec spec = base.with_ultracap_size(size);
    const sim::Simulator sim(spec);
    auto dual = bench::make_methodology("dual", spec, cfg);
    runs.push_back({size, sim.run(*dual, power)});
  }

  // Temperature samples as rows (time) x columns (size).
  std::vector<std::string> header = {"t_s"};
  for (double size : sizes) header.push_back("Tb_C@" + bench::fmt(size, 0));
  CsvTable csv(header);

  std::vector<int> widths(header.size(), 14);
  bench::print_row(header, widths);
  const size_t steps = runs.front().result.trace.t_battery_k.size();
  for (size_t k = 0; k < steps;
       k += static_cast<size_t>(sample_every)) {
    std::vector<std::string> row = {bench::fmt(static_cast<double>(k), 0)};
    for (const Run& r : runs)
      row.push_back(
          bench::fmt(r.result.trace.t_battery_k[k] - 273.15, 2));
    bench::print_row(row, widths);
    csv.add_row(row);
  }

  std::cout << "\nSummary (safe threshold "
            << bench::fmt(base.thermal.max_battery_temp_k - 273.15, 1)
            << " C):\n";
  const std::vector<int> w = {12, 12, 16, 20};
  bench::print_row({"size_F", "max_Tb_C", "violation_s", "uc_exhausted"},
                   w);
  for (const Run& r : runs) {
    bench::print_row(
        {bench::fmt(r.size, 0),
         bench::fmt(r.result.max_t_battery_k - 273.15, 2),
         bench::fmt(r.result.thermal_violation_s, 0),
         std::to_string(r.result.infeasible_steps) + " steps"},
        w);
  }
  std::cout << "\nSmaller banks are exhausted mid-vent and the battery "
               "overheats — active cooling is necessary (paper Section "
               "I-A conclusion).\n";
  bench::maybe_write_csv(cfg, "fig1", csv);
  return 0;
}
