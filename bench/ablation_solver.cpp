// ablation_solver — design-choice ablation (DESIGN.md §7): how much
// optimisation effort does the receding-horizon loop need? Sweeps the
// inner Adam budget and the L-BFGS polish of the augmented-Lagrangian
// solver, measuring closed-loop quality (capacity loss, energy,
// constraint violations) against per-step solve time.
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/otem/ltv_controller.h"
#include "core/otem/otem_methodology.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 2));

  const TimeSeries power =
      bench::cycle_power(spec, vehicle::CycleName::kUs06, repeats);
  const sim::Simulator sim(spec);

  bench::print_header("Ablation: solver effort (OTEM, US06 x" +
                      std::to_string(repeats) + ")");
  const std::vector<int> w = {26, 12, 14, 14, 14};
  bench::print_row(
      {"solver", "qloss_%", "avg_power_W", "violation_s", "ms_per_step"},
      w);
  CsvTable csv({"solver", "qloss_percent", "avg_power_w", "violation_s",
                "ms_per_step"});

  struct Variant {
    const char* name;
    size_t adam;
    bool polish;
    size_t outer;
  };
  const std::vector<Variant> variants = {
      {"adam=15 outer=1", 15, false, 1},
      {"adam=30 outer=2", 30, false, 2},
      {"adam=60 outer=2", 60, false, 2},
      {"adam=60+lbfgs outer=2", 60, true, 2},
      {"adam=120+lbfgs outer=4", 120, true, 4},
      {"adam=240+lbfgs outer=6", 240, true, 6},
  };

  auto run_one = [&](const std::string& name,
                     std::unique_ptr<core::Methodology> otem) {
    const auto start = std::chrono::steady_clock::now();
    sim::RunOptions opt;
    opt.record_trace = false;
    const sim::RunResult r = sim.run(*otem, power, opt);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count() /
        static_cast<double>(power.size());
    bench::print_row({name, bench::fmt(r.qloss_percent, 5),
                      bench::fmt(r.average_power_w, 0),
                      bench::fmt(r.thermal_violation_s, 0),
                      bench::fmt(ms, 3)},
                     w);
    csv.add_row({name, bench::fmt(r.qloss_percent, 6),
                 bench::fmt(r.average_power_w, 1),
                 bench::fmt(r.thermal_violation_s, 1),
                 bench::fmt(ms, 4)});
  };

  for (const Variant& v : variants) {
    core::OtemSolverOptions sopt = core::OtemSolverOptions::from_config(cfg);
    sopt.al.adam.max_iterations = v.adam;
    sopt.al.polish_with_lbfgs = v.polish;
    sopt.al.max_outer_iterations = v.outer;
    run_one(v.name, std::make_unique<core::OtemMethodology>(
                        spec, core::MpcOptions::from_config(cfg), sopt));
  }

  // The alternative transcription: linearise-and-QP (LTV-SQP) on the
  // ADMM solver, same MPC problem.
  run_one("ltv-qp sqp=3",
          std::make_unique<core::OtemMethodology>(
              spec, std::make_unique<core::LtvOtemController>(
                        spec, core::MpcOptions::from_config(cfg))));
  std::cout << "\nThe warm-started receding horizon is forgiving: modest "
               "inner budgets already land within a few percent of the "
               "full-effort energy, with the shortfall showing up as "
               "extra capacity loss (a less precise TEB). Sub-millisecond "
               "steps at adam=30 are ECU-compatible.\n";
  bench::maybe_write_csv(cfg, "ablation_solver", csv);
  return 0;
}
