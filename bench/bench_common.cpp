#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/error.h"
#include "common/strings.h"
#include "vehicle/powertrain.h"

namespace otem::bench {

std::unique_ptr<core::Methodology> make_methodology(
    const std::string& name, const core::SystemSpec& spec,
    const Config& cfg) {
  return core::make_methodology(name, spec, cfg);
}

TimeSeries cycle_power(const core::SystemSpec& spec,
                       vehicle::CycleName cycle, size_t repeats) {
  const vehicle::Powertrain pt(spec.vehicle);
  return pt.power_trace(vehicle::generate(cycle)).repeated(repeats);
}

namespace {
// Copy of the bench config sharing its consumed-key set; inspected at
// exit so every get_* the bench performed has happened by then.
Config& tracked_config() {
  static Config cfg;
  return cfg;
}

void warn_unused_overrides() {
  for (const std::string& key : tracked_config().unused_keys()) {
    std::fprintf(stderr,
                 "warning: config override '%s' was never consumed "
                 "(misspelled key?)\n",
                 key.c_str());
  }
}
}  // namespace

Config bench_defaults(int argc, char** argv) {
  // The paper's experiments start from x0 = 298 K; the same 25 C
  // ambient is the default here (override with ambient_k=...).
  Config cfg = Config::from_args(argc, argv);
  tracked_config() = cfg;
  static const bool armed = [] {
    std::atexit(warn_unused_overrides);
    return true;
  }();
  (void)armed;
  return cfg;
}

void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  OTEM_REQUIRE(cells.size() == widths.size(), "table row width mismatch");
  for (size_t i = 0; i < cells.size(); ++i)
    std::printf("%-*s", widths[i], cells[i].c_str());
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  return strings::format_double(v, precision);
}

std::vector<ComparisonCell> run_comparison(
    const core::SystemSpec& spec, const Config& cfg,
    const std::vector<vehicle::CycleName>& cycles,
    const std::vector<std::string>& methods, size_t repeats) {
  std::vector<ComparisonCell> out;
  for (vehicle::CycleName cycle : cycles) {
    for (const auto& name : methods) {
      sim::Scenario sc;
      sc.methodology = name;
      sc.cycle = vehicle::to_string(cycle);
      sc.repeats = repeats;
      sc.record_trace = false;
      out.push_back(
          {cycle, name, sim::run_scenario(sc, spec, cfg).result});
    }
  }
  return out;
}

void maybe_write_csv(const Config& cfg, const std::string& name,
                     const CsvTable& table) {
  if (!cfg.has("csv")) return;
  const std::string path = cfg.get_string("csv", "") + name + ".csv";
  table.write_file(path);
  std::cout << "[csv] wrote " << path << "\n";
}

}  // namespace otem::bench
