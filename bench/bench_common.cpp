#include "bench_common.h"

#include <cstdio>
#include <iostream>

#include "common/error.h"
#include "common/strings.h"
#include "core/cooling_methodology.h"
#include "core/dual_methodology.h"
#include "core/otem/otem_methodology.h"
#include "core/parallel_methodology.h"
#include "vehicle/powertrain.h"

namespace otem::bench {

std::unique_ptr<core::Methodology> make_methodology(
    const std::string& name, const core::SystemSpec& spec,
    const Config& cfg) {
  if (name == "parallel")
    return std::make_unique<core::ParallelMethodology>(spec);
  if (name == "active_cooling")
    return std::make_unique<core::CoolingMethodology>(
        spec, core::CoolingPolicyParams::from_config(cfg));
  if (name == "dual")
    return std::make_unique<core::DualMethodology>(
        spec, core::DualPolicyParams::from_config(cfg));
  if (name == "otem")
    return std::make_unique<core::OtemMethodology>(
        spec, core::MpcOptions::from_config(cfg),
        core::OtemSolverOptions::from_config(cfg));
  throw SimError("unknown methodology: '" + name + "'");
}

TimeSeries cycle_power(const core::SystemSpec& spec,
                       vehicle::CycleName cycle, size_t repeats) {
  const vehicle::Powertrain pt(spec.vehicle);
  return pt.power_trace(vehicle::generate(cycle)).repeated(repeats);
}

Config bench_defaults(int argc, char** argv) {
  // The paper's experiments start from x0 = 298 K; the same 25 C
  // ambient is the default here (override with ambient_k=...).
  return Config::from_args(argc, argv);
}

void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  OTEM_REQUIRE(cells.size() == widths.size(), "table row width mismatch");
  for (size_t i = 0; i < cells.size(); ++i)
    std::printf("%-*s", widths[i], cells[i].c_str());
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  return strings::format_double(v, precision);
}

std::vector<ComparisonCell> run_comparison(
    const core::SystemSpec& spec, const Config& cfg,
    const std::vector<vehicle::CycleName>& cycles,
    const std::vector<std::string>& methods, size_t repeats) {
  std::vector<ComparisonCell> out;
  const sim::Simulator sim(spec);
  for (vehicle::CycleName cycle : cycles) {
    const TimeSeries power = cycle_power(spec, cycle, repeats);
    for (const auto& name : methods) {
      auto m = make_methodology(name, spec, cfg);
      sim::RunOptions opt;
      opt.record_trace = false;
      out.push_back({cycle, name, sim.run(*m, power, opt)});
    }
  }
  return out;
}

void maybe_write_csv(const Config& cfg, const std::string& name,
                     const CsvTable& table) {
  if (!cfg.has("csv")) return;
  const std::string path = cfg.get_string("csv", "") + name + ".csv";
  table.write_file(path);
  std::cout << "[csv] wrote " << path << "\n";
}

}  // namespace otem::bench
