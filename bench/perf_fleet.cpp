// perf_fleet — google-benchmark timings for the execution subsystem:
// fleet evaluation wall-clock at increasing thread counts (serial
// baseline at threads=1), the same fleet with full instrumentation
// attached (BM_FleetEvaluateMetrics) and with the span tracer enabled
// on top (BM_FleetEvaluateTraced) — both held to the <5 % overhead
// budget CI enforces via bench/check_overhead.py — the ADMM QP hot
// path (cold
// one-shot vs a warm persistent QpSolver workspace, ns per ADMM
// iteration), and the obs primitives themselves (counter add,
// histogram record, scoped timer). bench/run_benchmarks.sh wraps this
// binary and emits BENCH_fleet.json so successive PRs have a perf
// trajectory to regress against.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "core/parallel_methodology.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/sketch.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "optim/qp.h"
#include "sim/fleet.h"

namespace {

using namespace otem;

core::SystemSpec spec() { return core::SystemSpec::from_config(Config()); }

sim::FleetOptions fleet_options(size_t threads) {
  sim::FleetOptions f;  // default 16-mission fleet
  f.seed = 7;
  f.threads = threads;
  // Shorter missions than the deployment default keep one benchmark
  // iteration in the hundreds-of-ms range; the per-mission work is
  // still a full closed-loop thermal/electrical simulation.
  f.min_duration_s = 200.0;
  f.max_duration_s = 500.0;
  return f;
}

auto parallel_factory() {
  return [](const core::SystemSpec& s) {
    return std::make_unique<core::ParallelMethodology>(s);
  };
}

/// evaluate_fleet at a given execution width. threads=1 is the serial
/// fallback path (no pool, no locks); results are bit-identical across
/// widths by construction (pre-drawn mission conditions).
void BM_FleetEvaluate(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const core::SystemSpec base = spec();
  const sim::FleetOptions options = fleet_options(threads);
  for (auto _ : state) {
    const sim::FleetResult r =
        sim::evaluate_fleet(base, parallel_factory(), options);
    benchmark::DoNotOptimize(r.qloss_percent.mean);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_FleetEvaluate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The same fleet with the instrumentation layer fully attached: a
/// shared fleet-aggregate MetricsRegistry written concurrently by all
/// missions (DiagnosticsSink per mission), step-loop timing on. CI
/// compares this against BM_FleetEvaluate at the same thread count and
/// fails when the overhead exceeds 5 %.
void BM_FleetEvaluateMetrics(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const core::SystemSpec base = spec();
  obs::MetricsRegistry registry;
  sim::FleetOptions options = fleet_options(threads);
  options.metrics = &registry;
  for (auto _ : state) {
    const sim::FleetResult r =
        sim::evaluate_fleet(base, parallel_factory(), options);
    benchmark::DoNotOptimize(r.qloss_percent.mean);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["steps_instrumented"] = static_cast<double>(
      registry.snapshot().counters.at("fleet.sim.steps"));
}
BENCHMARK(BM_FleetEvaluateMetrics)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The same fleet with the span tracer live on top of the metrics
/// layer: every mission records fleet.mission / sim.run / sim.step
/// spans into its thread's flight-recorder ring. CI compares this
/// against BM_FleetEvaluate at the same thread count under the same
/// <5 % budget (bench/check_overhead.py) — the cost of leaving the
/// tracer ENABLED, not just compiled in.
void BM_FleetEvaluateTraced(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const core::SystemSpec base = spec();
  obs::MetricsRegistry registry;
  sim::FleetOptions options = fleet_options(threads);
  options.metrics = &registry;
  obs::set_trace_enabled(true);
  for (auto _ : state) {
    const sim::FleetResult r =
        sim::evaluate_fleet(base, parallel_factory(), options);
    benchmark::DoNotOptimize(r.qloss_percent.mean);
  }
  obs::set_trace_enabled(false);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["spans_in_rings"] =
      static_cast<double>(obs::TraceCollector().collect().size());
  obs::trace_reset();
}
BENCHMARK(BM_FleetEvaluateTraced)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The batched counterpart: each worker owns one PlantBatch stepping
/// `lanes` missions in lockstep through the SoA plant kernels. Results
/// are bit-identical to BM_FleetEvaluate's (tests/test_plant_batch.cpp
/// pins that); this measures the throughput the lockstep layout buys.
void BM_FleetEvaluateBatch(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t lanes = static_cast<size_t>(state.range(1));
  const core::SystemSpec base = spec();
  sim::FleetOptions options = fleet_options(threads);
  options.batch_lanes = lanes;
  const auto factory = [](const core::SystemSpec& s, size_t n) {
    return core::make_batch_methodology("parallel", s, n);
  };
  for (auto _ : state) {
    const sim::FleetResult r =
        sim::evaluate_fleet_batched(base, factory, options);
    benchmark::DoNotOptimize(r.qloss_percent.mean);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["lanes"] = static_cast<double>(lanes);
}
BENCHMARK(BM_FleetEvaluateBatch)
    ->Args({1, 16})
    ->Args({2, 8})
    ->Args({4, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- obs primitives ----------------------------------------------------
// The per-event costs underlying the fleet overhead: a sharded counter
// add, a histogram record (binary search + 5 atomics), and the scoped
// timer's two clock reads. The *Disabled variants measure the kill
// switch (one relaxed load, no clock).

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("bench.counter");
  for (auto _ : state) c.add();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& h =
      registry.histogram("bench.hist", obs::latency_buckets_us());
  double v = 1.0;
  for (auto _ : state) {
    h.record(v);
    v = v < 1e6 ? v * 1.7 : 1.0;
  }
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsScopedTimer(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& h =
      registry.histogram("bench.timer", obs::latency_buckets_us());
  for (auto _ : state) {
    const obs::ScopedTimer t(h);
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_ObsScopedTimer);

void BM_ObsSketchRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Sketch& s = registry.sketch("bench.sketch");
  double v = 1.0;
  for (auto _ : state) {
    s.record(v);
    v = v < 1e6 ? v * 1.7 : 1.0;
  }
}
BENCHMARK(BM_ObsSketchRecord);

void BM_TraceSpanEnabled(benchmark::State& state) {
  obs::set_trace_enabled(true);
  for (auto _ : state) {
    const obs::TraceSpan span("bench.span");
    benchmark::DoNotOptimize(&span);
  }
  obs::set_trace_enabled(false);
  obs::trace_reset();
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_TraceSpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    const obs::TraceSpan span("bench.span_off");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_ObsScopedTimerDisabled(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& h =
      registry.histogram("bench.timer_off", obs::latency_buckets_us());
  obs::set_enabled(false);
  for (auto _ : state) {
    const obs::ScopedTimer t(h);
    benchmark::DoNotOptimize(&t);
  }
  obs::set_enabled(true);
}
BENCHMARK(BM_ObsScopedTimerDisabled);

/// A QP shaped like the LTV-MPC subproblem at the given horizon:
/// nu = 2h decision variables, nu box rows plus 4h banded state rows.
optim::QpProblem mpc_shaped_qp(size_t horizon) {
  const size_t nu = 2 * horizon;
  const size_t rows = nu + 4 * horizon;
  optim::QpProblem p;
  p.p = optim::Matrix(nu, nu);
  p.q.assign(nu, 0.0);
  for (size_t i = 0; i < nu; ++i) {
    p.p(i, i) = 0.05 + 0.01 * static_cast<double>(i % 7);
    p.q[i] = (i % 2 == 0) ? -0.02 : 0.015;
  }
  p.a = optim::Matrix(rows, nu);
  p.l.assign(rows, 0.0);
  p.u.assign(rows, 0.0);
  for (size_t i = 0; i < nu; ++i) {
    p.a(i, i) = 1.0;
    p.l[i] = -1.0;
    p.u[i] = 1.0;
  }
  // State rows: causal (lower-banded) sensitivity pattern with decaying
  // influence of older controls, equilibrated to unit row norm.
  for (size_t k = 0; k < horizon; ++k) {
    for (size_t j = 0; j < 4; ++j) {
      const size_t r = nu + 4 * k + j;
      for (size_t col = 0; col <= 2 * k + 1; ++col) {
        const double age = static_cast<double>(2 * k + 1 - col);
        p.a(r, col) = ((col + j) % 3 == 0 ? 1.0 : -0.4) /
                      (1.0 + 0.35 * age);
      }
      p.l[r] = -0.8 - 0.05 * static_cast<double>(j);
      p.u[r] = 0.9;
    }
  }
  return p;
}

/// One-shot solve_qp: pays the full workspace allocation every call.
void BM_QpSolveCold(benchmark::State& state) {
  const optim::QpProblem p =
      mpc_shaped_qp(static_cast<size_t>(state.range(0)));
  optim::QpOptions opt;
  opt.eps_abs = 1e-4;
  opt.eps_rel = 1e-4;
  std::int64_t total_iters = 0;
  for (auto _ : state) {
    const optim::QpResult r = optim::solve_qp(p, opt);
    total_iters += static_cast<std::int64_t>(r.iterations);
    benchmark::DoNotOptimize(r.primal_residual);
  }
  state.SetItemsProcessed(total_iters);  // items/s = ADMM iterations/s
}
BENCHMARK(BM_QpSolveCold)->Arg(10)->Arg(30)->Arg(60);

/// Persistent QpSolver: the workspace (KKT matrix, factorisation,
/// iterate buffers) is reused across solves, the steady state of an MPC
/// controller calling the solver every step.
void BM_QpSolveWarm(benchmark::State& state) {
  const optim::QpProblem p =
      mpc_shaped_qp(static_cast<size_t>(state.range(0)));
  optim::QpOptions opt;
  opt.eps_abs = 1e-4;
  opt.eps_rel = 1e-4;
  optim::QpSolver solver;
  std::int64_t total_iters = 0;
  for (auto _ : state) {
    const optim::QpResult r = solver.solve(p, opt);
    total_iters += static_cast<std::int64_t>(r.iterations);
    benchmark::DoNotOptimize(r.primal_residual);
  }
  state.SetItemsProcessed(total_iters);
}
BENCHMARK(BM_QpSolveWarm)->Arg(10)->Arg(30)->Arg(60);

}  // namespace

int main(int argc, char** argv) {
  // Same stamp as perf_solver: how THIS repo was compiled, which the
  // bench/check_*.py gates require to be "release" (the stock
  // library_build_type key only describes the benchmark library).
#ifdef NDEBUG
  benchmark::AddCustomContext("repo_build_type", "release");
#else
  benchmark::AddCustomContext("repo_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
