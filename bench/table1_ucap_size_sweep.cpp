// table1_ucap_size_sweep — reproduces the paper's Table I:
// "Analyzing the Influence of Ultracapacitor Size in Different
// Methodologies". US06 drive cycle; ultracapacitor sizes 5,000 F to
// 25,000 F; Parallel [15], Dual [16] and OTEM compared on average
// power [W] and capacity loss [% of Parallel @ 25,000 F].
//
// Expected shape (paper): shrinking the bank raises the parallel
// architecture's capacity loss steeply (175 % at 5 kF vs 100 % at
// 25 kF) and hurts Dual moderately, while OTEM stays nearly flat
// because the active cooling system substitutes for the missing bank.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "exec/thread_pool.h"
#include "sim/metrics.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec base = core::SystemSpec::from_config(cfg);
  const size_t repeats =
      static_cast<size_t>(cfg.get_long("repeats", 3));

  const std::vector<double> sizes = {5000.0, 10000.0, 20000.0, 25000.0};
  const std::vector<std::string> methods = {"parallel", "dual", "otem"};

  // Normalisation baseline: Parallel @ 25,000 F (the paper's 100 %).
  const core::SystemSpec spec25 = base.with_ultracap_size(25000.0);
  const TimeSeries power = bench::cycle_power(
      spec25, vehicle::CycleName::kUs06, repeats);
  sim::Scenario base_sc;
  base_sc.methodology = "parallel";
  base_sc.cycle = vehicle::to_string(vehicle::CycleName::kUs06);
  base_sc.repeats = repeats;
  base_sc.record_trace = false;
  const sim::RunResult baseline =
      sim::run_scenario(base_sc, spec25, cfg).result;

  bench::print_header(
      "Table I: Influence of Ultracapacitor Size (US06 x" +
      std::to_string(repeats) + ", ambient " +
      bench::fmt(base.ambient_k - 273.15) + " C)");
  const std::vector<int> w = {10, 16, 14, 14, 16, 18, 10};
  bench::print_row({"size_F", "methodology", "avg_power_W", "qloss_rel_%",
                    "max_Tb_C", "violation_s", "infeas"},
                   w);

  CsvTable csv({"size_f", "methodology", "avg_power_w", "qloss_rel_percent",
                "qloss_abs_percent", "max_tb_c", "violation_s"});

  // The (size x methodology) grid is embarrassingly parallel once the
  // serial baseline above is fixed; run the cells on the exec pool and
  // print in grid order so output is identical at any width.
  const size_t threads = static_cast<size_t>(cfg.get_long("threads", 0));
  const size_t cells = sizes.size() * methods.size();
  std::vector<sim::RunResult> results(cells);
  exec::parallel_for(
      cells,
      [&](size_t i) {
        const core::SystemSpec spec =
            base.with_ultracap_size(sizes[i / methods.size()]);
        const sim::Simulator sim(spec);
        auto m = bench::make_methodology(methods[i % methods.size()],
                                         spec, cfg);
        sim::RunOptions opt;
        opt.record_trace = false;
        results[i] = sim.run(*m, power, opt);
      },
      threads);

  for (size_t i = 0; i < cells; ++i) {
    const double size = sizes[i / methods.size()];
    const std::string& name = methods[i % methods.size()];
    const sim::RunResult& r = results[i];
    const double rel = sim::relative_capacity_loss_percent(r, baseline);
    bench::print_row(
        {bench::fmt(size, 0), name, bench::fmt(r.average_power_w, 0),
         bench::fmt(rel, 2), bench::fmt(r.max_t_battery_k - 273.15, 2),
         bench::fmt(r.thermal_violation_s, 0),
         std::to_string(r.infeasible_steps)},
        w);
    csv.add_row({bench::fmt(size, 0), name,
                 bench::fmt(r.average_power_w, 1), bench::fmt(rel, 3),
                 bench::fmt(r.qloss_percent, 6),
                 bench::fmt(r.max_t_battery_k - 273.15, 3),
                 bench::fmt(r.thermal_violation_s, 1)});
  }
  bench::maybe_write_csv(cfg, "table1", csv);
  return 0;
}
