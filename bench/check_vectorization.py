#!/usr/bin/env python3
"""Gate: the SoA lane loops must still auto-vectorize.

Reads a build log produced with -fopt-info-vec (GCC prints one
"optimized: ... loop vectorized ..." remark per vectorized loop,
prefixed with the source path) and requires at least one vectorized
loop in every core lane-kernel translation unit. A refactor that
reintroduces a libm call, an unspeculatable load or data-dependent
control flow into a lane loop silently drops the batch tier back to
scalar speed — the remark disappearing is the earliest, cheapest
signal of that regression.

Usage: check_vectorization.py BUILD_LOG [--require FILE ...]
"""

import argparse
import re
import sys

from checklib import fail

# Translation units holding the batched step_lanes()/power_lanes()
# kernels (see docs/ARCHITECTURE.md, "Batched plant layer").
DEFAULT_REQUIRED = [
    "src/thermal/cooling_system.cpp",
    "src/battery/battery_model.cpp",
    "src/battery/rc_model.cpp",
    "src/ultracap/ultracap_model.cpp",
    "src/vehicle/powertrain.cpp",
    "src/hees/parallel_arch.cpp",
]

REMARK = re.compile(r"^(?P<file>\S+?):\d+:\d+: optimized:.*loop vectorized")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("build_log", help="build output captured with -fopt-info-vec")
    ap.add_argument(
        "--require",
        action="append",
        default=None,
        metavar="FILE",
        help="source file that must show a vectorized loop "
        "(repeatable; defaults to the core lane-kernel TUs)",
    )
    args = ap.parse_args()
    required = args.require or DEFAULT_REQUIRED

    vectorized = set()
    with open(args.build_log) as f:
        for line in f:
            m = REMARK.match(line.strip())
            if m:
                vectorized.add(m.group("file"))

    if not vectorized:
        return fail("no 'loop vectorized' remarks found at all - was the "
                    "build run with -fopt-info-vec?")

    failed = []
    for req in required:
        # Remark paths may be absolute or relative; match on suffix.
        hit = any(v == req or v.endswith("/" + req) for v in vectorized)
        print(f"{'ok  ' if hit else 'MISS'}  {req}")
        if not hit:
            failed.append(req)

    if failed:
        return fail(f"{len(failed)} lane-kernel TU(s) lost vectorization: "
                    + ", ".join(failed))
    print(f"\nall {len(required)} lane-kernel TUs report vectorized loops")
    return 0


if __name__ == "__main__":
    sys.exit(main())
