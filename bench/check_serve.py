#!/usr/bin/env python3
"""Gate the serve-layer loadtest results (otem.bench_serve.v1).

Reads the BENCH_serve.json stamped by `otem_cli loadtest bench_json=`
and fails when the sessionful serving path regresses:

  latency   — client-observed session.step RTT p50/p99 must stay under
              --max-p50-us / --max-p99-us. The shipped defaults encode
              the headline claim (sub-millisecond p50 at H=30 over
              localhost TCP); CI passes machine-appropriate values
              because shared runners are not the 1-core reference box.
  warm start — the mean QP iterations of warm steps (k>=1, riding the
              receding-horizon warm start carried across protocol
              frames) must be below --max-warm-cold-ratio of the cold
              k=0 solve's. If warm stops being cheaper than cold, the
              session layer lost the one thing it exists to preserve.
  accounting — every streamed step must be visible to the daemon's own
              serve.session.step_us sketch (client count == server
              count), sessions opened == closed (none leaked or
              evicted mid-test), and the sharded result cache counters
              must be present so multi-worker serving keeps reporting.

Usage: check_serve.py BENCH_serve.json [--max-p50-us 1000]
       [--max-p99-us 20000] [--max-warm-cold-ratio 0.75]

Exit code 1 on any violated bound, a missing section (a renamed field
can't silently disable the gate), or a non-Release build stamp.
"""

import argparse
import sys

import checklib

SCHEMA = "otem.bench_serve.v1"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json")
    ap.add_argument("--max-p50-us", type=float, default=1000.0)
    ap.add_argument("--max-p99-us", type=float, default=20000.0)
    ap.add_argument("--max-warm-cold-ratio", type=float, default=0.75)
    args = ap.parse_args()

    doc = checklib.load_json(args.bench_json)
    checklib.require_schema(doc, SCHEMA, args.bench_json)

    ctx = doc.get("context", {})
    if ctx.get("repo_build_type") != "release":
        return checklib.fail(
            f"{args.bench_json} was measured from a "
            f"'{ctx.get('repo_build_type', 'unknown')}' build, not "
            "'release'; regenerate from a Release tree")

    sess = doc.get("session_step")
    if not isinstance(sess, dict):
        return checklib.fail("document has no session_step section")
    rtt = sess.get("rtt_us")
    if not isinstance(rtt, dict) or rtt.get("count", 0) <= 0:
        return checklib.fail("session_step.rtt_us is missing or empty")

    failures = []

    p50, p99 = rtt.get("p50"), rtt.get("p99")
    if p50 is None or p50 > args.max_p50_us:
        failures.append(
            f"session.step RTT p50 {p50} us exceeds bound "
            f"{args.max_p50_us} us")
    if p99 is None or p99 > args.max_p99_us:
        failures.append(
            f"session.step RTT p99 {p99} us exceeds bound "
            f"{args.max_p99_us} us")

    cold = sess.get("cold_qp_iterations_mean")
    warm = sess.get("warm_qp_iterations_mean")
    if not sess.get("cold_steps") or not sess.get("warm_steps"):
        failures.append("loadtest recorded no cold or no warm steps; "
                        "cannot certify the warm-start carryover")
    elif cold is None or warm is None or cold <= 0:
        failures.append("cold/warm QP iteration means missing")
    elif warm > args.max_warm_cold_ratio * cold:
        failures.append(
            f"warm steps average {warm:.1f} QP iterations vs cold "
            f"{cold:.1f} — ratio {warm / cold:.2f} exceeds "
            f"{args.max_warm_cold_ratio} (warm start not carrying "
            "across session frames?)")

    stats = doc.get("server_stats", {})
    server_step = stats.get("session_step_us", {})
    if server_step.get("count") != rtt.get("count"):
        failures.append(
            f"daemon's serve.session.step_us sketch saw "
            f"{server_step.get('count')} steps but clients measured "
            f"{rtt.get('count')} — instrumentation is dropping steps")
    workers = stats.get("workers", {})
    if workers.get("count") != ctx.get("workers"):
        failures.append(
            f"stats reports {workers.get('count')} workers, context "
            f"says {ctx.get('workers')}")

    counters = doc.get("counters", {})
    clients = ctx.get("clients")
    for name in ("serve.sessions_opened", "serve.sessions_closed"):
        if counters.get(name) != clients:
            failures.append(
                f"{name} = {counters.get(name)}, expected {clients} "
                "(a session leaked, failed, or was evicted mid-test)")
    for name in ("serve.cache.hits", "serve.cache.misses"):
        if name not in counters:
            failures.append(f"counter {name} missing — the sharded "
                            "result cache stopped reporting")

    if failures:
        for f in failures:
            checklib.fail(f)
        return 1

    print(f"check_serve: OK — p50 {p50:.0f} us (bound "
          f"{args.max_p50_us:.0f}), p99 {p99:.0f} us (bound "
          f"{args.max_p99_us:.0f}), warm/cold QP iterations "
          f"{warm:.1f}/{cold:.1f} over {int(rtt['count'])} steps, "
          f"{workers.get('count')} workers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
