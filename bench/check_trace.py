#!/usr/bin/env python3
"""Validate an otem.trace.v1 Chrome trace file.

Used by the CI trace-smoke step: a short scenario is run with
trace_out=<path>, then this script checks that the file is what
chrome://tracing / ui.perfetto.dev expect —

  - top-level object with schema "otem.trace.v1" and a non-empty
    traceEvents array;
  - every event is a complete-duration ("ph":"X") event carrying
    name/cat/ts/dur/pid/tid, with ts/dur finite and dur >= 0;
  - events within one tid nest consistently (a child span named by
    args.parent starts and ends inside some other event's interval is
    NOT checked exactly — overwritten flight-recorder rings may drop
    parents — but args.id/args.parent/args.depth must be present);
  - with --require NAME (repeatable), at least one event with that
    exact name exists — CI requires the scenario.run -> ltv.solve ->
    qp.factorize chain to prove every layer's spans survived to disk.

Usage: check_trace.py TRACE.json [--require scenario.run ...]
Exit code 1 on any violation, with a reason on stderr.
"""

import argparse
import math
import sys

import checklib
from checklib import fail

REQUIRED_EVENT_FIELDS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace_json")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="span name that must appear at least once")
    args = ap.parse_args()

    doc = checklib.load_json(args.trace_json)
    checklib.require_schema(doc, "otem.trace.v1", args.trace_json)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("traceEvents is missing or empty")

    names = {}
    for i, e in enumerate(events):
        for field in REQUIRED_EVENT_FIELDS:
            if field not in e:
                return fail(f"event {i} lacks '{field}': {e}")
        if e["ph"] != "X":
            return fail(f"event {i} has ph={e['ph']!r}, expected 'X'")
        if not (math.isfinite(e["ts"]) and math.isfinite(e["dur"])):
            return fail(f"event {i} has non-finite ts/dur: {e}")
        if e["dur"] < 0:
            return fail(f"event {i} has negative dur: {e}")
        span_args = e.get("args", {})
        for field in ("id", "parent", "depth"):
            if field not in span_args:
                return fail(f"event {i} args lack '{field}': {e}")
        names[e["name"]] = names.get(e["name"], 0) + 1

    missing = [n for n in args.require if n not in names]
    if missing:
        return fail(f"required span name(s) absent: {', '.join(missing)}; "
                    f"present: {', '.join(sorted(names))}")

    total = sum(names.values())
    print(f"ok: {total} events, {len(names)} distinct span names "
          f"({', '.join(sorted(names))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
