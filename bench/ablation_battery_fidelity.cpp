// ablation_battery_fidelity — modelling-fidelity extension: what does
// the paper's quasi-static battery model (Eqs. 2-3) miss relative to a
// second-order Thevenin model with a diffusion transient? The paper
// asserts a "more detailed battery electrical model ... will not
// contradict our methodology"; this bench puts numbers on the claim by
// replaying each methodology's recorded battery current through both
// models and comparing terminal voltage and heat.
#include <cmath>
#include <iostream>
#include <vector>

#include "battery/rc_model.h"
#include "bench_common.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 2));

  const battery::TransientPackModel rc(spec.battery,
                                       battery::RcParams::from_config(cfg));
  const TimeSeries power =
      bench::cycle_power(spec, vehicle::CycleName::kUs06, repeats);
  const sim::Simulator sim(spec);

  bench::print_header(
      "Ablation: quasi-static vs transient (RC) battery model, US06 x" +
      std::to_string(repeats) + " — replayed currents");
  const std::vector<int> w = {16, 14, 14, 14, 16};
  bench::print_row({"methodology", "v_rmse_V", "v_max_err_V",
                    "heat_extra_%", "v1_peak_V"},
                   w);
  CsvTable csv({"methodology", "v_rmse_v", "v_max_err_v",
                "heat_extra_percent", "v1_peak_v"});

  for (const auto& name : bench::methodology_names()) {
    auto m = bench::make_methodology(name, spec, cfg);
    const sim::RunResult r = sim.run(*m, power);

    double v1 = 0.0;
    double sq_err = 0.0, max_err = 0.0, v1_peak = 0.0;
    double heat_qs = 0.0, heat_rc = 0.0;
    const size_t n = r.trace.i_bat_a.size();
    for (size_t k = 0; k < n; ++k) {
      const double i = r.trace.i_bat_a[k];
      const double soc = r.trace.soc_percent[k];
      const double tb = r.trace.t_battery_k[k];
      const double v_qs =
          rc.quasi_static().terminal_voltage(soc, tb, i);
      const double v_rc = rc.terminal_voltage(soc, tb, i, v1);
      const double err = v_qs - v_rc;  // == v1
      sq_err += err * err;
      max_err = std::max(max_err, std::abs(err));
      heat_qs += rc.quasi_static().heat_generation(soc, tb, i);
      heat_rc += rc.heat_generation(soc, tb, i, v1);
      v1 = rc.step_v1(v1, i, power.dt());
      v1_peak = std::max(v1_peak, std::abs(v1));
    }
    const double rmse = std::sqrt(sq_err / static_cast<double>(n));
    const double heat_extra =
        heat_qs > 0.0 ? 100.0 * (heat_rc / heat_qs - 1.0) : 0.0;

    bench::print_row({name, bench::fmt(rmse, 2), bench::fmt(max_err, 2),
                      bench::fmt(heat_extra, 2), bench::fmt(v1_peak, 2)},
                     w);
    csv.add_row({name, bench::fmt(rmse, 4), bench::fmt(max_err, 4),
                 bench::fmt(heat_extra, 3), bench::fmt(v1_peak, 4)});
  }
  std::cout
      << "\nThe diffusion overpotential adds ~10-20 V of slow sag and "
         "~20-30 % of heat the quasi-static plant does not see. The "
         "extra heat scales near-proportionally with the ohmic heat "
         "(sustained currents dominate both), so it calibrates away "
         "into an effective R0 without changing any control decision — "
         "quantifying the paper's claim that a more detailed electrical "
         "model 'will not contradict the methodology'. The RC error is "
         "smallest for the methodologies that smooth battery current.\n";
  bench::maybe_write_csv(cfg, "ablation_battery_fidelity", csv);
  return 0;
}
