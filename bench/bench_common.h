// bench_common.h — shared scaffolding for the figure/table benches.
//
// Every bench binary accepts "key=value" overrides on the command line
// (same keys as otem::Config) so experiments can be re-parameterised,
// e.g.  ./fig8_battery_lifetime ambient_k=313.15 otem.w2=5e9
// Each bench prints a human-readable table to stdout and, when
// "csv=<path-prefix>" is given, writes the raw series as CSV.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/csv.h"
#include "core/methodology.h"
#include "core/methodology_registry.h"
#include "core/system_spec.h"
#include "sim/scenario.h"
#include "sim/simulator.h"
#include "vehicle/drive_cycle.h"

namespace otem::bench {

/// The paper's four compared strategies (the registry also knows
/// variants like "otem-ltv"; the figure benches sweep exactly these).
inline const std::vector<std::string>& methodology_names() {
  static const std::vector<std::string> names = {
      "parallel", "active_cooling", "dual", "otem"};
  return names;
}

/// Instantiate a methodology by name through the registry
/// (core::MethodologyRegistry), honouring each strategy's config
/// namespace ("otem.*", "dual.*", "cooling.*", "forecast").
std::unique_ptr<core::Methodology> make_methodology(
    const std::string& name, const core::SystemSpec& spec,
    const Config& cfg);

/// Power-request trace for a named cycle under the spec's vehicle,
/// repeated `repeats` times.
TimeSeries cycle_power(const core::SystemSpec& spec,
                       vehicle::CycleName cycle, size_t repeats);

/// Parse the bench command line. Also arms an at-exit check that warns
/// about overrides nothing consumed (typo'd keys fail loudly).
Config bench_defaults(int argc, char** argv);

/// Fixed-width table printing helpers.
void print_header(const std::string& title);
void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths);

/// Format helpers.
std::string fmt(double v, int precision = 1);

/// Write `table` to "<prefix><name>.csv" when cfg has "csv".
void maybe_write_csv(const Config& cfg, const std::string& name,
                     const CsvTable& table);

/// One methodology on one cycle, summarised (used by Figs. 8-9).
struct ComparisonCell {
  vehicle::CycleName cycle;
  std::string methodology;
  sim::RunResult result;
};

/// Run every listed methodology on every listed cycle (each repeated
/// `repeats` times) under one spec. Rows come back grouped by cycle in
/// methodology order.
std::vector<ComparisonCell> run_comparison(
    const core::SystemSpec& spec, const Config& cfg,
    const std::vector<vehicle::CycleName>& cycles,
    const std::vector<std::string>& methods, size_t repeats);

}  // namespace otem::bench
