// sweep_ambient — environment-temperature sweep. The paper evaluates
// "multiple standard driving cycles ... different environment
// temperatures" (Section IV-A); this bench makes the temperature axis
// explicit: the same US06 mission from a winter-cold soak to a desert
// afternoon, for every methodology. The pack starts soaked at ambient.
//
// Expected shape: the spread between methodologies grows with ambient —
// hot packs age exponentially faster (Eq. 5), so management matters
// most in summer, while in the cold everything behaves similarly (and
// the cold pack's HIGHER internal resistance raises everyone's losses).
//
// The (ambient x methodology) grid cells are independent, so they run
// on the exec thread pool ("threads=N" override, 0 = auto); rows are
// printed in grid order afterwards, so output is identical at any width.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "exec/thread_pool.h"
#include "vehicle/hvac.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 2));
  const size_t threads = static_cast<size_t>(cfg.get_long("threads", 0));

  bench::print_header("Extension: ambient-temperature sweep (US06 x" +
                      std::to_string(repeats) + ")");
  const std::vector<int> w = {11, 16, 12, 14, 12, 14};
  bench::print_row({"ambient_C", "methodology", "qloss_%", "avg_power_W",
                    "max_Tb_C", "violation_s"},
                   w);
  CsvTable csv({"ambient_c", "methodology", "qloss_percent", "avg_power_w",
                "max_tb_c", "violation_s"});

  // Per-ambient context, prepared serially (the power trace is shared
  // by every methodology at that ambient).
  struct AmbientCase {
    double ambient_c = 0.0;
    Config acfg;
    core::SystemSpec spec;
    TimeSeries power;
  };
  const vehicle::CabinHvac hvac(vehicle::HvacParams::from_config(cfg));
  std::vector<AmbientCase> cases;
  for (double ambient_c : {-10.0, 5.0, 20.0, 30.0, 40.0}) {
    AmbientCase ac;
    ac.ambient_c = ambient_c;
    ac.acfg = cfg;
    ac.acfg.set("ambient_k", ambient_c + 273.15);
    // The cabin HVAC makes the accessory load ambient-dependent [2]:
    // heating in the cold, A/C in the heat.
    if (!cfg.has("vehicle.accessory_power")) {
      ac.acfg.set("vehicle.accessory_power",
                  vehicle::VehicleParams{}.accessory_power_w +
                      hvac.steady_load_w(ambient_c + 273.15));
    }
    ac.spec = core::SystemSpec::from_config(ac.acfg);
    ac.power = bench::cycle_power(ac.spec, vehicle::CycleName::kUs06,
                                  repeats);
    cases.push_back(std::move(ac));
  }

  const auto& names = bench::methodology_names();
  const size_t cells = cases.size() * names.size();
  std::vector<sim::RunResult> results(cells);
  exec::parallel_for(
      cells,
      [&](size_t i) {
        const AmbientCase& ac = cases[i / names.size()];
        const std::string& name = names[i % names.size()];
        const sim::Simulator sim(ac.spec);
        auto m = bench::make_methodology(name, ac.spec, ac.acfg);
        sim::RunOptions opt;
        opt.record_trace = false;
        // A parked car soaks to ambient before the mission.
        opt.initial.t_battery_k = ac.spec.ambient_k;
        opt.initial.t_coolant_k = ac.spec.ambient_k;
        results[i] = sim.run(*m, ac.power, opt);
      },
      threads);

  for (size_t i = 0; i < cells; ++i) {
    const AmbientCase& ac = cases[i / names.size()];
    const std::string& name = names[i % names.size()];
    const sim::RunResult& r = results[i];
    bench::print_row({bench::fmt(ac.ambient_c, 0), name,
                      bench::fmt(r.qloss_percent, 5),
                      bench::fmt(r.average_power_w, 0),
                      bench::fmt(r.max_t_battery_k - 273.15, 1),
                      bench::fmt(r.thermal_violation_s, 0)},
                     w);
    csv.add_row({bench::fmt(ac.ambient_c, 1), name,
                 bench::fmt(r.qloss_percent, 6),
                 bench::fmt(r.average_power_w, 1),
                 bench::fmt(r.max_t_battery_k - 273.15, 2),
                 bench::fmt(r.thermal_violation_s, 1)});
  }
  bench::maybe_write_csv(cfg, "sweep_ambient", csv);
  return 0;
}
