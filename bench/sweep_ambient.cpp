// sweep_ambient — environment-temperature sweep. The paper evaluates
// "multiple standard driving cycles ... different environment
// temperatures" (Section IV-A); this bench makes the temperature axis
// explicit: the same US06 mission from a winter-cold soak to a desert
// afternoon, for every methodology. The pack starts soaked at ambient.
//
// Expected shape: the spread between methodologies grows with ambient —
// hot packs age exponentially faster (Eq. 5), so management matters
// most in summer, while in the cold everything behaves similarly (and
// the cold pack's HIGHER internal resistance raises everyone's losses).
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "vehicle/hvac.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 2));

  bench::print_header("Extension: ambient-temperature sweep (US06 x" +
                      std::to_string(repeats) + ")");
  const std::vector<int> w = {11, 16, 12, 14, 12, 14};
  bench::print_row({"ambient_C", "methodology", "qloss_%", "avg_power_W",
                    "max_Tb_C", "violation_s"},
                   w);
  CsvTable csv({"ambient_c", "methodology", "qloss_percent", "avg_power_w",
                "max_tb_c", "violation_s"});

  const vehicle::CabinHvac hvac(vehicle::HvacParams::from_config(cfg));
  for (double ambient_c : {-10.0, 5.0, 20.0, 30.0, 40.0}) {
    Config acfg = cfg;
    acfg.set("ambient_k", ambient_c + 273.15);
    // The cabin HVAC makes the accessory load ambient-dependent [2]:
    // heating in the cold, A/C in the heat.
    if (!cfg.has("vehicle.accessory_power")) {
      acfg.set("vehicle.accessory_power",
               vehicle::VehicleParams{}.accessory_power_w +
                   hvac.steady_load_w(ambient_c + 273.15));
    }
    const core::SystemSpec spec = core::SystemSpec::from_config(acfg);
    const TimeSeries power =
        bench::cycle_power(spec, vehicle::CycleName::kUs06, repeats);
    const sim::Simulator sim(spec);
    for (const auto& name : bench::methodology_names()) {
      auto m = bench::make_methodology(name, spec, acfg);
      sim::RunOptions opt;
      opt.record_trace = false;
      // A parked car soaks to ambient before the mission.
      opt.initial.t_battery_k = spec.ambient_k;
      opt.initial.t_coolant_k = spec.ambient_k;
      const sim::RunResult r = sim.run(*m, power, opt);
      bench::print_row({bench::fmt(ambient_c, 0), name,
                        bench::fmt(r.qloss_percent, 5),
                        bench::fmt(r.average_power_w, 0),
                        bench::fmt(r.max_t_battery_k - 273.15, 1),
                        bench::fmt(r.thermal_violation_s, 0)},
                       w);
      csv.add_row({bench::fmt(ambient_c, 1), name,
                   bench::fmt(r.qloss_percent, 6),
                   bench::fmt(r.average_power_w, 1),
                   bench::fmt(r.max_t_battery_k - 273.15, 2),
                   bench::fmt(r.thermal_violation_s, 1)});
    }
  }
  bench::maybe_write_csv(cfg, "sweep_ambient", csv);
  return 0;
}
