#!/usr/bin/env python3
"""Fail when the banded KKT path stops being O(H) per ADMM iteration.

Reads a google-benchmark JSON file (as written by perf_solver with
--benchmark_out) and inspects the `stage_ops_per_iter` counter of the
warm BM_LtvControlStep/{horizon}/1 rows: the number of fixed-size
stage-block kernel applications (block Cholesky factor + solve sweeps,
stage matvecs) each ADMM iteration pays. On the block-tridiagonal
factorisation this count is linear in the horizon by construction, so
the normalised cost stage_ops_per_iter / horizon must be the SAME
constant at every horizon. A superlinear regression — someone sneaking
a dense operation back onto the hot path — shows up as that constant
growing with H and fails the gate.

The gate runs on exact operation COUNTS, not wall-clock: counts are
machine-independent, so loaded CI runners can't flake it (same policy
as check_warm_start.py).

Also asserts the dense oracle rows (BM_LtvControlStepDense), when
present, report zero stage ops — the counter must not leak across
paths. Solution agreement between the two paths is property-tested in
tests/test_banded_kkt.cpp, which the solver-perf-smoke CI job runs
alongside this gate.

Usage: check_banded.py BENCH_solver.json [--max-ratio-spread 1.35]

Exit code 1 when the per-horizon constants spread by more than
--max-ratio-spread (max/min), when fewer than two horizons are present
(a renamed benchmark can't silently disable the gate), or when the JSON
was not produced from a Release build of this repo.
"""

import argparse
import re
import sys

import checklib

NAME_RE = re.compile(r"^(BM_LtvControlStep(?:Dense)?)/(\d+)/1\b")


def collect(benchmarks):
    """bench name -> {horizon -> stage_ops_per_iter}."""
    out = {}
    for b in checklib.iteration_rows(benchmarks):
        m = NAME_RE.match(b["name"])
        if not m or "stage_ops_per_iter" not in b:
            continue
        out.setdefault(m.group(1), {})[int(m.group(2))] = float(
            b["stage_ops_per_iter"])
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json")
    ap.add_argument("--max-ratio-spread", type=float, default=1.35)
    args = ap.parse_args()

    data = checklib.load_release_bench(args.bench_json)
    rows = collect(data["benchmarks"])

    banded = rows.get("BM_LtvControlStep", {})
    if len(banded) < 2:
        print("error: need warm BM_LtvControlStep rows with a "
              "stage_ops_per_iter counter at >= 2 horizons in "
              f"{args.bench_json}", file=sys.stderr)
        return 1

    failed = False
    print(f"{'horizon':>7}  {'ops/iter':>10}  {'ops/iter/H':>10}")
    constants = {}
    for horizon in sorted(banded):
        ops = banded[horizon]
        if ops <= 0.0:
            print(f"error: horizon {horizon} reports no stage block ops "
                  "— the banded path did not run", file=sys.stderr)
            return 1
        constants[horizon] = ops / horizon
        print(f"{horizon:>7}  {ops:>10.1f}  {constants[horizon]:>10.2f}")

    spread = max(constants.values()) / min(constants.values())
    print(f"per-horizon constant spread (max/min): {spread:.3f} "
          f"(budget {args.max_ratio_spread:g})")
    if spread > args.max_ratio_spread:
        print("error: stage block ops per iteration are not growing "
              "linearly in the horizon", file=sys.stderr)
        failed = True

    for horizon, ops in sorted(rows.get("BM_LtvControlStepDense",
                                        {}).items()):
        if ops != 0.0:
            print(f"error: dense path reports {ops} stage block ops at "
                  f"horizon {horizon}; the counter leaked", file=sys.stderr)
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
