// sweep_fleet — Monte-Carlo robustness extension: the Fig. 8/9
// comparison repeated over a seeded ensemble of randomised missions
// (synthetic routes, ambient soak temperatures, initial bank charge).
// The paper's fixed-schedule results generalise only if the orderings
// hold in DISTRIBUTION; this bench reports mean +/- std per metric.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fleet.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);

  sim::FleetOptions fleet;
  fleet.missions = static_cast<size_t>(cfg.get_long("missions", 12));
  fleet.seed = static_cast<std::uint64_t>(cfg.get_long("seed", 2026));
  // Missions run on the exec thread pool; results are bit-identical at
  // any width ("threads=1" forces the serial path, 0 = auto).
  fleet.threads = static_cast<size_t>(cfg.get_long("threads", 0));
  // "telemetry=/tmp/fleet" streams each mission's per-step telemetry to
  // <prefix>_<method>_mission_<m>.csv with O(1) memory per mission.
  const std::string telemetry = cfg.get_string("telemetry", "");
  // "metrics_out=fleet.json" aggregates solver/step diagnostics across
  // every mission of every methodology into one snapshot, split by a
  // "<method>." name prefix. Missions write the shared registry
  // concurrently — the sharded instruments are the point.
  const std::string metrics_out = cfg.get_string("metrics_out", "");
  // "trace_out=fleet.trace.json" records fleet.mission / fleet.batch.*
  // spans across the sweep into one otem.trace.v1 Chrome trace.
  const std::string trace_out = cfg.get_string("trace_out", "");
  if (!trace_out.empty()) obs::set_trace_enabled(true);
  obs::MetricsRegistry registry;

  bench::print_header(
      "Extension: Monte-Carlo fleet (" + std::to_string(fleet.missions) +
      " randomised missions, ambient " +
      bench::fmt(fleet.ambient_min_k - 273.15, 0) + ".." +
      bench::fmt(fleet.ambient_max_k - 273.15, 0) + " C)");
  const std::vector<int> w = {16, 22, 20, 14, 14};
  bench::print_row({"methodology", "qloss_% (mean+-std)",
                    "avg_kW (mean+-std)", "violation_s", "unserved_kJ"},
                   w);
  CsvTable csv({"methodology", "qloss_mean", "qloss_std", "power_mean_w",
                "power_std_w", "violation_total_s", "unserved_total_j"});

  for (const auto& name : bench::methodology_names()) {
    if (!telemetry.empty())
      fleet.telemetry_csv_prefix = telemetry + "_" + name + "_";
    if (!metrics_out.empty()) {
      fleet.metrics = &registry;
      fleet.metrics_prefix = name + ".";
    }
    const sim::FleetResult r = sim::evaluate_fleet(
        spec,
        [&](const core::SystemSpec& s) {
          return bench::make_methodology(name, s, cfg);
        },
        fleet);
    bench::print_row(
        {name,
         bench::fmt(r.qloss_percent.mean, 5) + " +- " +
             bench::fmt(r.qloss_percent.stddev, 5),
         bench::fmt(r.average_power_w.mean / 1000.0, 2) + " +- " +
             bench::fmt(r.average_power_w.stddev / 1000.0, 2),
         bench::fmt(r.total_violation_s, 0),
         bench::fmt(r.total_unserved_j / 1000.0, 1)},
        w);
    csv.add_row({name, bench::fmt(r.qloss_percent.mean, 6),
                 bench::fmt(r.qloss_percent.stddev, 6),
                 bench::fmt(r.average_power_w.mean, 1),
                 bench::fmt(r.average_power_w.stddev, 1),
                 bench::fmt(r.total_violation_s, 1),
                 bench::fmt(r.total_unserved_j, 1)});
  }
  std::cout << "\nSame seed -> same fleet: the comparison is paired, so "
               "mean differences are directly attributable to the "
               "methodology.\n";
  if (!metrics_out.empty()) {
    obs::write_metrics_json(metrics_out, registry);
    std::cout << "metrics snapshot written to " << metrics_out << "\n";
  }
  if (!trace_out.empty()) {
    obs::TraceCollector().write_chrome_trace(trace_out);
    std::cout << "trace written to " << trace_out << "\n";
  }
  bench::maybe_write_csv(cfg, "sweep_fleet", csv);
  return 0;
}
