// sweep_fleet — Monte-Carlo robustness extension: the Fig. 8/9
// comparison repeated over a seeded ensemble of randomised missions
// (synthetic routes, ambient soak temperatures, initial bank charge).
// The paper's fixed-schedule results generalise only if the orderings
// hold in DISTRIBUTION; this bench reports mean +/- std per metric.
//
// A thin front-end over the campaign engine (src/campaign): missions
// stream through constant-memory accumulators — nothing per-run is
// retained however many missions run — and a "checkpoint=" path makes
// even this bench resumable ("resume=" continues a killed sweep
// bit-exactly). "missions=100000" is the same program as "missions=12".
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "campaign/grid.h"
#include "campaign/runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);

  // The fleet is a campaign grid with a single stochastic route axis:
  // per-route ambient/duration/charge draws, methodology innermost so
  // the comparison stays paired per mission.
  campaign::Grid grid;
  grid.methodologies = bench::methodology_names();
  grid.cycles.clear();
  grid.synthetic_routes = static_cast<size_t>(cfg.get_long("missions", 12));
  grid.seed = static_cast<std::uint64_t>(cfg.get_long("seed", 2026));
  grid.min_duration_s = cfg.get_double("min_duration_s", 600.0);
  grid.max_duration_s = cfg.get_double("max_duration_s", 1500.0);
  grid.ambient_min_k = cfg.get_double("fleet_ambient_min_k", 283.15);
  grid.ambient_max_k = cfg.get_double("fleet_ambient_max_k", 313.15);
  grid.soe0_min = cfg.get_double("soe0_min", 40.0);
  grid.soe0_max = cfg.get_double("soe0_max", 100.0);
  grid.validate();

  campaign::CampaignOptions opts;
  // Missions run on a worker pool; the committer folds results in
  // scenario order, so any width is bit-identical ("threads=1" serial).
  opts.threads = static_cast<size_t>(cfg.get_long("threads", 0));
  // "telemetry=/tmp/fleet" streams each scenario's per-step telemetry
  // to <prefix><scenario-id>.csv with O(1) memory per mission.
  const std::string telemetry = cfg.get_string("telemetry", "");
  if (!telemetry.empty()) opts.telemetry_csv_prefix = telemetry + "_";
  // "checkpoint=sweep.ckpt" makes the sweep crash-safe; "resume=" picks
  // a killed sweep back up bit-exactly.
  opts.checkpoint_path = cfg.get_string("checkpoint", "");
  opts.checkpoint_every =
      static_cast<size_t>(cfg.get_long("checkpoint_every", 1000));
  opts.resume_from = cfg.get_string("resume", "");
  opts.summary_out = cfg.get_string("summary_out", "");
  // "metrics_out=fleet.json" captures campaign counters (and, in fabric
  // mode, serve client retries) into one otem.metrics.v1 snapshot.
  const std::string metrics_out = cfg.get_string("metrics_out", "");
  obs::MetricsRegistry registry;
  if (!metrics_out.empty()) opts.metrics = &registry;
  // "trace_out=fleet.trace.json" records sim spans across the sweep
  // into one otem.trace.v1 Chrome trace.
  const std::string trace_out = cfg.get_string("trace_out", "");
  if (!trace_out.empty()) obs::set_trace_enabled(true);

  bench::print_header(
      "Extension: Monte-Carlo fleet (" +
      std::to_string(grid.synthetic_routes) +
      " randomised missions, ambient " +
      bench::fmt(grid.ambient_min_k - 273.15, 0) + ".." +
      bench::fmt(grid.ambient_max_k - 273.15, 0) + " C)");

  const campaign::CampaignOutcome outcome =
      campaign::run_campaign(grid, spec, cfg, opts);
  if (outcome.halted) {
    std::cout << "sweep halted early";
    if (!opts.checkpoint_path.empty())
      std::cout << "; continue with resume=" << opts.checkpoint_path;
    std::cout << "\n";
    return 3;
  }

  const std::vector<int> w = {16, 22, 20, 14, 14};
  bench::print_row({"methodology", "qloss_% (mean+-std)",
                    "avg_kW (mean+-std)", "violation_s", "unserved_kJ"},
                   w);
  CsvTable csv({"methodology", "qloss_mean", "qloss_std", "power_mean_w",
                "power_std_w", "violation_total_s", "unserved_total_j"});

  const Json* groups = outcome.summary.find("groups");
  for (const auto& name : bench::methodology_names()) {
    const Json* group = groups->find(name);
    const Json* metrics = group->find("metrics");
    const Json* qloss = metrics->find("qloss_percent");
    const Json* power = metrics->find("average_power_w");
    const double violation_s =
        metrics->find("thermal_violation_s")->find("sum")->as_number();
    const double unserved_j =
        metrics->find("unserved_energy_j")->find("sum")->as_number();
    bench::print_row(
        {name,
         bench::fmt(qloss->find("mean")->as_number(), 5) + " +- " +
             bench::fmt(qloss->find("stddev")->as_number(), 5),
         bench::fmt(power->find("mean")->as_number() / 1000.0, 2) + " +- " +
             bench::fmt(power->find("stddev")->as_number() / 1000.0, 2),
         bench::fmt(violation_s, 0), bench::fmt(unserved_j / 1000.0, 1)},
        w);
    csv.add_row({name, bench::fmt(qloss->find("mean")->as_number(), 6),
                 bench::fmt(qloss->find("stddev")->as_number(), 6),
                 bench::fmt(power->find("mean")->as_number(), 1),
                 bench::fmt(power->find("stddev")->as_number(), 1),
                 bench::fmt(violation_s, 1), bench::fmt(unserved_j, 1)});
  }
  std::cout << "\nSame seed -> same fleet: the comparison is paired, so "
               "mean differences are directly attributable to the "
               "methodology.\n";
  if (!metrics_out.empty()) {
    obs::write_metrics_json(metrics_out, registry);
    std::cout << "metrics snapshot written to " << metrics_out << "\n";
  }
  if (!trace_out.empty()) {
    obs::TraceCollector().write_chrome_trace(trace_out);
    std::cout << "trace written to " << trace_out << "\n";
  }
  bench::maybe_write_csv(cfg, "sweep_fleet", csv);
  return 0;
}
