// ablation_weights — design-choice ablation (DESIGN.md §7): the
// Eq. 19 weight w2 (battery lifetime) against w1/w3 (energy). Sweeping
// w2 traces the BLT-vs-energy Pareto frontier the paper's weight choice
// sits on.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/otem/otem_methodology.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = bench::bench_defaults(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 3));

  const TimeSeries power =
      bench::cycle_power(spec, vehicle::CycleName::kUs06, repeats);
  const sim::Simulator sim(spec);

  bench::print_header(
      "Ablation: Eq. 19 lifetime weight w2 (OTEM, US06 x" +
      std::to_string(repeats) + ") — BLT vs energy Pareto");
  const std::vector<int> w = {12, 12, 14, 12, 14, 14};
  bench::print_row({"w2", "qloss_%", "avg_power_W", "max_Tb_C",
                    "cooling_Wavg", "mean_SoE_%"},
                   w);
  CsvTable csv({"w2", "qloss_percent", "avg_power_w", "max_tb_c",
                "cooling_w_avg", "mean_soe_percent"});

  for (double w2 : {0.0, 2.5e8, 1e9, 2.5e9, 1e10, 4e10}) {
    core::MpcOptions mpc = core::MpcOptions::from_config(cfg);
    mpc.weights.w2 = w2;
    core::OtemMethodology otem(spec, mpc,
                               core::OtemSolverOptions::from_config(cfg));
    const sim::RunResult r = sim.run(otem, power);
    const double cooling_avg = r.energy_cooling_j / r.duration_s;
    bench::print_row({bench::fmt(w2, 0), bench::fmt(r.qloss_percent, 5),
                      bench::fmt(r.average_power_w, 0),
                      bench::fmt(r.max_t_battery_k - 273.15, 2),
                      bench::fmt(cooling_avg, 0),
                      bench::fmt(r.trace.soe_percent.mean(), 1)},
                     w);
    csv.add_row({bench::fmt(w2, 0), bench::fmt(r.qloss_percent, 6),
                 bench::fmt(r.average_power_w, 1),
                 bench::fmt(r.max_t_battery_k - 273.15, 3),
                 bench::fmt(cooling_avg, 1),
                 bench::fmt(r.trace.soe_percent.mean(), 2)});
  }
  std::cout << "\nw2 = 0 minimises energy only (cooler nearly off, C1 "
               "enforced as a bare constraint); growing w2 buys battery "
               "lifetime with cooling energy.\n";
  bench::maybe_write_csv(cfg, "ablation_weights", csv);
  return 0;
}
