"""Shared helpers for the bench/check_*.py CI gates.

Lives next to the check scripts; `python3 bench/check_foo.py` puts this
directory on sys.path, so the scripts just `import bench_json`.
"""

import json
import sys


def load_release_bench(path):
    """Load a google-benchmark JSON file, refusing non-Release builds.

    perf_solver / perf_fleet stamp context.repo_build_type with how the
    repo's own code was compiled ("release" iff NDEBUG). The stock
    context.library_build_type key only reports how the google-benchmark
    LIBRARY was built (debug on many distros), which is why a debug
    artifact once slipped into the committed baselines. Any JSON without
    a "release" stamp — including pre-stamp artifacts — is rejected, so
    a stale or unoptimised file can never pass a perf gate again.
    """
    with open(path) as f:
        data = json.load(f)
    build = data.get("context", {}).get("repo_build_type")
    if build != "release":
        print(
            f"error: {path} was measured from a "
            f"'{build or 'unknown (pre-stamp artifact)'}' build of this "
            "repo, not 'release'.\nRegenerate it from a Release tree "
            "(bench/run_benchmarks.sh enforces this).",
            file=sys.stderr,
        )
        raise SystemExit(1)
    return data
