#!/usr/bin/env python3
"""Fail when an otem.campaign.v1 summary is malformed or inconsistent.

Validates the summary document a campaign run writes (otem_cli
campaign summary_out=... or sweep_fleet summary_out=...): the schema
stamp, the embedded grid block, and — per group, per result dimension
— the full {count, mean, stddev, min, max, sum, p50, p95, p99}
statistics block. Cross-checks that the per-group scenario counts sum
to the grid's scenario total (a campaign that silently dropped runs
cannot pass), that every dimension's count matches its group's count,
and that min <= p50 <= p95 <= p99 <= max and min <= mean <= max.

Usage: check_campaign.py SUMMARY.json [--scenarios N] [--groups a,b]

--scenarios pins the expected scenario total; --groups pins the exact
comma-separated group (methodology) set. CI uses both so a summary
from the wrong grid can't satisfy the gate. Exit code 1 on any
violation.
"""

import argparse
import math
import sys

import checklib

DIMS = (
    "qloss_percent",
    "average_power_w",
    "max_t_battery_k",
    "thermal_violation_s",
    "unserved_energy_j",
    "energy_cooling_j",
)
STATS = ("count", "mean", "stddev", "min", "max", "sum", "p50", "p95", "p99")


def check_metric(group, dim, m, group_count):
    """Validate one per-dimension stats block; return error count."""
    errors = 0
    for stat in STATS:
        v = m.get(stat)
        if not isinstance(v, (int, float)) or isinstance(v, bool) \
                or not math.isfinite(v):
            errors += checklib.fail(
                f"group '{group}' {dim}.{stat} is missing or not a finite "
                f"number (got {v!r})")
    if errors:
        return errors
    if m["count"] != group_count:
        errors += checklib.fail(
            f"group '{group}' {dim}.count is {m['count']}, expected the "
            f"group's scenario count {group_count}")
    if m["stddev"] < 0.0:
        errors += checklib.fail(f"group '{group}' {dim}.stddev is negative")
    lo, hi = m["min"], m["max"]
    if not lo <= m["mean"] <= hi:
        errors += checklib.fail(
            f"group '{group}' {dim}: mean {m['mean']} outside "
            f"[min, max] = [{lo}, {hi}]")
    quantiles = (lo, m["p50"], m["p95"], m["p99"], hi)
    if any(a > b for a, b in zip(quantiles, quantiles[1:])):
        errors += checklib.fail(
            f"group '{group}' {dim}: quantiles not ordered "
            f"min <= p50 <= p95 <= p99 <= max (got {quantiles})")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("summary_json")
    ap.add_argument("--scenarios", type=int, default=None,
                    help="expected total scenario count")
    ap.add_argument("--groups", default=None,
                    help="expected comma-separated group names (exact set)")
    args = ap.parse_args()

    doc = checklib.load_json(args.summary_json)
    checklib.require_schema(doc, "otem.campaign.v1", args.summary_json)

    grid = doc.get("grid")
    if not isinstance(grid, dict) or not isinstance(
            grid.get("fingerprint"), str):
        return checklib.fail(
            f"{args.summary_json} has no grid block with a fingerprint")
    total = doc.get("scenarios")
    if total != grid.get("scenarios"):
        return checklib.fail(
            f"top-level scenarios ({total}) disagrees with "
            f"grid.scenarios ({grid.get('scenarios')})")
    if args.scenarios is not None and total != args.scenarios:
        return checklib.fail(
            f"summary covers {total} scenarios, expected {args.scenarios}")

    groups = doc.get("groups")
    if not isinstance(groups, dict) or not groups:
        return checklib.fail(f"{args.summary_json} has no groups block")
    if args.groups is not None:
        expected = set(filter(None, args.groups.split(",")))
        if set(groups) != expected:
            return checklib.fail(
                f"groups are {sorted(groups)}, expected {sorted(expected)}")

    errors = 0
    committed = 0
    for name in sorted(groups):
        g = groups[name]
        count = g.get("scenarios")
        if not isinstance(count, (int, float)) or count <= 0:
            errors += checklib.fail(
                f"group '{name}' has no positive scenario count")
            continue
        committed += count
        metrics = g.get("metrics")
        if not isinstance(metrics, dict):
            errors += checklib.fail(f"group '{name}' has no metrics block")
            continue
        if set(metrics) != set(DIMS):
            errors += checklib.fail(
                f"group '{name}' metrics cover {sorted(metrics)}, expected "
                f"{sorted(DIMS)}")
            continue
        for dim in DIMS:
            errors += check_metric(name, dim, metrics[dim], count)

    if committed != total:
        errors += checklib.fail(
            f"per-group scenario counts sum to {committed}, but the grid "
            f"declares {total} scenarios — runs were dropped")

    if errors:
        return 1
    print(f"{args.summary_json}: {int(total)} scenarios across "
          f"{len(groups)} groups, all statistics blocks consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
