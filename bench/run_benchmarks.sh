#!/usr/bin/env bash
# run_benchmarks.sh — regenerate BENCH_fleet.json and BENCH_solver.json,
# the perf trajectories later PRs regress against.
#
# Usage: bench/run_benchmarks.sh [--allow-debug] [build-dir]
#
# Refuses non-Release build trees: debug numbers are useless as a
# baseline and have silently polluted the checked-in JSON before. The
# guard reads CMakeCache.txt because the JSON's own
# context.library_build_type reports how the google-benchmark LIBRARY
# was built (preinstalled as debug here), not how this repo's code was
# compiled. The bench binaries additionally self-stamp
# context.repo_build_type ("release" iff compiled with NDEBUG), and
# every bench/check_*.py gate refuses JSON without a "release" stamp —
# so even a file produced by bypassing this script can't become a
# committed baseline. Pass --allow-debug to measure a debug build
# anyway (throwaway local profiling only — the gates will reject it).
#
# BENCH_fleet.json (perf_fleet):
#   - BM_FleetEvaluate/N        fleet wall-clock at N threads (N=1 serial)
#   - BM_FleetEvaluateMetrics/N the same fleet with a metrics registry
#                               attached (instrumentation overhead)
#   - BM_FleetEvaluateTraced/N  metrics + the span tracer enabled (the
#                               tracing-on overhead check_overhead.py
#                               also holds to the < 5% budget)
#   - BM_FleetEvaluateBatch/N/L the SoA batched fleet path at N threads
#                               with L-lane PlantBatches per worker
#   - BM_ObsCounterAdd etc.     obs primitive micro-costs, including
#                               BM_ObsSketchRecord and the
#                               BM_TraceSpan{Enabled,Disabled} pair
#   - BM_QpSolveCold/h          one-shot QP solves, items/s = ADMM iter/s
#   - BM_QpSolveWarm/h          persistent-workspace QP solves
# (perf_models carries BM_PlantScalarStep / BM_PlantBatchStep/L, the
# single-thread mission-steps/s pair bench/check_batch.py gates on in
# CI; it is not part of the committed baselines.)
# BENCH_solver.json (perf_solver):
#   - BM_MpcForward[Backward]/h rollout + adjoint micro-costs
#   - BM_OtemSolve/h            full augmented-Lagrangian control steps
#   - BM_QpSolveSequence/{n,w}  receding-horizon QP, cold (w=0) vs warm
#   - BM_LtvControlStep/{h,w}   LTV-QP control step (banded KKT, the
#                               production path), cold vs warm —
#                               admm_iters_mean / admm_iters_median are
#                               what bench/check_warm_start.py gates on;
#                               stage_ops_per_iter is what
#                               bench/check_banded.py gates on;
#                               solve_p50_us / solve_p95_us /
#                               solve_p99_us are sketch-derived per-solve
#                               latency quantiles (the ECU tail budget)
#   - BM_LtvControlStepDense/{h,1}  the dense condensed-KKT oracle on
#                               the same workload (the banded speedup's
#                               denominator)
# Derive the headline numbers as
#   fleet speedup  = real_time(threads=1) / real_time(threads=8)
#   QP ns per iter = 1e9 / items_per_second
#   warm-start win = 1 - admm_iters_median(w=1) / admm_iters_median(w=0)
#   banded speedup = real_time(BM_LtvControlStepDense/h/1)
#                    / real_time(BM_LtvControlStep/h/1)
# CI gates:
#   python3 bench/check_overhead.py BENCH_fleet.json     (< 5% overhead)
#   python3 bench/check_warm_start.py BENCH_solver.json  (>= 25% fewer iters)
#   python3 bench/check_banded.py BENCH_solver.json      (O(H) block ops)
#   python3 bench/check_batch.py <perf_models json>      (>= 1.5x scalar)
#   python3 bench/check_vectorization.py <build log>     (lane loops SIMD)
set -euo pipefail

ALLOW_DEBUG=0
if [[ "${1:-}" == "--allow-debug" ]]; then
  ALLOW_DEBUG=1
  shift
fi

BUILD_DIR="${1:-build}"
FLEET_BIN="$BUILD_DIR/bench/perf_fleet"
SOLVER_BIN="$BUILD_DIR/bench/perf_solver"

for BIN in "$FLEET_BIN" "$SOLVER_BIN"; do
  if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not found — build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
done

# Baselines must come from an optimised build.
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
  "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)
if [[ "$BUILD_TYPE" != "Release" && "$ALLOW_DEBUG" != 1 ]]; then
  echo "error: $BUILD_DIR is built as '${BUILD_TYPE:-unknown}', not Release." >&2
  echo "Benchmark baselines from unoptimised builds are meaningless;" >&2
  echo "reconfigure with -DCMAKE_BUILD_TYPE=Release, or pass" >&2
  echo "--allow-debug for throwaway local numbers (do not commit them)." >&2
  exit 1
fi

# min_time keeps the fleet benches to a few iterations each; raise it
# for publication-quality numbers.
"$FLEET_BIN" \
  --benchmark_out=BENCH_fleet.json \
  --benchmark_out_format=json \
  --benchmark_min_time=0.5

echo "wrote BENCH_fleet.json"

"$SOLVER_BIN" \
  --benchmark_out=BENCH_solver.json \
  --benchmark_out_format=json \
  --benchmark_min_time=0.5

echo "wrote BENCH_solver.json"
