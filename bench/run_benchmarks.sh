#!/usr/bin/env bash
# run_benchmarks.sh — regenerate BENCH_fleet.json, the perf trajectory
# later PRs regress against.
#
# Usage: bench/run_benchmarks.sh [build-dir] [output.json]
#
# The JSON is google-benchmark's standard format and contains:
#   - BM_FleetEvaluate/N        fleet wall-clock at N threads (N=1 serial)
#   - BM_FleetEvaluateMetrics/N the same fleet with a metrics registry
#                               attached (instrumentation overhead)
#   - BM_ObsCounterAdd etc.     obs primitive micro-costs
#   - BM_QpSolveCold/h          one-shot QP solves, items/s = ADMM iter/s
#   - BM_QpSolveWarm/h          persistent-workspace QP solves
# Derive the headline numbers as
#   fleet speedup  = real_time(threads=1) / real_time(threads=8)
#   QP ns per iter = 1e9 / items_per_second
# Instrumentation overhead (CI gates the serial pair at < 5%):
#   python3 bench/check_overhead.py BENCH_fleet.json
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_fleet.json}"
BIN="$BUILD_DIR/bench/perf_fleet"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

# min_time keeps the fleet benches to a few iterations each; raise it
# for publication-quality numbers.
"$BIN" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.5

echo "wrote $OUT"
