// Bit-identity and lifecycle tests for the structure-of-arrays batched
// plant layer: per-model lane kernels, PlantBatch lane
// retirement/backfill, arena reuse, and the batched fleet path against
// the scalar oracle. "Bit-identical" here means EXPECT_EQ on doubles —
// no tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/batch_methodology.h"
#include "core/dual_methodology.h"
#include "core/parallel_methodology.h"
#include "core/reactive_batch.h"
#include "battery/rc_model.h"
#include "obs/metrics.h"
#include "sim/fleet.h"
#include "sim/plant_batch.h"
#include "sim/simulator.h"
#include "sim/step_sink.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem::sim {
namespace {

core::SystemSpec default_spec() {
  return core::SystemSpec::from_config(Config());
}

// --- per-model lane kernels ---------------------------------------------

TEST(PlantBatchKernels, ThermalStepLanesBitIdentical) {
  const core::SystemSpec spec = default_spec();
  const thermal::CoolingSystem cooling = spec.make_cooling();
  const double dt = 1.0;
  const thermal::StepMatrix m = cooling.step_matrix(dt);

  constexpr size_t kLanes = 17;  // odd on purpose: exercises the tail
  std::vector<double> tb(kLanes), tc(kLanes), q(kLanes), amb(kLanes),
      ti(kLanes);
  for (size_t l = 0; l < kLanes; ++l) {
    tb[l] = 290.0 + 1.7 * static_cast<double>(l);
    tc[l] = 288.0 + 1.3 * static_cast<double>(l);
    q[l] = 250.0 * static_cast<double>(l);
    amb[l] = 283.0 + 0.9 * static_cast<double>(l);
  }

  cooling.passive_inlet_lanes(tc.data(), amb.data(), ti.data(), kLanes);
  for (size_t l = 0; l < kLanes; ++l)
    EXPECT_EQ(ti[l], cooling.passive_inlet(tc[l], amb[l])) << "lane " << l;

  std::vector<double> tb_batch = tb, tc_batch = tc;
  thermal::CoolingSystem::step_lanes(m, tb_batch.data(), tc_batch.data(),
                                     q.data(), ti.data(), kLanes);
  for (size_t l = 0; l < kLanes; ++l) {
    const thermal::ThermalState out =
        cooling.step({tb[l], tc[l]}, q[l], ti[l], dt);
    EXPECT_EQ(tb_batch[l], out.t_battery_k) << "lane " << l;
    EXPECT_EQ(tc_batch[l], out.t_coolant_k) << "lane " << l;
  }
}

TEST(PlantBatchKernels, StorageLaneKernelsBitIdentical) {
  const core::SystemSpec spec = default_spec();
  const battery::PackModel pack = spec.make_battery();
  const battery::TransientPackModel transient(spec.battery,
                                              battery::RcParams{});
  const ultracap::BankModel bank = spec.make_ultracap();
  const double dt = 1.0;

  constexpr size_t kLanes = 13;
  std::vector<double> soc(kLanes), i_a(kLanes), v1(kLanes), soe(kLanes),
      p_w(kLanes);
  for (size_t l = 0; l < kLanes; ++l) {
    soc[l] = 20.0 + 6.0 * static_cast<double>(l);
    i_a[l] = -80.0 + 15.0 * static_cast<double>(l);
    v1[l] = -2.0 + 0.4 * static_cast<double>(l);
    soe[l] = 15.0 + 6.5 * static_cast<double>(l);
    p_w[l] = -30000.0 + 7000.0 * static_cast<double>(l);
  }

  std::vector<double> soc_batch = soc;
  pack.step_soc_lanes(soc_batch.data(), i_a.data(), dt, kLanes);
  for (size_t l = 0; l < kLanes; ++l)
    EXPECT_EQ(soc_batch[l], pack.step_soc(soc[l], i_a[l], dt)) << l;

  std::vector<double> v1_batch = v1;
  transient.step_v1_lanes(v1_batch.data(), i_a.data(), dt, kLanes);
  for (size_t l = 0; l < kLanes; ++l)
    EXPECT_EQ(v1_batch[l], transient.step_v1(v1[l], i_a[l], dt)) << l;

  std::vector<double> soe_batch = soe;
  bank.step_soe_lanes(soe_batch.data(), p_w.data(), dt, kLanes);
  for (size_t l = 0; l < kLanes; ++l)
    EXPECT_EQ(soe_batch[l], bank.step_soe(soe[l], p_w[l], dt)) << l;
}

TEST(PlantBatchKernels, PowertrainLanesBitIdentical) {
  const core::SystemSpec spec = default_spec();
  const vehicle::Powertrain pt = spec.make_powertrain();

  constexpr size_t kSamples = 23;
  std::vector<double> v(kSamples), a(kSamples), p(kSamples);
  for (size_t k = 0; k < kSamples; ++k) {
    v[k] = 0.005 * static_cast<double>(k) +
           (k % 3 == 0 ? 0.0 : 1.4 * static_cast<double>(k));
    a[k] = -3.0 + 0.3 * static_cast<double>(k);
  }
  const double grade = 0.02;
  pt.power_lanes(v.data(), a.data(), p.data(), kSamples, grade);
  for (size_t k = 0; k < kSamples; ++k)
    EXPECT_EQ(p[k], pt.power_request(v[k], a[k], grade)) << "sample " << k;
}

TEST(PlantBatchKernels, ParallelArchStepLanesBitIdentical) {
  const core::SystemSpec spec = default_spec();
  const hees::ParallelArchitecture arch = spec.make_parallel_arch();

  constexpr size_t kLanes = 9;
  std::vector<double> soc(kLanes), soe(kLanes), tb(kLanes), p(kLanes);
  std::vector<unsigned char> active(kLanes, 1);
  active[4] = 0;  // one parked lane mid-array
  for (size_t l = 0; l < kLanes; ++l) {
    soc[l] = 40.0 + 6.0 * static_cast<double>(l);
    soe[l] = 25.0 + 8.0 * static_cast<double>(l);
    tb[l] = 285.0 + 3.0 * static_cast<double>(l);
    p[l] = -20000.0 + 9000.0 * static_cast<double>(l);
  }
  std::vector<hees::ArchStep> out(kLanes);
  arch.step_lanes(soc.data(), soe.data(), tb.data(), p.data(), 1.0,
                  out.data(), kLanes, active.data());
  for (size_t l = 0; l < kLanes; ++l) {
    if (!active[l]) {
      EXPECT_EQ(out[l].q_bat_w, 0.0);
      continue;
    }
    const hees::ArchStep ref = arch.step(soc[l], soe[l], tb[l], p[l], 1.0);
    EXPECT_EQ(out[l].soc_next, ref.soc_next) << l;
    EXPECT_EQ(out[l].soe_next, ref.soe_next) << l;
    EXPECT_EQ(out[l].q_bat_w, ref.q_bat_w) << l;
    EXPECT_EQ(out[l].i_bat_a, ref.i_bat_a) << l;
    EXPECT_EQ(out[l].e_loss_j, ref.e_loss_j) << l;
    EXPECT_EQ(out[l].qloss_percent, ref.qloss_percent) << l;
    EXPECT_EQ(out[l].feasible, ref.feasible) << l;
  }
}

// --- end-to-end PlantBatch vs scalar oracle -----------------------------

struct MissionCase {
  std::uint64_t seed;
  double duration_s;
  double ambient_k;
  double soe0;
};

BatchMission make_mission(const core::SystemSpec& base,
                          const MissionCase& c) {
  BatchMission m;
  m.spec = base;
  m.spec.ambient_k = c.ambient_k;
  const TimeSeries speed = vehicle::generate_synthetic(c.seed, c.duration_s,
                                                       30.0);
  m.load = vehicle::Powertrain(m.spec.vehicle).power_trace(speed);
  m.initial.t_battery_k = c.ambient_k;
  m.initial.t_coolant_k = c.ambient_k;
  m.initial.soe_percent = c.soe0;
  return m;
}

RunResult scalar_oracle(const BatchMission& m, const std::string& name) {
  RunOptions ropt;
  ropt.record_trace = false;
  ropt.initial = m.initial;
  MetricsAccumulator metrics;
  std::vector<StepSink*> sinks{&metrics};
  std::unique_ptr<core::Methodology> meth;
  if (name == "dual")
    meth = std::make_unique<core::DualMethodology>(m.spec);
  else
    meth = std::make_unique<core::ParallelMethodology>(m.spec);
  Simulator(m.spec).run_with_sinks(*meth, m.load, ropt, sinks);
  return metrics.take();
}

void expect_same_result(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.qloss_percent, b.qloss_percent);
  EXPECT_EQ(a.energy_hees_j, b.energy_hees_j);
  EXPECT_EQ(a.energy_battery_j, b.energy_battery_j);
  EXPECT_EQ(a.energy_cap_j, b.energy_cap_j);
  EXPECT_EQ(a.energy_loss_j, b.energy_loss_j);
  EXPECT_EQ(a.average_power_w, b.average_power_w);
  EXPECT_EQ(a.max_t_battery_k, b.max_t_battery_k);
  EXPECT_EQ(a.thermal_violation_s, b.thermal_violation_s);
  EXPECT_EQ(a.infeasible_steps, b.infeasible_steps);
  EXPECT_EQ(a.unserved_energy_j, b.unserved_energy_j);
  EXPECT_EQ(a.final_state.t_battery_k, b.final_state.t_battery_k);
  EXPECT_EQ(a.final_state.t_coolant_k, b.final_state.t_coolant_k);
  EXPECT_EQ(a.final_state.soc_percent, b.final_state.soc_percent);
  EXPECT_EQ(a.final_state.soe_percent, b.final_state.soe_percent);
}

// Mixed occupancy + retirement + backfill: 7 missions of different
// lengths through 3 lanes. Every mission must match its scalar run
// exactly, and the lifecycle counters must add up.
TEST(PlantBatch, MixedOccupancyRetireBackfillBitIdentical) {
  const core::SystemSpec base = default_spec();
  const std::vector<MissionCase> cases = {
      {11, 180.0, 285.0, 95.0}, {12, 260.0, 308.0, 55.0},
      {13, 140.0, 298.0, 80.0}, {14, 220.0, 313.0, 42.0},
      {15, 200.0, 290.0, 100.0}, {16, 160.0, 301.0, 66.0},
      {17, 240.0, 295.0, 71.0}};

  std::vector<BatchMission> missions;
  std::vector<MetricsAccumulator> metrics(cases.size());
  size_t total_steps = 0;
  for (size_t i = 0; i < cases.size(); ++i) {
    missions.push_back(make_mission(base, cases[i]));
    total_steps += missions[i].load.size();
  }
  for (size_t i = 0; i < cases.size(); ++i)
    missions[i].sinks = {&metrics[i]};

  PlantBatch batch(core::make_batch_methodology("parallel", base, 3));
  ASSERT_EQ(batch.lanes(), 3u);
  batch.run(missions);

  EXPECT_EQ(batch.counters().missions, cases.size());
  EXPECT_EQ(batch.counters().backfills, cases.size() - 3);
  EXPECT_EQ(batch.counters().lane_steps, total_steps);
  EXPECT_GE(batch.counters().batch_steps, 260u);  // longest mission length

  for (size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE("mission " + std::to_string(i));
    expect_same_result(metrics[i].take(),
                       scalar_oracle(missions[i], "parallel"));
  }
}

TEST(PlantBatch, DualPolicyBitIdentical) {
  core::SystemSpec base = default_spec();
  const std::vector<MissionCase> cases = {
      {21, 200.0, 312.0, 90.0},  // hot: exercises venting hysteresis
      {22, 240.0, 286.0, 45.0},  // cool + low bank: exercises recharge
      {23, 160.0, 305.0, 70.0}};

  std::vector<BatchMission> missions;
  std::vector<MetricsAccumulator> metrics(cases.size());
  for (const MissionCase& c : cases) missions.push_back(make_mission(base, c));
  for (size_t i = 0; i < cases.size(); ++i)
    missions[i].sinks = {&metrics[i]};

  PlantBatch batch(core::make_batch_methodology("dual", base, 2));
  batch.run(missions);

  for (size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE("mission " + std::to_string(i));
    expect_same_result(metrics[i].take(), scalar_oracle(missions[i], "dual"));
  }
}

// The arena and lane scratch are reused across run() calls; the second
// batch must be exactly as if it ran on a fresh PlantBatch.
TEST(PlantBatch, ArenaReuseAcrossBatchesBitIdentical) {
  const core::SystemSpec base = default_spec();
  PlantBatch batch(core::make_batch_methodology("parallel", base, 2));

  std::vector<BatchMission> first = {make_mission(base, {31, 150.0, 310.0, 50.0}),
                                     make_mission(base, {32, 170.0, 305.0, 90.0}),
                                     make_mission(base, {33, 130.0, 300.0, 60.0})};
  std::vector<MetricsAccumulator> first_metrics(first.size());
  for (size_t i = 0; i < first.size(); ++i)
    first[i].sinks = {&first_metrics[i]};
  batch.run(first);

  std::vector<BatchMission> second = {make_mission(base, {41, 160.0, 287.0, 75.0}),
                                      make_mission(base, {42, 140.0, 292.0, 85.0})};
  std::vector<MetricsAccumulator> second_metrics(second.size());
  for (size_t i = 0; i < second.size(); ++i)
    second[i].sinks = {&second_metrics[i]};
  batch.run(second);

  EXPECT_EQ(batch.counters().missions, first.size() + second.size());
  for (size_t i = 0; i < second.size(); ++i) {
    SCOPED_TRACE("mission " + std::to_string(i));
    expect_same_result(second_metrics[i].take(),
                       scalar_oracle(second[i], "parallel"));
  }
}

// The satellite-fix regression: a cool mission backfilled into a lane
// previously occupied by a hot mission must not inherit the hot
// occupant's max_t_battery_k (or any other per-run accumulator state).
TEST(PlantBatch, BackfillDoesNotInheritExtrema) {
  const core::SystemSpec base = default_spec();
  std::vector<BatchMission> missions = {
      make_mission(base, {51, 200.0, 313.0, 90.0}),  // hot occupant
      make_mission(base, {52, 150.0, 284.0, 80.0})};  // cool backfill
  std::vector<MetricsAccumulator> metrics(missions.size());
  for (size_t i = 0; i < missions.size(); ++i)
    missions[i].sinks = {&metrics[i]};

  PlantBatch batch(core::make_batch_methodology("parallel", base, 1));
  batch.run(missions);
  ASSERT_EQ(batch.counters().backfills, 1u);

  const RunResult hot = metrics[0].take();
  const RunResult cool = metrics[1].take();
  EXPECT_GE(hot.max_t_battery_k, 313.0);
  // The cool mission peaks far below the hot lane's previous extremum…
  EXPECT_LT(cool.max_t_battery_k, 300.0);
  // …and matches its scalar oracle exactly.
  expect_same_result(cool, scalar_oracle(missions[1], "parallel"));
}

// --- batched fleet ------------------------------------------------------

FleetOptions small_fleet(size_t missions) {
  FleetOptions f;
  f.missions = missions;
  f.seed = 77;
  f.min_duration_s = 120.0;
  f.max_duration_s = 260.0;
  return f;
}

auto scalar_parallel_factory() {
  return [](const core::SystemSpec& s) {
    return std::make_unique<core::ParallelMethodology>(s);
  };
}

auto batch_parallel_factory() {
  return [](const core::SystemSpec& s, size_t lanes) {
    return core::make_batch_methodology("parallel", s, lanes);
  };
}

void expect_same_fleet(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.missions.size(), b.missions.size());
  for (size_t i = 0; i < a.missions.size(); ++i) {
    SCOPED_TRACE("mission " + std::to_string(i));
    EXPECT_EQ(a.missions[i].route_seed, b.missions[i].route_seed);
    EXPECT_EQ(a.missions[i].ambient_k, b.missions[i].ambient_k);
    EXPECT_EQ(a.missions[i].duration_s, b.missions[i].duration_s);
    EXPECT_EQ(a.missions[i].distance_m, b.missions[i].distance_m);
    expect_same_result(a.missions[i].result, b.missions[i].result);
  }
  EXPECT_EQ(a.qloss_percent.mean, b.qloss_percent.mean);
  EXPECT_EQ(a.qloss_percent.stddev, b.qloss_percent.stddev);
  EXPECT_EQ(a.average_power_w.mean, b.average_power_w.mean);
  EXPECT_EQ(a.max_t_battery_k.max, b.max_t_battery_k.max);
  EXPECT_EQ(a.total_violation_s, b.total_violation_s);
  EXPECT_EQ(a.total_unserved_j, b.total_unserved_j);
}

// The acceptance criterion: batched fleet evaluation is bit-identical
// to the scalar oracle for ANY lane count and thread count.
TEST(FleetBatched, BitIdenticalToScalarAcrossLanesAndThreads) {
  const core::SystemSpec spec = default_spec();
  FleetOptions scalar_opts = small_fleet(6);
  scalar_opts.threads = 1;
  const FleetResult oracle =
      evaluate_fleet(spec, scalar_parallel_factory(), scalar_opts);

  for (size_t lanes : {size_t{1}, size_t{8}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("lanes " + std::to_string(lanes) + " threads " +
                   std::to_string(threads));
      FleetOptions opts = small_fleet(6);
      opts.threads = threads;
      opts.batch_lanes = lanes;
      const FleetResult batched =
          evaluate_fleet_batched(spec, batch_parallel_factory(), opts);
      expect_same_fleet(oracle, batched);
    }
  }
}

TEST(FleetBatched, DualMethodologyBitIdentical) {
  const core::SystemSpec spec = default_spec();
  FleetOptions opts = small_fleet(4);
  opts.threads = 1;
  // Hot ambient band so the venting hysteresis actually fires.
  opts.ambient_min_k = 305.0;
  opts.ambient_max_k = 313.0;

  const FleetResult oracle = evaluate_fleet(
      spec,
      [](const core::SystemSpec& s) {
        return std::make_unique<core::DualMethodology>(s);
      },
      opts);

  FleetOptions bopts = opts;
  bopts.threads = 2;
  bopts.batch_lanes = 3;
  const FleetResult batched = evaluate_fleet_batched(
      spec,
      [](const core::SystemSpec& s, size_t lanes) {
        return core::make_batch_methodology("dual", s, lanes);
      },
      bopts);
  expect_same_fleet(oracle, batched);
}

TEST(FleetBatched, UtilizationCountersExposed) {
  const core::SystemSpec spec = default_spec();
  obs::MetricsRegistry registry;
  FleetOptions opts = small_fleet(5);
  opts.threads = 1;
  opts.batch_lanes = 2;
  opts.metrics = &registry;

  evaluate_fleet_batched(spec, batch_parallel_factory(), opts);

  // Every simulated mission step is one active lane-step, and the
  // DiagnosticsSink per mission counts the same steps — the two
  // counters must agree exactly.
  EXPECT_EQ(registry.counter("fleet.batch_lanes_active").value(),
            registry.counter("fleet.sim.steps").value());
  // Single worker, 2 lanes, 5 missions: the first two fill, the other
  // three backfill.
  EXPECT_EQ(registry.counter("fleet.batch_backfills").value(), 3u);
  EXPECT_GT(registry.counter("fleet.batch_steps").value(), 0u);
}

}  // namespace
}  // namespace otem::sim
