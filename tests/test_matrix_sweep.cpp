// Methodology x cycle matrix sweep: every strategy on (truncated)
// versions of several cycles, checking the universal accounting and
// safety invariants — the "does every cell of the comparison matrix
// behave" test the figure benches rely on.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/cooling_methodology.h"
#include "core/dual_methodology.h"
#include "core/otem/otem_methodology.h"
#include "core/parallel_methodology.h"
#include "sim/simulator.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem {
namespace {

using Param = std::tuple<std::string, vehicle::CycleName>;

class MatrixSweep : public ::testing::TestWithParam<Param> {
 protected:
  static std::unique_ptr<core::Methodology> make(
      const std::string& name, const core::SystemSpec& spec) {
    if (name == "parallel")
      return std::make_unique<core::ParallelMethodology>(spec);
    if (name == "cooling")
      return std::make_unique<core::CoolingMethodology>(spec);
    if (name == "dual")
      return std::make_unique<core::DualMethodology>(spec);
    // Fast OTEM settings for the sweep.
    core::MpcOptions mpc;
    mpc.horizon = 10;
    core::OtemSolverOptions sopt;
    sopt.al.adam.max_iterations = 40;
    sopt.al.max_outer_iterations = 2;
    sopt.al.polish_with_lbfgs = false;
    return std::make_unique<core::OtemMethodology>(spec, mpc, sopt);
  }

  static TimeSeries truncated_power(const core::SystemSpec& spec,
                                    vehicle::CycleName cycle) {
    const TimeSeries full =
        vehicle::Powertrain(spec.vehicle)
            .power_trace(vehicle::generate(cycle));
    std::vector<double> head;
    const size_t n = std::min<size_t>(200, full.size());
    for (size_t k = 0; k < n; ++k) head.push_back(full[k]);
    return TimeSeries(full.dt(), std::move(head));
  }
};

TEST_P(MatrixSweep, AccountingAndSafetyInvariants) {
  const auto [name, cycle] = GetParam();
  const core::SystemSpec spec = core::SystemSpec::from_config(Config());
  const TimeSeries power = truncated_power(spec, cycle);
  auto m = make(name, spec);
  const sim::RunResult r = sim::Simulator(spec).run(*m, power);

  // Universal accounting identities.
  EXPECT_NEAR(r.energy_hees_j, r.energy_battery_j + r.energy_cap_j,
              std::abs(r.energy_hees_j) * 1e-12 + 1e-9);
  EXPECT_NEAR(r.average_power_w, r.energy_hees_j / r.duration_s,
              std::abs(r.average_power_w) * 1e-12 + 1e-9);
  EXPECT_GE(r.energy_loss_j, 0.0);
  EXPECT_GE(r.qloss_percent, 0.0);
  EXPECT_GE(r.unserved_energy_j, 0.0);

  // Physical state bounds held throughout.
  EXPECT_GE(r.trace.soc_percent.min(), 0.0);
  EXPECT_LE(r.trace.soc_percent.max(), 100.0);
  EXPECT_GE(r.trace.soe_percent.min(), 0.0);
  EXPECT_LE(r.trace.soe_percent.max(), 100.0);
  EXPECT_GT(r.trace.t_battery_k.min(), 250.0);
  EXPECT_LT(r.trace.t_battery_k.max(), 370.0);

  // Cumulative loss monotone; TEB within [0, 1].
  for (size_t k = 1; k < r.trace.qloss_percent.size(); ++k)
    ASSERT_GE(r.trace.qloss_percent[k], r.trace.qloss_percent[k - 1]);
  EXPECT_GE(r.trace.teb.min(), 0.0);
  EXPECT_LE(r.trace.teb.max(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Cells, MatrixSweep,
    ::testing::Combine(
        ::testing::Values("parallel", "cooling", "dual", "otem"),
        ::testing::Values(vehicle::CycleName::kUs06,
                          vehicle::CycleName::kUdds,
                          vehicle::CycleName::kWltp3,
                          vehicle::CycleName::kArtemisUrban)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return std::get<0>(param_info.param) + "_" +
             vehicle::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace otem
