// Behaviour tests for the four methodologies on short workloads.
#include <gtest/gtest.h>

#include <memory>

#include "core/cooling_methodology.h"
#include "core/dual_methodology.h"
#include "core/otem/otem_methodology.h"
#include "core/parallel_methodology.h"

namespace otem::core {
namespace {

SystemSpec default_spec() { return SystemSpec::from_config(Config()); }

TimeSeries constant_load(double p_w, size_t steps) {
  return TimeSeries(1.0, std::vector<double>(steps, p_w));
}

/// Run a methodology manually for `steps` and return the final state.
PlantState drive(Methodology& m, const TimeSeries& load) {
  PlantState state;
  m.reset(state, load);
  for (size_t k = 0; k < load.size(); ++k) m.step(state, load[k], k, 1.0);
  return state;
}

// --- parallel -----------------------------------------------------------

TEST(ParallelMethodology, DischargesUnderLoad) {
  const SystemSpec spec = default_spec();
  ParallelMethodology m(spec);
  const PlantState end = drive(m, constant_load(20000.0, 120));
  EXPECT_LT(end.soc_percent, 100.0);
  EXPECT_GT(end.t_battery_k, 298.0);  // heated by the load
}

TEST(ParallelMethodology, NoCoolingCost) {
  const SystemSpec spec = default_spec();
  ParallelMethodology m(spec);
  PlantState state;
  const TimeSeries load = constant_load(15000.0, 10);
  m.reset(state, load);
  for (size_t k = 0; k < 10; ++k) {
    const StepRecord r = m.step(state, load[k], k, 1.0);
    EXPECT_DOUBLE_EQ(r.e_cooling_j, 0.0);
    EXPECT_DOUBLE_EQ(r.p_cooler_w, 0.0);
  }
}

TEST(ParallelMethodology, StepRecordStateMatches) {
  ParallelMethodology m(default_spec());
  PlantState state;
  m.reset(state, constant_load(10000.0, 1));
  const StepRecord r = m.step(state, 10000.0, 0, 1.0);
  EXPECT_DOUBLE_EQ(r.state_after.soc_percent, state.soc_percent);
  EXPECT_DOUBLE_EQ(r.state_after.t_battery_k, state.t_battery_k);
}

// --- active cooling -------------------------------------------------------

TEST(CoolingMethodology, EngagesAboveSetpointOnly) {
  const SystemSpec spec = default_spec();
  CoolingMethodology m(spec);
  PlantState cold;
  cold.t_battery_k = 295.0;
  cold.t_coolant_k = 295.0;
  m.reset(cold, constant_load(10000.0, 1));
  const StepRecord r_cold = m.step(cold, 10000.0, 0, 1.0);
  EXPECT_DOUBLE_EQ(r_cold.p_cooler_w, 0.0);

  PlantState hot;
  hot.t_battery_k = spec.thermal.max_battery_temp_k;
  hot.t_coolant_k = hot.t_battery_k - 2.0;
  CoolingMethodology m2(spec);
  m2.reset(hot, constant_load(10000.0, 1));
  const StepRecord r_hot = m2.step(hot, 10000.0, 0, 1.0);
  EXPECT_GT(r_hot.p_cooler_w, 0.0);
  EXPECT_GT(r_hot.p_pump_w, 0.0);
}

TEST(CoolingMethodology, HoldsTemperatureNearSetpointUnderSustainedLoad) {
  const SystemSpec spec = default_spec();
  CoolingMethodology m(spec);
  // 20 kW for 900 s uses ~30 % of the pack — sustained but survivable.
  const PlantState end = drive(m, constant_load(20000.0, 900));
  EXPECT_LT(end.t_battery_k, spec.thermal.max_battery_temp_k + 2.0);
  EXPECT_GT(end.soc_percent, 50.0);
}

TEST(CoolingMethodology, CoolerEnergyDrawnFromBattery) {
  const SystemSpec spec = default_spec();
  CoolingMethodology m(spec);
  PlantState hot;
  hot.t_battery_k = spec.thermal.max_battery_temp_k + 1.0;
  hot.t_coolant_k = hot.t_battery_k - 1.0;
  m.reset(hot, constant_load(0.0, 1));
  const StepRecord r = m.step(hot, 0.0, 0, 1.0);
  // Even at zero traction load, the cooler discharges the battery.
  EXPECT_GT(r.i_bat_a, 0.0);
  EXPECT_GT(r.e_cooling_j, 0.0);
}

TEST(CoolingMethodology, UltracapNeverUsed) {
  CoolingMethodology m(default_spec());
  PlantState state;
  m.reset(state, constant_load(30000.0, 60));
  for (size_t k = 0; k < 60; ++k) m.step(state, 30000.0, k, 1.0);
  EXPECT_DOUBLE_EQ(state.soe_percent, 100.0);
}

// --- dual -------------------------------------------------------------------

TEST(DualMethodology, SwitchesToUltracapWhenHot) {
  const SystemSpec spec = default_spec();
  DualMethodology m(spec);
  PlantState hot;
  hot.t_battery_k = spec.thermal.max_battery_temp_k - 1.0;  // above threshold
  hot.t_coolant_k = hot.t_battery_k - 2.0;
  m.reset(hot, constant_load(20000.0, 1));
  m.step(hot, 20000.0, 0, 1.0);
  EXPECT_EQ(m.last_mode(), hees::DualMode::kUltracapOnly);
}

TEST(DualMethodology, RechargesBankWhenCool) {
  const SystemSpec spec = default_spec();
  DualMethodology m(spec);
  PlantState state;
  state.soe_percent = 30.0;  // depleted bank, cool battery
  m.reset(state, constant_load(5000.0, 1));
  const StepRecord r = m.step(state, 5000.0, 0, 1.0);
  EXPECT_EQ(m.last_mode(), hees::DualMode::kRecharge);
  EXPECT_GT(state.soe_percent, 30.0);
  EXPECT_LT(r.e_cap_j, 0.0);  // energy flowed INTO the bank
}

TEST(DualMethodology, StaysOnBatteryWhenCoolAndBankFull) {
  DualMethodology m(default_spec());
  PlantState state;  // cool, bank full
  m.reset(state, constant_load(5000.0, 1));
  m.step(state, 5000.0, 0, 1.0);
  EXPECT_EQ(m.last_mode(), hees::DualMode::kBatteryOnly);
}

TEST(DualMethodology, VentingReducesHeatInput) {
  const SystemSpec spec = default_spec();
  DualMethodology m(spec);
  PlantState hot;
  hot.t_battery_k = spec.thermal.max_battery_temp_k - 1.0;
  hot.t_coolant_k = hot.t_battery_k - 2.0;
  m.reset(hot, constant_load(20000.0, 1));
  const StepRecord r = m.step(hot, 20000.0, 0, 1.0);
  EXPECT_DOUBLE_EQ(r.q_bat_w, 0.0);  // battery rests during the vent
}

// --- otem --------------------------------------------------------------------

MpcOptions fast_mpc() {
  MpcOptions o;
  o.horizon = 10;
  return o;
}

OtemSolverOptions fast_solver() {
  OtemSolverOptions s;
  s.al.adam.max_iterations = 60;
  s.al.lbfgs.max_iterations = 10;
  s.al.max_outer_iterations = 2;
  return s;
}

TEST(OtemMethodology, RunsAndDischarges) {
  OtemMethodology m(default_spec(), fast_mpc(), fast_solver());
  // Long enough that the ~12 MJ bank cannot carry the whole mission:
  // the battery must discharge too.
  const PlantState end = drive(m, constant_load(25000.0, 700));
  EXPECT_LT(end.soc_percent, 100.0);
  EXPECT_LT(end.soe_percent, 100.0);
}

TEST(OtemMethodology, PumpAlwaysOn) {
  const SystemSpec spec = default_spec();
  OtemMethodology m(spec, fast_mpc(), fast_solver());
  PlantState state;
  m.reset(state, constant_load(10000.0, 1));
  const StepRecord r = m.step(state, 10000.0, 0, 1.0);
  EXPECT_DOUBLE_EQ(r.p_pump_w, spec.thermal.pump_power_w);
}

TEST(OtemMethodology, KeepsBatteryInSafeBandUnderSustainedLoad) {
  const SystemSpec spec = default_spec();
  OtemMethodology m(spec, fast_mpc(), fast_solver());
  const PlantState end = drive(m, constant_load(35000.0, 900));
  EXPECT_LT(end.t_battery_k, spec.thermal.max_battery_temp_k + 1.0);
}

TEST(OtemMethodology, RespectsSoeFloorApproximately) {
  const SystemSpec spec = default_spec();
  OtemMethodology m(spec, fast_mpc(), fast_solver());
  PlantState state;
  const TimeSeries load = constant_load(50000.0, 300);
  m.reset(state, load);
  double min_soe = 100.0;
  for (size_t k = 0; k < load.size(); ++k) {
    m.step(state, load[k], k, 1.0);
    min_soe = std::min(min_soe, state.soe_percent);
  }
  // C5: the MPC should hold SoE near/above 20 % (small transients OK).
  EXPECT_GT(min_soe, 15.0);
}

}  // namespace
}  // namespace otem::core
