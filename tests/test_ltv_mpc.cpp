// Tests for the LTV-QP controller path: the per-step linearisation
// against finite differences of the nonlinear rollout, and closed-loop
// behaviour on par with the shooting controller.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/otem/ltv_controller.h"
#include "core/otem/otem_controller.h"
#include "core/otem/otem_methodology.h"
#include "sim/simulator.h"

namespace otem::core {
namespace {

SystemSpec default_spec() { return SystemSpec::from_config(Config()); }

MpcOptions opts(size_t horizon) {
  MpcOptions o;
  o.horizon = horizon;
  return o;
}

// ---------------------------------------------------------------------------
// Linearisation accuracy: A_k and B_k from linearize() vs finite
// differences of the full nonlinear rollout.

class LinearizeSeed : public ::testing::TestWithParam<int> {};

TEST_P(LinearizeSeed, JacobiansMatchFiniteDifferences) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const size_t horizon = 6;
  MpcProblem prob(default_spec(), opts(horizon));

  PlantState x0;
  x0.t_battery_k = rng.uniform(295.0, 310.0);
  x0.t_coolant_k = x0.t_battery_k - rng.uniform(0.0, 3.0);
  x0.soc_percent = rng.uniform(50.0, 90.0);
  x0.soe_percent = rng.uniform(35.0, 90.0);
  std::vector<double> load(horizon);
  for (auto& p : load) p = rng.uniform(0.0, 40000.0);
  prob.set_window(x0, load);

  optim::Vector z(prob.dim());
  for (auto& v : z) v = rng.uniform(0.55, 0.8);  // clear of the u=0 kink
  optim::Vector c(prob.num_constraints());
  prob.evaluate(z, c);
  const auto jac = prob.linearize();
  ASSERT_EQ(jac.size(), horizon);

  // Finite-difference check of B_0 (control at step 0 -> state at 1):
  // perturb z[0] and z[1], compare predicted state change.
  auto states_for = [&](const optim::Vector& zz) {
    optim::Vector cc(prob.num_constraints());
    prob.evaluate(zz, cc);
    return prob.predicted_states();
  };

  const auto base = states_for(z);
  for (int var = 0; var < 2; ++var) {
    // Normalised step -> physical control step.
    const double dz = 1e-5;
    const double du = var == 0
                          ? dz * 2.0 * default_spec().ultracap.max_power_w
                          : dz * default_spec().thermal.max_cooler_power_w;
    optim::Vector zp = z;
    zp[var] += dz;
    const auto pert = states_for(zp);
    const double fd[4] = {
        (pert[1].t_battery_k - base[1].t_battery_k) / du,
        (pert[1].t_coolant_k - base[1].t_coolant_k) / du,
        (pert[1].soc_percent - base[1].soc_percent) / du,
        (pert[1].soe_percent - base[1].soe_percent) / du};
    for (int r = 0; r < 4; ++r) {
      EXPECT_NEAR(jac[0].b[r][var], fd[r],
                  std::abs(fd[r]) * 1e-3 + 1e-10)
          << "row " << r << " var " << var;
    }
  }

  // Finite-difference check of A_0 via the initial state: perturb x0
  // component-wise and compare state-1 changes.
  const double dx[4] = {1e-4, 1e-4, 1e-4, 1e-4};
  for (int m = 0; m < 4; ++m) {
    PlantState xp = x0;
    switch (m) {
      case 0: xp.t_battery_k += dx[m]; break;
      case 1: xp.t_coolant_k += dx[m]; break;
      case 2: xp.soc_percent += dx[m]; break;
      case 3: xp.soe_percent += dx[m]; break;
    }
    prob.set_window(xp, load);
    const auto pert = states_for(z);
    const double fd[4] = {
        (pert[1].t_battery_k - base[1].t_battery_k) / dx[m],
        (pert[1].t_coolant_k - base[1].t_coolant_k) / dx[m],
        (pert[1].soc_percent - base[1].soc_percent) / dx[m],
        (pert[1].soe_percent - base[1].soe_percent) / dx[m]};
    prob.set_window(x0, load);  // restore
    prob.evaluate(z, c);
    for (int r = 0; r < 4; ++r) {
      EXPECT_NEAR(jac[0].a[r][m], fd[r], std::abs(fd[r]) * 2e-3 + 1e-8)
          << "row " << r << " state " << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearizeSeed, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Controller behaviour.

TEST(LtvController, ProducesBoundedControls) {
  const SystemSpec spec = default_spec();
  LtvOtemController ctrl(spec, opts(15));
  PlantState x;
  const auto u = ctrl.solve(x, std::vector<double>(15, 25000.0));
  EXPECT_LE(std::abs(u.p_cap_bus_w), spec.ultracap.max_power_w + 1e-6);
  EXPECT_GE(u.p_cooler_w, -1e-9);
  EXPECT_LE(u.p_cooler_w, spec.thermal.max_cooler_power_w + 1e-6);
  EXPECT_TRUE(ctrl.last_solve().qp_converged);
}

TEST(LtvController, HotBatteryTriggersCooling) {
  const SystemSpec spec = default_spec();
  LtvOtemController ctrl(spec, opts(20));
  PlantState hot;
  hot.t_battery_k = spec.thermal.max_battery_temp_k + 1.0;
  hot.t_coolant_k = hot.t_battery_k - 2.0;
  const auto u = ctrl.solve(hot, std::vector<double>(20, 25000.0));
  EXPECT_GT(u.p_cooler_w, 0.2 * spec.thermal.max_cooler_power_w);
}

TEST(LtvController, UsesBankForLargeLoad) {
  const SystemSpec spec = default_spec();
  LtvOtemController ctrl(spec, opts(15));
  PlantState x;
  const auto u = ctrl.solve(x, std::vector<double>(15, 60000.0));
  EXPECT_GT(u.p_cap_bus_w, 1000.0);
}

TEST(LtvController, DeterministicAcrossInstances) {
  PlantState x;
  x.t_battery_k = 303.0;
  const std::vector<double> load(15, 30000.0);
  LtvOtemController a(default_spec(), opts(15));
  LtvOtemController b(default_spec(), opts(15));
  const auto ua = a.solve(x, load);
  const auto ub = b.solve(x, load);
  EXPECT_DOUBLE_EQ(ua.p_cap_bus_w, ub.p_cap_bus_w);
  EXPECT_DOUBLE_EQ(ua.p_cooler_w, ub.p_cooler_w);
}

TEST(LtvController, ClosedLoopComparableToShooting) {
  // On a moderate mission the two transcriptions should land in the
  // same neighbourhood: within 25 % on energy and both within the
  // thermal band.
  const SystemSpec spec = default_spec();
  const sim::Simulator sim(spec);
  const TimeSeries load(1.0, std::vector<double>(400, 28000.0));

  OtemMethodology shooting(spec, opts(15));
  OtemMethodology ltv(spec,
                      std::make_unique<LtvOtemController>(spec, opts(15)));
  const sim::RunResult rs = sim.run(shooting, load);
  const sim::RunResult rl = sim.run(ltv, load);

  EXPECT_LT(rl.max_t_battery_k, spec.thermal.max_battery_temp_k + 1.0);
  EXPECT_NEAR(rl.energy_hees_j, rs.energy_hees_j,
              0.25 * rs.energy_hees_j);
  EXPECT_LT(rl.qloss_percent, rs.qloss_percent * 2.5 + 1e-5);
}

TEST(LtvController, WarmStartNeverIncreasesIterationsOnRecedingHorizon) {
  // Two controllers walk the same receding-horizon sequence — identical
  // states and sliding load windows — one with ADMM warm starts, one
  // without. The warm controller must never pay more total ADMM
  // iterations on a step and must win overall, without changing the
  // controls beyond QP tolerance.
  const SystemSpec spec = default_spec();
  const size_t horizon = 12;
  LtvOptions cold_opt;
  cold_opt.warm_start = false;
  LtvOtemController warm_ctrl(spec, opts(horizon));
  LtvOtemController cold_ctrl(spec, opts(horizon), cold_opt);

  Rng rng(5);
  std::vector<double> load(horizon + 40);
  for (auto& p : load) p = rng.uniform(5000.0, 45000.0);

  PlantState x;
  x.t_battery_k = 302.0;
  x.t_coolant_k = 300.0;
  size_t warm_total = 0, cold_total = 0;
  for (size_t step = 0; step + horizon <= load.size(); ++step) {
    const std::vector<double> window(load.begin() + step,
                                     load.begin() + step + horizon);
    const auto uw = warm_ctrl.solve(x, window);
    const auto uc = cold_ctrl.solve(x, window);
    ASSERT_LE(warm_ctrl.last_solve().qp_iterations,
              cold_ctrl.last_solve().qp_iterations)
        << "step " << step;
    warm_total += warm_ctrl.last_solve().qp_iterations;
    cold_total += cold_ctrl.last_solve().qp_iterations;
    // Same problem to QP tolerance: controls agree loosely. The bound
    // is wide because each controller warm-starts its SQP from its OWN
    // incumbent plan, so per-round tolerance drift compounds over the
    // sequence — this catches gross divergence, not ulp noise.
    EXPECT_NEAR(uw.p_cap_bus_w, uc.p_cap_bus_w,
                0.1 * spec.ultracap.max_power_w + 1.0)
        << "step " << step;
    // Drift the state a little so every window is a fresh problem (but
    // both controllers see the same state).
    x.t_battery_k += rng.uniform(-0.05, 0.05);
    x.soc_percent = std::min(100.0, std::max(20.0, x.soc_percent - 0.01));
  }
  EXPECT_LT(warm_total, cold_total);
  EXPECT_GT(warm_ctrl.last_solve().qp_warm_hits, 0u);
  EXPECT_EQ(cold_ctrl.last_solve().qp_warm_hits, 0u);
}

TEST(LtvController, ResetColdStartsAndReportsFallback) {
  const SystemSpec spec = default_spec();
  LtvOtemController ctrl(spec, opts(10));
  const std::vector<double> load(10, 25000.0);
  PlantState x;
  (void)ctrl.solve(x, load);
  EXPECT_TRUE(ctrl.last_solve().fallback);  // first-ever solve is cold
  (void)ctrl.solve(x, load);
  EXPECT_FALSE(ctrl.last_solve().fallback);
  EXPECT_GT(ctrl.last_solve().qp_warm_hits, 0u);
  ctrl.reset();
  (void)ctrl.solve(x, load);
  EXPECT_TRUE(ctrl.last_solve().fallback);  // reset() drops the iterates
}

TEST(LtvController, SoeFloorRespectedInClosedLoop) {
  const SystemSpec spec = default_spec();
  const sim::Simulator sim(spec);
  OtemMethodology ltv(spec,
                      std::make_unique<LtvOtemController>(spec, opts(15)));
  const TimeSeries load(1.0, std::vector<double>(500, 45000.0));
  const sim::RunResult r = sim.run(ltv, load);
  EXPECT_GT(r.trace.soe_percent.min(), 15.0);
}

}  // namespace
}  // namespace otem::core
