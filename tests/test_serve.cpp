// Tests for the serve subsystem: otem.serve.v1 protocol golden
// transcripts, frame codec (oversized frames, pipelining, EOF), the
// single-flight result cache, canonical cache keys, admission
// backpressure, deadlines, drain semantics and the stdio transport.
//
// Everything here drives Server::handle_line (the transport-free core)
// or real pipes — no Unix socket is needed; CI's smoke job covers the
// socket path end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/config.h"
#include "common/error.h"
#include "common/json.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/cache.h"
#include "serve/client.h"
#include "serve/codec.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/scenario.h"

namespace otem::serve {
namespace {

/// A server sized for tests: tiny pool, small cache, instant drain.
ServerOptions test_options() {
  ServerOptions opts;
  opts.threads = 2;
  opts.queue_depth = 4;
  opts.cache_bytes = 1u << 20;
  opts.drain_timeout_s = 0.0;
  return opts;
}

/// A mission small enough to finish in milliseconds.
std::string short_run_request(const std::string& extra = "") {
  return std::string("{\"schema\":\"otem.serve.v1\",\"method\":\"run\","
                     "\"overrides\":{\"method\":\"parallel\","
                     "\"synthetic\":true,\"synthetic_duration_s\":30") +
         extra + "}}";
}

/// A mission long enough (hundreds of thousands of steps) that tests
/// can reliably observe it in flight before cancelling it.
std::string long_run_request() {
  return "{\"schema\":\"otem.serve.v1\",\"method\":\"run\",\"cache\":"
         "\"bypass\",\"overrides\":{\"method\":\"parallel\","
         "\"synthetic\":true,\"synthetic_duration_s\":900,"
         "\"repeats\":2000}}";
}

/// Spin until the server reports `n` requests in flight (or fail).
void wait_for_inflight(Server& server, size_t n) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.active_requests() != n) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "timed out waiting for " << n << " in-flight request(s)";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --- golden transcripts -----------------------------------------------------

TEST(ServeProtocol, PingGoldenTranscript) {
  Server server(test_options());
  EXPECT_EQ(
      server.handle_line(
          "{\"schema\":\"otem.serve.v1\",\"method\":\"ping\",\"id\":\"t1\"}"),
      "{\"schema\":\"otem.serve.v1\",\"id\":\"t1\",\"ok\":true,"
      "\"cached\":false,\"result\":{\"pong\":true}}");
}

TEST(ServeProtocol, IdIsEchoedVerbatimWhateverItsType) {
  Server server(test_options());
  const std::string resp = server.handle_line(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"ping\","
      "\"id\":{\"seq\":17,\"tag\":\"x\"}}");
  EXPECT_NE(resp.find("\"id\":{\"seq\":17,\"tag\":\"x\"}"),
            std::string::npos)
      << resp;
}

TEST(ServeProtocol, UnknownMethodGoldenTranscript) {
  Server server(test_options());
  EXPECT_EQ(
      server.handle_line(
          "{\"schema\":\"otem.serve.v1\",\"method\":\"frobnicate\"}"),
      "{\"schema\":\"otem.serve.v1\",\"id\":null,\"ok\":false,"
      "\"error\":\"unknown_method\",\"message\":"
      "\"unknown method 'frobnicate'\"}");
}

TEST(ServeProtocol, MethodsListsTheRegistry) {
  Server server(test_options());
  const std::string resp = server.handle_line(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"methods\"}");
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"parallel\""), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"otem\""), std::string::npos) << resp;
}

TEST(ServeProtocol, MetricsReturnsASnapshot) {
  Server server(test_options());
  const std::string resp = server.handle_line(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"metrics\"}");
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  EXPECT_NE(resp.find("otem.metrics.v1"), std::string::npos) << resp;
}

// --- malformed frames (connection-level behaviour is the caller's; the
// --- contract here is: every bad frame gets a structured error) -------------

TEST(ServeProtocol, InvalidJsonIsAnsweredInProtocol) {
  Server server(test_options());
  const std::string resp = server.handle_line("{nope");
  EXPECT_NE(resp.find("\"error\":\"bad_request\""), std::string::npos)
      << resp;
  EXPECT_NE(resp.find("invalid JSON frame"), std::string::npos) << resp;
  // The server object survives and keeps answering.
  EXPECT_NE(server
                .handle_line("{\"schema\":\"otem.serve.v1\","
                             "\"method\":\"ping\"}")
                .find("\"pong\":true"),
            std::string::npos);
}

TEST(ServeProtocol, WrongOrMissingSchemaIsRejected) {
  Server server(test_options());
  EXPECT_NE(server.handle_line("{\"method\":\"ping\"}")
                .find("\"error\":\"bad_request\""),
            std::string::npos);
  EXPECT_NE(server
                .handle_line("{\"schema\":\"otem.serve.v2\","
                             "\"method\":\"ping\"}")
                .find("\"error\":\"bad_request\""),
            std::string::npos);
}

TEST(ServeProtocol, StructuredFieldValidation) {
  Server server(test_options());
  // deadline_ms must be a non-negative number.
  EXPECT_NE(server
                .handle_line("{\"schema\":\"otem.serve.v1\",\"method\":"
                             "\"run\",\"deadline_ms\":-5}")
                .find("\"error\":\"bad_request\""),
            std::string::npos);
  // cache only accepts "use" | "bypass".
  EXPECT_NE(server
                .handle_line("{\"schema\":\"otem.serve.v1\",\"method\":"
                             "\"run\",\"cache\":\"maybe\"}")
                .find("\"error\":\"bad_request\""),
            std::string::npos);
  // overrides must be an object of scalars.
  EXPECT_NE(server
                .handle_line("{\"schema\":\"otem.serve.v1\",\"method\":"
                             "\"run\",\"overrides\":[1,2]}")
                .find("\"error\":\"bad_request\""),
            std::string::npos);
  EXPECT_NE(server
                .handle_line("{\"schema\":\"otem.serve.v1\",\"method\":"
                             "\"run\",\"overrides\":{\"repeats\":[1]}}")
                .find("\"error\":\"bad_request\""),
            std::string::npos);
}

TEST(ServeProtocol, ServerSideOutputOverridesAreRefused) {
  Server server(test_options());
  const std::string resp = server.handle_line(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"run\","
      "\"overrides\":{\"trace_csv\":\"/tmp/x.csv\"}}");
  EXPECT_NE(resp.find("\"error\":\"bad_request\""), std::string::npos)
      << resp;
  EXPECT_NE(resp.find("not allowed in serve mode"), std::string::npos)
      << resp;
}

// --- request builder / parser round-trip ------------------------------------

TEST(ServeProtocol, BuildThenParseRoundTripsARequest) {
  Request req;
  req.method = "run";
  req.id = Json("client-7");
  req.deadline_ms = 2500.0;
  req.cache_bypass = true;
  req.overrides.emplace_back("method", "parallel");
  req.overrides.emplace_back("repeats", "3");
  const Request back = parse_request(build_request(req));
  EXPECT_EQ(back.method, "run");
  EXPECT_EQ(back.id.as_string(), "client-7");
  EXPECT_DOUBLE_EQ(back.deadline_ms, 2500.0);
  EXPECT_TRUE(back.cache_bypass);
  EXPECT_EQ(back.overrides, req.overrides);
}

TEST(ServeProtocol, OverrideValuesCoerceToConfigStrings) {
  const Request req = parse_request(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"run\",\"overrides\":"
      "{\"repeats\":2,\"soak\":true,\"ambient_k\":2.5,\"cycle\":\"US06\"}}");
  ASSERT_EQ(req.overrides.size(), 4u);
  // Integral numbers print WITHOUT a decimal point, so get_long keys
  // ("repeats", seeds, horizons) stay parseable downstream.
  EXPECT_EQ(req.overrides[0],
            (std::pair<std::string, std::string>{"repeats", "2"}));
  EXPECT_EQ(req.overrides[1],
            (std::pair<std::string, std::string>{"soak", "true"}));
  EXPECT_EQ(req.overrides[2],
            (std::pair<std::string, std::string>{"ambient_k", "2.5"}));
  EXPECT_EQ(req.overrides[3],
            (std::pair<std::string, std::string>{"cycle", "US06"}));
}

// --- run + cache ------------------------------------------------------------

TEST(ServeRun, RepeatRequestIsServedByteIdenticallyFromCache) {
  Server server(test_options());
  const std::string first = server.handle_line(short_run_request());
  const std::string second = server.handle_line(short_run_request());
  ASSERT_NE(first.find("\"ok\":true"), std::string::npos) << first;
  EXPECT_NE(first.find("\"cached\":false"), std::string::npos) << first;
  EXPECT_NE(second.find("\"cached\":true"), std::string::npos) << second;

  // Identical result document, byte for byte — the envelope differs
  // only in the cached flag.
  const std::string kMark = "\"result\":";
  const size_t a = first.find(kMark);
  const size_t b = second.find(kMark);
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_EQ(first.substr(a), second.substr(b));

  EXPECT_EQ(server.registry().counter("serve.cache.misses").value(), 1u);
  EXPECT_EQ(server.registry().counter("serve.cache.hits").value(), 1u);
}

TEST(ServeRun, CacheBypassAlwaysRecomputes) {
  Server server(test_options());
  const std::string bypass =
      "{\"schema\":\"otem.serve.v1\",\"method\":\"run\",\"cache\":"
      "\"bypass\",\"overrides\":{\"method\":\"parallel\","
      "\"synthetic\":true,\"synthetic_duration_s\":30}}";
  const std::string first = server.handle_line(bypass);
  const std::string second = server.handle_line(bypass);
  EXPECT_NE(first.find("\"cached\":false"), std::string::npos) << first;
  EXPECT_NE(second.find("\"cached\":false"), std::string::npos) << second;
  EXPECT_EQ(server.registry().counter("serve.cache.hits").value(), 0u);
}

TEST(ServeRun, ResultCarriesTheRunReport) {
  Server server(test_options());
  const std::string resp = server.handle_line(short_run_request());
  ASSERT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  const Json doc = Json::parse(resp);
  const Json* result = doc.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("methodology")->as_string(), "parallel");
  EXPECT_GT(result->find("steps")->as_number(), 0.0);
  const Json* report = result->find("report");
  ASSERT_NE(report, nullptr);
  ASSERT_NE(report->find("qloss_percent"), nullptr);
  EXPECT_GT(report->find("qloss_percent")->as_number(), 0.0);
}

TEST(ServeRun, ConcurrentIdenticalRequestsComputeExactlyOnce) {
  Server server(test_options());
  constexpr size_t kClients = 8;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t i = 0; i < kClients; ++i)
    clients.emplace_back([&, i] {
      responses[i] = server.handle_line(short_run_request());
    });
  for (std::thread& t : clients) t.join();

  const std::string kMark = "\"result\":";
  size_t computed = 0;
  std::string canonical;
  for (const std::string& resp : responses) {
    ASSERT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
    if (resp.find("\"cached\":false") != std::string::npos) ++computed;
    const size_t at = resp.find(kMark);
    ASSERT_NE(at, std::string::npos);
    if (canonical.empty()) canonical = resp.substr(at);
    EXPECT_EQ(resp.substr(at), canonical);  // all byte-identical
  }
  // Single-flight: exactly one client computed, everyone else was
  // served the same bytes (coalesced on the pending entry or a plain
  // hit after it landed).
  EXPECT_EQ(computed, 1u);
  EXPECT_EQ(server.registry().counter("serve.cache.misses").value(), 1u);
  EXPECT_EQ(server.registry().counter("serve.cache.hits").value(),
            kClients - 1);
}

TEST(ServeRun, ExpiredDeadlineAnswersDeadlineExceeded) {
  Server server(test_options());
  const std::string resp = server.handle_line(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"run\",\"cache\":"
      "\"bypass\",\"deadline_ms\":0.001,\"overrides\":{\"method\":"
      "\"parallel\",\"synthetic\":true,\"synthetic_duration_s\":900,"
      "\"repeats\":50}}");
  EXPECT_NE(resp.find("\"error\":\"deadline_exceeded\""),
            std::string::npos)
      << resp;
  EXPECT_EQ(server.active_requests(), 0u);
}

TEST(ServeRun, UnknownMethodologyIsABadRequestNotACrash) {
  Server server(test_options());
  const std::string resp = server.handle_line(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"run\","
      "\"overrides\":{\"method\":\"no_such_strategy\"}}");
  EXPECT_NE(resp.find("\"ok\":false"), std::string::npos) << resp;
  EXPECT_EQ(server.active_requests(), 0u);
}

// --- client retry -----------------------------------------------------------

std::string overloaded_line() {
  return build_error_response(Json(), ErrorCode::kOverloaded, "queue full");
}

TEST(ServeClientRetry, BackoffScheduleIsCappedExponential) {
  RetryOptions opt;
  opt.initial_backoff_s = 0.05;
  opt.multiplier = 2.0;
  opt.max_backoff_s = 0.3;
  EXPECT_DOUBLE_EQ(retry_backoff_s(opt, 0), 0.05);
  EXPECT_DOUBLE_EQ(retry_backoff_s(opt, 1), 0.1);
  EXPECT_DOUBLE_EQ(retry_backoff_s(opt, 2), 0.2);
  EXPECT_DOUBLE_EQ(retry_backoff_s(opt, 3), 0.3);  // capped
  EXPECT_DOUBLE_EQ(retry_backoff_s(opt, 9), 0.3);
}

TEST(ServeClientRetry, OnlyOverloadedFramesAreRetryable) {
  EXPECT_TRUE(is_overloaded_response(overloaded_line()));
  EXPECT_FALSE(is_overloaded_response(
      build_error_response(Json(), ErrorCode::kDraining, "going away")));
  EXPECT_FALSE(is_overloaded_response("{\"ok\":true}"));
  EXPECT_FALSE(is_overloaded_response("not json at all"));
}

TEST(ServeClientRetry, RetriesOverloadThenReturnsAndCounts) {
  obs::MetricsRegistry registry;
  std::vector<double> slept;
  int calls = 0;
  const std::string response = request_with_retry(
      [&](const std::string& line) {
        EXPECT_EQ(line, "req");
        return ++calls <= 2 ? overloaded_line() : std::string("{\"ok\":true}");
      },
      "req", RetryOptions{}, &registry,
      [&](double s) { slept.push_back(s); });
  EXPECT_EQ(response, "{\"ok\":true}");
  EXPECT_EQ(calls, 3);
  // One backoff per refusal, following the schedule.
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_DOUBLE_EQ(slept[0], 0.05);
  EXPECT_DOUBLE_EQ(slept[1], 0.1);
  // Every retry is visible in the metrics snapshot.
  EXPECT_EQ(registry.counter("serve.client_retries").value(), 2u);
}

TEST(ServeClientRetry, GivesUpAfterMaxAttemptsWithTheLastResponse) {
  RetryOptions opt;
  opt.max_attempts = 3;
  int calls = 0;
  const std::string response = request_with_retry(
      [&](const std::string&) {
        ++calls;
        return overloaded_line();
      },
      "req", opt, nullptr, [](double) {});
  EXPECT_EQ(calls, 3);
  EXPECT_TRUE(is_overloaded_response(response));
}

TEST(ServeClientRetry, NonRetryableErrorsPassStraightThrough) {
  int calls = 0;
  const std::string bad =
      build_error_response(Json(), ErrorCode::kBadRequest, "nope");
  const std::string response = request_with_retry(
      [&](const std::string&) {
        ++calls;
        return bad;
      },
      "req", RetryOptions{}, nullptr, [](double) { FAIL() << "no backoff"; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(response, bad);
}

// --- backpressure + drain ---------------------------------------------------

TEST(ServeAdmission, FullQueueRefusesWithOverloaded) {
  ServerOptions opts = test_options();
  opts.queue_depth = 1;
  Server server(opts);

  std::string occupant_response;
  std::thread occupant([&] {
    occupant_response = server.handle_line(long_run_request());
  });
  wait_for_inflight(server, 1);

  // Queue full: a second run is refused immediately, control-plane
  // methods still answer.
  const std::string refused = server.handle_line(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"run\",\"cache\":"
      "\"bypass\",\"overrides\":{\"method\":\"parallel\",\"synthetic\":"
      "true,\"synthetic_duration_s\":30}}");
  EXPECT_NE(refused.find("\"error\":\"overloaded\""), std::string::npos)
      << refused;
  EXPECT_NE(server
                .handle_line("{\"schema\":\"otem.serve.v1\","
                             "\"method\":\"ping\"}")
                .find("\"pong\":true"),
            std::string::npos);

  server.request_stop();
  server.drain();
  occupant.join();
  EXPECT_NE(occupant_response.find("\"error\":\"cancelled\""),
            std::string::npos)
      << occupant_response;
}

TEST(ServeDrain, CancelsInFlightWorkThenRefusesNewWork) {
  Server server(test_options());  // drain_timeout_s = 0: cancel at once
  std::string inflight_response;
  std::thread client([&] {
    inflight_response = server.handle_line(long_run_request());
  });
  wait_for_inflight(server, 1);

  server.request_stop();
  server.drain();
  client.join();

  EXPECT_NE(inflight_response.find("\"error\":\"cancelled\""),
            std::string::npos)
      << inflight_response;
  EXPECT_EQ(server.active_requests(), 0u);
  // Post-drain, run requests are refused as draining.
  EXPECT_NE(server.handle_line(short_run_request())
                .find("\"error\":\"draining\""),
            std::string::npos);
}

// --- frame codec ------------------------------------------------------------

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void close_writer() {
    ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(FrameCodec, PipelinedFramesAreServedBackToBack) {
  Pipe p;
  ASSERT_TRUE(write_frame(p.fds[1], "one"));
  ASSERT_TRUE(write_frame(p.fds[1], "two"));
  FrameReader reader(p.fds[0], 1024);
  std::string line;
  EXPECT_EQ(reader.next(line, 1000), FrameReader::Status::kFrame);
  EXPECT_EQ(line, "one");
  EXPECT_EQ(reader.next(line, 1000), FrameReader::Status::kFrame);
  EXPECT_EQ(line, "two");
  EXPECT_EQ(reader.next(line, 0), FrameReader::Status::kNoData);
}

TEST(FrameCodec, PartialFrameWaitsForTheRest) {
  Pipe p;
  ASSERT_EQ(::write(p.fds[1], "par", 3), 3);
  FrameReader reader(p.fds[0], 1024);
  std::string line;
  EXPECT_EQ(reader.next(line, 50), FrameReader::Status::kNoData);
  ASSERT_EQ(::write(p.fds[1], "tial\n", 5), 5);
  EXPECT_EQ(reader.next(line, 1000), FrameReader::Status::kFrame);
  EXPECT_EQ(line, "partial");
}

TEST(FrameCodec, OversizedFrameIsSkippedAndTheConnectionSurvives) {
  Pipe p;
  const std::string huge(100, 'x');
  ASSERT_TRUE(write_frame(p.fds[1], huge));
  ASSERT_TRUE(write_frame(p.fds[1], "ok"));
  FrameReader reader(p.fds[0], 16);
  std::string line;
  EXPECT_EQ(reader.next(line, 1000), FrameReader::Status::kOversized);
  // The next frame parses normally — one structured error per huge
  // frame, no connection teardown.
  EXPECT_EQ(reader.next(line, 1000), FrameReader::Status::kFrame);
  EXPECT_EQ(line, "ok");
}

TEST(FrameCodec, EofAfterLastFrame) {
  Pipe p;
  ASSERT_TRUE(write_frame(p.fds[1], "last"));
  p.close_writer();
  FrameReader reader(p.fds[0], 1024);
  std::string line;
  EXPECT_EQ(reader.next(line, 1000), FrameReader::Status::kFrame);
  EXPECT_EQ(line, "last");
  EXPECT_EQ(reader.next(line, 1000), FrameReader::Status::kEof);
}

TEST(FrameCodec, WriteFrameAppendsExactlyOneNewline) {
  Pipe p;
  ASSERT_TRUE(write_frame(p.fds[1], "abc"));
  p.close_writer();
  char buf[16];
  const ssize_t n = ::read(p.fds[0], buf, sizeof(buf));
  ASSERT_EQ(n, 4);
  EXPECT_EQ(std::string(buf, 4), "abc\n");
}

// --- result cache -----------------------------------------------------------

TEST(ResultCacheTest, MissClaimFillHit) {
  obs::MetricsRegistry registry;
  ResultCache cache(1u << 20, registry);
  EXPECT_EQ(cache.lookup_or_begin("k"), std::nullopt);  // claimed
  cache.fill("k", "value-bytes");
  const std::optional<std::string> hit = cache.lookup_or_begin("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "value-bytes");
  EXPECT_EQ(registry.counter("serve.cache.misses").value(), 1u);
  EXPECT_EQ(registry.counter("serve.cache.hits").value(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), 0u);
}

TEST(ResultCacheTest, ZeroBudgetDisablesCaching) {
  obs::MetricsRegistry registry;
  ResultCache cache(0, registry);
  EXPECT_EQ(cache.lookup_or_begin("k"), std::nullopt);
  cache.fill("k", "value");
  EXPECT_EQ(cache.lookup_or_begin("k"), std::nullopt);  // still a miss
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ResultCacheTest, LruEvictionPrefersTheColdestEntry) {
  obs::MetricsRegistry registry;
  // Room for two filled entries (64B overhead + key + value each), not
  // three.
  ResultCache cache(300, registry);
  EXPECT_EQ(cache.lookup_or_begin("a"), std::nullopt);
  cache.fill("a", std::string(40, 'A'));
  EXPECT_EQ(cache.lookup_or_begin("b"), std::nullopt);
  cache.fill("b", std::string(40, 'B'));
  // Touch "a" so "b" is the LRU victim.
  ASSERT_TRUE(cache.lookup_or_begin("a").has_value());
  EXPECT_EQ(cache.lookup_or_begin("c"), std::nullopt);
  cache.fill("c", std::string(40, 'C'));
  EXPECT_GE(registry.counter("serve.cache.evictions").value(), 1u);
  EXPECT_TRUE(cache.lookup_or_begin("a").has_value());   // survived
  EXPECT_EQ(cache.lookup_or_begin("b"), std::nullopt);   // evicted
}

TEST(ResultCacheTest, AbandonReleasesCoalescedWaiters) {
  obs::MetricsRegistry registry;
  ResultCache cache(1u << 20, registry);
  EXPECT_EQ(cache.lookup_or_begin("k"), std::nullopt);  // this claim fails

  std::atomic<bool> waiter_done{false};
  std::string waiter_value;
  std::thread waiter([&] {
    // Blocks on the pending entry; after abandon() it inherits the
    // claim (nullopt again), computes, and fills.
    std::optional<std::string> got = cache.lookup_or_begin("k");
    EXPECT_EQ(got, std::nullopt);
    cache.fill("k", "second-try");
    waiter_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(waiter_done.load());  // genuinely parked on the claim
  cache.abandon("k");
  waiter.join();
  EXPECT_TRUE(waiter_done.load());
  EXPECT_EQ(cache.lookup_or_begin("k").value(), "second-try");
}

// --- canonical cache key ----------------------------------------------------

TEST(CacheKey, ExplicitDefaultsHashLikeImpliedDefaults) {
  Config spelled;
  spelled.set_pair("cycle=UDDS");
  spelled.set_pair("method=otem");
  const Config implied;
  EXPECT_EQ(canonical_scenario_key(sim::Scenario::from_config(spelled),
                                   spelled),
            canonical_scenario_key(sim::Scenario::from_config(implied),
                                   implied));
}

TEST(CacheKey, ScenarioDifferencesChangeTheKey) {
  Config one;
  one.set_pair("repeats=1");
  Config two;
  two.set_pair("repeats=2");
  EXPECT_NE(canonical_scenario_key(sim::Scenario::from_config(one), one),
            canonical_scenario_key(sim::Scenario::from_config(two), two));
}

TEST(CacheKey, SpecOverridesLandInTheSortedTail) {
  Config cfg;
  cfg.set_pair("battery.cells=90");
  const std::string key =
      canonical_scenario_key(sim::Scenario::from_config(cfg), cfg);
  EXPECT_NE(key.find("battery.cells=90"), std::string::npos) << key;
  // Telemetry destinations never reach the key: the same mission with
  // a different trace path must hit the same entry.
  Config with_output;
  with_output.set_pair("battery.cells=90");
  with_output.set_pair("trace_csv=/tmp/somewhere.csv");
  EXPECT_EQ(key, canonical_scenario_key(
                     sim::Scenario::from_config(with_output), with_output));
}

// --- observability: queue wait, latency sketches, stats ---------------------

#ifndef OTEM_OBS_DISABLED

TEST(ServeObs, QueueWaitIsRecordedUnderLoad) {
  // One pool thread + several concurrent admissions: all but the first
  // run MUST sit in the pool queue, and that wait has to land in both
  // the serve.queue.wait_us instruments and (because latency is
  // measured from frame entry) the serve.request.latency_us ones.
  ServerOptions opts = test_options();
  opts.threads = 1;
  opts.queue_depth = 4;
  Server server(opts);

  constexpr size_t kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t i = 0; i < kClients; ++i)
    clients.emplace_back([&, i] {
      // Distinct durations + cache bypass: every request computes.
      const std::string req =
          "{\"schema\":\"otem.serve.v1\",\"method\":\"run\",\"cache\":"
          "\"bypass\",\"overrides\":{\"method\":\"parallel\","
          "\"synthetic\":true,\"synthetic_duration_s\":" +
          std::to_string(30 + i) + "}}";
      const std::string resp = server.handle_line(req);
      EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
    });
  for (std::thread& t : clients) t.join();

  const obs::MetricsSnapshot snap = server.registry().snapshot();
  const obs::Histogram::Snapshot& wait_hist =
      snap.histograms.at("serve.queue.wait_us");
  EXPECT_EQ(wait_hist.count, kClients);
  EXPECT_GT(wait_hist.max, 0.0);

  const obs::Sketch::Snapshot wait =
      server.registry().sketch("serve.queue.wait_us").snapshot();
  const obs::Sketch::Snapshot latency =
      server.registry().sketch("serve.request.latency_us").snapshot();
  EXPECT_EQ(wait.count, kClients);
  EXPECT_EQ(latency.count, kClients);
  // Serialized on one thread, the slowest request queued behind the
  // others — its wait is non-trivial, and its end-to-end latency
  // cannot be smaller than its own queue wait.
  EXPECT_GT(wait.max, 0.0);
  EXPECT_GE(latency.max, wait.max);
}

TEST(ServeObs, LatencyIsRecordedOnErrorPathsToo) {
  ServerOptions opts = test_options();
  Server server(opts);
  const std::string resp = server.handle_line(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"run\","
      "\"overrides\":{\"method\":\"no_such_strategy\"}}");
  EXPECT_NE(resp.find("\"ok\":false"), std::string::npos) << resp;
  EXPECT_EQ(
      server.registry().sketch("serve.request.latency_us").snapshot().count,
      1u);
}

TEST(ServeObs, StatsReportsNonTrivialQuantiles) {
  Server server(test_options());
  for (int i = 0; i < 3; ++i) {
    const std::string resp = server.handle_line(short_run_request());
    ASSERT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  }
  const std::string stats = server.handle_line(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"stats\",\"id\":7}");
  ASSERT_NE(stats.find("\"ok\":true"), std::string::npos) << stats;
  const Json doc = Json::parse(stats);
  const Json* result = doc.find("result");
  ASSERT_NE(result, nullptr);
  const Json* latency = result->find("latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->find("count")->as_number(), 3.0);
  EXPECT_GT(latency->find("p50")->as_number(), 0.0);
  EXPECT_GE(latency->find("p99")->as_number(),
            latency->find("p50")->as_number());
  ASSERT_NE(result->find("queue_wait_us"), nullptr);
  ASSERT_NE(result->find("spans"), nullptr);
}

TEST(ServeObs, TraceOutEnablesSpansVisibleInStats) {
  // Tracing is process-global state: restore it however the test ends.
  struct TraceGuard {
    ~TraceGuard() {
      obs::set_trace_enabled(false);
      obs::trace_reset();
    }
  } guard;
  obs::trace_reset();
  ServerOptions opts = test_options();
  opts.trace_out = "/dev/null";  // enables tracing for the lifetime
  Server server(opts);
  const std::string resp = server.handle_line(short_run_request());
  ASSERT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  const std::string stats = server.handle_line(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"stats\"}");
  const Json doc = Json::parse(stats);
  const Json* spans = doc.find("result")->find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_NE(spans->find("serve.request"), nullptr);
  ASSERT_NE(spans->find("serve.run"), nullptr);
  EXPECT_GT(spans->find("serve.request")->find("count")->as_number(), 0.0);
}

#endif  // OTEM_OBS_DISABLED

// --- stdio transport --------------------------------------------------------

TEST(ServeStdio, AnswersFramesUntilEofThenExitsZero) {
  Pipe in, out;
  ASSERT_TRUE(write_frame(
      in.fds[1], "{\"schema\":\"otem.serve.v1\",\"method\":\"ping\","
                 "\"id\":1}"));
  ASSERT_TRUE(write_frame(in.fds[1], short_run_request()));
  in.close_writer();

  Server server(test_options());
  EXPECT_EQ(server.serve_stdio(in.fds[0], out.fds[1]), 0);

  FrameReader reader(out.fds[0], 1u << 20);
  std::string line;
  ASSERT_EQ(reader.next(line, 1000), FrameReader::Status::kFrame);
  EXPECT_EQ(line,
            "{\"schema\":\"otem.serve.v1\",\"id\":1,\"ok\":true,"
            "\"cached\":false,\"result\":{\"pong\":true}}");
  ASSERT_EQ(reader.next(line, 1000), FrameReader::Status::kFrame);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"report\":"), std::string::npos) << line;
}

// --- sharded result cache ---------------------------------------------------

TEST(ShardedResultCacheTest, RoutingIsConsistentAndStable) {
  obs::MetricsRegistry registry;
  ShardedResultCache cache(1u << 20, 4, registry);
  EXPECT_EQ(cache.shards(), 4u);
  // Consistent: the same key always lands on the same shard.
  for (const std::string key : {"a", "mission-1", "mission-2", ""})
    EXPECT_EQ(cache.shard_of(key), cache.shard_of(std::string(key)));
  // Stable across processes and platforms: FNV-1a 64 of "abc" is
  // 0xe71fa2190541574b -> % 4 == 3. A changed hash silently reshuffles
  // every deployed multi-worker cache, so pin it.
  EXPECT_EQ(cache.shard_of("abc"), 3u);
}

TEST(ShardedResultCacheTest, SingleShardKeepsTheBareCacheGaugeNames) {
  obs::MetricsRegistry registry;
  ShardedResultCache cache(1u << 20, 1, registry);
  EXPECT_EQ(cache.lookup_or_begin("k"), std::nullopt);
  cache.fill("k", "v");
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_GT(snap.gauges.at("serve.cache.bytes"), 0.0);
  EXPECT_EQ(snap.gauges.at("serve.cache.entries"), 1.0);
  EXPECT_EQ(snap.gauges.count("serve.cache.bytes.shard0"), 0u);
}

TEST(ShardedResultCacheTest, MultiShardMaintainsAggregateAndPerShardGauges) {
  obs::MetricsRegistry registry;
  ShardedResultCache cache(1u << 20, 2, registry);
  // Find keys that land on different shards.
  std::string k0 = "key-a", k1 = "key-b";
  for (int i = 0; cache.shard_of(k1) == cache.shard_of(k0) && i < 64; ++i)
    k1 = "key-b" + std::to_string(i);
  ASSERT_NE(cache.shard_of(k0), cache.shard_of(k1));
  EXPECT_EQ(cache.lookup_or_begin(k0), std::nullopt);
  EXPECT_EQ(cache.lookup_or_begin(k1), std::nullopt);
  cache.fill(k0, "v0");
  cache.fill(k1, "v1");
  EXPECT_EQ(cache.entries(), 2u);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.gauges.at("serve.cache.entries"), 2.0);
  EXPECT_EQ(snap.gauges.at("serve.cache.entries.shard0") +
                snap.gauges.at("serve.cache.entries.shard1"),
            2.0);
  // Counters aggregate by name across shards.
  EXPECT_EQ(registry.counter("serve.cache.misses").value(), 2u);
}

TEST(ShardedResultCacheTest, SingleFlightHoldsUnderCrossShardContention) {
  obs::MetricsRegistry registry;
  ShardedResultCache cache(1u << 20, 4, registry);
  constexpr size_t kThreads = 8;
  std::atomic<size_t> computed{0};
  std::vector<std::string> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (std::optional<std::string> hit = cache.lookup_or_begin("hot")) {
        results[t] = *hit;
        return;
      }
      computed.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      cache.fill("hot", "the-bytes");
      results[t] = "the-bytes";
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(computed.load(), 1u);
  for (const std::string& r : results) EXPECT_EQ(r, "the-bytes");
}

// --- hex_doubles ------------------------------------------------------------

TEST(ServeHexDoubles, RunReplyCarriesABitExactHexReport) {
  Server server(test_options());
  const std::string reply = server.handle_line(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"run\","
      "\"hex_doubles\":true,\"overrides\":{\"method\":\"parallel\","
      "\"synthetic\":true,\"synthetic_duration_s\":30}}");
  const Json doc = Json::parse(reply);
  const Json* result = doc.find("result");
  ASSERT_NE(result, nullptr);
  const Json* report = result->find("report");
  const Json* hex = result->find("report_hex");
  ASSERT_NE(report, nullptr);
  ASSERT_NE(hex, nullptr);
  // Hex values decode to doubles the %.12g numeric report only
  // approximates; they must agree to printing precision.
  for (const char* field : {"duration_s", "qloss_percent", "energy_hees_j",
                            "average_power_w", "max_t_battery_k"}) {
    const Json* numeric = report->find(field);
    const Json* bits = hex->find(field);
    ASSERT_NE(numeric, nullptr) << field;
    ASSERT_NE(bits, nullptr) << field;
    ASSERT_TRUE(bits->is_string()) << field;
    const double exact = strings::parse_hex_double(bits->as_string());
    EXPECT_NEAR(exact, numeric->as_number(),
                1e-9 * std::max(1.0, std::abs(exact)))
        << field;
  }
}

TEST(ServeHexDoubles, HexRepliesReplayByteIdenticallyFromTheCache) {
  Server server(test_options());
  const std::string request =
      "{\"schema\":\"otem.serve.v1\",\"method\":\"run\","
      "\"hex_doubles\":true,\"overrides\":{\"method\":\"parallel\","
      "\"synthetic\":true,\"synthetic_duration_s\":30}}";
  const std::string first = server.handle_line(request);
  const std::string second = server.handle_line(request);
  EXPECT_NE(first.find("\"report_hex\""), std::string::npos);
  EXPECT_NE(second.find("\"cached\":true"), std::string::npos);
  // cached:false vs cached:true differ by flag; result bytes must not.
  const size_t ra = first.find("\"result\":");
  const size_t rb = second.find("\"result\":");
  ASSERT_NE(ra, std::string::npos);
  ASSERT_NE(rb, std::string::npos);
  EXPECT_EQ(first.substr(ra), second.substr(rb));
}

TEST(ServeHexDoubles, HexAndPlainRequestsOccupyDistinctCacheEntries) {
  // The hex reply has different result bytes, so it must not alias the
  // plain entry (byte-identical replay would otherwise break one side).
  Server server(test_options());
  const std::string plain = server.handle_line(short_run_request());
  const std::string hexed = server.handle_line(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"run\","
      "\"hex_doubles\":true,\"overrides\":{\"method\":\"parallel\","
      "\"synthetic\":true,\"synthetic_duration_s\":30}}");
  EXPECT_EQ(plain.find("\"report_hex\""), std::string::npos);
  EXPECT_NE(hexed.find("\"report_hex\""), std::string::npos);
  EXPECT_EQ(hexed.find("\"cached\":true"), std::string::npos)
      << "hex request aliased the plain request's cache entry";
}

// --- client endpoints -------------------------------------------------------

TEST(ServeClientEndpoint, TcpAndUnixEndpointsAreDistinguished) {
  EXPECT_TRUE(is_tcp_endpoint("127.0.0.1:7600"));
  EXPECT_TRUE(is_tcp_endpoint("localhost:0"));
  EXPECT_TRUE(is_tcp_endpoint(":7600"));
  EXPECT_FALSE(is_tcp_endpoint("/tmp/otem.sock"));
  EXPECT_FALSE(is_tcp_endpoint("./sock:1"));
  EXPECT_FALSE(is_tcp_endpoint("relative/path"));
  EXPECT_FALSE(is_tcp_endpoint("host:"));
  EXPECT_FALSE(is_tcp_endpoint("host:70a"));
  EXPECT_FALSE(is_tcp_endpoint("plainname"));
}

TEST(ServeClientEndpoint, ConnectFailuresCarryErrnoText) {
  try {
    request_once("/nonexistent/otem-test.sock", "{}", 1.0, 0.5);
    FAIL() << "connect to a missing socket path should throw";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("/nonexistent/otem-test.sock"), std::string::npos)
        << what;
    // The point of the satellite: the errno text, not just "failed".
    EXPECT_NE(what.find(std::strerror(ENOENT)), std::string::npos) << what;
  }
}

TEST(ServeClientEndpoint, TcpConnectionRefusedCarriesErrnoText) {
  // Port 1 on localhost: privileged and unbound, so connect fails fast
  // with ECONNREFUSED rather than timing out.
  try {
    request_once("127.0.0.1:1", "{}", 1.0, 2.0);
    FAIL() << "connect to an unbound port should throw";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("127.0.0.1:1"), std::string::npos) << what;
    EXPECT_NE(what.find(std::strerror(ECONNREFUSED)), std::string::npos)
        << what;
  }
}

}  // namespace
}  // namespace otem::serve
