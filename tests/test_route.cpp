// Tests for routes with elevation/grade profiles.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/route.h"

namespace otem::vehicle {
namespace {

TimeSeries constant_speed(double v, size_t n) {
  return TimeSeries(1.0, std::vector<double>(n, v));
}

TEST(Route, GradeFromLinearClimb) {
  // 10 m/s for 100 s = 1000 m; 50 m of rise over those 1000 m.
  const TimeSeries speed = constant_speed(10.0, 100);
  const TimeSeries grade =
      grade_from_elevation(speed, {{0.0, 0.0}, {1000.0, 50.0}});
  for (size_t k = 0; k < grade.size(); ++k)
    EXPECT_NEAR(grade[k], std::atan(0.05), 1e-12);
}

TEST(Route, GradeFollowsPiecewiseProfile) {
  // Climb for the first 500 m, flat after.
  const TimeSeries speed = constant_speed(10.0, 100);
  const TimeSeries grade = grade_from_elevation(
      speed, {{0.0, 0.0}, {500.0, 25.0}, {2000.0, 25.0}});
  EXPECT_NEAR(grade[10], std::atan(0.05), 1e-12);  // at 100 m: climbing
  EXPECT_NEAR(grade[80], 0.0, 1e-12);              // at 800 m: flat
}

TEST(Route, ElevationGainMatchesProfile) {
  const TimeSeries speed = constant_speed(10.0, 100);
  Route route;
  route.speed_mps = speed;
  route.grade_rad =
      grade_from_elevation(speed, {{0.0, 0.0}, {1000.0, 50.0}});
  // sin(atan(g)) ~ g for 5 %: gain ~ 50 m.
  EXPECT_NEAR(elevation_gain_m(route), 50.0, 0.2);
}

TEST(Route, FlatRouteGainIsZero) {
  Route route;
  route.speed_mps = constant_speed(15.0, 50);
  EXPECT_DOUBLE_EQ(elevation_gain_m(route), 0.0);
}

TEST(Route, ClimbCostsDescentPays) {
  const Powertrain pt((VehicleParams()));
  const TimeSeries speed = constant_speed(20.0, 200);

  Route climb;
  climb.speed_mps = speed;
  climb.grade_rad = grade_from_elevation(speed, {{0.0, 0.0}, {4000.0, 200.0}});
  Route descent;
  descent.speed_mps = speed;
  descent.grade_rad =
      grade_from_elevation(speed, {{0.0, 200.0}, {4000.0, 0.0}});
  Route flat;
  flat.speed_mps = speed;

  const double e_climb = route_power_trace(pt, climb).integral();
  const double e_flat = route_power_trace(pt, flat).integral();
  const double e_desc = route_power_trace(pt, descent).integral();
  EXPECT_GT(e_climb, e_flat + 1e6);  // climbing is expensive
  EXPECT_LT(e_desc, 0.0);            // a 5 % descent at speed regens net
}

TEST(Route, GravityEnergyApproximatelyRecovered) {
  // Climb potential energy: m g h; the extra electric energy of the
  // climb exceeds it by the traction-efficiency factor.
  const VehicleParams p;
  const Powertrain pt(p);
  const TimeSeries speed = constant_speed(15.0, 200);
  Route climb;
  climb.speed_mps = speed;
  climb.grade_rad = grade_from_elevation(speed, {{0.0, 0.0}, {3000.0, 90.0}});
  Route flat;
  flat.speed_mps = speed;
  const double extra = route_power_trace(pt, climb).integral() -
                       route_power_trace(pt, flat).integral();
  const double potential = p.mass_kg * 9.80665 * 90.0;
  EXPECT_NEAR(extra, potential / p.traction_efficiency,
              0.05 * potential);
}

TEST(Route, FlatGradeTraceMatchesPlainPowertrain) {
  const Powertrain pt((VehicleParams()));
  const TimeSeries speed = generate(CycleName::kSc03);
  Route flat;
  flat.speed_mps = speed;
  const TimeSeries a = route_power_trace(pt, flat);
  const TimeSeries b = pt.power_trace(speed);
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) EXPECT_DOUBLE_EQ(a[k], b[k]);
}

TEST(Route, Validation) {
  const TimeSeries speed = constant_speed(10.0, 10);
  EXPECT_THROW(grade_from_elevation(speed, {{0.0, 0.0}}), SimError);
  EXPECT_THROW(grade_from_elevation(speed, {{5.0, 0.0}, {100.0, 1.0}}),
               SimError);
  Route bad;
  bad.speed_mps = speed;
  bad.grade_rad = constant_speed(0.0, 5);  // wrong length
  const Powertrain pt((VehicleParams()));
  EXPECT_THROW(route_power_trace(pt, bad), SimError);
}

}  // namespace
}  // namespace otem::vehicle
