// Property-based sweeps over the powertrain and drive-cycle layer.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/hvac.h"
#include "vehicle/powertrain.h"

namespace otem::vehicle {
namespace {

Powertrain default_pt() { return Powertrain(VehicleParams{}); }

// ---------------------------------------------------------------------------
// Road-load physics.

TEST(PowertrainProperty, ForceDecomposesAdditively) {
  // wheel_force is the sum of inertial, rolling, aero and grade terms;
  // check the decomposition against independently computed pieces.
  const VehicleParams p;
  const Powertrain pt(p);
  const double v = 22.0, a = 1.3, g = 0.03;
  const double inertial = p.mass_kg * p.rotating_mass_factor * a;
  const double aero = 0.5 * 1.2041 * p.drag_coefficient *
                      p.frontal_area_m2 * v * v;
  const double rolling =
      p.mass_kg * 9.80665 * p.rolling_resistance * std::cos(g);
  const double grade = p.mass_kg * 9.80665 * std::sin(g);
  EXPECT_NEAR(pt.wheel_force(v, a, g), inertial + aero + rolling + grade,
              1e-9);
}

TEST(PowertrainProperty, CoastDownForceMatchesNoAccelComponents) {
  const Powertrain pt = default_pt();
  // At constant speed the force is speed-monotone (aero quadratic).
  double prev = 0.0;
  for (double v = 1.0; v < 40.0; v += 2.0) {
    const double f = pt.wheel_force(v, 0.0);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(PowertrainProperty, TractionPathNeverBeatsWheelPower) {
  // Discharging: electric power >= wheel power (efficiency < 1).
  const Powertrain pt = default_pt();
  Rng rng(4);
  for (int k = 0; k < 500; ++k) {
    const double v = rng.uniform(1.0, 35.0);
    const double a = rng.uniform(0.0, 2.5);
    const double wheel = pt.wheel_force(v, a) * v;
    // Skip regen samples and requests beyond the motor cap (clipped).
    if (wheel <= 0.0 || wheel >= pt.params().max_motor_power_w) continue;
    const double elec =
        pt.power_request(v, a) - pt.params().accessory_power_w;
    EXPECT_GE(elec, wheel - 1e-9);
  }
}

TEST(PowertrainProperty, RegenPathNeverBeatsBrakingPower) {
  // Charging: recovered power <= |wheel power| (efficiency < 1).
  const Powertrain pt = default_pt();
  Rng rng(5);
  for (int k = 0; k < 500; ++k) {
    const double v = rng.uniform(3.0, 35.0);
    const double a = rng.uniform(-4.0, -0.5);
    const double wheel = pt.wheel_force(v, a) * v;
    if (wheel >= 0.0) continue;
    const double elec =
        pt.power_request(v, a) - pt.params().accessory_power_w;
    EXPECT_LE(std::abs(elec), std::abs(wheel) + 1e-9);
    EXPECT_LE(elec, 0.0);
  }
}

TEST(PowertrainProperty, TripEnergyMatchesTraceIntegral) {
  const Powertrain pt = default_pt();
  const TimeSeries speed = generate(CycleName::kSc03);
  EXPECT_NEAR(pt.trip_energy_j(speed),
              pt.power_trace(speed).integral(), 1e-6);
}

TEST(PowertrainProperty, HeavierVehicleConsumesMore) {
  VehicleParams heavy;
  heavy.mass_kg = 2200.0;
  const Powertrain pt_light = default_pt();
  const Powertrain pt_heavy((heavy));
  const TimeSeries speed = generate(CycleName::kUdds);
  EXPECT_GT(pt_heavy.consumption_wh_per_km(speed),
            pt_light.consumption_wh_per_km(speed));
}

TEST(PowertrainProperty, BetterAeroHelpsAtHighwaySpeedsMost) {
  VehicleParams sleek;
  sleek.drag_coefficient = 0.20;
  const Powertrain base = default_pt();
  const Powertrain aero((sleek));
  const double city_gain =
      base.consumption_wh_per_km(generate(CycleName::kNycc)) -
      aero.consumption_wh_per_km(generate(CycleName::kNycc));
  const double hwy_gain =
      base.consumption_wh_per_km(generate(CycleName::kHwfet)) -
      aero.consumption_wh_per_km(generate(CycleName::kHwfet));
  EXPECT_GT(hwy_gain, city_gain);
}

// ---------------------------------------------------------------------------
// Cycle-family properties across the full registry.

class AllCycleSweep : public ::testing::TestWithParam<CycleName> {};

TEST_P(AllCycleSweep, PowerTraceIsServableByDefaultSystem) {
  // The default HEES (battery max power) must be able to carry every
  // registry cycle's peak through the hybrid architecture.
  const Powertrain pt = default_pt();
  const TimeSeries power = pt.power_trace(generate(GetParam()));
  // The bus-side ceiling is the motor cap through the traction path
  // plus accessories; regen is bounded by the regen cap.
  const double ceiling = pt.params().max_motor_power_w /
                             pt.params().traction_efficiency +
                         pt.params().accessory_power_w;
  EXPECT_LE(power.max(), ceiling + 1e-6) << to_string(GetParam());
  EXPECT_GT(power.min(), -45000.0);
}

TEST_P(AllCycleSweep, RegenFractionIsPlausible) {
  const Powertrain pt = default_pt();
  const TimeSeries power = pt.power_trace(generate(GetParam()));
  double pos = 0.0, neg = 0.0;
  for (size_t k = 0; k < power.size(); ++k) {
    if (power[k] > 0) pos += power[k];
    else neg -= power[k];
  }
  // Recovered energy is a real but minority share of traction energy.
  EXPECT_GT(neg, 0.0) << to_string(GetParam());
  EXPECT_LT(neg, 0.6 * pos) << to_string(GetParam());
}

TEST_P(AllCycleSweep, AccelerationWithinTestTrackLimits) {
  const CycleStats s = stats_of(generate(GetParam()));
  EXPECT_LT(s.max_accel_mps2, 4.5) << to_string(GetParam());
  EXPECT_LT(s.max_decel_mps2, 5.0) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllCycleSweep, ::testing::ValuesIn(extended_cycles()),
    [](const ::testing::TestParamInfo<CycleName>& param_info) {
      return std::string(to_string(param_info.param));
    });

TEST(CycleRegistryExtended, RoundtripNamesIncludingInternational) {
  for (CycleName c : extended_cycles()) {
    EXPECT_EQ(cycle_from_string(to_string(c)), c);
  }
}

TEST(CycleRegistryExtended, WltpIsTheLongRange) {
  const CycleStats wltp = stats_of(generate(CycleName::kWltp3));
  for (CycleName c : extended_cycles()) {
    if (c == CycleName::kWltp3) continue;
    EXPECT_GE(wltp.distance_m, stats_of(generate(c)).distance_m)
        << to_string(c);
  }
}

// HVAC coupling sanity: summer and winter both raise consumption.
TEST(PowertrainProperty, HvacRaisesAccessoryLoadBothSeasons) {
  const CabinHvac hvac((HvacParams()));
  const double mild = hvac.steady_load_w(289.0);  // ~16 C balance point
  EXPECT_DOUBLE_EQ(mild, 0.0);
  EXPECT_GT(hvac.steady_load_w(309.0), 100.0);
  EXPECT_GT(hvac.steady_load_w(268.0), 100.0);
}

}  // namespace
}  // namespace otem::vehicle
