// Tests for the HEES layer: DC/DC converter, parallel, dual and hybrid
// architectures.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "hees/converter.h"
#include "hees/dual_arch.h"
#include "hees/hybrid_arch.h"
#include "hees/parallel_arch.h"

namespace otem::hees {
namespace {

battery::PackModel default_battery() {
  return battery::PackModel(battery::PackParams{});
}

ultracap::BankModel default_cap() {
  return ultracap::BankModel(ultracap::BankParams{});
}

constexpr double kRoom = 298.15;

// --- converter ----------------------------------------------------------

TEST(Converter, PeakEfficiencyAtNominalVoltage) {
  ConverterParams p;
  p.nominal_voltage = 16.0;
  const Converter c(p);
  EXPECT_DOUBLE_EQ(c.efficiency(16.0), p.eta_max);
  EXPECT_LT(c.efficiency(8.0), p.eta_max);
  EXPECT_LT(c.efficiency(24.0), p.eta_max);
}

TEST(Converter, EfficiencyClampedAtFloor) {
  ConverterParams p;
  p.nominal_voltage = 16.0;
  p.droop = 2.0;  // aggressive droop to hit the floor
  const Converter c(p);
  EXPECT_DOUBLE_EQ(c.efficiency(0.0), p.eta_min);
  EXPECT_DOUBLE_EQ(c.efficiency_dv(0.0), 0.0);
}

TEST(Converter, EfficiencyDerivativeMatchesFiniteDifference) {
  ConverterParams p;
  p.nominal_voltage = 16.0;
  const Converter c(p);
  for (double v : {4.0, 10.0, 14.0, 15.9}) {
    const double h = 1e-6;
    const double fd = (c.efficiency(v + h) - c.efficiency(v - h)) / (2 * h);
    EXPECT_NEAR(c.efficiency_dv(v), fd, 1e-6) << "at v=" << v;
  }
}

TEST(Converter, DischargeDrawsMoreFromStorage) {
  ConverterParams p;
  p.nominal_voltage = 16.0;
  const Converter c(p);
  const double p_bus = 10000.0;
  EXPECT_GT(c.storage_power_for_bus(p_bus, 12.0), p_bus);
}

TEST(Converter, ChargeDeliversLessToStorage) {
  ConverterParams p;
  p.nominal_voltage = 16.0;
  const Converter c(p);
  const double p_bus = -10000.0;
  const double p_storage = c.storage_power_for_bus(p_bus, 12.0);
  EXPECT_LT(p_storage, 0.0);
  EXPECT_GT(p_storage, p_bus);  // smaller magnitude reaches the storage
}

TEST(Converter, BusStorageRoundtrip) {
  ConverterParams p;
  p.nominal_voltage = 16.0;
  const Converter c(p);
  for (double p_bus : {-5000.0, 0.0, 7000.0}) {
    const double ps = c.storage_power_for_bus(p_bus, 13.0);
    EXPECT_NEAR(c.bus_power_for_storage(ps, 13.0), p_bus, 1e-9);
  }
}

TEST(Converter, PartialsMatchFiniteDifferences) {
  ConverterParams p;
  p.nominal_voltage = 16.0;
  const Converter c(p);
  for (double p_bus : {-8000.0, 6000.0}) {
    for (double v : {9.0, 13.0, 15.0}) {
      double dp = 0, dv = 0;
      c.storage_power_partials(p_bus, v, dp, dv);
      const double h = 1e-4;
      const double fd_p = (c.storage_power_for_bus(p_bus + h, v) -
                           c.storage_power_for_bus(p_bus - h, v)) /
                          (2 * h);
      const double fd_v = (c.storage_power_for_bus(p_bus, v + h) -
                           c.storage_power_for_bus(p_bus, v - h)) /
                          (2 * h);
      EXPECT_NEAR(dp, fd_p, 1e-6);
      EXPECT_NEAR(dv, fd_v, std::abs(fd_v) * 1e-4 + 1e-6);
    }
  }
}

TEST(Converter, InvalidParamsThrow) {
  Config cfg;
  cfg.set_pair("x.eta_max=1.5");
  EXPECT_THROW(ConverterParams::from_config(cfg, "x.", ConverterParams{}),
               SimError);
}

// --- parallel architecture -----------------------------------------------

TEST(ParallelArch, ReflectedCapacitancePreservesEnergy) {
  const ParallelArchitecture arch(default_battery(), default_cap());
  const double c_eff = arch.effective_capacitance();
  const double v_ref = arch.reference_voltage();
  EXPECT_NEAR(0.5 * c_eff * v_ref * v_ref,
              default_cap().energy_capacity_j(), 1e-6);
}

TEST(ParallelArch, IdleLoadRelaxesTowardVoltageEquilibrium) {
  const ParallelArchitecture arch(default_battery(), default_cap());
  double soc = 80.0, soe = 30.0;
  // With no load, the battery charges the bank until V_c ~ Voc(soc).
  // The relaxation constant is (R_b + R_c) C_eff — give it several.
  for (int k = 0; k < 3000; ++k) {
    const ArchStep s = arch.step(soc, soe, kRoom, 0.0, 1.0);
    soc = s.soc_next;
    soe = s.soe_next;
  }
  const double vb = default_battery().open_circuit_voltage(soc);
  EXPECT_NEAR(arch.cap_bus_voltage(soe), vb, 2.0);
}

TEST(ParallelArch, LoadSplitsBetweenBatteryAndCap) {
  const ParallelArchitecture arch(default_battery(), default_cap());
  // From equilibrium, a load pulse initially comes mostly from the bank.
  const ArchStep s = arch.step(100.0, 100.0, kRoom, 40000.0, 1.0);
  EXPECT_GT(s.i_cap_a, 0.0);
  EXPECT_LT(s.soe_next, 100.0);
  EXPECT_TRUE(s.feasible);
}

TEST(ParallelArch, EnergyBookkeepingConsistent) {
  const ParallelArchitecture arch(default_battery(), default_cap());
  const double p = 20000.0, dt = 5.0;
  const ArchStep s = arch.step(90.0, 90.0, kRoom, p, dt);
  // Chemistry energy + cap energy = load energy + battery internal loss.
  EXPECT_NEAR(s.e_bat_j + s.e_cap_j, p * dt + s.e_loss_j,
              std::abs(p * dt) * 1e-6);
}

TEST(ParallelArch, RegenChargesBothStorages) {
  const ParallelArchitecture arch(default_battery(), default_cap());
  // Start at the voltage-equilibrium rest point so no internal
  // battery->bank transfer is in flight.
  const double soc = 70.0;
  const double soe = arch.equilibrium_soe(soc);
  const ArchStep s = arch.step(soc, soe, kRoom, -25000.0, 5.0);
  EXPECT_GT(s.soe_next, soe);  // bank absorbs
  // Battery charges (or stays neutral); it never discharges into regen.
  EXPECT_LT(s.i_bat_a, 1.0);
}

TEST(ParallelArch, EquilibriumSoeIsStable) {
  const ParallelArchitecture arch(default_battery(), default_cap());
  const double soc = 85.0;
  const double soe = arch.equilibrium_soe(soc);
  const ArchStep s = arch.step(soc, soe, kRoom, 0.0, 10.0);
  EXPECT_NEAR(s.soe_next, soe, 0.2);
  EXPECT_NEAR(std::abs(s.i_bat_a), 0.0, 1.0);
}

TEST(ParallelArch, SmallerBankStressesBatteryMore) {
  // The Table I "parallel" column mechanism: less filtering, more
  // battery current for the same pulse.
  ultracap::BankParams small;
  small.capacitance_f = 5000.0;
  ultracap::BankParams large;
  large.capacitance_f = 25000.0;
  const ParallelArchitecture arch_small(default_battery(),
                                        ultracap::BankModel(small));
  const ParallelArchitecture arch_large(default_battery(),
                                        ultracap::BankModel(large));
  // Pulse train: on-off load; measure battery loss.
  double loss_small = 0.0, loss_large = 0.0;
  double soc_s = 95.0, soe_s = 95.0, soc_l = 95.0, soe_l = 95.0;
  for (int k = 0; k < 120; ++k) {
    const double p = (k % 10 < 5) ? 45000.0 : 0.0;
    const ArchStep a = arch_small.step(soc_s, soe_s, kRoom, p, 1.0);
    soc_s = a.soc_next;
    soe_s = a.soe_next;
    loss_small += a.e_loss_j;
    const ArchStep b = arch_large.step(soc_l, soe_l, kRoom, p, 1.0);
    soc_l = b.soc_next;
    soe_l = b.soe_next;
    loss_large += b.e_loss_j;
  }
  EXPECT_GT(loss_small, loss_large);
}

// --- dual architecture ----------------------------------------------------

TEST(DualArch, BatteryOnlyLeavesCapUntouched) {
  const DualArchitecture arch(default_battery(), default_cap());
  const ArchStep s =
      arch.step(80.0, 60.0, kRoom, 20000.0, DualMode::kBatteryOnly, 1.0);
  EXPECT_DOUBLE_EQ(s.soe_next, 60.0);
  EXPECT_GT(s.i_bat_a, 0.0);
  EXPECT_DOUBLE_EQ(s.i_cap_a, 0.0);
}

TEST(DualArch, UltracapOnlyRestsBattery) {
  const DualArchitecture arch(default_battery(), default_cap());
  const ArchStep s =
      arch.step(80.0, 90.0, kRoom, 20000.0, DualMode::kUltracapOnly, 1.0);
  EXPECT_DOUBLE_EQ(s.soc_next, 80.0);
  EXPECT_DOUBLE_EQ(s.q_bat_w, 0.0);
  EXPECT_LT(s.soe_next, 90.0);
  EXPECT_TRUE(s.feasible);
}

TEST(DualArch, DepletedCapFallsBackToBattery) {
  const DualArchitecture arch(default_battery(), default_cap());
  // Bank at floor: UC-only mode must pull the load from the battery
  // and flag infeasibility (Fig. 1's failure mode).
  const ArchStep s = arch.step(
      80.0, arch.ultracap().params().min_soe_percent, kRoom, 30000.0,
      DualMode::kUltracapOnly, 1.0);
  EXPECT_FALSE(s.feasible);
  EXPECT_GT(s.i_bat_a, 0.0);
  EXPECT_LT(s.soc_next, 80.0);
}

TEST(DualArch, ParallelModeMatchesParallelArchitecture) {
  const DualArchitecture dual(default_battery(), default_cap());
  const ParallelArchitecture par(default_battery(), default_cap());
  const ArchStep a =
      dual.step(75.0, 80.0, kRoom, 15000.0, DualMode::kParallel, 1.0);
  const ArchStep b = par.step(75.0, 80.0, kRoom, 15000.0, 1.0);
  EXPECT_NEAR(a.i_bat_a, b.i_bat_a, 1e-12);
  EXPECT_NEAR(a.soe_next, b.soe_next, 1e-12);
}

TEST(DualArch, RegenIntoCapOnly) {
  const DualArchitecture arch(default_battery(), default_cap());
  const ArchStep s =
      arch.step(80.0, 50.0, kRoom, -20000.0, DualMode::kUltracapOnly, 1.0);
  EXPECT_GT(s.soe_next, 50.0);
  EXPECT_DOUBLE_EQ(s.soc_next, 80.0);
}

TEST(DualArch, ModeToString) {
  EXPECT_STREQ(to_string(DualMode::kBatteryOnly), "battery_only");
  EXPECT_STREQ(to_string(DualMode::kUltracapOnly), "ultracap_only");
  EXPECT_STREQ(to_string(DualMode::kParallel), "parallel");
}

// --- hybrid architecture -----------------------------------------------------

HybridArchitecture default_hybrid() {
  return HybridArchitecture(
      default_battery(), default_cap(),
      HybridParams::for_storages(default_battery(), default_cap()));
}

TEST(HybridArch, SplitsPowerAsCommanded) {
  const HybridArchitecture arch = default_hybrid();
  const ArchStep s = arch.step(80.0, 80.0, kRoom, 15000.0, 10000.0, 1.0);
  EXPECT_TRUE(s.feasible);
  EXPECT_GT(s.i_bat_a, 0.0);
  EXPECT_GT(s.i_cap_a, 0.0);
  EXPECT_LT(s.soe_next, 80.0);
  EXPECT_LT(s.soc_next, 80.0);
}

TEST(HybridArch, ConversionLossesAccounted) {
  const HybridArchitecture arch = default_hybrid();
  const double dt = 1.0;
  const ArchStep s = arch.step(80.0, 80.0, kRoom, 15000.0, 10000.0, dt);
  // Storage-side energy exceeds bus-side energy by the losses.
  EXPECT_NEAR(s.e_bat_j + s.e_cap_j, 25000.0 * dt + s.e_loss_j,
              25000.0 * dt * 1e-6);
  EXPECT_GT(s.e_loss_j, 0.0);
}

TEST(HybridArch, PreChargeMovesEnergyBatteryToCap) {
  const HybridArchitecture arch = default_hybrid();
  // Zero net load; charge the cap at 10 kW from the battery.
  const ArchStep s = arch.step(80.0, 50.0, kRoom, 10000.0, -10000.0, 1.0);
  EXPECT_GT(s.soe_next, 50.0);
  EXPECT_LT(s.soc_next, 80.0);
  EXPECT_GT(s.i_bat_a, 0.0);
  // Double conversion: energy received by the cap is strictly less
  // than energy drawn from the battery chemistry.
  EXPECT_LT(-s.e_cap_j, s.e_bat_j);
}

TEST(HybridArch, CapLimitShiftsLoadToBattery) {
  const HybridArchitecture arch = default_hybrid();
  // Bank essentially empty (0.02 % SoE ~ a few kJ): commanded 50 kW
  // from the cap cannot happen within the step.
  const ArchStep s = arch.step(80.0, 0.02, kRoom, 0.0, 50000.0, 1.0);
  // Battery covers the shifted request.
  EXPECT_GT(s.i_bat_a, 0.0);
  EXPECT_GE(s.soe_next, 0.0);
}

TEST(HybridArch, FullCapRejectsCharge) {
  const HybridArchitecture arch = default_hybrid();
  const ArchStep s = arch.step(80.0, 100.0, kRoom, 0.0, -20000.0, 1.0);
  EXPECT_DOUBLE_EQ(s.soe_next, 100.0);
}

TEST(HybridArch, BatteryPowerCapFlagsInfeasible) {
  battery::PackParams bp;  // default pack
  ultracap::BankParams cp;
  HybridParams hp = HybridParams::for_storages(
      battery::PackModel(bp), ultracap::BankModel(cp));
  hp.max_battery_power_w = 10000.0;
  const HybridArchitecture arch(battery::PackModel(bp),
                                ultracap::BankModel(cp), hp);
  const ArchStep s = arch.step(80.0, 50.0, kRoom, 50000.0, 0.0, 1.0);
  EXPECT_FALSE(s.feasible);
}

TEST(HybridArch, BusLimitsConsistent) {
  const HybridArchitecture arch = default_hybrid();
  EXPECT_GT(arch.cap_bus_discharge_limit(80.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(
      arch.cap_bus_discharge_limit(arch.ultracap().params().min_soe_percent,
                                   1.0),
      0.0);
  EXPECT_DOUBLE_EQ(arch.cap_bus_charge_limit(100.0, 1.0), 0.0);
  EXPECT_GT(arch.cap_bus_charge_limit(40.0, 1.0), 0.0);
}

}  // namespace
}  // namespace otem::hees
