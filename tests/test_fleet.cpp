// Tests for the Monte-Carlo fleet evaluation harness.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "common/error.h"
#include "core/otem/ltv_controller.h"
#include "core/otem/otem_methodology.h"
#include "core/parallel_methodology.h"
#include "sim/fleet.h"

namespace otem::sim {
namespace {

core::SystemSpec default_spec() {
  return core::SystemSpec::from_config(Config());
}

auto parallel_factory() {
  return [](const core::SystemSpec& s) {
    return std::make_unique<core::ParallelMethodology>(s);
  };
}

FleetOptions small_fleet(size_t missions = 4) {
  FleetOptions f;
  f.missions = missions;
  f.seed = 99;
  f.min_duration_s = 200.0;
  f.max_duration_s = 400.0;
  return f;
}

TEST(Fleet, DeterministicPerSeed) {
  const core::SystemSpec spec = default_spec();
  const FleetResult a = evaluate_fleet(spec, parallel_factory(),
                                       small_fleet());
  const FleetResult b = evaluate_fleet(spec, parallel_factory(),
                                       small_fleet());
  EXPECT_DOUBLE_EQ(a.qloss_percent.mean, b.qloss_percent.mean);
  EXPECT_DOUBLE_EQ(a.average_power_w.stddev, b.average_power_w.stddev);
  ASSERT_EQ(a.missions.size(), b.missions.size());
  for (size_t i = 0; i < a.missions.size(); ++i) {
    EXPECT_EQ(a.missions[i].route_seed, b.missions[i].route_seed);
    EXPECT_DOUBLE_EQ(a.missions[i].ambient_k, b.missions[i].ambient_k);
  }
}

TEST(Fleet, ThreadedIsBitIdenticalToSerial) {
  // Mission conditions are pre-drawn serially and reductions happen in
  // mission order, so execution width must not change a single bit.
  const core::SystemSpec spec = default_spec();
  FleetOptions serial = small_fleet(6);
  serial.threads = 1;
  FleetOptions threaded = small_fleet(6);
  threaded.threads = 4;
  const FleetResult a = evaluate_fleet(spec, parallel_factory(), serial);
  const FleetResult b =
      evaluate_fleet(spec, parallel_factory(), threaded);
  EXPECT_EQ(a.qloss_percent.mean, b.qloss_percent.mean);
  EXPECT_EQ(a.qloss_percent.stddev, b.qloss_percent.stddev);
  EXPECT_EQ(a.average_power_w.mean, b.average_power_w.mean);
  EXPECT_EQ(a.average_power_w.stddev, b.average_power_w.stddev);
  EXPECT_EQ(a.max_t_battery_k.min, b.max_t_battery_k.min);
  EXPECT_EQ(a.max_t_battery_k.max, b.max_t_battery_k.max);
  EXPECT_EQ(a.total_violation_s, b.total_violation_s);
  EXPECT_EQ(a.total_unserved_j, b.total_unserved_j);
  ASSERT_EQ(a.missions.size(), b.missions.size());
  for (size_t i = 0; i < a.missions.size(); ++i) {
    EXPECT_EQ(a.missions[i].route_seed, b.missions[i].route_seed);
    EXPECT_EQ(a.missions[i].ambient_k, b.missions[i].ambient_k);
    EXPECT_EQ(a.missions[i].distance_m, b.missions[i].distance_m);
    EXPECT_EQ(a.missions[i].result.qloss_percent,
              b.missions[i].result.qloss_percent);
    EXPECT_EQ(a.missions[i].result.energy_hees_j,
              b.missions[i].result.energy_hees_j);
    EXPECT_EQ(a.missions[i].result.max_t_battery_k,
              b.missions[i].result.max_t_battery_k);
  }
}

TEST(Fleet, LtvWarmStartsStayBitIdenticalAcrossThreads) {
  // Warm-started ADMM carries solver state across steps INSIDE a
  // mission; each mission owns its controller and solver, so execution
  // width and repetition must still not change a single bit.
  const core::SystemSpec spec = default_spec();
  const auto ltv_factory = [](const core::SystemSpec& s) {
    core::MpcOptions mpc;
    mpc.horizon = 8;
    return std::make_unique<core::OtemMethodology>(
        s, std::make_unique<core::LtvOtemController>(s, mpc));
  };
  FleetOptions serial = small_fleet(3);
  serial.min_duration_s = 60.0;
  serial.max_duration_s = 120.0;
  serial.threads = 1;
  FleetOptions threaded = serial;
  threaded.threads = 4;
  const FleetResult a = evaluate_fleet(spec, ltv_factory, serial);
  const FleetResult b = evaluate_fleet(spec, ltv_factory, threaded);
  const FleetResult c = evaluate_fleet(spec, ltv_factory, threaded);
  EXPECT_EQ(a.qloss_percent.mean, b.qloss_percent.mean);
  EXPECT_EQ(a.average_power_w.mean, b.average_power_w.mean);
  ASSERT_EQ(a.missions.size(), b.missions.size());
  for (size_t i = 0; i < a.missions.size(); ++i) {
    EXPECT_EQ(a.missions[i].result.qloss_percent,
              b.missions[i].result.qloss_percent);
    EXPECT_EQ(a.missions[i].result.energy_hees_j,
              b.missions[i].result.energy_hees_j);
    EXPECT_EQ(a.missions[i].result.max_t_battery_k,
              b.missions[i].result.max_t_battery_k);
    // Repeat with the same width: warm-start state resets per run.
    EXPECT_EQ(b.missions[i].result.qloss_percent,
              c.missions[i].result.qloss_percent);
    EXPECT_EQ(b.missions[i].result.energy_hees_j,
              c.missions[i].result.energy_hees_j);
  }
}

TEST(Fleet, BandedKktStaysBitIdenticalAcrossThreads) {
  // The banded KKT path adds per-solver persistent stage workspace
  // (block factors, ADMM iterates) on top of the warm-start state; each
  // mission still owns its controller, so execution width must not
  // change a single bit. Pinned to kBanded explicitly so the test keeps
  // its meaning if the LtvOptions default ever changes.
  const core::SystemSpec spec = default_spec();
  const auto banded_factory = [](const core::SystemSpec& s) {
    core::MpcOptions mpc;
    mpc.horizon = 8;
    core::LtvOptions ltv;
    ltv.qp.kkt_mode = optim::KktSolveMode::kBanded;
    return std::make_unique<core::OtemMethodology>(
        s, std::make_unique<core::LtvOtemController>(s, mpc, ltv));
  };
  FleetOptions serial = small_fleet(3);
  serial.min_duration_s = 60.0;
  serial.max_duration_s = 120.0;
  serial.threads = 1;
  FleetOptions threaded = serial;
  threaded.threads = 4;
  const FleetResult a = evaluate_fleet(spec, banded_factory, serial);
  const FleetResult b = evaluate_fleet(spec, banded_factory, threaded);
  EXPECT_EQ(a.qloss_percent.mean, b.qloss_percent.mean);
  EXPECT_EQ(a.average_power_w.mean, b.average_power_w.mean);
  ASSERT_EQ(a.missions.size(), b.missions.size());
  for (size_t i = 0; i < a.missions.size(); ++i) {
    EXPECT_EQ(a.missions[i].result.qloss_percent,
              b.missions[i].result.qloss_percent);
    EXPECT_EQ(a.missions[i].result.energy_hees_j,
              b.missions[i].result.energy_hees_j);
    EXPECT_EQ(a.missions[i].result.max_t_battery_k,
              b.missions[i].result.max_t_battery_k);
  }
}

TEST(Fleet, SingleMissionHasZeroSpread) {
  const core::SystemSpec spec = default_spec();
  const FleetResult r =
      evaluate_fleet(spec, parallel_factory(), small_fleet(1));
  EXPECT_EQ(r.qloss_percent.stddev, 0.0);
  EXPECT_EQ(r.qloss_percent.mean, r.qloss_percent.min);
  EXPECT_EQ(r.qloss_percent.mean, r.qloss_percent.max);
}

TEST(Fleet, DifferentSeedsSampleDifferentMissions) {
  const core::SystemSpec spec = default_spec();
  FleetOptions f1 = small_fleet();
  FleetOptions f2 = small_fleet();
  f2.seed = 100;
  const FleetResult a = evaluate_fleet(spec, parallel_factory(), f1);
  const FleetResult b = evaluate_fleet(spec, parallel_factory(), f2);
  EXPECT_NE(a.missions[0].route_seed, b.missions[0].route_seed);
}

TEST(Fleet, StatsAreConsistent) {
  const core::SystemSpec spec = default_spec();
  const FleetResult r =
      evaluate_fleet(spec, parallel_factory(), small_fleet(6));
  ASSERT_EQ(r.missions.size(), 6u);
  EXPECT_LE(r.qloss_percent.min, r.qloss_percent.mean);
  EXPECT_LE(r.qloss_percent.mean, r.qloss_percent.max);
  EXPECT_GE(r.qloss_percent.stddev, 0.0);
  // Recompute the mean from the per-mission outcomes.
  double mean = 0.0;
  for (const auto& m : r.missions) mean += m.result.qloss_percent;
  mean /= 6.0;
  EXPECT_NEAR(r.qloss_percent.mean, mean, 1e-12);
}

TEST(Fleet, AmbientSamplesWithinRange) {
  const core::SystemSpec spec = default_spec();
  FleetOptions f = small_fleet(8);
  f.ambient_min_k = 290.0;
  f.ambient_max_k = 300.0;
  const FleetResult r = evaluate_fleet(spec, parallel_factory(), f);
  for (const auto& m : r.missions) {
    EXPECT_GE(m.ambient_k, 290.0);
    EXPECT_LE(m.ambient_k, 300.0);
    EXPECT_GE(m.duration_s, 190.0);
    EXPECT_GT(m.distance_m, 0.0);
  }
}

TEST(Fleet, OtemBeatsParallelInDistribution) {
  // The paper's ordering must hold on the paired random fleet, not
  // just the fixed schedules.
  const core::SystemSpec spec = default_spec();
  FleetOptions f = small_fleet(5);
  f.min_duration_s = 300.0;
  f.max_duration_s = 500.0;
  const FleetResult parallel =
      evaluate_fleet(spec, parallel_factory(), f);
  const FleetResult otem = evaluate_fleet(
      spec,
      [](const core::SystemSpec& s) {
        core::MpcOptions mpc;
        mpc.horizon = 12;
        core::OtemSolverOptions sopt;
        sopt.al.adam.max_iterations = 60;
        sopt.al.max_outer_iterations = 2;
        return std::make_unique<core::OtemMethodology>(s, mpc, sopt);
      },
      f);
  EXPECT_LT(otem.qloss_percent.mean, parallel.qloss_percent.mean);
  EXPECT_LE(otem.total_violation_s, parallel.total_violation_s);
}

TEST(Fleet, TelemetryPrefixStreamsOneCsvPerMission) {
  // A 16-mission fleet with streaming telemetry: every mission writes
  // <prefix>mission_<m>.csv with one row per step, while the in-process
  // results stay bit-identical to a run without telemetry (the sink
  // only observes; it never feeds back).
  const core::SystemSpec spec = default_spec();
  FleetOptions plain = small_fleet(16);
  plain.min_duration_s = 60.0;
  plain.max_duration_s = 120.0;
  FleetOptions streaming = plain;
  const std::string prefix = testing::TempDir() + "otem_fleet_";
  streaming.telemetry_csv_prefix = prefix;

  const FleetResult a = evaluate_fleet(spec, parallel_factory(), plain);
  const FleetResult b =
      evaluate_fleet(spec, parallel_factory(), streaming);

  ASSERT_EQ(b.missions.size(), 16u);
  EXPECT_EQ(a.qloss_percent.mean, b.qloss_percent.mean);
  EXPECT_EQ(a.average_power_w.mean, b.average_power_w.mean);
  for (size_t m = 0; m < b.missions.size(); ++m) {
    const std::string path = prefix + "mission_" + std::to_string(m) +
                             ".csv";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing telemetry file " << path;
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.rfind("t_s,p_load_w,", 0), 0u) << path;
    size_t rows = 0;
    while (std::getline(in, line)) ++rows;
    // One row per simulated step; duration() is (steps - 1) * dt.
    EXPECT_EQ(static_cast<double>(rows), b.missions[m].duration_s + 1.0)
        << path;
    std::remove(path.c_str());
  }
}

TEST(Fleet, InvalidOptionsThrow) {
  const core::SystemSpec spec = default_spec();
  FleetOptions f = small_fleet(0);
  EXPECT_THROW(evaluate_fleet(spec, parallel_factory(), f), SimError);
  FleetOptions g = small_fleet();
  g.ambient_min_k = 320.0;
  g.ambient_max_k = 280.0;
  EXPECT_THROW(evaluate_fleet(spec, parallel_factory(), g), SimError);
}

}  // namespace
}  // namespace otem::sim
