// Tests for the scenario engine: the methodology registry, the
// streaming step-sink pipeline and the declarative Scenario runner.
//
// The heart of the file is the bit-identity harness: an in-test
// re-implementation of the pre-sink simulator loop (the accounting that
// used to live inline in Simulator::run) is driven over every named
// cycle x methodology pair and compared field by field with EXPECT_EQ
// against the sink-based Simulator. No tolerance — the refactor must
// not change a single bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/strings.h"
#include "core/methodology_registry.h"
#include "core/teb.h"
#include "sim/scenario.h"
#include "sim/simulator.h"
#include "sim/step_sink.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem::sim {
namespace {

Config cheap_otem_config() {
  // Small horizon / few solver iterations: the equivalence sweep runs
  // OTEM over six full cycles and only cares that both paths get the
  // SAME answer, not that the answer is well optimised.
  Config cfg;
  cfg.set_pair("otem.horizon=8");
  cfg.set_pair("otem.solver.adam_iterations=40");
  cfg.set_pair("otem.solver.outer_iterations=2");
  return cfg;
}

/// The pre-refactor Simulator::run loop, verbatim (plus the
/// max_t_battery_k seeding fix that shipped with the sink pipeline):
/// every accumulation in the same order, the trace pushed from the same
/// values. This is the reference the sink pipeline must reproduce
/// bit-identically.
RunResult reference_run(const core::SystemSpec& spec,
                        core::Methodology& methodology,
                        const TimeSeries& power,
                        const RunOptions& options) {
  const double dt = power.dt();
  const size_t steps = power.size();
  const double t_max = spec.thermal.max_battery_temp_k;
  const core::TebMetric teb(spec);

  core::PlantState state = options.initial;
  methodology.reset(state, power);

  RunResult r;
  r.max_t_battery_k = options.initial.t_battery_k;
  for (size_t k = 0; k < steps; ++k) {
    const core::StepRecord rec = methodology.step(state, power[k], k, dt);
    r.qloss_percent += rec.qloss_percent;
    r.energy_battery_j += rec.e_bat_j;
    r.energy_cap_j += rec.e_cap_j;
    r.energy_cooling_j += rec.e_cooling_j;
    r.energy_loss_j += rec.e_loss_j;
    if (!rec.feasible) ++r.infeasible_steps;
    r.unserved_energy_j += rec.unmet_w * dt;
    r.max_t_battery_k = std::max(r.max_t_battery_k, state.t_battery_k);
    if (state.t_battery_k > t_max) r.thermal_violation_s += dt;
    if (options.record_trace) {
      r.trace.t_battery_k.push_back(state.t_battery_k);
      r.trace.t_coolant_k.push_back(state.t_coolant_k);
      r.trace.soc_percent.push_back(state.soc_percent);
      r.trace.soe_percent.push_back(state.soe_percent);
      r.trace.p_load_w.push_back(rec.p_load_w);
      r.trace.p_cooler_w.push_back(rec.p_cooler_w);
      r.trace.p_cap_w.push_back(rec.e_cap_j / dt);
      r.trace.q_bat_w.push_back(rec.q_bat_w);
      r.trace.t_inlet_k.push_back(rec.t_inlet_k);
      r.trace.i_bat_a.push_back(rec.i_bat_a);
      r.trace.qloss_percent.push_back(r.qloss_percent);
      r.trace.teb.push_back(teb.evaluate(state).combined());
    }
  }
  r.duration_s = static_cast<double>(steps) * dt;
  r.energy_hees_j = r.energy_battery_j + r.energy_cap_j;
  r.average_power_w = r.energy_hees_j / r.duration_s;
  r.final_state = state;
  return r;
}

void expect_series_identical(const TimeSeries& a, const TimeSeries& b,
                             const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t k = 0; k < a.size(); ++k)
    ASSERT_EQ(a[k], b[k]) << what << " diverges at step " << k;
}

TEST(SinkPipeline, BitIdenticalToPreRefactorLoopOnEveryCycleAndMethod) {
  const Config cfg = cheap_otem_config();
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const std::vector<std::string> methods = {"parallel", "active_cooling",
                                            "dual", "otem"};
  for (vehicle::CycleName cycle : vehicle::all_cycles()) {
    const TimeSeries power =
        vehicle::Powertrain(spec.vehicle)
            .power_trace(vehicle::generate(cycle));
    for (const std::string& name : methods) {
      SCOPED_TRACE(std::string(vehicle::to_string(cycle)) + " / " + name);
      RunOptions options;
      options.record_trace = true;

      auto m_ref = core::make_methodology(name, spec, cfg);
      const RunResult want = reference_run(spec, *m_ref, power, options);

      auto m_new = core::make_methodology(name, spec, cfg);
      const RunResult got =
          Simulator(spec).run(*m_new, power, options);

      EXPECT_EQ(got.duration_s, want.duration_s);
      EXPECT_EQ(got.qloss_percent, want.qloss_percent);
      EXPECT_EQ(got.energy_hees_j, want.energy_hees_j);
      EXPECT_EQ(got.energy_battery_j, want.energy_battery_j);
      EXPECT_EQ(got.energy_cap_j, want.energy_cap_j);
      EXPECT_EQ(got.energy_cooling_j, want.energy_cooling_j);
      EXPECT_EQ(got.energy_loss_j, want.energy_loss_j);
      EXPECT_EQ(got.average_power_w, want.average_power_w);
      EXPECT_EQ(got.max_t_battery_k, want.max_t_battery_k);
      EXPECT_EQ(got.thermal_violation_s, want.thermal_violation_s);
      EXPECT_EQ(got.infeasible_steps, want.infeasible_steps);
      EXPECT_EQ(got.unserved_energy_j, want.unserved_energy_j);
      EXPECT_EQ(got.final_state.t_battery_k, want.final_state.t_battery_k);
      EXPECT_EQ(got.final_state.soe_percent, want.final_state.soe_percent);

      expect_series_identical(got.trace.t_battery_k,
                              want.trace.t_battery_k, "t_battery_k");
      expect_series_identical(got.trace.t_coolant_k,
                              want.trace.t_coolant_k, "t_coolant_k");
      expect_series_identical(got.trace.soc_percent,
                              want.trace.soc_percent, "soc_percent");
      expect_series_identical(got.trace.soe_percent,
                              want.trace.soe_percent, "soe_percent");
      expect_series_identical(got.trace.p_load_w, want.trace.p_load_w,
                              "p_load_w");
      expect_series_identical(got.trace.p_cooler_w,
                              want.trace.p_cooler_w, "p_cooler_w");
      expect_series_identical(got.trace.p_cap_w, want.trace.p_cap_w,
                              "p_cap_w");
      expect_series_identical(got.trace.q_bat_w, want.trace.q_bat_w,
                              "q_bat_w");
      expect_series_identical(got.trace.t_inlet_k,
                              want.trace.t_inlet_k, "t_inlet_k");
      expect_series_identical(got.trace.i_bat_a, want.trace.i_bat_a,
                              "i_bat_a");
      expect_series_identical(got.trace.qloss_percent,
                              want.trace.qloss_percent, "qloss_percent");
      expect_series_identical(got.trace.teb, want.trace.teb, "teb");
    }
  }
}

/// A plant that strictly cools from wherever it starts — the case the
/// pre-sink simulator got wrong (it started the running max at 0 K, so
/// a monotonically cooling mission under-reported its peak).
class CoolingOnlyMethodology final : public core::Methodology {
 public:
  std::string name() const override { return "cooling-only"; }
  void reset(const core::PlantState& initial, const TimeSeries&) override {
    t0_ = initial.t_battery_k;
  }
  core::StepRecord step(core::PlantState& state, double p_e_w, size_t k,
                        double) override {
    state.t_battery_k = t0_ - 0.1 * static_cast<double>(k + 1);
    core::StepRecord rec;
    rec.p_load_w = p_e_w;
    rec.state_after = state;
    return rec;
  }

 private:
  double t0_ = 0.0;
};

TEST(SinkPipeline, MaxBatteryTempSeededFromInitialState) {
  // A heat-soaked pack that only ever cools must still report its
  // (initial) soak temperature as the mission maximum.
  const Config cfg;
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const TimeSeries power(1.0, std::vector<double>(30, 500.0));
  RunOptions options;
  options.record_trace = false;
  options.initial.t_battery_k = 330.0;
  CoolingOnlyMethodology cooling;
  const RunResult r = Simulator(spec).run(cooling, power, options);
  EXPECT_EQ(r.max_t_battery_k, 330.0);
  EXPECT_EQ(r.final_state.t_battery_k, 330.0 - 3.0);
}

// --- registry ---------------------------------------------------------------

TEST(MethodologyRegistry, KnowsAllBuiltins) {
  auto& reg = core::MethodologyRegistry::instance();
  for (const char* name :
       {"parallel", "active_cooling", "dual", "otem", "otem-ltv"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
  // names() is sorted for stable help/error output.
  const std::vector<std::string> names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(MethodologyRegistry, CreatesWorkingMethodologies) {
  const Config cfg;
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  for (const std::string& name :
       core::MethodologyRegistry::instance().names()) {
    auto m = core::make_methodology(name, spec, cfg);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_FALSE(m->name().empty()) << name;
  }
}

TEST(MethodologyRegistry, UnknownNameThrowsListingRegisteredNames) {
  const Config cfg;
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  try {
    core::make_methodology("otmm", spec, cfg);  // typo
    FAIL() << "should have thrown";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown methodology 'otmm'"), std::string::npos)
        << what;
    // The message names every registered strategy so the fix is
    // copy-pasteable from the error itself.
    for (const char* name :
         {"parallel", "active_cooling", "dual", "otem", "otem-ltv"}) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
}

TEST(MethodologyRegistry, DuplicateRegistrationThrows) {
  auto& reg = core::MethodologyRegistry::instance();
  EXPECT_THROW(reg.add("parallel",
                       [](const core::SystemSpec&, const Config&)
                           -> std::unique_ptr<core::Methodology> {
                         return nullptr;
                       }),
               SimError);
}

// --- CsvStreamSink golden file ----------------------------------------------

/// Deterministic scripted plant: every field of the StepRecord and the
/// post-step state is a simple function of the step index, so the
/// expected CSV can be derived independently in the test.
class ScriptedMethodology final : public core::Methodology {
 public:
  std::string name() const override { return "scripted"; }
  void reset(const core::PlantState&, const TimeSeries&) override {}
  core::StepRecord step(core::PlantState& state, double p_e_w, size_t k,
                        double dt) override {
    const double x = static_cast<double>(k + 1);
    state.t_battery_k = 298.0 + 0.5 * x;
    state.t_coolant_k = 297.0 + 0.25 * x;
    state.soc_percent = 100.0 - x;
    state.soe_percent = 90.0 - 2.0 * x;
    core::StepRecord rec;
    rec.p_load_w = p_e_w;
    rec.p_cooler_w = 100.0 * x;
    rec.i_bat_a = 2.0 * x;
    rec.e_cap_j = 50.0 * x * dt;
    rec.q_bat_w = 7.0 * x;
    rec.t_inlet_k = 293.15 + x;
    rec.qloss_percent = 0.001 * x;
    rec.state_after = state;
    return rec;
  }
};

TEST(CsvStreamSink, GoldenFileSchemaAndFormatting) {
  const Config cfg;
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const std::string path = testing::TempDir() + "otem_csv_golden.csv";
  const TimeSeries power(0.5, {1000.0, 2000.0, 3000.0});

  ScriptedMethodology scripted;
  CsvStreamSink csv(path);
  MetricsAccumulator metrics;
  RunOptions options;
  Simulator(spec).run_with_sinks(scripted, power, options,
                                 {&metrics, &csv});
  EXPECT_EQ(csv.rows_written(), 3u);
  EXPECT_EQ(csv.path(), path);

  // Derive the expected file from the script: the same column order and
  // fixed 6-decimal formatting the header documents, TEB from the same
  // public metric the simulator evaluates.
  const core::TebMetric teb(spec);
  std::string want =
      "t_s,p_load_w,p_cooler_w,p_cap_w,i_bat_a,tb_c,tc_c,"
      "soc_percent,soe_percent,qloss_percent,teb,q_bat_w,t_inlet_c\n";
  double qloss_cum = 0.0;
  for (size_t k = 0; k < 3; ++k) {
    const double x = static_cast<double>(k + 1);
    core::PlantState s;
    s.t_battery_k = 298.0 + 0.5 * x;
    s.t_coolant_k = 297.0 + 0.25 * x;
    s.soc_percent = 100.0 - x;
    s.soe_percent = 90.0 - 2.0 * x;
    qloss_cum += 0.001 * x;
    const std::vector<double> cells = {
        static_cast<double>(k) * 0.5,
        power[k],
        100.0 * x,
        50.0 * x,  // e_cap_j / dt
        2.0 * x,
        s.t_battery_k - 273.15,
        s.t_coolant_k - 273.15,
        s.soc_percent,
        s.soe_percent,
        qloss_cum,
        teb.evaluate(s).combined(),
        7.0 * x,
        (293.15 + x) - 273.15,
    };
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) want += ',';
      want += strings::format_double(cells[i], 6);
    }
    want += '\n';
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream got;
  got << in.rdbuf();
  EXPECT_EQ(got.str(), want);
  std::remove(path.c_str());
}

TEST(CsvStreamSink, UnwritablePathThrows) {
  EXPECT_THROW(CsvStreamSink("/nonexistent-dir/x/y.csv"), SimError);
}

// --- Scenario ---------------------------------------------------------------

TEST(Scenario, FromConfigParsesEveryKey) {
  Config cfg;
  cfg.set_pair("method=dual");
  cfg.set_pair("cycle=US06");
  cfg.set_pair("repeats=4");
  cfg.set_pair("soak=true");
  cfg.set_pair("synthetic=true");
  cfg.set_pair("synthetic_seed=42");
  cfg.set_pair("synthetic_duration_s=300");
  cfg.set_pair("synthetic_max_speed_mps=25");
  cfg.set_pair("t_battery0_k=305.0");
  cfg.set_pair("soe0=55");
  cfg.set_pair("record_trace=false");
  cfg.set_pair("trace_csv=/tmp/t.csv");
  const Scenario sc = Scenario::from_config(cfg);
  EXPECT_EQ(sc.methodology, "dual");
  EXPECT_EQ(sc.cycle, "US06");
  EXPECT_EQ(sc.repeats, 4u);
  EXPECT_TRUE(sc.soak);
  EXPECT_TRUE(sc.synthetic);
  EXPECT_EQ(sc.synthetic_seed, 42u);
  EXPECT_DOUBLE_EQ(sc.synthetic_duration_s, 300.0);
  EXPECT_DOUBLE_EQ(sc.synthetic_max_speed_mps, 25.0);
  EXPECT_DOUBLE_EQ(sc.initial.t_battery_k, 305.0);
  EXPECT_DOUBLE_EQ(sc.initial.soe_percent, 55.0);
  EXPECT_FALSE(sc.record_trace);
  EXPECT_EQ(sc.trace_csv, "/tmp/t.csv");
  // Everything was consumed — no false typo warnings.
  EXPECT_TRUE(cfg.unused_keys().empty());
}

TEST(Scenario, InvalidRepeatsThrow) {
  Config cfg;
  cfg.set_pair("repeats=0");
  EXPECT_THROW(Scenario::from_config(cfg), SimError);
}

TEST(Scenario, RunScenarioMatchesHandAssembledRun) {
  // The declarative runner must be the same computation as wiring
  // powertrain + registry + simulator by hand.
  const Config cfg = cheap_otem_config();
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);

  Scenario sc;
  sc.methodology = "dual";
  sc.cycle = "NYCC";
  sc.repeats = 2;
  const ScenarioOutcome outcome = run_scenario(sc, spec, cfg);

  const TimeSeries power =
      vehicle::Powertrain(spec.vehicle)
          .power_trace(vehicle::generate(vehicle::CycleName::kNycc))
          .repeated(2);
  auto dual = core::make_methodology("dual", spec, cfg);
  const RunResult want = Simulator(spec).run(*dual, power);

  ASSERT_EQ(outcome.power.size(), power.size());
  EXPECT_EQ(outcome.result.qloss_percent, want.qloss_percent);
  EXPECT_EQ(outcome.result.energy_hees_j, want.energy_hees_j);
  EXPECT_EQ(outcome.result.max_t_battery_k, want.max_t_battery_k);
  EXPECT_EQ(outcome.result.trace.t_battery_k.size(),
            want.trace.t_battery_k.size());
  EXPECT_GT(outcome.distance_m, 0.0);
}

TEST(Scenario, SoakStartsThermalStatesAtAmbient) {
  const Config cfg;
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  Scenario sc;
  sc.methodology = "parallel";
  sc.cycle = "NYCC";
  sc.soak = true;
  sc.ambient_k = 308.15;
  const ScenarioOutcome outcome = run_scenario(sc, spec, cfg);
  // First trace sample is the state after one step from the soaked
  // start; it cannot have cooled below ambient minus a degree in 1 s.
  EXPECT_GT(outcome.result.trace.t_battery_k[0], 307.0);
  EXPECT_GE(outcome.result.max_t_battery_k, 308.15);
}

}  // namespace
}  // namespace otem::sim
