// Tests for the optimisation solvers: projected Adam, projected L-BFGS,
// augmented Lagrangian, the ADMM QP solver and the finite-difference
// checker they are validated with.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/rng.h"
#include "optim/adam.h"
#include "optim/augmented_lagrangian.h"
#include "optim/finite_diff.h"
#include "optim/lbfgs.h"
#include "optim/qp.h"
#include "optim/vector_ops.h"

namespace otem::optim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// f(x) = sum (x_i - t_i)^2 — convex quadratic with known minimiser.
class Quadratic final : public Objective {
 public:
  explicit Quadratic(Vector target) : target_(std::move(target)) {}
  size_t dim() const override { return target_.size(); }
  double value_and_gradient(const Vector& x, Vector& grad) override {
    grad.assign(dim(), 0.0);
    double f = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - target_[i];
      f += d * d;
      grad[i] = 2.0 * d;
    }
    return f;
  }

 private:
  Vector target_;
};

/// 2-D Rosenbrock, the classic curved-valley stress test.
class Rosenbrock final : public Objective {
 public:
  size_t dim() const override { return 2; }
  double value_and_gradient(const Vector& x, Vector& grad) override {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    grad.assign(2, 0.0);
    grad[0] = -2.0 * a - 400.0 * x[0] * b;
    grad[1] = 200.0 * b;
    return a * a + 100.0 * b * b;
  }
};

Box unit_box(size_t n, double lo = -10.0, double hi = 10.0) {
  return {Vector(n, lo), Vector(n, hi)};
}

TEST(Adam, FindsUnconstrainedQuadraticMinimum) {
  Quadratic q({1.0, -2.0, 3.0});
  AdamOptions opt;
  opt.max_iterations = 2000;
  opt.learning_rate = 0.1;
  const SolveResult r = minimize_adam(q, unit_box(3), Vector(3, 0.0), opt);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], -2.0, 1e-3);
  EXPECT_NEAR(r.x[2], 3.0, 1e-3);
}

TEST(Adam, RespectsActiveBoxBound) {
  Quadratic q({5.0});  // minimiser outside the box
  const Box box{{0.0}, {1.0}};
  AdamOptions opt;
  opt.max_iterations = 1000;
  opt.learning_rate = 0.1;
  const SolveResult r = minimize_adam(q, box, {0.5}, opt);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
  EXPECT_TRUE(r.converged);  // projected gradient vanishes at the bound
}

TEST(Adam, ReturnsBestIterateNotLast) {
  Quadratic q({0.0});
  AdamOptions opt;
  opt.max_iterations = 3;
  opt.learning_rate = 5.0;  // wildly overshooting
  const SolveResult r = minimize_adam(q, unit_box(1), {1.0}, opt);
  EXPECT_LE(r.value, 1.0);  // never worse than the start
}

TEST(Lbfgs, SolvesRosenbrock) {
  Rosenbrock f;
  LbfgsOptions opt;
  // Backtracking-only (no Wolfe) line search tracks the curved valley
  // with short steps; give it room.
  opt.max_iterations = 2000;
  const SolveResult r = minimize_lbfgs(f, unit_box(2), {-1.2, 1.0}, opt);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], 1.0, 1e-4);
}

TEST(Lbfgs, QuadraticConvergesInFewIterations) {
  Quadratic q({2.0, -1.0, 0.5, 4.0});
  LbfgsOptions opt;
  opt.max_iterations = 50;
  const SolveResult r = minimize_lbfgs(q, unit_box(4), Vector(4, 0.0), opt);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 20u);
  EXPECT_NEAR(r.value, 0.0, 1e-10);
}

TEST(Lbfgs, BoxBoundHoldsOnRosenbrock) {
  Rosenbrock f;
  const Box box{{-10.0, -10.0}, {10.0, 0.5}};  // y capped below optimum
  const SolveResult r = minimize_lbfgs(f, box, {-1.2, 0.0});
  EXPECT_LE(r.x[1], 0.5 + 1e-12);
  // Constrained optimum has y at the bound.
  EXPECT_NEAR(r.x[1], 0.5, 1e-4);
}

// Constrained problem: min (x-2)^2 + (y-2)^2 s.t. x + y <= 2.
// Analytic solution: x = y = 1.
class DiskCorner final : public ConstrainedObjective {
 public:
  size_t dim() const override { return 2; }
  Box bounds() const override { return unit_box(2); }
  size_t num_constraints() const override { return 1; }
  double evaluate(const Vector& x, Vector& c) override {
    c[0] = x[0] + x[1] - 2.0;
    const double dx = x[0] - 2.0, dy = x[1] - 2.0;
    return dx * dx + dy * dy;
  }
  void gradient(const Vector& x, const Vector& w, Vector& g) override {
    g[0] = 2.0 * (x[0] - 2.0) + w[0];
    g[1] = 2.0 * (x[1] - 2.0) + w[0];
  }
};

TEST(AugmentedLagrangian, LinearInequalityActive) {
  DiskCorner p;
  const SolveResult r =
      minimize_augmented_lagrangian(p, {0.0, 0.0});
  EXPECT_NEAR(r.x[0], 1.0, 5e-3);
  EXPECT_NEAR(r.x[1], 1.0, 5e-3);
  EXPECT_LE(r.constraint_violation, 1e-3);
  EXPECT_TRUE(r.converged);
}

// Inactive constraint: min (x+1)^2 s.t. x <= 3 — unconstrained optimum
// is feasible and must be found exactly.
class Inactive final : public ConstrainedObjective {
 public:
  size_t dim() const override { return 1; }
  Box bounds() const override { return unit_box(1); }
  size_t num_constraints() const override { return 1; }
  double evaluate(const Vector& x, Vector& c) override {
    c[0] = x[0] - 3.0;
    return (x[0] + 1.0) * (x[0] + 1.0);
  }
  void gradient(const Vector& x, const Vector& w, Vector& g) override {
    g[0] = 2.0 * (x[0] + 1.0) + w[0];
  }
};

TEST(AugmentedLagrangian, InactiveConstraintDoesNotBias) {
  Inactive p;
  const SolveResult r = minimize_augmented_lagrangian(p, {2.0});
  EXPECT_NEAR(r.x[0], -1.0, 1e-3);
}

// Nonlinear constraint: min x + y s.t. x^2 + y^2 <= 2 (disk).
// Optimum at (-1, -1), value -2.
class DiskMin final : public ConstrainedObjective {
 public:
  size_t dim() const override { return 2; }
  Box bounds() const override { return unit_box(2); }
  size_t num_constraints() const override { return 1; }
  double evaluate(const Vector& x, Vector& c) override {
    c[0] = x[0] * x[0] + x[1] * x[1] - 2.0;
    return x[0] + x[1];
  }
  void gradient(const Vector& x, const Vector& w, Vector& g) override {
    g[0] = 1.0 + w[0] * 2.0 * x[0];
    g[1] = 1.0 + w[0] * 2.0 * x[1];
  }
};

TEST(AugmentedLagrangian, NonlinearDiskConstraint) {
  DiskMin p;
  AugmentedLagrangianOptions opt;
  opt.adam.max_iterations = 500;
  const SolveResult r = minimize_augmented_lagrangian(p, {0.0, 0.0}, opt);
  EXPECT_NEAR(r.x[0], -1.0, 1e-2);
  EXPECT_NEAR(r.x[1], -1.0, 1e-2);
  EXPECT_LE(r.constraint_violation, 1e-2);
}

TEST(AugmentedLagrangian, WarmStartMultiplierSizeChecked) {
  DiskCorner p;
  AugmentedLagrangianOptions opt;
  opt.initial_multipliers = {1.0, 2.0};  // wrong size (1 constraint)
  EXPECT_THROW(minimize_augmented_lagrangian(p, {0.0, 0.0}, opt),
               otem::SimError);
}

// --- QP (ADMM) ----------------------------------------------------------

TEST(Qp, EqualityLikeTightBounds) {
  // min 1/2 (x0^2 + x1^2) s.t. x0 + x1 = 1  ->  x = (0.5, 0.5).
  QpProblem p;
  p.p = Matrix::identity(2);
  p.q = {0.0, 0.0};
  p.a = Matrix{{1.0, 1.0}};
  p.l = {1.0};
  p.u = {1.0};
  const QpResult r = solve_qp(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.5, 1e-4);
  EXPECT_NEAR(r.x[1], 0.5, 1e-4);
}

TEST(Qp, BoxConstrainedLeastSquares) {
  // min 1/2||x - t||^2 with 0 <= x <= 1, t = (2, -1, 0.3).
  QpProblem p;
  p.p = Matrix::identity(3);
  p.q = {-2.0, 1.0, -0.3};
  p.a = Matrix::identity(3);
  p.l = {0.0, 0.0, 0.0};
  p.u = {1.0, 1.0, 1.0};
  const QpResult r = solve_qp(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], 0.0, 1e-4);
  EXPECT_NEAR(r.x[2], 0.3, 1e-4);
}

TEST(Qp, InactiveConstraintsGiveUnconstrainedSolution) {
  QpProblem p;
  p.p = Matrix{{2.0, 0.5}, {0.5, 1.0}};
  p.q = {-1.0, -1.0};
  p.a = Matrix::identity(2);
  p.l = {-kInf, -kInf};
  p.u = {kInf, kInf};
  const QpResult r = solve_qp(p);
  EXPECT_TRUE(r.converged);
  // Solve P x = -q directly: [2 .5; .5 1] x = [1; 1].
  EXPECT_NEAR(2.0 * r.x[0] + 0.5 * r.x[1], 1.0, 1e-4);
  EXPECT_NEAR(0.5 * r.x[0] + 1.0 * r.x[1], 1.0, 1e-4);
}

TEST(Qp, AdaptiveRhoHandlesStiffDiagonal) {
  // Regression for the LTV-MPC shape: P ~ 1e5 on the diagonal against
  // unit-scale constraint rows. A fixed rho = 0.1 stalls for ~1e6
  // iterations; the adaptive schedule must converge quickly.
  const size_t n = 30;
  QpProblem p;
  p.p = Matrix(n, n);
  p.q.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    p.p(i, i) = 1.5e5;
    p.q[i] = (i % 2) ? 8.4e4 : -1.5e5;
  }
  const size_t rows = n + 10;
  p.a = Matrix(rows, n);
  p.l.assign(rows, 0.0);
  p.u.assign(rows, 0.0);
  for (size_t i = 0; i < n; ++i) {
    p.a(i, i) = 1.0;
    p.l[i] = (i % 2) ? 0.0 : -1.0;
    p.u[i] = 1.0;
  }
  for (size_t r = n; r < rows; ++r) {
    for (size_t c2 = 0; c2 < n; ++c2)
      p.a(r, c2) = ((r + c2) % 3 == 0) ? 0.5 : 0.05;
    p.l[r] = -50.0;
    p.u[r] = 20.0;
  }
  QpOptions o;
  o.eps_abs = 1e-4;
  o.eps_rel = 1e-4;
  const QpResult r = solve_qp(p, o);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 2000u);
  // Box-respecting KKT point: odd vars pinned at 0 (q > 0), even vars
  // at 1 (unconstrained optimum q/P = 1 exactly at the bound).
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 0.0, 1e-3);
}

TEST(Qp, AdaptiveRhoCanBeDisabled) {
  QpProblem p;
  p.p = Matrix::identity(2);
  p.q = {-1.0, -1.0};
  p.a = Matrix::identity(2);
  p.l = {0.0, 0.0};
  p.u = {0.5, 0.5};
  QpOptions o;
  o.rho_update_interval = 0;
  const QpResult r = solve_qp(p, o);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.5, 1e-4);
}

TEST(Qp, WarmStartFromSolutionConvergesAlmostInstantly) {
  QpProblem p;
  p.p = Matrix{{2.0, 0.5}, {0.5, 1.0}};
  p.q = {-1.0, -1.0};
  p.a = Matrix::identity(2);
  p.l = {0.0, 0.0};
  p.u = {0.6, 2.0};
  QpSolver solver;
  const QpResult cold = solver.solve(p);
  ASSERT_TRUE(cold.converged);
  EXPECT_FALSE(cold.warm_started);
  EXPECT_GE(cold.kkt_refactorizations, 1u);

  QpWarmStart warm;
  warm.x = cold.x;
  warm.y = cold.y;
  warm.rho = cold.rho_final;
  QpSolver fresh;  // warm start must not depend on cached solver state
  const QpResult r = fresh.solve(p, QpOptions{}, warm);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.warm_started);
  EXPECT_LT(r.iterations, cold.iterations);
  EXPECT_NEAR(r.x[0], cold.x[0], 1e-4);
  EXPECT_NEAR(r.x[1], cold.x[1], 1e-4);
}

TEST(Qp, MismatchedWarmStartFallsBackToCold) {
  QpProblem p;
  p.p = Matrix::identity(2);
  p.q = {-1.0, -1.0};
  p.a = Matrix::identity(2);
  p.l = {0.0, 0.0};
  p.u = {0.5, 0.5};
  QpWarmStart warm;
  warm.x = {0.1};  // wrong size: silently cold-starts
  QpSolver solver;
  const QpResult r = solver.solve(p, QpOptions{}, warm);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.warm_started);
  EXPECT_NEAR(r.x[0], 0.5, 1e-4);
}

TEST(Qp, FactorizationReusedAcrossIdenticalSolves) {
  QpProblem p;
  p.p = Matrix{{2.0, 0.5}, {0.5, 1.0}};
  p.q = {-1.0, 2.0};
  p.a = Matrix{{1.0, 1.0}, {1.0, -1.0}};
  p.l = {-1.0, -2.0};
  p.u = {1.0, 2.0};
  QpOptions o;
  o.rho_update_interval = 0;  // keep rho fixed so the factor can persist
  QpSolver solver;
  const QpResult first = solver.solve(p, o);
  const QpResult second = solver.solve(p, o);
  EXPECT_GE(first.kkt_refactorizations, 1u);
  EXPECT_EQ(second.kkt_refactorizations, 0u);  // full reuse
  // Identical inputs through the cached factor: bit-identical outputs.
  EXPECT_EQ(first.iterations, second.iterations);
  for (size_t i = 0; i < 2; ++i) EXPECT_EQ(first.x[i], second.x[i]);
}

TEST(Qp, InPlaceKktUpdateMatchesFreshRebuild) {
  // Same A, changed P: the persistent solver updates K in place and
  // refactorises; a fresh solver rebuilds from scratch. Both must see
  // the same problem, so the answers agree to solver tolerance.
  QpProblem p;
  p.p = Matrix{{2.0, 0.0}, {0.0, 1.0}};
  p.q = {-1.0, -1.0};
  p.a = Matrix{{1.0, 1.0}, {1.0, -1.0}};
  p.l = {-1.0, -2.0};
  p.u = {1.0, 2.0};
  QpSolver persistent;
  (void)persistent.solve(p);

  p.p(0, 0) = 3.0;  // above any reuse tolerance
  p.p(1, 1) = 0.5;
  const QpResult incremental = persistent.solve(p);
  EXPECT_EQ(incremental.kkt_refactorizations, 1u);
  QpSolver scratch;
  const QpResult rebuilt = scratch.solve(p);
  ASSERT_TRUE(incremental.converged);
  ASSERT_TRUE(rebuilt.converged);
  EXPECT_NEAR(incremental.x[0], rebuilt.x[0], 1e-4);
  EXPECT_NEAR(incremental.x[1], rebuilt.x[1], 1e-4);

  // Changing A invalidates the Gram cache too — still correct.
  p.a(0, 1) = 0.5;
  const QpResult new_a = persistent.solve(p);
  QpSolver scratch2;
  const QpResult new_a_fresh = scratch2.solve(p);
  ASSERT_TRUE(new_a.converged);
  EXPECT_NEAR(new_a.x[0], new_a_fresh.x[0], 1e-4);
  EXPECT_NEAR(new_a.x[1], new_a_fresh.x[1], 1e-4);
}

TEST(Qp, ToleratedPDriftReusesFactorWithoutChangingAnswer) {
  QpProblem p;
  p.p = Matrix{{2.0, 0.0}, {0.0, 1.0}};
  p.q = {-1.0, -1.0};
  p.a = Matrix::identity(2);
  p.l = {-1.0, -1.0};
  p.u = {1.0, 1.0};
  QpOptions o;
  o.rho_update_interval = 0;
  o.kkt_refactor_tol = 1e-6;
  QpSolver solver;
  (void)solver.solve(p, o);
  p.p(0, 0) += 1e-8;  // drift below tolerance: factor reused
  const QpResult reused = solver.solve(p, o);
  EXPECT_EQ(reused.kkt_refactorizations, 0u);
  ASSERT_TRUE(reused.converged);
  // Termination tested the TRUE P, so the answer matches a fresh solve
  // to solver tolerance.
  QpSolver scratch;
  const QpResult fresh = scratch.solve(p, o);
  EXPECT_NEAR(reused.x[0], fresh.x[0], 1e-4);
  EXPECT_NEAR(reused.x[1], fresh.x[1], 1e-4);
}

TEST(Qp, RejectsBadShapes) {
  QpProblem p;
  p.p = Matrix::identity(2);
  p.q = {0.0, 0.0};
  p.a = Matrix{{1.0, 1.0}};
  p.l = {0.0};
  p.u = {-1.0};  // l > u
  EXPECT_THROW(solve_qp(p), otem::SimError);
}

// --- finite differences -------------------------------------------------

TEST(FiniteDiff, MatchesAnalyticGradientOfSmoothFunction) {
  auto f = [](const Vector& x) {
    return std::sin(x[0]) * std::exp(x[1]) + x[0] * x[0];
  };
  const Vector x{0.7, -0.3};
  const Vector g = finite_difference_gradient(f, x);
  EXPECT_NEAR(g[0], std::cos(0.7) * std::exp(-0.3) + 1.4, 1e-6);
  EXPECT_NEAR(g[1], std::sin(0.7) * std::exp(-0.3), 1e-6);
}

TEST(FiniteDiff, RelErrorDetectsWrongGradient) {
  auto f = [](const Vector& x) { return x[0] * x[0]; };
  const double good = gradient_max_rel_error(f, {3.0}, {6.0});
  const double bad = gradient_max_rel_error(f, {3.0}, {5.0});
  EXPECT_LT(good, 1e-6);
  EXPECT_GT(bad, 0.1);
}

}  // namespace
}  // namespace otem::optim
