// Tests for the ultracapacitor model (Eqs. 6-9).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/error.h"
#include "ultracap/ultracap_model.h"

namespace otem::ultracap {
namespace {

BankModel default_bank() { return BankModel(BankParams{}); }

TEST(Ultracap, EnergyCapacityIsHalfCV2) {
  BankParams p;
  p.capacitance_f = 25000.0;
  p.rated_voltage = 16.0;
  EXPECT_DOUBLE_EQ(p.energy_capacity_j(), 0.5 * 25000.0 * 256.0);
}

TEST(Ultracap, VoltageFollowsSqrtLaw) {
  const BankModel bank = default_bank();
  const double vr = bank.params().rated_voltage;
  EXPECT_DOUBLE_EQ(bank.voltage(100.0), vr);
  EXPECT_DOUBLE_EQ(bank.voltage(25.0), vr * 0.5);
  EXPECT_DOUBLE_EQ(bank.voltage(0.0), 0.0);
}

TEST(Ultracap, VoltageSoeRoundtrip) {
  const BankModel bank = default_bank();
  for (double soe : {10.0, 36.0, 64.0, 100.0}) {
    EXPECT_NEAR(bank.soe_for_voltage(bank.voltage(soe)), soe, 1e-9);
  }
}

TEST(Ultracap, StoredEnergyLinearInSoe) {
  const BankModel bank = default_bank();
  EXPECT_NEAR(bank.stored_energy_j(50.0),
              0.5 * bank.energy_capacity_j(), 1e-9);
}

TEST(Ultracap, SoeRateMatchesPowerOverCapacity) {
  const BankModel bank = default_bank();
  const double e = bank.energy_capacity_j();
  // Discharging at E/100 W drains 1 %/s.
  EXPECT_NEAR(bank.soe_rate(e / 100.0), -1.0, 1e-12);
  EXPECT_NEAR(bank.soe_rate(-e / 100.0), 1.0, 1e-12);
}

TEST(Ultracap, StepSoeClampsAtBounds) {
  const BankModel bank = default_bank();
  EXPECT_DOUBLE_EQ(bank.step_soe(0.5, 1e9, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(bank.step_soe(99.9, -1e9, 10.0), 100.0);
}

TEST(Ultracap, EnergyConservationOverManySteps) {
  const BankModel bank = default_bank();
  double soe = 100.0;
  const double p = 5000.0;
  const double dt = 1.0;
  double drawn = 0.0;
  for (int k = 0; k < 60; ++k) {
    soe = bank.step_soe(soe, p, dt);
    drawn += p * dt;
  }
  const double delta_stored =
      bank.stored_energy_j(100.0) - bank.stored_energy_j(soe);
  EXPECT_NEAR(delta_stored, drawn, 1e-6);
}

TEST(Ultracap, CurrentForPowerUsesTerminalVoltage) {
  const BankModel bank = default_bank();
  const double p = 8000.0;
  const double soe = 49.0;
  EXPECT_NEAR(bank.current_for_power(soe, p), p / bank.voltage(soe), 1e-12);
}

TEST(Ultracap, DepletedBankCannotDeliverPower) {
  const BankModel bank = default_bank();
  EXPECT_THROW(bank.current_for_power(0.0, 1000.0), SimError);
  EXPECT_DOUBLE_EQ(bank.current_for_power(0.0, 0.0), 0.0);
}

TEST(Ultracap, DischargeLimitRespectsFloorAndRating) {
  const BankModel bank = default_bank();
  // At the SoE floor, nothing may be drawn.
  EXPECT_DOUBLE_EQ(
      bank.max_discharge_power(bank.params().min_soe_percent, 1.0), 0.0);
  // With a full bank over a short step, the power rating binds.
  EXPECT_DOUBLE_EQ(bank.max_discharge_power(100.0, 0.001),
                   bank.params().max_power_w);
  // Over a long step the energy headroom binds.
  const double headroom_j = (100.0 - bank.params().min_soe_percent) / 100.0 *
                            bank.energy_capacity_j();
  EXPECT_NEAR(bank.max_discharge_power(100.0, 1e6), headroom_j / 1e6, 1e-9);
}

TEST(Ultracap, ChargeLimitRespectsCeiling) {
  const BankModel bank = default_bank();
  EXPECT_DOUBLE_EQ(bank.max_charge_power(100.0, 1.0), 0.0);
  EXPECT_GT(bank.max_charge_power(50.0, 1.0), 0.0);
}

TEST(Ultracap, TableOneSizesScaleEnergy) {
  // The paper's Table I sweep: energy scales linearly in capacitance.
  BankParams p;
  p.capacitance_f = 5000.0;
  const double e5k = p.energy_capacity_j();
  p.capacitance_f = 20000.0;
  EXPECT_NEAR(p.energy_capacity_j(), 4.0 * e5k, 1e-9);
}

// Grid sweep: the electrical identities must hold for every bank size
// and state the Table I experiments touch.
class BankGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BankGrid, VoltageEnergyIdentity) {
  const auto [capacitance, soe] = GetParam();
  BankParams p;
  p.capacitance_f = capacitance;
  const BankModel bank(p);
  // Stored energy == 1/2 C V^2 at the SoE-implied voltage.
  const double v = bank.voltage(soe);
  EXPECT_NEAR(bank.stored_energy_j(soe), 0.5 * capacitance * v * v,
              1e-6 * bank.energy_capacity_j() + 1e-9);
}

TEST_P(BankGrid, PowerCurrentVoltageConsistency) {
  const auto [capacitance, soe] = GetParam();
  if (soe < 1.0) return;  // no meaningful terminal at ~0 V
  BankParams p;
  p.capacitance_f = capacitance;
  const BankModel bank(p);
  const double power = 4000.0;
  EXPECT_NEAR(bank.current_for_power(soe, power) * bank.voltage(soe),
              power, 1e-9);
}

TEST_P(BankGrid, StepEnergyBookkeeping) {
  const auto [capacitance, soe] = GetParam();
  BankParams p;
  p.capacitance_f = capacitance;
  const BankModel bank(p);
  const double power = 2000.0;
  const double next = bank.step_soe(soe, power, 1.0);
  if (next > 0.0 && next < 100.0) {
    EXPECT_NEAR(bank.stored_energy_j(soe) - bank.stored_energy_j(next),
                power, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndStates, BankGrid,
    ::testing::Combine(::testing::Values(2000.0, 5000.0, 10000.0, 25000.0,
                                         50000.0),
                       ::testing::Values(0.0, 10.0, 35.0, 60.0, 85.0,
                                         100.0)));

TEST(Ultracap, ConfigOverrides) {
  Config cfg;
  cfg.set_pair("ultracap.capacitance_f=10000");
  cfg.set_pair("ultracap.rated_voltage=20");
  const BankParams p = BankParams::from_config(cfg);
  EXPECT_DOUBLE_EQ(p.capacitance_f, 10000.0);
  EXPECT_DOUBLE_EQ(p.rated_voltage, 20.0);
}

TEST(Ultracap, InvalidConfigThrows) {
  Config cfg;
  cfg.set_pair("ultracap.capacitance_f=-5");
  EXPECT_THROW(BankParams::from_config(cfg), SimError);
}

}  // namespace
}  // namespace otem::ultracap
