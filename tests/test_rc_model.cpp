// Tests for the second-order (Thevenin) transient battery model.
#include <gtest/gtest.h>

#include <cmath>

#include "battery/rc_model.h"
#include "common/error.h"

namespace otem::battery {
namespace {

TransientPackModel default_model() {
  return TransientPackModel(PackParams{}, RcParams{});
}

constexpr double kRoom = 298.15;

TEST(RcModel, PackLevelScaling) {
  PackParams p;
  p.series = 10;
  p.parallel = 5;
  RcParams rc;
  const TransientPackModel m(p, rc);
  EXPECT_DOUBLE_EQ(m.r1_pack(), rc.r1_cell * 2.0);
  EXPECT_DOUBLE_EQ(m.c1_pack(), rc.c1_cell / 2.0);
  // The pack time constant equals the cell time constant.
  EXPECT_NEAR(m.r1_pack() * m.c1_pack(), rc.tau_s(), 1e-12);
}

TEST(RcModel, V1ConvergesToSteadyState) {
  const TransientPackModel m = default_model();
  double v1 = 0.0;
  const double i = 60.0;
  // 20 time constants: the exponential tail is ~2e-9 of the target.
  for (int k = 0; k < 600; ++k) v1 = m.step_v1(v1, i, 1.0);
  EXPECT_NEAR(v1, m.v1_steady(i), 1e-6);
}

TEST(RcModel, ExactExponentialUpdate) {
  const TransientPackModel m = default_model();
  // One 10 s step equals ten 1 s steps exactly (exponential update).
  const double i = 45.0;
  double v_small = 0.2;
  for (int k = 0; k < 10; ++k) v_small = m.step_v1(v_small, i, 1.0);
  const double v_big = m.step_v1(0.2, i, 10.0);
  EXPECT_NEAR(v_small, v_big, 1e-12);
}

TEST(RcModel, RelaxationDecaysToZero) {
  const TransientPackModel m = default_model();
  double v1 = 2.0;
  v1 = m.step_v1(v1, 0.0, m.rc().tau_s());  // one time constant
  EXPECT_NEAR(v1, 2.0 * std::exp(-1.0), 1e-9);
  v1 = m.step_v1(v1, 0.0, 100.0 * m.rc().tau_s());
  EXPECT_NEAR(v1, 0.0, 1e-9);
}

TEST(RcModel, VoltageSagsDeeperThanQuasiStatic) {
  // Under a sustained load the transient model's terminal voltage ends
  // lower than the quasi-static prediction by exactly v1.
  const TransientPackModel m = default_model();
  const double i = 80.0;
  double v1 = 0.0;
  for (int k = 0; k < 120; ++k) v1 = m.step_v1(v1, i, 1.0);
  const double v_rc = m.terminal_voltage(70.0, kRoom, i, v1);
  const double v_qs = m.quasi_static().terminal_voltage(70.0, kRoom, i);
  EXPECT_NEAR(v_qs - v_rc, v1, 1e-9);
  EXPECT_GT(v1, 1.0);  // the sag is material at this current
}

TEST(RcModel, PowerSolveRoundtrips) {
  const TransientPackModel m = default_model();
  const double v1 = 3.0;
  for (double p : {5000.0, 20000.0, -15000.0}) {
    const PowerSolve s = m.current_for_power(70.0, kRoom, v1, p);
    ASSERT_TRUE(s.feasible);
    const double v = m.terminal_voltage(70.0, kRoom, s.current_a, v1);
    EXPECT_NEAR(v * s.current_a, p, std::abs(p) * 1e-9 + 1e-6);
  }
}

TEST(RcModel, PolarisationReducesDeliverablePower) {
  const TransientPackModel m = default_model();
  // With a built-up overpotential the same request needs more current.
  const PowerSolve fresh = m.current_for_power(70.0, kRoom, 0.0, 30000.0);
  const PowerSolve tired = m.current_for_power(70.0, kRoom, 8.0, 30000.0);
  EXPECT_GT(tired.current_a, fresh.current_a);
}

TEST(RcModel, HeatIncludesPolarisationLoss) {
  const TransientPackModel m = default_model();
  const double i = 60.0;
  const double v1 = m.v1_steady(i);
  const double q_rc = m.heat_generation(70.0, kRoom, i, v1);
  const double q_qs = m.quasi_static().heat_generation(70.0, kRoom, i);
  // At steady state the extra heat is exactly V1^2/R1 = I^2 R1.
  EXPECT_NEAR(q_rc - q_qs, i * i * m.r1_pack(), 1e-6);
}

TEST(RcModel, ZeroStateMatchesQuasiStatic) {
  const TransientPackModel m = default_model();
  EXPECT_NEAR(m.terminal_voltage(60.0, kRoom, 50.0, 0.0),
              m.quasi_static().terminal_voltage(60.0, kRoom, 50.0), 1e-12);
  const PowerSolve a = m.current_for_power(60.0, kRoom, 0.0, 20000.0);
  const PowerSolve b =
      m.quasi_static().current_for_power(60.0, kRoom, 20000.0);
  EXPECT_NEAR(a.current_a, b.current_a, 1e-9);
}

TEST(RcModel, ConfigOverrides) {
  Config cfg;
  cfg.set_pair("battery.rc.r1=0.04");
  cfg.set_pair("battery.rc.c1=900");
  const RcParams p = RcParams::from_config(cfg);
  EXPECT_DOUBLE_EQ(p.r1_cell, 0.04);
  EXPECT_DOUBLE_EQ(p.c1_cell, 900.0);
  Config bad;
  bad.set_pair("battery.rc.r1=0");
  EXPECT_THROW(RcParams::from_config(bad), SimError);
}

}  // namespace
}  // namespace otem::battery
