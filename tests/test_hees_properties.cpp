// Property-based sweeps over the HEES architectures: power-balance and
// bookkeeping identities that must hold for every command, plus
// randomised scenario fuzzing.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "hees/dual_arch.h"
#include "hees/hybrid_arch.h"
#include "hees/parallel_arch.h"

namespace otem::hees {
namespace {

battery::PackModel default_battery() {
  return battery::PackModel(battery::PackParams{});
}
ultracap::BankModel default_cap() {
  return ultracap::BankModel(ultracap::BankParams{});
}
HybridArchitecture default_hybrid() {
  return HybridArchitecture(
      default_battery(), default_cap(),
      HybridParams::for_storages(default_battery(), default_cap()));
}

constexpr double kRoom = 298.15;

// ---------------------------------------------------------------------------
// Parallel architecture: randomised energy-balance fuzzing.

TEST(ParallelProperty, EnergyBalanceRandomised) {
  const ParallelArchitecture arch(default_battery(), default_cap());
  Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    const double soc = rng.uniform(30.0, 99.0);
    const double soe = rng.uniform(20.0, 99.0);
    const double tb = rng.uniform(278.0, 325.0);
    const double p = rng.uniform(-30000.0, 60000.0);
    const ArchStep s = arch.step(soc, soe, tb, p, 1.0);
    if (!s.feasible) continue;  // clamped steps do not meet the load
    // Chemistry energy out of both storages = load + all resistive loss.
    EXPECT_NEAR(s.e_bat_j + s.e_cap_j, p * 1.0 + s.e_loss_j,
                std::max(std::abs(p), 1000.0) * 1e-6)
        << "soc=" << soc << " soe=" << soe << " p=" << p;
    EXPECT_GE(s.e_loss_j, 0.0);
  }
}

TEST(ParallelProperty, SocSoeStayInRange) {
  const ParallelArchitecture arch(default_battery(), default_cap());
  Rng rng(32);
  double soc = 80.0, soe = 60.0;
  for (int k = 0; k < 2000; ++k) {
    const double p = rng.uniform(-40000.0, 50000.0);
    const ArchStep s = arch.step(soc, soe, 300.0, p, 1.0);
    soc = s.soc_next;
    soe = s.soe_next;
    ASSERT_GE(soc, 0.0);
    ASSERT_LE(soc, 100.0);
    ASSERT_GE(soe, 0.0);
    ASSERT_LE(soe, 100.0);
  }
}

TEST(ParallelProperty, EquilibriumSoeMonotoneInSoc) {
  const ParallelArchitecture arch(default_battery(), default_cap());
  double prev = arch.equilibrium_soe(20.0);
  for (double soc = 30.0; soc <= 100.0; soc += 10.0) {
    const double eq = arch.equilibrium_soe(soc);
    EXPECT_GE(eq, prev);
    prev = eq;
  }
}

TEST(ParallelProperty, HigherLoadDrawsMoreBatteryCurrent) {
  const ParallelArchitecture arch(default_battery(), default_cap());
  const double soe = arch.equilibrium_soe(80.0);
  double prev = -1e9;
  for (double p = 0.0; p <= 50000.0; p += 10000.0) {
    const ArchStep s = arch.step(80.0, soe, kRoom, p, 1.0);
    EXPECT_GT(s.i_bat_a, prev);
    prev = s.i_bat_a;
  }
}

// ---------------------------------------------------------------------------
// Dual architecture: per-mode invariants.

class DualModeSweep : public ::testing::TestWithParam<DualMode> {};

TEST_P(DualModeSweep, EnergyBookkeepingNonNegativeLoss) {
  const DualArchitecture arch(default_battery(), default_cap());
  Rng rng(33);
  for (int trial = 0; trial < 200; ++trial) {
    const double soc = rng.uniform(30.0, 99.0);
    const double soe = rng.uniform(25.0, 99.0);
    const double p = rng.uniform(-20000.0, 40000.0);
    const ArchStep s = arch.step(soc, soe, kRoom, p, GetParam(), 1.0);
    EXPECT_GE(s.e_loss_j, -1e-9);
    EXPECT_GE(s.soe_next, 0.0);
    EXPECT_LE(s.soe_next, 100.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, DualModeSweep,
                         ::testing::Values(DualMode::kBatteryOnly,
                                           DualMode::kUltracapOnly,
                                           DualMode::kParallel,
                                           DualMode::kRecharge));

TEST(DualProperty, RechargeConservesEnergyFlow) {
  DualArchitecture arch(default_battery(), default_cap());
  arch.set_recharge_power_w(10000.0);
  const ArchStep s =
      arch.step(80.0, 50.0, kRoom, 5000.0, DualMode::kRecharge, 1.0);
  // Battery covers the load plus the charge; bank gains the charge.
  EXPECT_NEAR(s.e_cap_j, -10000.0, 1e-6);
  const double soe_gain_j =
      (s.soe_next - 50.0) / 100.0 * default_cap().energy_capacity_j();
  EXPECT_NEAR(soe_gain_j, 10000.0, 1e-6);
  EXPECT_GT(s.e_bat_j, 15000.0);  // load + charge + internal loss
}

TEST(DualProperty, RechargeStopsAtFullBank) {
  DualArchitecture arch(default_battery(), default_cap());
  const ArchStep s =
      arch.step(80.0, 100.0, kRoom, 5000.0, DualMode::kRecharge, 1.0);
  EXPECT_DOUBLE_EQ(s.soe_next, 100.0);
  EXPECT_DOUBLE_EQ(s.e_cap_j, 0.0);
}

TEST(DualProperty, VentingServesLoadThroughBankResistance) {
  const DualArchitecture arch(default_battery(), default_cap());
  const double p = 20000.0;
  const ArchStep s =
      arch.step(80.0, 90.0, kRoom, p, DualMode::kUltracapOnly, 1.0);
  ASSERT_TRUE(s.feasible);
  // Storage supplies the load plus the R_c loss.
  EXPECT_NEAR(s.e_cap_j, p + s.e_loss_j, p * 1e-6);
  EXPECT_GT(s.e_loss_j, 0.0);
}

// ---------------------------------------------------------------------------
// Hybrid architecture: command-to-outcome identities.

TEST(HybridProperty, BusBalanceRandomised) {
  const HybridArchitecture arch = default_hybrid();
  Rng rng(34);
  for (int trial = 0; trial < 300; ++trial) {
    const double soc = rng.uniform(30.0, 99.0);
    const double soe = rng.uniform(25.0, 95.0);
    const double p_bat = rng.uniform(-20000.0, 50000.0);
    const double p_cap = rng.uniform(-30000.0, 30000.0);
    const ArchStep s = arch.step(soc, soe, kRoom, p_bat, p_cap, 1.0);
    if (!s.feasible) continue;
    // Storage-side energy = bus-side command + losses.
    EXPECT_NEAR(s.e_bat_j + s.e_cap_j, (p_bat + p_cap) * 1.0 + s.e_loss_j,
                std::max(std::abs(p_bat + p_cap), 1000.0) * 2e-5)
        << "p_bat=" << p_bat << " p_cap=" << p_cap << " soe=" << soe;
  }
}

TEST(HybridProperty, StateBoundsUnderFuzzing) {
  const HybridArchitecture arch = default_hybrid();
  Rng rng(35);
  double soc = 90.0, soe = 70.0;
  for (int k = 0; k < 2000; ++k) {
    const ArchStep s =
        arch.step(soc, soe, 305.0, rng.uniform(-60000.0, 80000.0),
                  rng.uniform(-90000.0, 90000.0), 1.0);
    soc = s.soc_next;
    soe = s.soe_next;
    ASSERT_GE(soe, 0.0);
    ASSERT_LE(soe, 100.0);
    ASSERT_GE(soc, 0.0);
    ASSERT_LE(soc, 100.0);
  }
}

TEST(HybridProperty, ZeroCommandIsNoOp) {
  const HybridArchitecture arch = default_hybrid();
  const ArchStep s = arch.step(75.0, 60.0, kRoom, 0.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.soc_next, 75.0);
  EXPECT_DOUBLE_EQ(s.soe_next, 60.0);
  EXPECT_NEAR(s.e_loss_j, 0.0, 1e-9);
  EXPECT_NEAR(s.q_bat_w, 0.0, 1e-9);
}

TEST(HybridProperty, RoundTripThroughBankLosesEnergy) {
  // Charge the bank, then discharge the same bus-side amount: the bank
  // must end LOWER than it started (two conversions + nothing else).
  const HybridArchitecture arch = default_hybrid();
  const double soe0 = 50.0;
  ArchStep in = arch.step(80.0, soe0, kRoom, 10000.0, -10000.0, 1.0);
  ArchStep out = arch.step(in.soc_next, in.soe_next, kRoom, -0.0,
                           10000.0, 1.0);
  const double recovered_j = 10000.0;  // bus-side
  const double spent_from_bank =
      (in.soe_next - out.soe_next) / 100.0 *
      default_cap().energy_capacity_j();
  EXPECT_GT(spent_from_bank, recovered_j);
  EXPECT_LT(out.soe_next, soe0 + 1e-9);
}

class ConverterVoltageSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConverterVoltageSweep, EfficiencyWithinBounds) {
  ConverterParams p;
  p.nominal_voltage = 32.0;
  const Converter c(p);
  const double v = GetParam();
  const double eta = c.efficiency(v);
  EXPECT_GE(eta, p.eta_min);
  EXPECT_LE(eta, p.eta_max);
  // Loss is consistent in both directions.
  EXPECT_NEAR(c.storage_power_for_bus(1000.0, v) * eta, 1000.0, 1e-9);
  EXPECT_NEAR(c.storage_power_for_bus(-1000.0, v) / eta, -1000.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Voltages, ConverterVoltageSweep,
                         ::testing::Values(0.0, 4.0, 8.0, 16.0, 24.0, 30.0,
                                           32.0));

}  // namespace
}  // namespace otem::hees
