// The paper's headline claims, pinned as regression tests on reduced
// workloads (US06 x2 instead of the benches' x3-x5 — same shape,
// smaller runtime). If a refactor or recalibration breaks the
// reproduction, this suite fails before the benches are ever run.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "core/cooling_methodology.h"
#include "core/dual_methodology.h"
#include "core/otem/otem_methodology.h"
#include "core/parallel_methodology.h"
#include "sim/simulator.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem {
namespace {

/// One shared evaluation: all four methodologies on US06 x2 at the
/// paper's 25 C / 25 kF configuration. Computed once for the suite.
class PaperClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const core::SystemSpec spec = core::SystemSpec::from_config(Config());
    const TimeSeries power =
        vehicle::Powertrain(spec.vehicle)
            .power_trace(vehicle::generate(vehicle::CycleName::kUs06))
            .repeated(2);
    const sim::Simulator sim(spec);
    auto run = [&](std::unique_ptr<core::Methodology> m) {
      sim::RunOptions opt;
      opt.record_trace = false;
      return sim.run(*m, power, opt);
    };
    results_ = new std::map<std::string, sim::RunResult>;
    (*results_)["parallel"] =
        run(std::make_unique<core::ParallelMethodology>(spec));
    (*results_)["active_cooling"] =
        run(std::make_unique<core::CoolingMethodology>(spec));
    (*results_)["dual"] = run(std::make_unique<core::DualMethodology>(spec));
    (*results_)["otem"] = run(std::make_unique<core::OtemMethodology>(spec));
    spec_ = new core::SystemSpec(spec);
  }

  static void TearDownTestSuite() {
    delete results_;
    delete spec_;
    results_ = nullptr;
    spec_ = nullptr;
  }

  static const sim::RunResult& at(const std::string& name) {
    return results_->at(name);
  }

  static std::map<std::string, sim::RunResult>* results_;
  static core::SystemSpec* spec_;
};

std::map<std::string, sim::RunResult>* PaperClaims::results_ = nullptr;
core::SystemSpec* PaperClaims::spec_ = nullptr;

TEST_F(PaperClaims, OtemHasLowestCapacityLoss) {
  // Fig. 8 / Table I: OTEM's BLT improvement over every baseline.
  EXPECT_LT(at("otem").qloss_percent, at("parallel").qloss_percent);
  EXPECT_LT(at("otem").qloss_percent, at("dual").qloss_percent);
  EXPECT_LT(at("otem").qloss_percent, at("active_cooling").qloss_percent);
}

TEST_F(PaperClaims, OtemReductionVsParallelIsSubstantial) {
  // Paper: 16.38 % average reduction, 57 % on US06 (Table I). Demand at
  // least 20 % here.
  EXPECT_LT(at("otem").qloss_percent, 0.8 * at("parallel").qloss_percent);
}

TEST_F(PaperClaims, OtemConsumesLessThanPureActiveCooling) {
  // Fig. 9: 12.1 % average power reduction vs cooling-only. Demand a
  // positive margin here.
  EXPECT_LT(at("otem").average_power_w,
            0.99 * at("active_cooling").average_power_w);
}

TEST_F(PaperClaims, ActiveCoolingIsTheMostPowerHungry) {
  // Fig. 9: "methodologies which use active battery cooling system have
  // consumed more energy compared to others" — and the blunt fixed-
  // inlet baseline tops the list.
  EXPECT_GT(at("active_cooling").average_power_w,
            at("parallel").average_power_w);
  EXPECT_GT(at("active_cooling").average_power_w,
            at("dual").average_power_w);
}

TEST_F(PaperClaims, UnmanagedArchitecturesViolateThermalLimits) {
  // Figs. 1/6: without active cooling the aggressive cycle drives the
  // pack past the safe threshold.
  EXPECT_GT(at("parallel").max_t_battery_k,
            spec_->thermal.max_battery_temp_k);
  EXPECT_GT(at("dual").max_t_battery_k, spec_->thermal.max_battery_temp_k);
}

TEST_F(PaperClaims, OtemStaysInTheSafeZone) {
  // The paper's C1 promise.
  EXPECT_LE(at("otem").thermal_violation_s, 5.0);
  EXPECT_LT(at("otem").max_t_battery_k,
            spec_->thermal.max_battery_temp_k + 0.5);
}

TEST_F(PaperClaims, OtemServesTheFullLoad) {
  // Floating-point boundary grazing accumulates nanojoules; anything a
  // driver could feel would be kilojoules.
  EXPECT_LT(at("otem").unserved_energy_j, 1.0);
}

TEST_F(PaperClaims, ParallelDegradesWithSmallerBank) {
  // Table I, parallel column: qloss grows as the bank shrinks.
  const core::SystemSpec small = spec_->with_ultracap_size(5000.0);
  const TimeSeries power =
      vehicle::Powertrain(small.vehicle)
          .power_trace(vehicle::generate(vehicle::CycleName::kUs06))
          .repeated(2);
  core::ParallelMethodology m(small);
  sim::RunOptions opt;
  opt.record_trace = false;
  const sim::RunResult r = sim::Simulator(small).run(m, power, opt);
  EXPECT_GT(r.qloss_percent, at("parallel").qloss_percent);
}

TEST_F(PaperClaims, OtemIsNearlyBankSizeIndependent) {
  // Table I: "the OTEM ... is not much dependent on the ultracapacitor
  // size" — a 5 kF OTEM still beats the 25 kF parallel baseline.
  const core::SystemSpec small = spec_->with_ultracap_size(5000.0);
  const TimeSeries power =
      vehicle::Powertrain(small.vehicle)
          .power_trace(vehicle::generate(vehicle::CycleName::kUs06))
          .repeated(2);
  core::OtemMethodology m(small);
  sim::RunOptions opt;
  opt.record_trace = false;
  const sim::RunResult r = sim::Simulator(small).run(m, power, opt);
  EXPECT_LT(r.qloss_percent, at("parallel").qloss_percent);
  EXPECT_LE(r.thermal_violation_s, 5.0);
}

}  // namespace
}  // namespace otem
