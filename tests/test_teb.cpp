// Tests for the paper's Thermal and Energy Budget (TEB) metric.
#include <gtest/gtest.h>

#include "core/teb.h"

namespace otem::core {
namespace {

SystemSpec default_spec() { return SystemSpec::from_config(Config()); }

TEST(Teb, FullBudgetsAtColdFullState) {
  const SystemSpec spec = default_spec();
  const TebMetric teb(spec);
  PlantState s;
  s.t_battery_k = spec.thermal.min_battery_temp_k;
  s.soe_percent = 100.0;
  const TebValue v = teb.evaluate(s);
  EXPECT_DOUBLE_EQ(v.thermal_fraction, 1.0);
  EXPECT_DOUBLE_EQ(v.energy_fraction, 1.0);
  EXPECT_DOUBLE_EQ(v.combined(), 1.0);
}

TEST(Teb, EmptyBudgetsAtHotDrainedState) {
  const SystemSpec spec = default_spec();
  const TebMetric teb(spec);
  PlantState s;
  s.t_battery_k = spec.thermal.max_battery_temp_k;
  s.soe_percent = spec.ultracap.min_soe_percent;
  const TebValue v = teb.evaluate(s);
  EXPECT_DOUBLE_EQ(v.thermal_fraction, 0.0);
  EXPECT_DOUBLE_EQ(v.energy_fraction, 0.0);
  EXPECT_DOUBLE_EQ(v.thermal_budget_j, 0.0);
  EXPECT_DOUBLE_EQ(v.energy_budget_j, 0.0);
}

TEST(Teb, ThermalBudgetIsHeatCapacityTimesHeadroom) {
  const SystemSpec spec = default_spec();
  const TebMetric teb(spec);
  PlantState s;
  s.t_battery_k = spec.thermal.max_battery_temp_k - 5.0;
  const TebValue v = teb.evaluate(s);
  EXPECT_NEAR(v.thermal_budget_j, 5.0 * spec.thermal.battery_heat_capacity,
              1e-9);
}

TEST(Teb, EnergyBudgetIsUsableBankEnergy) {
  const SystemSpec spec = default_spec();
  const TebMetric teb(spec);
  PlantState s;
  s.soe_percent = 60.0;
  const TebValue v = teb.evaluate(s);
  EXPECT_NEAR(v.energy_budget_j,
              (60.0 - spec.ultracap.min_soe_percent) / 100.0 *
                  spec.ultracap.energy_capacity_j(),
              1e-6);
}

TEST(Teb, ClampsOutsideBands) {
  const SystemSpec spec = default_spec();
  const TebMetric teb(spec);
  PlantState over;
  over.t_battery_k = spec.thermal.max_battery_temp_k + 10.0;  // violated
  over.soe_percent = 5.0;  // below the floor
  const TebValue v = teb.evaluate(over);
  EXPECT_DOUBLE_EQ(v.thermal_fraction, 0.0);
  EXPECT_DOUBLE_EQ(v.energy_fraction, 0.0);
  EXPECT_GE(v.thermal_budget_j, 0.0);
  EXPECT_GE(v.energy_budget_j, 0.0);
}

TEST(Teb, MonotoneInBothCoordinates) {
  const SystemSpec spec = default_spec();
  const TebMetric teb(spec);
  PlantState a, b;
  a.t_battery_k = 300.0;
  b.t_battery_k = 305.0;  // hotter
  a.soe_percent = b.soe_percent = 70.0;
  EXPECT_GT(teb.evaluate(a).combined(), teb.evaluate(b).combined());
  b.t_battery_k = 300.0;
  b.soe_percent = 50.0;  // emptier
  EXPECT_GT(teb.evaluate(a).combined(), teb.evaluate(b).combined());
}

TEST(Teb, ScalesWithBankSize) {
  const SystemSpec big = default_spec();
  const SystemSpec small = big.with_ultracap_size(5000.0);
  PlantState s;
  s.soe_percent = 80.0;
  EXPECT_GT(TebMetric(big).evaluate(s).energy_budget_j,
            TebMetric(small).evaluate(s).energy_budget_j);
  // Fractions are size-relative and identical.
  EXPECT_DOUBLE_EQ(TebMetric(big).evaluate(s).energy_fraction,
                   TebMetric(small).evaluate(s).energy_fraction);
}

}  // namespace
}  // namespace otem::core
