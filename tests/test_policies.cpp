// Decision-table tests for the baseline control POLICIES (the mode
// logic itself, as opposed to the plant consequences covered in
// test_methodologies.cpp).
#include <gtest/gtest.h>

#include "core/cooling_methodology.h"
#include "core/dual_methodology.h"

namespace otem::core {
namespace {

SystemSpec default_spec() { return SystemSpec::from_config(Config()); }

TimeSeries one_step(double p) { return TimeSeries(1.0, {p}); }

/// Run one step and return the dual mode chosen for the given state.
hees::DualMode dual_mode_for(const SystemSpec& spec, double tb_k,
                             double soe, double p_e,
                             DualPolicyParams policy = {}) {
  DualMethodology m(spec, policy);
  PlantState s;
  s.t_battery_k = tb_k;
  s.t_coolant_k = tb_k - 1.0;
  s.soe_percent = soe;
  m.reset(s, one_step(p_e));
  m.step(s, p_e, 0, 1.0);
  return m.last_mode();
}

// --- dual policy decision table -----------------------------------------

TEST(DualPolicy, CoolBatteryFullBankHighLoad) {
  EXPECT_EQ(dual_mode_for(default_spec(), 298.0, 100.0, 20000.0),
            hees::DualMode::kBatteryOnly);
}

TEST(DualPolicy, HotAndChargedVentsOnHeavyLoad) {
  const DualPolicyParams p;
  EXPECT_EQ(dual_mode_for(default_spec(), p.hot_threshold_k + 1.0, 90.0,
                          20000.0),
            hees::DualMode::kUltracapOnly);
}

TEST(DualPolicy, HotButLightLoadStaysOnBattery) {
  // Venting saves its charge for loads above the vent threshold.
  const DualPolicyParams p;
  EXPECT_EQ(dual_mode_for(default_spec(), p.hot_threshold_k + 1.0, 90.0,
                          p.vent_load_min_w - 2000.0),
            hees::DualMode::kBatteryOnly);
}

TEST(DualPolicy, HotAndEmptyCannotVent) {
  const DualPolicyParams p;
  EXPECT_EQ(dual_mode_for(default_spec(), p.hot_threshold_k + 1.0,
                          p.min_soe_percent - 1.0, 20000.0),
            hees::DualMode::kBatteryOnly);
}

TEST(DualPolicy, CoolAndLowBankRechargesOnLightLoad) {
  const DualPolicyParams p;
  EXPECT_EQ(dual_mode_for(default_spec(), 298.0, 50.0,
                          p.recharge_load_max_w - 3000.0),
            hees::DualMode::kRecharge);
}

TEST(DualPolicy, CoolAndLowBankWaitsThroughHeavyLoad) {
  const DualPolicyParams p;
  EXPECT_EQ(dual_mode_for(default_spec(), 298.0, 50.0,
                          p.recharge_load_max_w + 10000.0),
            hees::DualMode::kBatteryOnly);
}

TEST(DualPolicy, RegenAlwaysFillsALowBank) {
  EXPECT_EQ(dual_mode_for(default_spec(), 298.0, 50.0, -15000.0),
            hees::DualMode::kUltracapOnly);
}

TEST(DualPolicy, RegenGoesToBatteryWhenBankFull) {
  EXPECT_EQ(dual_mode_for(default_spec(), 298.0, 95.0, -15000.0),
            hees::DualMode::kBatteryOnly);
}

TEST(DualPolicy, VentingHasHysteresis) {
  // Once venting, the controller stays on the bank until the battery
  // has cooled BELOW threshold - band, not merely below threshold.
  const SystemSpec spec = default_spec();
  DualPolicyParams p;
  DualMethodology m(spec, p);
  PlantState s;
  s.t_battery_k = p.hot_threshold_k + 1.0;
  s.t_coolant_k = s.t_battery_k - 1.0;
  s.soe_percent = 95.0;
  const TimeSeries load(1.0, std::vector<double>(3, 20000.0));
  m.reset(s, load);
  m.step(s, 20000.0, 0, 1.0);
  ASSERT_EQ(m.last_mode(), hees::DualMode::kUltracapOnly);
  // Force the temperature just below the ON threshold (inside the
  // hysteresis band): still venting.
  s.t_battery_k = p.hot_threshold_k - 0.5 * p.cool_band_k;
  m.step(s, 20000.0, 1, 1.0);
  EXPECT_EQ(m.last_mode(), hees::DualMode::kUltracapOnly);
  // Below the band: back to battery.
  s.t_battery_k = p.hot_threshold_k - p.cool_band_k - 0.5;
  m.step(s, 20000.0, 2, 1.0);
  EXPECT_EQ(m.last_mode(), hees::DualMode::kBatteryOnly);
}

TEST(DualPolicy, ConfigOverrides) {
  Config cfg;
  cfg.set_pair("dual.hot_threshold_k=310");
  cfg.set_pair("dual.recharge_power=5000");
  const DualPolicyParams p = DualPolicyParams::from_config(cfg);
  EXPECT_DOUBLE_EQ(p.hot_threshold_k, 310.0);
  EXPECT_DOUBLE_EQ(p.recharge_power_w, 5000.0);
}

// --- cooling policy -------------------------------------------------------

TEST(CoolingPolicy, IdlesBelowEngageTemperature) {
  const SystemSpec spec = default_spec();
  CoolingPolicyParams p;
  CoolingMethodology m(spec, p);
  PlantState s;
  s.t_battery_k = p.engage_above_k - 1.0;
  s.t_coolant_k = s.t_battery_k;
  m.reset(s, one_step(5000.0));
  const StepRecord r = m.step(s, 5000.0, 0, 1.0);
  EXPECT_DOUBLE_EQ(r.p_cooler_w, 0.0);
  EXPECT_DOUBLE_EQ(r.p_pump_w, 0.0);
}

TEST(CoolingPolicy, HoldsInletTargetWhenEngaged) {
  const SystemSpec spec = default_spec();
  CoolingPolicyParams p;
  CoolingMethodology m(spec, p);
  PlantState s;
  s.t_battery_k = p.engage_above_k + 8.0;
  s.t_coolant_k = s.t_battery_k - 2.0;
  m.reset(s, one_step(5000.0));
  const StepRecord r = m.step(s, 5000.0, 0, 1.0);
  EXPECT_GT(r.p_cooler_w, 0.0);
  EXPECT_NEAR(r.t_inlet_k, p.inlet_target_k, 0.5);
}

TEST(CoolingPolicy, PowerCapBindsOnExtremeHeat) {
  const SystemSpec spec = default_spec();
  CoolingPolicyParams p;
  CoolingMethodology m(spec, p);
  PlantState s;
  s.t_battery_k = 340.0;  // absurdly hot
  s.t_coolant_k = 338.0;
  m.reset(s, one_step(5000.0));
  const StepRecord r = m.step(s, 5000.0, 0, 1.0);
  EXPECT_DOUBLE_EQ(r.p_cooler_w, spec.thermal.max_cooler_power_w);
  // Cap binding means the achieved inlet sits above the target.
  EXPECT_GT(r.t_inlet_k, p.inlet_target_k);
}

TEST(CoolingPolicy, ConfigOverrides) {
  Config cfg;
  cfg.set_pair("cooling.inlet_target_k=290");
  cfg.set_pair("cooling.engage_above_k=300");
  const CoolingPolicyParams p = CoolingPolicyParams::from_config(cfg);
  EXPECT_DOUBLE_EQ(p.inlet_target_k, 290.0);
  EXPECT_DOUBLE_EQ(p.engage_above_k, 300.0);
}

}  // namespace
}  // namespace otem::core
