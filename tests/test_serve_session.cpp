// Tests for the sessionful serving layer (serve/session.h) and the
// scale-out transports: session.open/step/close lifecycle and
// determinism, warm-start carryover across protocol frames, TTL and
// capacity eviction, drain semantics, the TCP transport (ephemeral
// port + bound_port discovery), multi-worker sharded-cache contention
// and the deterministic per-worker stats merge.
//
// Most tests drive Server::handle_line (the transport-free core); the
// TCP tests bind 127.0.0.1:0 and run real localhost sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"

namespace otem::serve {
namespace {

ServerOptions session_test_options() {
  ServerOptions opts;
  opts.threads = 2;
  opts.queue_depth = 4;
  opts.cache_bytes = 1u << 20;
  opts.drain_timeout_s = 0.0;
  return opts;
}

/// session.open for a mission small enough to finish in milliseconds.
std::string open_request(const std::string& extra = "") {
  return std::string(
             "{\"schema\":\"otem.serve.v1\",\"method\":\"session.open\","
             "\"overrides\":{\"method\":\"parallel\",\"synthetic\":true,"
             "\"synthetic_duration_s\":30") +
         extra + "}}";
}

std::string step_request(const std::string& sid,
                         const std::string& extra = "") {
  return "{\"schema\":\"otem.serve.v1\",\"method\":\"session.step\","
         "\"session\":\"" +
         sid + "\"" + extra + "}";
}

std::string close_request(const std::string& sid) {
  return "{\"schema\":\"otem.serve.v1\",\"method\":\"session.close\","
         "\"session\":\"" +
         sid + "\"}";
}

/// Parse a reply, assert ok:true, and return the result object.
Json ok_result(const std::string& line) {
  const Json doc = Json::parse(line);
  const Json* ok = doc.find("ok");
  EXPECT_TRUE(ok != nullptr && ok->is_bool() && ok->as_bool())
      << "not an ok reply: " << line;
  const Json* result = doc.find("result");
  EXPECT_NE(result, nullptr);
  return result != nullptr ? *result : Json();
}

std::string error_code_of(const std::string& line) {
  const Json doc = Json::parse(line);
  const Json* error = doc.find("error");
  return error != nullptr && error->is_string() ? error->as_string() : "";
}

std::string session_id_of(const Json& result) {
  const Json* sid = result.find("session");
  EXPECT_TRUE(sid != nullptr && sid->is_string());
  return sid != nullptr && sid->is_string() ? sid->as_string() : "";
}

// --- lifecycle --------------------------------------------------------------

TEST(ServeSession, OpenStepCloseLifecycle) {
  Server server(session_test_options());
  const Json open = ok_result(server.handle_line(open_request()));
  const std::string sid = session_id_of(open);
  EXPECT_EQ(sid, "s1");
  EXPECT_EQ(open.find("methodology")->as_string(), "parallel");
  EXPECT_GT(open.find("route_steps")->as_number(), 0.0);
  EXPECT_GT(open.find("dt_s")->as_number(), 0.0);

  for (int k = 0; k < 5; ++k) {
    const Json step = ok_result(server.handle_line(step_request(sid)));
    EXPECT_EQ(step.find("k")->as_number(), static_cast<double>(k));
    EXPECT_NE(step.find("decision"), nullptr);
    const Json* state = step.find("state");
    ASSERT_NE(state, nullptr);
    EXPECT_GT(state->find("t_battery_k")->as_number(), 250.0);
  }

  const Json closed = ok_result(server.handle_line(close_request(sid)));
  EXPECT_EQ(closed.find("steps")->as_number(), 5.0);
  const Json* report = closed.find("report");
  ASSERT_NE(report, nullptr);
  // 5 steps of the route accumulated, not the whole mission.
  EXPECT_NEAR(report->find("duration_s")->as_number(),
              5.0 * open.find("dt_s")->as_number(), 1e-9);

  // A closed id stops resolving.
  EXPECT_EQ(error_code_of(server.handle_line(step_request(sid))),
            "unknown_session");
  EXPECT_EQ(error_code_of(server.handle_line(close_request(sid))),
            "unknown_session");
}

TEST(ServeSession, TwoIdenticalSessionsStreamIdenticalDecisions) {
  // Determinism across resident sessions: the same mission streamed
  // twice yields byte-identical step replies once the session ids are
  // factored out (the replies embed the id).
  Server server(session_test_options());
  const std::string a = session_id_of(ok_result(
      server.handle_line(open_request())));
  const std::string b = session_id_of(ok_result(
      server.handle_line(open_request())));
  ASSERT_NE(a, b);
  for (int k = 0; k < 10; ++k) {
    std::string ra = server.handle_line(step_request(a));
    std::string rb = server.handle_line(step_request(b));
    // Splice out the session ids, then demand byte equality.
    const size_t pa = ra.find(a);
    const size_t pb = rb.find(b);
    ASSERT_NE(pa, std::string::npos);
    ASSERT_NE(pb, std::string::npos);
    ra.erase(pa, a.size());
    rb.erase(pb, b.size());
    EXPECT_EQ(ra, rb) << "diverged at step " << k;
  }
}

TEST(ServeSession, ExplicitPowerRequestOverridesTheRouteForecast) {
  Server server(session_test_options());
  const std::string sid = session_id_of(ok_result(
      server.handle_line(open_request())));
  const Json step = ok_result(server.handle_line(
      step_request(sid, ",\"p_request_w\":12345.5")));
  EXPECT_EQ(step.find("p_request_w")->as_number(), 12345.5);
}

TEST(ServeSession, SteppingPastTheRouteWithoutARequestIsABadRequest) {
  Server server(session_test_options());
  const Json open = ok_result(
      server.handle_line(open_request(",\"synthetic_duration_s\":3")));
  const std::string sid = session_id_of(open);
  const auto route = static_cast<size_t>(
      open.find("route_steps")->as_number());
  for (size_t k = 0; k < route; ++k)
    ok_result(server.handle_line(step_request(sid)));
  EXPECT_EQ(error_code_of(server.handle_line(step_request(sid))),
            "bad_request");
  // An explicit power request keeps the mission going past its route.
  const Json step = ok_result(server.handle_line(
      step_request(sid, ",\"p_request_w\":5000")));
  EXPECT_EQ(step.find("k")->as_number(), static_cast<double>(route));
}

TEST(ServeSession, UnknownAndMissingSessionIdsAreStructuredErrors) {
  Server server(session_test_options());
  EXPECT_EQ(error_code_of(server.handle_line(step_request("s999"))),
            "unknown_session");
  EXPECT_EQ(error_code_of(server.handle_line(
                "{\"schema\":\"otem.serve.v1\",\"method\":"
                "\"session.step\"}")),
            "bad_request");
}

// --- warm-start carryover ---------------------------------------------------

TEST(ServeSession, WarmStepsNeverExceedTheColdSolvesIterations) {
  // The point of resident sessions: the QP warm start and KKT
  // factorisation carried inside the controller survive across
  // protocol frames, so step N+1 never takes more ADMM iterations
  // than the cold k=0 solve.
  ServerOptions opts = session_test_options();
  Server server(opts);
  const Json open = ok_result(server.handle_line(
      "{\"schema\":\"otem.serve.v1\",\"method\":\"session.open\","
      "\"overrides\":{\"method\":\"otem-ltv\",\"synthetic\":true,"
      "\"synthetic_duration_s\":12,\"ltv.sqp_iterations\":1}}"));
  const std::string sid = session_id_of(open);

  double cold_iters = -1.0;
  for (int k = 0; k < 12; ++k) {
    const Json step = ok_result(server.handle_line(step_request(sid)));
    const Json* solve = step.find("solve");
    ASSERT_NE(solve, nullptr);
    const double iters = solve->find("qp_iterations")->as_number();
    if (k == 0) {
      cold_iters = iters;
      EXPECT_GT(cold_iters, 0.0);
    } else {
      EXPECT_LE(iters, cold_iters)
          << "warm step " << k << " took more QP iterations than the "
          << "cold solve — the warm start is not carrying across frames";
    }
  }
}

// --- eviction ---------------------------------------------------------------

TEST(ServeSession, IdleSessionsAreEvictedAfterTheirTtl) {
  ServerOptions opts = session_test_options();
  opts.session_ttl_s = 0.05;
  Server server(opts);
  const std::string sid = session_id_of(ok_result(
      server.handle_line(open_request())));
  ok_result(server.handle_line(step_request(sid)));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(error_code_of(server.handle_line(step_request(sid))),
            "unknown_session");
  const obs::MetricsSnapshot snap = server.registry().snapshot();
  EXPECT_EQ(snap.counters.at("serve.sessions_evicted"), 1u);
  EXPECT_EQ(snap.gauges.at("serve.sessions_active"), 0.0);
}

TEST(ServeSession, CapacityEvictionDropsTheLeastRecentlyUsed) {
  ServerOptions opts = session_test_options();
  opts.session_limit = 2;
  Server server(opts);
  const std::string s1 = session_id_of(ok_result(
      server.handle_line(open_request())));
  const std::string s2 = session_id_of(ok_result(
      server.handle_line(open_request())));
  // Touch s1 so s2 is the LRU when the third session arrives.
  ok_result(server.handle_line(step_request(s1)));
  const std::string s3 = session_id_of(ok_result(
      server.handle_line(open_request())));
  EXPECT_EQ(error_code_of(server.handle_line(step_request(s2))),
            "unknown_session");
  ok_result(server.handle_line(step_request(s1)));
  ok_result(server.handle_line(step_request(s3)));
}

TEST(ServeSession, SessionLimitZeroDisablesTheSessionApi) {
  ServerOptions opts = session_test_options();
  opts.session_limit = 0;
  Server server(opts);
  EXPECT_EQ(error_code_of(server.handle_line(open_request())),
            "session_limit");
}

// --- drain ------------------------------------------------------------------

TEST(ServeSession, DrainDropsResidentSessionsAndRefusesNewWork) {
  Server server(session_test_options());
  const std::string sid = session_id_of(ok_result(
      server.handle_line(open_request())));
  ok_result(server.handle_line(step_request(sid)));

  server.request_stop();
  server.drain();

  EXPECT_EQ(error_code_of(server.handle_line(step_request(sid))),
            "draining");
  EXPECT_EQ(error_code_of(server.handle_line(open_request())), "draining");
  const obs::MetricsSnapshot snap = server.registry().snapshot();
  EXPECT_EQ(snap.gauges.at("serve.sessions_active"), 0.0);
}

// --- SessionManager unit behavior -------------------------------------------

TEST(ServeSessionManager, IdsStayUniqueAcrossFailedInserts) {
  obs::MetricsRegistry registry;
  SessionManager manager(SessionLimits{0, 0.0}, registry);
  const std::string a = manager.next_id();
  const std::string b = manager.next_id();
  EXPECT_NE(a, b);
  EXPECT_EQ(manager.active(), 0u);
  EXPECT_EQ(manager.find(a), nullptr);
}

// --- TCP transport ----------------------------------------------------------

/// Serve on an ephemeral localhost port in a background thread and
/// return once bound_port() is known.
struct TcpServerFixture {
  explicit TcpServerFixture(const ServerOptions& opts) : server(opts) {
    thread = std::thread([this] { (void)server.serve_tcp("127.0.0.1:0"); });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.bound_port() == 0) {
      if (std::chrono::steady_clock::now() >= deadline) {
        ADD_FAILURE() << "server never bound its TCP port";
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    endpoint = "127.0.0.1:" + std::to_string(server.bound_port());
  }
  ~TcpServerFixture() {
    server.request_stop();
    thread.join();
  }
  Server server;
  std::thread thread;
  std::string endpoint;
};

TEST(ServeTcp, PingOverARealLocalhostSocket) {
  TcpServerFixture fx(session_test_options());
  const std::string reply = request_once(
      fx.endpoint,
      "{\"schema\":\"otem.serve.v1\",\"method\":\"ping\",\"id\":\"t\"}");
  EXPECT_EQ(reply,
            "{\"schema\":\"otem.serve.v1\",\"id\":\"t\",\"ok\":true,"
            "\"cached\":false,\"result\":{\"pong\":true}}");
}

TEST(ServeTcp, SessionLifecycleOverOnePersistentConnection) {
  TcpServerFixture fx(session_test_options());
  Connection conn(fx.endpoint);
  const Json open = ok_result(conn.roundtrip(open_request()));
  const std::string sid = session_id_of(open);
  for (int k = 0; k < 3; ++k) {
    const Json step = ok_result(conn.roundtrip(step_request(sid)));
    EXPECT_EQ(step.find("k")->as_number(), static_cast<double>(k));
  }
  const Json closed = ok_result(conn.roundtrip(close_request(sid)));
  EXPECT_EQ(closed.find("steps")->as_number(), 3.0);
}

TEST(ServeTcp, MultiWorkerCachedRepliesAreByteIdenticalUnderContention) {
  // The sharded-cache guarantee end to end: many concurrent clients
  // asking for the SAME mission over TCP against a multi-worker daemon
  // must all receive byte-identical response documents (modulo the id
  // they chose), with the computation done once per shard claim.
  ServerOptions opts = session_test_options();
  opts.workers = 4;
  TcpServerFixture fx(opts);

  const std::string request =
      "{\"schema\":\"otem.serve.v1\",\"method\":\"run\",\"overrides\":"
      "{\"method\":\"parallel\",\"synthetic\":true,"
      "\"synthetic_duration_s\":30}}";
  constexpr size_t kClients = 8;
  std::vector<std::string> replies(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      replies[c] = request_once(fx.endpoint, request, 60.0);
    });
  }
  for (std::thread& t : threads) t.join();
  // The cached flag tells computed and replayed answers apart; the
  // RESULT bytes must be spliced verbatim from the same cache entry.
  const size_t r0 = replies[0].find("\"result\":");
  ASSERT_NE(r0, std::string::npos) << replies[0];
  for (size_t c = 1; c < kClients; ++c) {
    const size_t rc = replies[c].find("\"result\":");
    ASSERT_NE(rc, std::string::npos) << replies[c];
    EXPECT_EQ(replies[c].substr(rc), replies[0].substr(r0));
  }

  const obs::MetricsSnapshot snap = fx.server.registry().snapshot();
  // Every request was answered through the cache: ONE miss computed,
  // the rest were hits or coalesced waiters (coalesced counts wait-loop
  // wakeups, so it can exceed the waiter count — only its floor is
  // meaningful).
  EXPECT_EQ(snap.counters.at("serve.cache.misses"), 1u);
  EXPECT_GE(snap.counters.at("serve.cache.hits") +
                snap.counters.at("serve.cache.coalesced") + 1,
            kClients);
}

TEST(ServeTcp, ConcurrentSessionsSurviveAMultiWorkerDaemon) {
  ServerOptions opts = session_test_options();
  opts.workers = 2;
  TcpServerFixture fx(opts);
  constexpr size_t kClients = 4;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      try {
        Connection conn(fx.endpoint);
        const Json open = Json::parse(conn.roundtrip(open_request()));
        const Json* result = open.find("result");
        const std::string sid = result->find("session")->as_string();
        for (int k = 0; k < 5; ++k)
          (void)conn.roundtrip(step_request(sid));
        (void)conn.roundtrip(close_request(sid));
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  const obs::MetricsSnapshot snap = fx.server.registry().snapshot();
  EXPECT_EQ(snap.counters.at("serve.sessions_opened"), kClients);
  EXPECT_EQ(snap.counters.at("serve.sessions_closed"), kClients);
}

TEST(ServeTcp, StatsMergesWorkerSketchesDeterministically) {
  ServerOptions opts = session_test_options();
  opts.workers = 3;
  Server server(opts);
  // Attribute traffic to distinct workers through the transport-free
  // core, exactly as the acceptor loops do.
  for (size_t w = 0; w < 3; ++w) {
    for (int i = 0; i < 4; ++i)
      (void)server.handle_line(
          "{\"schema\":\"otem.serve.v1\",\"method\":\"run\",\"overrides\":"
          "{\"method\":\"parallel\",\"synthetic\":true,"
          "\"synthetic_duration_s\":30}}",
          w);
  }
  const std::string stats_request =
      "{\"schema\":\"otem.serve.v1\",\"method\":\"stats\"}";
  const Json first = ok_result(server.handle_line(stats_request));
  const Json second = ok_result(server.handle_line(stats_request, 2));
  const Json* wa = first.find("workers");
  const Json* wb = second.find("workers");
  ASSERT_NE(wa, nullptr);
  ASSERT_NE(wb, nullptr);
  EXPECT_EQ(wa->find("count")->as_number(), 3.0);
  // The per-worker KLL sketches merge in worker order: the merged
  // quantiles must be identical on every stats call over the same
  // traffic, whichever worker answers.
  EXPECT_EQ(wa->find("request_latency_us")->dump(0),
            wb->find("request_latency_us")->dump(0));
}

}  // namespace
}  // namespace otem::serve
