// Tests for the closed-loop simulator and metrics layer.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/parallel_methodology.h"
#include "exec/stop_token.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "sim/step_sink.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem::sim {
namespace {

core::SystemSpec default_spec() {
  return core::SystemSpec::from_config(Config());
}

TimeSeries udds_power(const core::SystemSpec& spec) {
  return vehicle::Powertrain(spec.vehicle)
      .power_trace(vehicle::generate(vehicle::CycleName::kUdds));
}

TEST(Simulator, AccountingIdentities) {
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  const RunResult r = sim.run(m, udds_power(spec));

  EXPECT_NEAR(r.energy_hees_j, r.energy_battery_j + r.energy_cap_j,
              std::abs(r.energy_hees_j) * 1e-12);
  EXPECT_NEAR(r.average_power_w, r.energy_hees_j / r.duration_s,
              std::abs(r.average_power_w) * 1e-12);
  EXPECT_GT(r.qloss_percent, 0.0);
  EXPECT_GT(r.energy_loss_j, 0.0);
}

TEST(Simulator, TraceAlignedWithInput) {
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  const TimeSeries power = udds_power(spec);
  const RunResult r = sim.run(m, power);
  EXPECT_EQ(r.trace.t_battery_k.size(), power.size());
  EXPECT_EQ(r.trace.soc_percent.size(), power.size());
  EXPECT_EQ(r.trace.teb.size(), power.size());
  // Cumulative loss is monotone.
  for (size_t k = 1; k < r.trace.qloss_percent.size(); ++k)
    EXPECT_GE(r.trace.qloss_percent[k], r.trace.qloss_percent[k - 1]);
}

TEST(Simulator, TraceCanBeDisabled) {
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  RunOptions opt;
  opt.record_trace = false;
  const RunResult r = sim.run(m, udds_power(spec), opt);
  EXPECT_TRUE(r.trace.t_battery_k.empty());
  EXPECT_GT(r.qloss_percent, 0.0);
}

TEST(Simulator, DeterministicRuns) {
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  const TimeSeries power = udds_power(spec);
  core::ParallelMethodology m1(spec);
  core::ParallelMethodology m2(spec);
  const RunResult a = sim.run(m1, power);
  const RunResult b = sim.run(m2, power);
  EXPECT_DOUBLE_EQ(a.qloss_percent, b.qloss_percent);
  EXPECT_DOUBLE_EQ(a.energy_hees_j, b.energy_hees_j);
  EXPECT_DOUBLE_EQ(a.final_state.t_battery_k, b.final_state.t_battery_k);
}

TEST(Simulator, InitialStateHonoured) {
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  RunOptions opt;
  opt.initial.soc_percent = 60.0;
  // Start the bank at the parallel architecture's rest point so the
  // battery is not charged from the bank during the run.
  opt.initial.soe_percent = 60.0;
  opt.initial.t_battery_k = 305.0;
  const RunResult r =
      sim.run(m, TimeSeries(1.0, std::vector<double>(5, 1000.0)), opt);
  EXPECT_LT(r.final_state.soc_percent, 60.0);
  EXPECT_GT(r.max_t_battery_k, 300.0);
}

TEST(Simulator, ThermalViolationCounted) {
  core::SystemSpec spec = default_spec();
  spec.thermal.max_battery_temp_k = 299.0;  // absurdly tight ceiling
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  const RunResult r =
      sim.run(m, TimeSeries(1.0, std::vector<double>(600, 40000.0)));
  EXPECT_GT(r.thermal_violation_s, 0.0);
  EXPECT_GT(r.max_t_battery_k, 299.0);
}

TEST(Simulator, EmptyTraceThrows) {
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  EXPECT_THROW(sim.run(m, TimeSeries()), SimError);
}

TEST(Simulator, CapPowerTraceMatchesEnergyAccounting) {
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  const RunResult r = sim.run(m, udds_power(spec));
  // Integrating the recorded ultracap power recovers the energy total.
  EXPECT_NEAR(r.trace.p_cap_w.integral(), r.energy_cap_j,
              std::abs(r.energy_cap_j) * 1e-9 + 1e-6);
}

TEST(Simulator, UnservedEnergyZeroOnFeasibleMission) {
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  const RunResult r = sim.run(m, udds_power(spec));
  EXPECT_DOUBLE_EQ(r.unserved_energy_j, 0.0);
}

TEST(Simulator, UnservedEnergyCountsBrownouts) {
  // A load far beyond the pack's deliverable power must show up as
  // unserved energy, not silently vanish.
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  const RunResult r = sim.run(
      m, TimeSeries(1.0, std::vector<double>(30, 500000.0)));  // 500 kW
  EXPECT_GT(r.unserved_energy_j, 1e6);
  EXPECT_GT(r.infeasible_steps, 0u);
}

// --- metrics ------------------------------------------------------------

TEST(Metrics, RelativeCapacityLoss) {
  RunResult a, b;
  a.qloss_percent = 0.5;
  b.qloss_percent = 1.0;
  EXPECT_DOUBLE_EQ(relative_capacity_loss_percent(a, b), 50.0);
  RunResult zero;
  EXPECT_THROW(relative_capacity_loss_percent(a, zero), SimError);
}

TEST(Metrics, LifetimeImprovementFromLossRatio) {
  RunResult better, base;
  better.qloss_percent = 0.8;
  base.qloss_percent = 1.0;
  EXPECT_NEAR(lifetime_improvement_percent(better, base), 25.0, 1e-9);
}

TEST(Metrics, MissionsToEndOfLife) {
  RunResult r;
  r.qloss_percent = 0.004;
  EXPECT_NEAR(missions_to_end_of_life(r, battery::CellParams{}),
              5000.0, 1e-6);
}

TEST(Metrics, RangeEstimatePlausible) {
  const core::SystemSpec spec = default_spec();
  RunResult r;
  r.energy_hees_j = 6.0e6;  // 6 MJ over 10 km -> 167 Wh/km
  const double km = estimated_range_km(r, spec, 10000.0);
  EXPECT_GT(km, 80.0);
  EXPECT_LT(km, 250.0);
}

// --- cooperative cancellation -----------------------------------------------

/// Probe sink: counts delivered samples, requests a stop after
/// `stop_after` of them, and records whether end() ran.
class CancelProbeSink final : public StepSink {
 public:
  CancelProbeSink(exec::StopSource source, size_t stop_after)
      : source_(std::move(source)), stop_after_(stop_after) {}

  void record(const StepSample& sample) override {
    ++records_;
    (void)sample;
    if (records_ >= stop_after_) source_.request_stop();
  }
  void end(const core::PlantState& final_state) override {
    (void)final_state;
    end_called_ = true;
  }

  size_t records() const { return records_; }
  bool end_called() const { return end_called_; }

 private:
  exec::StopSource source_;
  size_t stop_after_;
  size_t records_ = 0;
  bool end_called_ = false;
};

TEST(Simulator, CancelMidMissionThrowsSimCancelledAndFinalizesSinks) {
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  const TimeSeries power = udds_power(spec);
  ASSERT_GT(power.size(), 100u);

  exec::StopSource source;
  RunOptions opt;
  opt.stop = source.token();
  CancelProbeSink probe(source, 50);
  MetricsAccumulator metrics;
  std::vector<StepSink*> sinks{&metrics, &probe};
  EXPECT_THROW(sim.run_with_sinks(m, power, opt, sinks), SimCancelled);
  // The mission stopped where asked — not truncated mid-write, not run
  // to completion — and every sink was finalized.
  EXPECT_EQ(probe.records(), 50u);
  EXPECT_TRUE(probe.end_called());
}

TEST(Simulator, CancelClosesStreamingCsvSinkCleanly) {
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  const TimeSeries power = udds_power(spec);

  const std::string path =
      ::testing::TempDir() + "otem_cancelled_trace.csv";
  exec::StopSource source;
  RunOptions opt;
  opt.stop = source.token();
  CancelProbeSink probe(source, 25);
  CsvStreamSink csv(path);
  std::vector<StepSink*> sinks{&csv, &probe};
  EXPECT_THROW(sim.run_with_sinks(m, power, opt, sinks), SimCancelled);
  EXPECT_EQ(csv.rows_written(), 25u);

  // The file is a CLOSED, well-formed CSV of exactly the completed
  // steps: header + 25 rows, final line newline-terminated.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  size_t lines = 0;
  std::string line, last;
  while (std::getline(in, line)) {
    ++lines;
    last = line;
  }
  EXPECT_EQ(lines, 26u);
  EXPECT_NE(last.find(','), std::string::npos);  // a data row, not junk
  std::remove(path.c_str());
}

TEST(Simulator, PreStoppedTokenCancelsBeforeTheFirstStep) {
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  exec::StopSource source;
  source.request_stop();
  RunOptions opt;
  opt.stop = source.token();
  try {
    sim.run(m, udds_power(spec), opt);
    FAIL() << "should have thrown SimCancelled";
  } catch (const SimCancelled& e) {
    EXPECT_NE(std::string(e.what()).find("cancelled at step 0"),
              std::string::npos);
  }
}

TEST(Simulator, ExpiredDeadlineReadsAsDeadlineNotCancel) {
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  const exec::StopSource source = exec::StopSource::with_deadline(
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  RunOptions opt;
  opt.stop = source.token();
  try {
    sim.run(m, udds_power(spec), opt);
    FAIL() << "should have thrown SimCancelled";
  } catch (const SimCancelled& e) {
    EXPECT_NE(std::string(e.what()).find("deadline expired"),
              std::string::npos);
  }
}

TEST(Simulator, SimCancelledIsASimError) {
  // Callers that already catch SimError keep working; callers that
  // need to distinguish an abandoned run can catch the subclass.
  const SimCancelled cancelled("stopped");
  const SimError* base = &cancelled;
  EXPECT_NE(std::string(base->what()).find("stopped"), std::string::npos);
}

TEST(Simulator, EmptyStopTokenAddsNothingToARun) {
  const core::SystemSpec spec = default_spec();
  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  RunOptions plain;
  plain.record_trace = false;
  RunOptions with_token;
  with_token.record_trace = false;
  with_token.stop = exec::StopToken();  // empty: never stops
  const RunResult a = sim.run(m, udds_power(spec), plain);
  const RunResult b = sim.run(m, udds_power(spec), with_token);
  EXPECT_EQ(a.qloss_percent, b.qloss_percent);  // bit-identical
  EXPECT_EQ(a.energy_hees_j, b.energy_hees_j);
}

}  // namespace
}  // namespace otem::sim
