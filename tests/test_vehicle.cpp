// Tests for the drive-cycle generator and the powertrain model.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem::vehicle {
namespace {

// --- cycle builder ------------------------------------------------------

TEST(CycleBuilder, RampReachesTargetExactly) {
  CycleBuilder b;
  b.ramp_to(10.0, 3.0);
  EXPECT_DOUBLE_EQ(b.current_speed(), 10.0);
  const TimeSeries ts = b.build();
  EXPECT_DOUBLE_EQ(ts[0], 0.0);
  EXPECT_DOUBLE_EQ(ts[ts.size() - 1], 10.0);
}

TEST(CycleBuilder, RampRespectsAccelerationLimit) {
  CycleBuilder b;
  b.ramp_to(20.0, 1.5);
  const TimeSeries ts = b.build();
  for (size_t k = 1; k < ts.size(); ++k)
    EXPECT_LE(ts[k] - ts[k - 1], 1.5 + 1e-12);
}

TEST(CycleBuilder, IdleRequiresStandstill) {
  CycleBuilder b;
  b.ramp_to(5.0, 1.0);
  EXPECT_THROW(b.idle(3.0), SimError);
}

TEST(CycleBuilder, WavyCruiseReturnsToBaseSpeed) {
  CycleBuilder b;
  b.ramp_to(20.0, 2.0).cruise_wavy(30.0, 2.0, 10.0);
  EXPECT_DOUBLE_EQ(b.current_speed(), 20.0);
}

TEST(CycleBuilder, StopEndsAtZero) {
  CycleBuilder b;
  b.ramp_to(15.0, 2.0).stop(2.0, 5.0);
  EXPECT_DOUBLE_EQ(b.current_speed(), 0.0);
}

// --- cycle statistics vs published references ------------------------------

class CycleFidelity : public ::testing::TestWithParam<CycleName> {};

TEST_P(CycleFidelity, MatchesReferenceStatsWithinBands) {
  const CycleName name = GetParam();
  const TimeSeries speed = generate(name);
  const CycleStats got = stats_of(speed);
  const CycleStats ref = reference_stats(name);

  EXPECT_NEAR(got.duration_s, ref.duration_s, 0.15 * ref.duration_s)
      << to_string(name);
  EXPECT_NEAR(got.max_speed_mps, ref.max_speed_mps,
              0.03 * ref.max_speed_mps)
      << to_string(name);
  EXPECT_NEAR(got.avg_speed_mps, ref.avg_speed_mps,
              0.30 * ref.avg_speed_mps)
      << to_string(name);
  EXPECT_NEAR(got.distance_m, ref.distance_m, 0.35 * ref.distance_m)
      << to_string(name);
}

TEST_P(CycleFidelity, StartsAndEndsAtRest) {
  const TimeSeries speed = generate(GetParam());
  EXPECT_DOUBLE_EQ(speed[0], 0.0);
  EXPECT_DOUBLE_EQ(speed[speed.size() - 1], 0.0);
}

TEST_P(CycleFidelity, SpeedsNonNegative) {
  const TimeSeries speed = generate(GetParam());
  for (size_t k = 0; k < speed.size(); ++k) EXPECT_GE(speed[k], 0.0);
}

TEST_P(CycleFidelity, Deterministic) {
  const TimeSeries a = generate(GetParam());
  const TimeSeries b = generate(GetParam());
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) EXPECT_DOUBLE_EQ(a[k], b[k]);
}

INSTANTIATE_TEST_SUITE_P(
    AllCycles, CycleFidelity,
    ::testing::ValuesIn(extended_cycles()),
    [](const ::testing::TestParamInfo<CycleName>& param_info) {
      return std::string(to_string(param_info.param));
    });

TEST(CycleRegistry, RoundtripNames) {
  for (CycleName c : all_cycles()) {
    EXPECT_EQ(cycle_from_string(to_string(c)), c);
  }
  EXPECT_THROW(cycle_from_string("NOT_A_CYCLE"), SimError);
}

TEST(CycleRegistry, Us06IsTheAggressiveOne) {
  const CycleStats us06 = stats_of(generate(CycleName::kUs06));
  const CycleStats udds = stats_of(generate(CycleName::kUdds));
  EXPECT_GT(us06.max_speed_mps, udds.max_speed_mps);
  EXPECT_GT(us06.avg_speed_mps, 2.0 * udds.avg_speed_mps);
  EXPECT_GT(us06.max_accel_mps2, 2.5);
}

TEST(SyntheticCycle, DeterministicPerSeed) {
  const TimeSeries a = generate_synthetic(7, 300.0, 20.0);
  const TimeSeries b = generate_synthetic(7, 300.0, 20.0);
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) EXPECT_DOUBLE_EQ(a[k], b[k]);
  const TimeSeries c = generate_synthetic(8, 300.0, 20.0);
  EXPECT_NE(a.size(), c.size());
}

TEST(SyntheticCycle, RespectsMaxSpeedAndDuration) {
  const TimeSeries ts = generate_synthetic(42, 400.0, 25.0);
  EXPECT_GE(ts.duration(), 400.0);
  EXPECT_LE(stats_of(ts).max_speed_mps, 25.0 + 1e-9);
}

TEST(CycleCsv, LoadsUniformFile) {
  const std::string path = ::testing::TempDir() + "otem_cycle_test.csv";
  {
    std::ofstream f(path);
    f << "Time (s),Speed (mph)\n";
    for (int t = 0; t <= 10; ++t) f << t << "," << t * 2 << "\n";
  }
  const TimeSeries ts = load_speed_csv(path, "Time (s)", "Speed (mph)",
                                       SpeedUnit::kMilesPerHour);
  ASSERT_EQ(ts.size(), 11u);
  EXPECT_DOUBLE_EQ(ts.dt(), 1.0);
  EXPECT_NEAR(ts[5], 10.0 * 0.44704, 1e-9);
  std::remove(path.c_str());
}

TEST(CycleCsv, UnitConversions) {
  const std::string path = ::testing::TempDir() + "otem_cycle_kmh.csv";
  {
    std::ofstream f(path);
    f << "t,v\n0,36\n1,72\n";
  }
  const TimeSeries kmh =
      load_speed_csv(path, "t", "v", SpeedUnit::kKilometersPerHour);
  EXPECT_NEAR(kmh[0], 10.0, 1e-9);
  const TimeSeries mps =
      load_speed_csv(path, "t", "v", SpeedUnit::kMetersPerSecond);
  EXPECT_NEAR(mps[1], 72.0, 1e-9);
  std::remove(path.c_str());
}

TEST(CycleCsv, RejectsNonUniformSampling) {
  const std::string path = ::testing::TempDir() + "otem_cycle_bad.csv";
  {
    std::ofstream f(path);
    f << "t,v\n0,1\n1,2\n3,4\n";
  }
  EXPECT_THROW(load_speed_csv(path, "t", "v"), SimError);
  std::remove(path.c_str());
}

// --- powertrain ---------------------------------------------------------

Powertrain default_powertrain() { return Powertrain(VehicleParams{}); }

TEST(Powertrain, CruisePowerIsPositiveAndReasonable) {
  const Powertrain pt = default_powertrain();
  // 100 km/h cruise for a mid-size EV: ~12-20 kW electric.
  const double p = pt.power_request(27.8, 0.0);
  EXPECT_GT(p, 8000.0);
  EXPECT_LT(p, 25000.0);
}

TEST(Powertrain, PowerGrowsWithSpeed) {
  const Powertrain pt = default_powertrain();
  double prev = pt.power_request(5.0, 0.0);
  for (double v = 10.0; v <= 35.0; v += 5.0) {
    const double p = pt.power_request(v, 0.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Powertrain, HardBrakingYieldsBoundedRegen) {
  const Powertrain pt = default_powertrain();
  const double p = pt.power_request(25.0, -3.0);
  EXPECT_LT(p, 0.0);
  EXPECT_GE(p, -pt.params().max_regen_power_w +
                   pt.params().accessory_power_w - 1e-9);
}

TEST(Powertrain, StandstillDrawsOnlyAccessories) {
  const Powertrain pt = default_powertrain();
  EXPECT_NEAR(pt.power_request(0.0, 0.0), pt.params().accessory_power_w,
              1e-9);
}

TEST(Powertrain, GradeAddsLoad) {
  const Powertrain pt = default_powertrain();
  const double flat = pt.power_request(20.0, 0.0, 0.0);
  const double uphill = pt.power_request(20.0, 0.0, 0.05);
  EXPECT_GT(uphill, flat + 10000.0);  // 5 % grade at 72 km/h is heavy
}

TEST(Powertrain, MotorPowerCapApplies) {
  const Powertrain pt = default_powertrain();
  // Absurd acceleration: wheel power far beyond the motor cap.
  const double p = pt.power_request(30.0, 10.0);
  EXPECT_LE(p, pt.params().max_motor_power_w /
                       pt.params().traction_efficiency +
                   pt.params().accessory_power_w + 1e-6);
}

TEST(Powertrain, TraceHasSameShapeAsSpeed) {
  const Powertrain pt = default_powertrain();
  const TimeSeries speed = generate(CycleName::kUs06);
  const TimeSeries power = pt.power_trace(speed);
  EXPECT_EQ(power.size(), speed.size());
  EXPECT_DOUBLE_EQ(power.dt(), speed.dt());
}

TEST(Powertrain, Us06DemandIsAggressive) {
  const Powertrain pt = default_powertrain();
  const TimeSeries p_us06 = pt.power_trace(generate(CycleName::kUs06));
  const TimeSeries p_udds = pt.power_trace(generate(CycleName::kUdds));
  EXPECT_GT(p_us06.max(), 50000.0);       // hard accelerations
  EXPECT_GT(p_us06.mean(), p_udds.mean());
  EXPECT_LT(p_us06.min(), -5000.0);       // regen present
}

TEST(Powertrain, ConsumptionPerKmInEvRange) {
  const Powertrain pt = default_powertrain();
  // Typical EVs: ~100-250 Wh/km depending on the cycle.
  for (CycleName c : all_cycles()) {
    const double wh_km = pt.consumption_wh_per_km(generate(c));
    EXPECT_GT(wh_km, 50.0) << to_string(c);
    EXPECT_LT(wh_km, 400.0) << to_string(c);
  }
}

TEST(Powertrain, ConfigOverrides) {
  Config cfg;
  cfg.set_pair("vehicle.mass_kg=2200");
  cfg.set_pair("vehicle.cd=0.26");
  const VehicleParams p = VehicleParams::from_config(cfg);
  EXPECT_DOUBLE_EQ(p.mass_kg, 2200.0);
  EXPECT_DOUBLE_EQ(p.drag_coefficient, 0.26);
}

TEST(Powertrain, InvalidConfigThrows) {
  Config cfg;
  cfg.set_pair("vehicle.traction_efficiency=0");
  EXPECT_THROW(VehicleParams::from_config(cfg), SimError);
}

}  // namespace
}  // namespace otem::vehicle
