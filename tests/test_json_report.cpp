// Tests for the JSON emitter and the run-report serialisation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/json.h"
#include "core/parallel_methodology.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(0), "null");
  EXPECT_EQ(Json(true).dump(0), "true");
  EXPECT_EQ(Json(false).dump(0), "false");
  EXPECT_EQ(Json(3.5).dump(0), "3.5");
  EXPECT_EQ(Json(42).dump(0), "42");
  EXPECT_EQ(Json("hi").dump(0), "\"hi\"");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::nan("")).dump(0), "null");
  EXPECT_EQ(Json(1.0 / 0.0).dump(0), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(0), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(0), "\"\\u0001\"");
}

TEST(Json, CompactObjectAndArray) {
  Json obj = Json::object();
  obj.set("a", 1).set("b", Json::array().push(1).push("x"));
  EXPECT_EQ(obj.dump(0), "{\"a\":1,\"b\":[1,\"x\"]}");
  EXPECT_EQ(obj.size(), 2u);
}

TEST(Json, SetOverwritesExistingKey) {
  Json obj = Json::object();
  obj.set("k", 1);
  obj.set("k", 2);
  EXPECT_EQ(obj.dump(0), "{\"k\":2}");
}

TEST(Json, PrettyPrintIndents) {
  Json obj = Json::object();
  obj.set("a", 1);
  EXPECT_EQ(obj.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, TypeMisuseThrows) {
  Json num(1.0);
  EXPECT_THROW(num.set("k", 2), SimError);
  EXPECT_THROW(num.push(2), SimError);
}

TEST(Json, NumbersHelper) {
  EXPECT_EQ(Json::numbers({1.0, 2.5}).dump(0), "[1,2.5]");
}

TEST(JsonReport, RunReportRoundtripsToFile) {
  const core::SystemSpec spec = core::SystemSpec::from_config(Config());
  const TimeSeries power =
      vehicle::Powertrain(spec.vehicle)
          .power_trace(vehicle::generate(vehicle::CycleName::kNycc));
  core::ParallelMethodology m(spec);
  const sim::RunResult r = sim::Simulator(spec).run(m, power);

  const std::string path = ::testing::TempDir() + "otem_report.json";
  sim::write_run_report(path, spec, "parallel", r, true);

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  // Spot checks: keys and trace arrays present, syntax sane.
  EXPECT_NE(text.find("\"methodology\": \"parallel\""), std::string::npos);
  EXPECT_NE(text.find("\"qloss_percent\""), std::string::npos);
  EXPECT_NE(text.find("\"t_battery_k\""), std::string::npos);
  EXPECT_EQ(text.front(), '{');
  std::remove(path.c_str());
}

TEST(JsonReport, SummaryMatchesResult) {
  sim::RunResult r;
  r.duration_s = 10.0;
  r.qloss_percent = 0.5;
  r.average_power_w = 1234.0;
  const Json j = sim::run_result_to_json(r);
  const std::string text = j.dump(0);
  EXPECT_NE(text.find("\"qloss_percent\":0.5"), std::string::npos);
  EXPECT_NE(text.find("\"average_power_w\":1234"), std::string::npos);
}

TEST(JsonReport, SpecProvenance) {
  const core::SystemSpec spec = core::SystemSpec::from_config(Config());
  const std::string text = sim::system_spec_to_json(spec).dump(0);
  EXPECT_NE(text.find("\"series\":96"), std::string::npos);
  EXPECT_NE(text.find("\"capacitance_f\":25000"), std::string::npos);
}

// --- writer hardening -------------------------------------------------------

TEST(Json, WriterUsesShortEscapesForNamedControls) {
  EXPECT_EQ(Json("\b\f\n\r\t").dump(0), "\"\\b\\f\\n\\r\\t\"");
}

TEST(Json, WriterEscapesEveryControlCharacter) {
  for (int c = 0; c < 0x20; ++c) {
    const std::string text = Json(std::string(1, static_cast<char>(c))).dump(0);
    // Whatever the spelling (\uXXXX or a short form), no raw control
    // byte may survive into the emitted document.
    for (char byte : text)
      EXPECT_GE(static_cast<unsigned char>(byte), 0x20u)
          << "control 0x" << std::hex << c << " leaked into " << text;
  }
}

// --- parser -----------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse(" false ").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_DOUBLE_EQ(Json::parse("0").as_number(), 0.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, ObjectAndArrayStructure) {
  const Json doc = Json::parse(R"({"a":[1,2,{"b":null}],"c":"x"})");
  ASSERT_TRUE(doc.is_object());
  const Json* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->size(), 3u);
  EXPECT_DOUBLE_EQ(a->at(1).as_number(), 2.0);
  ASSERT_NE(a->at(2).find("b"), nullptr);
  EXPECT_TRUE(a->at(2).find("b")->is_null());
  EXPECT_EQ(doc.find("c")->as_string(), "x");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParse, RoundTripsEveryControlCharacter) {
  std::string raw;
  for (int c = 1; c < 0x20; ++c) raw.push_back(static_cast<char>(c));
  raw += "\"\\plain";
  EXPECT_EQ(Json::parse(Json(raw).dump(0)).as_string(), raw);
}

TEST(JsonParse, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(Json::parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");
  // Surrogate pair for U+1F600.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, DumpThenParseRoundTripsDocuments) {
  Json doc = Json::object();
  doc.set("name", "serve").set("n", 3).set("flag", true).set("none", Json());
  doc.set("xs", Json::numbers({1.0, 2.5, -0.125}));
  const std::string compact = doc.dump(0);
  EXPECT_EQ(Json::parse(compact).dump(0), compact);
  // Pretty output parses back to the same document too.
  EXPECT_EQ(Json::parse(doc.dump(2)).dump(0), compact);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), SimError);
  EXPECT_THROW(Json::parse("{\"a\":}"), SimError);
  EXPECT_THROW(Json::parse("[1,]"), SimError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), SimError);
  EXPECT_THROW(Json::parse("\"unterminated"), SimError);
  EXPECT_THROW(Json::parse("nul"), SimError);
  EXPECT_THROW(Json::parse("1 2"), SimError);    // trailing garbage
  EXPECT_THROW(Json::parse("[1] x"), SimError);  // trailing garbage
  EXPECT_THROW(Json::parse("\"\\ud83d\""), SimError);  // lone surrogate
  EXPECT_THROW(Json::parse("\"\\x\""), SimError);      // unknown escape
}

TEST(JsonParse, DepthGuardStopsHostileNesting) {
  const size_t over = static_cast<size_t>(Json::kMaxParseDepth) + 8;
  EXPECT_THROW(Json::parse(std::string(over, '[') + std::string(over, ']')),
               SimError);
  // Reasonable nesting is untouched by the guard.
  EXPECT_TRUE(
      Json::parse(std::string(10, '[') + std::string(10, ']')).is_array());
}

TEST(JsonParse, TypedReadersThrowOnMismatch) {
  EXPECT_THROW(Json::parse("1").as_string(), SimError);
  EXPECT_THROW(Json::parse("\"s\"").as_number(), SimError);
  EXPECT_THROW(Json::parse("[1]").at(1), SimError);
}

}  // namespace
}  // namespace otem
