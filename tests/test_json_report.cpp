// Tests for the JSON emitter and the run-report serialisation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/json.h"
#include "core/parallel_methodology.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(0), "null");
  EXPECT_EQ(Json(true).dump(0), "true");
  EXPECT_EQ(Json(false).dump(0), "false");
  EXPECT_EQ(Json(3.5).dump(0), "3.5");
  EXPECT_EQ(Json(42).dump(0), "42");
  EXPECT_EQ(Json("hi").dump(0), "\"hi\"");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::nan("")).dump(0), "null");
  EXPECT_EQ(Json(1.0 / 0.0).dump(0), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(0), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(0), "\"\\u0001\"");
}

TEST(Json, CompactObjectAndArray) {
  Json obj = Json::object();
  obj.set("a", 1).set("b", Json::array().push(1).push("x"));
  EXPECT_EQ(obj.dump(0), "{\"a\":1,\"b\":[1,\"x\"]}");
  EXPECT_EQ(obj.size(), 2u);
}

TEST(Json, SetOverwritesExistingKey) {
  Json obj = Json::object();
  obj.set("k", 1);
  obj.set("k", 2);
  EXPECT_EQ(obj.dump(0), "{\"k\":2}");
}

TEST(Json, PrettyPrintIndents) {
  Json obj = Json::object();
  obj.set("a", 1);
  EXPECT_EQ(obj.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, TypeMisuseThrows) {
  Json num(1.0);
  EXPECT_THROW(num.set("k", 2), SimError);
  EXPECT_THROW(num.push(2), SimError);
}

TEST(Json, NumbersHelper) {
  EXPECT_EQ(Json::numbers({1.0, 2.5}).dump(0), "[1,2.5]");
}

TEST(JsonReport, RunReportRoundtripsToFile) {
  const core::SystemSpec spec = core::SystemSpec::from_config(Config());
  const TimeSeries power =
      vehicle::Powertrain(spec.vehicle)
          .power_trace(vehicle::generate(vehicle::CycleName::kNycc));
  core::ParallelMethodology m(spec);
  const sim::RunResult r = sim::Simulator(spec).run(m, power);

  const std::string path = ::testing::TempDir() + "otem_report.json";
  sim::write_run_report(path, spec, "parallel", r, true);

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  // Spot checks: keys and trace arrays present, syntax sane.
  EXPECT_NE(text.find("\"methodology\": \"parallel\""), std::string::npos);
  EXPECT_NE(text.find("\"qloss_percent\""), std::string::npos);
  EXPECT_NE(text.find("\"t_battery_k\""), std::string::npos);
  EXPECT_EQ(text.front(), '{');
  std::remove(path.c_str());
}

TEST(JsonReport, SummaryMatchesResult) {
  sim::RunResult r;
  r.duration_s = 10.0;
  r.qloss_percent = 0.5;
  r.average_power_w = 1234.0;
  const Json j = sim::run_result_to_json(r);
  const std::string text = j.dump(0);
  EXPECT_NE(text.find("\"qloss_percent\":0.5"), std::string::npos);
  EXPECT_NE(text.find("\"average_power_w\":1234"), std::string::npos);
}

TEST(JsonReport, SpecProvenance) {
  const core::SystemSpec spec = core::SystemSpec::from_config(Config());
  const std::string text = sim::system_spec_to_json(spec).dump(0);
  EXPECT_NE(text.find("\"series\":96"), std::string::npos);
  EXPECT_NE(text.find("\"capacitance_f\":25000"), std::string::npos);
}

}  // namespace
}  // namespace otem
