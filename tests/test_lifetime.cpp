// Tests for the long-horizon lifetime projection.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "core/parallel_methodology.h"
#include "sim/lifetime.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem::sim {
namespace {

core::SystemSpec default_spec() {
  return core::SystemSpec::from_config(Config());
}

auto parallel_factory() {
  return [](const core::SystemSpec& s) {
    return std::make_unique<core::ParallelMethodology>(s);
  };
}

TimeSeries mission_power(const core::SystemSpec& spec) {
  return vehicle::Powertrain(spec.vehicle)
      .power_trace(vehicle::generate(vehicle::CycleName::kUs06));
}

TEST(Lifetime, ReachesEndOfLife) {
  const core::SystemSpec spec = default_spec();
  const LifetimeResult r = project_lifetime(
      spec, mission_power(spec), parallel_factory(), 12800.0);
  EXPECT_TRUE(r.reached_eol);
  EXPECT_GT(r.missions_to_eol, 100.0);
  EXPECT_GT(r.km_to_eol, 1000.0);
  EXPECT_NEAR(r.curve.back().capacity_loss_percent, 20.0, 1e-9);
}

TEST(Lifetime, CurveIsMonotone) {
  const core::SystemSpec spec = default_spec();
  const LifetimeResult r = project_lifetime(
      spec, mission_power(spec), parallel_factory(), 12800.0);
  for (size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GE(r.curve[i].missions, r.curve[i - 1].missions);
    EXPECT_GE(r.curve[i].capacity_loss_percent,
              r.curve[i - 1].capacity_loss_percent);
    EXPECT_LE(r.curve[i].capacity_ah, r.curve[i - 1].capacity_ah);
  }
}

TEST(Lifetime, DegradationFeedbackAccelerates) {
  // A faded pack ages faster per mission (higher C-rates), so the
  // per-mission loss in the LAST epoch exceeds the first's.
  const core::SystemSpec spec = default_spec();
  LifetimeOptions opt;
  opt.missions_per_epoch = 100.0;
  const LifetimeResult r = project_lifetime(
      spec, mission_power(spec), parallel_factory(), 12800.0, opt);
  ASSERT_GE(r.curve.size(), 3u);
  const auto& c = r.curve;
  const double first_rate =
      (c[1].capacity_loss_percent - c[0].capacity_loss_percent) /
      (c[1].missions - c[0].missions);
  const size_t last = c.size() - 1;
  const double last_rate =
      (c[last].capacity_loss_percent - c[last - 1].capacity_loss_percent) /
      std::max(c[last].missions - c[last - 1].missions, 1e-9);
  EXPECT_GT(last_rate, first_rate);
}

TEST(Lifetime, NaiveExtrapolationIsOptimistic) {
  // Because of the feedback, real lifetime is SHORTER than
  // 20 % / first-mission-loss.
  const core::SystemSpec spec = default_spec();
  const TimeSeries power = mission_power(spec);
  const LifetimeResult r =
      project_lifetime(spec, power, parallel_factory(), 12800.0);

  const Simulator sim(spec);
  core::ParallelMethodology m(spec);
  RunOptions ropt;
  ropt.record_trace = false;
  const RunResult fresh = sim.run(m, power, ropt);
  const double naive = 20.0 / fresh.qloss_percent;
  EXPECT_LT(r.missions_to_eol, naive);
}

TEST(Lifetime, AgelessMissionCapsEpochs) {
  // A zero-length idle mission accumulates ~no loss; the projection
  // must terminate at the epoch cap rather than loop forever.
  const core::SystemSpec spec = default_spec();
  const TimeSeries idle(1.0, std::vector<double>(10, 0.0));
  LifetimeOptions opt;
  opt.max_epochs = 5;
  const LifetimeResult r =
      project_lifetime(spec, idle, parallel_factory(), 100.0, opt);
  EXPECT_FALSE(r.reached_eol);
  EXPECT_LE(r.curve.size(), 6u);
}

TEST(Lifetime, InvalidOptionsThrow) {
  const core::SystemSpec spec = default_spec();
  LifetimeOptions opt;
  opt.missions_per_epoch = 0.5;
  EXPECT_THROW(project_lifetime(spec, mission_power(spec),
                                parallel_factory(), 100.0, opt),
               SimError);
}

}  // namespace
}  // namespace otem::sim
