// Tests for the common utility layer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/config.h"
#include "common/csv.h"
#include "common/error.h"
#include "common/interp.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timeseries.h"
#include "common/units.h"

namespace otem {
namespace {

// --- strings ---------------------------------------------------------------

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(strings::trim("  hello \t\n"), "hello");
  EXPECT_EQ(strings::trim(""), "");
  EXPECT_EQ(strings::trim("   "), "");
  EXPECT_EQ(strings::trim("a b"), "a b");
}

TEST(Strings, SplitKeepsEmptyPieces) {
  const auto parts = strings::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitTrimsPieces) {
  const auto parts = strings::split(" x ; y ", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "x");
  EXPECT_EQ(parts[1], "y");
}

TEST(Strings, ParseDoubleAcceptsScientific) {
  EXPECT_DOUBLE_EQ(strings::parse_double("2.5e3"), 2500.0);
  EXPECT_DOUBLE_EQ(strings::parse_double(" -0.125 "), -0.125);
}

TEST(Strings, ParseDoubleRejectsGarbage) {
  EXPECT_THROW(strings::parse_double("12abc"), SimError);
  EXPECT_THROW(strings::parse_double(""), SimError);
}

TEST(Strings, ParseLongRejectsFloats) {
  EXPECT_EQ(strings::parse_long("42"), 42);
  EXPECT_THROW(strings::parse_long("4.2"), SimError);
}

TEST(Strings, ToLowerAndStartsWith) {
  EXPECT_EQ(strings::to_lower("US06"), "us06");
  EXPECT_TRUE(strings::starts_with("battery.cell.v1", "battery."));
  EXPECT_FALSE(strings::starts_with("bat", "battery"));
}

// --- units ------------------------------------------------------------------

TEST(Units, TemperatureRoundtrip) {
  EXPECT_DOUBLE_EQ(units::celsius_to_kelvin(25.0), 298.15);
  EXPECT_DOUBLE_EQ(units::kelvin_to_celsius(units::celsius_to_kelvin(-7.0)),
                   -7.0);
}

TEST(Units, EnergyConversions) {
  EXPECT_DOUBLE_EQ(units::kwh_to_joule(1.0), 3.6e6);
  EXPECT_DOUBLE_EQ(units::joule_to_wh(3600.0), 1.0);
  EXPECT_DOUBLE_EQ(units::ah_to_coulomb(2.0), 7200.0);
}

TEST(Units, SpeedConversions) {
  EXPECT_NEAR(units::mph_to_mps(60.0), 26.82, 0.01);
  EXPECT_NEAR(units::kmh_to_mps(36.0), 10.0, 1e-12);
}

// --- config ------------------------------------------------------------------

TEST(Config, SetPairAndTypedGetters) {
  Config cfg;
  cfg.set_pair("battery.series = 96");
  cfg.set_pair("otem.w2=2.5e9");
  cfg.set_pair("flag=true");
  EXPECT_EQ(cfg.get_long("battery.series", 0), 96);
  EXPECT_DOUBLE_EQ(cfg.get_double("otem.w2", 0.0), 2.5e9);
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 7.0), 7.0);
}

TEST(Config, MalformedPairThrows) {
  Config cfg;
  EXPECT_THROW(cfg.set_pair("no-equals-sign"), SimError);
  EXPECT_THROW(cfg.set_pair("=value"), SimError);
}

TEST(Config, BadBoolThrows) {
  Config cfg;
  cfg.set_pair("flag=maybe");
  EXPECT_THROW(cfg.get_bool("flag", false), SimError);
}

TEST(Config, FromArgsIgnoresNonPairs) {
  const char* argv[] = {"prog", "--verbose", "a=1", "b=two"};
  const Config cfg = Config::from_args(4, argv);
  EXPECT_EQ(cfg.get_long("a", 0), 1);
  EXPECT_EQ(cfg.get_string("b", ""), "two");
  EXPECT_FALSE(cfg.has("--verbose"));
}

TEST(Config, FromFileParsesComments) {
  const std::string path = ::testing::TempDir() + "otem_cfg_test.txt";
  {
    std::ofstream f(path);
    f << "# a comment\n"
      << "x = 3.5   # trailing comment\n"
      << "\n"
      << "name=hello\n";
  }
  const Config cfg = Config::from_file(path);
  EXPECT_DOUBLE_EQ(cfg.get_double("x", 0.0), 3.5);
  EXPECT_EQ(cfg.get_string("name", ""), "hello");
  std::remove(path.c_str());
}

// --- rng ------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng rng(99);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, BelowIsBounded) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

// --- interp ------------------------------------------------------------------

TEST(Interp1D, LinearInterpolationAndClamping) {
  const Interp1D f({0.0, 1.0, 3.0}, {0.0, 10.0, 30.0});
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);
  EXPECT_DOUBLE_EQ(f(2.0), 20.0);
  EXPECT_DOUBLE_EQ(f(-5.0), 0.0);   // clamp left
  EXPECT_DOUBLE_EQ(f(99.0), 30.0);  // clamp right
}

TEST(Interp1D, DerivativePerSegment) {
  const Interp1D f({0.0, 1.0, 3.0}, {0.0, 10.0, 14.0});
  EXPECT_DOUBLE_EQ(f.derivative(0.5), 10.0);
  EXPECT_DOUBLE_EQ(f.derivative(2.0), 2.0);
  EXPECT_DOUBLE_EQ(f.derivative(10.0), 0.0);
}

TEST(Interp1D, RejectsNonIncreasingKnots) {
  EXPECT_THROW(Interp1D({0.0, 0.0}, {1.0, 2.0}), SimError);
  EXPECT_THROW(Interp1D({1.0}, {2.0}), SimError);
}

TEST(Interp2D, BilinearCorners) {
  const Interp2D f({0.0, 1.0}, {0.0, 1.0}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(f(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(f(0.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(1.0, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(f(1.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(f(0.5, 0.5), 2.5);
}

TEST(Interp2D, ClampsOutsideDomain) {
  const Interp2D f({0.0, 1.0}, {0.0, 1.0}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(f(-1.0, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(f(2.0, 2.0), 4.0);
}

// --- timeseries ----------------------------------------------------------------

TEST(TimeSeries, BasicStats) {
  const TimeSeries ts(1.0, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ts.mean(), 2.5);
  EXPECT_DOUBLE_EQ(ts.min(), 1.0);
  EXPECT_DOUBLE_EQ(ts.max(), 4.0);
  EXPECT_DOUBLE_EQ(ts.duration(), 3.0);
  EXPECT_DOUBLE_EQ(ts.integral(), 10.0);
  EXPECT_NEAR(ts.rms(), std::sqrt(30.0 / 4.0), 1e-12);
}

TEST(TimeSeries, MeanPositiveIgnoresRegen) {
  const TimeSeries ts(1.0, {10.0, -5.0, 20.0, -1.0});
  EXPECT_DOUBLE_EQ(ts.mean_positive(), 15.0);
}

TEST(TimeSeries, AtTimeInterpolatesAndClamps) {
  const TimeSeries ts(2.0, {0.0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(ts.at_time(1.0), 5.0);
  EXPECT_DOUBLE_EQ(ts.at_time(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.at_time(100.0), 20.0);
}

TEST(TimeSeries, RepeatedConcatenates) {
  const TimeSeries ts(1.0, {1.0, 2.0});
  const TimeSeries r = ts.repeated(3);
  ASSERT_EQ(r.size(), 6u);
  EXPECT_DOUBLE_EQ(r[4], 1.0);
}

TEST(TimeSeries, ResamplePreservesEndpointValues) {
  const TimeSeries ts(1.0, {0.0, 1.0, 2.0, 3.0});
  const TimeSeries r = ts.resampled(0.5);
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[1], 0.5);
  EXPECT_DOUBLE_EQ(r[r.size() - 1], 3.0);
}

TEST(TimeSeries, MappedAppliesFunction) {
  const TimeSeries ts(1.0, {1.0, -2.0});
  const TimeSeries m = ts.mapped([](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(m[0], 1.0);
  EXPECT_DOUBLE_EQ(m[1], 4.0);
}

TEST(TimeSeries, RejectsNonPositiveDt) {
  EXPECT_THROW(TimeSeries(0.0, {1.0}), SimError);
}

// --- csv ------------------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  CsvTable t({"a", "b"});
  t.add_row({"1", "x,y"});
  t.add_numeric_row({2.5, 3.0}, 1);
  std::ostringstream os;
  t.write(os);
  EXPECT_EQ(os.str(), "a,b\n1,\"x,y\"\n2.5,3.0\n");
}

TEST(Csv, QuotesEmbeddedQuotes) {
  CsvTable t({"v"});
  t.add_row({"say \"hi\""});
  std::ostringstream os;
  t.write(os);
  EXPECT_EQ(os.str(), "v\n\"say \"\"hi\"\"\"\n");
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), SimError);
}

TEST(CsvRead, RoundtripThroughWriter) {
  CsvTable t({"name", "value"});
  t.add_row({"plain", "1.5"});
  t.add_row({"with,comma", "2.5"});
  t.add_row({"with \"quote\"", "3.5"});
  std::ostringstream os;
  t.write(os);
  std::istringstream is(os.str());
  const CsvData d = read_csv(is);
  ASSERT_EQ(d.header.size(), 2u);
  ASSERT_EQ(d.rows.size(), 3u);
  EXPECT_EQ(d.rows[1][0], "with,comma");
  EXPECT_EQ(d.rows[2][0], "with \"quote\"");
  const auto values = d.numeric_column(1);
  EXPECT_DOUBLE_EQ(values[0], 1.5);
  EXPECT_DOUBLE_EQ(values[2], 3.5);
}

TEST(CsvRead, ColumnLookupCaseInsensitive) {
  std::istringstream is("Time, Speed\n0,1\n1,2\n");
  const CsvData d = read_csv(is);
  EXPECT_EQ(d.column("time"), 0u);
  EXPECT_EQ(d.column("SPEED"), 1u);
  EXPECT_THROW(d.column("missing"), SimError);
}

TEST(CsvRead, SkipsBlankLinesAndRejectsEmpty) {
  std::istringstream is("a\n\n1\n\n2\n");
  const CsvData d = read_csv(is);
  EXPECT_EQ(d.rows.size(), 2u);
  std::istringstream empty("");
  EXPECT_THROW(read_csv(empty), SimError);
}

TEST(CsvRead, NumericColumnRejectsText) {
  std::istringstream is("a,b\n1,x\n");
  const CsvData d = read_csv(is);
  EXPECT_THROW(d.numeric_column(1), SimError);
}

// --- logging -----------------------------------------------------------

TEST(Logging, LevelFilterRoundtrip) {
  const log::Level before = log::level();
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  // Filtered calls must be no-ops (nothing observable to assert beyond
  // not crashing; primarily exercises the template plumbing).
  log::debug("dropped ", 1);
  log::info("dropped ", 2.5);
  log::warn("dropped ", "three");
  log::set_level(log::Level::kOff);
  log::error("dropped even at error level");
  log::set_level(before);
}

// --- config duplicate-key detection -----------------------------------------

/// Run `fn` with otem::log captured to a temp file; returns the lines
/// it emitted. Restores the previous fd/level whatever happens.
std::string capture_log(const std::function<void()>& fn) {
  std::FILE* tmp = std::tmpfile();
  EXPECT_NE(tmp, nullptr);
  const int old_fd = log::fd();
  const log::Level old_level = log::level();
  log::set_fd(fileno(tmp));
  log::set_level(log::Level::kWarn);
  fn();
  log::set_fd(old_fd);
  log::set_level(old_level);
  std::rewind(tmp);
  std::string captured;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), tmp)) > 0)
    captured.append(buf, n);
  std::fclose(tmp);
  return captured;
}

TEST(Config, DuplicateKeyWarnsAndLastValueWins) {
  Config cfg;
  const std::string captured = capture_log([&] {
    cfg.set_pair("ambient_k=300");
    cfg.set_pair("ambient_k=310");
  });
  EXPECT_DOUBLE_EQ(cfg.get_double("ambient_k", 0.0), 310.0);
  EXPECT_NE(captured.find("duplicate config key 'ambient_k'"),
            std::string::npos)
      << captured;
  EXPECT_NE(captured.find("'300'"), std::string::npos) << captured;
  EXPECT_NE(captured.find("'310'"), std::string::npos) << captured;
}

TEST(Config, DuplicateKeyWarnsInReversedOrderToo) {
  Config cfg;
  const std::string captured = capture_log([&] {
    cfg.set_pair("ambient_k=310");
    cfg.set_pair("ambient_k=300");
  });
  // Last one wins regardless of which value came first ...
  EXPECT_DOUBLE_EQ(cfg.get_double("ambient_k", 0.0), 300.0);
  // ... and the warning names the value that was overridden.
  EXPECT_NE(captured.find("duplicate config key 'ambient_k'"),
            std::string::npos)
      << captured;
  EXPECT_NE(captured.find("value '310' overridden by '300'"),
            std::string::npos)
      << captured;
}

TEST(Config, RepeatedIdenticalValueIsSilent) {
  Config cfg;
  const std::string captured = capture_log([&] {
    cfg.set_pair("repeats=3");
    cfg.set_pair("repeats=3");
  });
  EXPECT_EQ(cfg.get_long("repeats", 0), 3);
  EXPECT_EQ(captured.find("duplicate"), std::string::npos) << captured;
}

// --- config consumption tracking -------------------------------------------

TEST(Config, UnusedKeysReportsUntouchedOverrides) {
  Config cfg;
  cfg.set_pair("battery.cells=96");
  cfg.set_pair("otem.horzion=40");  // deliberate typo: never read
  cfg.set_pair("ambient_k=303.15");
  EXPECT_EQ(cfg.get_long("battery.cells", 0), 96);
  EXPECT_DOUBLE_EQ(cfg.get_double("ambient_k", 0.0), 303.15);
  const std::vector<std::string> unused = cfg.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "otem.horzion");
}

TEST(Config, HasMarksKeyConsumed) {
  Config cfg;
  cfg.set_pair("trace_csv=/tmp/x.csv");
  EXPECT_TRUE(cfg.has("trace_csv"));
  EXPECT_TRUE(cfg.unused_keys().empty());
}

TEST(Config, CopiesShareConsumptionState) {
  // Subsystems receive the Config by value; reads through any copy must
  // count, or every forwarded key would be reported as a typo.
  Config cfg;
  cfg.set_pair("otem.horizon=12");
  const Config copy = cfg;
  EXPECT_EQ(copy.get_long("otem.horizon", 0), 12);
  EXPECT_TRUE(cfg.unused_keys().empty());
}

TEST(Config, FallbackReadStillCountsAsConsumption) {
  Config cfg;
  cfg.set_pair("repeats=3");
  // Reading a key that is absent is fine and marks nothing extra.
  EXPECT_EQ(cfg.get_long("missing", 7), 7);
  ASSERT_EQ(cfg.unused_keys().size(), 1u);
  EXPECT_EQ(cfg.unused_keys()[0], "repeats");
  EXPECT_EQ(cfg.get_long("repeats", 0), 3);
  EXPECT_TRUE(cfg.unused_keys().empty());
}

// --- error macros ----------------------------------------------------------

TEST(Error, RequireThrowsWithContext) {
  try {
    OTEM_REQUIRE(false, "the message");
    FAIL() << "should have thrown";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

}  // namespace
}  // namespace otem
