// Tests for the dense linear-algebra layer.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "optim/decomposition.h"
#include "optim/matrix.h"
#include "optim/vector_ops.h"

namespace otem::optim {
namespace {

Matrix random_spd(size_t n, Rng& rng) {
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  Matrix spd = a.transposed() * a;
  for (size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(Matrix, InitializerListAndAccess) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), SimError);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Matrix d = Matrix::diagonal({2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
}

TEST(Matrix, ProductAgainstHandComputed) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, SimError);
  const Vector v{1.0, 2.0};
  EXPECT_THROW(a * v, SimError);
}

TEST(Matrix, TransposeRoundtrip) {
  Rng rng(3);
  Matrix a(4, 6);
  for (size_t r = 0; r < 4; ++r)
    for (size_t c = 0; c < 6; ++c) a(r, c) = rng.uniform(-2.0, 2.0);
  const Matrix att = a.transposed().transposed();
  EXPECT_NEAR((a - att).max_abs(), 0.0, 0.0);
}

TEST(Matrix, TransposeMultiplyAddMatchesExplicit) {
  Rng rng(11);
  Matrix a(3, 5);
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 5; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  Vector x{1.0, -2.0, 0.5};
  Vector y(5, 1.0);
  Vector expected = y;
  const Vector atx = a.transposed() * x;
  for (size_t i = 0; i < 5; ++i) expected[i] += 2.0 * atx[i];
  a.transpose_multiply_add(x, 2.0, y);
  for (size_t i = 0; i < 5; ++i) EXPECT_NEAR(y[i], expected[i], 1e-14);
}

TEST(Matrix, MultiplyIntoMatchesOperator) {
  Rng rng(21);
  Matrix a(4, 6), b(6, 3);
  for (size_t r = 0; r < 4; ++r)
    for (size_t c = 0; c < 6; ++c) a(r, c) = rng.uniform(-2.0, 2.0);
  for (size_t r = 0; r < 6; ++r)
    for (size_t c = 0; c < 3; ++c) b(r, c) = rng.uniform(-2.0, 2.0);
  const Matrix expected = a * b;
  Matrix out;
  a.multiply_into(b, out);
  EXPECT_EQ(out.rows(), expected.rows());
  EXPECT_EQ(out.cols(), expected.cols());
  EXPECT_EQ((out - expected).max_abs(), 0.0);  // bit-identical
  // Reuse with stale contents of the right shape: must still be exact.
  a.multiply_into(b, out);
  EXPECT_EQ((out - expected).max_abs(), 0.0);
}

TEST(Matrix, MultiplyIntoRejectsAliasAndShapeMismatch) {
  Matrix a(2, 2, 1.0);
  Matrix b(3, 2, 1.0);
  Matrix out;
  EXPECT_THROW(a.multiply_into(b, out), SimError);
  EXPECT_THROW(a.multiply_into(a, a), SimError);
}

TEST(Matrix, MultiplyVectorIntoMatchesOperator) {
  Rng rng(22);
  Matrix a(5, 4);
  for (size_t r = 0; r < 5; ++r)
    for (size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  Vector v{0.5, -1.5, 2.0, 0.25};
  const Vector expected = a * v;
  Vector out(17, 9.0);  // wrong size and junk contents on purpose
  a.multiply_vector_into(v, out);
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], expected[i]);
}

TEST(Matrix, GramIntoMatchesTransposeProduct) {
  Rng rng(23);
  Matrix a(7, 4);
  for (size_t r = 0; r < 7; ++r)
    for (size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  const Matrix expected = a.transposed() * a;
  Matrix out;
  a.gram_into(out);
  EXPECT_EQ((out - expected).max_abs(), 0.0);  // same accumulation order
  EXPECT_TRUE(out.is_symmetric(0.0));
}

TEST(Matrix, AddScaledAndReshape) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{10.0, 20.0}, {30.0, 40.0}};
  a.add_scaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 24.0);
  a.reshape(3, 2);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 2u);
  EXPECT_EQ(a.max_abs(), 0.0);
  const Matrix c(2, 3, 1.0);
  EXPECT_THROW(a.add_scaled(c, 1.0), SimError);
}

TEST(Cholesky, SolveInPlaceMatchesSolve) {
  Rng rng(47);
  const Matrix a = random_spd(12, rng);
  Vector b(12);
  for (auto& v : b) v = rng.uniform(-3.0, 3.0);
  const Cholesky chol(a);
  const Vector expected = chol.solve(b);
  Vector x = b;
  chol.solve_in_place(x);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], expected[i]);
}

TEST(Cholesky, RefactorReusesStorageAndStaysCorrect) {
  Rng rng(48);
  Cholesky chol;
  for (int round = 0; round < 3; ++round) {
    const Matrix a = random_spd(8, rng);
    chol.factor(a);
    Vector x_true(8);
    for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
    const Vector b = a * x_true;
    const Vector x = chol.solve(b);
    for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(Matrix, SymmetryCheck) {
  Matrix s{{1.0, 2.0}, {2.0, 5.0}};
  EXPECT_TRUE(s.is_symmetric());
  s(0, 1) = 2.1;
  EXPECT_FALSE(s.is_symmetric(1e-6));
}

class CholeskySizes : public ::testing::TestWithParam<int> {};

TEST_P(CholeskySizes, SolveRecoversKnownSolution) {
  const size_t n = static_cast<size_t>(GetParam());
  Rng rng(100 + n);
  const Matrix a = random_spd(n, rng);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.uniform(-3.0, 3.0);
  const Vector b = a * x_true;
  const Vector x = Cholesky(a).solve(b);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60));

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky{a}, SimError);
}

TEST(Cholesky, LogDetMatchesKnown) {
  const Matrix a{{4.0, 0.0}, {0.0, 9.0}};
  EXPECT_NEAR(Cholesky(a).log_det(), std::log(36.0), 1e-12);
}

class LuSizes : public ::testing::TestWithParam<int> {};

TEST_P(LuSizes, SolveRecoversKnownSolution) {
  const size_t n = static_cast<size_t>(GetParam());
  Rng rng(200 + n);
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-2.0, 2.0);
  for (size_t i = 0; i < n; ++i) a(i, i) += 0.5;  // keep well-conditioned
  Vector x_true(n);
  for (auto& v : x_true) v = rng.uniform(-3.0, 3.0);
  const Vector b = a * x_true;
  const Vector x = Lu(a).solve(b);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizes,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60));

TEST(Lu, DeterminantOfKnownMatrix) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  EXPECT_NEAR(Lu(a).det(), 5.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = Lu(a).solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(Lu{a}, SimError);
}

TEST(VectorOps, DotNormAxpy) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(norm_inf(b), 6.0);
  EXPECT_NEAR(norm2(a), std::sqrt(14.0), 1e-14);
  Vector y = b;
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(VectorOps, ProjectBoxClamps) {
  Vector x{-1.0, 0.5, 3.0};
  project_box({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}, x);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_DOUBLE_EQ(x[2], 1.0);
}

TEST(VectorOps, BoxViolationMeasuresWorstSide) {
  EXPECT_DOUBLE_EQ(
      box_violation({0.0, 0.0}, {1.0, 1.0}, {-0.5, 1.2}), 0.5);
  EXPECT_DOUBLE_EQ(box_violation({0.0}, {1.0}, {0.3}), 0.0);
}

TEST(VectorOps, ProjectedGradientNormZeroAtBoundMinimum) {
  // Minimum at the lower bound with positive gradient: stationary.
  const Vector lo{0.0}, hi{1.0}, x{0.0}, g{5.0};
  EXPECT_DOUBLE_EQ(projected_gradient_norm(lo, hi, x, g), 0.0);
  // Same gradient in the interior: not stationary.
  EXPECT_GT(projected_gradient_norm(lo, hi, {0.5}, g), 0.0);
}

}  // namespace
}  // namespace otem::optim
