// Property-based sweeps over the battery model: invariants that must
// hold at EVERY operating point, checked on (SoC x temperature x power)
// grids and randomised scenarios.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "battery/aging.h"
#include "battery/battery_model.h"
#include "common/rng.h"

namespace otem::battery {
namespace {

PackModel default_pack() { return PackModel(PackParams{}); }

// ---------------------------------------------------------------------------
// Grid sweep: SoC x temperature.

class SocTempGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SocTempGrid, ResistancePositiveAndBounded) {
  const auto [soc, temp] = GetParam();
  const PackModel pack = default_pack();
  const double r = pack.internal_resistance(soc, temp);
  EXPECT_GT(r, 0.0);
  EXPECT_LT(r, 10.0);  // a 10-ohm pack would be broken
}

TEST_P(SocTempGrid, PowerSolveRoundtripsAcrossPowers) {
  const auto [soc, temp] = GetParam();
  const PackModel pack = default_pack();
  const double pmax = pack.max_discharge_power(soc, temp);
  for (double frac : {-0.5, -0.1, 0.05, 0.3, 0.7, 0.95}) {
    const double p = frac * pmax;
    const PowerSolve s = pack.current_for_power(soc, temp, p);
    ASSERT_TRUE(s.feasible) << "frac " << frac;
    EXPECT_NEAR(s.terminal_voltage * s.current_a, p,
                std::abs(p) * 1e-8 + 1e-6);
  }
}

TEST_P(SocTempGrid, MaxPowerIsTheFeasibilityBoundary) {
  const auto [soc, temp] = GetParam();
  const PackModel pack = default_pack();
  const double pmax = pack.max_discharge_power(soc, temp);
  EXPECT_TRUE(pack.current_for_power(soc, temp, pmax * 0.999).feasible);
  EXPECT_FALSE(pack.current_for_power(soc, temp, pmax * 1.001).feasible);
}

TEST_P(SocTempGrid, HeatNonNegativeOnDischarge) {
  const auto [soc, temp] = GetParam();
  const PackModel pack = default_pack();
  // Discharge always heats (Joule and entropic terms both positive).
  for (double i : {5.0, 40.0, 150.0}) {
    EXPECT_GE(pack.heat_generation(soc, temp, i), 0.0)
        << "i=" << i << " soc=" << soc << " T=" << temp;
  }
  // Charging at moderate current can be mildly endothermic (the
  // entropic term flips sign — real Li-ion behaviour), but never by
  // more than the entropic term itself; at high current Joule wins.
  const double kappa =
      pack.params().cell.dvoc_dtemp * pack.params().series;
  EXPECT_GE(pack.heat_generation(soc, temp, -40.0),
            -40.0 * temp * kappa - 1e-9);
  EXPECT_GE(pack.heat_generation(soc, temp, -150.0), 0.0);
}

TEST_P(SocTempGrid, EnergySplitIdentity) {
  const auto [soc, temp] = GetParam();
  const PackModel pack = default_pack();
  for (double i : {-80.0, -10.0, 25.0, 120.0}) {
    const auto split = pack.energy_for_step(soc, temp, i, 3.0);
    const double chem = pack.open_circuit_voltage(soc) * i * 3.0;
    EXPECT_NEAR(chem, split.terminal_j + split.loss_j,
                std::abs(chem) * 1e-9 + 1e-9);
    EXPECT_GE(split.loss_j, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SocTempGrid,
    ::testing::Combine(::testing::Values(25.0, 40.0, 60.0, 80.0, 95.0),
                       ::testing::Values(273.15, 288.15, 298.15, 313.15,
                                         328.15)));

// ---------------------------------------------------------------------------
// Coulomb counting.

TEST(BatteryProperty, CoulombCountingIsExactUnderConstantCurrent) {
  const PackModel pack = default_pack();
  // Many small steps == one big step for constant current.
  double soc_small = 90.0;
  for (int k = 0; k < 600; ++k)
    soc_small = pack.step_soc(soc_small, 30.0, 1.0);
  const double soc_big = pack.step_soc(90.0, 30.0, 600.0);
  EXPECT_NEAR(soc_small, soc_big, 1e-9);
}

TEST(BatteryProperty, ChargeDischargeSymmetry) {
  const PackModel pack = default_pack();
  double soc = 50.0;
  soc = pack.step_soc(soc, 40.0, 120.0);
  soc = pack.step_soc(soc, -40.0, 120.0);
  EXPECT_NEAR(soc, 50.0, 1e-9);
}

TEST(BatteryProperty, FullPackTakesHoursToDrainAtOneC) {
  const PackModel pack = default_pack();
  const double i_1c = pack.capacity_ah();  // 1C in amps
  const double soc_after_1h = pack.step_soc(100.0, i_1c, 3600.0);
  EXPECT_NEAR(soc_after_1h, 0.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Randomised consistency (seeded).

TEST(BatteryProperty, RandomisedSolveInverse) {
  const PackModel pack = default_pack();
  Rng rng(77);
  for (int trial = 0; trial < 500; ++trial) {
    const double soc = rng.uniform(10.0, 99.0);
    const double temp = rng.uniform(270.0, 330.0);
    const double i = rng.uniform(-200.0, 200.0);
    const double v = pack.terminal_voltage(soc, temp, i);
    const double p = v * i;
    const PowerSolve s = pack.current_for_power(soc, temp, p);
    ASSERT_TRUE(s.feasible);
    // current_for_power picks the high-voltage branch; currents on
    // that branch must reproduce themselves.
    const double voc = pack.open_circuit_voltage(soc);
    const double r = pack.internal_resistance(soc, temp);
    if (i < voc / (2.0 * r)) {
      EXPECT_NEAR(s.current_a, i, std::abs(i) * 1e-7 + 1e-7);
    }
  }
}

// ---------------------------------------------------------------------------
// Ageing model properties.

class FadeTempSweep : public ::testing::TestWithParam<double> {};

TEST_P(FadeTempSweep, ArrheniusMonotoneInTemperature) {
  const CapacityFadeModel fade((CellParams()));
  const double t = GetParam();
  EXPECT_LT(fade.loss_rate_percent_per_s(3.0, t),
            fade.loss_rate_percent_per_s(3.0, t + 5.0));
}

INSTANTIATE_TEST_SUITE_P(Temps, FadeTempSweep,
                         ::testing::Values(273.15, 283.15, 298.15, 308.15,
                                           318.15, 328.15));

TEST(FadeProperty, MonotoneInCurrent) {
  const CapacityFadeModel fade((CellParams()));
  double prev = 0.0;
  for (double i = 0.5; i < 10.0; i += 0.5) {
    const double rate = fade.loss_rate_percent_per_s(i, 300.0);
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

TEST(FadeProperty, ChargingNeverAges) {
  const CapacityFadeModel fade((CellParams()));
  for (double i : {-0.1, -1.0, -10.0}) {
    EXPECT_DOUBLE_EQ(fade.loss_rate_percent_per_s(i, 320.0), 0.0);
    EXPECT_DOUBLE_EQ(fade.loss_rate_from_pack_current(i * 16, 16, 320.0),
                     0.0);
  }
}

TEST(FadeProperty, AdditiveOverTime) {
  const CapacityFadeModel fade((CellParams()));
  const double whole = fade.loss_for_step(4.0, 310.0, 100.0);
  double parts = 0.0;
  for (int k = 0; k < 100; ++k) parts += fade.loss_for_step(4.0, 310.0, 1.0);
  EXPECT_NEAR(whole, parts, whole * 1e-12);
}

TEST(FadeProperty, LifetimeInverselyProportionalToLoss) {
  const CapacityFadeModel fade((CellParams()));
  EXPECT_NEAR(fade.missions_to_end_of_life(0.01) /
                  fade.missions_to_end_of_life(0.02),
              2.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Temperature sensitivity direction (Section II-A: hot = efficient).

TEST(BatteryProperty, HotterPackDeliversPowerWithLessLoss) {
  const PackModel pack = default_pack();
  const double p = 30000.0;
  const PowerSolve cold = pack.current_for_power(70.0, 278.15, p);
  const PowerSolve hot = pack.current_for_power(70.0, 318.15, p);
  // Same power at lower current*... the current is nearly the same but
  // the resistive loss is smaller when hot.
  const double loss_cold = cold.current_a * cold.current_a *
                           pack.internal_resistance(70.0, 278.15);
  const double loss_hot =
      hot.current_a * hot.current_a * pack.internal_resistance(70.0, 318.15);
  EXPECT_LT(loss_hot, loss_cold);
}

TEST(BatteryProperty, MaxPowerGrowsWithTemperature) {
  const PackModel pack = default_pack();
  EXPECT_GT(pack.max_discharge_power(70.0, 318.15),
            pack.max_discharge_power(70.0, 278.15));
}

}  // namespace
}  // namespace otem::battery
