// Tests for the active battery cooling system model (Eqs. 14-17).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "thermal/cooling_system.h"

namespace otem::thermal {
namespace {

CoolingSystem default_system() { return CoolingSystem(CoolingParams{}); }

constexpr double kAmbient = 298.15;

TEST(Thermal, EquilibriumSatisfiesSteadyState) {
  const CoolingSystem sys = default_system();
  const double q = 2000.0;
  const double ti = 295.0;
  const ThermalState eq = sys.equilibrium(q, ti);
  double dtb = 1.0, dtc = 1.0;
  sys.derivatives(eq, q, ti, dtb, dtc);
  EXPECT_NEAR(dtb, 0.0, 1e-10);
  EXPECT_NEAR(dtc, 0.0, 1e-10);
  EXPECT_GT(eq.t_battery_k, eq.t_coolant_k);  // heat flows battery->coolant
  EXPECT_GT(eq.t_coolant_k, ti);              // and coolant->inlet flow
}

TEST(Thermal, TrapezoidalStepConvergesToEquilibrium) {
  const CoolingSystem sys = default_system();
  const double q = 1500.0;
  const double ti = 290.0;
  ThermalState s{320.0, 315.0};
  for (int k = 0; k < 20000; ++k) s = sys.step(s, q, ti, 1.0);
  const ThermalState eq = sys.equilibrium(q, ti);
  EXPECT_NEAR(s.t_battery_k, eq.t_battery_k, 1e-6);
  EXPECT_NEAR(s.t_coolant_k, eq.t_coolant_k, 1e-6);
}

TEST(Thermal, TrapezoidalMatchesRk4SmallSteps) {
  const CoolingSystem sys = default_system();
  ThermalState trap{305.0, 300.0};
  ThermalState rk = trap;
  const double q = 3000.0;
  const double ti = 285.0;
  for (int k = 0; k < 600; ++k) {
    trap = sys.step(trap, q, ti, 1.0);
    rk = sys.step_rk4(rk, q, ti, 1.0);
  }
  EXPECT_NEAR(trap.t_battery_k, rk.t_battery_k, 0.05);
  EXPECT_NEAR(trap.t_coolant_k, rk.t_coolant_k, 0.05);
}

TEST(Thermal, StepMatrixReproducesStep) {
  const CoolingSystem sys = default_system();
  const StepMatrix m = sys.step_matrix(1.0);
  const ThermalState s{310.0, 304.0};
  const double q = 2500.0, ti = 292.0;
  const ThermalState next = sys.step(s, q, ti, 1.0);
  EXPECT_NEAR(next.t_battery_k,
              m.m00 * s.t_battery_k + m.m01 * s.t_coolant_k + m.bi0 * ti +
                  m.bq0 * q,
              1e-12);
  EXPECT_NEAR(next.t_coolant_k,
              m.m10 * s.t_battery_k + m.m11 * s.t_coolant_k + m.bi1 * ti +
                  m.bq1 * q,
              1e-12);
}

TEST(Thermal, HeatRaisesBatteryTemperature) {
  const CoolingSystem sys = default_system();
  const ThermalState s{298.0, 298.0};
  const ThermalState hot = sys.step(s, 5000.0, 298.0, 10.0);
  EXPECT_GT(hot.t_battery_k, 298.0);
  const ThermalState idle = sys.step(s, 0.0, 298.0, 10.0);
  EXPECT_NEAR(idle.t_battery_k, 298.0, 1e-9);
}

TEST(Thermal, ColdInletCoolsBattery) {
  const CoolingSystem sys = default_system();
  ThermalState s{310.0, 308.0};
  const ThermalState cooled = sys.step(s, 0.0, 280.0, 30.0);
  const ThermalState idle = sys.step(s, 0.0, 308.0, 30.0);
  EXPECT_LT(cooled.t_battery_k, idle.t_battery_k);
}

TEST(Thermal, EnergyBalanceOverStep) {
  // Battery + coolant lump energy change equals heat in minus heat
  // advected out by the flow (midpoint convention of Eq. 17).
  const CoolingParams p;
  const CoolingSystem sys(p);
  const ThermalState s{305.0, 300.0};
  const double q = 2000.0, ti = 290.0, dt = 1.0;
  const ThermalState n = sys.step(s, q, ti, dt);
  const double stored = p.battery_heat_capacity * (n.t_battery_k - s.t_battery_k) +
                        p.coolant_heat_capacity * (n.t_coolant_k - s.t_coolant_k);
  const double tc_mid = 0.5 * (s.t_coolant_k + n.t_coolant_k);
  const double advected = p.flow_heat_capacity_rate * (tc_mid - ti) * dt;
  EXPECT_NEAR(stored, q * dt - advected, 1e-6);
}

TEST(Thermal, PassiveInletBetweenCoolantAndAmbient) {
  const CoolingSystem sys = default_system();
  const double ti = sys.passive_inlet(320.0, kAmbient);
  EXPECT_LT(ti, 320.0);
  EXPECT_GT(ti, kAmbient);
  // At ambient coolant, passive does nothing.
  EXPECT_NEAR(sys.passive_inlet(kAmbient, kAmbient), kAmbient, 1e-12);
}

TEST(Thermal, CoolerPowerInverseRoundtrip) {
  const CoolingSystem sys = default_system();
  for (double pc : {0.0, 500.0, 2000.0, 5000.0}) {
    const double ti = sys.inlet_for_power(315.0, kAmbient, pc);
    if (ti > sys.params().min_inlet_temp_k + 1e-9) {
      EXPECT_NEAR(sys.cooler_power(315.0, kAmbient, ti), pc, 1e-9);
    }
  }
}

TEST(Thermal, CoolerPowerZeroAbovePassiveInlet) {
  const CoolingSystem sys = default_system();
  const double passive = sys.passive_inlet(315.0, kAmbient);
  EXPECT_DOUBLE_EQ(sys.cooler_power(315.0, kAmbient, passive + 1.0), 0.0);
}

TEST(Thermal, MinFeasibleInletRespectsRefrigerantFloor) {
  CoolingParams p;
  p.max_cooler_power_w = 1e9;  // unconstrained by power
  const CoolingSystem sys(p);
  EXPECT_DOUBLE_EQ(sys.min_feasible_inlet(310.0, kAmbient),
                   p.min_inlet_temp_k);
}

TEST(Thermal, PulldownPerWattMatchesParams) {
  const CoolingParams p;
  const CoolingSystem sys(p);
  EXPECT_DOUBLE_EQ(sys.pulldown_per_watt(),
                   p.cooler_efficiency / p.flow_heat_capacity_rate);
}

TEST(Thermal, InvalidParamsThrow) {
  Config cfg;
  cfg.set_pair("thermal.cooler_efficiency=0");
  EXPECT_THROW(CoolingParams::from_config(cfg), SimError);
  Config cfg2;
  cfg2.set_pair("thermal.passive_effectiveness=1.5");
  EXPECT_THROW(CoolingParams::from_config(cfg2), SimError);
}

TEST(Thermal, StepMatrixStableForLargeSteps) {
  // Crank-Nicolson is A-stable: even dt = 100 s must not blow up.
  const CoolingSystem sys = default_system();
  ThermalState s{400.0, 300.0};
  for (int k = 0; k < 100; ++k) s = sys.step(s, 0.0, 298.0, 100.0);
  EXPECT_NEAR(s.t_battery_k, 298.0, 0.5);
}

class ThermalHeatSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThermalHeatSweep, EquilibriumTemperatureScalesWithHeat) {
  const CoolingParams p;
  const CoolingSystem sys(p);
  const double q = GetParam();
  const ThermalState eq = sys.equilibrium(q, 298.0);
  EXPECT_NEAR(eq.t_battery_k - 298.0,
              q / p.flow_heat_capacity_rate + q / p.heat_transfer_w_k,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(HeatLevels, ThermalHeatSweep,
                         ::testing::Values(0.0, 500.0, 1000.0, 2000.0,
                                           4000.0, 8000.0));

}  // namespace
}  // namespace otem::thermal
