// Behavioural tests of the OTEM controller in closed loop: the control
// POLICIES the paper claims (TEB preparation, constraint compliance,
// weight response), beyond the numerical correctness covered by
// test_mpc_problem.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/forecast.h"
#include "core/otem/otem_methodology.h"
#include "sim/simulator.h"

namespace otem::core {
namespace {

SystemSpec default_spec() { return SystemSpec::from_config(Config()); }

MpcOptions fast_mpc(size_t horizon = 15) {
  MpcOptions o;
  o.horizon = horizon;
  return o;
}

OtemSolverOptions fast_solver() {
  OtemSolverOptions s;
  s.al.adam.max_iterations = 80;
  s.al.lbfgs.max_iterations = 12;
  s.al.max_outer_iterations = 3;
  return s;
}

/// Load trace: quiet, one big sustained peak, quiet.
TimeSeries peak_trace(size_t quiet, size_t peak_len, double peak_w) {
  std::vector<double> v;
  v.insert(v.end(), quiet, 2000.0);
  v.insert(v.end(), peak_len, peak_w);
  v.insert(v.end(), quiet, 2000.0);
  return TimeSeries(1.0, std::move(v));
}

TEST(OtemBehaviour, PreChargesBankBeforeKnownPeak) {
  // The sharpest TEB test: a peak the battery CANNOT serve alone (C6
  // caps it at 50 kW) arrives with the bank nearly at the C5 floor.
  // Serving the peak feasibly REQUIRES charging the bank during the
  // quiet lead-in — exactly the paper's "pre-charge the ultracapacitor
  // ... before utilizing the HEES".
  // Preparation needs ~0.8 MJ of charge at <= ~48 kW of battery
  // authority, i.e. ~18 s of lead time — the horizon must cover it
  // (with a 15-step window the task is infeasible BY CONSTRUCTION; see
  // bench/ablation_horizon for that trade-off).
  SystemSpec spec = default_spec();
  spec.hybrid.max_battery_power_w = 50000.0;
  const sim::Simulator sim(spec);
  OtemMethodology otem(spec, fast_mpc(30), OtemSolverOptions());
  const TimeSeries load = peak_trace(60, 25, 80000.0);

  sim::RunOptions opt;
  opt.initial.soe_percent = 23.0;  // barely above the 20 % floor
  const sim::RunResult r = sim.run(otem, load, opt);

  // The bank was charged ahead of the peak and spent across it.
  const double soe_at_peak_start = r.trace.soe_percent[59];
  const double soe_at_peak_end = r.trace.soe_percent[84];
  EXPECT_GT(soe_at_peak_start, 25.5);
  EXPECT_LT(soe_at_peak_end, soe_at_peak_start - 1.0);
  // The bank carries the share the battery cannot.
  double cap_peak = 0.0;
  for (size_t k = 60; k < 85; ++k) cap_peak += r.trace.p_cap_w[k];
  EXPECT_GT(cap_peak / 25.0, 20000.0);

  // Preparation is what makes the peak (nearly) servable: an otherwise
  // identical controller WITHOUT route knowledge cannot pre-charge and
  // suffers at least as many physical clamps.
  OtemMethodology blind(spec, fast_mpc(30), OtemSolverOptions(),
                        std::make_unique<PersistenceForecast>());
  const sim::RunResult rb = sim.run(blind, load, opt);
  EXPECT_LT(r.unserved_energy_j, 0.5 * rb.unserved_energy_j);
  EXPECT_GT(soe_at_peak_start, rb.trace.soe_percent[59] + 1.5);
}

TEST(OtemBehaviour, BankCarriesLargeShareOfPeak) {
  const SystemSpec spec = default_spec();
  const sim::Simulator sim(spec);
  OtemMethodology otem(spec, fast_mpc(), fast_solver());
  const TimeSeries load = peak_trace(40, 20, 60000.0);
  const sim::RunResult r = sim.run(otem, load);
  double cap_peak = 0.0;
  for (size_t k = 40; k < 60; ++k) cap_peak += r.trace.p_cap_w[k];
  cap_peak /= 20.0;
  EXPECT_GT(cap_peak, 20000.0);  // at least a third of the peak
}

TEST(OtemBehaviour, HotPackGetsCooledTowardsSafeBand) {
  const SystemSpec spec = default_spec();
  const sim::Simulator sim(spec);
  OtemMethodology otem(spec, fast_mpc(), fast_solver());
  sim::RunOptions opt;
  opt.initial.t_battery_k = spec.thermal.max_battery_temp_k + 2.0;
  opt.initial.t_coolant_k = opt.initial.t_battery_k - 1.0;
  const TimeSeries load(1.0, std::vector<double>(240, 15000.0));
  const sim::RunResult r = sim.run(otem, load, opt);
  // Over four minutes the violation must be resolved.
  EXPECT_LT(r.final_state.t_battery_k, spec.thermal.max_battery_temp_k);
}

TEST(OtemBehaviour, LargerLifetimeWeightCoolsMore) {
  const SystemSpec spec = default_spec();
  const sim::Simulator sim(spec);
  const TimeSeries load(1.0, std::vector<double>(300, 30000.0));

  auto run_with_w2 = [&](double w2) {
    MpcOptions mpc = fast_mpc();
    mpc.weights.w2 = w2;
    OtemMethodology otem(spec, mpc, fast_solver());
    sim::RunOptions opt;
    opt.initial.t_battery_k = 308.0;
    opt.initial.t_coolant_k = 307.0;
    return sim.run(otem, load, opt);
  };

  const sim::RunResult light = run_with_w2(1e8);
  const sim::RunResult heavy = run_with_w2(1e10);
  EXPECT_GT(heavy.energy_cooling_j, light.energy_cooling_j);
  EXPECT_LE(heavy.qloss_percent, light.qloss_percent);
}

TEST(OtemBehaviour, ZeroLifetimeWeightStillHonoursC1) {
  SystemSpec spec = default_spec();
  const sim::Simulator sim(spec);
  MpcOptions mpc = fast_mpc();
  mpc.weights.w2 = 0.0;
  mpc.terminal_aging_tail_s = 0.0;
  OtemMethodology otem(spec, mpc, fast_solver());
  const TimeSeries load(1.0, std::vector<double>(600, 35000.0));
  const sim::RunResult r = sim.run(otem, load);
  // Pure energy minimisation must still respect the safety constraint.
  EXPECT_LT(r.max_t_battery_k, spec.thermal.max_battery_temp_k + 0.5);
}

TEST(OtemBehaviour, PersistenceForecastDegradesGracefully) {
  const SystemSpec spec = default_spec();
  const sim::Simulator sim(spec);
  const TimeSeries load = peak_trace(50, 25, 55000.0);

  OtemMethodology informed(spec, fast_mpc(), fast_solver());
  OtemMethodology blind(spec, fast_mpc(), fast_solver(),
                        std::make_unique<PersistenceForecast>());
  const sim::RunResult ri = sim.run(informed, load);
  const sim::RunResult rb = sim.run(blind, load);

  // The blind controller still works (no thermal violations, load
  // served) — it just cannot prepare, so it does no better.
  EXPECT_LT(rb.max_t_battery_k, spec.thermal.max_battery_temp_k + 0.5);
  EXPECT_LE(ri.qloss_percent, rb.qloss_percent * 1.05);
}

TEST(OtemBehaviour, NoisyForecastCloseToPerfect) {
  const SystemSpec spec = default_spec();
  const sim::Simulator sim(spec);
  const TimeSeries load = peak_trace(50, 25, 55000.0);

  OtemMethodology perfect(spec, fast_mpc(), fast_solver());
  OtemMethodology noisy(spec, fast_mpc(), fast_solver(),
                        std::make_unique<NoisyForecast>(5, 0.10, 1000.0));
  const sim::RunResult rp = sim.run(perfect, load);
  const sim::RunResult rn = sim.run(noisy, load);
  // 10 % forecast noise costs only a little. Capacity loss on this
  // short mission is near zero for both (the bank carries most of it),
  // so compare with an absolute allowance rather than a ratio.
  EXPECT_LT(rn.qloss_percent, rp.qloss_percent + 5e-5);
  EXPECT_LT(rn.energy_hees_j, rp.energy_hees_j * 1.15);
  EXPECT_LT(rn.max_t_battery_k, spec.thermal.max_battery_temp_k + 0.5);
}

TEST(OtemBehaviour, RegenChargesTheBank) {
  const SystemSpec spec = default_spec();
  const sim::Simulator sim(spec);
  OtemMethodology otem(spec, fast_mpc(), fast_solver());
  // Alternating drive/brake pattern.
  std::vector<double> v;
  for (int cycle = 0; cycle < 20; ++cycle) {
    v.insert(v.end(), 10, 30000.0);
    v.insert(v.end(), 5, -25000.0);
  }
  sim::RunOptions opt;
  opt.initial.soe_percent = 40.0;
  const sim::RunResult r = sim.run(otem, TimeSeries(1.0, v), opt);
  // During braking samples the bank charges at least some of the time.
  double regen_into_cap = 0.0;
  for (size_t k = 0; k < r.trace.p_load_w.size(); ++k) {
    if (r.trace.p_load_w[k] < 0.0 && r.trace.p_cap_w[k] < 0.0)
      regen_into_cap -= r.trace.p_cap_w[k];
  }
  EXPECT_GT(regen_into_cap, 10000.0);
}

TEST(OtemBehaviour, SocFloorRespected) {
  const SystemSpec spec = default_spec();
  const sim::Simulator sim(spec);
  OtemMethodology otem(spec, fast_mpc(), fast_solver());
  sim::RunOptions opt;
  opt.initial.soc_percent = 23.0;  // near the C4 floor
  opt.initial.soe_percent = 30.0;
  const TimeSeries load(1.0, std::vector<double>(120, 25000.0));
  const sim::RunResult r = sim.run(otem, load, opt);
  // The MPC cannot create energy — SoC falls — but it must lean on the
  // bank hard rather than punching through the floor fast.
  EXPECT_GT(r.final_state.soc_percent, 18.0);
}

}  // namespace
}  // namespace otem::core
