// Tests for the power-request forecast models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "core/forecast.h"

namespace otem::core {
namespace {

TimeSeries ramp_trace(size_t n) {
  std::vector<double> v(n);
  for (size_t k = 0; k < n; ++k) v[k] = 1000.0 * static_cast<double>(k);
  return TimeSeries(1.0, std::move(v));
}

TEST(PerfectForecast, ReturnsTruthSlice) {
  PerfectForecast f;
  f.reset(ramp_trace(100));
  const auto w = f.window(10, 5);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_DOUBLE_EQ(w[0], 10000.0);
  EXPECT_DOUBLE_EQ(w[4], 14000.0);
}

TEST(PerfectForecast, TruncatesAtRouteEnd) {
  PerfectForecast f;
  f.reset(ramp_trace(20));
  EXPECT_EQ(f.window(18, 10).size(), 2u);
  EXPECT_TRUE(f.window(25, 10).empty());
}

TEST(NoisyForecast, DeterministicPerSeed) {
  NoisyForecast a(42, 0.1, 100.0);
  NoisyForecast b(42, 0.1, 100.0);
  a.reset(ramp_trace(100));
  b.reset(ramp_trace(100));
  const auto wa = a.window(7, 10);
  const auto wb = b.window(7, 10);
  for (size_t i = 0; i < wa.size(); ++i) EXPECT_DOUBLE_EQ(wa[i], wb[i]);
}

TEST(NoisyForecast, DifferentSeedsDiffer) {
  NoisyForecast a(1, 0.1, 100.0);
  NoisyForecast b(2, 0.1, 100.0);
  a.reset(ramp_trace(100));
  b.reset(ramp_trace(100));
  EXPECT_NE(a.window(7, 10), b.window(7, 10));
}

TEST(NoisyForecast, ErrorConsistentAcrossRequeries) {
  // The same future instant queried at the same lead gives the same
  // prediction (errors are keyed by absolute step and lead).
  NoisyForecast f(42, 0.1, 100.0);
  f.reset(ramp_trace(100));
  const auto w1 = f.window(10, 10);
  const auto w2 = f.window(10, 10);
  EXPECT_EQ(w1, w2);
}

TEST(NoisyForecast, ErrorGrowsWithLeadTime) {
  // Aggregate the absolute relative error at lead 1 vs lead 20 over
  // many window positions — the long lead must be noisier.
  NoisyForecast f(9, 0.05, 0.0);
  f.reset(TimeSeries(1.0, std::vector<double>(400, 10000.0)));
  double err_near = 0.0, err_far = 0.0;
  int n = 0;
  for (size_t k = 0; k + 25 < 400; k += 5) {
    const auto w = f.window(k, 25);
    err_near += std::abs(w[0] - 10000.0);
    err_far += std::abs(w[24] - 10000.0);
    ++n;
  }
  EXPECT_LT(err_near / n, err_far / n);
}

TEST(NoisyForecast, ZeroNoiseIsPerfect) {
  NoisyForecast f(3, 0.0, 0.0);
  f.reset(ramp_trace(50));
  const auto w = f.window(5, 10);
  for (size_t j = 0; j < w.size(); ++j)
    EXPECT_DOUBLE_EQ(w[j], 1000.0 * (5.0 + j));
}

TEST(SmoothedForecast, PreservesMeanRemovesPeaks) {
  // Square wave: smoothing keeps the average but cuts the amplitude.
  std::vector<double> v(200);
  for (size_t k = 0; k < v.size(); ++k) v[k] = (k % 10 < 5) ? 0.0 : 20000.0;
  SmoothedForecast f(20.0);
  f.reset(TimeSeries(1.0, v));
  const auto w = f.window(50, 40);
  double mean = 0.0, peak = 0.0;
  for (double x : w) {
    mean += x;
    peak = std::max(peak, x);
  }
  mean /= static_cast<double>(w.size());
  EXPECT_NEAR(mean, 10000.0, 1500.0);
  EXPECT_LT(peak, 18000.0);  // peaks flattened
}

TEST(PersistenceForecast, HoldsCurrentValue) {
  PersistenceForecast f;
  f.reset(ramp_trace(100));
  const auto w = f.window(30, 8);
  ASSERT_EQ(w.size(), 8u);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 30000.0);
}

TEST(ForecastFactory, ParsesSpecs) {
  EXPECT_EQ(make_forecast("perfect")->name(), "perfect");
  EXPECT_EQ(make_forecast("persistence")->name(), "persistence");
  EXPECT_EQ(make_forecast("smoothed:30")->name(), "smoothed");
  EXPECT_NE(make_forecast("noisy:1:0.1:500"), nullptr);
}

TEST(ForecastFactory, RejectsBadSpecs) {
  EXPECT_THROW(make_forecast("oracle"), SimError);
  EXPECT_THROW(make_forecast("smoothed"), SimError);
  EXPECT_THROW(make_forecast("noisy:1:0.1"), SimError);
  EXPECT_THROW(make_forecast("smoothed:-5"), SimError);
}

}  // namespace
}  // namespace otem::core
