// Tests for the tracing + quantile-sketch layer (src/obs/trace.h,
// src/obs/sketch.h):
//
//   - QuantileSketch correctness: exact quantiles while the stream
//     fits in one compactor, bounded rank error (<= 2% at the default
//     k) against exact quantiles of known distributions, exact
//     count/sum/min/max bookkeeping;
//   - determinism: same stream -> same sketch, and per-chunk sketches
//     merged in chunk order give BIT-IDENTICAL quantiles at every
//     thread count (the property fleet/serve aggregation relies on);
//   - merge associativity: any grouping of the same chunk sequence
//     agrees exactly on count/sum/min/max and within rank tolerance on
//     quantiles;
//   - the Sketch registry instrument: exact totals under concurrent
//     recording, kill-switch no-op, k-mismatch re-registration refused;
//   - the span tracer: disabled-by-default records nothing, RAII spans
//     reconstruct parent/child nesting, trace_emit() attaches to the
//     active span, rings cap at kTraceRingCapacity newest-wins,
//     otem.trace.v1 Chrome JSON is well-formed, record_durations()
//     lands span durations in registry sketches, and collect() is safe
//     against concurrent writers (the TSan job runs this binary).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/sketch.h"
#include "obs/trace.h"

namespace otem {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "otem_test_trace_" + name;
}

/// Exact q-quantile under the sketch's definition: the smallest value
/// whose cumulative count reaches ceil(q * n).
double exact_quantile(std::vector<double> sorted, double q) {
  const double target = q * static_cast<double>(sorted.size());
  size_t idx = static_cast<size_t>(std::ceil(target));
  idx = idx > 0 ? idx - 1 : 0;
  idx = std::min(idx, sorted.size() - 1);
  return sorted[idx];
}

/// Rank error of `estimate` for the q-quantile of `sorted`, as a
/// fraction of n: how far the estimate's rank interval is from q*n.
double rank_error(const std::vector<double>& sorted, double q,
                  double estimate) {
  const double n = static_cast<double>(sorted.size());
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), estimate);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), estimate);
  const double rank_lo = static_cast<double>(lo - sorted.begin());
  const double rank_hi = static_cast<double>(hi - sorted.begin());
  const double target = q * n;
  if (target < rank_lo) return (rank_lo - target) / n;
  if (target > rank_hi) return (target - rank_hi) / n;
  return 0.0;
}

void check_rank_errors(const obs::QuantileSketch& sketch,
                       std::vector<double> values, double tol) {
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}) {
    const double err = rank_error(values, q, sketch.quantile(q));
    EXPECT_LE(err, tol) << "q=" << q;
  }
}

// --- QuantileSketch ----------------------------------------------------

TEST(QuantileSketch, EmptyAndEndpoints) {
  obs::QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  s.add(3.0);
  s.add(-1.0);
  EXPECT_EQ(s.quantile(0.0), -1.0);
  EXPECT_EQ(s.quantile(1.0), 3.0);
  EXPECT_EQ(s.min(), -1.0);
  EXPECT_EQ(s.max(), 3.0);
  EXPECT_EQ(s.sum(), 2.0);
}

TEST(QuantileSketch, ExactWhileStreamFitsInOneLevel) {
  // n < k: no compaction ever fires, so every quantile is exact.
  obs::QuantileSketch s(64);
  std::vector<double> values;
  Rng rng(7);
  for (int i = 0; i < 63; ++i) {
    const double v = rng.uniform(-100.0, 100.0);
    values.push_back(v);
    s.add(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9})
    EXPECT_EQ(s.quantile(q), exact_quantile(values, q)) << "q=" << q;
}

TEST(QuantileSketch, RankErrorBoundUniform) {
  obs::QuantileSketch s;  // default k
  std::vector<double> values;
  Rng rng(42);
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.uniform(0.0, 1.0);
    values.push_back(v);
    s.add(v);
  }
  EXPECT_EQ(s.count(), 100000u);
  check_rank_errors(s, values, 0.02);
}

TEST(QuantileSketch, RankErrorBoundSkewedAndDuplicates) {
  // Heavy right tail (u^4 spans four decades) plus 20% exact
  // duplicates — the shapes latency streams actually have.
  obs::QuantileSketch s;
  std::vector<double> values;
  Rng rng(43);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform(0.0, 1.0);
    const double v = (i % 5 == 0) ? 7.0 : u * u * u * u * 1e4;
    values.push_back(v);
    s.add(v);
  }
  check_rank_errors(s, values, 0.02);
}

TEST(QuantileSketch, ExactBookkeeping) {
  obs::QuantileSketch s(8);  // tiny k: lots of compaction
  double sum = 0.0;
  for (int i = 1; i <= 10000; ++i) {
    s.add(static_cast<double>(i));
    sum += static_cast<double>(i);
  }
  // Compaction discards samples but never the exact n / sum / extrema.
  EXPECT_EQ(s.count(), 10000u);
  EXPECT_EQ(s.sum(), sum);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 10000.0);
}

TEST(QuantileSketch, SameStreamSameSketch) {
  obs::QuantileSketch a, b;
  Rng ra(9), rb(9);
  for (int i = 0; i < 20000; ++i) a.add(ra.uniform(0.0, 50.0));
  for (int i = 0; i < 20000; ++i) b.add(rb.uniform(0.0, 50.0));
  for (double q = 0.0; q <= 1.0; q += 0.05)
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
}

TEST(QuantileSketch, MergeRefusesMismatchedK) {
  obs::QuantileSketch a(64), b(128);
  EXPECT_THROW(a.merge(b), SimError);
}

/// The values of chunk c of the deterministic test stream.
std::vector<double> chunk_values(size_t c, size_t per_chunk) {
  Rng rng(1000 + c);
  std::vector<double> v(per_chunk);
  for (double& x : v) x = rng.uniform(0.0, 1000.0);
  return v;
}

TEST(QuantileSketch, OrderedMergeIsThreadCountInvariant) {
  // The aggregation recipe fleet/serve use: fixed chunking, one private
  // sketch per chunk, merged IN CHUNK ORDER. The result must be
  // bit-identical no matter how many threads built the chunk sketches.
  constexpr size_t kChunks = 8;
  constexpr size_t kPerChunk = 5000;

  auto build_merged = [&](size_t threads) {
    std::vector<obs::QuantileSketch> parts(kChunks);
    exec::parallel_for(
        kChunks,
        [&](size_t c) {
          for (double v : chunk_values(c, kPerChunk)) parts[c].add(v);
        },
        threads);
    obs::QuantileSketch merged;
    for (const obs::QuantileSketch& p : parts) merged.merge(p);
    return merged;
  };

  const obs::QuantileSketch reference = build_merged(1);
  for (size_t threads : {2u, 4u, 8u}) {
    const obs::QuantileSketch merged = build_merged(threads);
    EXPECT_EQ(merged.count(), reference.count());
    EXPECT_EQ(merged.sum(), reference.sum());
    for (double q = 0.0; q <= 1.0; q += 0.01)
      EXPECT_EQ(merged.quantile(q), reference.quantile(q))
          << "threads=" << threads << " q=" << q;
  }
}

TEST(QuantileSketch, MergeAssociativityProperty) {
  // Exact bit-associativity is impossible for a KLL compactor (the
  // grouping changes which compactions fire), so the contract is:
  // count/sum/min/max agree EXACTLY under any grouping, and every
  // grouping's quantiles stay within rank tolerance of the exact
  // stream quantiles.
  constexpr size_t kChunks = 6;
  constexpr size_t kPerChunk = 4000;
  std::vector<obs::QuantileSketch> parts(kChunks);
  std::vector<double> all;
  for (size_t c = 0; c < kChunks; ++c)
    for (double v : chunk_values(c, kPerChunk)) {
      parts[c].add(v);
      all.push_back(v);
    }

  // Grouping 1: left fold ((((a b) c) d) ...).
  obs::QuantileSketch left;
  for (const obs::QuantileSketch& p : parts) left.merge(p);
  // Grouping 2: balanced pairs ((a b) (c d) (e f)).
  obs::QuantileSketch balanced;
  for (size_t c = 0; c + 1 < kChunks; c += 2) {
    obs::QuantileSketch pair = parts[c];
    pair.merge(parts[c + 1]);
    balanced.merge(pair);
  }
  // Grouping 3: right fold (a (b (c ...))).
  obs::QuantileSketch right;
  for (size_t c = kChunks; c-- > 0;) {
    obs::QuantileSketch tail = parts[c];
    tail.merge(right);
    right = tail;
  }

  for (const obs::QuantileSketch* s : {&left, &balanced, &right}) {
    EXPECT_EQ(s->count(), kChunks * kPerChunk);
    // The sum is accumulated in grouping order, so it is only equal up
    // to floating-point reassociation; count/extrema are exact.
    EXPECT_NEAR(s->sum(), left.sum(), 1e-9 * std::abs(left.sum()));
    EXPECT_EQ(s->min(), left.min());
    EXPECT_EQ(s->max(), left.max());
    check_rank_errors(*s, all, 0.02);
  }
}

// --- Sketch registry instrument ----------------------------------------

#ifndef OTEM_OBS_DISABLED

/// Restores recording even when an assertion aborts the test early.
struct EnabledGuard {
  ~EnabledGuard() { obs::set_enabled(true); }
};

TEST(SketchInstrument, ExactTotalsUnderConcurrentRecording) {
  obs::MetricsRegistry registry;
  obs::Sketch& s = registry.sketch("lat");
  constexpr size_t kTasks = 32;
  constexpr size_t kPerTask = 2000;
  exec::parallel_for(
      kTasks,
      [&](size_t t) {
        for (size_t i = 0; i < kPerTask; ++i)
          s.record(static_cast<double>(t * kPerTask + i));
      },
      8);
  const obs::Sketch::Snapshot snap = s.snapshot();
  EXPECT_EQ(snap.count, kTasks * kPerTask);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, static_cast<double>(kTasks * kPerTask - 1));
  // The p50 of 0..N-1 must land near N/2 regardless of how samples
  // were scattered over shards.
  EXPECT_NEAR(snap.p50, static_cast<double>(kTasks * kPerTask) / 2.0,
              0.03 * static_cast<double>(kTasks * kPerTask));
}

TEST(SketchInstrument, KillSwitchStopsRecording) {
  const EnabledGuard guard;
  obs::MetricsRegistry registry;
  obs::Sketch& s = registry.sketch("gated");
  obs::set_enabled(false);
  s.record(1.0);
  obs::set_enabled(true);
  s.record(2.0);
  const obs::Sketch::Snapshot snap = s.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max, 2.0);
}

TEST(SketchInstrument, ReRegistrationWithDifferentKRefused) {
  obs::MetricsRegistry registry;
  obs::Sketch& s = registry.sketch("k_pinned", 64);
  EXPECT_EQ(&registry.sketch("k_pinned", 64), &s);
  EXPECT_THROW(registry.sketch("k_pinned", 128), SimError);
}

TEST(SketchInstrument, MergeInFoldsWorkerSketch) {
  obs::MetricsRegistry registry;
  obs::Sketch& s = registry.sketch("folded");
  obs::QuantileSketch worker;
  for (int i = 1; i <= 100; ++i) worker.add(static_cast<double>(i));
  s.merge_in(worker);
  s.record(1000.0);
  const obs::Sketch::Snapshot snap = s.snapshot();
  EXPECT_EQ(snap.count, 101u);
  EXPECT_EQ(snap.max, 1000.0);
}

// --- span tracer -------------------------------------------------------

/// Turns tracing off and clears the rings when the test ends, so trace
/// state never leaks between tests (tracing is process-global).
struct TraceGuard {
  explicit TraceGuard(bool on) {
    obs::trace_reset();
    obs::set_trace_enabled(on);
  }
  ~TraceGuard() {
    obs::set_trace_enabled(false);
    obs::trace_reset();
  }
};

const obs::SpanRecord* find_span(const std::vector<obs::SpanRecord>& spans,
                                 const std::string& name) {
  for (const obs::SpanRecord& s : spans)
    if (s.name != nullptr && name == s.name) return &s;
  return nullptr;
}

TEST(Trace, DisabledByDefaultRecordsNothing) {
  const TraceGuard guard(false);
  { const obs::TraceSpan span("t.should_not_record"); }
  obs::trace_emit("t.also_not", 0.0, 1.0);
  EXPECT_EQ(find_span(obs::TraceCollector().collect(), "t.should_not_record"),
            nullptr);
  EXPECT_EQ(find_span(obs::TraceCollector().collect(), "t.also_not"),
            nullptr);
}

TEST(Trace, NestingRecordsParentChildChain) {
  const TraceGuard guard(true);
  {
    const obs::TraceSpan outer("t.outer");
    {
      const obs::TraceSpan mid("t.mid");
      const obs::TraceSpan inner("t.inner");
    }
  }
  const std::vector<obs::SpanRecord> spans =
      obs::TraceCollector().collect();
  const obs::SpanRecord* outer = find_span(spans, "t.outer");
  const obs::SpanRecord* mid = find_span(spans, "t.mid");
  const obs::SpanRecord* inner = find_span(spans, "t.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(mid->parent, outer->id);
  EXPECT_EQ(inner->parent, mid->id);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(mid->depth, 1u);
  EXPECT_EQ(inner->depth, 2u);
  // Children nest inside the parent's interval.
  EXPECT_GE(mid->ts_us, outer->ts_us);
  EXPECT_LE(mid->ts_us + mid->dur_us, outer->ts_us + outer->dur_us + 1.0);
}

TEST(Trace, EmitAttachesToActiveSpan) {
  const TraceGuard guard(true);
  {
    const obs::TraceSpan outer("t.emit_parent");
    obs::trace_emit("t.emitted", 123.0, 45.0);
  }
  const std::vector<obs::SpanRecord> spans =
      obs::TraceCollector().collect();
  const obs::SpanRecord* parent = find_span(spans, "t.emit_parent");
  const obs::SpanRecord* emitted = find_span(spans, "t.emitted");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(emitted, nullptr);
  EXPECT_EQ(emitted->parent, parent->id);
  EXPECT_EQ(emitted->ts_us, 123.0);
  EXPECT_EQ(emitted->dur_us, 45.0);
}

TEST(Trace, RingOverwritesOldestBeyondCapacity) {
  const TraceGuard guard(true);
  for (size_t i = 0; i < 3 * obs::kTraceRingCapacity; ++i)
    obs::trace_emit("t.flood", static_cast<double>(i), 1.0);
  const std::vector<obs::SpanRecord> spans =
      obs::TraceCollector().collect();
  size_t flood = 0;
  double newest_ts = -1.0;
  for (const obs::SpanRecord& s : spans)
    if (s.name != nullptr && std::string("t.flood") == s.name) {
      ++flood;
      newest_ts = std::max(newest_ts, s.ts_us);
    }
  EXPECT_LE(flood, obs::kTraceRingCapacity);
  EXPECT_GE(flood, obs::kTraceRingCapacity / 2);
  // Newest-wins: the very last record survives the overwrites.
  EXPECT_EQ(newest_ts,
            static_cast<double>(3 * obs::kTraceRingCapacity - 1));
}

TEST(Trace, ChromeJsonIsWellFormedV1) {
  const TraceGuard guard(true);
  {
    const obs::TraceSpan outer("t.json_outer");
    const obs::TraceSpan inner("t.json_inner");
  }
  const Json doc = obs::TraceCollector().to_chrome_json();
  const Json* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "otem.trace.v1");
  const Json* unit = doc.find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->as_string(), "ms");
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->size(), 2u);
  for (size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("dur"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    EXPECT_EQ(e.find("cat")->as_string(), "otem");
  }
  // The serialized document must round-trip through the parser (what
  // bench/check_trace.py does to the written file).
  const Json reparsed = Json::parse(doc.dump(0));
  EXPECT_EQ(reparsed.find("schema")->as_string(), "otem.trace.v1");
}

TEST(Trace, WriteChromeTraceRoundTrips) {
  const TraceGuard guard(true);
  { const obs::TraceSpan span("t.file_span"); }
  const std::string path = temp_path("trace.json");
  obs::TraceCollector().write_chrome_trace(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const Json doc = Json::parse(buf.str());
  EXPECT_EQ(doc.find("schema")->as_string(), "otem.trace.v1");
  EXPECT_GE(doc.find("traceEvents")->size(), 1u);
  std::remove(path.c_str());
}

TEST(Trace, RecordDurationsLandsInRegistrySketches) {
  const TraceGuard guard(true);
  {
    const obs::TraceSpan a("t.dur_a");
    const obs::TraceSpan b("t.dur_b");
  }
  obs::MetricsRegistry registry;
  obs::TraceCollector().record_durations(registry);
  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.sketches.count("trace.t.dur_a.dur_us"), 1u);
  ASSERT_EQ(snap.sketches.count("trace.t.dur_b.dur_us"), 1u);
  EXPECT_GE(snap.sketches.at("trace.t.dur_a.dur_us").count, 1u);
}

TEST(Trace, SummariesAggregateByName) {
  const TraceGuard guard(true);
  for (int i = 0; i < 5; ++i) obs::trace_emit("t.summary", 0.0, 10.0);
  obs::trace_emit("t.summary", 0.0, 30.0);
  const std::vector<obs::TraceCollector::SpanSummary> sums =
      obs::TraceCollector().summaries();
  const auto it = std::find_if(
      sums.begin(), sums.end(),
      [](const auto& s) { return s.name == "t.summary"; });
  ASSERT_NE(it, sums.end());
  EXPECT_EQ(it->count, 6u);
  EXPECT_EQ(it->total_us, 80.0);
  EXPECT_EQ(it->max_us, 30.0);
}

TEST(Trace, ConcurrentWritersAndDrainIsSafe) {
  // Writers hammer their rings while the main thread drains: the TSan
  // CI job runs this test to certify the lock-free recorder. Values
  // are not asserted (a record mid-overwrite may be torn by design) —
  // only that every drained record is structurally sane.
  const TraceGuard guard(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const obs::TraceSpan outer("t.hammer_outer");
        const obs::TraceSpan inner("t.hammer_inner");
      }
    });
  for (int i = 0; i < 50; ++i) {
    const std::vector<obs::SpanRecord> spans =
        obs::TraceCollector().collect();
    for (const obs::SpanRecord& s : spans) EXPECT_GT(s.tid, 0u);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) w.join();
}

#endif  // OTEM_OBS_DISABLED

}  // namespace
}  // namespace otem
