// Property-based sweeps over the thermal substrate: the trapezoidal
// scheme's invariants across the parameter grid, cooler economics, and
// interactions the pointwise tests in test_thermal.cpp do not cover.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "thermal/cooling_system.h"

namespace otem::thermal {
namespace {

// ---------------------------------------------------------------------------
// Parameter grid: (heat transfer, flow rate).

class ThermalParamGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {
 protected:
  CoolingParams params() const {
    CoolingParams p;
    p.heat_transfer_w_k = std::get<0>(GetParam());
    p.flow_heat_capacity_rate = std::get<1>(GetParam());
    return p;
  }
};

TEST_P(ThermalParamGrid, TrapezoidalMatchesEquilibriumEverywhere) {
  const CoolingSystem sys(params());
  ThermalState s{330.0, 320.0};
  for (int k = 0; k < 60000; ++k) s = sys.step(s, 1800.0, 293.0, 1.0);
  const ThermalState eq = sys.equilibrium(1800.0, 293.0);
  EXPECT_NEAR(s.t_battery_k, eq.t_battery_k, 1e-3);
  EXPECT_NEAR(s.t_coolant_k, eq.t_coolant_k, 1e-3);
}

TEST_P(ThermalParamGrid, StepMatrixRowsArePhysical) {
  // All update coefficients must be non-negative (a hotter input never
  // produces a cooler output) and each temperature row's coefficients
  // must sum to 1 for the homogeneous part (temperature offsets are
  // preserved when q = 0 and all inputs shift together).
  const CoolingSystem sys(params());
  const StepMatrix m = sys.step_matrix(1.0);
  EXPECT_GE(m.m00, 0.0);
  EXPECT_GE(m.m01, 0.0);
  EXPECT_GE(m.m10, 0.0);
  EXPECT_GE(m.m11, 0.0);
  EXPECT_GE(m.bi0, 0.0);
  EXPECT_GE(m.bi1, 0.0);
  EXPECT_GE(m.bq0, 0.0);
  EXPECT_GE(m.bq1, 0.0);
  EXPECT_NEAR(m.m00 + m.m01 + m.bi0, 1.0, 1e-12);
  EXPECT_NEAR(m.m10 + m.m11 + m.bi1, 1.0, 1e-12);
}

TEST_P(ThermalParamGrid, MonotoneInHeatAndInlet) {
  const CoolingSystem sys(params());
  const ThermalState s{305.0, 301.0};
  const ThermalState low_q = sys.step(s, 500.0, 295.0, 5.0);
  const ThermalState high_q = sys.step(s, 2500.0, 295.0, 5.0);
  EXPECT_GT(high_q.t_battery_k, low_q.t_battery_k);
  const ThermalState warm_in = sys.step(s, 1000.0, 299.0, 5.0);
  const ThermalState cold_in = sys.step(s, 1000.0, 285.0, 5.0);
  EXPECT_LT(cold_in.t_coolant_k, warm_in.t_coolant_k);
  EXPECT_LT(cold_in.t_battery_k, warm_in.t_battery_k);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThermalParamGrid,
    ::testing::Combine(::testing::Values(150.0, 400.0, 600.0, 1200.0),
                       ::testing::Values(300.0, 700.0, 1500.0)));

// ---------------------------------------------------------------------------
// Randomised invariants.

TEST(ThermalProperty, TemperaturesStayOrderedUnderRandomDriving) {
  // With heat always entering at the battery, the battery can approach
  // but never durably fall below the coolant by more than the
  // transient overshoot of one step.
  const CoolingSystem sys((CoolingParams()));
  Rng rng(8);
  ThermalState s{298.15, 298.15};
  for (int k = 0; k < 5000; ++k) {
    const double q = rng.uniform(0.0, 4000.0);
    const double ti = rng.uniform(275.0, 300.0);
    s = sys.step(s, q, ti, 1.0);
    EXPECT_GT(s.t_battery_k, s.t_coolant_k - 0.5) << "k=" << k;
    EXPECT_GT(s.t_coolant_k, 270.0);
    EXPECT_LT(s.t_battery_k, 400.0);
  }
}

TEST(ThermalProperty, SuperpositionOfLinearDynamics) {
  // The update is affine: step(a) + step(b) - step(0) == step(a + b)
  // for the heat input at fixed state and inlet.
  const CoolingSystem sys((CoolingParams()));
  const ThermalState s{306.0, 303.0};
  const double ti = 296.0;
  const ThermalState qa = sys.step(s, 700.0, ti, 1.0);
  const ThermalState qb = sys.step(s, 1900.0, ti, 1.0);
  const ThermalState q0 = sys.step(s, 0.0, ti, 1.0);
  const ThermalState qab = sys.step(s, 2600.0, ti, 1.0);
  EXPECT_NEAR(qa.t_battery_k + qb.t_battery_k - q0.t_battery_k,
              qab.t_battery_k, 1e-9);
  EXPECT_NEAR(qa.t_coolant_k + qb.t_coolant_k - q0.t_coolant_k,
              qab.t_coolant_k, 1e-9);
}

TEST(ThermalProperty, CoolerPowerMonotoneInPullDepth) {
  const CoolingSystem sys((CoolingParams()));
  double prev = -1.0;
  for (double ti = 300.0; ti >= 280.0; ti -= 2.0) {
    const double p = sys.cooler_power(302.0, 298.15, ti);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(ThermalProperty, PassiveInletConvexCombination) {
  // The passive inlet is a fixed blend of outlet and ambient, so it is
  // always between them.
  const CoolingSystem sys((CoolingParams()));
  Rng rng(9);
  for (int k = 0; k < 500; ++k) {
    const double tc = rng.uniform(280.0, 330.0);
    const double amb = rng.uniform(263.0, 318.0);
    const double ti = sys.passive_inlet(tc, amb);
    EXPECT_GE(ti, std::min(tc, amb) - 1e-12);
    EXPECT_LE(ti, std::max(tc, amb) + 1e-12);
  }
}

TEST(ThermalProperty, RefrigerantFloorBindsEventually) {
  const CoolingSystem sys((CoolingParams()));
  const double floor = CoolingParams{}.min_inlet_temp_k;
  EXPECT_DOUBLE_EQ(sys.inlet_for_power(275.0, 274.0, 1e9), floor);
}

TEST(ThermalProperty, EnergyConservationLongHorizon) {
  // Integrate stored + advected energy over a random mission; totals
  // must match the injected heat to numerical precision.
  const CoolingParams p;
  const CoolingSystem sys(p);
  Rng rng(10);
  ThermalState s{298.15, 298.15};
  double injected = 0.0;
  double advected = 0.0;
  const double t_in = 294.0;
  for (int k = 0; k < 3000; ++k) {
    const double q = rng.uniform(0.0, 3000.0);
    const ThermalState n = sys.step(s, q, t_in, 1.0);
    injected += q;
    advected += p.flow_heat_capacity_rate *
                (0.5 * (s.t_coolant_k + n.t_coolant_k) - t_in);
    s = n;
  }
  const double stored =
      p.battery_heat_capacity * (s.t_battery_k - 298.15) +
      p.coolant_heat_capacity * (s.t_coolant_k - 298.15);
  EXPECT_NEAR(stored + advected, injected, std::abs(injected) * 1e-10);
}

}  // namespace
}  // namespace otem::thermal
