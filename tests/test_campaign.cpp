// Tests for the campaign subsystem: the generator grammar (stable
// order, O(1) expansion, content-addressed IDs), bit-exact sketch and
// accumulator serialization, and the determinism contract the whole
// design exists for — the otem.campaign.v1 summary is BYTE-IDENTICAL
// at any thread count, and a campaign halted after K commits and
// resumed from its checkpoint (at a different thread count) produces
// the same bytes as one that was never interrupted.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/grid.h"
#include "campaign/runner.h"
#include "common/config.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/system_spec.h"
#include "obs/sketch.h"

namespace otem {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "otem_test_campaign_" + name;
}

/// A deliberately tiny grid so determinism tests run many full
/// campaigns quickly: 3 synthetic routes x 2 UC sizes x 2 methods = 12
/// scenarios of ~2 simulated minutes each.
campaign::Grid small_grid() {
  campaign::Grid grid;
  grid.methodologies = {"parallel", "dual"};
  grid.cycles.clear();
  grid.synthetic_routes = 3;
  grid.min_duration_s = 90.0;
  grid.max_duration_s = 150.0;
  grid.uc_scales = {0.5, 1.0};
  grid.seed = 7;
  return grid;
}

// --- hex encoding -------------------------------------------------------

TEST(CampaignHex, DoubleRoundTripIsBitExact) {
  const double values[] = {0.0,    -0.0,       1.0 / 3.0, 1e-308,
                           2.5e17, -123.4567,  1e308};
  for (double v : values) {
    const std::string hex = strings::hex_double(v);
    EXPECT_EQ(hex.size(), 16u);
    const double back = strings::parse_hex_double(hex);
    EXPECT_EQ(strings::hex_double(back), hex) << v;
  }
  EXPECT_THROW(strings::parse_hex_u64("123"), SimError);
  EXPECT_THROW(strings::parse_hex_u64("123456789abcdefg"), SimError);
}

// --- generator grammar --------------------------------------------------

TEST(CampaignGrid, SizeIsAxisProductAndExpansionIsStable) {
  const campaign::Grid grid = small_grid();
  ASSERT_EQ(grid.size(), 3u * 2u * 2u);
  // Methodology is the innermost axis: consecutive scenarios differ
  // only in methodology, so comparisons stay paired per mission.
  const campaign::ScenarioSpec a = grid.at(0);
  const campaign::ScenarioSpec b = grid.at(1);
  EXPECT_EQ(a.methodology, "parallel");
  EXPECT_EQ(b.methodology, "dual");
  EXPECT_EQ(a.route_seed, b.route_seed);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.ambient_k, b.ambient_k);
  EXPECT_EQ(a.uc_scale, b.uc_scale);
  // Expansion is a pure function of (grid, index).
  for (size_t i = 0; i < grid.size(); ++i) {
    const campaign::ScenarioSpec once = grid.at(i);
    const campaign::ScenarioSpec twice = grid.at(i);
    EXPECT_EQ(once.id, twice.id);
    EXPECT_EQ(once.seed, twice.seed);
    EXPECT_EQ(once.canonical_key(), twice.canonical_key());
  }
}

TEST(CampaignGrid, IdsAreContentAddressedAndUnique) {
  const campaign::Grid grid = small_grid();
  std::set<std::string> ids;
  for (size_t i = 0; i < grid.size(); ++i) {
    const campaign::ScenarioSpec s = grid.at(i);
    EXPECT_EQ(s.id.size(), 16u);
    EXPECT_EQ(s.id, strings::hex_u64(campaign::fnv1a64(s.canonical_key())));
    ids.insert(s.id);
  }
  EXPECT_EQ(ids.size(), grid.size());
  // Same physical content in a different grid object = same id.
  campaign::Grid other = small_grid();
  EXPECT_EQ(other.at(3).id, grid.at(3).id);
  // A different campaign seed changes the drawn conditions, hence ids.
  other.seed = 8;
  EXPECT_NE(other.at(3).id, grid.at(3).id);
  EXPECT_NE(other.fingerprint(), grid.fingerprint());
}

TEST(CampaignGrid, FromConfigParsesAxesAndValidates) {
  Config cfg;
  cfg.set("campaign.methods", "otem,dual");
  cfg.set("campaign.cycles", "UDDS,US06");
  cfg.set("campaign.synthetic_routes", "1");
  cfg.set("campaign.ambients_c", "10:40:4");
  cfg.set("campaign.uc_scales", "0.5,1,2");
  cfg.set("campaign.seed", "99");
  const campaign::Grid grid = campaign::Grid::from_config(cfg);
  EXPECT_EQ(grid.methodologies.size(), 2u);
  EXPECT_EQ(grid.routes(), 3u);  // two cycles + one synthetic
  ASSERT_EQ(grid.ambients_k.size(), 4u);
  EXPECT_NEAR(grid.ambients_k.front(), 283.15, 1e-9);
  EXPECT_NEAR(grid.ambients_k.back(), 313.15, 1e-9);
  EXPECT_EQ(grid.size(), 3u * 4u * 3u * 2u);
  grid.validate();

  Config bad;
  bad.set("campaign.cycles", "NOT_A_CYCLE");
  bad.set("campaign.synthetic_routes", "0");
  EXPECT_THROW(campaign::Grid::from_config(bad).validate(), SimError);
}

// --- sketch serialization -----------------------------------------------

TEST(CampaignSketch, JsonRoundTripContinuesBitIdentically) {
  Rng rng(42);
  obs::QuantileSketch original(64);
  // Enough samples to force several compaction levels.
  for (int i = 0; i < 5000; ++i) original.add(rng.uniform(-50.0, 1000.0));

  obs::QuantileSketch restored =
      obs::QuantileSketch::from_json(original.to_json());
  EXPECT_EQ(restored.to_json().dump(), original.to_json().dump());
  for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0})
    EXPECT_EQ(restored.quantile(q), original.quantile(q));

  // The restored sketch must CONTINUE identically, not just report
  // identically: same inputs after the round-trip, same state after.
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(-50.0, 1000.0);
    original.add(v);
    restored.add(v);
  }
  EXPECT_EQ(restored.to_json().dump(), original.to_json().dump());
}

// --- accumulator --------------------------------------------------------

TEST(CampaignAccumulator, CheckpointRoundTripContinuesBitIdentically) {
  Rng rng(1);
  campaign::CampaignAccumulator acc;
  auto random_result = [&]() {
    campaign::ScenarioResult r;
    for (size_t d = 0; d < campaign::ScenarioResult::kDims; ++d)
      r.set_dim(d, rng.uniform(0.0, 1e6));
    return r;
  };
  for (int i = 0; i < 500; ++i)
    acc.commit(i % 2 ? "otem" : "dual", random_result());

  campaign::CampaignAccumulator restored =
      campaign::CampaignAccumulator::from_json(acc.to_json());
  EXPECT_EQ(restored.committed(), acc.committed());
  EXPECT_EQ(restored.groups_json().dump(), acc.groups_json().dump());

  for (int i = 0; i < 500; ++i) {
    const campaign::ScenarioResult r = random_result();
    acc.commit(i % 2 ? "otem" : "dual", r);
    restored.commit(i % 2 ? "otem" : "dual", r);
  }
  EXPECT_EQ(restored.to_json().dump(), acc.to_json().dump());
  EXPECT_EQ(restored.groups_json().dump(), acc.groups_json().dump());
}

TEST(CampaignCheckpoint, FileRoundTripAndValidation) {
  campaign::Checkpoint ck;
  ck.grid_fingerprint = "deadbeefdeadbeef";
  ck.watermark = 7;
  campaign::CampaignAccumulator acc;
  for (int i = 0; i < 7; ++i) {
    campaign::ScenarioResult r;
    r.qloss_percent = 0.1 * i;
    acc.commit("otem", r);
  }
  ck.accumulator = acc.to_json();
  campaign::ScenarioResult out_of_order;
  out_of_order.qloss_percent = 1.25;
  ck.pending.emplace(9, out_of_order);

  const std::string path = temp_path("roundtrip.ckpt");
  campaign::write_checkpoint_file(path, ck);
  const campaign::Checkpoint back = campaign::read_checkpoint_file(path);
  EXPECT_EQ(back.grid_fingerprint, ck.grid_fingerprint);
  EXPECT_EQ(back.watermark, ck.watermark);
  ASSERT_EQ(back.pending.size(), 1u);
  EXPECT_EQ(back.pending.at(9).qloss_percent, 1.25);
  EXPECT_EQ(back.to_json().dump(), ck.to_json().dump());
  std::remove(path.c_str());

  // A watermark that disagrees with the accumulator is rejected.
  campaign::Checkpoint torn = ck;
  torn.watermark = 6;
  EXPECT_THROW(campaign::Checkpoint::from_json(torn.to_json()), SimError);
}

// --- end-to-end determinism ---------------------------------------------

TEST(CampaignRunner, SummaryBytesAreThreadCountInvariant) {
  const campaign::Grid grid = small_grid();
  const Config cfg;
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);

  campaign::CampaignOptions one;
  one.threads = 1;
  const campaign::CampaignOutcome serial =
      campaign::run_campaign(grid, spec, cfg, one);
  ASSERT_FALSE(serial.halted);
  ASSERT_EQ(serial.scenarios_run, grid.size());
  ASSERT_FALSE(serial.summary_text.empty());

  for (size_t threads : {2u, 5u}) {
    campaign::CampaignOptions opt;
    opt.threads = threads;
    const campaign::CampaignOutcome parallel =
        campaign::run_campaign(grid, spec, cfg, opt);
    EXPECT_EQ(parallel.summary_text, serial.summary_text)
        << "threads=" << threads;
  }
}

TEST(CampaignRunner, HaltAndResumeReproduceUninterruptedBytes) {
  const campaign::Grid grid = small_grid();
  const Config cfg;
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);

  campaign::CampaignOptions reference;
  reference.threads = 3;
  const campaign::CampaignOutcome uninterrupted =
      campaign::run_campaign(grid, spec, cfg, reference);
  ASSERT_FALSE(uninterrupted.summary_text.empty());

  // Halt after K commits at one thread count, resume at another — the
  // interruption must be invisible in the summary bytes.
  for (const std::uint64_t K : {1u, 5u, 11u}) {
    const std::string ckpt =
        temp_path("resume_" + std::to_string(K) + ".ckpt");

    campaign::CampaignOptions first;
    first.threads = 4;
    first.checkpoint_path = ckpt;
    first.checkpoint_every = 2;
    first.halt_after_commits = K;
    const campaign::CampaignOutcome halted =
        campaign::run_campaign(grid, spec, cfg, first);
    EXPECT_TRUE(halted.halted) << "K=" << K;
    EXPECT_TRUE(halted.summary_text.empty()) << "K=" << K;

    campaign::CampaignOptions second;
    second.threads = 2;
    second.resume_from = ckpt;
    const campaign::CampaignOutcome resumed =
        campaign::run_campaign(grid, spec, cfg, second);
    EXPECT_FALSE(resumed.halted) << "K=" << K;
    EXPECT_GE(resumed.scenarios_restored, K) << "K=" << K;
    EXPECT_EQ(resumed.scenarios_restored + resumed.scenarios_run,
              grid.size())
        << "K=" << K;
    EXPECT_EQ(resumed.summary_text, uninterrupted.summary_text)
        << "K=" << K;
    std::remove(ckpt.c_str());
  }
}

TEST(CampaignRunner, ResumeRejectsMismatchedGrid) {
  const campaign::Grid grid = small_grid();
  const Config cfg;
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);

  const std::string ckpt = temp_path("mismatch.ckpt");
  campaign::CampaignOptions first;
  first.threads = 2;
  first.checkpoint_path = ckpt;
  first.halt_after_commits = 3;
  (void)campaign::run_campaign(grid, spec, cfg, first);

  campaign::Grid other = small_grid();
  other.seed = 1234;
  campaign::CampaignOptions second;
  second.resume_from = ckpt;
  EXPECT_THROW(campaign::run_campaign(other, spec, cfg, second), SimError);
  std::remove(ckpt.c_str());
}

TEST(CampaignRunner, SummaryDocumentShape) {
  const campaign::Grid grid = small_grid();
  const Config cfg;
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  campaign::CampaignOptions opt;
  opt.threads = 2;
  const std::string out = temp_path("summary.json");
  opt.summary_out = out;
  const campaign::CampaignOutcome outcome =
      campaign::run_campaign(grid, spec, cfg, opt);

  const Json& summary = outcome.summary;
  ASSERT_TRUE(summary.is_object());
  EXPECT_EQ(summary.find("schema")->as_string(), "otem.campaign.v1");
  EXPECT_EQ(summary.find("scenarios")->as_number(),
            static_cast<double>(grid.size()));
  const Json* groups = summary.find("groups");
  ASSERT_TRUE(groups != nullptr && groups->is_object());
  for (const std::string method : {"parallel", "dual"}) {
    const Json* group = groups->find(method);
    ASSERT_TRUE(group != nullptr) << method;
    EXPECT_EQ(group->find("scenarios")->as_number(),
              static_cast<double>(grid.size() / 2));
    const Json* metrics = group->find("metrics");
    ASSERT_TRUE(metrics != nullptr);
    const Json* qloss = metrics->find("qloss_percent");
    ASSERT_TRUE(qloss != nullptr);
    for (const char* stat :
         {"count", "mean", "stddev", "min", "max", "sum", "p50", "p95",
          "p99"})
      EXPECT_TRUE(qloss->find(stat) != nullptr) << stat;
    EXPECT_GT(qloss->find("mean")->as_number(), 0.0);
  }

  // summary_out received exactly summary_text's bytes.
  std::ifstream f(out);
  std::string file_text((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
  EXPECT_EQ(file_text, outcome.summary_text);
  std::remove(out.c_str());
}

}  // namespace
}  // namespace otem
