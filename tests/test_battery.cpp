// Tests for the battery electrical model (Eqs. 1-4) and the
// capacity-fade model (Eq. 5).
#include <gtest/gtest.h>

#include <cmath>

#include "battery/aging.h"
#include "battery/battery_model.h"
#include "common/constants.h"
#include "common/error.h"

namespace otem::battery {
namespace {

PackModel default_pack() { return PackModel(PackParams{}); }

constexpr double kRoom = 298.15;

TEST(BatteryCell, VocIncreasesWithSoc) {
  const PackModel pack = default_pack();
  double prev = pack.cell_open_circuit_voltage(5.0);
  for (double soc = 10.0; soc <= 100.0; soc += 5.0) {
    const double v = pack.cell_open_circuit_voltage(soc);
    EXPECT_GT(v, prev) << "at soc " << soc;
    prev = v;
  }
}

TEST(BatteryCell, VocInLiIonRange) {
  const PackModel pack = default_pack();
  EXPECT_NEAR(pack.cell_open_circuit_voltage(100.0), 4.1, 0.15);
  EXPECT_NEAR(pack.cell_open_circuit_voltage(0.0), 3.0, 0.15);
  EXPECT_GT(pack.cell_open_circuit_voltage(50.0), 3.4);
  EXPECT_LT(pack.cell_open_circuit_voltage(50.0), 3.9);
}

TEST(BatteryCell, ResistanceRisesAtLowSoc) {
  const PackModel pack = default_pack();
  EXPECT_GT(pack.cell_internal_resistance(2.0, kRoom),
            pack.cell_internal_resistance(50.0, kRoom) * 1.5);
}

TEST(BatteryCell, HotterCellHasLowerResistance) {
  // Section II-A: elevated temperature speeds up the chemistry.
  const PackModel pack = default_pack();
  const double r_cold = pack.cell_internal_resistance(50.0, 273.15);
  const double r_room = pack.cell_internal_resistance(50.0, kRoom);
  const double r_hot = pack.cell_internal_resistance(50.0, 313.15);
  EXPECT_GT(r_cold, r_room);
  EXPECT_GT(r_room, r_hot);
}

TEST(BatteryCell, KelvinGuardThrows) {
  const PackModel pack = default_pack();
  EXPECT_THROW(pack.cell_internal_resistance(50.0, 25.0), SimError);
}

TEST(BatteryPack, AggregatesSeriesParallel) {
  PackParams p;
  p.series = 10;
  p.parallel = 4;
  const PackModel pack(p);
  EXPECT_NEAR(pack.open_circuit_voltage(80.0),
              10.0 * pack.cell_open_circuit_voltage(80.0), 1e-12);
  EXPECT_NEAR(pack.internal_resistance(80.0, kRoom),
              10.0 / 4.0 * pack.cell_internal_resistance(80.0, kRoom),
              1e-12);
  EXPECT_DOUBLE_EQ(pack.capacity_ah(), 4.0 * p.cell.capacity_ah);
}

TEST(BatteryPack, DefaultPackIsMidSizeEv) {
  const PackModel pack = default_pack();
  // ~345-395 V nominal, ~15-20 kWh — a city-EV pack (see PackParams).
  EXPECT_GT(pack.open_circuit_voltage(50.0), 300.0);
  EXPECT_LT(pack.open_circuit_voltage(100.0), 420.0);
  const double kwh = pack.nominal_energy_j() / 3.6e6;
  EXPECT_GT(kwh, 12.0);
  EXPECT_LT(kwh, 22.0);
}

TEST(BatteryPack, CurrentForPowerRoundtrips) {
  const PackModel pack = default_pack();
  for (double p_w : {1000.0, 10000.0, 40000.0, -15000.0}) {
    const PowerSolve s = pack.current_for_power(70.0, kRoom, p_w);
    ASSERT_TRUE(s.feasible);
    const double v = pack.terminal_voltage(70.0, kRoom, s.current_a);
    EXPECT_NEAR(v * s.current_a, p_w, std::abs(p_w) * 1e-9 + 1e-6);
    EXPECT_NEAR(s.terminal_voltage, v, 1e-9);
  }
}

TEST(BatteryPack, DischargeTakesHighVoltageBranch) {
  // The physical operating point is the smaller-current root.
  const PackModel pack = default_pack();
  const PowerSolve s = pack.current_for_power(70.0, kRoom, 20000.0);
  const double voc = pack.open_circuit_voltage(70.0);
  EXPECT_LT(s.current_a, voc / (2.0 * pack.internal_resistance(70.0, kRoom)));
  EXPECT_GT(s.terminal_voltage, voc / 2.0);
}

TEST(BatteryPack, InfeasiblePowerClampsAtPeak) {
  const PackModel pack = default_pack();
  const double pmax = pack.max_discharge_power(70.0, kRoom);
  const PowerSolve s = pack.current_for_power(70.0, kRoom, pmax * 1.5);
  EXPECT_FALSE(s.feasible);
  const double v = pack.terminal_voltage(70.0, kRoom, s.current_a);
  EXPECT_NEAR(v * s.current_a, pmax, pmax * 1e-9);
}

TEST(BatteryPack, ChargingCurrentIsNegative) {
  const PackModel pack = default_pack();
  const PowerSolve s = pack.current_for_power(70.0, kRoom, -20000.0);
  EXPECT_LT(s.current_a, 0.0);
  EXPECT_GT(s.terminal_voltage, pack.open_circuit_voltage(70.0));
}

TEST(BatteryPack, SocStepMatchesCoulombCounting) {
  const PackModel pack = default_pack();
  // 77.5 Ah pack: 77.5 A for 1 h = 100 % -> for 36 s = 1 %.
  const double i = pack.capacity_ah();
  EXPECT_NEAR(pack.step_soc(50.0, i, 36.0), 49.0, 1e-9);
  EXPECT_NEAR(pack.step_soc(50.0, -i, 36.0), 51.0, 1e-9);
}

TEST(BatteryPack, SocStepClampsAtBounds) {
  const PackModel pack = default_pack();
  EXPECT_DOUBLE_EQ(pack.step_soc(0.5, 1e6, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(pack.step_soc(99.5, -1e6, 10.0), 100.0);
}

TEST(BatteryPack, HeatIsJoulePlusEntropic) {
  const PackModel pack = default_pack();
  const double i = 50.0;
  const double r = pack.internal_resistance(60.0, kRoom);
  const double expected =
      i * i * r + i * kRoom * pack.params().cell.dvoc_dtemp *
                      pack.params().series;
  EXPECT_NEAR(pack.heat_generation(60.0, kRoom, i), expected, 1e-9);
}

TEST(BatteryPack, HeatPositiveForBothDirectionsAtHighCurrent) {
  const PackModel pack = default_pack();
  EXPECT_GT(pack.heat_generation(60.0, kRoom, 100.0), 0.0);
  // Charging: Joule term dominates the (negative) entropic term.
  EXPECT_GT(pack.heat_generation(60.0, kRoom, -100.0), 0.0);
}

TEST(BatteryPack, EnergySplitConsistent) {
  const PackModel pack = default_pack();
  const double i = 60.0;
  const auto split = pack.energy_for_step(70.0, kRoom, i, 2.0);
  const double voc = pack.open_circuit_voltage(70.0);
  // Chemistry energy = terminal + internal loss.
  EXPECT_NEAR(voc * i * 2.0, split.terminal_j + split.loss_j, 1e-6);
  EXPECT_GT(split.loss_j, 0.0);
}

TEST(BatteryPack, DerivativesMatchFiniteDifferences) {
  const PackModel pack = default_pack();
  const double h = 1e-5;
  for (double soc : {30.0, 55.0, 80.0}) {
    const double dv_fd = (pack.open_circuit_voltage(soc + h) -
                          pack.open_circuit_voltage(soc - h)) /
                         (2.0 * h);
    EXPECT_NEAR(pack.open_circuit_voltage_dsoc(soc), dv_fd, 1e-6);

    const double dr_fd = (pack.internal_resistance(soc + h, kRoom) -
                          pack.internal_resistance(soc - h, kRoom)) /
                         (2.0 * h);
    EXPECT_NEAR(pack.internal_resistance_dsoc(soc, kRoom), dr_fd, 1e-8);

    const double ht = 1e-3;
    const double drt_fd = (pack.internal_resistance(soc, kRoom + ht) -
                           pack.internal_resistance(soc, kRoom - ht)) /
                          (2.0 * ht);
    EXPECT_NEAR(pack.internal_resistance_dtemp(soc, kRoom), drt_fd, 1e-9);
  }
}

// --- capacity fade ------------------------------------------------------

TEST(CapacityFade, ZeroCurrentZeroLoss) {
  const CapacityFadeModel fade((CellParams()));
  EXPECT_DOUBLE_EQ(fade.loss_rate_percent_per_s(0.0, kRoom), 0.0);
}

TEST(CapacityFade, HotterAgesFaster) {
  // The Arrhenius factor in Eq. 5 — the mechanism OTEM exploits.
  const CapacityFadeModel fade((CellParams()));
  const double cold = fade.loss_rate_percent_per_s(3.0, 288.15);
  const double room = fade.loss_rate_percent_per_s(3.0, kRoom);
  const double hot = fade.loss_rate_percent_per_s(3.0, 318.15);
  EXPECT_GT(room, cold);
  EXPECT_GT(hot, room);
  // 50 kJ/mol: roughly x3.6 from 25 C to 45 C.
  EXPECT_NEAR(hot / room, 3.55, 0.4);
}

TEST(CapacityFade, SuperlinearInCurrent) {
  const CellParams cell;
  const CapacityFadeModel fade(cell);
  const double one = fade.loss_rate_percent_per_s(cell.capacity_ah, kRoom);
  const double two =
      fade.loss_rate_percent_per_s(2.0 * cell.capacity_ah, kRoom);
  EXPECT_NEAR(two / one, std::pow(2.0, cell.l3), 1e-9);
}

TEST(CapacityFade, PackCurrentDividesAcrossStrings) {
  const CapacityFadeModel fade((CellParams()));
  const double from_pack = fade.loss_rate_from_pack_current(100.0, 25, kRoom);
  const double from_cell = fade.loss_rate_percent_per_s(4.0, kRoom);
  EXPECT_NEAR(from_pack, from_cell, 1e-15);
}

TEST(CapacityFade, MissionsToEndOfLife) {
  const CapacityFadeModel fade((CellParams()));
  EXPECT_NEAR(fade.missions_to_end_of_life(0.002), 10000.0, 1e-9);
  EXPECT_TRUE(std::isinf(fade.missions_to_end_of_life(0.0)));
}

TEST(CapacityFade, LossForStepScalesWithDt) {
  const CapacityFadeModel fade((CellParams()));
  const double one = fade.loss_for_step(3.0, kRoom, 1.0);
  EXPECT_NEAR(fade.loss_for_step(3.0, kRoom, 10.0), 10.0 * one, 1e-15);
}

TEST(Params, ConfigOverridesApply) {
  Config cfg;
  cfg.set_pair("battery.series=50");
  cfg.set_pair("battery.parallel=10");
  cfg.set_pair("battery.cell.capacity_ah=2.9");
  const PackParams p = PackParams::from_config(cfg);
  EXPECT_EQ(p.series, 50);
  EXPECT_EQ(p.parallel, 10);
  EXPECT_DOUBLE_EQ(p.cell.capacity_ah, 2.9);
  EXPECT_DOUBLE_EQ(p.capacity_ah(), 29.0);
}

TEST(Params, InvalidConfigThrows) {
  Config cfg;
  cfg.set_pair("battery.series=0");
  EXPECT_THROW(PackParams::from_config(cfg), SimError);
}

}  // namespace
}  // namespace otem::battery
