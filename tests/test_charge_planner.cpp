// Tests for the battery->ultracap charge-migration planner.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "hees/charge_planner.h"
#include "hees/hybrid_arch.h"

namespace otem::hees {
namespace {

battery::PackModel bat() { return battery::PackModel(battery::PackParams{}); }
ultracap::BankModel cap() {
  return ultracap::BankModel(ultracap::BankParams{});
}
Converter conv() {
  return Converter(HybridParams::for_storages(bat(), cap()).cap_converter);
}

ChargePlannerInputs default_in() {
  ChargePlannerInputs in;
  in.soe_start_percent = 30.0;
  in.soe_target_percent = 70.0;
  in.window_s = 180.0;
  return in;
}

TEST(ChargePlanner, ReachesTheTarget) {
  const ChargePlan plan = plan_migration(bat(), cap(), conv(), default_in());
  EXPECT_TRUE(plan.feasible);
  EXPECT_GE(plan.final_soe_percent, 70.0 - 1e-6);
  EXPECT_GT(plan.bus_power_w, 0.0);
  EXPECT_LE(plan.steps, 180u);
}

TEST(ChargePlanner, UsesTheWholeWindow) {
  // Minimum-loss = lowest power = finishing right at the deadline.
  const ChargePlan plan = plan_migration(bat(), cap(), conv(), default_in());
  EXPECT_GE(plan.steps, 175u);  // within bisection resolution of 180
}

TEST(ChargePlanner, ConstantBeatsFrontLoadedOnBatteryLoss) {
  // Same delivered energy, bursty schedule: more I^2 R. This is the
  // convexity argument the planner is built on.
  const ChargePlannerInputs in = default_in();
  const ChargePlan constant = plan_migration(bat(), cap(), conv(), in);

  // Front-loaded: ~2.2x power for a little over half the steps (the
  // margin covers truncation and the converter's efficiency droop at
  // low SoE), zero after.
  std::vector<double> bursty(static_cast<size_t>(in.window_s), 0.0);
  for (size_t k = 0; k < constant.steps / 2 + 4; ++k)
    bursty[k] = 2.2 * constant.bus_power_w;
  const ChargePlan front =
      simulate_migration(bat(), cap(), conv(), in, bursty);

  ASSERT_TRUE(front.feasible);
  EXPECT_GT(front.battery_loss_j, 1.6 * constant.battery_loss_j);
}

TEST(ChargePlanner, ConverterLossMatchesEfficiencyIntegral) {
  const ChargePlannerInputs in = default_in();
  const ChargePlan plan = plan_migration(bat(), cap(), conv(), in);
  // Energy stored in the bank equals the target SoE delta.
  const double stored = (plan.final_soe_percent - in.soe_start_percent) /
                        100.0 * cap().energy_capacity_j();
  const double sent = plan.bus_power_w * plan.steps * in.dt;
  EXPECT_NEAR(sent - stored, plan.converter_loss_j, sent * 1e-9);
  EXPECT_GT(plan.converter_loss_j, 0.0);
}

TEST(ChargePlanner, InfeasibleTargetFlagged) {
  ChargePlannerInputs in = default_in();
  in.window_s = 5.0;  // nowhere near enough time
  const ChargePlan plan = plan_migration(bat(), cap(), conv(), in);
  EXPECT_FALSE(plan.feasible);
  EXPECT_LT(plan.final_soe_percent, in.soe_target_percent);
  EXPECT_DOUBLE_EQ(plan.bus_power_w, in.max_bus_power_w);
}

TEST(ChargePlanner, HigherStartNeedsLessPower) {
  ChargePlannerInputs near = default_in();
  near.soe_start_percent = 60.0;
  const ChargePlan from_near = plan_migration(bat(), cap(), conv(), near);
  const ChargePlan from_far =
      plan_migration(bat(), cap(), conv(), default_in());
  EXPECT_LT(from_near.bus_power_w, from_far.bus_power_w);
  EXPECT_LT(from_near.battery_loss_j, from_far.battery_loss_j);
}

TEST(ChargePlanner, Validation) {
  ChargePlannerInputs in = default_in();
  in.soe_target_percent = in.soe_start_percent - 5.0;
  EXPECT_THROW(plan_migration(bat(), cap(), conv(), in), SimError);
  ChargePlannerInputs in2 = default_in();
  in2.window_s = 0.5;
  EXPECT_THROW(plan_migration(bat(), cap(), conv(), in2), SimError);
}

}  // namespace
}  // namespace otem::hees
