// Tests for the cabin HVAC load model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "vehicle/hvac.h"

namespace otem::vehicle {
namespace {

CabinHvac default_hvac() { return CabinHvac(HvacParams{}); }

TEST(Hvac, NoLoadInTheComfortBand) {
  const CabinHvac hvac = default_hvac();
  // Around ~16 C ambient the solar gain balances the envelope loss at
  // the 22 C setpoint; nearby ambients need no HVAC power.
  const double balance_amb =
      HvacParams{}.setpoint_k - HvacParams{}.solar_gain_w /
                                    HvacParams{}.envelope_ua;
  EXPECT_DOUBLE_EQ(hvac.steady_load_w(balance_amb), 0.0);
}

TEST(Hvac, LoadGrowsAwayFromTheBalancePoint) {
  const CabinHvac hvac = default_hvac();
  const double hot35 = hvac.steady_load_w(308.15);
  const double hot40 = hvac.steady_load_w(313.15);
  const double cold0 = hvac.steady_load_w(273.15);
  const double cold_m10 = hvac.steady_load_w(263.15);
  EXPECT_GT(hot40, hot35);
  EXPECT_GT(cold_m10, cold0);
  EXPECT_GT(hot35, 0.0);
  EXPECT_GT(cold0, 0.0);
}

TEST(Hvac, SteadyLoadValuesPlausible) {
  // A 40 C day: UA*(40-22)+solar = 55*18+350 = 1340 W thermal -> /COP
  // = 536 W electric.
  const CabinHvac hvac = default_hvac();
  EXPECT_NEAR(hvac.steady_load_w(313.15), (55.0 * 18.0 + 350.0) / 2.5,
              1.0);
  // Deep winter (-10 C): UA*32 - 350 = 1410 W heating -> 564 W.
  EXPECT_NEAR(hvac.steady_load_w(263.15), (55.0 * 32.0 - 350.0) / 2.5,
              1.0);
}

TEST(Hvac, LoadCappedByHardware) {
  HvacParams p;
  p.max_power_w = 300.0;
  const CabinHvac hvac(p);
  EXPECT_DOUBLE_EQ(hvac.steady_load_w(330.0), 300.0);
}

TEST(Hvac, PullDownReachesSetpoint) {
  const CabinHvac hvac = default_hvac();
  double t_cab = 323.15;  // 50 C soaked cabin
  double p = 0.0;
  double max_p = 0.0;
  for (int k = 0; k < 1800; ++k) {
    t_cab = hvac.step(t_cab, 308.15, 1.0, &p);
    max_p = std::max(max_p, p);
  }
  EXPECT_NEAR(t_cab, HvacParams{}.setpoint_k, 1.5);
  EXPECT_LE(max_p, HvacParams{}.max_power_w + 1e-9);
  EXPECT_GT(max_p, 1000.0);  // the pull-down works the compressor hard
}

TEST(Hvac, WinterPullUpWorksToo) {
  const CabinHvac hvac = default_hvac();
  double t_cab = 263.15;
  for (int k = 0; k < 2400; ++k) t_cab = hvac.step(t_cab, 263.15, 1.0, nullptr);
  EXPECT_NEAR(t_cab, HvacParams{}.setpoint_k, 1.5);
}

TEST(Hvac, IdlesInsideDeadBand) {
  const CabinHvac hvac = default_hvac();
  double p = 1.0;
  // Cabin exactly at setpoint: controller coasts.
  hvac.step(HvacParams{}.setpoint_k, 295.15, 1.0, &p);
  EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(Hvac, ConfigOverridesAndValidation) {
  Config cfg;
  cfg.set_pair("hvac.cop=3.5");
  cfg.set_pair("hvac.setpoint_k=294");
  const HvacParams p = HvacParams::from_config(cfg);
  EXPECT_DOUBLE_EQ(p.cop, 3.5);
  EXPECT_DOUBLE_EQ(p.setpoint_k, 294.0);
  Config bad;
  bad.set_pair("hvac.cop=0");
  EXPECT_THROW(HvacParams::from_config(bad), SimError);
}

}  // namespace
}  // namespace otem::vehicle
