// Tests for the cell-resolved pack thermal model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "thermal/pack_thermal.h"

namespace otem::thermal {
namespace {

CoolingParams params() { return CoolingParams{}; }

TEST(PackThermal, SingleSegmentMatchesLumpedModel) {
  const CoolingSystem lumped(params());
  const PackThermalModel pack(params(), 1);
  ThermalState ls{305.0, 300.0};
  PackThermalModel::State ps;
  ps.t_cell_k = {305.0};
  ps.t_coolant_k = {300.0};
  for (int k = 0; k < 300; ++k) {
    ls = lumped.step(ls, 2000.0, 295.0, 1.0);
    ps = pack.step(ps, 2000.0, 295.0, 1.0);
  }
  // One segment with upstream-midpoint inlet is exactly the lumped
  // scheme fed the true inlet.
  EXPECT_NEAR(ps.t_cell_k[0], ls.t_battery_k, 1e-9);
  EXPECT_NEAR(ps.t_coolant_k[0], ls.t_coolant_k, 1e-9);
}

TEST(PackThermal, DownstreamCellsRunHotter) {
  const PackThermalModel pack(params(), 8);
  auto s = pack.uniform(298.15);
  for (int k = 0; k < 4000; ++k) s = pack.step(s, 3000.0, 295.0, 1.0);
  for (int i = 1; i < 8; ++i)
    EXPECT_GT(s.t_cell_k[i], s.t_cell_k[i - 1]) << "segment " << i;
  EXPECT_GT(pack.hotspot_margin(s), 0.5);
}

TEST(PackThermal, EquilibriumIsSteadyState) {
  const PackThermalModel pack(params(), 6);
  const auto eq = pack.equilibrium(2400.0, 296.0);
  auto s = eq;
  for (int k = 0; k < 50; ++k) s = pack.step(s, 2400.0, 296.0, 1.0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(s.t_cell_k[i], eq.t_cell_k[i], 0.02);
    EXPECT_NEAR(s.t_coolant_k[i], eq.t_coolant_k[i], 0.02);
  }
}

TEST(PackThermal, StepConvergesToEquilibrium) {
  const PackThermalModel pack(params(), 6);
  auto s = pack.uniform(320.0);
  for (int k = 0; k < 30000; ++k) s = pack.step(s, 2400.0, 296.0, 1.0);
  const auto eq = pack.equilibrium(2400.0, 296.0);
  for (int i = 0; i < 6; ++i)
    EXPECT_NEAR(s.t_cell_k[i], eq.t_cell_k[i], 0.05);
}

TEST(PackThermal, OutletMatchesLumpedAtSteadyState) {
  // Both models must conserve energy: the stream leaves carrying all
  // the heat, so the outlet temperature is inlet + Q/Cdot either way.
  const CoolingParams p = params();
  const PackThermalModel pack(p, 10);
  const auto eq = pack.equilibrium(2000.0, 295.0);
  EXPECT_NEAR(pack.outlet(eq), 295.0 + 2000.0 / p.flow_heat_capacity_rate,
              1e-9);
}

TEST(PackThermal, MeanTracksLumpedUnderTransient) {
  // The distributed mean cell temperature stays within ~2 K of the
  // lumped prediction through a heating transient (the lumped coolant
  // is fully mixed at outlet temperature, so it runs slightly hotter
  // than the distributed mean).
  const CoolingSystem lumped(params());
  const PackThermalModel pack(params(), 10);
  ThermalState ls{298.15, 298.15};
  auto ps = pack.uniform(298.15);
  for (int k = 0; k < 1200; ++k) {
    const double q = (k / 100) % 2 == 0 ? 3500.0 : 500.0;  // pulsing
    ls = lumped.step(ls, q, 294.0, 1.0);
    ps = pack.step(ps, q, 294.0, 1.0);
    EXPECT_NEAR(pack.mean_cell(ps), ls.t_battery_k, 2.0) << "k=" << k;
  }
}

TEST(PackThermal, HotspotGrowsWithHeat) {
  const PackThermalModel pack(params(), 8);
  auto low = pack.equilibrium(1000.0, 295.0);
  auto high = pack.equilibrium(4000.0, 295.0);
  EXPECT_GT(pack.hotspot_margin(high), pack.hotspot_margin(low));
}

TEST(PackThermal, DistributedHeatShiftsHotSpot) {
  const PackThermalModel pack(params(), 4);
  auto s = pack.uniform(298.15);
  // All heat in the FIRST segment: it must become the hottest even
  // though it sits at the coolest end of the stream.
  const std::vector<double> q = {3000.0, 0.0, 0.0, 0.0};
  for (int k = 0; k < 4000; ++k)
    s = pack.step_distributed(s, q, 295.0, 1.0);
  EXPECT_GT(s.t_cell_k[0], s.t_cell_k[1]);
  EXPECT_GT(s.t_cell_k[0], s.t_cell_k[3]);
}

TEST(PackThermal, SegmentCountConverges) {
  // Refining the discretisation changes the hottest cell by little
  // beyond ~10 segments.
  const PackThermalModel coarse(params(), 10);
  const PackThermalModel fine(params(), 40);
  const double hot_coarse =
      coarse.hottest_cell(coarse.equilibrium(3000.0, 295.0));
  const double hot_fine = fine.hottest_cell(fine.equilibrium(3000.0, 295.0));
  EXPECT_NEAR(hot_coarse, hot_fine, 0.4);
}

TEST(PackThermal, InvalidInputsThrow) {
  EXPECT_THROW(PackThermalModel(params(), 0), SimError);
  const PackThermalModel pack(params(), 3);
  auto s = pack.uniform(298.0);
  EXPECT_THROW(pack.step_distributed(s, {1.0, 2.0}, 295.0, 1.0), SimError);
}

}  // namespace
}  // namespace otem::thermal
