// Tests for the receding-horizon OTEM controller.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/otem/otem_controller.h"

namespace otem::core {
namespace {

SystemSpec default_spec() { return SystemSpec::from_config(Config()); }

MpcOptions test_options(size_t horizon = 15) {
  MpcOptions o;
  o.horizon = horizon;
  return o;
}

OtemSolverOptions fast_solver() {
  OtemSolverOptions s;
  s.al.adam.max_iterations = 80;
  s.al.lbfgs.max_iterations = 15;
  s.al.max_outer_iterations = 3;
  return s;
}

TEST(OtemController, ProducesBoundedControls) {
  const SystemSpec spec = default_spec();
  OtemController ctrl(spec, test_options(), fast_solver());
  PlantState x;
  const auto u = ctrl.solve(x, std::vector<double>(15, 20000.0));
  EXPECT_LE(std::abs(u.p_cap_bus_w), spec.ultracap.max_power_w + 1e-6);
  EXPECT_GE(u.p_cooler_w, 0.0);
  EXPECT_LE(u.p_cooler_w, spec.thermal.max_cooler_power_w + 1e-6);
}

TEST(OtemController, HotBatteryTriggersCooling) {
  const SystemSpec spec = default_spec();
  OtemController ctrl(spec, test_options(20), fast_solver());
  PlantState hot;
  hot.t_battery_k = spec.thermal.max_battery_temp_k + 1.0;  // C1 violated
  hot.t_coolant_k = hot.t_battery_k - 2.0;
  const auto u = ctrl.solve(hot, std::vector<double>(20, 25000.0));
  // With T_b above the C1 ceiling the only feasible direction is
  // cooling hard.
  EXPECT_GT(u.p_cooler_w, 0.3 * spec.thermal.max_cooler_power_w);
}

TEST(OtemController, ColdIdleBatteryBarelyCools) {
  const SystemSpec spec = default_spec();
  OtemController ctrl(spec, test_options(), fast_solver());
  PlantState cold;
  cold.t_battery_k = 288.0;
  cold.t_coolant_k = 288.0;
  const auto u = ctrl.solve(cold, std::vector<double>(15, 1000.0));
  EXPECT_LT(u.p_cooler_w, 0.1 * spec.thermal.max_cooler_power_w);
}

TEST(OtemController, UltracapCarriesPartOfLargePeak) {
  const SystemSpec spec = default_spec();
  OtemController ctrl(spec, test_options(), fast_solver());
  PlantState x;
  // Large sustained request with a charged bank: the energy-loss term
  // favours splitting.
  const auto u = ctrl.solve(x, std::vector<double>(15, 60000.0));
  EXPECT_GT(u.p_cap_bus_w, 1000.0);
}

TEST(OtemController, RespectsSoeFloorWhenBankLow) {
  const SystemSpec spec = default_spec();
  OtemController ctrl(spec, test_options(), fast_solver());
  PlantState x;
  x.soe_percent = 21.0;  // just above the C5 floor
  ctrl.reset();
  const auto u = ctrl.solve(x, std::vector<double>(15, 50000.0));
  // Discharging hard from 21 % would cross the floor within a second
  // or two; the constraint must keep discharge modest (or charge).
  const double soe_after_10s =
      21.0 - 10.0 * 100.0 *
                 std::max(0.0, u.p_cap_bus_w) /
                 spec.ultracap.energy_capacity_j();
  EXPECT_GT(soe_after_10s, 15.0);
}

TEST(OtemController, SolveInfoPopulated) {
  OtemController ctrl(default_spec(), test_options(), fast_solver());
  PlantState x;
  ctrl.solve(x, std::vector<double>(15, 20000.0));
  const auto& info = ctrl.last_solve();
  EXPECT_GT(info.iterations, 0u);
  EXPECT_LT(info.constraint_violation, 1.0);
  EXPECT_EQ(ctrl.predicted_states().size(), 16u);
}

TEST(OtemController, WarmStartKeepsSolutionStable) {
  const SystemSpec spec = default_spec();
  OtemController ctrl(spec, test_options(), fast_solver());
  PlantState x;
  const std::vector<double> load(20, 30000.0);
  const auto u1 = ctrl.solve(x, load);
  // Same state, same load: the warm-started second solve must not be
  // dramatically different (the optimiser is deterministic).
  const auto u2 = ctrl.solve(x, load);
  EXPECT_NEAR(u1.p_cap_bus_w, u2.p_cap_bus_w,
              0.2 * spec.ultracap.max_power_w);
}

TEST(OtemController, DeterministicAcrossInstances) {
  PlantState x;
  x.t_battery_k = 303.0;
  const std::vector<double> load{10000, 20000, 50000, 60000, 30000,
                                 10000, 5000,  40000, 45000, 20000,
                                 15000, 25000, 35000, 30000, 10000};
  OtemController a(default_spec(), test_options(), fast_solver());
  OtemController b(default_spec(), test_options(), fast_solver());
  const auto ua = a.solve(x, load);
  const auto ub = b.solve(x, load);
  EXPECT_DOUBLE_EQ(ua.p_cap_bus_w, ub.p_cap_bus_w);
  EXPECT_DOUBLE_EQ(ua.p_cooler_w, ub.p_cooler_w);
}

TEST(OtemSolverOptions, ConfigOverrides) {
  Config cfg;
  cfg.set_pair("otem.solver.adam_iterations=55");
  cfg.set_pair("otem.solver.learning_rate=0.01");
  const OtemSolverOptions o = OtemSolverOptions::from_config(cfg);
  EXPECT_EQ(o.al.adam.max_iterations, 55u);
  EXPECT_DOUBLE_EQ(o.al.adam.learning_rate, 0.01);
}

TEST(MpcOptions, ConfigOverrides) {
  Config cfg;
  cfg.set_pair("otem.horizon=12");
  cfg.set_pair("otem.w2=1e9");
  const MpcOptions o = MpcOptions::from_config(cfg);
  EXPECT_EQ(o.horizon, 12u);
  EXPECT_DOUBLE_EQ(o.weights.w2, 1e9);
}

}  // namespace
}  // namespace otem::core
