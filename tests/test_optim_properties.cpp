// Property-based sweeps over the optimisation stack: factorisations on
// structured matrix families, solver convergence across conditioning,
// and QP KKT verification on random problems.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "optim/adam.h"
#include "optim/augmented_lagrangian.h"
#include "optim/decomposition.h"
#include "optim/lbfgs.h"
#include "optim/qp.h"
#include "optim/vector_ops.h"

namespace otem::optim {
namespace {

// ---------------------------------------------------------------------------
// Factorisations on structured families.

class ConditioningSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConditioningSweep, CholeskyAccurateAcrossConditioning) {
  // Diagonal-dominant SPD matrix with eigenvalue spread = condition.
  const double condition = GetParam();
  const size_t n = 20;
  Rng rng(7);
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / (n - 1);
    a(i, i) = std::pow(condition, t);  // eigenvalues 1..condition
  }
  // Random orthogonal-ish mixing via Jacobi rotations keeps SPD.
  for (int r = 0; r < 40; ++r) {
    const size_t i = rng.below(n), j = rng.below(n);
    if (i == j) continue;
    const double c = std::cos(rng.uniform(0.0, 3.14));
    const double s = std::sin(rng.uniform(0.0, 3.14));
    for (size_t k = 0; k < n; ++k) {
      const double ai = a(i, k), aj = a(j, k);
      a(i, k) = c * ai - s * aj;
      a(j, k) = s * ai + c * aj;
    }
    for (size_t k = 0; k < n; ++k) {
      const double ai = a(k, i), aj = a(k, j);
      a(k, i) = c * ai - s * aj;
      a(k, j) = s * ai + c * aj;
    }
  }
  Vector x_true(n);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  const Vector b = a * x_true;
  const Vector x = Cholesky(a).solve(b);
  const double tol = 1e-12 * condition + 1e-10;
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], tol);
}

INSTANTIATE_TEST_SUITE_P(Conditions, ConditioningSweep,
                         ::testing::Values(1.0, 1e2, 1e4, 1e6));

TEST(Decomposition, LuAndCholeskyAgreeOnSpd) {
  Rng rng(21);
  const size_t n = 15;
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  Matrix spd = a.transposed() * a;
  for (size_t i = 0; i < n; ++i) spd(i, i) += n;
  Vector b(n);
  for (auto& v : b) v = rng.uniform(-2.0, 2.0);
  const Vector x1 = Cholesky(spd).solve(b);
  const Vector x2 = Lu(spd).solve(b);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

TEST(Decomposition, DeterminantConsistentWithLogDet) {
  Rng rng(22);
  const size_t n = 8;
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  Matrix spd = a.transposed() * a;
  for (size_t i = 0; i < n; ++i) spd(i, i) += 2.0;
  EXPECT_NEAR(std::log(Lu(spd).det()), Cholesky(spd).log_det(), 1e-8);
}

// ---------------------------------------------------------------------------
// Inner solvers across quadratic families.

class QuadraticFamily : public ::testing::TestWithParam<int> {
 protected:
  /// f(x) = 1/2 x^T D x - b^T x with diagonal D of spread kappa.
  struct DiagQuadratic final : Objective {
    Vector d, b;
    size_t dim() const override { return d.size(); }
    double value_and_gradient(const Vector& x, Vector& g) override {
      g.assign(d.size(), 0.0);
      double f = 0.0;
      for (size_t i = 0; i < d.size(); ++i) {
        g[i] = d[i] * x[i] - b[i];
        f += 0.5 * d[i] * x[i] * x[i] - b[i] * x[i];
      }
      return f;
    }
  };

  DiagQuadratic make(int seed) const {
    Rng rng(static_cast<std::uint64_t>(seed));
    DiagQuadratic q;
    const size_t n = 6 + rng.below(10);
    q.d.resize(n);
    q.b.resize(n);
    for (size_t i = 0; i < n; ++i) {
      q.d[i] = std::pow(10.0, rng.uniform(0.0, 2.0));  // spread 1..100
      q.b[i] = rng.uniform(-5.0, 5.0);
    }
    return q;
  }
};

TEST_P(QuadraticFamily, LbfgsFindsTheMinimizer) {
  DiagQuadratic q = make(GetParam());
  Box box{Vector(q.dim(), -100.0), Vector(q.dim(), 100.0)};
  LbfgsOptions opt;
  opt.max_iterations = 200;
  const SolveResult r = minimize_lbfgs(q, box, Vector(q.dim(), 0.0), opt);
  for (size_t i = 0; i < q.dim(); ++i)
    EXPECT_NEAR(r.x[i], q.b[i] / q.d[i], 1e-5) << "seed " << GetParam();
}

TEST_P(QuadraticFamily, AdamGetsCloseDespiteConditioning) {
  DiagQuadratic q = make(GetParam());
  Box box{Vector(q.dim(), -100.0), Vector(q.dim(), 100.0)};
  AdamOptions opt;
  opt.max_iterations = 4000;
  opt.learning_rate = 0.05;
  const SolveResult r = minimize_adam(q, box, Vector(q.dim(), 0.0), opt);
  // Adam is a first-order method: accept approximate optimality.
  Vector g(q.dim());
  q.value_and_gradient(r.x, g);
  EXPECT_LT(projected_gradient_norm(box.lo, box.hi, r.x, g), 0.3)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuadraticFamily, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// QP: KKT verification on random box-constrained problems.

TEST(QpProperty, KktHoldsOnRandomBoxProblems) {
  Rng rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 4 + rng.below(8);
    QpProblem p;
    Matrix m(n, n);
    for (size_t r = 0; r < n; ++r)
      for (size_t c = 0; c < n; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
    p.p = m.transposed() * m;
    for (size_t i = 0; i < n; ++i) p.p(i, i) += 1.0;
    p.q.resize(n);
    for (auto& v : p.q) v = rng.uniform(-3.0, 3.0);
    p.a = Matrix::identity(n);
    p.l.assign(n, -1.0);
    p.u.assign(n, 1.0);

    QpOptions opt;
    opt.eps_abs = 1e-7;
    opt.eps_rel = 1e-7;
    const QpResult r = solve_qp(p, opt);
    ASSERT_TRUE(r.converged) << "trial " << trial;

    // KKT via projected gradient of the QP objective onto the box.
    Vector g = p.p * r.x;
    for (size_t i = 0; i < n; ++i) g[i] += p.q[i];
    EXPECT_LT(projected_gradient_norm(p.l, p.u, r.x, g), 1e-4)
        << "trial " << trial;
    EXPECT_LE(box_violation(p.l, p.u, r.x), 1e-6);
  }
}

// ---------------------------------------------------------------------------
// QP: warm-started solves land on the cold solution (to tolerance) and
// never need more information than the cold path — on random PSD
// problems, seeding from an arbitrary (even bad) point must not change
// the answer, and seeding from the solution of a nearby problem must
// not be slower than solving cold.

TEST(QpProperty, WarmStartMatchesColdOnRandomProblems) {
  Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 4 + rng.below(8);
    QpProblem p;
    Matrix m(n, n);
    for (size_t r = 0; r < n; ++r)
      for (size_t c = 0; c < n; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
    p.p = m.transposed() * m;
    for (size_t i = 0; i < n; ++i) p.p(i, i) += 1.0;
    p.q.resize(n);
    for (auto& v : p.q) v = rng.uniform(-3.0, 3.0);
    p.a = Matrix::identity(n);
    p.l.assign(n, -1.0);
    p.u.assign(n, 1.0);

    QpOptions opt;
    opt.eps_abs = 1e-7;
    opt.eps_rel = 1e-7;
    QpSolver cold_solver;
    const QpResult cold = cold_solver.solve(p, opt);
    ASSERT_TRUE(cold.converged) << "trial " << trial;

    QpWarmStart warm;
    warm.x.resize(n);
    warm.y.resize(n);
    for (auto& v : warm.x) v = rng.uniform(-2.0, 2.0);
    for (auto& v : warm.y) v = rng.uniform(-2.0, 2.0);
    QpSolver warm_solver;
    const QpResult r = warm_solver.solve(p, opt, warm);
    ASSERT_TRUE(r.converged) << "trial " << trial;
    EXPECT_TRUE(r.warm_started);
    for (size_t i = 0; i < n; ++i)
      EXPECT_NEAR(r.x[i], cold.x[i], 1e-4) << "trial " << trial << " i " << i;
  }
}

TEST(QpProperty, WarmFromNeighbourNeverSlowerOnDriftingSequence) {
  // A receding-horizon stand-in: the same QP drifts slowly in q; one
  // solver re-solves cold every step, the other carries its terminal
  // iterates forward. Warm must win (strictly, summed over the run).
  Rng rng(72);
  const size_t n = 8;
  QpProblem p;
  Matrix m(n, n);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
  p.p = m.transposed() * m;
  for (size_t i = 0; i < n; ++i) p.p(i, i) += 1.0;
  p.q.resize(n);
  for (auto& v : p.q) v = rng.uniform(-3.0, 3.0);
  p.a = Matrix::identity(n);
  p.l.assign(n, -1.0);
  p.u.assign(n, 1.0);

  QpSolver cold_solver;
  QpSolver warm_solver;
  QpWarmStart carry;
  size_t cold_total = 0;
  size_t warm_total = 0;
  for (int step = 0; step < 12; ++step) {
    for (auto& v : p.q) v += rng.uniform(-0.05, 0.05);
    QpSolver fresh;  // cold baseline: no caches at all
    const QpResult cold = fresh.solve(p);
    const QpResult warm = step == 0 ? warm_solver.solve(p)
                                    : warm_solver.solve(p, QpOptions{}, carry);
    ASSERT_TRUE(cold.converged) << "step " << step;
    ASSERT_TRUE(warm.converged) << "step " << step;
    cold_total += cold.iterations;
    warm_total += warm.iterations;
    carry.x = warm.x;
    carry.y = warm.y;
    carry.rho = warm.rho_final;
    for (size_t i = 0; i < n; ++i)
      EXPECT_NEAR(warm.x[i], cold.x[i], 1e-3) << "step " << step;
  }
  EXPECT_LT(warm_total, cold_total);
}

// ---------------------------------------------------------------------------
// Augmented Lagrangian on a family of scaled circle problems.

class CircleScale : public ::testing::TestWithParam<double> {};

TEST_P(CircleScale, MinimizeLinearOverDisk) {
  // min c^T x s.t. |x|^2 <= R^2 — optimum at -R c / |c|.
  const double radius = GetParam();
  struct Disk final : ConstrainedObjective {
    double r2;
    Vector c{1.0, 2.0};
    size_t dim() const override { return 2; }
    Box bounds() const override {
      return {Vector(2, -1e3), Vector(2, 1e3)};
    }
    size_t num_constraints() const override { return 1; }
    double evaluate(const Vector& x, Vector& con) override {
      con[0] = (x[0] * x[0] + x[1] * x[1] - r2) / r2;  // scaled
      return c[0] * x[0] + c[1] * x[1];
    }
    void gradient(const Vector& x, const Vector& w, Vector& g) override {
      g[0] = c[0] + w[0] * 2.0 * x[0] / r2;
      g[1] = c[1] + w[0] * 2.0 * x[1] / r2;
    }
  } disk;
  disk.r2 = radius * radius;

  AugmentedLagrangianOptions opt;
  opt.adam.max_iterations = 800;
  opt.adam.learning_rate = 0.05 * radius;
  const SolveResult r =
      minimize_augmented_lagrangian(disk, Vector(2, 0.0), opt);
  const double norm_c = std::sqrt(5.0);
  EXPECT_NEAR(r.x[0], -radius * 1.0 / norm_c, 0.02 * radius);
  EXPECT_NEAR(r.x[1], -radius * 2.0 / norm_c, 0.02 * radius);
}

INSTANTIATE_TEST_SUITE_P(Radii, CircleScale,
                         ::testing::Values(0.5, 1.0, 5.0, 20.0));

}  // namespace
}  // namespace otem::optim
