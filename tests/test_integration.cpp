// Integration tests: the paper's qualitative claims on reduced
// workloads. These are the "shape" checks — who wins and in which
// direction — that the full benches then quantify.
#include <gtest/gtest.h>

#include "core/cooling_methodology.h"
#include "core/dual_methodology.h"
#include "core/otem/otem_methodology.h"
#include "core/parallel_methodology.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

namespace otem {
namespace {

core::SystemSpec hot_spec() {
  // A warm day makes the thermal story visible on short workloads.
  Config cfg;
  cfg.set_pair("ambient_k=308.15");  // 35 C
  return core::SystemSpec::from_config(cfg);
}

TimeSeries us06_power(const core::SystemSpec& spec, size_t repeats = 1) {
  return vehicle::Powertrain(spec.vehicle)
      .power_trace(vehicle::generate(vehicle::CycleName::kUs06))
      .repeated(repeats);
}

core::MpcOptions fast_mpc() {
  core::MpcOptions o;
  o.horizon = 12;
  return o;
}

core::OtemSolverOptions fast_solver() {
  core::OtemSolverOptions s;
  s.al.adam.max_iterations = 60;
  s.al.lbfgs.max_iterations = 10;
  s.al.max_outer_iterations = 2;
  return s;
}

TEST(Integration, OtemReducesCapacityLossVsParallel) {
  // The Fig. 8 headline: OTEM < parallel on capacity loss.
  const core::SystemSpec spec = hot_spec();
  const sim::Simulator sim(spec);
  const TimeSeries power = us06_power(spec);

  core::ParallelMethodology parallel(spec);
  core::OtemMethodology otem(spec, fast_mpc(), fast_solver());
  const sim::RunResult r_par = sim.run(parallel, power);
  const sim::RunResult r_otem = sim.run(otem, power);

  EXPECT_LT(r_otem.qloss_percent, r_par.qloss_percent);
}

TEST(Integration, ActiveCoolingAvoidsThermalViolations) {
  // Fig. 1/6: without management the battery overheats on US06; the
  // active cooling system keeps it in the safe band.
  core::SystemSpec spec = hot_spec();
  spec.thermal.max_battery_temp_k = 311.15;  // tight 38 C ceiling @ 35 C day
  const sim::Simulator sim(spec);
  const TimeSeries power = us06_power(spec, 3);

  core::ParallelMethodology parallel(spec);
  core::CoolingMethodology cooling(spec);
  const sim::RunResult r_par = sim.run(parallel, power);
  const sim::RunResult r_cool = sim.run(cooling, power);

  EXPECT_GT(r_par.thermal_violation_s, 0.0);
  EXPECT_LT(r_cool.thermal_violation_s, r_par.thermal_violation_s);
  EXPECT_LT(r_cool.max_t_battery_k, r_par.max_t_battery_k);
}

TEST(Integration, ActiveCoolingCostsEnergy) {
  // Fig. 9: methodologies with active cooling consume more than the
  // passive parallel architecture.
  const core::SystemSpec spec = hot_spec();
  const sim::Simulator sim(spec);
  const TimeSeries power = us06_power(spec, 2);

  core::ParallelMethodology parallel(spec);
  core::CoolingMethodology cooling(spec);
  const sim::RunResult r_par = sim.run(parallel, power);
  const sim::RunResult r_cool = sim.run(cooling, power);

  EXPECT_GT(r_cool.energy_cooling_j, 0.0);
  EXPECT_GT(r_cool.average_power_w, r_par.average_power_w);
}

TEST(Integration, DualSwitchingLimitsTemperatureVsBatteryOnly) {
  // The [16] mechanism: venting to the UC caps the temperature rise.
  core::SystemSpec spec = hot_spec();
  const sim::Simulator sim(spec);
  const TimeSeries power = us06_power(spec, 2);

  core::DualMethodology dual(spec);
  // Battery-only comparison: cooling methodology with the cooler
  // disabled degenerates to pure battery.
  core::SystemSpec no_cool = spec;
  no_cool.thermal.max_cooler_power_w = 1e-9;
  core::CoolingMethodology battery_only(no_cool);

  const sim::RunResult r_dual = sim.run(dual, power);
  const sim::RunResult r_bat = sim.run(battery_only, power);
  EXPECT_LT(r_dual.max_t_battery_k, r_bat.max_t_battery_k);
}

TEST(Integration, SmallBankHurtsDualThermalManagement) {
  // Fig. 1: with an undersized bank the dual architecture cannot hold
  // the temperature — more violations / higher peak than a large bank.
  core::SystemSpec spec = hot_spec();
  spec.thermal.max_battery_temp_k = 313.15;
  const sim::Simulator sim_small(spec.with_ultracap_size(2000.0));
  const sim::Simulator sim_large(spec.with_ultracap_size(25000.0));
  const TimeSeries power = us06_power(spec, 3);

  core::DualMethodology dual_small(spec.with_ultracap_size(2000.0));
  core::DualMethodology dual_large(spec.with_ultracap_size(25000.0));
  const sim::RunResult r_small = sim_small.run(dual_small, power);
  const sim::RunResult r_large = sim_large.run(dual_large, power);

  // The small bank spends more time above the ceiling (venting
  // capacity exhausted sooner) even if peak temperatures are close.
  EXPECT_GE(r_small.thermal_violation_s, r_large.thermal_violation_s);
  EXPECT_GE(r_small.max_t_battery_k, r_large.max_t_battery_k - 0.3);
}

TEST(Integration, OtemStaysWithinThermalBand) {
  // C1 under OTEM on an aggressive workload.
  const core::SystemSpec spec = hot_spec();
  const sim::Simulator sim(spec);
  const TimeSeries power = us06_power(spec, 2);
  core::OtemMethodology otem(spec, fast_mpc(), fast_solver());
  const sim::RunResult r = sim.run(otem, power);
  EXPECT_LT(r.max_t_battery_k, spec.thermal.max_battery_temp_k + 1.5);
}

TEST(Integration, OtemUsesBothStorages) {
  const core::SystemSpec spec = hot_spec();
  const sim::Simulator sim(spec);
  const TimeSeries power = us06_power(spec);
  core::OtemMethodology otem(spec, fast_mpc(), fast_solver());
  const sim::RunResult r = sim.run(otem, power);
  // The UC actually cycled during the run.
  EXPECT_LT(r.trace.soe_percent.min(), 99.0);
  EXPECT_GT(r.energy_battery_j, 0.0);
}

TEST(Integration, OtemHandlesInternationalCycles) {
  // The controller generalises beyond the EPA schedules: a WLTP class-3
  // mission (long, mixed, 131 km/h extra-high phase) runs clean.
  const core::SystemSpec spec = hot_spec();
  const sim::Simulator sim(spec);
  const TimeSeries power =
      vehicle::Powertrain(spec.vehicle)
          .power_trace(vehicle::generate(vehicle::CycleName::kWltp3));
  core::OtemMethodology otem(spec, fast_mpc(), fast_solver());
  const sim::RunResult r = sim.run(otem, power);
  EXPECT_LT(r.max_t_battery_k, spec.thermal.max_battery_temp_k + 1.0);
  EXPECT_LT(r.unserved_energy_j, 1.0);
  EXPECT_GT(r.energy_hees_j, 1e6);
}

TEST(Integration, MilderCycleAgesLess) {
  // Sanity across workloads: NYCC (gentle) ages the battery less than
  // US06 (aggressive) under identical management.
  const core::SystemSpec spec = hot_spec();
  const sim::Simulator sim(spec);
  const vehicle::Powertrain pt(spec.vehicle);
  core::ParallelMethodology m1(spec), m2(spec);
  const sim::RunResult nycc =
      sim.run(m1, pt.power_trace(vehicle::generate(vehicle::CycleName::kNycc)));
  const sim::RunResult us06 =
      sim.run(m2, pt.power_trace(vehicle::generate(vehicle::CycleName::kUs06)));
  EXPECT_LT(nycc.qloss_percent, us06.qloss_percent);
}

}  // namespace
}  // namespace otem
