// Tests for the execution subsystem (exec::ThreadPool).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/stop_token.h"
#include "exec/thread_pool.h"

namespace otem::exec {
namespace {

TEST(ThreadPool, DefaultConcurrencyIsPositive) {
  EXPECT_GE(default_concurrency(), 1u);
}

TEST(ThreadPool, ThreadCountMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  ThreadPool serial(1);
  EXPECT_EQ(serial.thread_count(), 1u);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SerialPoolVisitsInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.parallel_for(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelMapCollectsByIndex) {
  ThreadPool pool(4);
  const std::vector<int> out =
      pool.parallel_map(8, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(64, [&](size_t i) {
      if (i == 13) throw std::runtime_error("boom");
      completed.fetch_add(1);
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Every non-throwing index still ran: one failure does not abandon
  // the batch.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, ExceptionOnSerialPathPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(4, [](size_t i) {
        if (i == 2) throw std::invalid_argument("serial boom");
      }),
      std::invalid_argument);
}

TEST(ThreadPool, NestedParallelForRunsSeriallyWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  pool.parallel_for(8, [&](size_t) {
    // A nested parallel_for from inside a pool task must degrade to a
    // serial loop on this worker instead of waiting on the pool.
    pool.parallel_for(8, [&](size_t) { inner_calls.fetch_add(1); });
  });
  EXPECT_EQ(inner_calls.load(), 64);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(100, [&](size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, FreeFunctionHonoursSerialWidth) {
  std::vector<size_t> order;
  parallel_for(4, [&](size_t i) { order.push_back(i); }, /*threads=*/1);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ThreadPool, FreeFunctionExplicitWidthVisitsAll) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(64, [&](size_t i) { hits[i].fetch_add(1); },
               /*threads=*/3);
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

// --- submit(): independent joinable tasks -----------------------------------

TEST(Submit, RunsTaskAndWaitJoins) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  TaskHandle h = pool.submit([&] { ran.fetch_add(1); });
  ASSERT_TRUE(h.valid());
  h.wait();
  EXPECT_TRUE(h.done());
  EXPECT_EQ(ran.load(), 1);
}

TEST(Submit, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<TaskHandle> handles;
  for (long i = 0; i < 100; ++i)
    handles.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  for (TaskHandle& h : handles) h.wait();
  EXPECT_EQ(sum.load(), 4950);
}

TEST(Submit, WaitRethrowsTheTaskException) {
  ThreadPool pool(2);
  TaskHandle h = pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(h.wait(), std::runtime_error);
  EXPECT_TRUE(h.done());  // faulted counts as finished
}

TEST(Submit, SerialPoolRunsInline) {
  ThreadPool pool(1);  // no workers: must not deadlock
  bool ran = false;
  TaskHandle h = pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);  // already executed on the calling thread
  EXPECT_TRUE(h.done());
  h.wait();
}

TEST(Submit, FromInsideAPoolTaskRunsInline) {
  ThreadPool pool(2);
  std::atomic<bool> inner_ran{false};
  TaskHandle outer = pool.submit([&] {
    // A nested submit must not wait on a queue only this pool drains.
    TaskHandle inner = pool.submit([&] { inner_ran.store(true); });
    EXPECT_TRUE(inner.done());
  });
  outer.wait();
  EXPECT_TRUE(inner_ran.load());
}

TEST(Submit, CoexistsWithParallelForBatches) {
  ThreadPool pool(4);
  std::atomic<int> task_runs{0};
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 16; ++i)
    handles.push_back(pool.submit([&] { task_runs.fetch_add(1); }));
  // Batch work keeps its bit-identical semantics with tasks in flight.
  std::atomic<long> sum{0};
  pool.parallel_for(1000, [&](size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 499500);
  for (TaskHandle& h : handles) h.wait();
  EXPECT_EQ(task_runs.load(), 16);
}

TEST(Submit, InvalidHandleIsInert) {
  TaskHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.done());
  h.wait();  // no-op, must not crash
}

TEST(Submit, CooperativeCancellationViaStopToken) {
  ThreadPool pool(2);
  StopSource source;
  StopToken token = source.token();
  std::atomic<int> iterations{0};
  TaskHandle h = pool.submit([&] {
    while (!token.stop_requested()) {
      iterations.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  source.request_stop();
  h.wait();  // returns only because the task observed the stop
  EXPECT_GE(iterations.load(), 0);
  EXPECT_TRUE(h.done());
}

// --- stop tokens ------------------------------------------------------------

TEST(StopToken, EmptyTokenNeverStops) {
  StopToken t;
  EXPECT_FALSE(t.stop_possible());
  EXPECT_FALSE(t.stop_requested());
  EXPECT_FALSE(t.deadline_expired());
}

TEST(StopToken, RequestStopTripsEveryToken) {
  StopSource src;
  StopToken a = src.token();
  StopToken b = src.token();
  EXPECT_TRUE(a.stop_possible());
  EXPECT_FALSE(a.stop_requested());
  src.request_stop();
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(b.stop_requested());
  // An explicit stop is not a deadline.
  EXPECT_FALSE(a.deadline_expired());
}

TEST(StopToken, PastDeadlineTripsAndLatchesAsExpired) {
  const StopSource src = StopSource::with_deadline(
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  StopToken t = src.token();
  EXPECT_TRUE(t.stop_requested());
  EXPECT_TRUE(t.deadline_expired());
}

TEST(StopToken, FutureDeadlineStillAllowsExplicitStop) {
  const StopSource src = StopSource::with_deadline(
      std::chrono::steady_clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(src.token().stop_requested());
  src.request_stop();
  EXPECT_TRUE(src.token().stop_requested());
  EXPECT_FALSE(src.token().deadline_expired());
}

}  // namespace
}  // namespace otem::exec
