// Tests for the execution subsystem (exec::ThreadPool).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.h"

namespace otem::exec {
namespace {

TEST(ThreadPool, DefaultConcurrencyIsPositive) {
  EXPECT_GE(default_concurrency(), 1u);
}

TEST(ThreadPool, ThreadCountMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  ThreadPool serial(1);
  EXPECT_EQ(serial.thread_count(), 1u);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SerialPoolVisitsInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.parallel_for(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelMapCollectsByIndex) {
  ThreadPool pool(4);
  const std::vector<int> out =
      pool.parallel_map(8, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(64, [&](size_t i) {
      if (i == 13) throw std::runtime_error("boom");
      completed.fetch_add(1);
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Every non-throwing index still ran: one failure does not abandon
  // the batch.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, ExceptionOnSerialPathPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(4, [](size_t i) {
        if (i == 2) throw std::invalid_argument("serial boom");
      }),
      std::invalid_argument);
}

TEST(ThreadPool, NestedParallelForRunsSeriallyWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  pool.parallel_for(8, [&](size_t) {
    // A nested parallel_for from inside a pool task must degrade to a
    // serial loop on this worker instead of waiting on the pool.
    pool.parallel_for(8, [&](size_t) { inner_calls.fetch_add(1); });
  });
  EXPECT_EQ(inner_calls.load(), 64);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(100, [&](size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, FreeFunctionHonoursSerialWidth) {
  std::vector<size_t> order;
  parallel_for(4, [&](size_t i) { order.push_back(i); }, /*threads=*/1);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ThreadPool, FreeFunctionExplicitWidthVisitsAll) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(64, [&](size_t i) { hits[i].fetch_add(1); },
               /*threads=*/3);
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

}  // namespace
}  // namespace otem::exec
