// Tests for the BMS SoC observer: convergence from wrong initial
// estimates, rejection of current-sensor bias, noise tolerance.
#include <gtest/gtest.h>

#include <cmath>

#include "battery/soc_observer.h"
#include "common/error.h"
#include "common/rng.h"

namespace otem::battery {
namespace {

constexpr double kRoom = 298.15;

PackModel default_pack() { return PackModel(PackParams{}); }

/// Ground-truth plant: exact coulomb counting + exact terminal voltage.
struct TruthPlant {
  PackModel model = default_pack();
  double soc;

  explicit TruthPlant(double soc0) : soc(soc0) {}

  /// Advance by dt at pack current i; returns the true terminal voltage.
  double step(double i, double dt) {
    soc = model.step_soc(soc, i, dt);
    return model.terminal_voltage(soc, kRoom, i);
  }
};

TEST(SocObserver, TracksExactlyWithPerfectSensorsAndInit) {
  TruthPlant plant(80.0);
  SocObserver obs(default_pack(), SocObserverParams{}, 80.0);
  for (int k = 0; k < 600; ++k) {
    const double i = (k % 20 < 10) ? 60.0 : -20.0;
    const double v = plant.step(i, 1.0);
    obs.update(i, v, kRoom, 1.0);
  }
  EXPECT_NEAR(obs.soc_percent(), plant.soc, 0.05);
}

TEST(SocObserver, ConvergesFromWrongInitialEstimate) {
  TruthPlant plant(75.0);
  SocObserver obs(default_pack(), SocObserverParams{}, 45.0);  // 30 % off
  for (int k = 0; k < 900; ++k) {
    const double i = 30.0 + 20.0 * std::sin(k / 15.0);
    const double v = plant.step(i, 1.0);
    obs.update(i, v, kRoom, 1.0);
  }
  EXPECT_NEAR(obs.soc_percent(), plant.soc, 1.5);
}

TEST(SocObserver, CorrectsCurrentSensorBias) {
  // A +5 A sensor bias makes a pure coulomb counter drift ~10 % per
  // hour on this pack; the voltage correction pins the estimate.
  TruthPlant plant(90.0);
  SocObserver corrected(default_pack(), SocObserverParams{}, 90.0);
  SocObserverParams open_loop;
  open_loop.correction_rate = 0.0;  // pure coulomb counting
  SocObserver drifting(default_pack(), open_loop, 90.0);

  const double bias = 5.0;
  for (int k = 0; k < 3600; ++k) {
    const double i = 25.0 + 15.0 * std::sin(k / 40.0);
    const double v = plant.step(i, 1.0);
    corrected.update(i + bias, v, kRoom, 1.0);
    drifting.update(i + bias, v, kRoom, 1.0);
  }
  const double err_corrected = std::abs(corrected.soc_percent() - plant.soc);
  const double err_drifting = std::abs(drifting.soc_percent() - plant.soc);
  EXPECT_GT(err_drifting, 8.0);       // the drift is real
  EXPECT_LT(err_corrected, 2.0);      // and the observer defeats it
}

TEST(SocObserver, StableUnderVoltageNoise) {
  TruthPlant plant(70.0);
  SocObserver obs(default_pack(), SocObserverParams{}, 70.0);
  Rng rng(17);
  for (int k = 0; k < 1800; ++k) {
    const double i = 40.0 + 30.0 * std::sin(k / 25.0);
    const double v = plant.step(i, 1.0) + rng.normal(0.0, 1.0);  // 1 V rms
    obs.update(i, v, kRoom, 1.0);
  }
  EXPECT_NEAR(obs.soc_percent(), plant.soc, 2.0);
}

TEST(SocObserver, InnovationReportedAndSmallAtConvergence) {
  TruthPlant plant(60.0);
  SocObserver obs(default_pack(), SocObserverParams{}, 60.0);
  double v = 0.0;
  for (int k = 0; k < 120; ++k) {
    v = plant.step(20.0, 1.0);
    obs.update(20.0, v, kRoom, 1.0);
  }
  EXPECT_LT(std::abs(obs.last_innovation_v()), 0.5);
}

TEST(SocObserver, ClampsToPhysicalRange) {
  SocObserver obs(default_pack(), SocObserverParams{}, 1.0);
  // Massive discharge claim: estimate must not go below 0.
  for (int k = 0; k < 50; ++k) obs.update(500.0, 250.0, kRoom, 1.0);
  EXPECT_GE(obs.soc_percent(), 0.0);
}

TEST(SocObserver, ConfigValidation) {
  Config cfg;
  cfg.set_pair("bms.correction_rate=-1");
  EXPECT_THROW(SocObserverParams::from_config(cfg), SimError);
  Config ok;
  ok.set_pair("bms.correction_rate=0.1");
  EXPECT_DOUBLE_EQ(SocObserverParams::from_config(ok).correction_rate, 0.1);
}

}  // namespace
}  // namespace otem::battery
