// Tests for the banded KKT path: fixed-size SmallMat kernels against
// the runtime-sized Matrix oracles, the block-tridiagonal Cholesky
// against the dense factorisation, the structured LtvQpSolver against
// the dense QpSolver on randomised stage problems (via
// ltv_qp_to_dense), and the controller-level dense-vs-banded agreement
// on receding-horizon sequences.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/otem/ltv_controller.h"
#include "optim/block_tridiag.h"
#include "optim/decomposition.h"
#include "optim/ltv_qp.h"
#include "optim/matrix.h"
#include "optim/qp.h"
#include "optim/small_mat.h"

namespace otem::optim {
namespace {

template <size_t R, size_t C>
SmallMat<R, C> random_small(Rng& rng, double lo = -1.0, double hi = 1.0) {
  SmallMat<R, C> s;
  for (size_t r = 0; r < R; ++r)
    for (size_t c = 0; c < C; ++c) s.m[r][c] = rng.uniform(lo, hi);
  return s;
}

template <size_t R, size_t C>
Matrix to_matrix(const SmallMat<R, C>& s) {
  Matrix m(R, C);
  for (size_t r = 0; r < R; ++r)
    for (size_t c = 0; c < C; ++c) m(r, c) = s.m[r][c];
  return m;
}

// ---------------------------------------------------------------------------
// SmallMat kernels vs the runtime-sized Matrix oracle.

TEST(SmallMatKernels, MultiplyAddMatchesMatrix) {
  Rng rng(1);
  const auto a = random_small<4, 2>(rng);
  const auto b = random_small<2, 6>(rng);
  SmallMat<4, 6> out = {};
  multiply_add(a, b, out);
  Matrix oracle(4, 6);
  to_matrix(a).multiply_into(to_matrix(b), oracle);
  for (size_t r = 0; r < 4; ++r)
    for (size_t c = 0; c < 6; ++c)
      EXPECT_NEAR(out.m[r][c], oracle(r, c), 1e-14);
}

TEST(SmallMatKernels, TransposeMultiplyAddMatchesMatrix) {
  Rng rng(2);
  const auto a = random_small<4, 2>(rng);
  const auto b = random_small<4, 4>(rng);
  SmallMat<2, 4> out = {};
  const double alpha = 3.25;
  transpose_multiply_add(a, b, alpha, out);
  const Matrix am = to_matrix(a);
  const Matrix bm = to_matrix(b);
  for (size_t r = 0; r < 2; ++r)
    for (size_t c = 0; c < 4; ++c) {
      double want = 0.0;
      for (size_t k = 0; k < 4; ++k) want += alpha * am(k, r) * bm(k, c);
      EXPECT_NEAR(out.m[r][c], want, 1e-14);
    }
}

TEST(SmallMatKernels, CholeskySolveMatchesDense) {
  Rng rng(3);
  // SPD via G G^T + diagonal shift.
  const auto g = random_small<6, 6>(rng);
  SmallMat<6, 6> spd = {};
  for (size_t i = 0; i < 6; ++i)
    for (size_t j = 0; j < 6; ++j) {
      double s = i == j ? 6.0 : 0.0;
      for (size_t k = 0; k < 6; ++k) s += g.m[i][k] * g.m[j][k];
      spd.m[i][j] = s;
    }
  const Matrix dense = to_matrix(spd);
  Vector b(6);
  for (auto& v : b) v = rng.uniform(-2.0, 2.0);

  SmallMat<6, 6> fac = spd;
  cholesky_factor(fac);
  Vector x = b;
  forward_subst(fac, x.data());
  backward_subst(fac, x.data());

  const Vector oracle = Cholesky(dense).solve(b);
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], oracle[i], 1e-10);
}

TEST(SmallMatKernels, CholeskyThrowsOnIndefiniteBlock) {
  SmallMat<2, 2> bad = {};
  bad.m[0][0] = 1.0;
  bad.m[0][1] = bad.m[1][0] = 4.0;
  bad.m[1][1] = 1.0;  // eigenvalues 5, -3
  EXPECT_THROW(cholesky_factor(bad), SimError);
}

// ---------------------------------------------------------------------------
// Block-tridiagonal Cholesky vs the dense factorisation.

class BlockTridiagSeed : public ::testing::TestWithParam<int> {};

TEST_P(BlockTridiagSeed, SolveMatchesDenseCholesky) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const size_t h = 3 + static_cast<size_t>(GetParam()) % 5;
  constexpr size_t N = 6;

  // Build K = L L^T from a random block lower-bidiagonal L with a
  // dominant diagonal, so K is SPD block-tridiagonal by construction.
  std::vector<SmallMat<N, N>> ldiag(h), lsub(h - 1);
  for (size_t k = 0; k < h; ++k) {
    ldiag[k] = random_small<N, N>(rng, -0.5, 0.5);
    for (size_t i = 0; i < N; ++i) {
      for (size_t j = i + 1; j < N; ++j) ldiag[k].m[i][j] = 0.0;
      ldiag[k].m[i][i] = rng.uniform(1.0, 2.0);
    }
    if (k + 1 < h) lsub[k] = random_small<N, N>(rng, -0.5, 0.5);
  }
  std::vector<SmallMat<N, N>> diag(h), sub(h - 1);
  Matrix dense(h * N, h * N);
  auto fill = [&](size_t bi, size_t bj, const SmallMat<N, N>& blk) {
    for (size_t i = 0; i < N; ++i)
      for (size_t j = 0; j < N; ++j) dense(bi * N + i, bj * N + j) = blk.m[i][j];
  };
  for (size_t k = 0; k < h; ++k) {
    // Blockwise K = L L^T: D_k = Ld_k Ld_k^T + Ls_{k-1} Ls_{k-1}^T and
    // S_{k+1} = Ls_k Ld_k^T.
    SmallMat<N, N> d = {};
    for (size_t i = 0; i < N; ++i)
      for (size_t j = 0; j < N; ++j) {
        double s = 0.0;
        for (size_t c = 0; c < N; ++c) s += ldiag[k].m[i][c] * ldiag[k].m[j][c];
        if (k > 0)
          for (size_t c = 0; c < N; ++c)
            s += lsub[k - 1].m[i][c] * lsub[k - 1].m[j][c];
        d.m[i][j] = s;
      }
    diag[k] = d;
    fill(k, k, d);
    if (k + 1 < h) {
      SmallMat<N, N> s3 = {};
      for (size_t i = 0; i < N; ++i)
        for (size_t j = 0; j < N; ++j) {
          double acc = 0.0;
          for (size_t c = 0; c < N; ++c) acc += lsub[k].m[i][c] * ldiag[k].m[j][c];
          s3.m[i][j] = acc;
        }
      sub[k] = s3;
      fill(k + 1, k, s3);
      for (size_t i = 0; i < N; ++i)
        for (size_t j = 0; j < N; ++j)
          dense(k * N + i, (k + 1) * N + j) = s3.m[j][i];
    }
  }

  Vector b(h * N);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  BlockTridiagCholesky<N> chol;
  chol.factor(diag, sub);
  Vector x = b;
  chol.solve_in_place(x);

  const Vector oracle = Cholesky(dense).solve(b);
  for (size_t i = 0; i < h * N; ++i) EXPECT_NEAR(x[i], oracle[i], 1e-9);

  // The cost counter is exact: 1 + 3(h-1) factor ops, 4h - 2 solve ops.
  EXPECT_EQ(chol.block_ops(), (1 + 3 * (h - 1)) + (4 * h - 2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockTridiagSeed, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Structured solver vs the dense oracle on randomised stage problems.

LtvQpProblem random_ltv_problem(Rng& rng, size_t horizon) {
  LtvQpProblem p;
  p.stages.resize(horizon);
  for (size_t k = 0; k < horizon; ++k) {
    LtvQpStage& s = p.stages[k];
    if (k > 0) s.aw = random_small<4, 4>(rng, -0.4, 0.4);
    s.bv = random_small<4, 2>(rng, -1.0, 1.0);
    for (size_t r = 0; r < 4; ++r) s.ew[r] = 1.0;
    for (size_t j = 0; j < 2; ++j) {
      s.v_lo[j] = -1.0;
      s.v_hi[j] = 1.0;
      s.p[j] = rng.uniform(0.5, 2.0);
      s.q[j] = rng.uniform(-1.5, 1.5);
      s.cv[j] = rng.uniform(-1.0, 1.0);
    }
    for (size_t r = 0; r < 4; ++r) {
      s.x_lo[r] = -4.0;
      s.x_hi[r] = 4.0;
      if (k > 0) s.cw[r] = rng.uniform(-0.3, 0.3);
    }
    s.b_lo = -3.0;
    s.b_hi = 3.0;
  }
  return p;
}

QpOptions tight_options() {
  QpOptions o;
  o.eps_abs = 1e-8;
  o.eps_rel = 1e-8;
  o.max_iterations = 200000;
  return o;
}

class LtvQpSeed : public ::testing::TestWithParam<int> {};

TEST_P(LtvQpSeed, BandedMatchesDenseOracle) {
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  const size_t horizon = 4 + static_cast<size_t>(GetParam()) % 6;
  const LtvQpProblem p = random_ltv_problem(rng, horizon);

  LtvQpSolver banded;
  const QpResult rb = banded.solve(p, tight_options());
  ASSERT_TRUE(rb.converged);
  EXPECT_GT(rb.stage_block_ops, 0u);

  QpSolver dense;
  const QpResult rd = dense.solve(ltv_qp_to_dense(p), tight_options());
  ASSERT_TRUE(rd.converged);
  EXPECT_EQ(rd.stage_block_ops, 0u);

  ASSERT_EQ(rb.x.size(), rd.x.size());
  for (size_t i = 0; i < rb.x.size(); ++i)
    EXPECT_NEAR(rb.x[i], rd.x[i], 2e-5) << "variable " << i;
}

TEST_P(LtvQpSeed, WarmStartReconvergesToSameSolution) {
  Rng rng(static_cast<std::uint64_t>(200 + GetParam()));
  const LtvQpProblem p = random_ltv_problem(rng, 6);

  LtvQpSolver solver;
  const QpResult cold = solver.solve(p, tight_options());
  ASSERT_TRUE(cold.converged);

  QpWarmStart warm;
  warm.x = cold.x;
  warm.y = cold.y;
  warm.rho = cold.rho_final;
  const QpResult rewarm = solver.solve(p, tight_options(), warm);
  ASSERT_TRUE(rewarm.converged);
  EXPECT_TRUE(rewarm.warm_started);
  EXPECT_LE(rewarm.iterations, cold.iterations);
  for (size_t i = 0; i < cold.x.size(); ++i)
    EXPECT_NEAR(rewarm.x[i], cold.x[i], 1e-5);
}

TEST_P(LtvQpSeed, PolishSnapsLooseSolveToTightSolution) {
  Rng rng(static_cast<std::uint64_t>(300 + GetParam()));
  const size_t horizon = 4 + static_cast<size_t>(GetParam()) % 6;
  const LtvQpProblem p = random_ltv_problem(rng, horizon);

  // Oracle: the dense solver at tight tolerance.
  QpSolver dense;
  const QpResult oracle = dense.solve(ltv_qp_to_dense(p), tight_options());
  ASSERT_TRUE(oracle.converged);

  // Banded path at a 6-decades-looser tolerance, with polish: ADMM only
  // identifies the active set, the polish snaps onto it exactly.
  QpOptions loose = tight_options();
  loose.eps_abs = 1e-2;
  loose.eps_rel = 1e-2;
  loose.polish = true;
  LtvQpSolver banded;
  const QpResult r = banded.solve(p, loose);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(r.polished);
  EXPECT_LT(r.primal_residual, 1e-6);
  EXPECT_LT(r.dual_residual, 1e-6);
  ASSERT_EQ(r.x.size(), oracle.x.size());
  for (size_t i = 0; i < r.x.size(); ++i)
    EXPECT_NEAR(r.x[i], oracle.x[i], 2e-5) << "variable " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LtvQpSeed, ::testing::Range(0, 6));

TEST(LtvQpSolver, FactorizationReusedOnIdenticalResolve) {
  Rng rng(7);
  const LtvQpProblem p = random_ltv_problem(rng, 5);
  QpOptions opt = tight_options();
  opt.rho_update_interval = 0;  // fixed rho: the factor depends only on data

  LtvQpSolver solver;
  const QpResult first = solver.solve(p, opt);
  ASSERT_TRUE(first.converged);
  EXPECT_GE(first.kkt_refactorizations, 1u);

  QpWarmStart warm;
  warm.x = first.x;
  warm.y = first.y;
  warm.rho = first.rho_final;
  const QpResult second = solver.solve(p, opt, warm);
  ASSERT_TRUE(second.converged);
  EXPECT_EQ(second.kkt_refactorizations, 0u);
}

TEST(LtvQpSolver, StageBlockOpsPerIterationGrowLinearlyInHorizon) {
  // The O(H) claim, on the architecture-independent counter: per-ADMM-
  // iteration block work at horizon 16 is ~2x horizon 8 (not 4x or 8x,
  // as any dense-factor path would give).
  QpOptions opt = tight_options();
  opt.rho_update_interval = 0;
  auto ops_per_iter = [&](size_t horizon) {
    Rng rng(42);  // same data modulo length
    const LtvQpProblem p = random_ltv_problem(rng, horizon);
    LtvQpSolver solver;
    const QpResult r = solver.solve(p, opt);
    EXPECT_TRUE(r.converged);
    return static_cast<double>(r.stage_block_ops) /
           static_cast<double>(r.iterations);
  };
  const double ratio = ops_per_iter(16) / ops_per_iter(8);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

}  // namespace
}  // namespace otem::optim

// ---------------------------------------------------------------------------
// Controller level: the banded transcription solves the same problem as
// the condensed dense path, across a receding-horizon sequence.

namespace otem::core {
namespace {

LtvOptions tight_controller_options(optim::KktSolveMode mode) {
  // Tighter than the production defaults so the comparison isolates the
  // transcription, not per-round ADMM slack.
  LtvOptions o;
  o.qp.kkt_mode = mode;
  o.qp.eps_abs = 1e-6;
  o.qp.eps_rel = 1e-6;
  o.qp.max_iterations = 40000;
  return o;
}

// One-shot solves from a fresh (reset) incumbent: with identical SQP
// linearisation points, the two transcriptions must produce the same
// controls to QP tolerance. Randomises horizon, state and load window,
// so different constraint sets go active (thermal, SoC, battery power).
class BandedVsDenseSeed : public ::testing::TestWithParam<int> {};

TEST_P(BandedVsDenseSeed, OneShotControlsMatchAcrossRandomWindows) {
  Rng rng(static_cast<std::uint64_t>(30 + GetParam()));
  const SystemSpec spec = SystemSpec::from_config(Config());
  const size_t horizon = 6 + static_cast<size_t>(GetParam()) % 8;
  MpcOptions mpc;
  mpc.horizon = horizon;
  LtvOtemController banded(
      spec, mpc, tight_controller_options(optim::KktSolveMode::kBanded));
  LtvOtemController dense(
      spec, mpc, tight_controller_options(optim::KktSolveMode::kDense));

  PlantState x;
  x.t_battery_k = rng.uniform(296.0, 309.0);
  x.t_coolant_k = x.t_battery_k - rng.uniform(0.0, 3.0);
  x.soc_percent = rng.uniform(45.0, 90.0);
  x.soe_percent = rng.uniform(35.0, 90.0);
  std::vector<double> window(horizon);
  for (auto& p : window) p = rng.uniform(0.0, 45000.0);

  const auto ub = banded.solve(x, window);
  const auto ud = dense.solve(x, window);
  EXPECT_TRUE(banded.last_solve().qp_converged);
  EXPECT_TRUE(dense.last_solve().qp_converged);
  EXPECT_GT(banded.last_solve().stage_block_ops, 0u);
  EXPECT_EQ(dense.last_solve().stage_block_ops, 0u);
  EXPECT_NEAR(ub.p_cap_bus_w, ud.p_cap_bus_w, 200.0);
  EXPECT_NEAR(ub.p_cooler_w, ud.p_cooler_w, 200.0);
  EXPECT_NEAR(banded.last_solve().cost, dense.last_solve().cost,
              1e-4 * std::abs(dense.last_solve().cost) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandedVsDenseSeed, ::testing::Range(0, 8));

TEST(LtvBandedController, MatchesDensePlanQualityOnRecedingHorizon) {
  // Across a receding-horizon sequence each controller re-linearises
  // around its OWN incumbent, and near SQP ties (the u = 0 loss kink)
  // watt-level QP differences can fork the trajectories — so per-step
  // control equality is NOT an invariant here. Equal plan QUALITY is:
  // both paths must accept plans of the same cost, every step.
  const SystemSpec spec = SystemSpec::from_config(Config());
  const size_t horizon = 10;
  MpcOptions mpc;
  mpc.horizon = horizon;
  LtvOtemController banded(
      spec, mpc, tight_controller_options(optim::KktSolveMode::kBanded));
  LtvOtemController dense(
      spec, mpc, tight_controller_options(optim::KktSolveMode::kDense));

  Rng rng(11);
  std::vector<double> load(horizon + 20);
  for (auto& p : load) p = rng.uniform(5000.0, 45000.0);

  PlantState x;
  x.t_battery_k = 301.0;
  x.t_coolant_k = 299.5;
  for (size_t step = 0; step + horizon <= load.size(); ++step) {
    const std::vector<double> window(load.begin() + step,
                                     load.begin() + step + horizon);
    const auto ub = banded.solve(x, window);
    const auto ud = dense.solve(x, window);
    EXPECT_TRUE(banded.last_solve().qp_converged) << "step " << step;
    EXPECT_TRUE(dense.last_solve().qp_converged) << "step " << step;
    // Controls stay inside the same physical boxes...
    EXPECT_LE(std::abs(ub.p_cap_bus_w), spec.ultracap.max_power_w + 1e-6);
    EXPECT_LE(std::abs(ub.p_cap_bus_w - ud.p_cap_bus_w),
              2.0 * spec.ultracap.max_power_w);
    // ...and the accepted plans are equally good.
    EXPECT_NEAR(banded.last_solve().cost, dense.last_solve().cost,
                0.01 * std::abs(dense.last_solve().cost))
        << "step " << step;
    x.t_battery_k += rng.uniform(-0.05, 0.05);
  }
}

}  // namespace
}  // namespace otem::core
