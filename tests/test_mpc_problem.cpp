// Tests for the OTEM MPC problem — above all, that the hand-written
// adjoint matches finite differences everywhere it matters.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/otem/mpc_problem.h"
#include "optim/finite_diff.h"

namespace otem::core {
namespace {

SystemSpec default_spec() { return SystemSpec::from_config(Config()); }

MpcOptions small_options(size_t horizon) {
  MpcOptions o;
  o.horizon = horizon;
  return o;
}

std::vector<double> ramp_load(size_t n, double lo, double hi) {
  std::vector<double> p(n);
  for (size_t k = 0; k < n; ++k)
    p[k] = lo + (hi - lo) * static_cast<double>(k) /
                    std::max<size_t>(1, n - 1);
  return p;
}

TEST(MpcProblem, DimensionsMatchHorizon) {
  MpcProblem prob(default_spec(), small_options(7));
  EXPECT_EQ(prob.dim(), 14u);
  EXPECT_EQ(prob.num_constraints(), 7u * kConstraintsPerStep);
  const optim::Box box = prob.bounds();
  EXPECT_EQ(box.lo.size(), 14u);
  for (size_t i = 0; i < box.lo.size(); ++i) {
    EXPECT_DOUBLE_EQ(box.lo[i], 0.0);
    EXPECT_DOUBLE_EQ(box.hi[i], 1.0);
  }
}

TEST(MpcProblem, DecodeEncodeRoundtrip) {
  MpcProblem prob(default_spec(), small_options(4));
  optim::Vector z(prob.dim(), 0.0);
  MpcProblem::Controls in;
  in.p_cap_bus_w = 12345.0;
  in.p_cooler_w = 2500.0;
  prob.encode(2, in, z);
  const MpcProblem::Controls out = prob.decode(z, 2);
  EXPECT_NEAR(out.p_cap_bus_w, in.p_cap_bus_w, 1e-6);
  EXPECT_NEAR(out.p_cooler_w, in.p_cooler_w, 1e-6);
}

TEST(MpcProblem, RolloutMatchesInitialState) {
  const SystemSpec spec = default_spec();
  MpcProblem prob(spec, small_options(5));
  PlantState x0;
  x0.t_battery_k = 305.0;
  x0.t_coolant_k = 301.0;
  x0.soc_percent = 80.0;
  x0.soe_percent = 70.0;
  prob.set_window(x0, ramp_load(5, 10000.0, 30000.0));

  optim::Vector z(prob.dim(), 0.5);
  optim::Vector c(prob.num_constraints());
  prob.evaluate(z, c);
  const auto& states = prob.predicted_states();
  ASSERT_EQ(states.size(), 6u);
  EXPECT_DOUBLE_EQ(states[0].t_battery_k, 305.0);
  EXPECT_DOUBLE_EQ(states[0].soc_percent, 80.0);
  // A 10-30 kW discharge must deplete the battery.
  EXPECT_LT(states[5].soc_percent, 80.0);
}

TEST(MpcProblem, CoolingControlLowersPredictedTemperature) {
  const SystemSpec spec = default_spec();
  MpcProblem prob(spec, small_options(60));
  PlantState x0;
  x0.t_battery_k = 310.0;
  x0.t_coolant_k = 308.0;
  prob.set_window(x0, ramp_load(60, 20000.0, 20000.0));

  optim::Vector c(prob.num_constraints());
  optim::Vector z_off(prob.dim(), 0.0);
  optim::Vector z_on(prob.dim(), 0.0);
  for (size_t k = 0; k < 60; ++k) {
    z_off[2 * k] = 0.5;  // 0 W ultracap
    z_on[2 * k] = 0.5;
    z_on[2 * k + 1] = 1.0;  // cooler at full power
  }
  prob.evaluate(z_off, c);
  const double tb_off = prob.predicted_states().back().t_battery_k;
  prob.evaluate(z_on, c);
  const double tb_on = prob.predicted_states().back().t_battery_k;
  // The 96 kJ/K pack responds slowly: ~1-2 K of separation within a
  // 60 s window at full cooler power.
  EXPECT_LT(tb_on, tb_off - 1.0);
}

TEST(MpcProblem, UltracapDischargeReducesBatteryEnergyTerm) {
  const SystemSpec spec = default_spec();
  MpcProblem prob(spec, small_options(10));
  PlantState x0;
  prob.set_window(x0, ramp_load(10, 40000.0, 40000.0));

  optim::Vector c(prob.num_constraints());
  optim::Vector z_bat(prob.dim(), 0.0);
  optim::Vector z_cap(prob.dim(), 0.0);
  for (size_t k = 0; k < 10; ++k) {
    z_bat[2 * k] = 0.5;   // all load on battery
    z_cap[2 * k] = 0.65;  // ~27 kW from the ultracap
  }
  prob.evaluate(z_bat, c);
  const double soc_bat = prob.predicted_states().back().soc_percent;
  prob.evaluate(z_cap, c);
  const double soc_cap = prob.predicted_states().back().soc_percent;
  const double soe_cap = prob.predicted_states().back().soe_percent;
  EXPECT_GT(soc_cap, soc_bat);   // battery drained less
  EXPECT_LT(soe_cap, 100.0);     // ultracap paid for it
}

// The central test: adjoint gradient of (cost + w . c) vs central
// finite differences, across states, loads and random weight vectors.
class MpcGradientTest : public ::testing::TestWithParam<int> {};

TEST_P(MpcGradientTest, AdjointMatchesFiniteDifferences) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));

  const size_t horizon = 4 + static_cast<size_t>(rng.below(8));
  SystemSpec spec = default_spec();
  MpcOptions opt = small_options(horizon);
  if (seed % 3 == 0) opt.terminal_soe_weight = 0.5;
  MpcProblem prob(spec, opt);

  PlantState x0;
  x0.t_battery_k = rng.uniform(290.0, 312.0);
  x0.t_coolant_k = x0.t_battery_k - rng.uniform(0.0, 5.0);
  x0.soc_percent = rng.uniform(40.0, 95.0);
  x0.soe_percent = rng.uniform(30.0, 95.0);
  std::vector<double> load(horizon);
  for (auto& p : load) p = rng.uniform(-20000.0, 60000.0);
  prob.set_window(x0, load);

  optim::Vector w(prob.num_constraints());
  for (auto& v : w) v = rng.uniform(0.0, 2.0);

  auto scalar = [&](const optim::Vector& zz) {
    optim::Vector cc(prob.num_constraints());
    double f = prob.evaluate(zz, cc);
    for (size_t i = 0; i < cc.size(); ++i) f += w[i] * cc[i];
    return f;
  };

  // Random points occasionally land a finite-difference stencil across
  // one of the model's legitimate kinks (converter eta_min clamp,
  // discharge/charge branch, inlet floor); the analytic subgradient is
  // then not the two-sided FD slope and the comparison is meaningless
  // at that point. A true adjoint bug fails at EVERY point, so redraw
  // a few times and require one clean match per seed.
  double best_err = 1.0;
  for (int attempt = 0; attempt < 4 && best_err > 2e-4; ++attempt) {
    optim::Vector z(prob.dim());
    for (auto& v : z) {
      do {
        v = rng.uniform(0.05, 0.95);
      } while (std::abs(v - 0.5) < 0.03);
    }
    optim::Vector c(prob.num_constraints());
    optim::Vector analytic(prob.dim());
    prob.evaluate(z, c);
    prob.gradient(z, w, analytic);
    best_err = std::min(
        best_err, optim::gradient_max_rel_error(scalar, z, analytic, 1e-6));
  }
  EXPECT_LT(best_err, 2e-4) << "horizon=" << horizon << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpcGradientTest, ::testing::Range(0, 24));

TEST(MpcProblem, AdjointTightAtSmoothPoint) {
  // Hand-picked interior point away from every kink: moderate SoC/SoE,
  // warm pack, strictly positive cooler and UC discharge commands.
  MpcProblem prob(default_spec(), small_options(6));
  PlantState x0;
  x0.t_battery_k = 306.0;
  x0.t_coolant_k = 304.0;
  x0.soc_percent = 70.0;
  x0.soe_percent = 60.0;
  prob.set_window(x0, ramp_load(6, 15000.0, 45000.0));

  optim::Vector z(prob.dim());
  for (size_t k = 0; k < 6; ++k) {
    z[2 * k] = 0.62;      // ~21 kW UC discharge
    z[2 * k + 1] = 0.25;  // partial cooling
  }
  optim::Vector w(prob.num_constraints(), 0.37);

  optim::Vector c(prob.num_constraints());
  optim::Vector analytic(prob.dim());
  prob.evaluate(z, c);
  prob.gradient(z, w, analytic);

  auto scalar = [&](const optim::Vector& zz) {
    optim::Vector cc(prob.num_constraints());
    double f = prob.evaluate(zz, cc);
    for (size_t i = 0; i < cc.size(); ++i) f += w[i] * cc[i];
    return f;
  };
  EXPECT_LT(optim::gradient_max_rel_error(scalar, z, analytic, 1e-6), 2e-5);
}

TEST(MpcProblem, ConstraintValuesMatchRolloutStates) {
  const SystemSpec spec = default_spec();
  MpcProblem prob(spec, small_options(6));
  PlantState x0;
  x0.t_battery_k = 309.0;
  x0.soe_percent = 25.0;
  prob.set_window(x0, ramp_load(6, 50000.0, 50000.0));

  optim::Vector z(prob.dim(), 0.7);
  optim::Vector c(prob.num_constraints());
  prob.evaluate(z, c);
  const auto& states = prob.predicted_states();
  // Constraint scale factors from mpc_problem.cpp.
  const double st = 0.02, ss = 0.2;
  for (size_t k = 0; k < 6; ++k) {
    const double tb1 = states[k + 1].t_battery_k;
    EXPECT_NEAR(c[8 * k + 0], (tb1 - spec.thermal.max_battery_temp_k) / st,
                1e-7);
    EXPECT_NEAR(c[8 * k + 1], (spec.thermal.min_battery_temp_k - tb1) / st,
                1e-7);
    EXPECT_NEAR(c[8 * k + 2], (20.0 - states[k + 1].soc_percent) / ss, 1e-7);
    EXPECT_NEAR(c[8 * k + 4], (20.0 - states[k + 1].soe_percent) / ss, 1e-7);
  }
}

TEST(MpcProblem, WindowPaddingRepeatsLastValue) {
  MpcProblem prob(default_spec(), small_options(6));
  PlantState x0;
  prob.set_window(x0, {1000.0, 2000.0});  // shorter than the horizon

  optim::Vector z(prob.dim(), 0.5);
  optim::Vector c(prob.num_constraints());
  prob.evaluate(z, c);  // must not throw; padded steps use 2000 W
  SUCCEED();
}

TEST(MpcProblem, RolloutMatchesPlantWhenApplyingTheSameControls) {
  // The MPC's internal model must agree with the real plant (hybrid
  // architecture + cooling system) when the decoded controls are
  // applied step by step — away from the clamp regions where the two
  // legitimately differ.
  const SystemSpec spec = default_spec();
  const size_t n = 12;
  MpcProblem prob(spec, small_options(n));
  PlantState x0;
  x0.t_battery_k = 303.0;
  x0.t_coolant_k = 301.0;
  x0.soc_percent = 75.0;
  x0.soe_percent = 65.0;
  const std::vector<double> load = ramp_load(n, 8000.0, 35000.0);
  prob.set_window(x0, load);

  optim::Vector z(prob.dim());
  for (size_t k = 0; k < n; ++k) {
    z[2 * k] = 0.56;      // ~11 kW from the bank (interior)
    z[2 * k + 1] = 0.15;  // partial cooling
  }
  optim::Vector c(prob.num_constraints());
  prob.evaluate(z, c);
  const auto& predicted = prob.predicted_states();

  // Plant-side replay.
  const hees::HybridArchitecture arch = spec.make_hybrid_arch();
  const thermal::CoolingSystem cooling = spec.make_cooling();
  PlantState x = x0;
  for (size_t k = 0; k < n; ++k) {
    const auto u = prob.decode(z, k);
    const double p_total =
        load[k] + spec.thermal.pump_power_w + u.p_cooler_w;
    const hees::ArchStep s =
        arch.step(x.soc_percent, x.soe_percent, x.t_battery_k,
                  p_total - u.p_cap_bus_w, u.p_cap_bus_w, 1.0);
    const double t_in = cooling.inlet_for_power(
        x.t_coolant_k, spec.ambient_k, u.p_cooler_w);
    const thermal::ThermalState th = cooling.step(
        {x.t_battery_k, x.t_coolant_k}, s.q_bat_w, t_in, 1.0);
    x.t_battery_k = th.t_battery_k;
    x.t_coolant_k = th.t_coolant_k;
    x.soc_percent = s.soc_next;
    x.soe_percent = s.soe_next;

    EXPECT_NEAR(predicted[k + 1].t_battery_k, x.t_battery_k, 0.05)
        << "k=" << k;
    EXPECT_NEAR(predicted[k + 1].t_coolant_k, x.t_coolant_k, 0.05)
        << "k=" << k;
    EXPECT_NEAR(predicted[k + 1].soc_percent, x.soc_percent, 0.02)
        << "k=" << k;
    EXPECT_NEAR(predicted[k + 1].soe_percent, x.soe_percent, 0.05)
        << "k=" << k;
  }
}

TEST(MpcProblem, CostBreakdownSumsToTotal) {
  MpcProblem prob(default_spec(), small_options(8));
  PlantState x0;
  prob.set_window(x0, ramp_load(8, 5000.0, 45000.0));
  optim::Vector z(prob.dim(), 0.6);
  optim::Vector c(prob.num_constraints());
  const double total = prob.evaluate(z, c);
  const auto& b = prob.last_cost();
  EXPECT_NEAR(total, b.cooler + b.aging + b.energy + b.terminal,
              std::abs(total) * 1e-12);
  EXPECT_GT(b.cooler, 0.0);  // z puts the cooler on
  EXPECT_GT(b.aging, 0.0);
}

}  // namespace
}  // namespace otem::core
