// Tests for the observability layer: the sharded metrics registry
// (exact cross-thread totals), histogram `le` bucket semantics, the
// enabled() kill switch, scoped timers, the JSONL writer, the
// DiagnosticsSink / JsonlEventSink step sinks, CSV stream-failure
// detection, and the thread-safe logger.
//
// Two golden tests pin the externally visible schemas byte-for-byte:
// "otem.metrics.v1" (metrics_out= snapshots) and "otem.events.v2"
// (events_jsonl= step lines). Downstream tooling parses these files —
// a change here is a breaking change and must bump the schema string.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/logging.h"
#include "core/methodology_registry.h"
#include "exec/thread_pool.h"
#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "sim/obs_sink.h"
#include "sim/simulator.h"
#include "sim/step_sink.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace otem {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "otem_test_obs_" + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

#ifndef OTEM_OBS_DISABLED

/// Restores recording even when an assertion aborts the test early.
struct EnabledGuard {
  ~EnabledGuard() { obs::set_enabled(true); }
};

// --- registry / instruments --------------------------------------------

TEST(Metrics, CounterExactAcrossThreads) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("hits");
  constexpr size_t kTasks = 64;
  constexpr size_t kAddsPerTask = 10000;
  exec::parallel_for(
      kTasks,
      [&](size_t) {
        for (size_t i = 0; i < kAddsPerTask; ++i) c.add();
      },
      8);
  // Sharded slots summed at quiescence: the total is exact, not
  // approximate — threads=N must match threads=1.
  EXPECT_EQ(c.value(), kTasks * kAddsPerTask);
  EXPECT_EQ(registry.snapshot().counters.at("hits"), kTasks * kAddsPerTask);
}

TEST(Metrics, HistogramMergeAcrossThreadsMatchesSerial) {
  const std::vector<double> edges = obs::iteration_buckets();
  obs::MetricsRegistry parallel_reg;
  obs::Histogram& parallel_hist =
      parallel_reg.histogram("iters", edges);
  constexpr size_t kTasks = 64;
  exec::parallel_for(
      kTasks,
      [&](size_t) {
        for (int v = 1; v <= 100; ++v)
          parallel_hist.record(static_cast<double>(v));
      },
      8);

  obs::MetricsRegistry serial_reg;
  obs::Histogram& serial_hist = serial_reg.histogram("iters", edges);
  for (size_t t = 0; t < kTasks; ++t)
    for (int v = 1; v <= 100; ++v)
      serial_hist.record(static_cast<double>(v));

  const obs::Histogram::Snapshot p = parallel_hist.snapshot();
  const obs::Histogram::Snapshot s = serial_hist.snapshot();
  EXPECT_EQ(p.count, kTasks * 100);
  EXPECT_EQ(p.count, s.count);
  EXPECT_DOUBLE_EQ(p.sum, s.sum);  // integers: fp addition is exact
  EXPECT_DOUBLE_EQ(p.min, 1.0);
  EXPECT_DOUBLE_EQ(p.max, 100.0);
  EXPECT_EQ(p.counts, s.counts);
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.record(1.0);    // == first edge -> bucket 0 (le semantics)
  h.record(1.001);  // just above    -> bucket 1
  h.record(10.0);   // == second edge -> bucket 1
  h.record(100.0);  // == last edge   -> bucket 2
  h.record(100.5);  // above all edges -> overflow
  const obs::Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);  // 3 edges + overflow
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.5);
}

TEST(Metrics, HistogramRejectsBadEdges) {
  EXPECT_THROW(obs::Histogram({}), SimError);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), SimError);
  obs::MetricsRegistry registry;
  registry.histogram("h", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), SimError);
  // Same edges: returns the existing instrument.
  EXPECT_NO_THROW(registry.histogram("h", {1.0, 2.0}));
}

TEST(Metrics, EmptyHistogramSnapshotIsZeroed) {
  obs::Histogram h({1.0});
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  obs::MetricsRegistry registry;
  obs::Gauge& g = registry.gauge("level");
  g.set(1.0);
  g.set(42.5);
  EXPECT_DOUBLE_EQ(g.value(), 42.5);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauges.at("level"), 42.5);
}

TEST(Metrics, DisabledPathRecordsNothing) {
  const EnabledGuard guard;
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("c");
  obs::Gauge& g = registry.gauge("g");
  obs::Histogram& h = registry.histogram("h", {1.0, 10.0});
  obs::set_enabled(false);
  c.add(7);
  g.set(3.0);
  h.record(5.0);
  {
    const obs::ScopedTimer t(h);
    EXPECT_DOUBLE_EQ(t.elapsed_us(), 0.0);  // no clock when disabled
  }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count, 0u);
  obs::set_enabled(true);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(Metrics, ScopedTimerRecordsOneSample) {
  obs::MetricsRegistry registry;
  obs::Histogram& h =
      registry.histogram("lat_us", obs::latency_buckets_us());
  {
    const obs::ScopedTimer t(h);
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
    EXPECT_GE(t.elapsed_us(), 0.0);
  }
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.sum, 0.0);
}

// --- golden schemas -----------------------------------------------------

TEST(Metrics, SnapshotJsonGoldenSchema) {
  obs::MetricsRegistry registry;
  registry.counter("runs").add(3);
  registry.gauge("temp_k").set(300.5);
  obs::Histogram& h = registry.histogram("lat", {1.0, 10.0});
  h.record(0.5);
  h.record(2.0);
  h.record(9.5);
  const std::string got =
      obs::snapshot_to_json(registry.snapshot()).dump(0);
  // Pinned byte-for-byte: this is the metrics_out= contract
  // ("otem.metrics.v1"). Names sorted, buckets as {le,count} with the
  // overflow edge spelled "inf".
  const std::string want =
      "{\"schema\":\"otem.metrics.v1\","
      "\"counters\":{\"runs\":3},"
      "\"gauges\":{\"temp_k\":300.5},"
      "\"histograms\":{\"lat\":{"
      "\"count\":3,\"sum\":12,\"min\":0.5,\"max\":9.5,\"mean\":4,"
      "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":10,\"count\":2},"
      "{\"le\":\"inf\",\"count\":0}]}},"
      "\"sketches\":{}}";
  EXPECT_EQ(got, want);
}

#ifndef OTEM_OBS_DISABLED
TEST(Metrics, SnapshotJsonGoldenSketchSection) {
  obs::MetricsRegistry registry;
  obs::Sketch& s = registry.sketch("lat_us");
  for (int i = 1; i <= 4; ++i) s.record(static_cast<double>(i));
  const std::string got =
      obs::snapshot_to_json(registry.snapshot()).dump(0);
  // Small enough that the sketch stores every sample exactly: the
  // quantile walk returns the first value whose cumulative weight
  // reaches q*n, so p50 of {1,2,3,4} is 2 and the tail quantiles hit
  // the max. Pinned byte-for-byte alongside the main golden above —
  // the "sketches" section is part of the otem.metrics.v1 contract.
  const std::string want =
      "{\"schema\":\"otem.metrics.v1\","
      "\"counters\":{},"
      "\"gauges\":{},"
      "\"histograms\":{},"
      "\"sketches\":{\"lat_us\":{"
      "\"count\":4,\"sum\":10,\"min\":1,\"max\":4,\"mean\":2.5,"
      "\"p50\":2,\"p95\":4,\"p99\":4,\"p999\":4}}}";
  EXPECT_EQ(got, want);
}
#endif

TEST(Events, StepEventGoldenLine) {
  core::StepRecord rec;
  rec.p_load_w = 12000.0;
  rec.p_cooler_w = 350.0;
  rec.e_cap_j = 500.0;
  rec.feasible = true;
  rec.solve.present = true;
  rec.solve.converged = true;
  rec.solve.fallback = false;
  rec.solve.iterations = 40;
  rec.solve.sqp_rounds = 2;
  rec.solve.qp_iterations = 120;
  rec.solve.qp_rho_updates = 3;
  rec.solve.qp_warm_hits = 2;
  rec.solve.kkt_refactorizations = 4;
  rec.solve.cost = 1.5;
  rec.solve.constraint_violation = 0.001;
  rec.solve.primal_residual = 0.0005;
  rec.solve.dual_residual = 2e-05;
  rec.solve.solve_time_us = 850.0;
  core::PlantState state;
  state.t_battery_k = 303.15;
  state.t_coolant_k = 298.65;
  state.soc_percent = 71.5;
  state.soe_percent = 64.25;
  const sim::StepSample sample{2, rec, state, 0.25, 0.5, 12.5};
  const std::string got =
      sim::JsonlEventSink::step_event(sample, 1.0).dump(0);
  // Pinned byte-for-byte: one events_jsonl= line ("otem.events.v2").
  const std::string want =
      "{\"event\":\"step\",\"k\":2,\"t_s\":2,"
      "\"p_load_w\":12000,\"p_cooler_w\":350,\"p_cap_w\":500,"
      "\"tb_k\":303.15,\"tc_k\":298.65,"
      "\"soc_percent\":71.5,\"soe_percent\":64.25,"
      "\"qloss_percent\":0.25,\"teb\":0.5,\"feasible\":true,"
      "\"step_us\":12.5,"
      "\"solve\":{\"converged\":true,\"fallback\":false,"
      "\"iterations\":40,\"sqp_rounds\":2,\"qp_iterations\":120,"
      "\"qp_rho_updates\":3,\"qp_warm_hits\":2,"
      "\"kkt_refactorizations\":4,\"cost\":1.5,"
      "\"constraint_violation\":0.001,\"primal_residual\":0.0005,"
      "\"dual_residual\":2e-05,\"latency_us\":850}}";
  EXPECT_EQ(got, want);
}

TEST(Events, StepEventOmitsSolveWhenAbsent) {
  core::StepRecord rec;  // solve.present defaults to false
  core::PlantState state;
  const sim::StepSample sample{0, rec, state, 0.0, 0.0, 0.0};
  const std::string line =
      sim::JsonlEventSink::step_event(sample, 1.0).dump(0);
  EXPECT_EQ(line.find("\"solve\""), std::string::npos);
}

// --- JSONL writer -------------------------------------------------------

TEST(Jsonl, WriterStreamsOneObjectPerLine) {
  const std::string path = temp_path("writer.jsonl");
  {
    obs::JsonlWriter w(path);
    Json a = Json::object();
    a.set("event", "run_begin");
    w.write(a);
    Json b = Json::object();
    b.set("event", "run_end").set("n", 2);
    w.write(b);
    EXPECT_EQ(w.lines_written(), 2u);
    w.close();
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"event\":\"run_begin\"}");
  EXPECT_EQ(lines[1], "{\"event\":\"run_end\",\"n\":2}");
  std::remove(path.c_str());
}

TEST(Jsonl, WriterThrowsWhenPathCannotOpen) {
  EXPECT_THROW(obs::JsonlWriter("/nonexistent-dir/x/y.jsonl"), SimError);
}

// --- sinks end-to-end ---------------------------------------------------

TEST(DiagnosticsSink, CapturesSolverDiagnosticsEndToEnd) {
  // Cheap LTV-OTEM setup: small horizon, short synthetic mission. The
  // point is that every step's SolveDiagnostics lands in the registry,
  // not solution quality.
  Config cfg;
  cfg.set_pair("otem.horizon=8");
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  auto methodology = core::make_methodology("otem-ltv", spec, cfg);

  const TimeSeries speed = vehicle::generate_synthetic(11, 120.0, 25.0);
  const TimeSeries load =
      vehicle::Powertrain(spec.vehicle).power_trace(speed);
  const size_t steps = load.size();

  obs::MetricsRegistry registry;
  sim::DiagnosticsSink diag(registry);
  const std::string events = temp_path("events.jsonl");
  sim::JsonlEventSink jsonl(events, 10);
  sim::RunOptions ropt;
  ropt.record_trace = false;
  sim::Simulator(spec).run_with_sinks(*methodology, load, ropt,
                                      {&diag, &jsonl});

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("sim.steps"), steps);
  EXPECT_EQ(snap.counters.at("solver.solves"), steps);
  // Timing is sampled at the gcd of the attached sinks' strides:
  // gcd(DiagnosticsSink=16, JsonlEventSink every=10) = 2.
  EXPECT_EQ(snap.histograms.at("sim.step_latency_us").count,
            (steps + 1) / 2);
  EXPECT_EQ(snap.histograms.at("solver.latency_us").count, steps);
  EXPECT_GT(snap.histograms.at("solver.latency_us").sum, 0.0);
  EXPECT_GT(snap.histograms.at("solver.qp_iterations").count, 0u);
  EXPECT_GT(snap.histograms.at("solver.primal_residual").count, 0u);
  // Warm-start telemetry: the first step cold-starts (1 fallback, its
  // qp_iterations land in the cold histogram), every later SQP round is
  // warm, and each solve pays at least one factorisation per round.
  EXPECT_EQ(snap.counters.at("solver.fallbacks"), 1u);
  EXPECT_EQ(snap.histograms.at("solver.qp_iterations_cold").count, 1u);
  EXPECT_GT(snap.counters.at("solver.qp_warm_hits"), steps);
  EXPECT_GE(snap.counters.at("solver.kkt_refactorizations"), steps);
  // The cold step must not out-iterate the average warm step — the
  // whole point of the warm start.
  const obs::Histogram::Snapshot& qp_all =
      snap.histograms.at("solver.qp_iterations");
  const obs::Histogram::Snapshot& qp_cold =
      snap.histograms.at("solver.qp_iterations_cold");
  EXPECT_GT(qp_cold.sum / static_cast<double>(qp_cold.count),
            qp_all.sum / static_cast<double>(qp_all.count));
  EXPECT_DOUBLE_EQ(snap.gauges.at("sim.duration_s"),
                   static_cast<double>(steps) * 1.0);
  EXPECT_GT(snap.gauges.at("sim.qloss_percent"), 0.0);

  // JSONL envelope: run_begin + decimated steps + run_end.
  const std::vector<std::string> lines = read_lines(events);
  ASSERT_EQ(lines.size(), 2 + (steps + 9) / 10);
  EXPECT_EQ(lines.front().rfind("{\"event\":\"run_begin\","
                                "\"schema\":\"otem.events.v2\"",
                                0),
            0u);
  EXPECT_EQ(lines[1].rfind("{\"event\":\"step\",\"k\":0,", 0), 0u);
  EXPECT_EQ(lines.back().rfind("{\"event\":\"run_end\",", 0), 0u);
  std::remove(events.c_str());
}

TEST(DiagnosticsSink, ReactiveBaselineHasNoSolverMetrics) {
  const core::SystemSpec spec =
      core::SystemSpec::from_config(Config());
  auto methodology = core::make_methodology("parallel", spec, Config());
  const TimeSeries speed = vehicle::generate_synthetic(11, 120.0, 25.0);
  const TimeSeries load =
      vehicle::Powertrain(spec.vehicle).power_trace(speed);

  obs::MetricsRegistry registry;
  sim::DiagnosticsSink diag(registry);
  sim::RunOptions ropt;
  ropt.record_trace = false;
  sim::Simulator(spec).run_with_sinks(*methodology, load, ropt, {&diag});

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("sim.steps"), load.size());
  EXPECT_EQ(snap.counters.at("solver.solves"), 0u);
  EXPECT_EQ(snap.histograms.at("solver.latency_us").count, 0u);
  // Alone, DiagnosticsSink samples one step in kTimingStride.
  EXPECT_EQ(snap.histograms.at("sim.step_latency_us").count,
            (load.size() + sim::DiagnosticsSink::kTimingStride - 1) /
                sim::DiagnosticsSink::kTimingStride);
}

#endif  // OTEM_OBS_DISABLED

// --- CSV stream failure -------------------------------------------------

#if !defined(_WIN32)
TEST(CsvStreamSink, ThrowsSimErrorWhenStreamFails) {
  // /dev/full accepts the open but fails every flush — a deterministic
  // stand-in for a disk filling up mid-run.
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";

  const core::SystemSpec spec =
      core::SystemSpec::from_config(Config());
  core::StepRecord rec;
  core::PlantState state;
  const sim::StepSample sample{0, rec, state, 0.0, 0.0, 0.0};
  sim::CsvStreamSink sink("/dev/full");
  sim::RunContext ctx{spec, 1.0, 1, core::PlantState{}};
  sink.begin(ctx);
  EXPECT_THROW(
      {
        // Push enough rows to force a buffer flush, then end() flushes
        // whatever is left — one of the two must detect the failure.
        for (int i = 0; i < 5000; ++i) sink.record(sample);
        sink.end(state);
      },
      SimError);
}
#endif

// --- logging ------------------------------------------------------------

TEST(Logging, FormatLineLayout) {
  const std::string line =
      log::detail::format_line(log::Level::kInfo, "hello world");
  // 2026-08-06T12:34:56.789Z [otem INFO  t01] hello world\n
  const std::regex layout(
      R"(^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z )"
      R"(\[otem INFO  t\d{2,}\] hello world\n$)");
  EXPECT_TRUE(std::regex_match(line, layout)) << "line was: " << line;
}

#if !defined(_WIN32)
TEST(Logging, ParallelWritersNeverShearLines) {
  const std::string path = temp_path("log.txt");
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0600);
  ASSERT_GE(fd, 0);
  const log::Level old_level = log::level();
  log::set_level(log::Level::kWarn);
  log::set_fd(fd);

  constexpr size_t kMessages = 256;
  exec::parallel_for(
      kMessages,
      [&](size_t i) {
        // Long payload: a sheared write would interleave mid-line.
        log::warn("hammer ", i, " ", std::string(160, 'x'));
      },
      8);

  log::set_fd(2);
  log::set_level(old_level);
  ::close(fd);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), kMessages);
  const std::regex layout(
      R"(^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z )"
      R"(\[otem WARN  t\d{2,}\] hammer (\d+) x{160}$)");
  std::set<size_t> seen;
  for (const std::string& line : lines) {
    std::smatch m;
    ASSERT_TRUE(std::regex_match(line, m, layout)) << "line: " << line;
    seen.insert(static_cast<size_t>(std::stoul(m[1].str())));
  }
  // Every message arrived exactly once, intact.
  EXPECT_EQ(seen.size(), kMessages);
  std::remove(path.c_str());
}
#endif

TEST(Logging, LevelFiltersMessages) {
  const log::Level old_level = log::level();
  log::set_level(log::Level::kOff);
  // Must not crash or emit; write() early-outs before formatting.
  log::error("dropped");
  log::set_level(old_level);
}

}  // namespace
}  // namespace otem
