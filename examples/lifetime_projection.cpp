// lifetime_projection — project the battery's whole life (to the 20 %
// end-of-life threshold) under different managements, with capacity
// feedback: a faded pack runs at higher C-rates and ages faster, so
// good management compounds over the years. Extends the paper's BLT
// comparison from single-mission ratios to full degradation curves.
//
//   ./build/examples/lifetime_projection [cycle=UDDS]
#include <cstdio>
#include <string>

#include "core/methodology_registry.h"
#include "sim/lifetime.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const vehicle::CycleName cycle =
      vehicle::cycle_from_string(cfg.get_string("cycle", "UDDS"));

  const TimeSeries speed = vehicle::generate(cycle);
  const TimeSeries power =
      vehicle::Powertrain(spec.vehicle).power_trace(speed);
  const double dist_m = vehicle::stats_of(speed).distance_m;
  std::printf("Mission: %s, %.1f km. Projecting to 20 %% capacity "
              "loss with degradation feedback...\n",
              vehicle::to_string(cycle), dist_m / 1000.0);

  struct Row {
    const char* name;
    sim::LifetimeResult life;
  };
  std::vector<Row> rows;

  // The lifetime loop re-creates the controller for every faded spec;
  // one registry-backed factory serves every strategy.
  for (const char* name : {"parallel", "dual", "otem"}) {
    rows.push_back({name,
                    sim::project_lifetime(
                        spec, power,
                        [&cfg, name](const core::SystemSpec& s) {
                          return core::make_methodology(name, s, cfg);
                        },
                        dist_m)});
  }

  std::printf("\n%-10s %15s %12s %14s\n", "strategy", "missions_to_EOL",
              "km_to_EOL", "years@40km/day");
  for (const Row& row : rows) {
    // A run that hits the epoch cap without reaching 20 % loss is a
    // lower bound on the true lifetime.
    std::printf("%-10s %s%14.0f %12.0f %14.1f\n", row.name,
                row.life.reached_eol ? " " : ">",
                row.life.missions_to_eol, row.life.km_to_eol,
                row.life.km_to_eol / (40.0 * 365.0));
  }

  std::printf("\nDegradation curve (capacity loss %% at mission count):\n");
  std::printf("%-10s", "missions");
  for (const Row& row : rows) std::printf("%12s", row.name);
  std::printf("\n");
  // Sample each curve at fractions of the shortest lifetime.
  double shortest = rows[0].life.missions_to_eol;
  for (const Row& row : rows)
    shortest = std::min(shortest, row.life.missions_to_eol);
  for (double f : {0.25, 0.5, 0.75, 1.0}) {
    const double at = f * shortest;
    std::printf("%-10.0f", at);
    for (const Row& row : rows) {
      // Linear scan of the curve for the surrounding epoch.
      double loss = row.life.curve.back().capacity_loss_percent;
      for (size_t i = 1; i < row.life.curve.size(); ++i) {
        if (row.life.curve[i].missions >= at) {
          const auto& a = row.life.curve[i - 1];
          const auto& b = row.life.curve[i];
          const double t = (at - a.missions) /
                           std::max(b.missions - a.missions, 1e-9);
          loss = a.capacity_loss_percent +
                 t * (b.capacity_loss_percent - a.capacity_loss_percent);
          break;
        }
      }
      std::printf("%12.2f", loss);
    }
    std::printf("\n");
  }
  std::printf("\nBecause fade raises C-rates, the curves bend upward — "
              "and the management gap widens over the pack's life.\n");
  return 0;
}
