// mountain_pass — grade-aware route simulation: a 12 km climb over a
// 400 m pass and back down. Climbs are the hardest sustained battery
// load there is (gravity dwarfs the other road loads), and the descent
// is a long regen stream the HEES must swallow — both ends of the TEB
// story in one commute.
//
//   ./build/examples/mountain_pass [ambient_k=...] [key=value...]
#include <cstdio>

#include "core/methodology_registry.h"
#include "sim/simulator.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/route.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);

  // Speed: steady mountain-road driving with village sections.
  vehicle::CycleBuilder b;
  b.idle(5);
  b.ramp_to(18.0, 1.5).cruise_wavy(260, 1.5, 40);   // approach valley road
  b.ramp_to(12.0, 1.2).cruise(60);                  // village
  b.ramp_to(16.0, 1.2).cruise_wavy(300, 1.0, 50);   // the climb
  b.ramp_to(13.0, 1.0).cruise_wavy(320, 1.0, 45);   // descent, engine-brake pace
  b.ramp_to(18.0, 1.2).cruise_wavy(160, 1.5, 40);   // valley again
  b.stop(1.5, 5);
  vehicle::Route route;
  route.speed_mps = b.build();

  // Elevation: flat approach, 400 m up between km 5 and 11, back down
  // to km 16, flat run-out.
  route.grade_rad = vehicle::grade_from_elevation(
      route.speed_mps, {{0.0, 200.0},
                        {5000.0, 200.0},
                        {11000.0, 600.0},
                        {16000.0, 200.0},
                        {30000.0, 200.0}});

  const vehicle::Powertrain pt(spec.vehicle);
  const TimeSeries power = vehicle::route_power_trace(pt, route);
  const vehicle::CycleStats stats = vehicle::stats_of(route.speed_mps);
  std::printf("Route: %.1f km, %.0f s, +%.0f m over the pass. Peak "
              "demand %.1f kW, peak regen %.1f kW.\n",
              stats.distance_m / 1000.0, stats.duration_s,
              vehicle::elevation_gain_m(route) + 400.0,  // net 0, pass 400
              power.max() / 1000.0, -power.min() / 1000.0);

  const sim::Simulator sim(spec);
  const auto parallel = core::make_methodology("parallel", spec, cfg);
  const auto otem = core::make_methodology("otem", spec, cfg);
  const sim::RunResult rp = sim.run(*parallel, power);
  const sim::RunResult ro = sim.run(*otem, power);

  std::printf("\n%-10s %12s %12s %12s %14s\n", "strategy", "qloss_%",
              "avg_kW", "max_Tb_C", "violation_s");
  std::printf("%-10s %12.5f %12.2f %12.1f %14.0f\n", "parallel",
              rp.qloss_percent, rp.average_power_w / 1000.0,
              rp.max_t_battery_k - 273.15, rp.thermal_violation_s);
  std::printf("%-10s %12.5f %12.2f %12.1f %14.0f\n", "otem",
              ro.qloss_percent, ro.average_power_w / 1000.0,
              ro.max_t_battery_k - 273.15, ro.thermal_violation_s);

  // How much of the descent's regen ended up buffered in the bank?
  double regen_total = 0.0, regen_to_cap = 0.0;
  for (size_t k = 0; k < power.size(); ++k) {
    if (power[k] < 0.0) {
      regen_total -= power[k];
      if (ro.trace.p_cap_w[k] < 0.0) regen_to_cap -= ro.trace.p_cap_w[k];
    }
  }
  std::printf("\nOTEM routed %.0f %% of the descent's %.1f kWh of regen "
              "through the ultracapacitor — free TEB for the valley "
              "sprints.\n",
              100.0 * regen_to_cap / regen_total,
              regen_total / 3.6e6);
  return 0;
}
