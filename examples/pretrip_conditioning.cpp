// pretrip_conditioning — the TEB idea applied before the trip even
// starts. A parked EV that knows its departure time and route can
// spend the final pre-departure minute preparing the HEES: pre-cool
// the (heat-soaked) pack and pre-charge the ultracapacitor, so the
// aggressive first minutes of the route meet a ready storage. This is
// the paper's "provide enough TEB ... before the EV power requests
// arrive", stretched to the parked phase.
//
// Scenario: hot summer afternoon (35 C soak), US06 route. Compare
//   (a) unprepared: drive off immediately;
//   (b) prepared: 90 s of standstill lead with the route in the
//       forecast — the MPC conditions the system during the wait.
//
//   ./build/examples/pretrip_conditioning [lead_s=90] [ambient_k=...]
#include <cstdio>
#include <vector>

#include "core/methodology_registry.h"
#include "sim/simulator.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

using namespace otem;

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc, argv);
  if (!cfg.has("ambient_k")) cfg.set("ambient_k", 313.15);  // 40 C day
  // A city pack's power electronics cannot cover US06's peaks alone —
  // the bank MUST be ready for them (override to taste).
  if (!cfg.has("hees.max_battery_power"))
    cfg.set("hees.max_battery_power", 55000.0);
  // Pre-conditioning needs a window long enough to see the route behind
  // the standstill lead; widen the default MPC horizon.
  if (!cfg.has("otem.horizon")) cfg.set("otem.horizon", std::string("45"));
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const size_t lead = static_cast<size_t>(cfg.get_long("lead_s", 90));

  const TimeSeries route =
      vehicle::Powertrain(spec.vehicle)
          .power_trace(vehicle::generate(vehicle::CycleName::kUs06));

  // Prepared mission: standstill (accessories only) then the route.
  std::vector<double> with_lead(lead, spec.vehicle.accessory_power_w);
  with_lead.insert(with_lead.end(), route.values().begin(),
                   route.values().end());

  // Heat-soaked start; the bank sits just above its floor after
  // yesterday's driving.
  sim::RunOptions start;
  start.initial.t_battery_k = spec.ambient_k;
  start.initial.t_coolant_k = spec.ambient_k;
  start.initial.soe_percent = cfg.get_double("soe0", 26.0);

  const sim::Simulator sim(spec);
  std::printf("Soak %.1f C, bank at %.0f %%, route: US06 (%.0f s). "
              "Conditioning lead: %zu s.\n",
              spec.ambient_k - 273.15, start.initial.soe_percent,
              route.duration(), lead);

  // (a) unprepared.
  const auto unprepared = core::make_methodology("otem", spec, cfg);
  const sim::RunResult ra = sim.run(*unprepared, route, start);

  // (b) prepared: same controller, the route visible behind the lead.
  const auto prepared = core::make_methodology("otem", spec, cfg);
  const sim::RunResult rb =
      sim.run(*prepared, TimeSeries(1.0, with_lead), start);

  // State at the moment of departure in the prepared run.
  const double tb_dep = rb.trace.t_battery_k[lead - 1] - 273.15;
  const double soe_dep = rb.trace.soe_percent[lead - 1];

  std::printf("\nAt departure (prepared run): T_b %.1f C (soak was %.1f C),"
              " bank %.0f %% (was %.0f %%)\n",
              tb_dep, spec.ambient_k - 273.15, soe_dep,
              start.initial.soe_percent);

  std::printf("\n%-22s %12s %14s %12s %14s\n", "", "qloss_%", "max_Tb_C",
              "violation_s", "unserved_kJ");
  std::printf("%-22s %12.5f %14.1f %12.0f %14.1f\n", "unprepared",
              ra.qloss_percent, ra.max_t_battery_k - 273.15,
              ra.thermal_violation_s, ra.unserved_energy_j / 1000.0);
  std::printf("%-22s %12.5f %14.1f %12.0f %14.1f   (+%zu s lead)\n",
              "prepared", rb.qloss_percent, rb.max_t_battery_k - 273.15,
              rb.thermal_violation_s, rb.unserved_energy_j / 1000.0, lead);
  if (rb.qloss_percent > 0.0) {
    std::printf(
        "\nConditioning cut this mission's battery ageing by %.1f %% and "
        "its unserved peaks by %.0f %% — TEB prepared while parked is TEB "
        "not paid for on the road.\n",
        100.0 * (1.0 - rb.qloss_percent / ra.qloss_percent),
        ra.unserved_energy_j > 0.0
            ? 100.0 * (1.0 - rb.unserved_energy_j / ra.unserved_energy_j)
            : 0.0);
  }
  return 0;
}
