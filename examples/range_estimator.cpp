// range_estimator — driving-range estimation across standard cycles
// and management strategies. "An insufficient energy storage restricts
// the EV driving range" (paper Section I); energy management recovers
// range by cutting HEES losses. Uses the powertrain's consumption model
// plus closed-loop simulation for the management overheads.
//
//   ./build/examples/range_estimator
#include <cstdio>

#include "core/methodology_registry.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const vehicle::Powertrain pt(spec.vehicle);
  const battery::PackModel pack(spec.battery);

  std::printf("Pack: %.1f kWh (usable %.1f kWh above the 20 %% SoC "
              "floor)\n",
              pack.nominal_energy_j() / 3.6e6,
              pack.nominal_energy_j() * 0.8 / 3.6e6);

  std::printf("\n%-7s %7s %9s | %9s %11s %9s %12s\n", "cycle", "Wh/km",
              "ideal_km", "unmanaged", "cooling_km", "otem_km",
              "otem_vs_cool");
  const sim::Simulator simulator(spec);
  for (vehicle::CycleName cycle : vehicle::all_cycles()) {
    const TimeSeries speed = vehicle::generate(cycle);
    const TimeSeries power = pt.power_trace(speed);
    const double dist_m = vehicle::stats_of(speed).distance_m;
    const double wh_km = pt.consumption_wh_per_km(speed);
    // "Ideal" range ignores storage losses and management overheads.
    const double ideal_km =
        pack.nominal_energy_j() * 0.8 / 3.6e6 / (wh_km / 1000.0);

    sim::RunOptions opt;
    opt.record_trace = false;
    const auto parallel = core::make_methodology("parallel", spec, cfg);
    const auto cooling = core::make_methodology("active_cooling", spec, cfg);
    const auto otem = core::make_methodology("otem", spec, cfg);
    const sim::RunResult rp = simulator.run(*parallel, power, opt);
    const sim::RunResult rc = simulator.run(*cooling, power, opt);
    const sim::RunResult ro = simulator.run(*otem, power, opt);
    const double km_par = sim::estimated_range_km(rp, spec, dist_m);
    const double km_cool = sim::estimated_range_km(rc, spec, dist_m);
    const double km_otem = sim::estimated_range_km(ro, spec, dist_m);

    std::printf("%-7s %7.0f %9.0f | %9.0f %11.0f %9.0f %11.1f%%\n",
                vehicle::to_string(cycle), wh_km, ideal_km, km_par,
                km_cool, km_otem, 100.0 * (km_otem / km_cool - 1.0));
  }
  std::printf(
      "\nThermal management costs range: both managed strategies sit "
      "below the unmanaged parallel baseline, but they buy battery "
      "lifetime for it. Among the managed options OTEM recovers range "
      "from the blunt always-cold policy — the paper's 12.1 %% average "
      "power reduction vs the pure active cooling system.\n");
  return 0;
}
