// uc_sizing_study — a design-space helper built on the library: how
// big an ultracapacitor bank does a given mission need? Sweeps the bank
// size under OTEM and the dual baseline, reporting the capacity-loss /
// energy / thermal trade-off plus a naive cost model (the paper quotes
// ~$12,000 for 20,000 F of Maxwell BC ultracapacitors).
//
//   ./build/examples/uc_sizing_study [cycle=US06] [repeats=3]
#include <cstdio>
#include <string>

#include "core/methodology_registry.h"
#include "sim/simulator.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const core::SystemSpec base = core::SystemSpec::from_config(cfg);
  const vehicle::CycleName cycle =
      vehicle::cycle_from_string(cfg.get_string("cycle", "US06"));
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 3));

  const TimeSeries power = vehicle::Powertrain(base.vehicle)
                               .power_trace(vehicle::generate(cycle))
                               .repeated(repeats);
  std::printf("Sizing study on %s x%zu (ambient %.1f C)\n",
              vehicle::to_string(cycle), repeats,
              base.ambient_k - 273.15);
  std::printf("Cost model: ~$0.60 per farad (paper: ~$12,000 / 20,000 F)\n");

  std::printf("\n%8s %10s | %-10s %10s %10s %12s\n", "size_F", "cost_$",
              "strategy", "qloss_%", "avg_kW", "violation_s");
  for (double size : {2000.0, 5000.0, 10000.0, 15000.0, 25000.0, 40000.0}) {
    const core::SystemSpec spec = base.with_ultracap_size(size);
    const sim::Simulator simulator(spec);
    sim::RunOptions opt;
    opt.record_trace = false;

    const auto dual = core::make_methodology("dual", spec, cfg);
    const auto otem = core::make_methodology("otem", spec, cfg);
    const sim::RunResult rd = simulator.run(*dual, power, opt);
    const sim::RunResult ro = simulator.run(*otem, power, opt);

    std::printf("%8.0f %10.0f | %-10s %10.5f %10.1f %12.0f\n", size,
                size * 0.6, "dual", rd.qloss_percent,
                rd.average_power_w / 1000.0, rd.thermal_violation_s);
    std::printf("%8s %10s | %-10s %10.5f %10.1f %12.0f\n", "", "", "otem",
                ro.qloss_percent, ro.average_power_w / 1000.0,
                ro.thermal_violation_s);
  }
  std::printf(
      "\nThe dual architecture's safety depends on the bank size "
      "(violations explode when it is undersized), while OTEM, with the "
      "active cooler to fall back on, stays safe at every size — the "
      "paper's Table I conclusion. Small banks + OTEM are the "
      "economical design point.\n");
  return 0;
}
