// quickstart — the smallest end-to-end use of the library:
//   1. build a system spec (battery pack + ultracap + cooling + vehicle),
//   2. turn a standard drive cycle into a power-request trace,
//   3. run the OTEM controller through the closed-loop simulator,
//   4. read the results.
//
// Build & run:   ./build/examples/quickstart [key=value ...]
// e.g.           ./build/examples/quickstart ultracap.capacitance_f=10000
#include <cstdio>

#include "core/otem/otem_methodology.h"
#include "sim/simulator.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

using namespace otem;

int main(int argc, char** argv) {
  // 1. System configuration — defaults are a city EV with a 17 kWh
  //    pack, a 25,000 F ultracapacitor bank and a liquid cooling loop;
  //    every parameter can be overridden with key=value arguments.
  const Config cfg = Config::from_args(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);

  // 2. Workload: one UDDS (urban) cycle -> electric power request.
  const TimeSeries speed = vehicle::generate(vehicle::CycleName::kUdds);
  const vehicle::Powertrain powertrain(spec.vehicle);
  const TimeSeries power = powertrain.power_trace(speed);
  std::printf("Route: UDDS, %.0f s, %.1f km, peak demand %.1f kW\n",
              speed.duration(),
              vehicle::stats_of(speed).distance_m / 1000.0,
              power.max() / 1000.0);

  // 3. Controller + plant.
  core::OtemMethodology otem(spec, core::MpcOptions::from_config(cfg),
                             core::OtemSolverOptions::from_config(cfg));
  const sim::Simulator simulator(spec);
  const sim::RunResult r = simulator.run(otem, power);

  // 4. Results (the two outputs of the paper's Algorithm 1, and more).
  std::printf("\nOTEM results:\n");
  std::printf("  battery capacity loss : %.5f %%\n", r.qloss_percent);
  std::printf("  HEES energy consumed  : %.2f kWh (avg %.1f kW)\n",
              r.energy_hees_j / 3.6e6, r.average_power_w / 1000.0);
  std::printf("  cooling energy        : %.2f kWh\n",
              r.energy_cooling_j / 3.6e6);
  std::printf("  max battery temp      : %.1f C (limit %.1f C, %0.f s "
              "violated)\n",
              r.max_t_battery_k - 273.15,
              spec.thermal.max_battery_temp_k - 273.15,
              r.thermal_violation_s);
  std::printf("  final SoC / SoE       : %.1f %% / %.1f %%\n",
              r.final_state.soc_percent, r.final_state.soe_percent);
  return 0;
}
