// aggressive_highway — the paper's flagship scenario: US06 driven five
// times (Figs. 6-7), all four methodologies side by side. Shows how to
// run a multi-strategy comparison through the scenario engine: each
// strategy is one declarative Scenario resolved via the methodology
// registry — no controller headers, no hand-wired simulator.
//
//   ./build/examples/aggressive_highway [repeats=5] [ambient_k=...]
#include <cstdio>
#include <string>
#include <vector>

#include "sim/metrics.h"
#include "sim/scenario.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

using namespace otem;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 5));

  const TimeSeries power =
      vehicle::Powertrain(spec.vehicle)
          .power_trace(vehicle::generate(vehicle::CycleName::kUs06))
          .repeated(repeats);
  std::printf("US06 x%zu: %.0f s, mean demand %.1f kW, peak %.1f kW, "
              "ambient %.1f C\n",
              repeats, power.duration(), power.mean() / 1000.0,
              power.max() / 1000.0, spec.ambient_k - 273.15);

  const std::vector<std::string> methods = {"parallel", "active_cooling",
                                            "dual", "otem"};
  std::vector<sim::RunResult> results;
  for (const std::string& name : methods) {
    std::printf("  running %-16s ...\n", name.c_str());
    sim::Scenario sc;
    sc.methodology = name;
    sc.cycle = "US06";
    sc.repeats = repeats;
    sc.record_trace = false;
    results.push_back(sim::run_scenario(sc, spec, cfg).result);
  }

  std::printf("\n%-16s %10s %12s %10s %12s %14s\n", "methodology",
              "qloss_%", "vs_parallel", "avg_kW", "max_Tb_C",
              "violations_s");
  const sim::RunResult& base = results.front();
  for (size_t i = 0; i < methods.size(); ++i) {
    const sim::RunResult& r = results[i];
    std::printf("%-16s %10.5f %11.1f%% %10.1f %12.1f %14.0f\n",
                methods[i].c_str(), r.qloss_percent,
                sim::relative_capacity_loss_percent(r, base),
                r.average_power_w / 1000.0, r.max_t_battery_k - 273.15,
                r.thermal_violation_s);
  }

  const sim::RunResult& otem = results.back();
  const battery::CapacityFadeModel fade(spec.battery.cell);
  std::printf("\nBattery lifetime at this mission (to 20 %% loss):\n");
  std::printf("  parallel: %.0f missions, OTEM: %.0f missions "
              "(+%.1f %% lifetime)\n",
              fade.missions_to_end_of_life(base.qloss_percent),
              fade.missions_to_end_of_life(otem.qloss_percent),
              sim::lifetime_improvement_percent(otem, base));
  return 0;
}
