// otem_cli — command-line driver around the library: run any
// registered methodology on any cycle, stream full per-step telemetry
// to CSV, compare strategies, or inspect the drive-cycle catalogue. The
// Swiss army knife for exploring the system without writing code.
//
//   otem_cli cycles
//   otem_cli methods
//   otem_cli run US06 method=otem repeats=3 trace_csv=/tmp/run.csv
//   otem_cli run UDDS method=dual ambient_k=308.15
//   otem_cli compare LA92 repeats=2
//   otem_cli serve /tmp/otem.sock queue_depth=32 cache_mb=128
//   otem_cli request /tmp/otem.sock cycle=UDDS method=otem repeats=2
//
// Any "key=value" pair is forwarded to the Config (battery.*, otem.*,
// thermal.*, ...) plus the scenario keys documented in sim/scenario.h.
// Overrides nothing consumed are reported at exit (typos fail loudly).
// `serve`/`request` speak the otem.serve.v1 protocol (docs/SERVING.md).
#include <cstdio>
#include <string>
#include <vector>

#include <memory>

#include "campaign/grid.h"
#include "campaign/runner.h"
#include "common/error.h"
#include "common/logging.h"
#include "core/methodology_registry.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/metrics.h"
#include "sim/obs_sink.h"
#include "sim/report.h"
#include "sim/scenario.h"
#include "vehicle/drive_cycle.h"

using namespace otem;

namespace {

void print_summary(const std::string& name, const sim::RunResult& r) {
  std::printf(
      "%-16s qloss=%.5f%%  avg=%.2f kW  cooling=%.2f kWh  max_Tb=%.1f C  "
      "violations=%.0f s  unserved=%.2f kWh\n",
      name.c_str(), r.qloss_percent, r.average_power_w / 1000.0,
      r.energy_cooling_j / 3.6e6, r.max_t_battery_k - 273.15,
      r.thermal_violation_s, r.unserved_energy_j / 3.6e6);
}

int cmd_cycles() {
  std::printf("%-7s %10s %10s %10s %10s %7s\n", "cycle", "dur_s", "km",
              "avg_kmh", "max_kmh", "stops");
  for (vehicle::CycleName c : vehicle::all_cycles()) {
    const vehicle::CycleStats s = vehicle::stats_of(vehicle::generate(c));
    std::printf("%-7s %10.0f %10.1f %10.0f %10.0f %7d\n",
                vehicle::to_string(c), s.duration_s, s.distance_m / 1000.0,
                s.avg_speed_mps * 3.6, s.max_speed_mps * 3.6, s.stop_count);
  }
  return 0;
}

int cmd_methods() {
  for (const std::string& name :
       core::MethodologyRegistry::instance().names())
    std::printf("%s\n", name.c_str());
  return 0;
}

int cmd_run(const std::string& cycle, const Config& cfg) {
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  sim::Scenario sc = sim::Scenario::from_config(cfg);
  sc.cycle = cycle;  // the positional argument wins over "cycle="
  // The summary needs no in-RAM trace; keep one only when the JSON
  // report embeds it. Streaming telemetry (trace_csv) is a sink.
  const bool report_trace = cfg.get_bool("report_trace", false);
  sc.record_trace = report_trace;

  const sim::ScenarioOutcome outcome = sim::run_scenario(sc, spec, cfg);
  std::printf("%s on %s: %zu steps, mean %.1f kW, peak %.1f kW\n",
              sc.methodology.c_str(), cycle.c_str(), outcome.power.size(),
              outcome.power.mean() / 1000.0,
              outcome.power.max() / 1000.0);
  print_summary(sc.methodology, outcome.result);

  const battery::CapacityFadeModel fade(spec.battery.cell);
  std::printf("battery lifetime at this mission: %.0f repetitions to 20%% "
              "loss\n",
              fade.missions_to_end_of_life(outcome.result.qloss_percent));
  if (!sc.trace_csv.empty())
    std::printf("trace written to %s (%zu rows)\n", sc.trace_csv.c_str(),
                outcome.power.size());
  if (!sc.metrics_out.empty())
    std::printf("metrics snapshot written to %s\n", sc.metrics_out.c_str());
  if (!sc.events_jsonl.empty())
    std::printf("events streamed to %s\n", sc.events_jsonl.c_str());
  if (!sc.trace_out.empty())
    std::printf("trace written to %s (otem.trace.v1; load in "
                "chrome://tracing or ui.perfetto.dev)\n",
                sc.trace_out.c_str());
  if (cfg.has("report_json")) {
    const std::string path = cfg.get_string("report_json", "");
    sim::write_run_report(path, spec, sc.methodology, outcome.result,
                          report_trace);
    std::printf("report written to %s\n", path.c_str());
  }
  return 0;
}

int cmd_compare(const std::string& cycle, const Config& cfg) {
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const std::vector<std::string> methods = {"parallel", "active_cooling",
                                            "dual", "otem"};
  // One registry for the whole comparison: each method's diagnostics
  // land under its own name prefix, so `metrics_out=` yields a single
  // snapshot with all four strategies side by side.
  const std::string metrics_out = cfg.get_string("metrics_out", "");
  obs::MetricsRegistry registry;
  sim::RunResult base;
  for (const auto& name : methods) {
    sim::Scenario sc = sim::Scenario::from_config(cfg);
    sc.cycle = cycle;
    sc.methodology = name;
    sc.record_trace = false;
    sc.trace_csv.clear();  // per-method streaming would overwrite itself
    sc.metrics_out.clear();  // aggregated below instead
    sc.events_jsonl.clear();
    std::vector<sim::StepSink*> extra;
    std::unique_ptr<sim::DiagnosticsSink> diag;
    if (!metrics_out.empty()) {
      diag = std::make_unique<sim::DiagnosticsSink>(registry, name + ".");
      extra.push_back(diag.get());
    }
    const sim::RunResult r = sim::run_scenario(sc, spec, cfg, extra).result;
    if (name == "parallel") base = r;
    print_summary(name, r);
    if (name != "parallel" && base.qloss_percent > 0.0) {
      std::printf("%-16s   -> %.1f %% of parallel's capacity loss\n", "",
                  sim::relative_capacity_loss_percent(r, base));
    }
  }
  if (!metrics_out.empty()) {
    obs::write_metrics_json(metrics_out, registry);
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  }
  return 0;
}

/// Option keys the serve command consumes itself; everything else on
/// the command line becomes a base override applied under every
/// request.
bool is_serve_option(const std::string& key) {
  return key == "queue_depth" || key == "threads" || key == "cache_mb" ||
         key == "drain_timeout_s" || key == "max_frame_kb" ||
         key == "metrics_out" || key == "trace_out";
}

int cmd_serve(const std::string& target, const Config& cfg) {
  serve::ServerOptions opts;
  const long queue_depth = cfg.get_long("queue_depth", 16);
  OTEM_REQUIRE(queue_depth >= 1, "queue_depth must be >= 1");
  opts.queue_depth = static_cast<size_t>(queue_depth);
  opts.threads = static_cast<size_t>(cfg.get_long("threads", 0));
  opts.cache_bytes = static_cast<size_t>(
      cfg.get_double("cache_mb", 64.0) * 1024.0 * 1024.0);
  opts.drain_timeout_s = cfg.get_double("drain_timeout_s", 5.0);
  opts.max_frame_bytes = static_cast<size_t>(
      cfg.get_double("max_frame_kb", 1024.0) * 1024.0);
  opts.metrics_out = cfg.get_string("metrics_out", "");
  opts.trace_out = cfg.get_string("trace_out", "");
  for (const std::string& key : cfg.keys()) {
    if (!is_serve_option(key)) opts.base.set(key, cfg.get_string(key, ""));
  }
  // A daemon should narrate its lifecycle (listening / drain / flush).
  if (log::level() > log::Level::kInfo) log::set_level(log::Level::kInfo);
  serve::Server server(opts);
  if (target == "--stdio") return server.serve_stdio();
  return server.serve_unix(target);
}

int cmd_request(const std::string& socket, const Config& cfg) {
  serve::Request req;
  req.method = cfg.get_string("rpc", "run");
  const std::string id = cfg.get_string("id", "");
  if (!id.empty()) req.id = Json(id);
  req.deadline_ms = cfg.get_double("deadline_ms", 0.0);
  req.cache_bypass = cfg.get_string("cache", "use") == "bypass";
  const double timeout_s = cfg.get_double("timeout_s", 300.0);
  serve::RetryOptions retry;
  retry.max_attempts = static_cast<size_t>(cfg.get_long(
      "retries", static_cast<long>(retry.max_attempts)));
  for (const std::string& key : cfg.keys()) {
    if (key == "rpc" || key == "id" || key == "deadline_ms" ||
        key == "cache" || key == "timeout_s" || key == "retries")
      continue;
    req.overrides.emplace_back(key, cfg.get_string(key, ""));
  }

  // An overloaded daemon answers in-protocol and expects the client to
  // back off and retry; only a still-overloaded final answer surfaces.
  const std::string response = serve::request_with_retry(
      socket, serve::build_request(req), timeout_s, retry);
  const Json doc = Json::parse(response);
  const Json* ok = doc.find("ok");
  if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
    // stdout carries ONLY the result document, so identical requests
    // print byte-identical reports whether computed or cached; the
    // cached flag goes to stderr for humans.
    const Json* result = doc.find("result");
    std::printf("%s\n", result ? result->dump(0).c_str() : "null");
    const Json* cached = doc.find("cached");
    if (cached != nullptr && cached->is_bool() && cached->as_bool())
      std::fprintf(stderr, "(served from cache)\n");
    return 0;
  }
  const Json* error = doc.find("error");
  const Json* message = doc.find("message");
  std::fprintf(stderr, "error: %s: %s\n",
               error != nullptr && error->is_string()
                   ? error->as_string().c_str()
                   : "unknown",
               message != nullptr && message->is_string()
                   ? message->as_string().c_str()
                   : response.c_str());
  return 2;
}

/// The campaign verb: expand a campaign.* grid, stream it through the
/// runner (locally or across a serve fabric), print the per-group
/// headline table. All non-verb keys ride through to the methodology
/// factories (locally) or as request overrides (fabric mode).
int cmd_campaign(const Config& cfg) {
  const campaign::Grid grid = campaign::Grid::from_config(cfg);
  grid.validate();
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);

  campaign::CampaignOptions opts;
  opts.threads = static_cast<size_t>(cfg.get_long("threads", 0));
  opts.summary_out = cfg.get_string("summary_out", "");
  opts.checkpoint_path = cfg.get_string("checkpoint", "");
  opts.checkpoint_every =
      static_cast<size_t>(cfg.get_long("checkpoint_every", 1000));
  opts.resume_from = cfg.get_string("resume", "");
  opts.request_timeout_s = cfg.get_double("timeout_s", 120.0);
  opts.retry.max_attempts = static_cast<size_t>(cfg.get_long(
      "retries", static_cast<long>(opts.retry.max_attempts)));
  opts.halt_after_commits =
      static_cast<std::uint64_t>(cfg.get_long("halt_after", 0));
  opts.telemetry_csv_prefix = cfg.get_string("telemetry_csv_prefix", "");
  const std::string sockets = cfg.get_string("serve_sockets", "");
  for (size_t pos = 0; pos < sockets.size();) {
    const size_t comma = sockets.find(',', pos);
    const size_t end = comma == std::string::npos ? sockets.size() : comma;
    if (end > pos) opts.serve_sockets.push_back(sockets.substr(pos, end - pos));
    pos = end + 1;
  }
  const std::string metrics_out = cfg.get_string("metrics_out", "");
  obs::MetricsRegistry registry;
  if (!metrics_out.empty()) opts.metrics = &registry;
  opts.local_only_keys = {"threads",    "summary_out", "checkpoint",
                          "checkpoint_every", "resume", "timeout_s",
                          "retries",    "serve_sockets", "metrics_out",
                          "halt_after", "telemetry_csv_prefix"};

  std::printf("campaign: %zu scenarios (%zu routes x %zu ambients x %zu UC "
              "sizes x %zu methods), fingerprint %s\n",
              grid.size(), grid.routes(), grid.ambient_slots(),
              grid.uc_scales.size(), grid.methodologies.size(),
              grid.fingerprint().c_str());

  const campaign::CampaignOutcome outcome =
      campaign::run_campaign(grid, spec, cfg, opts);

  if (!metrics_out.empty()) {
    obs::write_metrics_json(metrics_out, registry);
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  }
  if (outcome.halted) {
    std::printf("campaign halted after %llu of %llu scenarios",
                static_cast<unsigned long long>(outcome.scenarios_restored +
                                                outcome.scenarios_run),
                static_cast<unsigned long long>(outcome.scenarios_total));
    if (!opts.checkpoint_path.empty())
      std::printf("; continue with resume=%s", opts.checkpoint_path.c_str());
    std::printf("\n");
    return 3;
  }

  const Json* groups = outcome.summary.find("groups");
  std::printf("%-16s %9s %12s %12s %12s %12s\n", "group", "runs",
              "qloss_mean%", "qloss_p95%", "avg_kW", "viol_s_mean");
  for (const auto& [name, group] : groups->members()) {
    const Json* qloss = group.find("metrics")->find("qloss_percent");
    const Json* power = group.find("metrics")->find("average_power_w");
    const Json* viol = group.find("metrics")->find("thermal_violation_s");
    std::printf("%-16s %9.0f %12.5f %12.5f %12.2f %12.1f\n", name.c_str(),
                group.find("scenarios")->as_number(),
                qloss->find("mean")->as_number(),
                qloss->find("p95")->as_number(),
                power->find("mean")->as_number() / 1000.0,
                viol->find("mean")->as_number());
  }
  if (!opts.summary_out.empty())
    std::printf("summary written to %s (otem.campaign.v1)\n",
                opts.summary_out.c_str());
  return 0;
}

void warn_unused(const Config& cfg) {
  for (const std::string& key : cfg.unused_keys())
    std::fprintf(stderr,
                 "warning: config override '%s' was never consumed "
                 "(misspelled key?)\n",
                 key.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config cfg = Config::from_args(argc, argv);
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.find('=') == std::string::npos) positional.push_back(arg);
    }
    if (positional.empty()) {
      std::printf(
          "usage: otem_cli cycles\n"
          "       otem_cli methods\n"
          "       otem_cli run <cycle> [method=...] [repeats=N] "
          "[trace_csv=path] [report_json=path] [metrics_out=path] "
          "[events_jsonl=path] [trace_out=path] [key=value...]\n"
          "       otem_cli compare <cycle> [repeats=N] [metrics_out=path] "
          "[key=value...]\n"
          "       otem_cli serve <socket|--stdio> [queue_depth=N] "
          "[threads=N] [cache_mb=N] [drain_timeout_s=S] [metrics_out=path] "
          "[trace_out=path] [key=value...]\n"
          "       otem_cli request <socket> "
          "[rpc=run|ping|metrics|stats|methods] "
          "[id=...] [deadline_ms=N] [cache=bypass] [retries=N] "
          "[key=value...]\n"
          "       otem_cli campaign [campaign.methods=a,b] "
          "[campaign.cycles=...] [campaign.synthetic_routes=N] "
          "[campaign.ambients_c=lo:hi:n] [campaign.uc_scales=...] "
          "[campaign.seed=N] [threads=N] [summary_out=path] "
          "[checkpoint=path] [checkpoint_every=N] [resume=path] "
          "[serve_sockets=s1,s2] [metrics_out=path] [key=value...]\n");
      return 1;
    }
    const std::string& cmd = positional[0];
    int rc = 1;
    if (cmd == "cycles") {
      rc = cmd_cycles();
    } else if (cmd == "methods") {
      rc = cmd_methods();
    } else if (cmd == "run" && positional.size() >= 2) {
      rc = cmd_run(positional[1], cfg);
    } else if (cmd == "compare" && positional.size() >= 2) {
      rc = cmd_compare(positional[1], cfg);
    } else if (cmd == "serve" && positional.size() >= 2) {
      rc = cmd_serve(positional[1], cfg);
    } else if (cmd == "request" && positional.size() >= 2) {
      rc = cmd_request(positional[1], cfg);
    } else if (cmd == "campaign") {
      rc = cmd_campaign(cfg);
    } else {
      std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
      return 1;
    }
    warn_unused(cfg);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
