// otem_cli — command-line driver around the library: run any
// registered methodology on any cycle, stream full per-step telemetry
// to CSV, compare strategies, or inspect the drive-cycle catalogue. The
// Swiss army knife for exploring the system without writing code.
//
//   otem_cli cycles
//   otem_cli methods
//   otem_cli run US06 method=otem repeats=3 trace_csv=/tmp/run.csv
//   otem_cli run UDDS method=dual ambient_k=308.15
//   otem_cli compare LA92 repeats=2
//   otem_cli serve /tmp/otem.sock queue_depth=32 cache_mb=128
//   otem_cli serve 127.0.0.1:7600 workers=4 session_limit=256
//   otem_cli request /tmp/otem.sock cycle=UDDS method=otem repeats=2
//   otem_cli loadtest clients=8 steps=300 method=otem-ltv
//
// Any "key=value" pair is forwarded to the Config (battery.*, otem.*,
// thermal.*, ...) plus the scenario keys documented in sim/scenario.h.
// Overrides nothing consumed are reported at exit (typos fail loudly).
// `serve`/`request`/`loadtest` speak the otem.serve.v1 protocol
// (docs/SERVING.md); a serve/request/loadtest target containing
// "host:port" is TCP, anything else a Unix socket path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <memory>

#include "campaign/grid.h"
#include "campaign/runner.h"
#include "common/error.h"
#include "common/logging.h"
#include "core/methodology_registry.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/metrics.h"
#include "sim/obs_sink.h"
#include "sim/report.h"
#include "sim/scenario.h"
#include "vehicle/drive_cycle.h"

using namespace otem;

namespace {

void print_summary(const std::string& name, const sim::RunResult& r) {
  std::printf(
      "%-16s qloss=%.5f%%  avg=%.2f kW  cooling=%.2f kWh  max_Tb=%.1f C  "
      "violations=%.0f s  unserved=%.2f kWh\n",
      name.c_str(), r.qloss_percent, r.average_power_w / 1000.0,
      r.energy_cooling_j / 3.6e6, r.max_t_battery_k - 273.15,
      r.thermal_violation_s, r.unserved_energy_j / 3.6e6);
}

int cmd_cycles() {
  std::printf("%-7s %10s %10s %10s %10s %7s\n", "cycle", "dur_s", "km",
              "avg_kmh", "max_kmh", "stops");
  for (vehicle::CycleName c : vehicle::all_cycles()) {
    const vehicle::CycleStats s = vehicle::stats_of(vehicle::generate(c));
    std::printf("%-7s %10.0f %10.1f %10.0f %10.0f %7d\n",
                vehicle::to_string(c), s.duration_s, s.distance_m / 1000.0,
                s.avg_speed_mps * 3.6, s.max_speed_mps * 3.6, s.stop_count);
  }
  return 0;
}

int cmd_methods() {
  for (const std::string& name :
       core::MethodologyRegistry::instance().names())
    std::printf("%s\n", name.c_str());
  return 0;
}

int cmd_run(const std::string& cycle, const Config& cfg) {
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  sim::Scenario sc = sim::Scenario::from_config(cfg);
  sc.cycle = cycle;  // the positional argument wins over "cycle="
  // The summary needs no in-RAM trace; keep one only when the JSON
  // report embeds it. Streaming telemetry (trace_csv) is a sink.
  const bool report_trace = cfg.get_bool("report_trace", false);
  sc.record_trace = report_trace;

  const sim::ScenarioOutcome outcome = sim::run_scenario(sc, spec, cfg);
  std::printf("%s on %s: %zu steps, mean %.1f kW, peak %.1f kW\n",
              sc.methodology.c_str(), cycle.c_str(), outcome.power.size(),
              outcome.power.mean() / 1000.0,
              outcome.power.max() / 1000.0);
  print_summary(sc.methodology, outcome.result);

  const battery::CapacityFadeModel fade(spec.battery.cell);
  std::printf("battery lifetime at this mission: %.0f repetitions to 20%% "
              "loss\n",
              fade.missions_to_end_of_life(outcome.result.qloss_percent));
  if (!sc.trace_csv.empty())
    std::printf("trace written to %s (%zu rows)\n", sc.trace_csv.c_str(),
                outcome.power.size());
  if (!sc.metrics_out.empty())
    std::printf("metrics snapshot written to %s\n", sc.metrics_out.c_str());
  if (!sc.events_jsonl.empty())
    std::printf("events streamed to %s\n", sc.events_jsonl.c_str());
  if (!sc.trace_out.empty())
    std::printf("trace written to %s (otem.trace.v1; load in "
                "chrome://tracing or ui.perfetto.dev)\n",
                sc.trace_out.c_str());
  if (cfg.has("report_json")) {
    const std::string path = cfg.get_string("report_json", "");
    sim::write_run_report(path, spec, sc.methodology, outcome.result,
                          report_trace);
    std::printf("report written to %s\n", path.c_str());
  }
  return 0;
}

int cmd_compare(const std::string& cycle, const Config& cfg) {
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const std::vector<std::string> methods = {"parallel", "active_cooling",
                                            "dual", "otem"};
  // One registry for the whole comparison: each method's diagnostics
  // land under its own name prefix, so `metrics_out=` yields a single
  // snapshot with all four strategies side by side.
  const std::string metrics_out = cfg.get_string("metrics_out", "");
  obs::MetricsRegistry registry;
  sim::RunResult base;
  for (const auto& name : methods) {
    sim::Scenario sc = sim::Scenario::from_config(cfg);
    sc.cycle = cycle;
    sc.methodology = name;
    sc.record_trace = false;
    sc.trace_csv.clear();  // per-method streaming would overwrite itself
    sc.metrics_out.clear();  // aggregated below instead
    sc.events_jsonl.clear();
    std::vector<sim::StepSink*> extra;
    std::unique_ptr<sim::DiagnosticsSink> diag;
    if (!metrics_out.empty()) {
      diag = std::make_unique<sim::DiagnosticsSink>(registry, name + ".");
      extra.push_back(diag.get());
    }
    const sim::RunResult r = sim::run_scenario(sc, spec, cfg, extra).result;
    if (name == "parallel") base = r;
    print_summary(name, r);
    if (name != "parallel" && base.qloss_percent > 0.0) {
      std::printf("%-16s   -> %.1f %% of parallel's capacity loss\n", "",
                  sim::relative_capacity_loss_percent(r, base));
    }
  }
  if (!metrics_out.empty()) {
    obs::write_metrics_json(metrics_out, registry);
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  }
  return 0;
}

/// Option keys the serve command consumes itself; everything else on
/// the command line becomes a base override applied under every
/// request.
bool is_serve_option(const std::string& key) {
  return key == "queue_depth" || key == "threads" || key == "cache_mb" ||
         key == "drain_timeout_s" || key == "max_frame_kb" ||
         key == "workers" || key == "session_limit" ||
         key == "session_ttl_s" || key == "metrics_out" ||
         key == "trace_out";
}

serve::ServerOptions serve_options_from_config(const Config& cfg) {
  serve::ServerOptions opts;
  const long queue_depth = cfg.get_long("queue_depth", 16);
  OTEM_REQUIRE(queue_depth >= 1, "queue_depth must be >= 1");
  opts.queue_depth = static_cast<size_t>(queue_depth);
  opts.threads = static_cast<size_t>(cfg.get_long("threads", 0));
  opts.cache_bytes = static_cast<size_t>(
      cfg.get_double("cache_mb", 64.0) * 1024.0 * 1024.0);
  opts.drain_timeout_s = cfg.get_double("drain_timeout_s", 5.0);
  opts.max_frame_bytes = static_cast<size_t>(
      cfg.get_double("max_frame_kb", 1024.0) * 1024.0);
  const long workers = cfg.get_long("workers", 1);
  OTEM_REQUIRE(workers >= 1, "workers must be >= 1");
  opts.workers = static_cast<size_t>(workers);
  opts.session_limit =
      static_cast<size_t>(cfg.get_long("session_limit", 64));
  opts.session_ttl_s = cfg.get_double("session_ttl_s", 300.0);
  opts.metrics_out = cfg.get_string("metrics_out", "");
  opts.trace_out = cfg.get_string("trace_out", "");
  for (const std::string& key : cfg.keys()) {
    if (!is_serve_option(key)) opts.base.set(key, cfg.get_string(key, ""));
  }
  return opts;
}

int cmd_serve(const std::string& target, const Config& cfg) {
  const serve::ServerOptions opts = serve_options_from_config(cfg);
  // A daemon should narrate its lifecycle (listening / drain / flush).
  if (log::level() > log::Level::kInfo) log::set_level(log::Level::kInfo);
  serve::Server server(opts);
  if (target == "--stdio") return server.serve_stdio();
  if (serve::is_tcp_endpoint(target)) return server.serve_tcp(target);
  return server.serve_unix(target);
}

int cmd_request(const std::string& socket, const Config& cfg) {
  serve::Request req;
  req.method = cfg.get_string("rpc", "run");
  const std::string id = cfg.get_string("id", "");
  if (!id.empty()) req.id = Json(id);
  req.deadline_ms = cfg.get_double("deadline_ms", 0.0);
  req.cache_bypass = cfg.get_string("cache", "use") == "bypass";
  const double timeout_s = cfg.get_double("timeout_s", 300.0);
  serve::RetryOptions retry;
  retry.max_attempts = static_cast<size_t>(cfg.get_long(
      "retries", static_cast<long>(retry.max_attempts)));
  for (const std::string& key : cfg.keys()) {
    if (key == "rpc" || key == "id" || key == "deadline_ms" ||
        key == "cache" || key == "timeout_s" || key == "retries")
      continue;
    req.overrides.emplace_back(key, cfg.get_string(key, ""));
  }

  // An overloaded daemon answers in-protocol and expects the client to
  // back off and retry; only a still-overloaded final answer surfaces.
  const std::string response = serve::request_with_retry(
      socket, serve::build_request(req), timeout_s, retry);
  const Json doc = Json::parse(response);
  const Json* ok = doc.find("ok");
  if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
    // stdout carries ONLY the result document, so identical requests
    // print byte-identical reports whether computed or cached; the
    // cached flag goes to stderr for humans.
    const Json* result = doc.find("result");
    std::printf("%s\n", result ? result->dump(0).c_str() : "null");
    const Json* cached = doc.find("cached");
    if (cached != nullptr && cached->is_bool() && cached->as_bool())
      std::fprintf(stderr, "(served from cache)\n");
    return 0;
  }
  const Json* error = doc.find("error");
  const Json* message = doc.find("message");
  std::fprintf(stderr, "error: %s: %s\n",
               error != nullptr && error->is_string()
                   ? error->as_string().c_str()
                   : "unknown",
               message != nullptr && message->is_string()
                   ? message->as_string().c_str()
                   : response.c_str());
  return 2;
}

/// Nearest-rank percentile over an already-sorted sample vector.
double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  size_t idx = static_cast<size_t>(rank);
  if (static_cast<double>(idx) < rank) ++idx;  // ceil
  if (idx > 0) --idx;                          // 1-based -> 0-based
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

/// Per-client loadtest tally, merged after the threads join.
struct LoadClientStats {
  std::vector<double> rtt_us;
  double cold_iters = 0.0;  ///< QP iterations on step k=0 (cold solve)
  size_t cold_n = 0;
  double warm_iters = 0.0;  ///< QP iterations on steps k>=1 (warm-started)
  size_t warm_n = 0;
  size_t steps_done = 0;
  size_t route_steps = 0;  ///< full mission length from session.open
  std::string error;       ///< non-empty = the client aborted
};

/// The serve-layer load harness behind docs/PERFORMANCE.md's serve tier
/// and CI's serve-load-smoke job: N concurrent clients each open one
/// mission session over TCP (or a Unix socket), stream M session.step
/// frames back to back, and close. Reports client-side RTT percentiles,
/// the daemon's own serve.session.step_us sketch, and the cold-vs-warm
/// QP iteration split (step k=0 pays the cold solve; k>=1 rides the
/// warm start) against a one-shot `run` of the same mission. With no
/// endpoint argument it hosts an in-process daemon on 127.0.0.1:<
/// ephemeral>, so the benchmark is a real localhost TCP roundtrip but
/// needs no second process. bench_json= stamps the whole result
/// document (otem.bench_serve.v1) for bench/check_serve.py to gate.
int cmd_loadtest(const std::string& endpoint_arg, const Config& cfg) {
  const long clients = cfg.get_long("clients", 4);
  const long steps = cfg.get_long("steps", 200);
  OTEM_REQUIRE(clients >= 1 && steps >= 1,
               "loadtest: clients and steps must be >= 1");
  const long workers = cfg.get_long("workers", 2);
  OTEM_REQUIRE(workers >= 1, "workers must be >= 1");
  const double timeout_s = cfg.get_double("timeout_s", 30.0);
  const std::string bench_json = cfg.get_string("bench_json", "");
  const bool oneshot = cfg.get_bool("oneshot", true);

  // Everything else rides to session.open (method=, cycle=, ltv.*, ...).
  auto is_loadtest_key = [](const std::string& key) {
    return key == "clients" || key == "steps" || key == "workers" ||
           key == "timeout_s" || key == "bench_json" || key == "oneshot";
  };
  std::vector<std::pair<std::string, std::string>> overrides;
  for (const std::string& key : cfg.keys()) {
    if (!is_loadtest_key(key))
      overrides.emplace_back(key, cfg.get_string(key, ""));
  }

  // Host the daemon in-process unless pointed at an external one; port
  // 0 picks an ephemeral port read back via bound_port().
  std::unique_ptr<serve::Server> server;
  std::thread server_thread;
  std::string endpoint = endpoint_arg;
  if (endpoint.empty()) {
    serve::ServerOptions opts;
    opts.workers = static_cast<size_t>(workers);
    opts.session_limit = static_cast<size_t>(clients) + 8;
    opts.cache_bytes = 8u << 20;
    server = std::make_unique<serve::Server>(opts);
    server_thread = std::thread([&server] {
      (void)server->serve_tcp("127.0.0.1:0");
    });
    while (server->bound_port() == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    endpoint = "127.0.0.1:" + std::to_string(server->bound_port());
  }

  const auto field = [](const Json* obj, const char* key) -> const Json* {
    return obj == nullptr ? nullptr : obj->find(key);
  };
  const auto num = [&field](const Json* obj, const char* key,
                            double fallback) {
    const Json* v = field(obj, key);
    return v != nullptr && v->is_number() ? v->as_number() : fallback;
  };

  std::printf("loadtest: %ld clients x %ld steps against %s\n", clients,
              steps, endpoint.c_str());

  std::vector<LoadClientStats> stats(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(stats.size());
  for (size_t c = 0; c < stats.size(); ++c) {
    threads.emplace_back([&, c] {
      LoadClientStats& st = stats[c];
      try {
        serve::Connection conn(endpoint);
        serve::Request open;
        open.method = "session.open";
        open.overrides = overrides;
        const Json od =
            Json::parse(conn.roundtrip(serve::build_request(open), timeout_s));
        const Json* ok = od.find("ok");
        OTEM_REQUIRE(ok != nullptr && ok->is_bool() && ok->as_bool(),
                     "session.open refused: " + od.dump(0));
        const Json* oresult = od.find("result");
        const Json* sid = field(oresult, "session");
        OTEM_REQUIRE(sid != nullptr && sid->is_string(),
                     "session.open reply missing session id");
        const size_t route_steps =
            static_cast<size_t>(num(oresult, "route_steps", 0.0));
        st.route_steps = route_steps;
        const size_t todo =
            std::min(static_cast<size_t>(steps),
                     route_steps > 0 ? route_steps
                                     : static_cast<size_t>(steps));

        serve::Request step;
        step.method = "session.step";
        step.session = sid->as_string();
        const std::string step_line = serve::build_request(step);
        st.rtt_us.reserve(todo);
        for (size_t m = 0; m < todo; ++m) {
          const auto t0 = std::chrono::steady_clock::now();
          const std::string reply = conn.roundtrip(step_line, timeout_s);
          const auto t1 = std::chrono::steady_clock::now();
          st.rtt_us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
          const Json sd = Json::parse(reply);
          const Json* sok = sd.find("ok");
          OTEM_REQUIRE(sok != nullptr && sok->is_bool() && sok->as_bool(),
                       "session.step refused: " + sd.dump(0));
          const Json* sresult = sd.find("result");
          const double k = num(sresult, "k", -1.0);
          const double iters =
              num(field(sresult, "solve"), "qp_iterations", 0.0);
          if (k == 0.0) {
            st.cold_iters += iters;
            ++st.cold_n;
          } else if (k > 0.0) {
            st.warm_iters += iters;
            ++st.warm_n;
          }
          ++st.steps_done;
        }

        serve::Request close;
        close.method = "session.close";
        close.session = sid->as_string();
        const Json cd = Json::parse(
            conn.roundtrip(serve::build_request(close), timeout_s));
        const Json* cok = cd.find("ok");
        OTEM_REQUIRE(cok != nullptr && cok->is_bool() && cok->as_bool(),
                     "session.close refused: " + cd.dump(0));
      } catch (const std::exception& e) {
        st.error = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t c = 0; c < stats.size(); ++c) {
    if (!stats[c].error.empty()) {
      std::fprintf(stderr, "loadtest: client %zu failed: %s\n", c,
                   stats[c].error.c_str());
      if (server) {
        server->request_stop();
        server_thread.join();
      }
      return 2;
    }
  }

  // Merge client tallies.
  std::vector<double> rtt;
  double cold_iters = 0.0, warm_iters = 0.0;
  size_t cold_n = 0, warm_n = 0, total_steps = 0;
  for (const LoadClientStats& st : stats) {
    rtt.insert(rtt.end(), st.rtt_us.begin(), st.rtt_us.end());
    cold_iters += st.cold_iters;
    cold_n += st.cold_n;
    warm_iters += st.warm_iters;
    warm_n += st.warm_n;
    total_steps += st.steps_done;
  }
  std::sort(rtt.begin(), rtt.end());
  const double rtt_mean =
      rtt.empty() ? 0.0
                  : std::accumulate(rtt.begin(), rtt.end(), 0.0) /
                        static_cast<double>(rtt.size());
  const double cold_mean =
      cold_n > 0 ? cold_iters / static_cast<double>(cold_n) : 0.0;
  const double warm_mean =
      warm_n > 0 ? warm_iters / static_cast<double>(warm_n) : 0.0;

  // The daemon's own view: server-side step handling time and the
  // deterministically merged per-worker request sketches.
  serve::Connection probe(endpoint);
  serve::Request streq;
  streq.method = "stats";
  const Json stats_doc =
      Json::parse(probe.roundtrip(serve::build_request(streq), timeout_s));
  const Json* server_stats = stats_doc.find("result");
  serve::Request mreq;
  mreq.method = "metrics";
  const Json metrics_doc =
      Json::parse(probe.roundtrip(serve::build_request(mreq), timeout_s));
  const Json* counters = field(metrics_doc.find("result"), "counters");

  // One-shot contrast: the same mission as a single `run` request
  // (cache bypassed), amortized per step. Sessions beat this because
  // the client sees a decision after ONE step's work, not the whole
  // mission's, and warm starts persist between frames either way.
  double oneshot_wall_us = 0.0;
  double oneshot_route_steps = 0.0;
  if (oneshot) {
    serve::Request run;
    run.method = "run";
    run.cache_bypass = true;
    run.overrides = overrides;
    const auto t0 = std::chrono::steady_clock::now();
    const Json rd = Json::parse(probe.roundtrip(
        serve::build_request(run), std::max(timeout_s, 300.0)));
    const auto t1 = std::chrono::steady_clock::now();
    const Json* rok = rd.find("ok");
    OTEM_REQUIRE(rok != nullptr && rok->is_bool() && rok->as_bool(),
                 "loadtest: one-shot run refused: " + rd.dump(0));
    oneshot_wall_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    oneshot_route_steps = static_cast<double>(stats.front().route_steps);
  }

  if (server) {
    server->request_stop();
    server_thread.join();
  }

  const double p50 = percentile_sorted(rtt, 0.50);
  const double p95 = percentile_sorted(rtt, 0.95);
  const double p99 = percentile_sorted(rtt, 0.99);
  std::printf("session.step RTT over %zu steps: mean %.0f us  p50 %.0f us  "
              "p95 %.0f us  p99 %.0f us  max %.0f us\n",
              total_steps, rtt_mean, p50, p95, p99,
              rtt.empty() ? 0.0 : rtt.back());
  std::printf("QP iterations per step: cold (k=0) %.1f  warm (k>=1) %.1f\n",
              cold_mean, warm_mean);
  if (oneshot && oneshot_route_steps > 0.0)
    std::printf("one-shot run: %.0f us wall for %.0f steps (%.0f us/step "
                "amortized, full-mission latency before the first "
                "decision)\n",
                oneshot_wall_us, oneshot_route_steps,
                oneshot_wall_us / oneshot_route_steps);

  if (!bench_json.empty()) {
    Json doc = Json::object();
    doc.set("schema", "otem.bench_serve.v1");
    Json ctx = Json::object();
#ifdef NDEBUG
    ctx.set("repo_build_type", "release");
#else
    ctx.set("repo_build_type", "debug");
#endif
    ctx.set("endpoint", endpoint);
    ctx.set("in_process_server", server != nullptr);
    ctx.set("workers", static_cast<double>(workers));
    ctx.set("clients", static_cast<double>(clients));
    ctx.set("steps_per_client", static_cast<double>(steps));
    Json ov = Json::object();
    for (const auto& [key, value] : overrides) ov.set(key, value);
    ctx.set("overrides", std::move(ov));
    doc.set("context", std::move(ctx));

    Json sess = Json::object();
    Json rj = Json::object();
    rj.set("count", static_cast<double>(rtt.size()));
    rj.set("mean", rtt_mean);
    rj.set("p50", p50);
    rj.set("p95", p95);
    rj.set("p99", p99);
    rj.set("max", rtt.empty() ? 0.0 : rtt.back());
    sess.set("rtt_us", std::move(rj));
    sess.set("cold_qp_iterations_mean", cold_mean);
    sess.set("warm_qp_iterations_mean", warm_mean);
    sess.set("cold_steps", static_cast<double>(cold_n));
    sess.set("warm_steps", static_cast<double>(warm_n));
    doc.set("session_step", std::move(sess));

    if (oneshot) {
      Json oj = Json::object();
      oj.set("wall_us", oneshot_wall_us);
      oj.set("route_steps", oneshot_route_steps);
      oj.set("per_step_us", oneshot_route_steps > 0.0
                                ? oneshot_wall_us / oneshot_route_steps
                                : 0.0);
      doc.set("oneshot_run", std::move(oj));
    }
    if (server_stats != nullptr) doc.set("server_stats", *server_stats);
    if (counters != nullptr) doc.set("counters", *counters);
    write_json_file(bench_json, doc);
    std::printf("bench document written to %s (otem.bench_serve.v1)\n",
                bench_json.c_str());
  }
  return 0;
}

/// The campaign verb: expand a campaign.* grid, stream it through the
/// runner (locally or across a serve fabric), print the per-group
/// headline table. All non-verb keys ride through to the methodology
/// factories (locally) or as request overrides (fabric mode).
int cmd_campaign(const Config& cfg) {
  const campaign::Grid grid = campaign::Grid::from_config(cfg);
  grid.validate();
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);

  campaign::CampaignOptions opts;
  opts.threads = static_cast<size_t>(cfg.get_long("threads", 0));
  opts.summary_out = cfg.get_string("summary_out", "");
  opts.checkpoint_path = cfg.get_string("checkpoint", "");
  opts.checkpoint_every =
      static_cast<size_t>(cfg.get_long("checkpoint_every", 1000));
  opts.resume_from = cfg.get_string("resume", "");
  opts.request_timeout_s = cfg.get_double("timeout_s", 120.0);
  opts.retry.max_attempts = static_cast<size_t>(cfg.get_long(
      "retries", static_cast<long>(opts.retry.max_attempts)));
  opts.halt_after_commits =
      static_cast<std::uint64_t>(cfg.get_long("halt_after", 0));
  opts.telemetry_csv_prefix = cfg.get_string("telemetry_csv_prefix", "");
  const std::string sockets = cfg.get_string("serve_sockets", "");
  for (size_t pos = 0; pos < sockets.size();) {
    const size_t comma = sockets.find(',', pos);
    const size_t end = comma == std::string::npos ? sockets.size() : comma;
    if (end > pos) opts.serve_sockets.push_back(sockets.substr(pos, end - pos));
    pos = end + 1;
  }
  const std::string metrics_out = cfg.get_string("metrics_out", "");
  obs::MetricsRegistry registry;
  if (!metrics_out.empty()) opts.metrics = &registry;
  opts.local_only_keys = {"threads",    "summary_out", "checkpoint",
                          "checkpoint_every", "resume", "timeout_s",
                          "retries",    "serve_sockets", "metrics_out",
                          "halt_after", "telemetry_csv_prefix"};

  std::printf("campaign: %zu scenarios (%zu routes x %zu ambients x %zu UC "
              "sizes x %zu methods), fingerprint %s\n",
              grid.size(), grid.routes(), grid.ambient_slots(),
              grid.uc_scales.size(), grid.methodologies.size(),
              grid.fingerprint().c_str());

  const campaign::CampaignOutcome outcome =
      campaign::run_campaign(grid, spec, cfg, opts);

  if (!metrics_out.empty()) {
    obs::write_metrics_json(metrics_out, registry);
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  }
  if (outcome.halted) {
    std::printf("campaign halted after %llu of %llu scenarios",
                static_cast<unsigned long long>(outcome.scenarios_restored +
                                                outcome.scenarios_run),
                static_cast<unsigned long long>(outcome.scenarios_total));
    if (!opts.checkpoint_path.empty())
      std::printf("; continue with resume=%s", opts.checkpoint_path.c_str());
    std::printf("\n");
    return 3;
  }

  const Json* groups = outcome.summary.find("groups");
  std::printf("%-16s %9s %12s %12s %12s %12s\n", "group", "runs",
              "qloss_mean%", "qloss_p95%", "avg_kW", "viol_s_mean");
  for (const auto& [name, group] : groups->members()) {
    const Json* qloss = group.find("metrics")->find("qloss_percent");
    const Json* power = group.find("metrics")->find("average_power_w");
    const Json* viol = group.find("metrics")->find("thermal_violation_s");
    std::printf("%-16s %9.0f %12.5f %12.5f %12.2f %12.1f\n", name.c_str(),
                group.find("scenarios")->as_number(),
                qloss->find("mean")->as_number(),
                qloss->find("p95")->as_number(),
                power->find("mean")->as_number() / 1000.0,
                viol->find("mean")->as_number());
  }
  if (!opts.summary_out.empty())
    std::printf("summary written to %s (otem.campaign.v1)\n",
                opts.summary_out.c_str());
  return 0;
}

void warn_unused(const Config& cfg) {
  for (const std::string& key : cfg.unused_keys())
    std::fprintf(stderr,
                 "warning: config override '%s' was never consumed "
                 "(misspelled key?)\n",
                 key.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config cfg = Config::from_args(argc, argv);
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.find('=') == std::string::npos) positional.push_back(arg);
    }
    if (positional.empty()) {
      std::printf(
          "usage: otem_cli cycles\n"
          "       otem_cli methods\n"
          "       otem_cli run <cycle> [method=...] [repeats=N] "
          "[trace_csv=path] [report_json=path] [metrics_out=path] "
          "[events_jsonl=path] [trace_out=path] [key=value...]\n"
          "       otem_cli compare <cycle> [repeats=N] [metrics_out=path] "
          "[key=value...]\n"
          "       otem_cli serve <socket|host:port|--stdio> [queue_depth=N] "
          "[threads=N] [workers=N] [cache_mb=N] [session_limit=N] "
          "[session_ttl_s=S] [drain_timeout_s=S] [metrics_out=path] "
          "[trace_out=path] [key=value...]\n"
          "       otem_cli request <socket|host:port> "
          "[rpc=run|ping|metrics|stats|methods] "
          "[id=...] [deadline_ms=N] [cache=bypass] [retries=N] "
          "[key=value...]\n"
          "       otem_cli loadtest [socket|host:port] [clients=N] "
          "[steps=M] [workers=N] [bench_json=path] [oneshot=false] "
          "[key=value...]\n"
          "       otem_cli campaign [campaign.methods=a,b] "
          "[campaign.cycles=...] [campaign.synthetic_routes=N] "
          "[campaign.ambients_c=lo:hi:n] [campaign.uc_scales=...] "
          "[campaign.seed=N] [threads=N] [summary_out=path] "
          "[checkpoint=path] [checkpoint_every=N] [resume=path] "
          "[serve_sockets=s1,s2] [metrics_out=path] [key=value...]\n");
      return 1;
    }
    const std::string& cmd = positional[0];
    int rc = 1;
    if (cmd == "cycles") {
      rc = cmd_cycles();
    } else if (cmd == "methods") {
      rc = cmd_methods();
    } else if (cmd == "run" && positional.size() >= 2) {
      rc = cmd_run(positional[1], cfg);
    } else if (cmd == "compare" && positional.size() >= 2) {
      rc = cmd_compare(positional[1], cfg);
    } else if (cmd == "serve" && positional.size() >= 2) {
      rc = cmd_serve(positional[1], cfg);
    } else if (cmd == "request" && positional.size() >= 2) {
      rc = cmd_request(positional[1], cfg);
    } else if (cmd == "loadtest") {
      rc = cmd_loadtest(positional.size() >= 2 ? positional[1] : "", cfg);
    } else if (cmd == "campaign") {
      rc = cmd_campaign(cfg);
    } else {
      std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
      return 1;
    }
    warn_unused(cfg);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
