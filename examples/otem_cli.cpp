// otem_cli — command-line driver around the library: run any
// methodology on any cycle, dump full per-step telemetry as CSV,
// compare strategies, or inspect the drive-cycle catalogue. The Swiss
// army knife for exploring the system without writing code.
//
//   otem_cli cycles
//   otem_cli run US06 method=otem repeats=3 trace_csv=/tmp/run.csv
//   otem_cli run UDDS method=dual ambient_k=308.15
//   otem_cli compare LA92 repeats=2
//
// Any "key=value" pair is forwarded to the Config (battery.*, otem.*,
// thermal.*, ...).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/error.h"
#include "core/cooling_methodology.h"
#include "core/dual_methodology.h"
#include "core/forecast.h"
#include "core/otem/ltv_controller.h"
#include "core/otem/otem_methodology.h"
#include "core/parallel_methodology.h"
#include "sim/metrics.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

using namespace otem;

namespace {

std::unique_ptr<core::Methodology> make_method(const std::string& name,
                                               const core::SystemSpec& spec,
                                               const Config& cfg) {
  if (name == "parallel")
    return std::make_unique<core::ParallelMethodology>(spec);
  if (name == "active_cooling")
    return std::make_unique<core::CoolingMethodology>(
        spec, core::CoolingPolicyParams::from_config(cfg));
  if (name == "dual")
    return std::make_unique<core::DualMethodology>(
        spec, core::DualPolicyParams::from_config(cfg));
  if (name == "otem")
    return std::make_unique<core::OtemMethodology>(
        spec, core::MpcOptions::from_config(cfg),
        core::OtemSolverOptions::from_config(cfg),
        core::make_forecast(cfg.get_string("forecast", "perfect")));
  if (name == "otem-ltv")
    return std::make_unique<core::OtemMethodology>(
        spec, std::make_unique<core::LtvOtemController>(
                  spec, core::MpcOptions::from_config(cfg)));
  throw SimError("unknown methodology '" + name +
                 "' (parallel, active_cooling, dual, otem, otem-ltv)");
}

void print_summary(const std::string& name, const sim::RunResult& r) {
  std::printf(
      "%-16s qloss=%.5f%%  avg=%.2f kW  cooling=%.2f kWh  max_Tb=%.1f C  "
      "violations=%.0f s  unserved=%.2f kWh\n",
      name.c_str(), r.qloss_percent, r.average_power_w / 1000.0,
      r.energy_cooling_j / 3.6e6, r.max_t_battery_k - 273.15,
      r.thermal_violation_s, r.unserved_energy_j / 3.6e6);
}

void dump_trace(const sim::RunResult& r, const std::string& path) {
  CsvTable csv({"t_s", "p_load_w", "p_cooler_w", "p_cap_w", "i_bat_a",
                "tb_c", "tc_c", "soc_percent", "soe_percent",
                "qloss_percent", "teb"});
  for (size_t k = 0; k < r.trace.t_battery_k.size(); ++k) {
    csv.add_numeric_row(
        {static_cast<double>(k), r.trace.p_load_w[k], r.trace.p_cooler_w[k],
         r.trace.p_cap_w[k], r.trace.i_bat_a[k],
         r.trace.t_battery_k[k] - 273.15, r.trace.t_coolant_k[k] - 273.15,
         r.trace.soc_percent[k], r.trace.soe_percent[k],
         r.trace.qloss_percent[k], r.trace.teb[k]},
        6);
  }
  csv.write_file(path);
  std::printf("trace written to %s (%zu rows)\n", path.c_str(),
              r.trace.t_battery_k.size());
}

int cmd_cycles() {
  std::printf("%-7s %10s %10s %10s %10s %7s\n", "cycle", "dur_s", "km",
              "avg_kmh", "max_kmh", "stops");
  for (vehicle::CycleName c : vehicle::all_cycles()) {
    const vehicle::CycleStats s = vehicle::stats_of(vehicle::generate(c));
    std::printf("%-7s %10.0f %10.1f %10.0f %10.0f %7d\n",
                vehicle::to_string(c), s.duration_s, s.distance_m / 1000.0,
                s.avg_speed_mps * 3.6, s.max_speed_mps * 3.6, s.stop_count);
  }
  return 0;
}

TimeSeries load_for(const Config& cfg, const core::SystemSpec& spec,
                    const std::string& cycle_name) {
  const vehicle::Powertrain pt(spec.vehicle);
  TimeSeries speed;
  if (cfg.has("cycle_csv")) {
    speed = vehicle::load_speed_csv(
        cfg.get_string("cycle_csv", ""), cfg.get_string("time_column", "t"),
        cfg.get_string("speed_column", "v"));
  } else {
    speed = vehicle::generate(vehicle::cycle_from_string(cycle_name));
  }
  const size_t repeats = static_cast<size_t>(cfg.get_long("repeats", 1));
  return pt.power_trace(speed).repeated(repeats);
}

int cmd_run(const std::string& cycle, const Config& cfg) {
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const std::string method = cfg.get_string("method", "otem");
  const TimeSeries power = load_for(cfg, spec, cycle);
  std::printf("%s on %s: %zu steps, mean %.1f kW, peak %.1f kW\n",
              method.c_str(), cycle.c_str(), power.size(),
              power.mean() / 1000.0, power.max() / 1000.0);

  auto m = make_method(method, spec, cfg);
  const sim::Simulator sim(spec);
  const sim::RunResult r = sim.run(*m, power);
  print_summary(method, r);

  const battery::CapacityFadeModel fade(spec.battery.cell);
  std::printf("battery lifetime at this mission: %.0f repetitions to 20%% "
              "loss\n",
              fade.missions_to_end_of_life(r.qloss_percent));
  if (cfg.has("trace_csv")) dump_trace(r, cfg.get_string("trace_csv", ""));
  if (cfg.has("report_json")) {
    const std::string path = cfg.get_string("report_json", "");
    sim::write_run_report(path, spec, method, r,
                          cfg.get_bool("report_trace", false));
    std::printf("report written to %s\n", path.c_str());
  }
  return 0;
}

int cmd_compare(const std::string& cycle, const Config& cfg) {
  const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
  const TimeSeries power = load_for(cfg, spec, cycle);
  const sim::Simulator sim(spec);
  std::vector<std::string> methods = {"parallel", "active_cooling", "dual",
                                      "otem"};
  sim::RunResult base;
  for (const auto& name : methods) {
    auto m = make_method(name, spec, cfg);
    sim::RunOptions opt;
    opt.record_trace = false;
    const sim::RunResult r = sim.run(*m, power, opt);
    if (name == "parallel") base = r;
    print_summary(name, r);
    if (name != "parallel" && base.qloss_percent > 0.0) {
      std::printf("%-16s   -> %.1f %% of parallel's capacity loss\n", "",
                  sim::relative_capacity_loss_percent(r, base));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config cfg = Config::from_args(argc, argv);
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.find('=') == std::string::npos) positional.push_back(arg);
    }
    if (positional.empty()) {
      std::printf(
          "usage: otem_cli cycles\n"
          "       otem_cli run <cycle> [method=...] [repeats=N] "
          "[trace_csv=path] [report_json=path] [key=value...]\n"
          "       otem_cli compare <cycle> [repeats=N] [key=value...]\n");
      return 1;
    }
    const std::string& cmd = positional[0];
    if (cmd == "cycles") return cmd_cycles();
    if (cmd == "run" && positional.size() >= 2)
      return cmd_run(positional[1], cfg);
    if (cmd == "compare" && positional.size() >= 2)
      return cmd_compare(positional[1], cfg);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
