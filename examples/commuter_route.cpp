// commuter_route — scripting a custom route with CycleBuilder and
// evaluating it across environment temperatures. A commute is
// residential streets, a highway stretch, then downtown stop-and-go;
// the example compares OTEM against the unmanaged parallel baseline in
// winter, spring and summer conditions (the paper evaluates "different
// environment temperatures").
//
//   ./build/examples/commuter_route
#include <cstdio>

#include "core/methodology_registry.h"
#include "sim/simulator.h"
#include "vehicle/drive_cycle.h"
#include "vehicle/powertrain.h"

using namespace otem;

namespace {

TimeSeries build_commute() {
  vehicle::CycleBuilder b;
  // Residential: short low-speed hops with stop signs.
  b.idle(10);
  for (int i = 0; i < 4; ++i) {
    b.ramp_to(11.0, 1.4).cruise(25).stop(1.8, 8);
  }
  // Highway on-ramp and a 6-minute cruise with traffic ripple.
  b.ramp_to(30.0, 2.2).cruise_wavy(360, 1.5, 40);
  // Off-ramp into downtown stop-and-go.
  b.ramp_to(12.0, 1.8);
  for (int i = 0; i < 6; ++i) {
    b.cruise(20);
    b.stop(2.0, 12);
    b.ramp_to(12.0, 1.6);
  }
  b.stop(2.0, 5);
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  const Config base_cfg = Config::from_args(argc, argv);

  const TimeSeries speed = build_commute();
  const vehicle::CycleStats stats = vehicle::stats_of(speed);
  std::printf("Commute: %.0f s, %.1f km, avg %.0f km/h, %d stops\n",
              stats.duration_s, stats.distance_m / 1000.0,
              stats.avg_speed_mps * 3.6, stats.stop_count);

  std::printf("\n%-10s %-10s %12s %12s %12s\n", "season", "strategy",
              "qloss_%", "avg_kW", "max_Tb_C");
  const struct {
    const char* name;
    double ambient_c;
  } seasons[] = {{"winter", 0.0}, {"spring", 15.0}, {"summer", 35.0}};

  for (const auto& season : seasons) {
    Config cfg = base_cfg;
    cfg.set("ambient_k", season.ambient_c + 273.15);
    const core::SystemSpec spec = core::SystemSpec::from_config(cfg);
    const TimeSeries power =
        vehicle::Powertrain(spec.vehicle).power_trace(speed);
    const sim::Simulator simulator(spec);

    // Start the pack at ambient — a parked car soaks to outside temp.
    sim::RunOptions opt;
    opt.initial.t_battery_k = spec.ambient_k;
    opt.initial.t_coolant_k = spec.ambient_k;

    const auto parallel = core::make_methodology("parallel", spec, cfg);
    const auto otem = core::make_methodology("otem", spec, cfg);
    const sim::RunResult rp = simulator.run(*parallel, power, opt);
    const sim::RunResult ro = simulator.run(*otem, power, opt);

    std::printf("%-10s %-10s %12.5f %12.1f %12.1f\n", season.name,
                "parallel", rp.qloss_percent, rp.average_power_w / 1000.0,
                rp.max_t_battery_k - 273.15);
    std::printf("%-10s %-10s %12.5f %12.1f %12.1f\n", season.name, "otem",
                ro.qloss_percent, ro.average_power_w / 1000.0,
                ro.max_t_battery_k - 273.15);
  }
  std::printf("\nNote how the OTEM advantage grows with ambient "
              "temperature: hot packs age fastest (Arrhenius), so "
              "management has more to win in summer.\n");
  return 0;
}
