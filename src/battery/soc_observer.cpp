#include "battery/soc_observer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace otem::battery {

SocObserverParams SocObserverParams::from_config(const Config& cfg) {
  SocObserverParams p;
  p.correction_rate = cfg.get_double("bms.correction_rate",
                                     p.correction_rate);
  p.min_voc_slope = cfg.get_double("bms.min_voc_slope", p.min_voc_slope);
  OTEM_REQUIRE(p.correction_rate >= 0.0,
               "observer correction rate must be non-negative");
  OTEM_REQUIRE(p.min_voc_slope > 0.0,
               "observer slope floor must be positive");
  return p;
}

SocObserver::SocObserver(PackModel model, SocObserverParams params,
                         double initial_soc_percent)
    : model_(std::move(model)), params_(params),
      soc_(std::clamp(initial_soc_percent, 0.0, 100.0)) {}

double SocObserver::update(double i_measured_a, double v_measured,
                           double temp_k, double dt) {
  OTEM_REQUIRE(dt > 0.0, "observer step must be positive");

  // Prediction: coulomb counting with the (possibly biased) sensor.
  soc_ = model_.step_soc(soc_, i_measured_a, dt);

  // Correction: map the voltage innovation to a SoC error through the
  // local Voc slope; taper where the curve is flat (no information).
  const double v_pred =
      model_.terminal_voltage(soc_, temp_k, i_measured_a);
  innovation_ = v_measured - v_pred;
  const double slope =
      std::max(model_.open_circuit_voltage_dsoc(soc_), params_.min_voc_slope);
  const double soc_error = innovation_ / slope;  // [%]
  soc_ = std::clamp(soc_ + params_.correction_rate * dt * soc_error, 0.0,
                    100.0);
  return soc_;
}

}  // namespace otem::battery
