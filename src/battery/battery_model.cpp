#include "battery/battery_model.h"

#include <algorithm>
#include <cmath>

#include "battery/cell_math.h"
#include "common/constants.h"
#include "common/error.h"
#include "common/fast_math.h"

namespace otem::battery {

PackModel::PackModel(PackParams params) : params_(std::move(params)) {
  OTEM_REQUIRE(params_.series > 0 && params_.parallel > 0,
               "pack topology must be positive");
}

double PackModel::cell_open_circuit_voltage(double soc_percent) const {
  return cellmath::voc(params_.cell, soc_percent);
}

double PackModel::cell_internal_resistance(double soc_percent,
                                           double temp_k) const {
  OTEM_REQUIRE(temp_k > 100.0, "battery temperature must be in kelvin");
  return cellmath::r25(params_.cell, soc_percent) *
         cellmath::r_arrhenius(params_.cell, temp_k);
}

double PackModel::open_circuit_voltage(double soc_percent) const {
  return params_.series * cell_open_circuit_voltage(soc_percent);
}

double PackModel::internal_resistance(double soc_percent,
                                      double temp_k) const {
  return cell_internal_resistance(soc_percent, temp_k) * params_.series /
         params_.parallel;
}

double PackModel::open_circuit_voltage_dsoc(double soc_percent) const {
  const CellParams& c = params_.cell;
  const double s = std::clamp(soc_percent, 0.0, 100.0) / 100.0;
  const double s2 = s * s;
  const double dcell_ds = c.v1 * c.v2 * fastmath::exp(c.v2 * s) +
                          4.0 * c.v3 * s2 * s + 3.0 * c.v4 * s2 +
                          2.0 * c.v5 * s + c.v6;
  // Chain rule: s = soc/100.
  return params_.series * dcell_ds / 100.0;
}

double PackModel::internal_resistance_dsoc(double soc_percent,
                                           double temp_k) const {
  const CellParams& c = params_.cell;
  const double s = std::clamp(soc_percent, 0.0, 100.0) / 100.0;
  const double arrhenius = cellmath::r_arrhenius(c, temp_k);
  const double dr25_ds = c.r1 * c.r2 * fastmath::exp(c.r2 * s);
  return dr25_ds * arrhenius / 100.0 * params_.series / params_.parallel;
}

double PackModel::internal_resistance_dtemp(double soc_percent,
                                            double temp_k) const {
  // d/dT exp(k (1/T - 1/Tref)) = -k/T^2 * exp(...)
  const double r = internal_resistance(soc_percent, temp_k);
  const double k =
      params_.cell.resistance_activation_j_mol / constants::kGasConstant;
  return -r * k / (temp_k * temp_k);
}

double PackModel::nominal_energy_j() const {
  // Approximate: capacity [C] * Voc at 50 % SoC.
  return capacity_ah() * 3600.0 * open_circuit_voltage(50.0);
}

double PackModel::max_discharge_power(double soc_percent,
                                      double temp_k) const {
  const double voc = open_circuit_voltage(soc_percent);
  const double r = internal_resistance(soc_percent, temp_k);
  return voc * voc / (4.0 * r);
}

double PackModel::terminal_voltage(double soc_percent, double temp_k,
                                   double i) const {
  return open_circuit_voltage(soc_percent) -
         internal_resistance(soc_percent, temp_k) * i;
}

PowerSolve PackModel::current_for_power(double soc_percent, double temp_k,
                                        double power_w) const {
  PowerSolve out;
  const double voc = open_circuit_voltage(soc_percent);
  const double r = internal_resistance(soc_percent, temp_k);
  // Terminal power P = (Voc - R i) i  =>  R i^2 - Voc i + P = 0.
  // Discharge (P > 0): the physical branch is the SMALLER positive root
  // (high-voltage, low-current operating point). Charge (P < 0): the
  // negative root of the same quadratic.
  const double disc = voc * voc - 4.0 * r * power_w;
  if (disc < 0.0) {
    // Request exceeds the deliverable maximum: clamp at peak power.
    out.current_a = voc / (2.0 * r);
    out.feasible = false;
  } else {
    out.current_a = (voc - std::sqrt(disc)) / (2.0 * r);
  }
  out.terminal_voltage = voc - r * out.current_a;
  return out;
}

double PackModel::heat_generation(double soc_percent, double temp_k,
                                  double i) const {
  const double r = internal_resistance(soc_percent, temp_k);
  const double joule = i * i * r;  // I (Voc - V) = I^2 R
  // Entropic term, Eq. (4): I * T * dVoc/dT summed over the pack. The
  // per-cell coefficient scales by the series count (pack Voc = series
  // * cell Voc); cell current is i / parallel.
  const double entropic =
      i * temp_k * params_.cell.dvoc_dtemp * params_.series;
  return joule + entropic;
}

double PackModel::step_soc(double soc_percent, double i, double dt) const {
  return std::clamp(soc_percent + soc_rate(i) * dt, 0.0, 100.0);
}

double PackModel::soc_rate(double i) const {
  // Eq. (1): SoC_t = SoC_0 - 100 * integral(I / C_bat); C_bat in
  // ampere-seconds here.
  return -100.0 * i / (capacity_ah() * 3600.0);
}

void PackModel::step_soc_lanes(double* soc_percent, const double* i_a,
                               double dt, size_t n) const {
  const double cap_as = capacity_ah() * 3600.0;
  double* __restrict__ soc = soc_percent;
  const double* __restrict__ i = i_a;
  for (size_t l = 0; l < n; ++l) {
    soc[l] = std::clamp(soc[l] + (-100.0 * i[l] / cap_as) * dt, 0.0, 100.0);
  }
}

PackModel::EnergySplit PackModel::energy_for_step(double soc_percent,
                                                  double temp_k, double i,
                                                  double dt) const {
  EnergySplit split;
  const double v = terminal_voltage(soc_percent, temp_k, i);
  split.terminal_j = v * i * dt;
  split.loss_j = i * i * internal_resistance(soc_percent, temp_k) * dt;
  return split;
}

}  // namespace otem::battery
