#include "battery/rc_model.h"

#include <cmath>

#include "common/error.h"

namespace otem::battery {

RcParams RcParams::from_config(const Config& cfg) {
  RcParams p;
  p.r1_cell = cfg.get_double("battery.rc.r1", p.r1_cell);
  p.c1_cell = cfg.get_double("battery.rc.c1", p.c1_cell);
  OTEM_REQUIRE(p.r1_cell > 0.0 && p.c1_cell > 0.0,
               "RC branch parameters must be positive");
  return p;
}

TransientPackModel::TransientPackModel(PackParams pack, RcParams rc)
    : base_(std::move(pack)), rc_(rc) {
  OTEM_REQUIRE(rc_.r1_cell > 0.0 && rc_.c1_cell > 0.0,
               "RC branch parameters must be positive");
}

double TransientPackModel::r1_pack() const {
  return rc_.r1_cell * base_.params().series / base_.params().parallel;
}

double TransientPackModel::c1_pack() const {
  return rc_.c1_cell * base_.params().parallel / base_.params().series;
}

double TransientPackModel::terminal_voltage(double soc_percent,
                                            double temp_k, double i,
                                            double v1) const {
  return base_.terminal_voltage(soc_percent, temp_k, i) - v1;
}

double TransientPackModel::step_v1(double v1, double i, double dt) const {
  OTEM_REQUIRE(dt >= 0.0, "dt must be non-negative");
  const double tau = r1_pack() * c1_pack();  // == rc_.tau_s()
  const double decay = std::exp(-dt / tau);
  return v1 * decay + r1_pack() * i * (1.0 - decay);
}

void TransientPackModel::step_v1_lanes(double* v1, const double* i_a,
                                       double dt, size_t n) const {
  OTEM_REQUIRE(dt >= 0.0, "dt must be non-negative");
  const double tau = r1_pack() * c1_pack();
  const double decay = std::exp(-dt / tau);
  const double r1 = r1_pack();
  const double omd = 1.0 - decay;
  double* __restrict__ v = v1;
  const double* __restrict__ i = i_a;
  for (size_t l = 0; l < n; ++l) {
    v[l] = v[l] * decay + r1 * i[l] * omd;
  }
}

PowerSolve TransientPackModel::current_for_power(double soc_percent,
                                                 double temp_k, double v1,
                                                 double power_w) const {
  // Terminal power P = (Voc - v1 - R0 i) i: the base solver's quadratic
  // with an effective open-circuit voltage Voc' = Voc - v1.
  const double voc = base_.open_circuit_voltage(soc_percent) - v1;
  const double r = base_.internal_resistance(soc_percent, temp_k);
  PowerSolve out;
  const double disc = voc * voc - 4.0 * r * power_w;
  if (disc < 0.0) {
    out.current_a = voc / (2.0 * r);
    out.feasible = false;
  } else {
    out.current_a = (voc - std::sqrt(disc)) / (2.0 * r);
  }
  out.terminal_voltage = voc - r * out.current_a;
  return out;
}

double TransientPackModel::heat_generation(double soc_percent, double temp_k,
                                           double i, double v1) const {
  const double r0 = base_.internal_resistance(soc_percent, temp_k);
  const double ohmic = i * i * r0;
  const double polarisation = v1 * v1 / r1_pack();
  const double entropic = i * temp_k * base_.params().cell.dvoc_dtemp *
                          base_.params().series;
  return ohmic + polarisation + entropic;
}

}  // namespace otem::battery
