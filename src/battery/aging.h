// aging.h — battery capacity-fade model (paper Eq. 5) and lifetime
// estimation.
//
//   Qloss rate = l1 * exp(-l2 / (R * T_bat)) * I^{l3},  I = discharge
//
// applied per time step with the cell current normalised by the cell
// capacity (C-rate), so the same coefficients work for any pack
// topology. Per the paper, only DISCHARGE current stresses the cell
// (charge/regen currents heat it but do not enter Eq. 5). Temperature
// enters through the Arrhenius factor — the mechanism the whole
// paper's thermal management exists to exploit: cooler cells age
// slower.
#pragma once

#include "battery/params.h"

namespace otem::battery {

class CapacityFadeModel {
 public:
  explicit CapacityFadeModel(CellParams cell);

  const CellParams& cell() const { return cell_; }

  /// Instantaneous loss rate [% of capacity per second] for a CELL
  /// discharge current [A] at temperature T [K]. Charging (negative)
  /// and zero current -> zero (calendar ageing is out of the paper's
  /// scope).
  double loss_rate_percent_per_s(double cell_discharge_current_a,
                                 double temp_k) const;

  /// Same rate from PACK current given the parallel string count
  /// (discharge positive; charging contributes nothing).
  double loss_rate_from_pack_current(double pack_current_a, int parallel,
                                     double temp_k) const;

  /// Loss accumulated over a step [%].
  double loss_for_step(double cell_discharge_current_a, double temp_k,
                       double dt) const;

  /// Estimated battery lifetime in repetitions of a driving mission that
  /// costs `loss_per_mission_percent`, until the paper's 20 % end-of-life
  /// threshold.
  double missions_to_end_of_life(double loss_per_mission_percent) const;

 private:
  CellParams cell_;
};

}  // namespace otem::battery
