// params.h — battery cell and pack parameters.
//
// Defaults model a Panasonic NCR18650A-class Li-ion cell (the cell the
// paper cites for the Tesla Model S pack [21]) and a mid-size EV pack.
// Every value can be overridden through otem::Config with the
// "battery." key prefix, so refitted datasheet parameters drop in
// without recompiling.
#pragma once

#include "common/config.h"

namespace otem::battery {

/// Per-cell electrical, thermal and ageing parameters (paper Section II-A).
struct CellParams {
  // --- electrical: Eq. (1)-(3) -----------------------------------------
  /// Rated capacity C_bat [Ah] at nominal discharge rate.
  double capacity_ah = 3.1;

  /// Open-circuit voltage fit, Eq. (2), over normalised SoC s in [0, 1]:
  ///   Voc(s) = v1 e^{v2 s} + v3 s^4 + v4 s^3 + v5 s^2 + v6 s + v7  [V]
  double v1 = -0.30;
  double v2 = -20.0;
  double v3 = -0.60;
  double v4 = 1.50;
  double v5 = -1.10;
  double v6 = 1.00;
  double v7 = 3.30;

  /// Internal resistance fit, Eq. (3), at the reference temperature:
  ///   R25(s) = r1 e^{r2 s} + r3  [ohm]
  double r1 = 0.080;
  double r2 = -15.0;
  double r3 = 0.045;

  /// Arrhenius activation energy [J/mol] for the resistance temperature
  /// sensitivity: R(s, T) = R25(s) * exp(Ea_r/R * (1/T - 1/Tref)).
  /// Elevated temperature lowers the internal resistance (Section II-A).
  double resistance_activation_j_mol = 15000.0;

  /// Reference temperature for parameter fits [K].
  double ref_temp_k = 298.15;

  // --- thermal: Eq. (4), (14) -------------------------------------------
  /// Entropic heat coefficient dVoc/dT [V/K], Eq. (4).
  double dvoc_dtemp = 2.0e-4;

  /// Cell heat capacity C_b [J/K] (≈46 g * 830 J/(kg K)).
  double heat_capacity_j_k = 40.0;

  // --- ageing: Eq. (5) ----------------------------------------------------
  /// Capacity-loss rate coefficients:
  ///   dQloss/dt = l1 * exp(-l2 / (R T)) * (|I|/C_bat)^{l3}   [%/s]
  /// Millner-class Li-ion fade models [6] put the activation energy in
  /// the 31-60 kJ/mol range depending on chemistry and stress state; we
  /// use 50 kJ/mol (~7.8 %/K at room temperature), the upper-middle of
  /// that range, because the paper's whole evaluation hinges on
  /// temperature strongly steering capacity loss (Figs. 6/8). l1 is
  /// calibrated so an aggressive US06 run costs a few milli-percent of
  /// capacity (a few thousand missions to the 20 % end of life).
  double l1 = 2000.0;
  double l2 = 50000.0;
  double l3 = 1.0;

  /// End-of-life threshold: the paper retires the pack at 20 % loss.
  double end_of_life_loss_percent = 20.0;

  /// Load overrides with prefix "battery.cell." from cfg.
  static CellParams from_config(const Config& cfg);
};

/// Pack topology: identical cells, `series` in a string, `parallel`
/// strings. Defaults give a ~345 V nominal, ~17 kWh city-EV pack — the
/// scale at which an aggressive cycle heats the cells by tens of
/// kelvin within minutes (the paper's Fig. 1 premise; a Tesla-class
/// 85 kWh pack would barely warm on these cycles).
struct PackParams {
  CellParams cell;
  int series = 96;
  int parallel = 16;

  int cell_count() const { return series * parallel; }

  /// Pack capacity [Ah] = parallel * cell capacity.
  double capacity_ah() const { return parallel * cell.capacity_ah; }

  /// Pack heat capacity [J/K] = sum of cell heat capacities.
  double heat_capacity_j_k() const {
    return cell_count() * cell.heat_capacity_j_k;
  }

  /// Load overrides with prefix "battery." from cfg.
  static PackParams from_config(const Config& cfg);
};

}  // namespace otem::battery
