// soc_observer.h — BMS State-of-Charge estimation.
//
// Every methodology in this library reads SoC directly from the plant;
// a real Battery Management System [9, 10] must ESTIMATE it from
// measured current and terminal voltage. This observer is the standard
// practical scheme: coulomb counting (fast, but drifts with current-
// sensor bias) corrected by the open-circuit-voltage relation (slow,
// but absolutely anchored):
//
//   soc_dot = -100 I_meas / C + L * (V_meas - V_pred(soc, I_meas))
//
// with V_pred from the pack model and the innovation gain L scheduled
// by the local slope dVoc/dSoC (a Luenberger observer on the
// quasi-static model). Feed it the plant's noisy measurements and it
// tracks true SoC through bias the pure coulomb counter cannot see.
#pragma once

#include "battery/battery_model.h"

namespace otem::battery {

struct SocObserverParams {
  /// Innovation gain [1/s]: fraction of the voltage-implied SoC error
  /// corrected per second. 0.05 converges in ~1 min without chasing
  /// sensor noise.
  double correction_rate = 0.05;

  /// Slope floor [V/%] — below it (the flat mid-SoC plateau) the
  /// voltage carries little SoC information and the correction is
  /// tapered to avoid dividing by ~0.
  double min_voc_slope = 0.05;

  /// Load overrides with prefix "bms." from cfg.
  static SocObserverParams from_config(const Config& cfg);
};

class SocObserver {
 public:
  SocObserver(PackModel model, SocObserverParams params,
              double initial_soc_percent);

  double soc_percent() const { return soc_; }

  /// One measurement update: measured pack current [A] (discharge +),
  /// measured terminal voltage [V], battery temperature [K], step [s].
  /// Returns the new estimate.
  double update(double i_measured_a, double v_measured, double temp_k,
                double dt);

  /// The voltage innovation of the most recent update [V].
  double last_innovation_v() const { return innovation_; }

 private:
  PackModel model_;
  SocObserverParams params_;
  double soc_;
  double innovation_ = 0.0;
};

}  // namespace otem::battery
