#include "battery/aging.h"

#include <cmath>
#include <limits>

#include "battery/cell_math.h"
#include "common/constants.h"
#include "common/error.h"

namespace otem::battery {

CapacityFadeModel::CapacityFadeModel(CellParams cell) : cell_(cell) {
  OTEM_REQUIRE(cell_.capacity_ah > 0.0, "fade model needs positive capacity");
}

double CapacityFadeModel::loss_rate_percent_per_s(
    double cell_discharge_current_a, double temp_k) const {
  OTEM_REQUIRE(temp_k > 100.0, "temperature must be in kelvin");
  if (cell_discharge_current_a <= 0.0) return 0.0;
  const double c_rate = cell_discharge_current_a / cell_.capacity_ah;
  const double arrhenius = cellmath::fade_arrhenius(cell_, temp_k);
  // pow(x, 1) == x exactly (IEEE 754), so the l3 == 1 shortcut is
  // bit-identical — and it is what lets the batched lane kernel stay
  // branch-free at the default fade exponent.
  const double powed =
      cell_.l3 == 1.0 ? c_rate : std::pow(c_rate, cell_.l3);
  return cell_.l1 * arrhenius * powed;
}

double CapacityFadeModel::loss_rate_from_pack_current(double pack_current_a,
                                                      int parallel,
                                                      double temp_k) const {
  OTEM_REQUIRE(parallel > 0, "parallel string count must be positive");
  return loss_rate_percent_per_s(std::max(pack_current_a, 0.0) / parallel,
                                 temp_k);
}

double CapacityFadeModel::loss_for_step(double cell_discharge_current_a,
                                        double temp_k, double dt) const {
  return loss_rate_percent_per_s(cell_discharge_current_a, temp_k) * dt;
}

double CapacityFadeModel::missions_to_end_of_life(
    double loss_per_mission_percent) const {
  if (loss_per_mission_percent <= 0.0)
    return std::numeric_limits<double>::infinity();
  return cell_.end_of_life_loss_percent / loss_per_mission_percent;
}

}  // namespace otem::battery
