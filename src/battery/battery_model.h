// battery_model.h — Li-ion battery pack electrical model (paper Eqs. 1-4).
//
// The model is STATELESS: every query takes the battery state (SoC in
// percent, temperature in kelvin) explicitly. This lets the plant
// simulator and the MPC predictor share one implementation — the MPC
// rolls the same equations forward over hypothetical trajectories
// without touching plant state.
//
// Sign convention: current and power are positive on DISCHARGE (energy
// leaving the pack) and negative on charge/regen.
#pragma once

#include <cstddef>

#include "battery/params.h"

namespace otem::battery {

/// Result of resolving a terminal power request into a pack current.
struct PowerSolve {
  double current_a = 0.0;        ///< pack current [A], discharge positive
  double terminal_voltage = 0.0; ///< pack terminal voltage under load [V]
  bool feasible = true;          ///< false when |P| exceeds deliverable max
};

class PackModel {
 public:
  explicit PackModel(PackParams params);

  const PackParams& params() const { return params_; }

  // --- per-cell quantities ----------------------------------------------
  /// Cell open-circuit voltage [V], Eq. (2); soc in percent.
  double cell_open_circuit_voltage(double soc_percent) const;

  /// Cell internal resistance [ohm], Eq. (3) with Arrhenius temperature
  /// sensitivity (hotter cell -> lower resistance).
  double cell_internal_resistance(double soc_percent, double temp_k) const;

  // --- pack-level quantities ----------------------------------------------
  /// Pack open-circuit voltage [V] (series * cell Voc).
  double open_circuit_voltage(double soc_percent) const;

  /// Pack internal resistance [ohm] (series/parallel aggregation).
  double internal_resistance(double soc_percent, double temp_k) const;

  // --- analytic partial derivatives (for the MPC adjoint) -----------------
  /// d(pack Voc)/d(SoC percent) [V/%].
  double open_circuit_voltage_dsoc(double soc_percent) const;

  /// d(pack R)/d(SoC percent) [ohm/%].
  double internal_resistance_dsoc(double soc_percent, double temp_k) const;

  /// d(pack R)/d(T) [ohm/K].
  double internal_resistance_dtemp(double soc_percent, double temp_k) const;

  /// Pack capacity [Ah].
  double capacity_ah() const { return params_.capacity_ah(); }

  /// Approximate stored energy at 100 % SoC [J] (capacity * nominal Voc
  /// integral approximated at the mid-SoC voltage).
  double nominal_energy_j() const;

  /// Maximum instantaneous discharge power [W] at (soc, T): Voc^2 / (4 R).
  double max_discharge_power(double soc_percent, double temp_k) const;

  /// Terminal voltage under current i [V]: V = Voc - R i.
  double terminal_voltage(double soc_percent, double temp_k, double i) const;

  /// Solve pack current for a requested terminal power [W]
  /// (P = (Voc - R i) i, smaller root for discharge). For charging
  /// (P < 0) solves the matching negative-current branch. When the
  /// request exceeds max deliverable power the result is clamped to the
  /// maximum-power current and `feasible` is false.
  PowerSolve current_for_power(double soc_percent, double temp_k,
                               double power_w) const;

  /// Total pack heat generation [W], Eq. (4): Joule loss plus entropic
  /// term, summed over cells.
  double heat_generation(double soc_percent, double temp_k, double i) const;

  /// New SoC [percent] after drawing pack current i for dt seconds,
  /// Eq. (1); clamps to [0, 100].
  double step_soc(double soc_percent, double i, double dt) const;

  /// Batched step_soc over n lanes, in place. Same expression and
  /// association order as the scalar path (the capacity product is a
  /// loop invariant either way), so results are bit-identical.
  void step_soc_lanes(double* soc_percent, const double* i_a, double dt,
                      size_t n) const;

  /// SoC delta [percent] corresponding to pack current i over dt (no
  /// clamping) — used by the MPC predictor where clamping is handled by
  /// constraints instead.
  double soc_rate(double i) const;

  /// Electrical energy delivered (or absorbed, negative) at the terminal
  /// over dt [J], plus the resistive loss inside the pack [J].
  struct EnergySplit {
    double terminal_j = 0.0;
    double loss_j = 0.0;
  };
  EnergySplit energy_for_step(double soc_percent, double temp_k, double i,
                              double dt) const;

 private:
  PackParams params_;
};

}  // namespace otem::battery
