// rc_model.h — second-order (Thevenin) transient battery model.
//
// The paper's Eq. 2-3 model is quasi-static: V = Voc(SoC) - R(SoC,T) I.
// Real cells add a polarisation transient — under a current step the
// voltage keeps sagging for tens of seconds as the diffusion
// overpotential V1 builds across an R1 || C1 branch:
//
//   V = Voc(SoC) - R0(SoC,T) I - V1,
//   C1 dV1/dt = I - V1 / R1.
//
// The paper explicitly notes that "more detailed battery electrical
// model may increase behavior modeling accuracy, [but] will not
// contradict our methodology" — this model quantifies exactly that
// (bench/ablation_battery_fidelity): how much voltage/heat error the
// quasi-static plant model carries on real drive profiles.
//
// Stateless like PackModel: the polarisation voltage V1 is carried by
// the caller and advanced with the exact exponential update.
#pragma once

#include "battery/battery_model.h"

namespace otem::battery {

struct RcParams {
  /// Polarisation branch per CELL: resistance [ohm] and capacitance
  /// [F]. Defaults give a ~30 s diffusion time constant, typical for
  /// 18650 NMC/NCA cells.
  double r1_cell = 0.025;
  double c1_cell = 1200.0;

  double tau_s() const { return r1_cell * c1_cell; }

  /// Load overrides with prefix "battery.rc." from cfg.
  static RcParams from_config(const Config& cfg);
};

class TransientPackModel {
 public:
  TransientPackModel(PackParams pack, RcParams rc);

  const PackModel& quasi_static() const { return base_; }
  const RcParams& rc() const { return rc_; }

  /// Pack-level polarisation resistance [ohm].
  double r1_pack() const;
  /// Pack-level polarisation capacitance [F].
  double c1_pack() const;

  /// Terminal voltage [V] at pack current i with polarisation state v1.
  double terminal_voltage(double soc_percent, double temp_k, double i,
                          double v1) const;

  /// Exact exponential update of the polarisation voltage over dt:
  /// v1 -> v1 e^{-dt/tau} + R1 i (1 - e^{-dt/tau}).
  double step_v1(double v1, double i, double dt) const;

  /// Batched step_v1 over n lanes, in place. The decay factor depends
  /// only on dt and params, so the exp() is hoisted and the lane loop
  /// is a pure multiply-add sweep; per-lane association order matches
  /// the scalar path, so results are bit-identical.
  void step_v1_lanes(double* v1, const double* i_a, double dt,
                     size_t n) const;

  /// Steady-state polarisation voltage at sustained current i.
  double v1_steady(double i) const { return r1_pack() * i; }

  /// Solve the pack current for a terminal power request given the
  /// CURRENT polarisation state (held over the step): the quadratic of
  /// PackModel with the open-circuit voltage shifted by v1.
  PowerSolve current_for_power(double soc_percent, double temp_k,
                               double v1, double power_w) const;

  /// Total heat [W]: ohmic (R0) + polarisation (V1^2/R1) + entropic.
  double heat_generation(double soc_percent, double temp_k, double i,
                         double v1) const;

 private:
  PackModel base_;
  RcParams rc_;
};

}  // namespace otem::battery
