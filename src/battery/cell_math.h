// cell_math.h — inline per-cell electrical/ageing kernels shared by the
// scalar model entry points (PackModel, CapacityFadeModel) and the SoA
// batched plant kernels.
//
// Both paths MUST evaluate the same expressions in the same association
// order: the batched fleet's bit-identity to the scalar oracle
// (tests/test_plant_batch.cpp) depends on it. That is why these live in
// one header instead of being re-derived at each call site, and why
// they use fastmath::exp — the one exp implementation both the scalar
// and the vectorized lane loops share (see common/fast_math.h).
#pragma once

#include <algorithm>

#include "battery/params.h"
#include "common/constants.h"
#include "common/fast_math.h"

namespace otem::battery::cellmath {

/// Open-circuit voltage of one cell [V] (paper Eq. 2 fit).
inline double voc(const CellParams& c, double soc_percent) {
  const double s = std::clamp(soc_percent, 0.0, 100.0) / 100.0;
  const double s2 = s * s;
  return c.v1 * fastmath::exp(c.v2 * s) + c.v3 * s2 * s2 + c.v4 * s2 * s +
         c.v5 * s2 + c.v6 * s + c.v7;
}

/// Internal resistance of one cell at the 25 C reference [ohm].
inline double r25(const CellParams& c, double soc_percent) {
  const double s = std::clamp(soc_percent, 0.0, 100.0) / 100.0;
  return c.r1 * fastmath::exp(c.r2 * s) + c.r3;
}

/// Arrhenius resistance factor vs the reference temperature
/// (dimensionless; cell resistance = r25 * r_arrhenius).
inline double r_arrhenius(const CellParams& c, double temp_k) {
  return fastmath::exp(c.resistance_activation_j_mol /
                       constants::kGasConstant *
                       (1.0 / temp_k - 1.0 / c.ref_temp_k));
}

/// Arrhenius capacity-fade factor (paper Eq. 5's exp(-l2 / RT)).
inline double fade_arrhenius(const CellParams& c, double temp_k) {
  return fastmath::exp(-c.l2 / (constants::kGasConstant * temp_k));
}

}  // namespace otem::battery::cellmath
