#include "battery/params.h"

#include "common/error.h"

namespace otem::battery {

CellParams CellParams::from_config(const Config& cfg) {
  CellParams p;
  p.capacity_ah = cfg.get_double("battery.cell.capacity_ah", p.capacity_ah);
  p.v1 = cfg.get_double("battery.cell.v1", p.v1);
  p.v2 = cfg.get_double("battery.cell.v2", p.v2);
  p.v3 = cfg.get_double("battery.cell.v3", p.v3);
  p.v4 = cfg.get_double("battery.cell.v4", p.v4);
  p.v5 = cfg.get_double("battery.cell.v5", p.v5);
  p.v6 = cfg.get_double("battery.cell.v6", p.v6);
  p.v7 = cfg.get_double("battery.cell.v7", p.v7);
  p.r1 = cfg.get_double("battery.cell.r1", p.r1);
  p.r2 = cfg.get_double("battery.cell.r2", p.r2);
  p.r3 = cfg.get_double("battery.cell.r3", p.r3);
  p.resistance_activation_j_mol = cfg.get_double(
      "battery.cell.resistance_activation", p.resistance_activation_j_mol);
  p.ref_temp_k = cfg.get_double("battery.cell.ref_temp_k", p.ref_temp_k);
  p.dvoc_dtemp = cfg.get_double("battery.cell.dvoc_dtemp", p.dvoc_dtemp);
  p.heat_capacity_j_k =
      cfg.get_double("battery.cell.heat_capacity", p.heat_capacity_j_k);
  p.l1 = cfg.get_double("battery.cell.l1", p.l1);
  p.l2 = cfg.get_double("battery.cell.l2", p.l2);
  p.l3 = cfg.get_double("battery.cell.l3", p.l3);
  p.end_of_life_loss_percent = cfg.get_double(
      "battery.cell.end_of_life_loss", p.end_of_life_loss_percent);

  OTEM_REQUIRE(p.capacity_ah > 0.0, "battery cell capacity must be positive");
  OTEM_REQUIRE(p.heat_capacity_j_k > 0.0,
               "battery heat capacity must be positive");
  OTEM_REQUIRE(p.r3 > 0.0, "battery series resistance floor must be positive");
  OTEM_REQUIRE(p.l1 >= 0.0 && p.l2 >= 0.0,
               "battery ageing coefficients must be non-negative");
  return p;
}

PackParams PackParams::from_config(const Config& cfg) {
  PackParams p;
  p.cell = CellParams::from_config(cfg);
  p.series = static_cast<int>(cfg.get_long("battery.series", p.series));
  p.parallel = static_cast<int>(cfg.get_long("battery.parallel", p.parallel));
  OTEM_REQUIRE(p.series > 0 && p.parallel > 0,
               "battery pack topology must be positive");
  return p;
}

}  // namespace otem::battery
