// matrix.h — dense row-major matrix for the optimisation stack.
//
// Sized for MPC-scale problems (tens to a few hundred rows); no BLAS, no
// expression templates — straightforward loops the compiler vectorises.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace otem::optim {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  /// Construct from nested initializer list, e.g. {{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(size_t n);
  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& d);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }

  const double* data() const { return data_.data(); }

  /// Resize to rows x cols and zero-fill, reusing the existing
  /// allocation when capacity allows. The workhorse for workspaces that
  /// persist across solver iterations / MPC steps.
  void reshape(size_t rows, size_t cols);

  /// Zero every element in place.
  void set_zero();

  Matrix transposed() const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(double s) const;

  Vector operator*(const Vector& v) const;

  /// out = (*this) * other without allocating when `out` already has the
  /// right shape (ikj loop order, row-major cache-friendly). `out` must
  /// not alias either operand. Same accumulation order as operator*, so
  /// results are bit-identical.
  void multiply_into(const Matrix& other, Matrix& out) const;

  /// out = (*this) * v, reusing out's capacity. `out` must not alias v.
  void multiply_vector_into(const Vector& v, Vector& out) const;

  /// out = (*this)^T * (*this) — the Gram matrix A^T A — computed
  /// without materialising the transpose. Reuses out's storage.
  void gram_into(Matrix& out) const;

  /// (*this) += alpha * other, elementwise (same shape).
  void add_scaled(const Matrix& other, double alpha);

  /// y += alpha * A^T x (used by adjoint code and CG-style iterations).
  void transpose_multiply_add(const Vector& x, double alpha, Vector& y) const;

  /// Max absolute element (infinity norm of the flattened data).
  double max_abs() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// True when symmetric to within `tol` (absolute).
  bool is_symmetric(double tol = 1e-12) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace otem::optim
