// matrix.h — dense row-major matrix for the optimisation stack.
//
// Sized for MPC-scale problems (tens to a few hundred rows); no BLAS, no
// expression templates — straightforward loops the compiler vectorises.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace otem::optim {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  /// Construct from nested initializer list, e.g. {{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(size_t n);
  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& d);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }

  const double* data() const { return data_.data(); }

  Matrix transposed() const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(double s) const;

  Vector operator*(const Vector& v) const;

  /// y += alpha * A^T x (used by adjoint code and CG-style iterations).
  void transpose_multiply_add(const Vector& x, double alpha, Vector& y) const;

  /// Max absolute element (infinity norm of the flattened data).
  double max_abs() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// True when symmetric to within `tol` (absolute).
  bool is_symmetric(double tol = 1e-12) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace otem::optim
