// vector_ops.h — free functions on optim::Vector (std::vector<double>).
#pragma once

#include "optim/matrix.h"

namespace otem::optim {

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
double norm_inf(const Vector& a);

/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);

/// Elementwise a - b.
Vector subtract(const Vector& a, const Vector& b);

/// Elementwise a + b.
Vector add(const Vector& a, const Vector& b);

/// alpha * a.
Vector scaled(const Vector& a, double alpha);

/// Clamp each component into [lo_i, hi_i] (box projection).
void project_box(const Vector& lo, const Vector& hi, Vector& x);

/// Max_i of the box-constraint violation of x (0 when inside).
double box_violation(const Vector& lo, const Vector& hi, const Vector& x);

/// Norm of the projected gradient: || P_box(x - g) - x ||_inf. Zero at a
/// box-constrained stationary point; the standard first-order criterion
/// for projected-gradient methods.
double projected_gradient_norm(const Vector& lo, const Vector& hi,
                               const Vector& x, const Vector& g);

}  // namespace otem::optim
