#include "optim/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace otem::optim {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    OTEM_REQUIRE(row.size() == cols_, "ragged matrix initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

void Matrix::reshape(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

void Matrix::set_zero() {
  std::fill(data_.begin(), data_.end(), 0.0);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator+(const Matrix& other) const {
  OTEM_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "matrix addition shape mismatch");
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  OTEM_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "matrix subtraction shape mismatch");
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] - other.data_[i];
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  OTEM_REQUIRE(cols_ == other.rows_, "matrix product shape mismatch");
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c)
        out(r, c) += a * other(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  OTEM_REQUIRE(cols_ == v.size(), "matrix-vector shape mismatch");
  Vector out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * v[c];
    out[r] = s;
  }
  return out;
}

void Matrix::multiply_into(const Matrix& other, Matrix& out) const {
  OTEM_REQUIRE(cols_ == other.rows_, "matrix product shape mismatch");
  OTEM_REQUIRE(&out != this && &out != &other,
               "multiply_into output must not alias an operand");
  out.reshape(rows_, other.cols_);
  // Raw restrict pointers let the axpy inner loop vectorise; the k-ascending
  // accumulation order is unchanged, so results stay bit-identical to
  // operator*.
  const size_t oc = other.cols_;
  const double* __restrict ap = data_.data();
  const double* __restrict bp = other.data_.data();
  double* __restrict op = out.data_.data();
  for (size_t r = 0; r < rows_; ++r) {
    double* __restrict orow = op + r * oc;
    for (size_t k = 0; k < cols_; ++k) {
      const double a = ap[r * cols_ + k];
      if (a == 0.0) continue;
      const double* __restrict brow = bp + k * oc;
      for (size_t c = 0; c < oc; ++c) orow[c] += a * brow[c];
    }
  }
}

void Matrix::multiply_vector_into(const Vector& v, Vector& out) const {
  OTEM_REQUIRE(cols_ == v.size(), "matrix-vector shape mismatch");
  OTEM_REQUIRE(&out != &v, "multiply_vector_into output must not alias v");
  out.assign(rows_, 0.0);
  // The dot-product reduction keeps c-ascending order (bit-identical to
  // operator*); hoisted row pointers just cheapen the addressing.
  const double* __restrict ap = data_.data();
  const double* __restrict vp = v.data();
  for (size_t r = 0; r < rows_; ++r) {
    const double* __restrict arow = ap + r * cols_;
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) s += arow[c] * vp[c];
    out[r] = s;
  }
}

void Matrix::gram_into(Matrix& out) const {
  OTEM_REQUIRE(&out != this, "gram_into output must not alias the input");
  out.reshape(cols_, cols_);
  // Accumulate row r's outer contribution a_r a_r^T; summing over rows
  // in the outer loop keeps the accumulation order identical to
  // transposed() * (*this). Restrict pointers let the inner axpy
  // vectorise without reordering the sums.
  const double* __restrict ap = data_.data();
  double* __restrict op = out.data_.data();
  for (size_t r = 0; r < rows_; ++r) {
    const double* __restrict arow = ap + r * cols_;
    for (size_t i = 0; i < cols_; ++i) {
      const double a = arow[i];
      if (a == 0.0) continue;
      double* __restrict orow = op + i * cols_;
      for (size_t j = 0; j < cols_; ++j) orow[j] += a * arow[j];
    }
  }
}

void Matrix::add_scaled(const Matrix& other, double alpha) {
  OTEM_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "add_scaled shape mismatch");
  double* __restrict dp = data_.data();
  const double* __restrict op = other.data_.data();
  const size_t size = data_.size();
  for (size_t i = 0; i < size; ++i) dp[i] += alpha * op[i];
}

void Matrix::transpose_multiply_add(const Vector& x, double alpha,
                                    Vector& y) const {
  OTEM_REQUIRE(rows_ == x.size() && cols_ == y.size(),
               "transpose_multiply_add shape mismatch");
  // y must not alias this matrix's storage. The restrict-qualified axpy
  // vectorises; accumulation order (r ascending) is unchanged.
  const double* __restrict ap = data_.data();
  double* __restrict yp = y.data();
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = alpha * x[r];
    if (xr == 0.0) continue;
    const double* __restrict arow = ap + r * cols_;
    for (size_t c = 0; c < cols_; ++c) yp[c] += arow[c] * xr;
  }
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

}  // namespace otem::optim
