#include "optim/matrix.h"

#include <cmath>

#include "common/error.h"

namespace otem::optim {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    OTEM_REQUIRE(row.size() == cols_, "ragged matrix initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator+(const Matrix& other) const {
  OTEM_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "matrix addition shape mismatch");
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  OTEM_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "matrix subtraction shape mismatch");
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] - other.data_[i];
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  OTEM_REQUIRE(cols_ == other.rows_, "matrix product shape mismatch");
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c)
        out(r, c) += a * other(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  OTEM_REQUIRE(cols_ == v.size(), "matrix-vector shape mismatch");
  Vector out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * v[c];
    out[r] = s;
  }
  return out;
}

void Matrix::transpose_multiply_add(const Vector& x, double alpha,
                                    Vector& y) const {
  OTEM_REQUIRE(rows_ == x.size() && cols_ == y.size(),
               "transpose_multiply_add shape mismatch");
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = alpha * x[r];
    if (xr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) y[c] += (*this)(r, c) * xr;
  }
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

}  // namespace otem::optim
