#include "optim/finite_diff.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace otem::optim {

Vector finite_difference_gradient(
    const std::function<double(const Vector&)>& f, const Vector& x,
    double step) {
  Vector g(x.size());
  Vector xp = x;
  for (size_t i = 0; i < x.size(); ++i) {
    const double orig = xp[i];
    const double h = step * std::max(1.0, std::abs(orig));
    xp[i] = orig + h;
    const double fp = f(xp);
    xp[i] = orig - h;
    const double fm = f(xp);
    xp[i] = orig;
    g[i] = (fp - fm) / (2.0 * h);
  }
  return g;
}

double gradient_max_rel_error(const std::function<double(const Vector&)>& f,
                              const Vector& x, const Vector& analytic,
                              double step) {
  OTEM_REQUIRE(analytic.size() == x.size(),
               "gradient_max_rel_error size mismatch");
  const Vector fd = finite_difference_gradient(f, x, step);
  double worst = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double denom = std::max(1.0, std::abs(fd[i]));
    worst = std::max(worst, std::abs(fd[i] - analytic[i]) / denom);
  }
  return worst;
}

}  // namespace otem::optim
