// lbfgs.h — limited-memory BFGS with box projection.
//
// Used to polish Adam's solution near a minimiser where curvature
// information pays off. The projection scheme is the classic
// projected-path backtracking: candidate points along the L-BFGS
// direction are projected onto the box before the Armijo test, falling
// back to steepest descent when the quasi-Newton direction is not a
// descent direction.
#pragma once

#include "optim/problem.h"

namespace otem::optim {

struct LbfgsOptions {
  size_t max_iterations = 100;
  size_t history = 8;          ///< number of (s, y) pairs retained
  double tolerance = 1e-8;     ///< projected-gradient stopping threshold
  double armijo_c1 = 1e-4;
  double backtrack_factor = 0.5;
  size_t max_line_search = 30;
};

SolveResult minimize_lbfgs(Objective& objective, const Box& box,
                           const Vector& x0, const LbfgsOptions& options = {});

}  // namespace otem::optim
