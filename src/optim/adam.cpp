#include "optim/adam.h"

#include <cmath>

#include "common/error.h"
#include "optim/vector_ops.h"

namespace otem::optim {

SolveResult minimize_adam(Objective& objective, const Box& box,
                          const Vector& x0, const AdamOptions& options) {
  const size_t n = objective.dim();
  OTEM_REQUIRE(x0.size() == n, "Adam: x0 dimension mismatch");
  OTEM_REQUIRE(box.lo.size() == n && box.hi.size() == n,
               "Adam: box dimension mismatch");

  Vector x = x0;
  project_box(box.lo, box.hi, x);

  Vector m(n, 0.0);
  Vector v(n, 0.0);
  Vector grad(n, 0.0);

  SolveResult result;
  result.x = x;
  result.value = objective.value_and_gradient(x, grad);

  double best_value = result.value;
  Vector best_x = x;

  for (size_t it = 1; it <= options.max_iterations; ++it) {
    const double pg = projected_gradient_norm(box.lo, box.hi, x, grad);
    if (pg < options.tolerance) {
      result.converged = true;
      result.iterations = it - 1;
      break;
    }

    const double bc1 = 1.0 - std::pow(options.beta1, static_cast<double>(it));
    const double bc2 = 1.0 - std::pow(options.beta2, static_cast<double>(it));
    for (size_t i = 0; i < n; ++i) {
      m[i] = options.beta1 * m[i] + (1.0 - options.beta1) * grad[i];
      v[i] = options.beta2 * v[i] + (1.0 - options.beta2) * grad[i] * grad[i];
      const double mh = m[i] / bc1;
      const double vh = v[i] / bc2;
      x[i] -= options.learning_rate * mh / (std::sqrt(vh) + options.epsilon);
    }
    project_box(box.lo, box.hi, x);

    const double f = objective.value_and_gradient(x, grad);
    if (f < best_value) {
      best_value = f;
      best_x = x;
    }
    result.iterations = it;
  }

  result.x = std::move(best_x);
  result.value = best_value;
  return result;
}

}  // namespace otem::optim
