#include "optim/ltv_qp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "obs/trace.h"
#include "optim/vector_ops.h"

namespace otem::optim {

namespace {

/// Bitwise equality of the KKT-relevant stage data (dynamics, battery
/// row). Bounds and the linear cost q never enter K, so they are free
/// to change without invalidating the factorisation — exactly the dense
/// solver's A-matrix comparison, stage-structured.
bool same_kkt_rows(const LtvQpStage& a, const LtvQpStage& b) {
  for (size_t r = 0; r < kLtvStates; ++r) {
    if (a.ew[r] != b.ew[r] || a.cw[r] != b.cw[r]) return false;
    for (size_t m = 0; m < kLtvStates; ++m)
      if (a.aw.m[r][m] != b.aw.m[r][m]) return false;
    for (size_t j = 0; j < kLtvControls; ++j)
      if (a.bv.m[r][j] != b.bv.m[r][j]) return false;
  }
  for (size_t j = 0; j < kLtvControls; ++j)
    if (a.cv[j] != b.cv[j]) return false;
  return true;
}

}  // namespace

QpProblem ltv_qp_to_dense(const LtvQpProblem& problem) {
  const size_t h = problem.horizon();
  const size_t n = problem.num_vars();
  const size_t m = problem.num_rows();
  QpProblem dense;
  dense.p = Matrix(n, n);
  dense.q.assign(n, 0.0);
  dense.a = Matrix(m, n);
  dense.l.assign(m, 0.0);
  dense.u.assign(m, 0.0);
  for (size_t k = 0; k < h; ++k) {
    const LtvQpStage& s = problem.stages[k];
    const size_t col = kLtvStageVars * k;  // this stage's [v_k, w_{k+1}]
    const size_t row = kLtvStageRows * k;
    for (size_t j = 0; j < kLtvControls; ++j) {
      dense.p(col + j, col + j) = s.p[j];
      dense.q[col + j] = s.q[j];
      dense.a(row + j, col + j) = 1.0;
      dense.l[row + j] = s.v_lo[j];
      dense.u[row + j] = s.v_hi[j];
    }
    for (size_t r = 0; r < kLtvStates; ++r) {
      dense.a(row + 2 + r, col + 2 + r) = s.ew[r];
      for (size_t j = 0; j < kLtvControls; ++j)
        dense.a(row + 2 + r, col + j) = -s.bv.m[r][j];
      if (k > 0)
        for (size_t mm = 0; mm < kLtvStates; ++mm)
          dense.a(row + 2 + r, col - kLtvStageVars + 2 + mm) = -s.aw.m[r][mm];
      dense.a(row + 6 + r, col + 2 + r) = 1.0;
      dense.l[row + 6 + r] = s.x_lo[r];
      dense.u[row + 6 + r] = s.x_hi[r];
    }
    for (size_t j = 0; j < kLtvControls; ++j)
      dense.a(row + 10, col + j) = s.cv[j];
    if (k > 0)
      for (size_t mm = 0; mm < kLtvStates; ++mm)
        dense.a(row + 10, col - kLtvStageVars + 2 + mm) = s.cw[mm];
    dense.l[row + 10] = s.b_lo;
    dense.u[row + 10] = s.b_hi;
  }
  return dense;
}

void LtvQpSolver::assemble_kkt(const LtvQpProblem& problem, double sigma,
                               double rho) {
  const size_t h = problem.horizon();
  using Block = SmallMat<kLtvStageVars, kLtvStageVars>;
  kkt_diag_.assign(h, Block{});
  kkt_sub_.assign(h > 0 ? h - 1 : 0, Block{});
  const double rho_eq = kLtvEqRhoScale * rho;
  for (size_t k = 0; k < h; ++k) {
    const LtvQpStage& s = problem.stages[k];
    Block& d = kkt_diag_[k];
    // Cost curvature, sigma regularisation, and the unit-coefficient
    // rows (control boxes on v_k, state bounds on w_{k+1}) plus this
    // stage's ew^2 equality diagonal.
    for (size_t j = 0; j < kLtvControls; ++j)
      d.m[j][j] += s.p[j] + sigma + rho;
    for (size_t r = 0; r < kLtvStates; ++r)
      d.m[2 + r][2 + r] += sigma + rho + rho_eq * s.ew[r] * s.ew[r];
    // This stage's dynamics rows: rho_eq bv^T bv on the v block and the
    // v <-> w_{k+1} cross terms against the ew coefficients (the -bv and
    // +ew signs cancel into a single minus).
    SmallMat<kLtvControls, kLtvControls> gvv = {};
    transpose_multiply_add(s.bv, s.bv, rho_eq, gvv);
    for (size_t j1 = 0; j1 < kLtvControls; ++j1)
      for (size_t j2 = 0; j2 < kLtvControls; ++j2)
        d.m[j1][j2] += gvv.m[j1][j2];
    for (size_t r = 0; r < kLtvStates; ++r)
      for (size_t j = 0; j < kLtvControls; ++j) {
        const double cross = -rho_eq * s.bv.m[r][j] * s.ew[r];
        d.m[j][2 + r] += cross;
        d.m[2 + r][j] += cross;
      }
    // This stage's battery row on the v block (rho cv cv^T).
    for (size_t j1 = 0; j1 < kLtvControls; ++j1)
      for (size_t j2 = 0; j2 < kLtvControls; ++j2)
        d.m[j1][j2] += rho * s.cv[j1] * s.cv[j2];
    // Stage k+1's rows also touch w_{k+1}: its dynamics rows contribute
    // rho_eq aw^T aw to this diagonal block and its battery row
    // rho cw cw^T; the couplings with stage k+1's own variables land in
    // the sub-diagonal block (stage k+1 rows x stage k columns).
    if (k + 1 < h) {
      const LtvQpStage& nx = problem.stages[k + 1];
      SmallMat<kLtvStates, kLtvStates> gww = {};
      transpose_multiply_add(nx.aw, nx.aw, rho_eq, gww);
      for (size_t m1 = 0; m1 < kLtvStates; ++m1)
        for (size_t m2 = 0; m2 < kLtvStates; ++m2)
          d.m[2 + m1][2 + m2] +=
              gww.m[m1][m2] + rho * nx.cw[m1] * nx.cw[m2];
      Block& l = kkt_sub_[k];
      // (-bv)^T (-aw) = +bv^T aw on [v_{k+1}][w_{k+1}] ...
      SmallMat<kLtvControls, kLtvStates> gva = {};
      transpose_multiply_add(nx.bv, nx.aw, rho_eq, gva);
      for (size_t j = 0; j < kLtvControls; ++j)
        for (size_t mm = 0; mm < kLtvStates; ++mm)
          l.m[j][2 + mm] +=
              gva.m[j][mm] + rho * nx.cv[j] * nx.cw[mm];
      // ... and ew * (-aw) on [w_{k+2}][w_{k+1}].
      for (size_t r = 0; r < kLtvStates; ++r)
        for (size_t mm = 0; mm < kLtvStates; ++mm)
          l.m[2 + r][2 + mm] -= rho_eq * nx.ew[r] * nx.aw.m[r][mm];
    }
  }
}

void LtvQpSolver::assemble_kkt_weighted(const LtvQpProblem& problem,
                                        double sigma, const Vector& w) {
  const size_t h = problem.horizon();
  using Block = SmallMat<kLtvStageVars, kLtvStageVars>;
  pol_diag_.assign(h, Block{});
  pol_sub_.assign(h > 0 ? h - 1 : 0, Block{});
  // Same contributions as assemble_kkt, but every row brings its own
  // weight (so the uniform-scale block kernels don't apply). Runs once
  // per polish — clarity over throughput here.
  for (size_t k = 0; k < h; ++k) {
    const LtvQpStage& s = problem.stages[k];
    const double* wk = w.data() + kLtvStageRows * k;
    Block& d = pol_diag_[k];
    for (size_t j = 0; j < kLtvControls; ++j)
      d.m[j][j] += s.p[j] + sigma + wk[j];
    for (size_t r = 0; r < kLtvStates; ++r) {
      const double we = wk[2 + r];
      d.m[2 + r][2 + r] += sigma + wk[6 + r] + we * s.ew[r] * s.ew[r];
      for (size_t j1 = 0; j1 < kLtvControls; ++j1) {
        const double cross = -we * s.bv.m[r][j1] * s.ew[r];
        d.m[j1][2 + r] += cross;
        d.m[2 + r][j1] += cross;
        for (size_t j2 = 0; j2 < kLtvControls; ++j2)
          d.m[j1][j2] += we * s.bv.m[r][j1] * s.bv.m[r][j2];
      }
    }
    for (size_t j1 = 0; j1 < kLtvControls; ++j1)
      for (size_t j2 = 0; j2 < kLtvControls; ++j2)
        d.m[j1][j2] += wk[10] * s.cv[j1] * s.cv[j2];
    if (k + 1 < h) {
      const LtvQpStage& nx = problem.stages[k + 1];
      const double* wn = w.data() + kLtvStageRows * (k + 1);
      Block& l = pol_sub_[k];
      for (size_t r = 0; r < kLtvStates; ++r) {
        const double we = wn[2 + r];
        for (size_t m1 = 0; m1 < kLtvStates; ++m1) {
          for (size_t m2 = 0; m2 < kLtvStates; ++m2)
            d.m[2 + m1][2 + m2] += we * nx.aw.m[r][m1] * nx.aw.m[r][m2];
          l.m[2 + r][2 + m1] -= we * nx.ew[r] * nx.aw.m[r][m1];
        }
        for (size_t j = 0; j < kLtvControls; ++j)
          for (size_t mm = 0; mm < kLtvStates; ++mm)
            l.m[j][2 + mm] += we * nx.bv.m[r][j] * nx.aw.m[r][mm];
      }
      for (size_t m1 = 0; m1 < kLtvStates; ++m1) {
        for (size_t m2 = 0; m2 < kLtvStates; ++m2)
          d.m[2 + m1][2 + m2] += wn[10] * nx.cw[m1] * nx.cw[m2];
        for (size_t j = 0; j < kLtvControls; ++j)
          l.m[j][2 + m1] += wn[10] * nx.cv[j] * nx.cw[m1];
      }
    }
  }
}

void LtvQpSolver::ax_into(const LtvQpProblem& problem, const Vector& x,
                          Vector& out) {
  const size_t h = problem.horizon();
  out.resize(problem.num_rows());
  for (size_t k = 0; k < h; ++k) {
    const LtvQpStage& s = problem.stages[k];
    const double* xk = x.data() + kLtvStageVars * k;
    const double* xp =
        k > 0 ? x.data() + kLtvStageVars * (k - 1) : nullptr;
    double* o = out.data() + kLtvStageRows * k;
    o[0] = xk[0];
    o[1] = xk[1];
    for (size_t r = 0; r < kLtvStates; ++r) {
      double v = s.ew[r] * xk[2 + r];
      for (size_t j = 0; j < kLtvControls; ++j)
        v -= s.bv.m[r][j] * xk[j];
      if (xp)
        for (size_t mm = 0; mm < kLtvStates; ++mm)
          v -= s.aw.m[r][mm] * xp[2 + mm];
      o[2 + r] = v;
      o[6 + r] = xk[2 + r];
    }
    double b = s.cv[0] * xk[0] + s.cv[1] * xk[1];
    if (xp)
      for (size_t mm = 0; mm < kLtvStates; ++mm)
        b += s.cw[mm] * xp[2 + mm];
    o[10] = b;
  }
}

void LtvQpSolver::aty_accumulate(const LtvQpProblem& problem, const Vector& t,
                                 Vector& y_out) {
  const size_t h = problem.horizon();
  for (size_t k = 0; k < h; ++k) {
    const LtvQpStage& s = problem.stages[k];
    const double* tk = t.data() + kLtvStageRows * k;
    double* yk = y_out.data() + kLtvStageVars * k;
    double* yp =
        k > 0 ? y_out.data() + kLtvStageVars * (k - 1) : nullptr;
    yk[0] += tk[0];
    yk[1] += tk[1];
    for (size_t r = 0; r < kLtvStates; ++r) {
      const double te = tk[2 + r];
      yk[2 + r] += s.ew[r] * te + tk[6 + r];
      for (size_t j = 0; j < kLtvControls; ++j)
        yk[j] -= s.bv.m[r][j] * te;
      if (yp)
        for (size_t mm = 0; mm < kLtvStates; ++mm)
          yp[2 + mm] -= s.aw.m[r][mm] * te;
    }
    const double tb = tk[10];
    yk[0] += s.cv[0] * tb;
    yk[1] += s.cv[1] * tb;
    if (yp)
      for (size_t mm = 0; mm < kLtvStates; ++mm)
        yp[2 + mm] += s.cw[mm] * tb;
  }
}

void LtvQpSolver::gather_bounds(const LtvQpProblem& problem) {
  const size_t h = problem.horizon();
  l_.resize(problem.num_rows());
  u_.resize(problem.num_rows());
  for (size_t k = 0; k < h; ++k) {
    const LtvQpStage& s = problem.stages[k];
    double* l = l_.data() + kLtvStageRows * k;
    double* u = u_.data() + kLtvStageRows * k;
    for (size_t j = 0; j < kLtvControls; ++j) {
      l[j] = s.v_lo[j];
      u[j] = s.v_hi[j];
      OTEM_REQUIRE(l[j] <= u[j], "LTV QP: v_lo > v_hi in some stage");
    }
    for (size_t r = 0; r < kLtvStates; ++r) {
      l[2 + r] = 0.0;
      u[2 + r] = 0.0;
      l[6 + r] = s.x_lo[r];
      u[6 + r] = s.x_hi[r];
      OTEM_REQUIRE(l[6 + r] <= u[6 + r],
                   "LTV QP: x_lo > x_hi in some stage");
    }
    l[10] = s.b_lo;
    u[10] = s.b_hi;
    OTEM_REQUIRE(l[10] <= u[10], "LTV QP: b_lo > b_hi in some stage");
  }
}

double LtvQpSolver::dual_residual(const LtvQpProblem& problem,
                                  const Vector& x, const Vector& y,
                                  double& scale) {
  const size_t h = problem.horizon();
  const size_t n = problem.num_vars();
  // P x: curvature lives on the v slots only.
  px_.resize(n);
  double q_norm = 0.0;
  for (size_t k = 0; k < h; ++k) {
    const LtvQpStage& s = problem.stages[k];
    double* p = px_.data() + kLtvStageVars * k;
    const double* xk = x.data() + kLtvStageVars * k;
    for (size_t j = 0; j < kLtvControls; ++j) {
      p[j] = s.p[j] * xk[j];
      q_norm = std::max(q_norm, std::abs(s.q[j]));
    }
    for (size_t r = 0; r < kLtvStates; ++r) p[2 + r] = 0.0;
  }
  aty_.assign(n, 0.0);
  aty_accumulate(problem, y, aty_);
  dres_.resize(n);
  for (size_t k = 0; k < h; ++k) {
    const LtvQpStage& s = problem.stages[k];
    const size_t base = kLtvStageVars * k;
    for (size_t j = 0; j < kLtvControls; ++j)
      dres_[base + j] = px_[base + j] + s.q[j] + aty_[base + j];
    for (size_t r = 0; r < kLtvStates; ++r)
      dres_[base + 2 + r] = aty_[base + 2 + r];
  }
  scale = std::max({norm_inf(px_), q_norm, norm_inf(aty_)});
  return norm_inf(dres_);
}

bool LtvQpSolver::polish(const LtvQpProblem& problem,
                         const QpOptions& options, QpResult& result,
                         size_t& stage_ops) {
  const size_t h = problem.horizon();
  const size_t n = problem.num_vars();
  const size_t m = problem.num_rows();

  // Initial working-set guess from the terminal iterates. The dual's
  // sign (OSQP's rule) names the bound a row pushes against; at a
  // loose eps a truly active row can also still sit slightly inside
  // its bound with an exactly-zero dual, so bound proximity (at the
  // accuracy the iterate actually has) marks a row active too.
  // Equality rows are always active. The guess only has to be close:
  // the refinement rounds below repair it.
  w_row_.resize(m);
  b_act_.resize(m);
  const double act_tol =
      10.0 * (options.eps_abs + result.primal_residual);
  for (size_t i = 0; i < m; ++i) {
    double b = 0.0;
    bool active = false;
    const bool lo_ok = l_[i] > -kLtvInf, hi_ok = u_[i] < kLtvInf;
    if (l_[i] == u_[i]) {
      active = true;
      b = l_[i];
    } else if (y_[i] < 0.0 && lo_ok) {
      active = true;
      b = l_[i];
    } else if (y_[i] > 0.0 && hi_ok) {
      active = true;
      b = u_[i];
    } else if (lo_ok && z_[i] - l_[i] <= act_tol &&
               (!hi_ok || z_[i] - l_[i] <= u_[i] - z_[i])) {
      active = true;
      b = l_[i];
    } else if (hi_ok && u_[i] - z_[i] <= act_tol) {
      active = true;
      b = u_[i];
    }
    w_row_[i] = active ? kLtvPolishWeight : 0.0;
    b_act_[i] = b;
  }

  // A full-strength proximal term would bias controls whose curvature
  // is near the regularisation floor (p ~ sigma): the polish point
  // would land at p/(p + sigma) of the true minimiser. P's floor keeps
  // the system PD on its own, so polish runs with a vanishing sigma.
  const double psig = options.sigma * 1e-6;

  // One pure-penalty solve of the current working set, from xp_:
  //   (P + psig I + A_act^T W A_act) x = psig xp - q + A_act^T (W b - y)
  // With y == 0 this is bounded by construction (the W-penalty itself
  // caps how far any active row strays), so working-set mistakes can
  // never blow the iterate up — the price is a violation of |y*| / W
  // on a consistent set, which the dual-seeded passes below remove.
  auto penalty_solve = [&](const Vector* y_seed) {
    rhs_.resize(n);
    for (size_t k = 0; k < h; ++k) {
      const LtvQpStage& s = problem.stages[k];
      double* r = rhs_.data() + kLtvStageVars * k;
      const double* xk = xp_.data() + kLtvStageVars * k;
      for (size_t j = 0; j < kLtvControls; ++j)
        r[j] = psig * xk[j] - s.q[j];
      for (size_t rr = 0; rr < kLtvStates; ++rr)
        r[2 + rr] = psig * xk[2 + rr];
    }
    t_.resize(m);
    for (size_t i = 0; i < m; ++i)
      t_[i] = w_row_[i] * b_act_[i] - (y_seed ? (*y_seed)[i] : 0.0);
    aty_accumulate(problem, t_, rhs_);
    stage_ops += h;
    polish_chol_.solve_in_place(rhs_);
  };
  auto active_violation = [&]() {
    double v = 0.0;
    for (size_t i = 0; i < m; ++i)
      if (w_row_[i] != 0.0)
        v = std::max(v, std::abs(ax_[i] - b_act_[i]));
    return v;
  };

  // Working-set refinement, the textbook repair loop: solve the set,
  // then add rows the solution pushes past a bound and drop rows whose
  // multiplier estimate W (a x - b) points into the feasible set. Each
  // round is one O(H) factorisation + solve — a handful of ADMM
  // iterations' work. Duals are NOT carried across rounds: an
  // inconsistent intermediate set would accumulate W * violation per
  // round into them and diverge.
  xp_ = x_;
  bool settled = false;
  for (size_t round = 0; round < kLtvPolishRounds && !settled; ++round) {
    assemble_kkt_weighted(problem, psig, w_row_);
    stage_ops += h;
    polish_chol_.factor(pol_diag_, pol_sub_);
    penalty_solve(nullptr);
    std::swap(xp_, rhs_);
    ax_into(problem, xp_, ax_);
    stage_ops += h;
    yp_.assign(m, 0.0);
    for (size_t i = 0; i < m; ++i)
      if (w_row_[i] != 0.0)
        yp_[i] = kLtvPolishWeight * (ax_[i] - b_act_[i]);
    // Repair: add every violated row, and drop the wrong-sign rows that
    // are confidently wrong — at least kLtvPolishDropFrac of the worst
    // offender this round (peels tiers of comparably-wrong rows
    // together instead of one per round) and above an absolute noise
    // floor. The floor matters: a degenerate row (true multiplier 0)
    // estimates W * O(machine eps), whose sign is coin-flip noise —
    // dropping it creates a noise-sized violation, the add step pulls
    // it back, and the set cycles at the finish line forever.
    size_t nadd = 0, ndrop = 0;
    double worst = 0.0;
    for (size_t i = 0; i < m; ++i) {
      if (w_row_[i] == 0.0) {
        if (l_[i] > -kLtvInf && ax_[i] < l_[i]) {
          w_row_[i] = kLtvPolishWeight;
          b_act_[i] = l_[i];
          ++nadd;
        } else if (u_[i] < kLtvInf && ax_[i] > u_[i]) {
          w_row_[i] = kLtvPolishWeight;
          b_act_[i] = u_[i];
          ++nadd;
        }
      } else if (l_[i] != u_[i]) {
        const double y_est = kLtvPolishWeight * (ax_[i] - b_act_[i]);
        const double wrong = b_act_[i] == l_[i] ? y_est : -y_est;
        worst = std::max(worst, wrong);
      }
    }
    if (worst > kLtvPolishDropFloor) {
      const double cut =
          std::max(kLtvPolishDropFrac * worst, kLtvPolishDropFloor);
      for (size_t i = 0; i < m; ++i) {
        if (w_row_[i] == 0.0 || l_[i] == u_[i]) continue;
        const double y_est = kLtvPolishWeight * (ax_[i] - b_act_[i]);
        const double wrong = b_act_[i] == l_[i] ? y_est : -y_est;
        if (wrong >= cut) {
          w_row_[i] = 0.0;
          ++ndrop;
        }
      }
    }
    settled = nadd == 0 && ndrop == 0;
  }

  // Multiplier estimates of the final set AS SOLVED (the repair step
  // may have edited w_row_ after the last solve — estimates against
  // the edited set would not be stationarity-consistent), then (on a
  // settled set) guarded augmented-Lagrangian passes on the
  // already-current factorisation: each shrinks the active-row
  // violation by ~kappa/W towards machine zero, and a pass that fails
  // to shrink it (the set was inconsistent after all) is discarded
  // before it can diverge.
  if (settled) {
    double prev_viol = active_violation();
    for (size_t pass = 0; pass < kLtvPolishPasses; ++pass) {
      penalty_solve(&yp_);
      ax_into(problem, rhs_, ax_);
      stage_ops += h;
      const double viol = active_violation();
      if (!(viol < prev_viol)) break;
      prev_viol = viol;
      std::swap(xp_, rhs_);
      for (size_t i = 0; i < m; ++i)
        if (w_row_[i] != 0.0)
          yp_[i] += kLtvPolishWeight * (ax_[i] - b_act_[i]);
    }
  }
  ax_into(problem, xp_, ax_);
  stage_ops += h;

  // Accept only when the polished triple beats the ADMM iterates on
  // BOTH residuals (it loses only when the working set failed to
  // settle — then the ADMM answer stands and nothing was harmed).
  double r_prim = 0.0;
  z_new_.resize(m);
  for (size_t i = 0; i < m; ++i) {
    z_new_[i] = std::clamp(ax_[i], l_[i], u_[i]);
    r_prim = std::max(r_prim, std::abs(ax_[i] - z_new_[i]));
  }
  double dscale = 0.0;
  const double r_dual = dual_residual(problem, xp_, yp_, dscale);
  stage_ops += h;
  if (r_prim > result.primal_residual || r_dual > result.dual_residual)
    return false;
  std::swap(x_, xp_);
  std::swap(y_, yp_);
  std::swap(z_, z_new_);
  result.primal_residual = r_prim;
  result.dual_residual = r_dual;
  result.polished = true;
  return true;
}

QpResult LtvQpSolver::solve(const LtvQpProblem& problem,
                            const QpOptions& options) {
  return solve(problem, options, QpWarmStart{});
}

QpResult LtvQpSolver::solve(const LtvQpProblem& problem,
                            const QpOptions& options,
                            const QpWarmStart& warm) {
  const obs::TraceSpan solve_span("ltv_qp.solve");
  const size_t h = problem.horizon();
  OTEM_REQUIRE(h > 0, "LTV QP: empty horizon");
  const size_t n = problem.num_vars();
  const size_t m = problem.num_rows();

  QpResult result;
  const size_t chol_ops_before = chol_.block_ops();
  const size_t pol_ops_before = polish_chol_.block_ops();
  size_t stage_ops = 0;  // non-factorisation block work (stage matvecs)

  // Warm rho policy (banded refinement): seed the penalty at a
  // geometric blend rho_warm^0.8 * rho_base^0.2, not at the carried
  // terminal value itself. The structured problem's equilibrium rho is
  // ~4 orders of magnitude above the base, and the upward walk acts as
  // a continuation schedule that does real work; re-entering directly
  // at a terminal (often overshot) rho measurably stalls — the
  // deadband of the adaptation keeps rho pinned while the dual creeps.
  // The blend keeps most of the head start without skipping the
  // schedule (0.8 measured best over the sweep 0.5..1.0 on the
  // receding-horizon probes; the even 0.5 mean gives up ~15% of the
  // warm-start iteration win).
  constexpr double kWarmRhoBlend = 0.8;
  // Exact-equality short-circuit: pow(r, 0.8) * pow(r, 0.2) is not
  // bitwise r, and a 1-ulp rho difference would needlessly void the
  // cached factorisation on an identical resolve.
  double rho = options.rho;
  if (warm.rho > 0.0 && warm.rho != options.rho)
    rho = std::clamp(
        std::pow(warm.rho, kWarmRhoBlend) *
            std::pow(options.rho, 1.0 - kWarmRhoBlend),
        1e-6, 1e6);

  gather_bounds(problem);

  // Flat per-row penalty vector, refreshed on every rho move: the two
  // O(m) loops per iteration then index an array instead of paying a
  // modulo + branch per element.
  auto set_rho_rows = [&](double rho_now) {
    rho_row_.resize(m);
    for (size_t i = 0; i < m; ++i)
      rho_row_[i] = rho_now * row_rho_scale(i % kLtvStageRows);
  };

  // KKT factorisation reuse, with the same contract as QpSolver: an
  // exact match of the KKT-relevant stage data + sigma + rho and a cost
  // curvature within kkt_refactor_tol of what is baked into the cached
  // factor reuses it outright. Anything else reassembles — at O(H)
  // block cost the dense solver's in-place-update distinction buys
  // nothing here, but the kkt_refactorizations accounting is identical.
  auto refactor = [&](double rho_now) {
    const obs::TraceSpan factor_span("ltv_qp.factorize");
    assemble_kkt(problem, options.sigma, rho_now);
    stage_ops += h;
    chol_.factor(kkt_diag_, kkt_sub_);
    cached_ = problem.stages;
    sigma_cached_ = options.sigma;
    rho_cached_ = rho_now;
    factored_ = true;
    ++result.kkt_refactorizations;
  };
  bool structure_same = factored_ && cached_.size() == h &&
                        sigma_cached_ == options.sigma;
  double p_drift = 0.0;
  if (structure_same) {
    for (size_t k = 0; k < h && structure_same; ++k) {
      if (!same_kkt_rows(cached_[k], problem.stages[k]))
        structure_same = false;
      for (size_t j = 0; j < kLtvControls; ++j)
        p_drift = std::max(
            p_drift, std::abs(cached_[k].p[j] - problem.stages[k].p[j]));
    }
  }
  if (!(structure_same && rho == rho_cached_ &&
        p_drift <= options.kkt_refactor_tol)) {
    refactor(rho);
  }
  // Else: full reuse. Termination below tests residuals of the true
  // problem data, so a tolerated P drift only affects convergence
  // speed, never the answer; cached_ keeps the stage data baked into
  // the factor, so drift cannot accumulate across solves.
  set_rho_rows(rho);

  // Per-stage linear cost, flattened (states are costless).
  rhs_.resize(n);  // reused as q_full scratch before the loop
  px_.assign(n, 0.0);

  result.warm_started = warm.x.size() == n && warm.y.size() == m;
  if (result.warm_started) {
    x_ = warm.x;
    y_ = warm.y;
    // Re-propagate the state part of the seed through THIS problem's
    // dynamics recursion: the warm w came from the previous problem's
    // (re-linearised, re-scaled) dynamics, so it violates the new
    // equality rows — and the stiff equality penalty would turn that
    // seed inconsistency into a large initial kick. The controls are
    // the meaningful part of the warm start; the states they imply are
    // recomputed in O(H). A cold start (x = 0) is equality-consistent
    // for free, so this keeps warm seeds at least as good.
    for (size_t k = 0; k < h; ++k) {
      const LtvQpStage& s = problem.stages[k];
      double* xk = x_.data() + kLtvStageVars * k;
      const double* xp =
          k > 0 ? x_.data() + kLtvStageVars * (k - 1) : nullptr;
      for (size_t r = 0; r < kLtvStates; ++r) {
        double w = s.bv.m[r][0] * xk[0] + s.bv.m[r][1] * xk[1];
        if (xp)
          for (size_t mm = 0; mm < kLtvStates; ++mm)
            w += s.aw.m[r][mm] * xp[2 + mm];
        xk[2 + r] = w / s.ew[r];
      }
    }
    stage_ops += h;
    ax_into(problem, x_, z_);
    stage_ops += h;
    for (size_t i = 0; i < m; ++i) z_[i] = std::clamp(z_[i], l_[i], u_[i]);
  } else {
    x_.assign(n, 0.0);
    z_.assign(m, 0.0);
    y_.assign(m, 0.0);
  }

  for (size_t it = 0; it < options.max_iterations; ++it) {
    // x-update: solve K x = sigma x - q + A^T (R z - y) in place in
    // rhs_, with R = diag(rho * row_rho_scale).
    rhs_.resize(n);
    for (size_t k = 0; k < h; ++k) {
      const LtvQpStage& s = problem.stages[k];
      double* r = rhs_.data() + kLtvStageVars * k;
      const double* xk = x_.data() + kLtvStageVars * k;
      for (size_t j = 0; j < kLtvControls; ++j)
        r[j] = options.sigma * xk[j] - s.q[j];
      for (size_t rr = 0; rr < kLtvStates; ++rr)
        r[2 + rr] = options.sigma * xk[2 + rr];
    }
    t_.resize(m);
    for (size_t i = 0; i < m; ++i)
      t_[i] = rho_row_[i] * z_[i] - y_[i];
    aty_accumulate(problem, t_, rhs_);
    stage_ops += h;
    chol_.solve_in_place(rhs_);
    const Vector& x_new = rhs_;

    // Over-relaxed z-update with projection onto [l, u], fused with the
    // primal residual and the termination norms (one pass over m).
    ax_into(problem, x_new, ax_);
    stage_ops += h;
    z_new_.resize(m);
    double r_prim = 0.0, ax_norm = 0.0, z_norm = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const double ri = rho_row_[i];
      const double axi = ax_[i];
      const double axr = options.alpha * axi + (1.0 - options.alpha) * z_[i];
      const double zi = std::clamp(axr + y_[i] / ri, l_[i], u_[i]);
      z_new_[i] = zi;
      y_[i] += ri * (axr - zi);
      r_prim = std::max(r_prim, std::abs(axi - zi));
      ax_norm = std::max(ax_norm, std::abs(axi));
      z_norm = std::max(z_norm, std::abs(zi));
    }

    std::swap(x_, rhs_);
    std::swap(z_, z_new_);
    result.iterations = it + 1;
    result.primal_residual = r_prim;

    const double eps_p =
        options.eps_abs + options.eps_rel * std::max(ax_norm, z_norm);

    // Lazy dual residual, same policy as the dense solver: only when it
    // can gate termination, feed the rho rebalance, or be reported.
    const bool rho_due = options.rho_update_interval != 0 &&
                         (it + 1) % options.rho_update_interval == 0;
    const bool need_dual =
        r_prim <= eps_p || rho_due || it + 1 == options.max_iterations;
    double r_dual = result.dual_residual;
    double eps_d = 0.0;
    if (need_dual) {
      double dual_scale = 0.0;
      r_dual = dual_residual(problem, x_, y_, dual_scale);
      stage_ops += h;
      eps_d = options.eps_abs + options.eps_rel * dual_scale;
      result.dual_residual = r_dual;
    }

    if (r_prim <= eps_p && r_dual <= eps_d) {
      result.converged = true;
      break;
    }

    if (rho_due) {
      const double rel_p = r_prim / std::max(eps_p, 1e-30);
      const double rel_d = r_dual / std::max(eps_d, 1e-30);
      const double ratio = std::sqrt(rel_p / std::max(rel_d, 1e-30));
      if (ratio > 3.16 || ratio < 0.316) {
        // Banded refinement: bound each rebalance to one order of
        // magnitude. The unbounded sqrt-ratio step can jump rho x20+
        // past the equilibrium in one update, where the deadband then
        // pins it (too-high rho = vanishing primal residual = no
        // downward pressure) and the dual converges at a crawl.
        const double step_ratio =
            std::clamp(ratio, 1.0 / kLtvRhoStepCap, kLtvRhoStepCap);
        const double rho_new = std::clamp(rho * step_ratio, 1e-6, 1e6);
        if (rho_new != rho) {
          rho = rho_new;
          refactor(rho);
          set_rho_rows(rho);
          ++result.rho_updates;
        }
      }
    }
  }

  // Optional active-set polish: snaps a converged-at-loose-eps iterate
  // to the active-set-exact optimum (its factorisation is kept separate
  // from chol_, so the ADMM factor cache survives and
  // kkt_refactorizations keeps measuring ADMM KKT reuse only).
  if (options.polish && result.converged)
    polish(problem, options, result, stage_ops);

  result.x = x_;
  result.y = y_;
  result.rho_final = rho;
  result.stage_block_ops = stage_ops +
                           (chol_.block_ops() - chol_ops_before) +
                           (polish_chol_.block_ops() - pol_ops_before);
  return result;
}

}  // namespace otem::optim
