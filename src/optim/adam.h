// adam.h — box-projected Adam for smooth minimisation.
//
// The workhorse inner solver of the MPC controller: cheap per iteration,
// tolerant of the mild non-convexity of the HEES rollout, and trivially
// warm-startable from the previous MPC step's shifted solution.
#pragma once

#include "optim/problem.h"

namespace otem::optim {

struct AdamOptions {
  size_t max_iterations = 300;
  double learning_rate = 0.05;   ///< step scale; callers scale per problem
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  /// Stop when the projected-gradient infinity norm falls below this.
  double tolerance = 1e-7;
};

/// Minimise `objective` over the box, starting from x0 (projected into the
/// box first). Tracks and returns the best iterate seen, not merely the
/// last one.
SolveResult minimize_adam(Objective& objective, const Box& box,
                          const Vector& x0, const AdamOptions& options = {});

}  // namespace otem::optim
