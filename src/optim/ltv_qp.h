// ltv_qp.h — structure-exploiting ADMM QP solver for the stage-wise
// (sparse) LTV-MPC transcription.
//
// The receding-horizon QP of the LTV controller is block-banded by
// construction: each horizon step k contributes two control corrections
// v_k, four (scaled) state deviations w_{k+1}, linearised dynamics
// coupling only neighbouring stages, and stage-local bounds. Condensing
// the states away (optim/qp.h path) destroys that structure and makes
// the ADMM KKT matrix dense; this solver keeps the states as decision
// variables, so the KKT matrix
//
//     K = P + sigma I + A^T diag(rho_i) A
//
// is block-tridiagonal with 6x6 stage blocks and factorises in O(H)
// fixed-size block operations (optim/block_tridiag.h) instead of
// O((6H)^3). Matrix-vector products against A are stage-local too, so
// every ADMM iteration is O(H).
//
// Algorithm and semantics deliberately mirror QpSolver (same
// over-relaxed two-block ADMM, same termination tests on the true
// problem data, same QpOptions / QpWarmStart / QpResult types, same
// factorisation-reuse contract including kkt_refactor_tol and
// kkt_refactorizations accounting), with one structured refinement:
// the dynamics equality rows carry a stiffer penalty
// (kLtvEqRhoScale * rho, OSQP's equality handling), which the dense
// solver cannot express but which only changes the iteration path,
// never the fixed point. tests/test_banded_kkt.cpp pins the two
// solvers to the same solution on randomised stage problems via
// ltv_qp_to_dense().
#pragma once

#include <vector>

#include "optim/block_tridiag.h"
#include "optim/qp.h"
#include "optim/small_mat.h"

namespace otem::optim {

inline constexpr size_t kLtvControls = 2;  ///< v_k width (du_cap, du_cool)
inline constexpr size_t kLtvStates = 4;    ///< w_k width (Tb, Tc, SoC, SoE)
/// Decision variables per stage: [v_k, w_{k+1}].
inline constexpr size_t kLtvStageVars = kLtvControls + kLtvStates;
/// Constraint rows per stage: 2 control boxes, 4 dynamics equalities,
/// 4 state bounds, 1 battery-power row.
inline constexpr size_t kLtvStageRows = 11;
/// rho multiplier on the dynamics equality rows: equalities want a much
/// stiffer penalty than ranged inequalities (OSQP's equality handling
/// uses 1e3; 1e2 measures slightly better on the OTEM stage problems).
inline constexpr double kLtvEqRhoScale = 1e2;
/// Largest factor one adaptive-rho rebalance may move rho by (the dense
/// solver's unbounded sqrt-ratio step overshoots on the structured
/// problem — see the solve() implementation).
inline constexpr double kLtvRhoStepCap = 10.0;
/// Penalty weight on active rows during solution polish (the 1/delta of
/// OSQP's delta-regularised polish KKT, realised here as stiff-penalty
/// solves inside a working-set refinement loop, finished off by a few
/// dual-seeded augmented-Lagrangian passes).
inline constexpr double kLtvPolishWeight = 1e6;
/// Working-set refinement rounds per polish: each solves the set under
/// a stiff penalty, then adds violated rows / drops wrong-sign
/// multipliers until the set stabilises (or the round budget runs out
/// and the accept test keeps the ADMM iterates).
inline constexpr size_t kLtvPolishRounds = 30;
/// Wrong-sign multiplier drop rule during refinement: drop every row at
/// least this fraction of the round's worst offender (tiers of
/// comparably-wrong rows leave together) ...
inline constexpr double kLtvPolishDropFrac = 0.3;
/// ... but never below this absolute magnitude: a degenerate row's
/// multiplier estimate is W * O(machine eps) with a coin-flip sign, and
/// dropping it just cycles the set at noise level.
inline constexpr double kLtvPolishDropFloor = 1e-3;
/// Guarded augmented-Lagrangian passes on the settled working set:
/// each reuses its factorisation and shrinks the remaining active-row
/// violation by ~1/kLtvPolishWeight, down to machine level.
inline constexpr size_t kLtvPolishPasses = 3;
/// Bound magnitude treated as "unconstrained" (mirrors the dense path's
/// dropped-row convention).
inline constexpr double kLtvInf = 1e30;

/// One horizon stage of the structured QP, in the solver's scaled
/// decision space. The caller (core::LtvOtemController) folds all
/// variable and row equilibration into these coefficients.
struct LtvQpStage {
  /// Dynamics equality rows r = 0..3:
  ///   ew[r] w_{k+1}[r] - aw[r][.] . w_k - bv[r][.] . v_k = 0.
  /// aw must be zero at stage 0 (w_0 == 0 by definition).
  SmallMat<4, 4> aw = {};
  SmallMat<4, 2> bv = {};
  double ew[4] = {1.0, 1.0, 1.0, 1.0};
  /// Control box rows: v_lo <= v_k <= v_hi.
  double v_lo[2] = {}, v_hi[2] = {};
  /// State bound rows (unit coefficient on w_{k+1}[r]); +-kLtvInf
  /// disables a row.
  double x_lo[4] = {}, x_hi[4] = {};
  /// Battery-power row: b_lo <= cw . w_k + cv . v_k <= b_hi (cw zero at
  /// stage 0).
  double cw[4] = {};
  double cv[2] = {};
  double b_lo = 0.0, b_hi = 0.0;
  /// Stage cost 1/2 v^T diag(p) v + q . v (states are costless — the
  /// objective lives on the controls, exactly as in the condensed QP).
  double p[2] = {}, q[2] = {};
};

struct LtvQpProblem {
  std::vector<LtvQpStage> stages;

  size_t horizon() const { return stages.size(); }
  size_t num_vars() const { return kLtvStageVars * stages.size(); }
  size_t num_rows() const { return kLtvStageRows * stages.size(); }
};

/// Expand the stage-wise problem into the equivalent dense QpProblem —
/// the correctness oracle for tests and a debugging aid. Variable order
/// is [v_0, w_1, v_1, w_2, ...]; row order matches the structured
/// solver (per stage: boxes, dynamics, state bounds, battery).
QpProblem ltv_qp_to_dense(const LtvQpProblem& problem);

/// Reusable structured ADMM solver; keep one alive per controller, like
/// QpSolver. Workspace (stage blocks, factorisation, iterates) persists
/// across solve() calls; the factorisation is reused whenever
/// consecutive problems share their KKT-relevant data (dynamics,
/// battery rows, cost curvature within kkt_refactor_tol, sigma, rho).
class LtvQpSolver {
 public:
  QpResult solve(const LtvQpProblem& problem, const QpOptions& options = {});
  QpResult solve(const LtvQpProblem& problem, const QpOptions& options,
                 const QpWarmStart& warm);

 private:
  /// Per-row penalty: rho for inequality rows, kLtvEqRhoScale * rho for
  /// the dynamics equalities. `row` is the index within a stage.
  static double row_rho_scale(size_t row) {
    return row >= 2 && row < 6 ? kLtvEqRhoScale : 1.0;
  }

  void assemble_kkt(const LtvQpProblem& problem, double sigma, double rho);
  /// Polish variant: K = P + sigma I + A^T diag(w) A for an arbitrary
  /// per-row weight vector (into pol_diag_/pol_sub_, leaving the cached
  /// ADMM factorisation untouched).
  void assemble_kkt_weighted(const LtvQpProblem& problem, double sigma,
                             const Vector& w);
  void ax_into(const LtvQpProblem& problem, const Vector& x, Vector& out);
  void aty_accumulate(const LtvQpProblem& problem, const Vector& t,
                      Vector& y_out);
  void gather_bounds(const LtvQpProblem& problem);
  /// Dual residual ||P x + q + A^T y||_inf of an arbitrary iterate pair
  /// (px_/aty_/dres_ scratch); `scale` returns the eps_rel reference.
  double dual_residual(const LtvQpProblem& problem, const Vector& x,
                       const Vector& y, double& scale);
  /// Active-set polish (see QpOptions::polish): returns true and swaps
  /// the polished iterates into x_/y_/z_ when both residuals improved.
  bool polish(const LtvQpProblem& problem, const QpOptions& options,
              QpResult& result, size_t& stage_ops);

  // KKT stage blocks + factorisation (factored in place).
  std::vector<SmallMat<kLtvStageVars, kLtvStageVars>> kkt_diag_, kkt_sub_;
  BlockTridiagCholesky<kLtvStageVars> chol_;
  // Polish twin: separate storage + factorisation so a polish never
  // invalidates the cached (reusable) ADMM factor above.
  std::vector<SmallMat<kLtvStageVars, kLtvStageVars>> pol_diag_, pol_sub_;
  BlockTridiagCholesky<kLtvStageVars> polish_chol_;
  // Stage data baked into the factor, for the reuse decision (compare
  // KKT-relevant fields only; bounds and q never enter K).
  std::vector<LtvQpStage> cached_;
  double sigma_cached_ = 0.0;
  double rho_cached_ = 0.0;
  bool factored_ = false;
  // Row bounds flattened once per solve (stage-major, kLtvStageRows per
  // stage) so the ADMM loop indexes plain arrays.
  Vector l_, u_;
  // ADMM iterates + scratch, persisted across calls.
  Vector x_, z_, y_;
  Vector rhs_, t_, ax_, z_new_;
  Vector px_, aty_, dres_;
  // Per-row penalty rho * row_rho_scale, materialised whenever rho
  // changes so the two O(m) loops per iteration index a flat array
  // instead of computing a modulo + branch per element.
  Vector rho_row_;
  // Polish scratch: candidate iterates, per-row weights, active bounds.
  Vector xp_, yp_, w_row_, b_act_;
};

}  // namespace otem::optim
