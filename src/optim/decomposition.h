// decomposition.h — Cholesky and LU factorisations with solves.
//
// Used by the QP solver (KKT systems) and available for tests and
// model-fitting utilities. Both throw otem::SimError on singular /
// non-SPD input rather than returning NaNs.
#pragma once

#include <vector>

#include "optim/matrix.h"

namespace otem::optim {

/// Cholesky factorisation A = L L^T of a symmetric positive-definite
/// matrix. Throws if A is not SPD (within a pivot tolerance).
class Cholesky {
 public:
  /// Empty factorisation; call factor() before solving.
  Cholesky() = default;
  explicit Cholesky(const Matrix& a) { factor(a); }

  /// (Re)factorise, reusing the existing storage when the size matches —
  /// the adaptive-rho path of the QP solver refactorises in place.
  void factor(const Matrix& a);

  /// Solve A x = b.
  Vector solve(const Vector& b) const;

  /// Solve A x = b overwriting b with x — no allocation; the QP solver
  /// hot loop uses this against its persistent workspace.
  void solve_in_place(Vector& b) const;

  /// log(det A) — useful for conditioning diagnostics.
  double log_det() const;

  const Matrix& l() const { return l_; }

 private:
  Matrix l_;
};

/// LU factorisation with partial pivoting, P A = L U.
class Lu {
 public:
  explicit Lu(const Matrix& a);

  Vector solve(const Vector& b) const;

  /// Determinant (including pivot sign).
  double det() const;

 private:
  Matrix lu_;                  // packed L (unit diag) and U
  std::vector<size_t> perm_;   // row permutation
  int sign_ = 1;
};

/// Convenience: solve A x = b for general square A via LU.
Vector solve_linear(const Matrix& a, const Vector& b);

}  // namespace otem::optim
