#include "optim/qp.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "obs/trace.h"
#include "optim/vector_ops.h"

namespace otem::optim {

namespace {

/// Exact elementwise equality (including shape) — the gate for reusing
/// the cached Gram matrix / factorisation. Bitwise comparison keeps the
/// reuse decision deterministic.
bool same_values(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const double* pa = a.data();
  const double* pb = b.data();
  const size_t count = a.rows() * a.cols();
  for (size_t i = 0; i < count; ++i)
    if (pa[i] != pb[i]) return false;
  return true;
}

/// max_ij |a_ij - b_ij| for same-shaped matrices.
double max_abs_diff(const Matrix& a, const Matrix& b) {
  const double* pa = a.data();
  const double* pb = b.data();
  const size_t count = a.rows() * a.cols();
  double m = 0.0;
  for (size_t i = 0; i < count; ++i)
    m = std::max(m, std::abs(pa[i] - pb[i]));
  return m;
}

}  // namespace

QpResult QpSolver::solve(const QpProblem& problem,
                         const QpOptions& options) {
  return solve(problem, options, QpWarmStart{});
}

QpResult QpSolver::solve(const QpProblem& problem, const QpOptions& options,
                         const QpWarmStart& warm) {
  const obs::TraceSpan solve_span("qp.solve");
  const size_t n = problem.q.size();
  const size_t m = problem.l.size();
  // Cheap O(1) dimension-consistency checks come first; everything
  // below indexes by these shapes.
  OTEM_REQUIRE(problem.p.rows() == n && problem.p.cols() == n,
               "QP: P must be n x n with n = q.size()");
  OTEM_REQUIRE(problem.a.rows() == m && problem.a.cols() == n,
               "QP: A must be m x n");
  OTEM_REQUIRE(problem.u.size() == m, "QP: l/u size mismatch");
  for (size_t i = 0; i < m; ++i)
    OTEM_REQUIRE(problem.l[i] <= problem.u[i], "QP: l > u in some row");
#ifndef NDEBUG
  // O(n^2) scan — debug-only contract check. solve() runs on every MPC
  // step and in-tree callers build P symmetric by construction, so the
  // release build skips it.
  OTEM_REQUIRE(problem.p.is_symmetric(1e-9), "QP: P must be symmetric");
#endif

  QpResult result;

  double rho = warm.rho > 0.0 ? std::clamp(warm.rho, 1e-6, 1e6)
                              : options.rho;

  // KKT matrix K = P + sigma I + rho A^T A, assembled incrementally
  // against whatever the previous solve left behind. Receding-horizon
  // callers re-solve with identical A (and often near-identical P)
  // every step, so the Gram product and the Cholesky are the two big
  // costs worth skipping.
  const bool same_a = factored_ && same_values(a_cached_, problem.a);
  if (!same_a) {
    problem.a.gram_into(ata_);
    a_cached_ = problem.a;
  }
  const bool kkt_compatible =
      same_a && factored_ && sigma_cached_ == options.sigma &&
      p_cached_.rows() == n && p_cached_.cols() == n;
  if (kkt_compatible && rho == rho_cached_ &&
      max_abs_diff(p_cached_, problem.p) <= options.kkt_refactor_tol) {
    // Full reuse: the cached factorisation is (within tolerance) this
    // problem's KKT matrix. Termination below tests residuals of the
    // true problem data, so a tolerated P drift only affects
    // convergence speed, never the answer. Note p_cached_ keeps the P
    // baked into the factor, so drift cannot accumulate across solves.
  } else if (kkt_compatible) {
    // In-place update: K += (P - P_old) + (rho - rho_old) A^T A.
    kkt_.add_scaled(p_cached_, -1.0);
    kkt_.add_scaled(problem.p, 1.0);
    if (rho != rho_cached_) kkt_.add_scaled(ata_, rho - rho_cached_);
    p_cached_ = problem.p;
    rho_cached_ = rho;
    factored_ = false;
    {
      const obs::TraceSpan factor_span("qp.factorize");
      chol_.factor(kkt_);
    }
    factored_ = true;
    ++result.kkt_refactorizations;
  } else {
    kkt_ = problem.p;
    for (size_t i = 0; i < n; ++i) kkt_(i, i) += options.sigma;
    kkt_.add_scaled(ata_, rho);
    p_cached_ = problem.p;
    sigma_cached_ = options.sigma;
    rho_cached_ = rho;
    factored_ = false;
    {
      const obs::TraceSpan factor_span("qp.factorize");
      chol_.factor(kkt_);
    }
    factored_ = true;
    ++result.kkt_refactorizations;
  }

  // Iterate seeds: a usable warm start replays the previous solution
  // (z as the projection of A x keeps the z-iterate feasible), anything
  // else cold-starts at zero.
  result.warm_started = warm.x.size() == n && warm.y.size() == m;
  if (result.warm_started) {
    x_ = warm.x;
    y_ = warm.y;
    problem.a.multiply_vector_into(x_, z_);
    for (size_t i = 0; i < m; ++i)
      z_[i] = std::clamp(z_[i], problem.l[i], problem.u[i]);
  } else {
    x_.assign(n, 0.0);
    z_.assign(m, 0.0);
    y_.assign(m, 0.0);
  }
  for (size_t it = 0; it < options.max_iterations; ++it) {
    // x-update: solve K x = sigma x - q + A^T (rho z - y), in place in
    // rhs_ (which therefore holds x_new after the solve).
    rhs_.resize(n);
    for (size_t i = 0; i < n; ++i)
      rhs_[i] = options.sigma * x_[i] - problem.q[i];
    t_.resize(m);
    for (size_t i = 0; i < m; ++i) t_[i] = rho * z_[i] - y_[i];
    problem.a.transpose_multiply_add(t_, 1.0, rhs_);
    chol_.solve_in_place(rhs_);
    const Vector& x_new = rhs_;

    // Over-relaxed z-update with projection onto [l, u].
    problem.a.multiply_vector_into(x_new, ax_);
    z_new_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      const double axr =
          options.alpha * ax_[i] + (1.0 - options.alpha) * z_[i];
      z_new_[i] = std::clamp(axr + y_[i] / rho, problem.l[i],
                             problem.u[i]);
      y_[i] += rho * (axr - z_new_[i]);
    }

    // Residuals (unscaled OSQP-style).
    double r_prim = 0.0;
    for (size_t i = 0; i < m; ++i)
      r_prim = std::max(r_prim, std::abs(ax_[i] - z_new_[i]));

    // Promote the new iterates; rhs_/z_new_ are fully rewritten next
    // iteration, so swapping moves no data.
    std::swap(x_, rhs_);
    std::swap(z_, z_new_);
    result.iterations = it + 1;
    result.primal_residual = r_prim;

    const double eps_p =
        options.eps_abs +
        options.eps_rel * std::max(norm_inf(ax_), norm_inf(z_));

    // The dual residual || P x + q + A^T y ||_inf costs two extra
    // matvecs, but nothing in the update uses it: it only gates
    // termination (which also requires the primal test to pass), feeds
    // the adaptive-rho rebalance, and is reported on the final
    // iteration. Computing it lazily on exactly those iterations leaves
    // the iterate trajectory, termination decisions and reported
    // residuals bit-identical while skipping ~1/3 of the per-iteration
    // work whenever the primal residual is still large.
    const bool rho_due = options.rho_update_interval != 0 &&
                         (it + 1) % options.rho_update_interval == 0;
    const bool need_dual =
        r_prim <= eps_p || rho_due || it + 1 == options.max_iterations;
    double r_dual = result.dual_residual;
    double eps_d = 0.0;
    if (need_dual) {
      problem.p.multiply_vector_into(x_, px_);
      aty_.assign(n, 0.0);
      problem.a.transpose_multiply_add(y_, 1.0, aty_);
      dres_.resize(n);
      for (size_t i = 0; i < n; ++i)
        dres_[i] = px_[i] + problem.q[i] + aty_[i];
      r_dual = norm_inf(dres_);
      const double dual_scale = std::max(
          {norm_inf(px_), norm_inf(problem.q), norm_inf(aty_)});
      eps_d = options.eps_abs + options.eps_rel * dual_scale;
      result.dual_residual = r_dual;
    }

    if (r_prim <= eps_p && r_dual <= eps_d) {
      result.converged = true;
      break;
    }

    // Adaptive rho: rebalance when the (relative) primal and dual
    // residuals diverge by more than one order of magnitude.
    if (rho_due) {
      const double rel_p = r_prim / std::max(eps_p, 1e-30);
      const double rel_d = r_dual / std::max(eps_d, 1e-30);
      const double ratio = std::sqrt(rel_p / std::max(rel_d, 1e-30));
      if (ratio > 3.16 || ratio < 0.316) {
        const double rho_new =
            std::clamp(rho * ratio, 1e-6, 1e6);
        if (rho_new != rho) {
          // K(rho') = K(rho) + (rho' - rho) A^T A: update the cached
          // KKT matrix in place and refactorise into existing storage.
          kkt_.add_scaled(ata_, rho_new - rho);
          rho = rho_new;
          rho_cached_ = rho;
          factored_ = false;
          {
            const obs::TraceSpan factor_span("qp.factorize");
            chol_.factor(kkt_);
          }
          factored_ = true;
          ++result.rho_updates;
          ++result.kkt_refactorizations;
        }
      }
    }
  }

  result.x = x_;
  result.y = y_;
  result.rho_final = rho;
  return result;
}

QpResult solve_qp(const QpProblem& problem, const QpOptions& options) {
  QpSolver solver;
  return solver.solve(problem, options);
}

}  // namespace otem::optim
