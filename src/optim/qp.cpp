#include "optim/qp.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "optim/decomposition.h"
#include "optim/vector_ops.h"

namespace otem::optim {

QpResult solve_qp(const QpProblem& problem, const QpOptions& options) {
  const size_t n = problem.q.size();
  const size_t m = problem.l.size();
  OTEM_REQUIRE(problem.p.rows() == n && problem.p.cols() == n,
               "QP: P must be n x n");
  OTEM_REQUIRE(problem.a.rows() == m && problem.a.cols() == n,
               "QP: A must be m x n");
  OTEM_REQUIRE(problem.u.size() == m, "QP: l/u size mismatch");
  OTEM_REQUIRE(problem.p.is_symmetric(1e-9), "QP: P must be symmetric");
  for (size_t i = 0; i < m; ++i)
    OTEM_REQUIRE(problem.l[i] <= problem.u[i], "QP: l > u in some row");

  // KKT matrix K = P + sigma I + rho A^T A, re-factored when rho adapts.
  const Matrix ata = problem.a.transposed() * problem.a;
  double rho = options.rho;
  auto factor = [&](double rho_now) {
    Matrix k = problem.p;
    for (size_t i = 0; i < n; ++i) k(i, i) += options.sigma;
    for (size_t r = 0; r < n; ++r)
      for (size_t c = 0; c < n; ++c) k(r, c) += rho_now * ata(r, c);
    return Cholesky(k);
  };
  Cholesky chol = factor(rho);

  Vector x(n, 0.0);
  Vector z(m, 0.0);
  Vector y(m, 0.0);

  QpResult result;
  for (size_t it = 0; it < options.max_iterations; ++it) {
    // x-update: solve K x = sigma x - q + A^T (rho z - y)
    Vector rhs(n, 0.0);
    for (size_t i = 0; i < n; ++i) rhs[i] = options.sigma * x[i] - problem.q[i];
    Vector t(m);
    for (size_t i = 0; i < m; ++i) t[i] = rho * z[i] - y[i];
    problem.a.transpose_multiply_add(t, 1.0, rhs);
    const Vector x_new = chol.solve(rhs);

    // Over-relaxed z-update with projection onto [l, u].
    const Vector ax = problem.a * x_new;
    Vector z_new(m);
    for (size_t i = 0; i < m; ++i) {
      const double axr = options.alpha * ax[i] + (1.0 - options.alpha) * z[i];
      z_new[i] = std::clamp(axr + y[i] / rho, problem.l[i],
                            problem.u[i]);
      y[i] += rho * (axr - z_new[i]);
    }

    // Residuals (unscaled OSQP-style).
    double r_prim = 0.0;
    for (size_t i = 0; i < m; ++i)
      r_prim = std::max(r_prim, std::abs(ax[i] - z_new[i]));

    // dual residual: || P x + q + A^T y ||_inf, with the OSQP-style
    // relative scale max(||P x||, ||q||, ||A^T y||).
    const Vector px = problem.p * x_new;
    Vector aty(n, 0.0);
    problem.a.transpose_multiply_add(y, 1.0, aty);
    Vector dres(n);
    for (size_t i = 0; i < n; ++i)
      dres[i] = px[i] + problem.q[i] + aty[i];
    const double r_dual = norm_inf(dres);
    const double dual_scale = std::max(
        {norm_inf(px), norm_inf(problem.q), norm_inf(aty)});

    x = x_new;
    z = z_new;
    result.iterations = it + 1;
    result.primal_residual = r_prim;
    result.dual_residual = r_dual;

    const double eps_p =
        options.eps_abs +
        options.eps_rel * std::max(norm_inf(ax), norm_inf(z));
    const double eps_d = options.eps_abs + options.eps_rel * dual_scale;
    if (r_prim <= eps_p && r_dual <= eps_d) {
      result.converged = true;
      break;
    }

    // Adaptive rho: rebalance when the (relative) primal and dual
    // residuals diverge by more than one order of magnitude.
    if (options.rho_update_interval != 0 &&
        (it + 1) % options.rho_update_interval == 0) {
      const double rel_p = r_prim / std::max(eps_p, 1e-30);
      const double rel_d = r_dual / std::max(eps_d, 1e-30);
      const double ratio = std::sqrt(rel_p / std::max(rel_d, 1e-30));
      if (ratio > 3.16 || ratio < 0.316) {
        const double rho_new =
            std::clamp(rho * ratio, 1e-6, 1e6);
        if (rho_new != rho) {
          rho = rho_new;
          chol = factor(rho);
        }
      }
    }
  }

  result.x = std::move(x);
  result.y = std::move(y);
  return result;
}

}  // namespace otem::optim
