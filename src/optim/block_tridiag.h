// block_tridiag.h — block-tridiagonal Cholesky in O(stages) block ops.
//
// Factorises a symmetric positive-definite block-tridiagonal matrix
//
//     K = [ D_0  S_1^T                ]
//         [ S_1  D_1   S_2^T          ]
//         [      S_2   D_2    ...     ]
//         [            ...    D_{H-1} ]
//
// as K = L L^T with L block lower-bidiagonal:
//
//     Lam_0 = chol(D_0)
//     for k = 1..H-1:
//         Lt_k  = S_k Lam_{k-1}^{-T}          (trsm)
//         Lam_k = chol(D_k - Lt_k Lt_k^T)     (syrk + chol)
//
// Everything is fixed-size SmallMat<N, N> kernel calls, so the whole
// factorisation is O(H) block operations — this is what replaces the
// dense O((H n)^3) KKT Cholesky on the LTV-MPC hot path. Solves run two
// block-bidiagonal sweeps (forward then backward), also O(H).
//
// The class counts the fixed-size block-kernel applications it performs
// (`block_ops()`); the counter is exact and architecture-independent,
// which is what bench/check_banded.py gates on in CI.
#pragma once

#include <vector>

#include "common/error.h"
#include "optim/matrix.h"
#include "optim/small_mat.h"

namespace otem::optim {

template <size_t N>
class BlockTridiagCholesky {
 public:
  using Block = SmallMat<N, N>;

  /// Factorise in place: `diag` (H blocks) and `sub` (H-1 blocks, sub[k]
  /// couples stage k+1 rows with stage k columns) are overwritten with
  /// the factor (Lam_k lower triangles in diag, Lt_{k+1} in sub). The
  /// caller keeps ownership of the storage; this class records views.
  /// Throws otem::SimError when a stage block is not SPD.
  void factor(std::vector<Block>& diag, std::vector<Block>& sub) {
    OTEM_REQUIRE(!diag.empty(), "BlockTridiagCholesky: no stages");
    OTEM_REQUIRE(sub.size() + 1 == diag.size(),
                 "BlockTridiagCholesky: need one sub-block per interior stage");
    diag_ = &diag;
    sub_ = &sub;
    cholesky_factor(diag[0]);
    block_ops_ += 1;
    for (size_t k = 1; k < diag.size(); ++k) {
      trsm_right_lower_transpose(diag[k - 1], sub[k - 1]);
      syrk_sub(diag[k], sub[k - 1]);
      cholesky_factor(diag[k]);
      block_ops_ += 3;
    }
    factored_ = true;
  }

  bool factored() const { return factored_; }
  size_t stages() const { return factored_ ? diag_->size() : 0; }

  /// Solve K x = b overwriting b with x; b.size() must be stages * N.
  /// Allocation-free: two block-bidiagonal substitution sweeps.
  void solve_in_place(Vector& b) const {
    OTEM_REQUIRE(factored_, "BlockTridiagCholesky: factor() first");
    const std::vector<Block>& diag = *diag_;
    const std::vector<Block>& sub = *sub_;
    const size_t stages = diag.size();
    OTEM_REQUIRE(b.size() == stages * N,
                 "BlockTridiagCholesky: rhs size mismatch");
    // Forward sweep: L y = b.
    forward_subst(diag[0], b.data());
    for (size_t k = 1; k < stages; ++k) {
      gemv_sub(sub[k - 1], b.data() + (k - 1) * N, b.data() + k * N);
      forward_subst(diag[k], b.data() + k * N);
    }
    // Backward sweep: L^T x = y.
    backward_subst(diag[stages - 1], b.data() + (stages - 1) * N);
    for (size_t k = stages - 1; k-- > 0;) {
      gemv_transpose_sub(sub[k], b.data() + (k + 1) * N, b.data() + k * N);
      backward_subst(diag[k], b.data() + k * N);
    }
    block_ops_ += 4 * stages - 2;
  }

  /// Fixed-size block-kernel applications since the last reset — the
  /// architecture-independent cost counter the CI scaling gate reads.
  size_t block_ops() const { return block_ops_; }
  void reset_block_ops() { block_ops_ = 0; }

 private:
  std::vector<Block>* diag_ = nullptr;  ///< borrowed factor storage
  std::vector<Block>* sub_ = nullptr;
  bool factored_ = false;
  mutable size_t block_ops_ = 0;
};

}  // namespace otem::optim
