#include "optim/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace otem::optim {

double dot(const Vector& a, const Vector& b) {
  OTEM_REQUIRE(a.size() == b.size(), "dot size mismatch");
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vector& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  OTEM_REQUIRE(x.size() == y.size(), "axpy size mismatch");
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector subtract(const Vector& a, const Vector& b) {
  OTEM_REQUIRE(a.size() == b.size(), "subtract size mismatch");
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector add(const Vector& a, const Vector& b) {
  OTEM_REQUIRE(a.size() == b.size(), "add size mismatch");
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector scaled(const Vector& a, double alpha) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = alpha * a[i];
  return out;
}

void project_box(const Vector& lo, const Vector& hi, Vector& x) {
  OTEM_REQUIRE(lo.size() == x.size() && hi.size() == x.size(),
               "project_box size mismatch");
  for (size_t i = 0; i < x.size(); ++i) x[i] = std::clamp(x[i], lo[i], hi[i]);
}

double box_violation(const Vector& lo, const Vector& hi, const Vector& x) {
  double m = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    m = std::max(m, lo[i] - x[i]);
    m = std::max(m, x[i] - hi[i]);
  }
  return std::max(m, 0.0);
}

double projected_gradient_norm(const Vector& lo, const Vector& hi,
                               const Vector& x, const Vector& g) {
  double m = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double step = std::clamp(x[i] - g[i], lo[i], hi[i]) - x[i];
    m = std::max(m, std::abs(step));
  }
  return m;
}

}  // namespace otem::optim
