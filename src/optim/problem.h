// problem.h — optimisation problem interfaces.
//
// Two levels:
//  * Objective — smooth box-constrained minimisation (inner solvers: Adam,
//    L-BFGS).
//  * ConstrainedObjective — adds general inequality constraints c(x) <= 0,
//    solved by the augmented-Lagrangian outer loop. The two-pass
//    evaluate()/gradient() split matches adjoint (reverse-mode)
//    differentiation through a simulation rollout: evaluate() runs the
//    forward pass and records intermediates, gradient() runs one backward
//    pass accumulating the objective gradient plus a weighted sum of
//    constraint gradients in a single sweep.
#pragma once

#include <cstddef>

#include "optim/matrix.h"

namespace otem::optim {

/// Box bounds; components may be +/-infinity.
struct Box {
  Vector lo;
  Vector hi;
};

/// Smooth objective with gradient, minimised subject to box bounds.
class Objective {
 public:
  virtual ~Objective() = default;

  virtual size_t dim() const = 0;

  /// Returns f(x) and fills `grad` (resized by the caller to dim()).
  virtual double value_and_gradient(const Vector& x, Vector& grad) = 0;
};

/// Objective with inequality constraints c_i(x) <= 0 in addition to the
/// box. Implementations may cache forward-pass state between evaluate()
/// and the gradient() call that follows at the same x.
class ConstrainedObjective {
 public:
  virtual ~ConstrainedObjective() = default;

  virtual size_t dim() const = 0;
  virtual Box bounds() const = 0;
  virtual size_t num_constraints() const = 0;

  /// Forward pass: returns f(x), fills c_out (size num_constraints()).
  virtual double evaluate(const Vector& x, Vector& c_out) = 0;

  /// Backward pass at the x of the immediately preceding evaluate():
  /// grad_out = grad f(x) + sum_i w[i] * grad c_i(x).
  virtual void gradient(const Vector& x, const Vector& w,
                        Vector& grad_out) = 0;
};

/// Result common to the iterative solvers.
struct SolveResult {
  Vector x;              ///< best iterate found
  double value = 0.0;    ///< objective at x (AL: original objective)
  size_t iterations = 0; ///< inner iterations actually performed
  bool converged = false;
  double constraint_violation = 0.0;  ///< max_i c_i(x), AL solver only
};

}  // namespace otem::optim
