#include "optim/decomposition.h"

#include <cmath>

#include "common/error.h"

namespace otem::optim {

void Cholesky::factor(const Matrix& a) {
  OTEM_REQUIRE(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const size_t n = a.rows();
  l_.reshape(n, n);  // reuses the allocation on refactorisation
  for (size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    OTEM_REQUIRE(d > 1e-14 * std::max(1.0, std::abs(a(j, j))),
                 "matrix is not positive definite");
    l_(j, j) = std::sqrt(d);
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / l_(j, j);
    }
  }
}

Vector Cholesky::solve(const Vector& b) const {
  Vector x = b;
  solve_in_place(x);
  return x;
}

void Cholesky::solve_in_place(Vector& b) const {
  const size_t n = l_.rows();
  OTEM_REQUIRE(b.size() == n, "Cholesky solve size mismatch");
  // Forward: L y = b, overwriting b with y (b[i] is read before it is
  // written and only already-solved entries are read back).
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l_(i, k) * b[k];
    b[i] = s / l_(i, i);
  }
  // Backward: L^T x = y, again in place (entries above ii are final).
  for (size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * b[k];
    b[ii] = s / l_(ii, ii);
  }
}

double Cholesky::log_det() const {
  double s = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Lu::Lu(const Matrix& a) : lu_(a), perm_(a.rows()) {
  OTEM_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  const size_t n = a.rows();
  for (size_t i = 0; i < n; ++i) perm_[i] = i;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::abs(lu_(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    OTEM_REQUIRE(best > 1e-300, "singular matrix in LU factorisation");
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(lu_(pivot, c), lu_(col, c));
      std::swap(perm_[pivot], perm_[col]);
      sign_ = -sign_;
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double f = lu_(r, col) / lu_(col, col);
      lu_(r, col) = f;
      for (size_t c = col + 1; c < n; ++c) lu_(r, c) -= f * lu_(col, c);
    }
  }
}

Vector Lu::solve(const Vector& b) const {
  const size_t n = lu_.rows();
  OTEM_REQUIRE(b.size() == n, "LU solve size mismatch");
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (size_t k = 0; k < i; ++k) s -= lu_(i, k) * y[k];
    y[i] = s;
  }
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= lu_(ii, k) * x[k];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

double Lu::det() const {
  double d = static_cast<double>(sign_);
  for (size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

Vector solve_linear(const Matrix& a, const Vector& b) {
  return Lu(a).solve(b);
}

}  // namespace otem::optim
