#include "optim/augmented_lagrangian.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "optim/vector_ops.h"

namespace otem::optim {

namespace {

// Inner objective: L(x; lam, mu) with gradient assembled through the
// ConstrainedObjective's two-pass (forward/backward) interface.
class AlInner final : public Objective {
 public:
  AlInner(ConstrainedObjective& problem, const Vector& lam, double mu)
      : problem_(problem), lam_(lam), mu_(mu), c_(problem.num_constraints()),
        w_(problem.num_constraints()) {}

  size_t dim() const override { return problem_.dim(); }

  double value_and_gradient(const Vector& x, Vector& grad) override {
    const double f = problem_.evaluate(x, c_);
    double penalty = 0.0;
    for (size_t i = 0; i < c_.size(); ++i) {
      const double t = std::max(0.0, lam_[i] + mu_ * c_[i]);
      w_[i] = t;  // dL/dc_i
      penalty += (t * t - lam_[i] * lam_[i]);
    }
    grad.assign(dim(), 0.0);
    problem_.gradient(x, w_, grad);
    return f + penalty / (2.0 * mu_);
  }

  /// Constraint values from the most recent evaluate().
  const Vector& last_constraints() const { return c_; }

 private:
  ConstrainedObjective& problem_;
  const Vector& lam_;
  double mu_;
  Vector c_;
  Vector w_;
};

double max_violation(const Vector& c) {
  double m = 0.0;
  for (double v : c) m = std::max(m, v);
  return m;
}

}  // namespace

SolveResult minimize_augmented_lagrangian(
    ConstrainedObjective& problem, const Vector& x0,
    const AugmentedLagrangianOptions& options) {
  const size_t n = problem.dim();
  const size_t m = problem.num_constraints();
  OTEM_REQUIRE(x0.size() == n, "AL: x0 dimension mismatch");

  const Box box = problem.bounds();
  OTEM_REQUIRE(box.lo.size() == n && box.hi.size() == n,
               "AL: bounds dimension mismatch");

  Vector lam(m, 0.0);
  if (!options.initial_multipliers.empty()) {
    OTEM_REQUIRE(options.initial_multipliers.size() == m,
                 "AL: warm-start multiplier size mismatch");
    lam = options.initial_multipliers;
  }
  double mu = options.initial_penalty;

  Vector x = x0;
  project_box(box.lo, box.hi, x);

  SolveResult best;
  best.x = x;
  {
    Vector c(m);
    best.value = problem.evaluate(x, c);
    best.constraint_violation = max_violation(c);
  }

  double prev_violation = std::numeric_limits<double>::infinity();
  size_t total_iterations = 0;

  for (size_t outer = 0; outer < options.max_outer_iterations; ++outer) {
    AlInner inner(problem, lam, mu);
    SolveResult r = minimize_adam(inner, box, x, options.adam);
    if (options.polish_with_lbfgs) {
      const SolveResult p = minimize_lbfgs(inner, box, r.x, options.lbfgs);
      if (p.value <= r.value) {
        r.x = p.x;
        r.iterations += p.iterations;
      }
    }
    total_iterations += r.iterations;
    x = r.x;

    // Fresh constraint values and true objective at the inner solution.
    Vector c(m);
    const double f = problem.evaluate(x, c);
    const double violation = max_violation(c);

    // Keep the best point by (feasibility first, then objective).
    const bool improves =
        (violation <= options.constraint_tolerance &&
         (best.constraint_violation > options.constraint_tolerance ||
          f < best.value)) ||
        (best.constraint_violation > options.constraint_tolerance &&
         violation < best.constraint_violation);
    if (improves) {
      best.x = x;
      best.value = f;
      best.constraint_violation = violation;
    }

    if (violation <= options.constraint_tolerance) {
      // Multiplier refinement still helps the objective, but a feasible
      // point plus a converged inner solve is our acceptance criterion.
      best.converged = true;
      if (outer + 1 >= 2) break;  // one refinement round is enough
    }

    // First-order multiplier update.
    for (size_t i = 0; i < m; ++i)
      lam[i] = std::max(0.0, lam[i] + mu * c[i]);

    // Penalty schedule.
    if (violation > options.required_decrease * prev_violation)
      mu = std::min(mu * options.penalty_growth, options.max_penalty);
    prev_violation = violation;
  }

  best.iterations = total_iterations;
  return best;
}

}  // namespace otem::optim
