// small_mat.h — fixed-size stack matrix kernels for the banded KKT path.
//
// The LTV-MPC KKT system factorises into per-stage blocks built from the
// 4-state / 2-control pieces of the step Jacobians (4x4 dynamics, 4x2
// input maps, 2x2 control Grams, 6x6 stage blocks). These kernels keep
// that block math in registers: every dimension is a compile-time
// constant, storage is a flat stack array, the loops fully unroll and
// vectorise, and nothing touches the heap. Outputs never alias inputs —
// the call sites pass distinct objects by construction.
//
// This is deliberately NOT a general matrix library (optim/matrix.h is
// the runtime-sized one); it is the minimal kernel set the
// block-tridiagonal Cholesky and the structured LTV ADMM solver need.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/error.h"

namespace otem::optim {

/// Dense ROWS x COLS matrix with compile-time shape and stack storage.
template <size_t ROWS, size_t COLS>
struct SmallMat {
  double m[ROWS][COLS];

  static constexpr size_t kRows = ROWS;
  static constexpr size_t kCols = COLS;

  void set_zero() {
    for (size_t r = 0; r < ROWS; ++r)
      for (size_t c = 0; c < COLS; ++c) m[r][c] = 0.0;
  }
};

/// out += a * b.
template <size_t R, size_t K, size_t C>
inline void multiply_add(const SmallMat<R, K>& a, const SmallMat<K, C>& b,
                         SmallMat<R, C>& out) {
  for (size_t r = 0; r < R; ++r)
    for (size_t k = 0; k < K; ++k) {
      const double av = a.m[r][k];
      for (size_t c = 0; c < C; ++c) out.m[r][c] += av * b.m[k][c];
    }
}

/// out += alpha * a^T * b (a is K x R, b is K x C, out is R x C).
template <size_t K, size_t R, size_t C>
inline void transpose_multiply_add(const SmallMat<K, R>& a,
                                   const SmallMat<K, C>& b, double alpha,
                                   SmallMat<R, C>& out) {
  for (size_t k = 0; k < K; ++k)
    for (size_t r = 0; r < R; ++r) {
      const double av = alpha * a.m[k][r];
      for (size_t c = 0; c < C; ++c) out.m[r][c] += av * b.m[k][c];
    }
}

/// (*inout) += alpha * other, elementwise.
template <size_t R, size_t C>
inline void add_scaled(SmallMat<R, C>& inout, const SmallMat<R, C>& other,
                       double alpha) {
  for (size_t r = 0; r < R; ++r)
    for (size_t c = 0; c < C; ++c) inout.m[r][c] += alpha * other.m[r][c];
}

/// out += alpha * u v^T (rank-1 update from raw arrays).
template <size_t R, size_t C>
inline void outer_add(SmallMat<R, C>& out, const double* u, const double* v,
                      double alpha) {
  for (size_t r = 0; r < R; ++r) {
    const double ur = alpha * u[r];
    for (size_t c = 0; c < C; ++c) out.m[r][c] += ur * v[c];
  }
}

/// y += A x.
template <size_t R, size_t C>
inline void gemv_add(const SmallMat<R, C>& a, const double* x, double* y) {
  for (size_t r = 0; r < R; ++r) {
    double s = 0.0;
    for (size_t c = 0; c < C; ++c) s += a.m[r][c] * x[c];
    y[r] += s;
  }
}

/// y -= A x.
template <size_t R, size_t C>
inline void gemv_sub(const SmallMat<R, C>& a, const double* x, double* y) {
  for (size_t r = 0; r < R; ++r) {
    double s = 0.0;
    for (size_t c = 0; c < C; ++c) s += a.m[r][c] * x[c];
    y[r] -= s;
  }
}

/// y -= A^T x (A is R x C, x has R entries, y has C entries).
template <size_t R, size_t C>
inline void gemv_transpose_sub(const SmallMat<R, C>& a, const double* x,
                               double* y) {
  for (size_t r = 0; r < R; ++r) {
    const double xr = x[r];
    for (size_t c = 0; c < C; ++c) y[c] -= a.m[r][c] * xr;
  }
}

/// In-place Cholesky a = L L^T of a symmetric positive-definite block;
/// on return the lower triangle holds L (the strict upper triangle is
/// left untouched and must be ignored). Throws on a non-SPD pivot, like
/// the dense Cholesky in optim/decomposition.h.
template <size_t N>
inline void cholesky_factor(SmallMat<N, N>& a) {
  for (size_t j = 0; j < N; ++j) {
    double d = a.m[j][j];
    for (size_t k = 0; k < j; ++k) d -= a.m[j][k] * a.m[j][k];
    OTEM_REQUIRE(d > 1e-300, "SmallMat Cholesky: block not SPD");
    const double ljj = std::sqrt(d);
    a.m[j][j] = ljj;
    const double inv = 1.0 / ljj;
    for (size_t i = j + 1; i < N; ++i) {
      double s = a.m[i][j];
      for (size_t k = 0; k < j; ++k) s -= a.m[i][k] * a.m[j][k];
      a.m[i][j] = s * inv;
    }
  }
}

/// Solve L x = b in place (L = lower triangle of `l`).
template <size_t N>
inline void forward_subst(const SmallMat<N, N>& l, double* b) {
  for (size_t i = 0; i < N; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l.m[i][k] * b[k];
    b[i] = s / l.m[i][i];
  }
}

/// Solve L^T x = b in place (L = lower triangle of `l`).
template <size_t N>
inline void backward_subst(const SmallMat<N, N>& l, double* b) {
  for (size_t ii = N; ii-- > 0;) {
    double s = b[ii];
    for (size_t k = ii + 1; k < N; ++k) s -= l.m[k][ii] * b[k];
    b[ii] = s / l.m[ii][ii];
  }
}

/// Solve X L^T = B in place on `b` (row-wise forward substitution):
/// afterwards b holds X. This is the off-diagonal step of the block
/// Cholesky, L~ = L_k Lambda^{-T}.
template <size_t R, size_t N>
inline void trsm_right_lower_transpose(const SmallMat<N, N>& l,
                                       SmallMat<R, N>& b) {
  for (size_t r = 0; r < R; ++r) forward_subst(l, b.m[r]);
}

/// out -= x x^T (symmetric rank-K downdate, full block written).
template <size_t R, size_t K>
inline void syrk_sub(SmallMat<R, R>& out, const SmallMat<R, K>& x) {
  for (size_t i = 0; i < R; ++i)
    for (size_t j = 0; j < R; ++j) {
      double s = 0.0;
      for (size_t k = 0; k < K; ++k) s += x.m[i][k] * x.m[j][k];
      out.m[i][j] -= s;
    }
}

}  // namespace otem::optim
