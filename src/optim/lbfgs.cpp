#include "optim/lbfgs.h"

#include <cmath>
#include <deque>

#include "common/error.h"
#include "optim/vector_ops.h"

namespace otem::optim {

namespace {
struct Pair {
  Vector s;
  Vector y;
  double rho;
};

// Two-loop recursion: d = -H * g with implicit H from the history.
Vector lbfgs_direction(const std::deque<Pair>& hist, const Vector& g) {
  Vector q = g;
  std::vector<double> alpha(hist.size());
  for (size_t i = hist.size(); i-- > 0;) {
    alpha[i] = hist[i].rho * dot(hist[i].s, q);
    axpy(-alpha[i], hist[i].y, q);
  }
  double gamma = 1.0;
  if (!hist.empty()) {
    const auto& last = hist.back();
    const double yy = dot(last.y, last.y);
    if (yy > 0.0) gamma = dot(last.s, last.y) / yy;
  }
  for (double& v : q) v *= gamma;
  for (size_t i = 0; i < hist.size(); ++i) {
    const double beta = hist[i].rho * dot(hist[i].y, q);
    axpy(alpha[i] - beta, hist[i].s, q);
  }
  for (double& v : q) v = -v;
  return q;
}
}  // namespace

SolveResult minimize_lbfgs(Objective& objective, const Box& box,
                           const Vector& x0, const LbfgsOptions& options) {
  const size_t n = objective.dim();
  OTEM_REQUIRE(x0.size() == n, "L-BFGS: x0 dimension mismatch");
  OTEM_REQUIRE(box.lo.size() == n && box.hi.size() == n,
               "L-BFGS: box dimension mismatch");

  Vector x = x0;
  project_box(box.lo, box.hi, x);
  Vector grad(n, 0.0);
  double f = objective.value_and_gradient(x, grad);

  std::deque<Pair> hist;
  SolveResult result;
  result.x = x;
  result.value = f;

  for (size_t it = 0; it < options.max_iterations; ++it) {
    const double pg = projected_gradient_norm(box.lo, box.hi, x, grad);
    if (pg < options.tolerance) {
      result.converged = true;
      break;
    }

    Vector d = lbfgs_direction(hist, grad);
    if (dot(d, grad) > -1e-14 * norm2(d) * norm2(grad)) {
      // Not a descent direction — restart with steepest descent.
      hist.clear();
      d = scaled(grad, -1.0);
    }

    // Backtracking Armijo along the projected path.
    double step = 1.0;
    Vector x_new(n);
    Vector grad_new(n, 0.0);
    double f_new = f;
    bool accepted = false;
    for (size_t ls = 0; ls < options.max_line_search; ++ls) {
      x_new = x;
      axpy(step, d, x_new);
      project_box(box.lo, box.hi, x_new);
      const Vector dx = subtract(x_new, x);
      const double decrease = dot(grad, dx);
      f_new = objective.value_and_gradient(x_new, grad_new);
      if (f_new <= f + options.armijo_c1 * decrease ||
          (decrease >= 0.0 && f_new < f)) {
        accepted = true;
        break;
      }
      step *= options.backtrack_factor;
    }
    result.iterations = it + 1;
    if (!accepted) break;  // line search failed: stationary for our purposes

    Vector s = subtract(x_new, x);
    Vector y = subtract(grad_new, grad);
    const double sy = dot(s, y);
    if (sy > 1e-12 * norm2(s) * norm2(y)) {
      hist.push_back({std::move(s), std::move(y), 1.0 / sy});
      if (hist.size() > options.history) hist.pop_front();
    }

    x = std::move(x_new);
    grad = grad_new;
    f = f_new;
    if (f < result.value) {
      result.value = f;
      result.x = x;
    }
  }

  return result;
}

}  // namespace otem::optim
