// augmented_lagrangian.h — outer loop for inequality-constrained NLPs.
//
// Solves  min f(x)  s.t.  c(x) <= 0,  lo <= x <= hi
// by repeatedly minimising the augmented Lagrangian
//   L(x; lam, mu) = f(x) + 1/(2 mu) * sum_i [ max(0, lam_i + mu c_i(x))^2
//                                             - lam_i^2 ]
// over the box with the inner solver (Adam, optional L-BFGS polish), then
// updating lam_i <- max(0, lam_i + mu c_i(x)) and growing mu while the
// constraint violation is not shrinking fast enough. This is exactly the
// optimiser shape MATLAB's fmincon-class solvers provide to the paper's
// MPC (Eq. 18-19); we verify stationarity and feasibility in tests.
#pragma once

#include "optim/adam.h"
#include "optim/lbfgs.h"
#include "optim/problem.h"

namespace otem::optim {

struct AugmentedLagrangianOptions {
  size_t max_outer_iterations = 8;
  double initial_penalty = 10.0;       ///< mu_0
  double penalty_growth = 5.0;         ///< mu <- growth * mu when stalled
  double max_penalty = 1e7;
  double constraint_tolerance = 1e-4;  ///< max_i c_i(x) acceptance level
  /// Violation must shrink by this factor per outer iteration or the
  /// penalty is increased.
  double required_decrease = 0.25;
  AdamOptions adam;
  bool polish_with_lbfgs = true;
  LbfgsOptions lbfgs;
  /// Optional warm-start multipliers (size num_constraints or empty).
  Vector initial_multipliers;
};

/// Minimise the constrained problem starting from x0. Returns the best
/// feasible-ish iterate; `constraint_violation` reports max_i c_i(x).
SolveResult minimize_augmented_lagrangian(
    ConstrainedObjective& problem, const Vector& x0,
    const AugmentedLagrangianOptions& options = {});

}  // namespace otem::optim
