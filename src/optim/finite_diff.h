// finite_diff.h — central-difference gradient checking.
//
// Every hand-written adjoint in the MPC layer is validated against these
// in the test suite; they are not used on any hot path.
#pragma once

#include <functional>

#include "optim/matrix.h"

namespace otem::optim {

/// Central-difference gradient of a scalar function at x.
Vector finite_difference_gradient(
    const std::function<double(const Vector&)>& f, const Vector& x,
    double step = 1e-6);

/// Max relative error between `analytic` and the finite-difference
/// gradient of `f` at x (relative to max(1, |g_fd|)).
double gradient_max_rel_error(const std::function<double(const Vector&)>& f,
                              const Vector& x, const Vector& analytic,
                              double step = 1e-6);

}  // namespace otem::optim
