// qp.h — dense convex quadratic programming via ADMM (OSQP-style).
//
// Solves
//     min  1/2 x^T P x + q^T x
//     s.t. l <= A x <= u
// with P symmetric positive semidefinite. Used by the linear-time-varying
// MPC ablation (`bench/ablation_solver`) and as a reference solver in
// tests; the production OTEM controller uses the shooting NLP path.
//
// Algorithm: standard two-block ADMM with over-relaxation. Each iteration
// solves the cached KKT-regularised system
//     (P + sigma I + rho A^T A) x = sigma x_prev - q + A^T (rho z - y)
// via a Cholesky factorisation computed once.
#pragma once

#include "optim/matrix.h"

namespace otem::optim {

struct QpProblem {
  Matrix p;   ///< n x n, symmetric PSD
  Vector q;   ///< n
  Matrix a;   ///< m x n
  Vector l;   ///< m (may contain -inf)
  Vector u;   ///< m (may contain +inf)
};

struct QpOptions {
  size_t max_iterations = 4000;
  double rho = 0.1;
  double sigma = 1e-6;
  double alpha = 1.6;       ///< over-relaxation
  double eps_abs = 1e-6;
  double eps_rel = 1e-6;
  /// Adaptive rho (OSQP-style): every `rho_update_interval` iterations
  /// rho is rebalanced by the primal/dual residual ratio (requires one
  /// re-factorisation per update). 0 disables adaptation.
  size_t rho_update_interval = 100;
};

struct QpResult {
  Vector x;
  Vector y;   ///< dual for the l <= Ax <= u rows
  size_t iterations = 0;
  bool converged = false;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
};

/// Solve the QP; throws otem::SimError on malformed shapes.
QpResult solve_qp(const QpProblem& problem, const QpOptions& options = {});

}  // namespace otem::optim
