// qp.h — dense convex quadratic programming via ADMM (OSQP-style).
//
// Solves
//     min  1/2 x^T P x + q^T x
//     s.t. l <= A x <= u
// with P symmetric positive semidefinite. Used by the linear-time-varying
// MPC ablation (`bench/ablation_solver`) and as a reference solver in
// tests; the production OTEM controller uses the shooting NLP path.
//
// Algorithm: standard two-block ADMM with over-relaxation. Each iteration
// solves the cached KKT-regularised system
//     (P + sigma I + rho A^T A) x = sigma x_prev - q + A^T (rho z - y)
// via a Cholesky factorisation computed once.
//
// The hot path is allocation-free: QpSolver owns a workspace (iterate,
// residual and KKT buffers) that is sized on first use and reused across
// iterations AND across solve() calls, so an MPC controller that keeps a
// QpSolver alive pays no heap traffic per step once warm. A^T A is
// cached, and the adaptive-rho refactorisation updates the stored KKT
// matrix in place (K += (rho' - rho) A^T A) instead of rebuilding it.
#pragma once

#include "optim/decomposition.h"
#include "optim/matrix.h"

namespace otem::optim {

struct QpProblem {
  Matrix p;   ///< n x n, symmetric PSD
  Vector q;   ///< n
  Matrix a;   ///< m x n
  Vector l;   ///< m (may contain -inf)
  Vector u;   ///< m (may contain +inf)
};

struct QpOptions {
  size_t max_iterations = 4000;
  double rho = 0.1;
  double sigma = 1e-6;
  double alpha = 1.6;       ///< over-relaxation
  double eps_abs = 1e-6;
  double eps_rel = 1e-6;
  /// Adaptive rho (OSQP-style): every `rho_update_interval` iterations
  /// rho is rebalanced by the primal/dual residual ratio (requires one
  /// re-factorisation per update). 0 disables adaptation.
  size_t rho_update_interval = 100;
};

struct QpResult {
  Vector x;
  Vector y;   ///< dual for the l <= Ax <= u rows
  size_t iterations = 0;
  bool converged = false;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  size_t rho_updates = 0;  ///< adaptive-rho refactorisations performed
  double rho_final = 0.0;  ///< penalty parameter at termination
};

/// Reusable ADMM solver. Keep one alive per controller: the workspace
/// (KKT matrix, factorisation, iterates) persists across solve() calls
/// and is only reallocated when the problem dimensions change.
class QpSolver {
 public:
  /// Solve the QP; throws otem::SimError on malformed shapes.
  QpResult solve(const QpProblem& problem, const QpOptions& options = {});

 private:
  // Workspace — see solve() for roles. Sized lazily, reused forever.
  Matrix ata_;   ///< cached A^T A
  Matrix kkt_;   ///< P + sigma I + rho A^T A, updated in place on rho changes
  Cholesky chol_;
  Vector x_, z_, y_;          ///< ADMM iterates
  Vector rhs_, t_, ax_, z_new_;
  Vector px_, aty_, dres_;    ///< dual-residual scratch
};

/// One-shot convenience wrapper around QpSolver (fresh workspace per
/// call); prefer a persistent QpSolver on hot paths.
QpResult solve_qp(const QpProblem& problem, const QpOptions& options = {});

}  // namespace otem::optim
