// qp.h — dense convex quadratic programming via ADMM (OSQP-style).
//
// Solves
//     min  1/2 x^T P x + q^T x
//     s.t. l <= A x <= u
// with P symmetric positive semidefinite. Used by the linear-time-varying
// MPC ablation (`bench/ablation_solver`) and as a reference solver in
// tests; the production OTEM controller uses the shooting NLP path.
//
// Algorithm: standard two-block ADMM with over-relaxation. Each iteration
// solves the cached KKT-regularised system
//     (P + sigma I + rho A^T A) x = sigma x_prev - q + A^T (rho z - y)
// via a Cholesky factorisation computed once.
//
// The hot path is allocation-free AND incremental: QpSolver owns a
// workspace (iterate, residual and KKT buffers) that is sized on first
// use and reused across iterations AND across solve() calls, so an MPC
// controller that keeps a QpSolver alive pays no heap traffic per step
// once warm. Across calls the solver additionally reuses work the new
// problem shares with the previous one:
//   - A^T A is rebuilt only when A changed (receding-horizon MPC
//     re-solves with fresh bounds but often identical rows);
//   - the KKT matrix is updated in place (K += dP + drho A^T A) and
//     refactorised only when P, sigma or rho actually changed — and a
//     P drift below QpOptions::kkt_refactor_tol reuses the cached
//     Cholesky outright (termination always tests the true problem
//     data, so a tolerated stale factor costs iterations, not accuracy);
//   - a QpWarmStart seeds the ADMM iterates from a previous solution
//     (z is derived as the projection of A x), which is the textbook
//     receding-horizon warm start.
#pragma once

#include "optim/decomposition.h"
#include "optim/matrix.h"

namespace otem::optim {

struct QpProblem {
  Matrix p;   ///< n x n, symmetric PSD
  Vector q;   ///< n
  Matrix a;   ///< m x n
  Vector l;   ///< m (may contain -inf)
  Vector u;   ///< m (may contain +inf)
};

/// Backend for the ADMM x-update linear system.
///  * kDense — condensed KKT, dense Cholesky (O(n^3) factor, O(n^2)
///    solve). What QpSolver always does; the correctness oracle.
///  * kBanded — stage-structured block-tridiagonal KKT factored in O(H)
///    fixed-size block operations (optim/ltv_qp.h). Consumed by callers
///    that own a stage-wise transcription (core::LtvOtemController);
///    QpSolver itself ignores it, since a dense QpProblem carries no
///    stage structure to exploit.
enum class KktSolveMode { kDense, kBanded };

struct QpOptions {
  size_t max_iterations = 4000;
  double rho = 0.1;
  double sigma = 1e-6;
  double alpha = 1.6;       ///< over-relaxation
  double eps_abs = 1e-6;
  double eps_rel = 1e-6;
  /// Adaptive rho (OSQP-style): every `rho_update_interval` iterations
  /// rho is rebalanced by the primal/dual residual ratio (requires one
  /// re-factorisation per update). 0 disables adaptation.
  size_t rho_update_interval = 100;
  /// Factorisation reuse: when a solve sees the same A, sigma and rho
  /// as the cached KKT factorisation and P differs elementwise by at
  /// most this tolerance, the cached Cholesky is reused without
  /// refactorising. Residual tests always use the true problem data, so
  /// this trades (bounded) convergence speed, never accuracy. 0 demands
  /// an exact P match.
  double kkt_refactor_tol = 0.0;
  /// KKT backend selector (see KktSolveMode). Structure-aware callers
  /// route their solves through LtvQpSolver when set to kBanded.
  KktSolveMode kkt_mode = KktSolveMode::kDense;
  /// Solution polish (banded path only; QpSolver ignores it). After
  /// ADMM converges, one stiff equality solve on the active set the
  /// terminal duals identify snaps the iterates to the active-set-exact
  /// optimum — a few O(H) block operations that buy orders of magnitude
  /// in solution accuracy, so callers can run ADMM at a loose eps
  /// without the solution noise. The polished iterates are accepted
  /// only when BOTH residuals improve; otherwise the ADMM iterates
  /// stand (so polish can only help). See LtvQpSolver::polish().
  bool polish = false;
};

/// Initial iterates for solve() — typically the previous solution of a
/// receding-horizon sequence (shifted by one period by the caller).
/// Sizes that do not match the problem are not an error: the solve
/// silently cold-starts (QpResult::warm_started == false), which is the
/// natural fallback on a horizon change.
struct QpWarmStart {
  Vector x;          ///< primal seed (size n, empty = cold)
  Vector y;          ///< dual seed for the l <= Ax <= u rows (size m)
  double rho = 0.0;  ///< initial penalty; 0 uses QpOptions::rho
};

struct QpResult {
  Vector x;   ///< terminal primal iterate (feed back as QpWarmStart::x)
  Vector y;   ///< terminal dual for the l <= Ax <= u rows
  size_t iterations = 0;
  bool converged = false;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  size_t rho_updates = 0;  ///< adaptive-rho rebalances performed
  double rho_final = 0.0;  ///< penalty at termination (QpWarmStart::rho)
  bool warm_started = false;     ///< iterates were seeded from a warm start
  /// Cholesky factorisations this solve paid for (initial + adaptive
  /// rho). 0 means the cached factorisation was reused outright.
  size_t kkt_refactorizations = 0;
  /// Fixed-size stage-block kernel applications (banded path only;
  /// always 0 from the dense QpSolver). Exact and machine-independent —
  /// bench/check_banded.py gates on this growing linearly in horizon.
  size_t stage_block_ops = 0;
  /// QpOptions::polish ran and the polished iterates were accepted
  /// (both residuals improved). The polish factorisation is NOT counted
  /// in kkt_refactorizations — that field measures ADMM KKT reuse — but
  /// its block work is included in stage_block_ops.
  bool polished = false;
};

/// Reusable ADMM solver. Keep one alive per controller: the workspace
/// (KKT matrix, factorisation, iterates) persists across solve() calls
/// and is only reallocated when the problem dimensions change, and the
/// factorisation itself is reused whenever consecutive problems share
/// A / P / sigma / rho (see the header comment).
class QpSolver {
 public:
  /// Solve the QP; throws otem::SimError on malformed shapes.
  QpResult solve(const QpProblem& problem, const QpOptions& options = {});

  /// Warm-started solve: seeds x/y from `warm` (z = clamp(A x, l, u))
  /// and starts the adaptive-rho schedule at warm.rho. Mismatched warm
  /// sizes fall back to a cold start.
  QpResult solve(const QpProblem& problem, const QpOptions& options,
                 const QpWarmStart& warm);

 private:
  // Workspace — see solve() for roles. Sized lazily, reused forever.
  Matrix ata_;   ///< cached A^T A for the cached A
  Matrix kkt_;   ///< P + sigma I + rho A^T A, updated in place on changes
  Cholesky chol_;
  // Problem data baked into kkt_ / chol_, used to decide what can be
  // reused on the next solve. The comparisons are O(mn) / O(n^2) —
  // cheap next to the O(m n^2) Gram rebuild and O(n^3) factorisation
  // they avoid.
  Matrix a_cached_, p_cached_;
  double sigma_cached_ = 0.0;
  double rho_cached_ = 0.0;
  bool factored_ = false;
  Vector x_, z_, y_;          ///< ADMM iterates
  Vector rhs_, t_, ax_, z_new_;
  Vector px_, aty_, dres_;    ///< dual-residual scratch
};

/// One-shot convenience wrapper around QpSolver (fresh workspace per
/// call); prefer a persistent QpSolver on hot paths.
QpResult solve_qp(const QpProblem& problem, const QpOptions& options = {});

}  // namespace otem::optim
