#include "campaign/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

#include "common/error.h"

namespace otem::campaign {

namespace {

/// LSB-first hex bitmap of the completed indices in [watermark,
/// watermark + window): bit j set == scenario (watermark + j) is in the
/// pending set. Empty when nothing is pending.
std::string completion_bitmap(const Checkpoint& ck) {
  if (ck.pending.empty()) return "";
  const std::uint64_t last = ck.pending.rbegin()->first;
  OTEM_ENSURE(last >= ck.watermark,
              "checkpoint pending entry below the watermark");
  const std::uint64_t window = last - ck.watermark + 1;
  std::string bits((window + 3) / 4, '0');
  static const char* digits = "0123456789abcdef";
  std::vector<unsigned> nibbles(bits.size(), 0);
  for (const auto& [index, result] : ck.pending) {
    (void)result;
    const std::uint64_t j = index - ck.watermark;
    nibbles[j / 4] |= 1u << (j % 4);
  }
  for (size_t i = 0; i < bits.size(); ++i) bits[i] = digits[nibbles[i]];
  return bits;
}

bool bitmap_bit(const std::string& bitmap, std::uint64_t j) {
  const size_t nibble = j / 4;
  if (nibble >= bitmap.size()) return false;
  const char c = bitmap[nibble];
  const unsigned v = c <= '9' ? static_cast<unsigned>(c - '0')
                              : static_cast<unsigned>(c - 'a' + 10);
  return (v >> (j % 4)) & 1u;
}

}  // namespace

Json Checkpoint::to_json() const {
  Json doc = Json::object();
  doc.set("schema", kCheckpointSchema);
  doc.set("grid_fingerprint", grid_fingerprint);
  Json completed = Json::object();
  completed.set("watermark", static_cast<double>(watermark));
  completed.set("window_bitmap", completion_bitmap(*this));
  doc.set("completed", std::move(completed));
  Json pend = Json::array();
  for (const auto& [index, result] : pending) {
    Json entry = Json::object();
    entry.set("index", static_cast<double>(index));
    entry.set("result", result.to_json());
    pend.push(std::move(entry));
  }
  doc.set("pending", std::move(pend));
  doc.set("accumulator", accumulator);
  return doc;
}

Checkpoint Checkpoint::from_json(const Json& doc) {
  const Json* schema = doc.find("schema");
  OTEM_REQUIRE(schema != nullptr && schema->is_string() &&
                   schema->as_string() == kCheckpointSchema,
               "checkpoint: wrong or missing schema");
  Checkpoint ck;
  const Json* fingerprint = doc.find("grid_fingerprint");
  OTEM_REQUIRE(fingerprint != nullptr && fingerprint->is_string(),
               "checkpoint: missing grid_fingerprint");
  ck.grid_fingerprint = fingerprint->as_string();
  const Json* completed = doc.find("completed");
  OTEM_REQUIRE(completed != nullptr && completed->is_object(),
               "checkpoint: missing completed block");
  const Json* watermark = completed->find("watermark");
  OTEM_REQUIRE(watermark != nullptr && watermark->is_number(),
               "checkpoint: missing watermark");
  ck.watermark = static_cast<std::uint64_t>(watermark->as_number());
  const Json* pending = doc.find("pending");
  OTEM_REQUIRE(pending != nullptr && pending->is_array(),
               "checkpoint: missing pending array");
  for (const Json& entry : pending->items()) {
    const Json* index = entry.find("index");
    const Json* result = entry.find("result");
    OTEM_REQUIRE(index != nullptr && index->is_number() && result != nullptr,
                 "checkpoint: malformed pending entry");
    const std::uint64_t i = static_cast<std::uint64_t>(index->as_number());
    OTEM_REQUIRE(i >= ck.watermark,
                 "checkpoint: pending entry below the watermark");
    ck.pending.emplace(i, ScenarioResult::from_json(*result));
  }
  // Cross-validate the bitmap against the records it indexes: a
  // hand-edited or truncated file fails here, not as a silent skew.
  const Json* bitmap = completed->find("window_bitmap");
  OTEM_REQUIRE(bitmap != nullptr && bitmap->is_string(),
               "checkpoint: missing window_bitmap");
  const std::string& bits = bitmap->as_string();
  const std::uint64_t window = static_cast<std::uint64_t>(bits.size()) * 4;
  for (std::uint64_t j = 0; j < window; ++j)
    OTEM_REQUIRE(bitmap_bit(bits, j) ==
                     (ck.pending.count(ck.watermark + j) != 0),
                 "checkpoint: window_bitmap disagrees with pending records");
  const Json* accumulator = doc.find("accumulator");
  OTEM_REQUIRE(accumulator != nullptr,
               "checkpoint: missing accumulator state");
  ck.accumulator = *accumulator;
  // Restoring proves the accumulator block parses before the campaign
  // commits to it.
  const CampaignAccumulator restored =
      CampaignAccumulator::from_json(ck.accumulator);
  OTEM_REQUIRE(restored.committed() == ck.watermark,
               "checkpoint: accumulator committed count != watermark");
  return ck;
}

void write_checkpoint_file(const std::string& path, const Checkpoint& ck) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp);
    OTEM_REQUIRE(f.good(), "cannot open checkpoint temp file: " + tmp);
    f << ck.to_json().dump() << '\n';
    f.flush();
    OTEM_REQUIRE(f.good(), "short write to checkpoint temp file: " + tmp);
  }
  OTEM_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot rename checkpoint into place: " + path);
}

Checkpoint read_checkpoint_file(const std::string& path) {
  std::ifstream f(path);
  OTEM_REQUIRE(f.good(), "cannot open checkpoint file: " + path);
  std::string text((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  return Checkpoint::from_json(Json::parse(text));
}

}  // namespace otem::campaign
