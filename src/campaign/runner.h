// runner.h — the campaign orchestrator.
//
// run_campaign() drives a Grid's scenario stream to completion:
//
//   * workers pull scenario indices from one atomic counter and execute
//     them — locally through sim::run_scenario, or remotely by
//     dispatching otem.serve.v1 run requests across a serve fabric;
//   * finished results enter a reorder buffer; a commit watermark
//     advances whenever the next index in stream order is present,
//     folding that result into the CampaignAccumulator. Commits
//     therefore happen in EXACTLY index order at any thread count, so
//     the accumulator state — and the rendered otem.campaign.v1
//     summary — is byte-identical whether the campaign ran on one
//     thread, sixteen, or was kill -9'd and resumed;
//   * backpressure bounds the buffer: a worker whose index is further
//     than max_pending ahead of the watermark waits, so memory stays
//     O(threads) regardless of campaign size. The worker holding the
//     watermark index never waits — no deadlock;
//   * every checkpoint_every commits (and once more on exit) the merged
//     state is written atomically to checkpoint_path; resume_from
//     restores it bit-exactly and the campaign continues as if never
//     interrupted.
//
// The otem.campaign.v1 summary document:
//
//   {"schema": "otem.campaign.v1",
//    "grid": {...},            // Grid::to_json()
//    "scenarios": N,
//    "groups": {"<methodology>": {"scenarios": n, "metrics": {
//        "<dim>": {count, mean, stddev, min, max, sum,
//                  p50, p95, p99}, ...}}, ...}}
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/grid.h"
#include "common/config.h"
#include "common/json.h"
#include "core/system_spec.h"
#include "exec/stop_token.h"
#include "obs/metrics.h"
#include "serve/client.h"

namespace otem::campaign {

inline constexpr const char* kSummarySchema = "otem.campaign.v1";

struct CampaignOptions {
  /// Worker threads; 0 = hardware concurrency.
  size_t threads = 0;

  /// When non-empty, write the summary line here on completion.
  std::string summary_out;

  /// When non-empty, write checkpoints here (atomic write-rename) every
  /// `checkpoint_every` commits and once more on halt/completion.
  std::string checkpoint_path;
  size_t checkpoint_every = 1000;

  /// When non-empty, restore this checkpoint and continue. The
  /// checkpoint's grid fingerprint must match `grid` exactly.
  std::string resume_from;

  /// Non-empty = serve-fabric mode: scenarios are dispatched as
  /// otem.serve.v1 run requests across these daemon sockets instead of
  /// simulated in-process. Overload refusals retry with backoff
  /// (`retry`); transport failures and timeouts re-dispatch the
  /// scenario to the next socket.
  std::vector<std::string> serve_sockets;
  double request_timeout_s = 120.0;
  serve::RetryOptions retry;

  /// Config keys that steer this process (a front-end's threads=,
  /// summary_out=, ...) and must never be forwarded as fabric request
  /// overrides — the daemon refuses output keys and unknown keys would
  /// pollute its cache keying.
  std::vector<std::string> local_only_keys;

  /// Optional diagnostics registry: campaign.* counters plus the serve
  /// client's retry counter accumulate here.
  obs::MetricsRegistry* metrics = nullptr;

  /// Cooperative cancel: checked between scenarios and passed into the
  /// step loop. A fired token halts the campaign gracefully (final
  /// checkpoint written, outcome.halted = true).
  exec::StopToken stop;

  /// Testing hook: halt once the watermark reaches this commit count —
  /// the in-process stand-in for kill -9 (same checkpoint state, minus
  /// the torn process). 0 = run to completion.
  std::uint64_t halt_after_commits = 0;

  /// Reorder-buffer bound; 0 = 4 * threads + 16.
  size_t max_pending = 0;

  /// When non-empty, stream per-step telemetry of every scenario to
  /// "<prefix><scenario-id>.csv" (local execution only).
  std::string telemetry_csv_prefix;
};

struct CampaignOutcome {
  /// Populated when the campaign committed every scenario.
  Json summary;
  /// The summary document's exact bytes (dump() + '\n') — what
  /// summary_out receives and what determinism tests compare.
  std::string summary_text;

  std::uint64_t scenarios_total = 0;
  std::uint64_t scenarios_run = 0;       ///< executed this invocation
  std::uint64_t scenarios_restored = 0;  ///< carried in from the checkpoint
  bool halted = false;  ///< stopped early (stop token / halt_after_commits)
};

/// Run `grid` against `base_spec` (per-scenario specs derive from it:
/// ultracap scaled by uc_scale, ambient overridden). `cfg` feeds the
/// methodology factories; in fabric mode its non-campaign.* keys are
/// forwarded as request overrides so remote daemons build the same
/// controllers. Throws otem::SimError on scenario failure, checkpoint
/// mismatch, or an unreachable fabric.
CampaignOutcome run_campaign(const Grid& grid,
                             const core::SystemSpec& base_spec,
                             const Config& cfg,
                             const CampaignOptions& options = {});

}  // namespace otem::campaign
