#include "campaign/grid.h"

#include <cstdio>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "vehicle/drive_cycle.h"

namespace otem::campaign {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

namespace {

/// Full-precision double rendering: 17 significant digits round-trip
/// exactly through strtod, so canonical keys and serve-fabric overrides
/// reproduce the same bits a local worker computes with.
std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Axis parser: "a,b,c" is an explicit list; "lo:hi:n" is an inclusive
/// linspace with n points (n >= 1; n == 1 yields lo).
std::vector<double> parse_axis(const std::string& text,
                               const std::string& key) {
  std::vector<double> out;
  if (text.find(':') != std::string::npos) {
    const std::vector<std::string> parts = strings::split(text, ':');
    OTEM_REQUIRE(parts.size() == 3,
                 key + ": linspace axis wants lo:hi:n, got '" + text + "'");
    const double lo = strings::parse_double(parts[0]);
    const double hi = strings::parse_double(parts[1]);
    const long n = strings::parse_long(parts[2]);
    OTEM_REQUIRE(n >= 1, key + ": linspace needs n >= 1");
    for (long i = 0; i < n; ++i)
      out.push_back(n == 1 ? lo
                           : lo + (hi - lo) * static_cast<double>(i) /
                                      static_cast<double>(n - 1));
    return out;
  }
  for (const std::string& piece : strings::split(text, ','))
    if (!piece.empty()) out.push_back(strings::parse_double(piece));
  OTEM_REQUIRE(!out.empty(), key + ": empty axis '" + text + "'");
  return out;
}

std::vector<std::string> parse_names(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& piece : strings::split(text, ','))
    if (!piece.empty()) out.push_back(piece);
  return out;
}

}  // namespace

Grid Grid::from_config(const Config& cfg) {
  Grid g;
  if (cfg.has("campaign.methods"))
    g.methodologies = parse_names(cfg.get_string("campaign.methods", ""));
  if (cfg.has("campaign.cycles"))
    g.cycles = parse_names(cfg.get_string("campaign.cycles", ""));
  // When an explicit cycle axis is given, synthetic routes are opt-in.
  const long synth_default = cfg.has("campaign.cycles") ? 0 : 16;
  g.synthetic_routes = static_cast<size_t>(
      cfg.get_long("campaign.synthetic_routes", synth_default));
  g.min_duration_s =
      cfg.get_double("campaign.min_duration_s", g.min_duration_s);
  g.max_duration_s =
      cfg.get_double("campaign.max_duration_s", g.max_duration_s);
  g.max_speed_mps = cfg.get_double("campaign.max_speed_mps", g.max_speed_mps);
  if (cfg.has("campaign.ambients_k")) {
    g.ambients_k = parse_axis(cfg.get_string("campaign.ambients_k", ""),
                              "campaign.ambients_k");
  } else if (cfg.has("campaign.ambients_c")) {
    g.ambients_k = parse_axis(cfg.get_string("campaign.ambients_c", ""),
                              "campaign.ambients_c");
    for (double& a : g.ambients_k) a += 273.15;
  }
  g.ambient_min_k =
      cfg.get_double("campaign.ambient_min_c", g.ambient_min_k - 273.15) +
      273.15;
  g.ambient_max_k =
      cfg.get_double("campaign.ambient_max_c", g.ambient_max_k - 273.15) +
      273.15;
  if (cfg.has("campaign.uc_scales"))
    g.uc_scales = parse_axis(cfg.get_string("campaign.uc_scales", ""),
                             "campaign.uc_scales");
  g.soe0_min = cfg.get_double("campaign.soe0_min", g.soe0_min);
  g.soe0_max = cfg.get_double("campaign.soe0_max", g.soe0_max);
  g.seed = static_cast<std::uint64_t>(
      cfg.get_long("campaign.seed", static_cast<long>(g.seed)));
  g.validate();
  return g;
}

void Grid::validate() const {
  OTEM_REQUIRE(!methodologies.empty(), "campaign grid: no methodologies");
  OTEM_REQUIRE(routes() >= 1, "campaign grid: no routes (give "
                              "campaign.cycles or campaign.synthetic_routes)");
  OTEM_REQUIRE(!uc_scales.empty(), "campaign grid: empty uc_scales axis");
  for (double s : uc_scales)
    OTEM_REQUIRE(s > 0.0, "campaign grid: uc_scale must be positive");
  OTEM_REQUIRE(min_duration_s > 0.0 && max_duration_s >= min_duration_s,
               "campaign grid: duration range is inverted");
  OTEM_REQUIRE(ambient_min_k <= ambient_max_k,
               "campaign grid: ambient draw range is inverted");
  OTEM_REQUIRE(soe0_min <= soe0_max,
               "campaign grid: soe0 range is inverted");
  for (const std::string& c : cycles)
    vehicle::cycle_from_string(c);  // throws on an unknown cycle name
}

ScenarioSpec Grid::at(size_t index) const {
  OTEM_REQUIRE(index < size(), "campaign grid: scenario index out of range");
  ScenarioSpec s;
  s.index = index;

  size_t rest = index;
  const size_t m = rest % methodologies.size();
  rest /= methodologies.size();
  const size_t u = rest % uc_scales.size();
  rest /= uc_scales.size();
  const size_t a = rest % ambient_slots();
  rest /= ambient_slots();
  const size_t r = rest;

  s.methodology = methodologies[m];
  s.uc_scale = uc_scales[u];
  s.max_speed_mps = max_speed_mps;

  // Per-route conditions, one O(1) derivation per at() call. The draw
  // ORDER (route seed, ambient, duration, soe0) is part of the grid's
  // identity — existing campaign ids depend on it.
  Rng rng(splitmix64(seed ^ splitmix64(0xC0FFEEull + r)));
  // Masked to 63 bits so the seed survives a round trip through the
  // serve protocol's long-typed synthetic_seed override.
  const std::uint64_t route_seed = rng.next_u64() >> 1;
  const double drawn_ambient = rng.uniform(ambient_min_k, ambient_max_k);
  const double duration = rng.uniform(min_duration_s, max_duration_s);
  const double soe0 = rng.uniform(soe0_min, soe0_max);

  if (r < cycles.size()) {
    s.route = cycles[r];
  } else {
    s.route = "synthetic";
    s.route_seed = route_seed;
    s.duration_s = duration;
  }
  s.ambient_k = ambients_k.empty() ? drawn_ambient : ambients_k[a];
  s.soe0 = soe0;

  const std::uint64_t content = fnv1a64(s.canonical_key());
  s.id = strings::hex_u64(content);
  s.seed = splitmix64(content ^ seed);
  return s;
}

std::string ScenarioSpec::canonical_key() const {
  std::string key = "method=" + methodology + "|route=" + route;
  if (synthetic()) {
    key += "|route_seed=" + strings::hex_u64(route_seed);
    key += "|duration_s=" + fmt17(duration_s);
    key += "|max_speed_mps=" + fmt17(max_speed_mps);
  }
  key += "|ambient_k=" + fmt17(ambient_k);
  key += "|uc_scale=" + fmt17(uc_scale);
  key += "|soe0=" + fmt17(soe0);
  return key;
}

std::string Grid::fingerprint() const {
  std::string desc = "otem.campaign.grid|seed=" + strings::hex_u64(seed);
  desc += "|methods=" + strings::join(methodologies, ",");
  desc += "|cycles=" + strings::join(cycles, ",");
  desc += "|synthetic=" + std::to_string(synthetic_routes);
  desc += "|duration=" + fmt17(min_duration_s) + ":" + fmt17(max_duration_s);
  desc += "|max_speed=" + fmt17(max_speed_mps);
  desc += "|ambients=";
  for (double a : ambients_k) desc += fmt17(a) + ",";
  desc += "|ambient_range=" + fmt17(ambient_min_k) + ":" +
          fmt17(ambient_max_k);
  desc += "|uc=";
  for (double s : uc_scales) desc += fmt17(s) + ",";
  desc += "|soe0=" + fmt17(soe0_min) + ":" + fmt17(soe0_max);
  return strings::hex_u64(fnv1a64(desc));
}

Json Grid::to_json() const {
  Json doc = Json::object();
  doc.set("fingerprint", fingerprint());
  doc.set("scenarios", size());
  doc.set("seed", static_cast<double>(seed));
  Json methods = Json::array();
  for (const std::string& m : methodologies) methods.push(m);
  doc.set("methodologies", std::move(methods));
  Json cyc = Json::array();
  for (const std::string& c : cycles) cyc.push(c);
  doc.set("cycles", std::move(cyc));
  doc.set("synthetic_routes", synthetic_routes);
  doc.set("min_duration_s", min_duration_s);
  doc.set("max_duration_s", max_duration_s);
  doc.set("max_speed_mps", max_speed_mps);
  if (ambients_k.empty()) {
    Json draw = Json::object();
    draw.set("drawn", true);
    draw.set("min_k", ambient_min_k);
    draw.set("max_k", ambient_max_k);
    doc.set("ambients", std::move(draw));
  } else {
    doc.set("ambients", Json::numbers(ambients_k));
  }
  doc.set("uc_scales", Json::numbers(uc_scales));
  doc.set("soe0_min", soe0_min);
  doc.set("soe0_max", soe0_max);
  return doc;
}

}  // namespace otem::campaign
