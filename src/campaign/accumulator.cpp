#include "campaign/accumulator.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"

namespace otem::campaign {

// --- ScenarioResult -----------------------------------------------------

namespace {
constexpr const char* kDimNames[ScenarioResult::kDims] = {
    "qloss_percent",      "average_power_w",   "max_t_battery_k",
    "thermal_violation_s", "unserved_energy_j", "energy_cooling_j",
};
}  // namespace

const char* ScenarioResult::dim_name(size_t d) {
  OTEM_REQUIRE(d < kDims, "scenario result dimension out of range");
  return kDimNames[d];
}

double ScenarioResult::dim(size_t d) const {
  switch (d) {
    case 0: return qloss_percent;
    case 1: return average_power_w;
    case 2: return max_t_battery_k;
    case 3: return thermal_violation_s;
    case 4: return unserved_energy_j;
    case 5: return energy_cooling_j;
    default: OTEM_REQUIRE(false, "scenario result dimension out of range");
  }
}

void ScenarioResult::set_dim(size_t d, double v) {
  switch (d) {
    case 0: qloss_percent = v; break;
    case 1: average_power_w = v; break;
    case 2: max_t_battery_k = v; break;
    case 3: thermal_violation_s = v; break;
    case 4: unserved_energy_j = v; break;
    case 5: energy_cooling_j = v; break;
    default: OTEM_REQUIRE(false, "scenario result dimension out of range");
  }
}

ScenarioResult ScenarioResult::from_run(const sim::RunResult& r) {
  ScenarioResult out;
  out.qloss_percent = r.qloss_percent;
  out.average_power_w = r.average_power_w;
  out.max_t_battery_k = r.max_t_battery_k;
  out.thermal_violation_s = r.thermal_violation_s;
  out.unserved_energy_j = r.unserved_energy_j;
  out.energy_cooling_j = r.energy_cooling_j;
  return out;
}

Json ScenarioResult::to_json() const {
  Json doc = Json::object();
  for (size_t d = 0; d < kDims; ++d)
    doc.set(dim_name(d), strings::hex_double(dim(d)));
  return doc;
}

ScenarioResult ScenarioResult::from_json(const Json& doc) {
  ScenarioResult out;
  for (size_t d = 0; d < kDims; ++d) {
    const Json* v = doc.find(dim_name(d));
    OTEM_REQUIRE(v != nullptr && v->is_string(),
                 std::string("scenario result json: missing ") + dim_name(d));
    out.set_dim(d, strings::parse_hex_double(v->as_string()));
  }
  return out;
}

// --- Welford ------------------------------------------------------------

void Welford::add(double v) {
  if (n_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  sum_ += v;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
}

double Welford::stddev() const {
  return n_ > 1 ? std::sqrt(m2_ / static_cast<double>(n_)) : 0.0;
}

Json Welford::to_json() const {
  Json doc = Json::object();
  doc.set("n", static_cast<double>(n_));
  doc.set("mean", strings::hex_double(mean_));
  doc.set("m2", strings::hex_double(m2_));
  doc.set("min", strings::hex_double(min_));
  doc.set("max", strings::hex_double(max_));
  doc.set("sum", strings::hex_double(sum_));
  return doc;
}

Welford Welford::from_json(const Json& doc) {
  Welford out;
  const Json* n = doc.find("n");
  OTEM_REQUIRE(n != nullptr && n->is_number(), "welford json: missing n");
  out.n_ = static_cast<std::uint64_t>(n->as_number());
  auto hex = [&](const char* key) {
    const Json* v = doc.find(key);
    OTEM_REQUIRE(v != nullptr && v->is_string(),
                 std::string("welford json: missing ") + key);
    return strings::parse_hex_double(v->as_string());
  };
  out.mean_ = hex("mean");
  out.m2_ = hex("m2");
  out.min_ = hex("min");
  out.max_ = hex("max");
  out.sum_ = hex("sum");
  return out;
}

// --- CampaignAccumulator ------------------------------------------------

CampaignAccumulator::CampaignAccumulator(size_t sketch_k) : k_(sketch_k) {}

void CampaignAccumulator::commit(const std::string& group,
                                 const ScenarioResult& r) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    Group g;
    g.dims.reserve(ScenarioResult::kDims);
    for (size_t d = 0; d < ScenarioResult::kDims; ++d) g.dims.emplace_back(k_);
    it = groups_.emplace(group, std::move(g)).first;
  }
  Group& g = it->second;
  ++g.scenarios;
  for (size_t d = 0; d < ScenarioResult::kDims; ++d) {
    const double v = r.dim(d);
    g.dims[d].welford.add(v);
    g.dims[d].sketch.add(v);
  }
  ++committed_;
}

Json CampaignAccumulator::groups_json() const {
  Json out = Json::object();
  for (const auto& [name, g] : groups_) {
    Json group = Json::object();
    group.set("scenarios", static_cast<double>(g.scenarios));
    Json metrics = Json::object();
    for (size_t d = 0; d < ScenarioResult::kDims; ++d) {
      const Welford& w = g.dims[d].welford;
      const obs::QuantileSketch& s = g.dims[d].sketch;
      Json m = Json::object();
      m.set("count", static_cast<double>(w.count()));
      m.set("mean", w.mean());
      m.set("stddev", w.stddev());
      m.set("min", w.min());
      m.set("max", w.max());
      m.set("sum", w.sum());
      m.set("p50", s.quantile(0.50));
      m.set("p95", s.quantile(0.95));
      m.set("p99", s.quantile(0.99));
      metrics.set(ScenarioResult::dim_name(d), std::move(m));
    }
    group.set("metrics", std::move(metrics));
    out.set(name, std::move(group));
  }
  return out;
}

Json CampaignAccumulator::to_json() const {
  Json doc = Json::object();
  doc.set("k", k_);
  doc.set("committed", static_cast<double>(committed_));
  Json groups = Json::object();
  for (const auto& [name, g] : groups_) {
    Json group = Json::object();
    group.set("scenarios", static_cast<double>(g.scenarios));
    Json dims = Json::object();
    for (size_t d = 0; d < ScenarioResult::kDims; ++d) {
      Json dim = Json::object();
      dim.set("welford", g.dims[d].welford.to_json());
      dim.set("sketch", g.dims[d].sketch.to_json());
      dims.set(ScenarioResult::dim_name(d), std::move(dim));
    }
    group.set("dims", std::move(dims));
    groups.set(name, std::move(group));
  }
  doc.set("groups", std::move(groups));
  return doc;
}

CampaignAccumulator CampaignAccumulator::from_json(const Json& doc) {
  const Json* k = doc.find("k");
  OTEM_REQUIRE(k != nullptr && k->is_number(),
               "campaign accumulator json: missing k");
  CampaignAccumulator out(static_cast<size_t>(k->as_number()));
  const Json* committed = doc.find("committed");
  OTEM_REQUIRE(committed != nullptr && committed->is_number(),
               "campaign accumulator json: missing committed");
  out.committed_ = static_cast<std::uint64_t>(committed->as_number());
  const Json* groups = doc.find("groups");
  OTEM_REQUIRE(groups != nullptr && groups->is_object(),
               "campaign accumulator json: missing groups");
  for (const auto& [name, group] : groups->members()) {
    Group g;
    const Json* scenarios = group.find("scenarios");
    OTEM_REQUIRE(scenarios != nullptr && scenarios->is_number(),
                 "campaign accumulator json: group missing scenarios");
    g.scenarios = static_cast<std::uint64_t>(scenarios->as_number());
    const Json* dims = group.find("dims");
    OTEM_REQUIRE(dims != nullptr && dims->is_object(),
                 "campaign accumulator json: group missing dims");
    for (size_t d = 0; d < ScenarioResult::kDims; ++d) {
      const Json* dim = dims->find(ScenarioResult::dim_name(d));
      OTEM_REQUIRE(dim != nullptr,
                   std::string("campaign accumulator json: missing dim ") +
                       ScenarioResult::dim_name(d));
      const Json* welford = dim->find("welford");
      const Json* sketch = dim->find("sketch");
      OTEM_REQUIRE(welford != nullptr && sketch != nullptr,
                   "campaign accumulator json: incomplete dim");
      Dim restored(out.k_);
      restored.welford = Welford::from_json(*welford);
      restored.sketch = obs::QuantileSketch::from_json(*sketch);
      OTEM_REQUIRE(restored.sketch.k() == out.k_,
                   "campaign accumulator json: sketch k mismatch");
      g.dims.push_back(std::move(restored));
    }
    out.groups_.emplace(name, std::move(g));
  }
  return out;
}

}  // namespace otem::campaign
