// grid.h — the campaign generator grammar.
//
// A Grid declares a scenario space as axes — routes (named dynamometer
// cycles and/or seeded synthetic missions) × ambient temperatures ×
// ultracapacitor sizes × methodologies — and expands it into a
// deterministic, stably-ordered scenario stream. Nothing is
// materialised: size() is a product of axis lengths and at(i) derives
// scenario i in O(1) from the grid alone, so a million-scenario
// campaign costs the same memory as a ten-scenario one and any shard
// [lo, hi) can be regenerated in isolation by any worker.
//
// Determinism contract:
//   * The stream order is fixed: route outermost, then ambient slot,
//     then UC scale, then methodology innermost — every methodology
//     sees the same mission back to back, so comparisons stay paired.
//   * All stochastic per-route conditions (synthetic route seed, drawn
//     ambient, duration, initial charge) are derived from the grid seed
//     and the route index alone — pre-drawn in the PR-1 sense, just
//     computed lazily — so results are independent of execution order,
//     thread count and sharding.
//   * Every scenario carries a content-addressed id: the FNV-1a hash of
//     its canonical key (all resolved values at full precision). Two
//     campaigns that generate the same physical scenario agree on its
//     id; checkpoint/resume and result caches key on it.
//
// Config grammar (Grid::from_config, all keys optional, prefix
// "campaign." so they never collide with scenario/spec overrides):
//   campaign.methods=parallel,dual,otem     methodology axis
//   campaign.cycles=UDDS,US06               named-cycle routes
//   campaign.synthetic_routes=N             seeded synthetic routes
//   campaign.min_duration_s= / campaign.max_duration_s=
//   campaign.max_speed_mps=                 synthetic route envelope
//   campaign.ambients_k=283:313:7           axis: list "a,b,c" or
//   campaign.ambients_c=10,25,40              linspace "lo:hi:n"
//   campaign.ambient_min_c= / campaign.ambient_max_c=
//                                           per-route draw range used
//                                           when no ambient axis given
//   campaign.uc_scales=0.5,1,2              UC size multipliers
//   campaign.soe0_min= / campaign.soe0_max= initial bank charge draw
//   campaign.seed=N                         campaign seed
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.h"
#include "common/json.h"

namespace otem::campaign {

/// FNV-1a 64-bit over a byte string (content addressing).
std::uint64_t fnv1a64(std::string_view s);

/// SplitMix64 finalizer (seed derivation).
std::uint64_t splitmix64(std::uint64_t x);

/// One expanded scenario: everything a worker needs to reproduce the
/// run in isolation, plus its identity in the stream.
struct ScenarioSpec {
  size_t index = 0;     ///< position in the stable stream order
  std::string id;       ///< 16-hex content hash of canonical_key()
  std::uint64_t seed = 0;  ///< content-addressed scenario seed

  std::string methodology;
  std::string route;              ///< cycle name, or "synthetic"
  std::uint64_t route_seed = 0;   ///< synthetic routes only (63-bit)
  double duration_s = 0.0;        ///< synthetic routes only
  double max_speed_mps = 32.0;    ///< synthetic routes only
  double ambient_k = 298.15;      ///< pack soaks to this before start
  double uc_scale = 1.0;          ///< multiplier on spec capacitance
  double soe0 = 100.0;            ///< initial bank charge [%]

  bool synthetic() const { return route == "synthetic"; }

  /// All resolved values at full precision, in a fixed field order —
  /// what the content id hashes.
  std::string canonical_key() const;
};

struct Grid {
  std::vector<std::string> methodologies{"parallel", "active_cooling",
                                         "dual", "otem"};
  /// Route axis: the named cycles first, then `synthetic_routes` seeded
  /// synthetic missions.
  std::vector<std::string> cycles;
  size_t synthetic_routes = 16;

  /// Synthetic route envelope (duration drawn per route).
  double min_duration_s = 600.0;
  double max_duration_s = 1500.0;
  double max_speed_mps = 32.0;

  /// Ambient axis [K]; when empty, each route draws one ambient
  /// uniformly from [ambient_min_k, ambient_max_k] instead (the
  /// Monte-Carlo fleet behaviour).
  std::vector<double> ambients_k;
  double ambient_min_k = 283.15;
  double ambient_max_k = 313.15;

  std::vector<double> uc_scales{1.0};

  /// Initial bank charge draw range [%] (equal bounds = fixed).
  double soe0_min = 100.0;
  double soe0_max = 100.0;

  std::uint64_t seed = 2026;

  static Grid from_config(const Config& cfg);

  size_t routes() const { return cycles.size() + synthetic_routes; }
  size_t ambient_slots() const {
    return ambients_k.empty() ? 1 : ambients_k.size();
  }
  size_t size() const {
    return routes() * ambient_slots() * uc_scales.size() *
           methodologies.size();
  }

  /// Expand scenario `index` (O(1); throws when out of range).
  ScenarioSpec at(size_t index) const;

  /// Content hash of the whole grid definition; checkpoints carry it so
  /// a resume against a different grid fails loudly instead of merging
  /// incompatible streams.
  std::string fingerprint() const;

  /// Grid description block embedded in otem.campaign.v1 summaries.
  Json to_json() const;

  /// Validate axis sanity (non-empty, ordered ranges); throws
  /// otem::SimError with a message naming the offending axis.
  void validate() const;
};

}  // namespace otem::campaign
