// checkpoint.h — crash-safe campaign state (otem.campaign.ckpt.v1).
//
// A checkpoint captures everything a killed campaign needs to continue
// bit-exactly:
//
//   * the grid fingerprint — resume against a different grid fails
//     loudly instead of merging incompatible streams;
//   * the commit watermark K — scenarios [0, K) are folded into the
//     accumulator in index order;
//   * the completed-ID window beyond the watermark: results that
//     finished out of order (bounded by the worker count) are retained
//     verbatim, encoded both as per-index records and as a compact
//     bitmap over [K, K+window) that the loader cross-validates;
//   * the accumulator state — Welford moments and full KLL sketch
//     levels, doubles as IEEE-754 hex so restore is bit-identical.
//
// Files are written atomically: serialize to "<path>.tmp", flush, then
// rename(2) over the destination — a kill -9 mid-write leaves either
// the previous checkpoint or the new one, never a torn file.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "campaign/accumulator.h"
#include "common/json.h"

namespace otem::campaign {

inline constexpr const char* kCheckpointSchema = "otem.campaign.ckpt.v1";

struct Checkpoint {
  std::string grid_fingerprint;
  /// Scenarios [0, watermark) are committed into `accumulator`.
  std::uint64_t watermark = 0;
  /// Completed-but-uncommitted results beyond the watermark (the
  /// out-of-order window; bounded by the worker count).
  std::map<std::uint64_t, ScenarioResult> pending;
  /// CampaignAccumulator::to_json() state.
  Json accumulator;

  Json to_json() const;
  static Checkpoint from_json(const Json& doc);
};

/// Serialize + atomic write-rename; throws otem::SimError on I/O
/// failure.
void write_checkpoint_file(const std::string& path, const Checkpoint& ck);

/// Load + validate schema and bitmap consistency; throws on anything
/// malformed.
Checkpoint read_checkpoint_file(const std::string& path);

}  // namespace otem::campaign
