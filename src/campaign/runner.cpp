#include "campaign/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>

#include "campaign/checkpoint.h"
#include "common/error.h"
#include "common/strings.h"
#include "serve/protocol.h"
#include "sim/scenario.h"

namespace otem::campaign {

namespace {

/// %.17g — exact strtod round-trip for doubles forwarded as config
/// strings to serve daemons.
std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// The innermost grid axis — the group a scenario commits under,
/// without paying for a full Grid::at() expansion per fold.
const std::string& group_of(const Grid& grid, std::uint64_t index) {
  return grid.methodologies[index % grid.methodologies.size()];
}

/// Reorder-buffer committer: workers submit results in completion
/// order; the watermark folds them into the accumulator in INDEX order.
/// All state is guarded by one mutex — folds are serialized, so the
/// floating-point fold sequence is fixed regardless of which thread
/// happens to perform it.
class Committer {
 public:
  Committer(const Grid& grid, const CampaignOptions& options,
            CampaignAccumulator acc, std::uint64_t watermark,
            std::map<std::uint64_t, ScenarioResult> pending,
            std::uint64_t total)
      : grid_(grid),
        options_(options),
        acc_(std::move(acc)),
        watermark_(watermark),
        pending_(std::move(pending)),
        total_(total) {
    const size_t threads = options.threads > 0
                               ? options.threads
                               : std::thread::hardware_concurrency();
    capacity_ = options.max_pending > 0 ? options.max_pending
                                        : 4 * (threads > 0 ? threads : 1) + 16;
    last_checkpoint_ = watermark_;
    // A restored checkpoint may carry a foldable prefix (defensively —
    // writers fold eagerly, so this is normally a no-op).
    std::unique_lock<std::mutex> lock(mutex_);
    fold_locked();
  }

  /// Backpressure before computing scenario `index`: wait until it is
  /// within the reorder window. The watermark index itself never waits.
  /// Returns false when the campaign is halting — drop the work.
  bool wait_turn(std::uint64_t index) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (halted_) return false;
      if (options_.stop.stop_requested()) {
        halt_locked();
        return false;
      }
      if (index < watermark_ + capacity_) return true;
      cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }

  void submit(std::uint64_t index, ScenarioResult result) {
    std::unique_lock<std::mutex> lock(mutex_);
    pending_.emplace(index, std::move(result));
    ++run_;
    fold_locked();
    if (!halted_ && !options_.checkpoint_path.empty() &&
        options_.checkpoint_every > 0 &&
        watermark_ - last_checkpoint_ >= options_.checkpoint_every)
      write_checkpoint_locked();
    cv_.notify_all();
  }

  void halt() {
    std::unique_lock<std::mutex> lock(mutex_);
    halt_locked();
  }

  /// After the workers join: write the final checkpoint (halt or
  /// completion) and report the terminal state.
  void finalize() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!options_.checkpoint_path.empty()) write_checkpoint_locked();
  }

  bool halted() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return halted_;
  }
  bool complete() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return watermark_ == total_;
  }
  std::uint64_t scenarios_run() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return run_;
  }
  std::uint64_t checkpoints_written() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return checkpoints_;
  }
  /// Callable only after the workers join.
  const CampaignAccumulator& accumulator() const { return acc_; }

 private:
  void fold_locked() {
    while (!halted_) {
      auto it = pending_.begin();
      if (it == pending_.end() || it->first != watermark_) break;
      acc_.commit(group_of(grid_, watermark_), it->second);
      pending_.erase(it);
      ++watermark_;
      if (options_.halt_after_commits > 0 &&
          watermark_ >= options_.halt_after_commits && watermark_ < total_)
        halt_locked();
    }
  }

  void halt_locked() {
    halted_ = true;
    cv_.notify_all();
  }

  void write_checkpoint_locked() {
    Checkpoint ck;
    ck.grid_fingerprint = grid_.fingerprint();
    ck.watermark = watermark_;
    ck.pending = pending_;
    ck.accumulator = acc_.to_json();
    write_checkpoint_file(options_.checkpoint_path, ck);
    last_checkpoint_ = watermark_;
    ++checkpoints_;
  }

  const Grid& grid_;
  const CampaignOptions& options_;
  CampaignAccumulator acc_;
  std::uint64_t watermark_;
  std::map<std::uint64_t, ScenarioResult> pending_;
  const std::uint64_t total_;
  size_t capacity_;
  std::uint64_t last_checkpoint_ = 0;
  std::uint64_t run_ = 0;
  std::uint64_t checkpoints_ = 0;
  bool halted_ = false;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
};

/// Config key/value pairs extracted once up front, so each scenario can
/// build a PRIVATE Config: Config copies share a consumed-key set and
/// concurrent reads through copies would race on it (the serve server
/// takes the same precaution per session).
std::vector<std::pair<std::string, std::string>> extract_pairs(
    const Config& cfg) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const std::string& key : cfg.keys())
    pairs.emplace_back(key, cfg.get_string(key, ""));
  return pairs;
}

Config make_private_config(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  Config cfg;
  for (const auto& [key, value] : pairs) cfg.set(key, value);
  return cfg;
}

ScenarioResult run_local(
    const ScenarioSpec& s, const core::SystemSpec& base_spec,
    const std::vector<std::pair<std::string, std::string>>& base_pairs,
    const CampaignOptions& options) {
  core::SystemSpec spec = base_spec.with_ultracap_size(
      base_spec.ultracap.capacitance_f * s.uc_scale);
  spec.ambient_k = s.ambient_k;

  sim::Scenario scenario;
  scenario.methodology = s.methodology;
  if (s.synthetic()) {
    scenario.synthetic = true;
    scenario.synthetic_seed = s.route_seed;
    scenario.synthetic_duration_s = s.duration_s;
    scenario.synthetic_max_speed_mps = s.max_speed_mps;
  } else {
    scenario.cycle = s.route;
  }
  scenario.ambient_k = s.ambient_k;
  scenario.soak = true;
  scenario.initial.soe_percent = s.soe0;
  scenario.record_trace = false;
  if (!options.telemetry_csv_prefix.empty())
    scenario.trace_csv = options.telemetry_csv_prefix + s.id + ".csv";

  const Config cfg = make_private_config(base_pairs);
  const sim::ScenarioOutcome outcome =
      sim::run_scenario(scenario, spec, cfg, {}, options.stop);
  return ScenarioResult::from_run(outcome.result);
}

/// Assemble the otem.serve.v1 run request for one scenario. Base config
/// pairs forward first (methodology parameters the daemons need), the
/// scenario's own resolved values last so they win.
std::string build_run_request(
    const ScenarioSpec& s, const core::SystemSpec& base_spec,
    const std::vector<std::pair<std::string, std::string>>& base_pairs) {
  serve::Request req;
  req.method = "run";
  req.id = Json(s.id);
  // Bit-exact report doubles: the daemon's %.12g JSON numbers lose the
  // low mantissa bits, which would make fabric and local campaign
  // summaries drift. report_hex carries IEEE-754 bit patterns instead.
  req.hex_doubles = true;
  for (const auto& [key, value] : base_pairs) {
    // campaign.* is the grid's vocabulary, not the daemons'.
    if (key.rfind("campaign.", 0) == 0) continue;
    req.overrides.emplace_back(key, value);
  }
  req.overrides.emplace_back("method", s.methodology);
  if (s.synthetic()) {
    req.overrides.emplace_back("synthetic", "true");
    req.overrides.emplace_back("synthetic_seed",
                               std::to_string(s.route_seed));
    req.overrides.emplace_back("synthetic_duration_s", fmt17(s.duration_s));
    req.overrides.emplace_back("synthetic_max_speed_mps",
                               fmt17(s.max_speed_mps));
  } else {
    req.overrides.emplace_back("cycle", s.route);
  }
  req.overrides.emplace_back("ambient_k", fmt17(s.ambient_k));
  req.overrides.emplace_back("soak", "true");
  req.overrides.emplace_back("soe0", fmt17(s.soe0));
  req.overrides.emplace_back(
      "ultracap.capacitance_f",
      fmt17(base_spec.ultracap.capacitance_f * s.uc_scale));
  // No record_trace/telemetry overrides: the daemon refuses server-side
  // output keys and forces tracing off itself.
  return serve::build_request(req);
}

ScenarioResult parse_run_response(const std::string& line,
                                  const ScenarioSpec& s) {
  const Json doc = Json::parse(line);
  const Json* ok = doc.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    const Json* message = doc.find("message");
    const Json* error = doc.find("error");
    OTEM_REQUIRE(false,
                 "campaign: fabric rejected scenario " + s.id + ": " +
                     (error != nullptr && error->is_string()
                          ? error->as_string()
                          : std::string("malformed response")) +
                     (message != nullptr && message->is_string()
                          ? " (" + message->as_string() + ")"
                          : ""));
  }
  const Json* result = doc.find("result");
  OTEM_REQUIRE(result != nullptr, "campaign: fabric response missing result");
  // Prefer the bit-exact hex report (we ask for it with hex_doubles);
  // fall back to the numeric report for older daemons, accepting %.12g
  // rounding there.
  const Json* hex = result->find("report_hex");
  if (hex != nullptr && hex->is_object()) {
    ScenarioResult out;
    for (size_t d = 0; d < ScenarioResult::kDims; ++d) {
      const Json* v = hex->find(ScenarioResult::dim_name(d));
      if (v != nullptr && v->is_number()) {
        out.set_dim(d, v->as_number());  // e.g. infeasible_steps
        continue;
      }
      OTEM_REQUIRE(v != nullptr && v->is_string(),
                   std::string("campaign: fabric hex report missing ") +
                       ScenarioResult::dim_name(d));
      out.set_dim(d, strings::parse_hex_double(v->as_string()));
    }
    return out;
  }
  const Json* report = result->find("report");
  OTEM_REQUIRE(report != nullptr && report->is_object(),
               "campaign: fabric response missing report");
  ScenarioResult out;
  for (size_t d = 0; d < ScenarioResult::kDims; ++d) {
    const Json* v = report->find(ScenarioResult::dim_name(d));
    OTEM_REQUIRE(v != nullptr && v->is_number(),
                 std::string("campaign: fabric report missing ") +
                     ScenarioResult::dim_name(d));
    out.set_dim(d, v->as_number());
  }
  return out;
}

ScenarioResult run_remote(
    const ScenarioSpec& s, const core::SystemSpec& base_spec,
    const std::vector<std::pair<std::string, std::string>>& base_pairs,
    const CampaignOptions& options) {
  const std::string request = build_run_request(s, base_spec, base_pairs);
  // Spread load by scenario index; on transport failure or timeout
  // (stragglers, dead daemons) re-dispatch to the next socket. Overload
  // refusals are retried with backoff by the client before a socket is
  // given up on.
  std::string last_error;
  for (size_t attempt = 0; attempt < options.serve_sockets.size(); ++attempt) {
    const std::string& socket =
        options.serve_sockets[(s.index + attempt) %
                              options.serve_sockets.size()];
    try {
      const std::string response = serve::request_with_retry(
          socket, request, options.request_timeout_s, options.retry,
          options.metrics);
      return parse_run_response(response, s);
    } catch (const SimError& e) {
      last_error = e.what();
      if (options.metrics != nullptr)
        options.metrics->counter("campaign.fabric_redispatch").add(1);
    }
  }
  OTEM_REQUIRE(false, "campaign: every fabric socket failed for scenario " +
                          s.id + "; last error: " + last_error);
}

}  // namespace

CampaignOutcome run_campaign(const Grid& grid,
                             const core::SystemSpec& base_spec,
                             const Config& cfg,
                             const CampaignOptions& options) {
  grid.validate();
  const std::uint64_t total = grid.size();

  CampaignAccumulator acc;
  std::uint64_t watermark = 0;
  std::map<std::uint64_t, ScenarioResult> restored_pending;
  if (!options.resume_from.empty()) {
    const Checkpoint ck = read_checkpoint_file(options.resume_from);
    OTEM_REQUIRE(ck.grid_fingerprint == grid.fingerprint(),
                 "campaign: checkpoint grid fingerprint " +
                     ck.grid_fingerprint + " does not match this grid (" +
                     grid.fingerprint() +
                     ") — refusing to merge incompatible streams");
    acc = CampaignAccumulator::from_json(ck.accumulator);
    watermark = ck.watermark;
    restored_pending = ck.pending;
    OTEM_REQUIRE(watermark <= total, "campaign: checkpoint beyond the grid");
  }

  CampaignOutcome outcome;
  outcome.scenarios_total = total;
  outcome.scenarios_restored = watermark + restored_pending.size();

  // Restored results must not be recomputed — the committer already
  // holds them.
  std::unordered_set<std::uint64_t> restored_indices;
  for (const auto& [index, result] : restored_pending) {
    (void)result;
    restored_indices.insert(index);
  }
  const std::uint64_t restored_watermark = watermark;

  Committer committer(grid, options, std::move(acc), watermark,
                      std::move(restored_pending), total);

  std::vector<std::pair<std::string, std::string>> base_pairs =
      extract_pairs(cfg);
  const bool fabric = !options.serve_sockets.empty();
  if (fabric && !options.local_only_keys.empty()) {
    // Front-end orchestration keys (threads=, summary_out=, ...) steer
    // THIS process; forwarding them would poison daemon cache keys or
    // be refused outright (metrics_out and friends are server-side
    // output overrides).
    base_pairs.erase(
        std::remove_if(base_pairs.begin(), base_pairs.end(),
                       [&](const std::pair<std::string, std::string>& kv) {
                         return std::find(options.local_only_keys.begin(),
                                          options.local_only_keys.end(),
                                          kv.first) !=
                                options.local_only_keys.end();
                       }),
        base_pairs.end());
  }

  size_t threads =
      options.threads > 0 ? options.threads : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (total > 0 && threads > total) threads = static_cast<size_t>(total);

  std::atomic<std::uint64_t> next{restored_watermark};
  std::mutex failure_mutex;
  std::exception_ptr failure;

  auto worker = [&]() {
    for (;;) {
      const std::uint64_t index = next.fetch_add(1);
      if (index >= total) return;
      if (restored_indices.count(index) != 0) continue;
      if (!committer.wait_turn(index)) return;
      const ScenarioSpec s = grid.at(index);
      try {
        ScenarioResult result =
            fabric ? run_remote(s, base_spec, base_pairs, options)
                   : run_local(s, base_spec, base_pairs, options);
        committer.submit(index, std::move(result));
      } catch (const SimCancelled&) {
        return;  // stop token fired mid-mission; wait_turn halts next trip
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(failure_mutex);
          if (!failure) failure = std::current_exception();
        }
        committer.halt();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (failure) std::rethrow_exception(failure);

  committer.finalize();
  outcome.scenarios_run = committer.scenarios_run();
  outcome.halted = committer.halted() && !committer.complete();

  if (options.metrics != nullptr) {
    options.metrics->counter("campaign.scenarios_run")
        .add(outcome.scenarios_run);
    options.metrics->counter("campaign.checkpoints_written")
        .add(committer.checkpoints_written());
  }

  if (committer.complete()) {
    Json summary = Json::object();
    summary.set("schema", kSummarySchema);
    summary.set("grid", grid.to_json());
    summary.set("scenarios", static_cast<double>(total));
    summary.set("groups", committer.accumulator().groups_json());
    outcome.summary_text = summary.dump() + "\n";
    outcome.summary = std::move(summary);
    if (!options.summary_out.empty()) {
      std::ofstream f(options.summary_out);
      OTEM_REQUIRE(f.good(),
                   "campaign: cannot open summary file: " + options.summary_out);
      f << outcome.summary_text;
      f.flush();
      OTEM_REQUIRE(f.good(),
                   "campaign: short write to summary file: " +
                       options.summary_out);
    }
  }
  return outcome;
}

}  // namespace otem::campaign
