// accumulator.h — constant-memory streaming campaign aggregation.
//
// A campaign never retains per-run results: every scenario reduces to a
// fixed ScenarioResult record that is folded — IN SCENARIO INDEX ORDER
// — into one CampaignAccumulator. Per result dimension and per group
// (methodology) the accumulator keeps a Welford moment tracker (exact
// count/sum, numerically stable mean/variance, extrema) and a
// mergeable obs::QuantileSketch, so memory is O(groups × dims ×
// k log n) however many scenarios stream through.
//
// Because commits happen in a single fixed order, the accumulator state
// after N commits — and therefore the rendered otem.campaign.v1
// summary — is BYTE-IDENTICAL at any thread count. The runner's
// committer (runner.cpp) provides the ordering; this type just demands
// it.
//
// to_json()/from_json() round-trip the complete internal state with
// IEEE-754 hex doubles, so a checkpoint restored mid-campaign continues
// the exact floating-point fold a never-interrupted run performs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/sketch.h"
#include "sim/simulator.h"

namespace otem::campaign {

/// The constant-size record one scenario reduces to.
struct ScenarioResult {
  double qloss_percent = 0.0;
  double average_power_w = 0.0;
  double max_t_battery_k = 0.0;
  double thermal_violation_s = 0.0;
  double unserved_energy_j = 0.0;
  double energy_cooling_j = 0.0;

  static constexpr size_t kDims = 6;
  static const char* dim_name(size_t d);
  double dim(size_t d) const;
  void set_dim(size_t d, double v);

  static ScenarioResult from_run(const sim::RunResult& r);

  /// Bit-exact (hex-double) encoding for checkpoint pending records.
  Json to_json() const;
  static ScenarioResult from_json(const Json& doc);
};

/// One-pass Welford mean/variance with exact running sum and extrema.
/// Deterministic for a fixed fold order; stddev is the population form
/// (matches sim::FleetStats).
class Welford {
 public:
  void add(double v);

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  Json to_json() const;  ///< bit-exact hex-double state
  static Welford from_json(const Json& doc);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

class CampaignAccumulator {
 public:
  explicit CampaignAccumulator(size_t sketch_k = obs::kDefaultSketchK);

  /// Fold one scenario's record into `group`. MUST be called in
  /// scenario index order — the committer enforces that.
  void commit(const std::string& group, const ScenarioResult& r);

  std::uint64_t committed() const { return committed_; }

  /// The "groups" block of otem.campaign.v1: per group, per dimension,
  /// {count, mean, stddev, min, max, sum, p50, p95, p99}. Groups and
  /// dimensions render in sorted/declared order — byte-stable.
  Json groups_json() const;

  /// Complete internal state (hex doubles + full sketch levels) for
  /// checkpoints; from_json(to_json()) continues bit-identically.
  Json to_json() const;
  static CampaignAccumulator from_json(const Json& doc);

 private:
  struct Dim {
    explicit Dim(size_t k) : sketch(k) {}
    Welford welford;
    obs::QuantileSketch sketch;
  };
  struct Group {
    std::uint64_t scenarios = 0;
    std::vector<Dim> dims;  ///< ScenarioResult::kDims entries
  };

  size_t k_;
  std::uint64_t committed_ = 0;
  std::map<std::string, Group> groups_;
};

}  // namespace otem::campaign
