// powertrain.h — backward-facing EV longitudinal powertrain model.
//
// SUBSTITUTION NOTE (DESIGN.md §2): replaces ADVISOR [18] as the source
// of the EV power-request trace P_e(t). Given a speed trace, the model
// computes road load (rolling resistance, aerodynamic drag, grade,
// inertia with rotating-mass factor), passes it through a lumped
// motor+inverter+gear efficiency, applies regenerative-braking limits
// and adds the constant accessory load. The output is the electric
// power the energy storage must supply at the DC bus — positive
// discharge, negative regen — exactly the P_e input of the paper's
// Algorithm 1.
#pragma once

#include <cstddef>

#include "common/config.h"
#include "common/timeseries.h"

namespace otem::vehicle {

struct VehicleParams {
  double mass_kg = 1600.0;            ///< kerb + driver
  double rotating_mass_factor = 1.05; ///< effective inertia multiplier
  double drag_coefficient = 0.30;
  double frontal_area_m2 = 2.25;
  double rolling_resistance = 0.0095;
  double traction_efficiency = 0.85;  ///< bus -> wheels (motor+inv+gear)
  double regen_efficiency = 0.60;     ///< wheels -> bus while braking
  double max_motor_power_w = 110000.0;
  double max_regen_power_w = 40000.0; ///< cap on recovered power at the bus
  double accessory_power_w = 700.0;   ///< 12 V loads, electronics

  /// Load overrides with prefix "vehicle." from cfg.
  static VehicleParams from_config(const Config& cfg);
};

class Powertrain {
 public:
  explicit Powertrain(VehicleParams params);

  const VehicleParams& params() const { return params_; }

  /// Tractive force at the wheels [N] for speed v [m/s], acceleration a
  /// [m/s^2] and road grade [rad].
  double wheel_force(double v_mps, double a_mps2, double grade_rad = 0.0) const;

  /// Electric power request at the DC bus [W] (discharge +, regen -).
  double power_request(double v_mps, double a_mps2,
                       double grade_rad = 0.0) const;

  /// Batched power_request over n samples/lanes. The road-load
  /// constants and trig terms are loop invariants and both branch arms
  /// are evaluated then selected, so the loop vectorizes while staying
  /// bit-identical to the scalar path. Backs power_trace and the
  /// batched fleet demand evaluation.
  void power_lanes(const double* v_mps, const double* a_mps2,
                   double* p_bus_w, size_t n, double grade_rad = 0.0) const;

  /// Power-request trace for a speed trace (acceleration from finite
  /// differences). Same sampling as the input.
  TimeSeries power_trace(const TimeSeries& speed,
                         double grade_rad = 0.0) const;

  /// Net bus energy to drive the trace [J] (discharge minus regen).
  double trip_energy_j(const TimeSeries& speed, double grade_rad = 0.0) const;

  /// Net consumption per distance [Wh/km] for the trace — used by the
  /// range-estimator example.
  double consumption_wh_per_km(const TimeSeries& speed,
                               double grade_rad = 0.0) const;

 private:
  VehicleParams params_;
};

}  // namespace otem::vehicle
