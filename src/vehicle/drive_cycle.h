// drive_cycle.h — standard drive-cycle speed traces.
//
// SUBSTITUTION NOTE (see DESIGN.md §2): the paper feeds ADVISOR the EPA
// drive-cycle data files. Those data files are not redistributable
// here, so each cycle is synthesised procedurally from its published
// summary statistics (duration, distance, average/maximum speed, stop
// pattern, aggressiveness). The controllers only consume the resulting
// power-request trace, so any trace with the right shape exercises the
// same code paths; reference stats are embedded and asserted in tests.
//
// All traces are 1 Hz speed profiles in m/s starting and ending at rest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/timeseries.h"

namespace otem::vehicle {

/// The standard cycles used in the paper's Figs. 8-9 evaluation (EPA
/// schedules), plus the international schedules (WLTP class 3b, the
/// Japanese JC08, Artemis urban/road) for broader workloads.
enum class CycleName {
  kUdds,
  kUs06,
  kHwfet,
  kNycc,
  kLa92,
  kSc03,
  kWltp3,
  kJc08,
  kArtemisUrban,
  kArtemisRoad,
};

const char* to_string(CycleName name);
CycleName cycle_from_string(const std::string& s);

/// The paper's six EPA cycles (what the Fig. 8/9 benches sweep).
std::vector<CycleName> all_cycles();

/// Every cycle in the registry, including the international additions.
std::vector<CycleName> extended_cycles();

/// Summary statistics of a speed trace.
struct CycleStats {
  double duration_s = 0.0;
  double distance_m = 0.0;
  double avg_speed_mps = 0.0;       ///< including idle samples
  double max_speed_mps = 0.0;
  double max_accel_mps2 = 0.0;
  double max_decel_mps2 = 0.0;      ///< magnitude
  int stop_count = 0;               ///< transitions into standstill
};

/// Published reference statistics (EPA dynamometer schedules) used to
/// validate the synthesised traces in tests.
CycleStats reference_stats(CycleName name);

/// Compute statistics of an arbitrary speed trace [m/s].
CycleStats stats_of(const TimeSeries& speed);

/// Deterministically synthesise the named cycle (1 Hz, m/s).
TimeSeries generate(CycleName name);

/// Seeded synthetic urban/highway mix for property tests and extra
/// workloads: `duration_s` of microtrips with peaks up to
/// `max_speed_mps`.
TimeSeries generate_synthetic(std::uint64_t seed, double duration_s,
                              double max_speed_mps);

/// Unit of the speed column in an external cycle file.
enum class SpeedUnit { kMetersPerSecond, kKilometersPerHour, kMilesPerHour };

/// Load a real drive-cycle file (CSV with a time column in seconds and
/// a speed column, e.g. the EPA dynamometer schedules). Rows must be
/// uniformly sampled; the sample period is inferred from the first two
/// time values. Use this to swap the synthesised cycles for measured
/// data when available.
TimeSeries load_speed_csv(const std::string& path,
                          const std::string& time_column,
                          const std::string& speed_column,
                          SpeedUnit unit = SpeedUnit::kMilesPerHour);

/// Trapezoid/phase-level builder used by the cycle definitions; public
/// so applications can script custom routes.
class CycleBuilder {
 public:
  explicit CycleBuilder(double dt = 1.0);

  /// Constant-acceleration ramp to the target speed [m/s] at |a| [m/s^2].
  CycleBuilder& ramp_to(double v_mps, double a_mps2);

  /// Hold the current speed for `seconds`.
  CycleBuilder& cruise(double seconds);

  /// Hold approximately the current speed with a sinusoidal speed ripple
  /// (amplitude [m/s], period [s]) — mimics real traffic modulation and
  /// keeps the power request from being unrealistically flat.
  CycleBuilder& cruise_wavy(double seconds, double amplitude_mps,
                            double period_s);

  /// Stand still for `seconds` (speed 0).
  CycleBuilder& idle(double seconds);

  /// Ramp to zero at |a| then idle.
  CycleBuilder& stop(double a_mps2, double idle_seconds);

  double current_speed() const { return v_; }
  double elapsed() const;

  TimeSeries build() const;

 private:
  double dt_;
  double v_ = 0.0;
  std::vector<double> samples_{0.0};
};

}  // namespace otem::vehicle
