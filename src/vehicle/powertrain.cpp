#include "vehicle/powertrain.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"

namespace otem::vehicle {

VehicleParams VehicleParams::from_config(const Config& cfg) {
  VehicleParams p;
  p.mass_kg = cfg.get_double("vehicle.mass_kg", p.mass_kg);
  p.rotating_mass_factor =
      cfg.get_double("vehicle.rotating_mass_factor", p.rotating_mass_factor);
  p.drag_coefficient = cfg.get_double("vehicle.cd", p.drag_coefficient);
  p.frontal_area_m2 = cfg.get_double("vehicle.frontal_area", p.frontal_area_m2);
  p.rolling_resistance = cfg.get_double("vehicle.cr", p.rolling_resistance);
  p.traction_efficiency =
      cfg.get_double("vehicle.traction_efficiency", p.traction_efficiency);
  p.regen_efficiency =
      cfg.get_double("vehicle.regen_efficiency", p.regen_efficiency);
  p.max_motor_power_w =
      cfg.get_double("vehicle.max_motor_power", p.max_motor_power_w);
  p.max_regen_power_w =
      cfg.get_double("vehicle.max_regen_power", p.max_regen_power_w);
  p.accessory_power_w =
      cfg.get_double("vehicle.accessory_power", p.accessory_power_w);

  OTEM_REQUIRE(p.mass_kg > 0.0, "vehicle mass must be positive");
  OTEM_REQUIRE(p.traction_efficiency > 0.0 && p.traction_efficiency <= 1.0,
               "traction efficiency must be in (0, 1]");
  OTEM_REQUIRE(p.regen_efficiency >= 0.0 && p.regen_efficiency <= 1.0,
               "regen efficiency must be in [0, 1]");
  return p;
}

Powertrain::Powertrain(VehicleParams params) : params_(params) {}

double Powertrain::wheel_force(double v_mps, double a_mps2,
                               double grade_rad) const {
  const double inertial =
      params_.mass_kg * params_.rotating_mass_factor * a_mps2;
  const double rolling = params_.mass_kg * constants::kGravity *
                         params_.rolling_resistance * std::cos(grade_rad) *
                         (v_mps > 0.01 ? 1.0 : 0.0);
  const double aero = 0.5 * constants::kAirDensity * params_.drag_coefficient *
                      params_.frontal_area_m2 * v_mps * v_mps;
  const double grade =
      params_.mass_kg * constants::kGravity * std::sin(grade_rad);
  return inertial + rolling + aero + grade;
}

double Powertrain::power_request(double v_mps, double a_mps2,
                                 double grade_rad) const {
  const double p_wheel = wheel_force(v_mps, a_mps2, grade_rad) * v_mps;
  double p_bus;
  if (p_wheel >= 0.0) {
    p_bus = std::min(p_wheel, params_.max_motor_power_w) /
            params_.traction_efficiency;
  } else {
    p_bus = std::max(p_wheel * params_.regen_efficiency,
                     -params_.max_regen_power_w);
  }
  return p_bus + params_.accessory_power_w;
}

TimeSeries Powertrain::power_trace(const TimeSeries& speed,
                                   double grade_rad) const {
  OTEM_REQUIRE(!speed.empty(), "power trace of empty speed trace");
  std::vector<double> out;
  out.reserve(speed.size());
  for (size_t k = 0; k < speed.size(); ++k) {
    const double v = speed[k];
    const double a =
        k == 0 ? 0.0 : (speed[k] - speed[k - 1]) / speed.dt();
    out.push_back(power_request(v, a, grade_rad));
  }
  return TimeSeries(speed.dt(), std::move(out), speed.t0());
}

double Powertrain::trip_energy_j(const TimeSeries& speed,
                                 double grade_rad) const {
  return power_trace(speed, grade_rad).integral();
}

double Powertrain::consumption_wh_per_km(const TimeSeries& speed,
                                         double grade_rad) const {
  double dist_m = 0.0;
  for (size_t k = 0; k < speed.size(); ++k) dist_m += speed[k] * speed.dt();
  OTEM_REQUIRE(dist_m > 1.0, "trace covers no distance");
  return units::joule_to_wh(trip_energy_j(speed, grade_rad)) /
         units::m_to_km(dist_m);
}

}  // namespace otem::vehicle
