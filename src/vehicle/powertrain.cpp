#include "vehicle/powertrain.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"

namespace otem::vehicle {

VehicleParams VehicleParams::from_config(const Config& cfg) {
  VehicleParams p;
  p.mass_kg = cfg.get_double("vehicle.mass_kg", p.mass_kg);
  p.rotating_mass_factor =
      cfg.get_double("vehicle.rotating_mass_factor", p.rotating_mass_factor);
  p.drag_coefficient = cfg.get_double("vehicle.cd", p.drag_coefficient);
  p.frontal_area_m2 = cfg.get_double("vehicle.frontal_area", p.frontal_area_m2);
  p.rolling_resistance = cfg.get_double("vehicle.cr", p.rolling_resistance);
  p.traction_efficiency =
      cfg.get_double("vehicle.traction_efficiency", p.traction_efficiency);
  p.regen_efficiency =
      cfg.get_double("vehicle.regen_efficiency", p.regen_efficiency);
  p.max_motor_power_w =
      cfg.get_double("vehicle.max_motor_power", p.max_motor_power_w);
  p.max_regen_power_w =
      cfg.get_double("vehicle.max_regen_power", p.max_regen_power_w);
  p.accessory_power_w =
      cfg.get_double("vehicle.accessory_power", p.accessory_power_w);

  OTEM_REQUIRE(p.mass_kg > 0.0, "vehicle mass must be positive");
  OTEM_REQUIRE(p.traction_efficiency > 0.0 && p.traction_efficiency <= 1.0,
               "traction efficiency must be in (0, 1]");
  OTEM_REQUIRE(p.regen_efficiency >= 0.0 && p.regen_efficiency <= 1.0,
               "regen efficiency must be in [0, 1]");
  return p;
}

Powertrain::Powertrain(VehicleParams params) : params_(params) {}

double Powertrain::wheel_force(double v_mps, double a_mps2,
                               double grade_rad) const {
  const double inertial =
      params_.mass_kg * params_.rotating_mass_factor * a_mps2;
  const double rolling = params_.mass_kg * constants::kGravity *
                         params_.rolling_resistance * std::cos(grade_rad) *
                         (v_mps > 0.01 ? 1.0 : 0.0);
  const double aero = 0.5 * constants::kAirDensity * params_.drag_coefficient *
                      params_.frontal_area_m2 * v_mps * v_mps;
  const double grade =
      params_.mass_kg * constants::kGravity * std::sin(grade_rad);
  return inertial + rolling + aero + grade;
}

double Powertrain::power_request(double v_mps, double a_mps2,
                                 double grade_rad) const {
  const double p_wheel = wheel_force(v_mps, a_mps2, grade_rad) * v_mps;
  double p_bus;
  if (p_wheel >= 0.0) {
    p_bus = std::min(p_wheel, params_.max_motor_power_w) /
            params_.traction_efficiency;
  } else {
    p_bus = std::max(p_wheel * params_.regen_efficiency,
                     -params_.max_regen_power_w);
  }
  return p_bus + params_.accessory_power_w;
}

void Powertrain::power_lanes(const double* v_mps, const double* a_mps2,
                             double* p_bus_w, size_t n,
                             double grade_rad) const {
  // Hoisted road-load constants, associated exactly as in wheel_force
  // so per-sample results match the scalar path bit for bit.
  const double k_inertial = params_.mass_kg * params_.rotating_mass_factor;
  const double k_rolling = params_.mass_kg * constants::kGravity *
                           params_.rolling_resistance * std::cos(grade_rad);
  const double k_aero = 0.5 * constants::kAirDensity *
                        params_.drag_coefficient * params_.frontal_area_m2;
  const double f_grade =
      params_.mass_kg * constants::kGravity * std::sin(grade_rad);
  const double p_motor_max = params_.max_motor_power_w;
  const double p_regen_min = -params_.max_regen_power_w;
  const double eta_regen = params_.regen_efficiency;
  const double inv_eta = params_.traction_efficiency;
  const double p_acc = params_.accessory_power_w;
  const double* __restrict__ vv = v_mps;
  const double* __restrict__ aa = a_mps2;
  double* __restrict__ out = p_bus_w;
  for (size_t k = 0; k < n; ++k) {
    const double v = vv[k];
    const double force = k_inertial * aa[k] +
                         k_rolling * (v > 0.01 ? 1.0 : 0.0) +
                         k_aero * v * v + f_grade;
    const double p_wheel = force * v;
    const double drive = std::min(p_wheel, p_motor_max) / inv_eta;
    const double brake = std::max(p_wheel * eta_regen, p_regen_min);
    out[k] = (p_wheel >= 0.0 ? drive : brake) + p_acc;
  }
}

TimeSeries Powertrain::power_trace(const TimeSeries& speed,
                                   double grade_rad) const {
  OTEM_REQUIRE(!speed.empty(), "power trace of empty speed trace");
  const size_t n = speed.size();
  const double dt = speed.dt();
  std::vector<double> accel(n, 0.0);
  for (size_t k = 1; k < n; ++k) {
    accel[k] = (speed[k] - speed[k - 1]) / dt;
  }
  std::vector<double> out(n);
  power_lanes(speed.values().data(), accel.data(), out.data(), n, grade_rad);
  return TimeSeries(speed.dt(), std::move(out), speed.t0());
}

double Powertrain::trip_energy_j(const TimeSeries& speed,
                                 double grade_rad) const {
  return power_trace(speed, grade_rad).integral();
}

double Powertrain::consumption_wh_per_km(const TimeSeries& speed,
                                         double grade_rad) const {
  double dist_m = 0.0;
  for (size_t k = 0; k < speed.size(); ++k) dist_m += speed[k] * speed.dt();
  OTEM_REQUIRE(dist_m > 1.0, "trace covers no distance");
  return units::joule_to_wh(trip_energy_j(speed, grade_rad)) /
         units::m_to_km(dist_m);
}

}  // namespace otem::vehicle
