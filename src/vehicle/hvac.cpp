#include "vehicle/hvac.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace otem::vehicle {

HvacParams HvacParams::from_config(const Config& cfg) {
  HvacParams p;
  p.cabin_heat_capacity =
      cfg.get_double("hvac.cabin_heat_capacity", p.cabin_heat_capacity);
  p.envelope_ua = cfg.get_double("hvac.envelope_ua", p.envelope_ua);
  p.solar_gain_w = cfg.get_double("hvac.solar_gain", p.solar_gain_w);
  p.setpoint_k = cfg.get_double("hvac.setpoint_k", p.setpoint_k);
  p.cop = cfg.get_double("hvac.cop", p.cop);
  p.max_power_w = cfg.get_double("hvac.max_power", p.max_power_w);
  p.dead_band_k = cfg.get_double("hvac.dead_band", p.dead_band_k);
  OTEM_REQUIRE(p.cabin_heat_capacity > 0.0 && p.envelope_ua > 0.0,
               "cabin thermal parameters must be positive");
  OTEM_REQUIRE(p.cop > 0.0, "HVAC COP must be positive");
  return p;
}

CabinHvac::CabinHvac(HvacParams params) : params_(params) {
  OTEM_REQUIRE(params_.cop > 0.0, "HVAC COP must be positive");
}

double CabinHvac::passive_heat_w(double t_cabin_k,
                                 double t_ambient_k) const {
  return params_.envelope_ua * (t_ambient_k - t_cabin_k) +
         params_.solar_gain_w;
}

double CabinHvac::steady_load_w(double t_ambient_k) const {
  // At the setpoint, the HVAC must remove/add exactly the passive heat.
  const double q = passive_heat_w(params_.setpoint_k, t_ambient_k);
  // Within the dead band the envelope imbalance is tolerated.
  const double band_q = params_.envelope_ua * params_.dead_band_k;
  if (std::abs(q) <= band_q) return 0.0;
  return std::min(std::abs(q) / params_.cop, params_.max_power_w);
}

double CabinHvac::step(double t_cabin_k, double t_ambient_k, double dt,
                       double* p_electric_w) const {
  OTEM_REQUIRE(dt > 0.0, "HVAC step must be positive");
  const double passive = passive_heat_w(t_cabin_k, t_ambient_k);

  // Proportional pull toward the setpoint: aim to close the error over
  // ~five minutes, plus cancel the passive load, capped by hardware.
  const double error_k = params_.setpoint_k - t_cabin_k;
  double q_cmd = 0.0;
  if (std::abs(error_k) > params_.dead_band_k) {
    q_cmd = params_.cabin_heat_capacity * error_k / 300.0 - passive;
  } else {
    q_cmd = 0.0;  // coast inside the dead band
  }
  const double q_max = params_.max_power_w * params_.cop;
  q_cmd = std::clamp(q_cmd, -q_max, q_max);

  if (p_electric_w != nullptr) *p_electric_w = std::abs(q_cmd) / params_.cop;

  const double dT = (passive + q_cmd) * dt / params_.cabin_heat_capacity;
  return t_cabin_k + dT;
}

}  // namespace otem::vehicle
