// route.h — routes with elevation: speed plus road-grade profiles.
//
// The powertrain's grade term matters enormously in hilly terrain (a
// 5 % climb at 70 km/h costs more than all other road loads
// combined), and descent regen is where HEES buffering shines. A Route
// pairs a speed trace with a per-sample grade trace; the usual entry
// point is elevation waypoints along the route's distance, from which
// grade_from_elevation() derives the per-second profile consistent
// with the speed trace.
#pragma once

#include <utility>
#include <vector>

#include "common/timeseries.h"
#include "vehicle/powertrain.h"

namespace otem::vehicle {

struct Route {
  TimeSeries speed_mps;
  /// Per-sample road grade [rad]; same sampling as speed. May be empty
  /// (flat route).
  TimeSeries grade_rad;
};

/// Elevation waypoint: (distance along route [m], elevation [m]).
using ElevationProfile = std::vector<std::pair<double, double>>;

/// Derive the per-sample grade trace for `speed` from elevation
/// waypoints (piecewise-linear elevation over distance). Waypoints
/// must have strictly increasing distances starting at 0; the profile
/// is clamped at its ends if the route runs longer.
TimeSeries grade_from_elevation(const TimeSeries& speed,
                                const ElevationProfile& profile);

/// Net elevation gain of the route [m] implied by speed + grade.
double elevation_gain_m(const Route& route);

/// Electric power request for a full route (per-sample grade).
TimeSeries route_power_trace(const Powertrain& powertrain,
                             const Route& route);

}  // namespace otem::vehicle
