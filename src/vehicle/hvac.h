// hvac.h — cabin climate-control load model.
//
// The paper's companion work [2] ("HVAC System and Automotive Climate
// Control Influence on Electric Vehicle and Battery") shows the cabin
// HVAC is the second-largest load in an EV and strongly
// ambient-dependent. This model closes that loop for the ambient
// sweeps: a one-state cabin (air + interior mass) with an envelope
// conductance, solar gain and a heat-pump HVAC holding a setpoint:
//
//   C_cab dT_cab/dt = UA (T_amb - T_cab) + Q_solar + Q_hvac,
//   P_hvac = |Q_hvac| / COP,  |P_hvac| <= max power.
//
// Use steady_load_w() for the equilibrium electric draw at a given
// ambient (what the sweep benches add to the accessory load), or
// step() to simulate pull-down/pull-up transients.
#pragma once

#include "common/config.h"

namespace otem::vehicle {

struct HvacParams {
  double cabin_heat_capacity = 80000.0;  ///< J/K (air + seats + trim)
  double envelope_ua = 55.0;             ///< W/K through glass and body
  double solar_gain_w = 350.0;           ///< daytime irradiation
  double setpoint_k = 295.15;            ///< 22 C comfort target
  double cop = 2.5;                      ///< heat-pump COP (both modes)
  double max_power_w = 5000.0;           ///< compressor/heater limit
  /// Dead band around the setpoint [K] within which the HVAC idles.
  double dead_band_k = 0.7;

  /// Load overrides with prefix "hvac." from cfg.
  static HvacParams from_config(const Config& cfg);
};

class CabinHvac {
 public:
  explicit CabinHvac(HvacParams params);

  const HvacParams& params() const { return params_; }

  /// Thermal load the envelope + sun push into the cabin at T_cab [W].
  double passive_heat_w(double t_cabin_k, double t_ambient_k) const;

  /// Electric power needed to HOLD the setpoint at steady state [W]
  /// (0 inside the ambient band where the envelope balance is within
  /// the dead band).
  double steady_load_w(double t_ambient_k) const;

  /// One transient step: returns the new cabin temperature and writes
  /// the electric power drawn into p_electric_w. The controller drives
  /// the cabin toward the setpoint with a proportional thermal command
  /// capped by the hardware limit.
  double step(double t_cabin_k, double t_ambient_k, double dt,
              double* p_electric_w) const;

 private:
  HvacParams params_;
};

}  // namespace otem::vehicle
