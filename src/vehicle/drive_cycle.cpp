#include "vehicle/drive_cycle.h"

#include <algorithm>
#include <cmath>

#include "common/csv.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/units.h"

namespace otem::vehicle {

const char* to_string(CycleName name) {
  switch (name) {
    case CycleName::kUdds:
      return "UDDS";
    case CycleName::kUs06:
      return "US06";
    case CycleName::kHwfet:
      return "HWFET";
    case CycleName::kNycc:
      return "NYCC";
    case CycleName::kLa92:
      return "LA92";
    case CycleName::kSc03:
      return "SC03";
    case CycleName::kWltp3:
      return "WLTP3";
    case CycleName::kJc08:
      return "JC08";
    case CycleName::kArtemisUrban:
      return "ArtemisUrban";
    case CycleName::kArtemisRoad:
      return "ArtemisRoad";
  }
  return "?";
}

CycleName cycle_from_string(const std::string& s) {
  const std::string u = strings::to_lower(s);
  if (u == "udds") return CycleName::kUdds;
  if (u == "us06") return CycleName::kUs06;
  if (u == "hwfet") return CycleName::kHwfet;
  if (u == "nycc") return CycleName::kNycc;
  if (u == "la92") return CycleName::kLa92;
  if (u == "sc03") return CycleName::kSc03;
  if (u == "wltp3" || u == "wltp") return CycleName::kWltp3;
  if (u == "jc08") return CycleName::kJc08;
  if (u == "artemisurban") return CycleName::kArtemisUrban;
  if (u == "artemisroad") return CycleName::kArtemisRoad;
  throw SimError("unknown drive cycle: '" + s + "'");
}

std::vector<CycleName> all_cycles() {
  return {CycleName::kUdds, CycleName::kUs06, CycleName::kHwfet,
          CycleName::kNycc, CycleName::kLa92, CycleName::kSc03};
}

std::vector<CycleName> extended_cycles() {
  std::vector<CycleName> out = all_cycles();
  out.insert(out.end(), {CycleName::kWltp3, CycleName::kJc08,
                         CycleName::kArtemisUrban,
                         CycleName::kArtemisRoad});
  return out;
}

CycleStats reference_stats(CycleName name) {
  // EPA dynamometer schedule summary statistics.
  switch (name) {
    case CycleName::kUdds:
      return {1369.0, 11990.0, 8.75, 25.35, 1.48, 1.48, 17};
    case CycleName::kUs06:
      return {596.0, 12890.0, 21.60, 35.90, 3.24, 3.08, 5};
    case CycleName::kHwfet:
      return {765.0, 16500.0, 21.60, 26.82, 1.43, 1.48, 1};
    case CycleName::kNycc:
      return {598.0, 1900.0, 3.17, 12.40, 2.68, 2.64, 18};
    case CycleName::kLa92:
      return {1435.0, 15800.0, 10.98, 30.04, 3.08, 3.93, 16};
    case CycleName::kSc03:
      return {600.0, 5760.0, 9.59, 24.51, 2.28, 2.73, 5};
    case CycleName::kWltp3:
      return {1800.0, 23270.0, 12.92, 36.47, 1.67, 1.50, 9};
    case CycleName::kJc08:
      return {1204.0, 8170.0, 6.79, 22.67, 1.69, 1.23, 12};
    case CycleName::kArtemisUrban:
      return {993.0, 4870.0, 4.90, 15.92, 2.86, 3.14, 20};
    case CycleName::kArtemisRoad:
      return {1082.0, 17270.0, 15.96, 30.86, 2.36, 4.08, 3};
  }
  throw SimError("unknown drive cycle");
}

CycleStats stats_of(const TimeSeries& speed) {
  OTEM_REQUIRE(!speed.empty(), "stats of empty trace");
  CycleStats s;
  s.duration_s = speed.duration();
  s.max_speed_mps = speed.max();
  double dist = 0.0;
  bool moving = false;
  for (size_t k = 0; k < speed.size(); ++k) {
    dist += speed[k] * speed.dt();
    if (k > 0) {
      const double a = (speed[k] - speed[k - 1]) / speed.dt();
      s.max_accel_mps2 = std::max(s.max_accel_mps2, a);
      s.max_decel_mps2 = std::max(s.max_decel_mps2, -a);
    }
    const bool now_moving = speed[k] > 0.1;
    if (moving && !now_moving) ++s.stop_count;
    moving = now_moving;
  }
  s.distance_m = dist;
  s.avg_speed_mps = dist / std::max(s.duration_s, 1.0);
  return s;
}

// ---------------------------------------------------------------------------
// CycleBuilder

CycleBuilder::CycleBuilder(double dt) : dt_(dt) {
  OTEM_REQUIRE(dt > 0.0, "cycle sample period must be positive");
}

CycleBuilder& CycleBuilder::ramp_to(double v_mps, double a_mps2) {
  OTEM_REQUIRE(v_mps >= 0.0, "speed must be non-negative");
  OTEM_REQUIRE(a_mps2 > 0.0, "ramp acceleration magnitude must be positive");
  const double dir = v_mps >= v_ ? 1.0 : -1.0;
  while (dir * (v_mps - v_) > 1e-9) {
    v_ += dir * a_mps2 * dt_;
    if (dir * (v_ - v_mps) > 0.0) v_ = v_mps;
    samples_.push_back(v_);
  }
  return *this;
}

CycleBuilder& CycleBuilder::cruise(double seconds) {
  const int n = static_cast<int>(std::round(seconds / dt_));
  for (int i = 0; i < n; ++i) samples_.push_back(v_);
  return *this;
}

CycleBuilder& CycleBuilder::cruise_wavy(double seconds, double amplitude_mps,
                                        double period_s) {
  OTEM_REQUIRE(period_s > 0.0, "wave period must be positive");
  const int n = static_cast<int>(std::round(seconds / dt_));
  const double base = v_;
  for (int i = 1; i <= n; ++i) {
    const double t = i * dt_;
    // Sine ripple that returns to the base speed at the end, so the next
    // phase ramps from a well-defined speed.
    const double wave =
        amplitude_mps * std::sin(2.0 * 3.14159265358979323846 * t / period_s);
    v_ = std::max(0.0, base + wave);
    samples_.push_back(v_);
  }
  v_ = base;
  samples_.back() = base;
  return *this;
}

CycleBuilder& CycleBuilder::idle(double seconds) {
  OTEM_REQUIRE(std::abs(v_) < 1e-9, "idle requires standstill — ramp to 0 first");
  return cruise(seconds);
}

CycleBuilder& CycleBuilder::stop(double a_mps2, double idle_seconds) {
  ramp_to(0.0, a_mps2);
  return idle(idle_seconds);
}

double CycleBuilder::elapsed() const {
  return static_cast<double>(samples_.size() - 1) * dt_;
}

TimeSeries CycleBuilder::build() const { return TimeSeries(dt_, samples_); }

// ---------------------------------------------------------------------------
// Cycle definitions

namespace {

/// One stop-to-stop microtrip: accelerate, hold (with mild ripple),
/// decelerate, idle.
void microtrip(CycleBuilder& b, double peak_mps, double accel, double decel,
               double cruise_s, double idle_s, double ripple = 0.6) {
  b.ramp_to(peak_mps, accel);
  if (ripple > 0.0 && cruise_s >= 20.0)
    b.cruise_wavy(cruise_s, ripple, std::max(20.0, cruise_s / 3.0));
  else
    b.cruise(cruise_s);
  b.stop(decel, idle_s);
}

TimeSeries build_udds() {
  CycleBuilder b;
  b.idle(15);
  const struct {
    double peak, accel, cruise, idle;
  } trips[] = {
      {8.33, 1.2, 25, 20},  {13.9, 1.3, 40, 15},  {25.35, 1.45, 120, 20},
      {15.3, 1.2, 50, 15},  {12.5, 1.1, 45, 18},  {11.1, 1.0, 40, 15},
      {13.3, 1.2, 45, 12},  {16.1, 1.3, 55, 15},  {17.2, 1.4, 60, 18},
      {13.9, 1.2, 40, 15},  {11.7, 1.1, 35, 12},  {10.0, 1.0, 30, 15},
      {14.4, 1.25, 45, 15}, {12.2, 1.1, 38, 20},  {8.9, 1.0, 28, 25},
      {12.8, 1.2, 42, 18},
  };
  for (const auto& t : trips)
    microtrip(b, t.peak, t.accel, t.accel, t.cruise, t.idle);
  return b.build();
}

TimeSeries build_us06() {
  CycleBuilder b;
  b.idle(6);
  b.ramp_to(28.0, 2.2).cruise_wavy(90, 1.5, 30);
  // Ripple rides on top of the base speed: base 34.7 + 1.2 amplitude
  // peaks exactly at the published 35.9 m/s maximum.
  b.ramp_to(34.7, 1.2).cruise_wavy(60, 1.2, 25);
  b.ramp_to(20.0, 1.6).cruise(40);
  b.ramp_to(30.0, 1.8).cruise_wavy(100, 1.8, 28);
  b.ramp_to(0.0, 2.2).idle(18);
  b.ramp_to(25.0, 3.2).cruise_wavy(60, 1.5, 22);
  b.ramp_to(0.0, 2.0).idle(8);
  b.ramp_to(30.0, 2.5).cruise_wavy(75, 1.5, 30);
  b.stop(1.8, 6);
  return b.build();
}

TimeSeries build_hwfet() {
  CycleBuilder b;
  b.idle(5);
  b.ramp_to(20.0, 1.4).cruise_wavy(120, 1.2, 45);
  b.ramp_to(24.0, 0.8).cruise_wavy(150, 1.0, 50);
  b.ramp_to(26.0, 0.6).cruise_wavy(120, 0.8, 40);
  b.ramp_to(22.0, 0.8).cruise_wavy(130, 1.0, 45);
  b.ramp_to(25.0, 0.7).cruise_wavy(180, 1.0, 50);
  b.stop(1.2, 5);
  return b.build();
}

TimeSeries build_nycc() {
  CycleBuilder b;
  b.idle(20);
  const struct {
    double peak, accel, cruise, idle;
  } trips[] = {
      {5.0, 1.0, 15, 20},  {8.0, 1.2, 20, 22}, {12.4, 2.6, 20, 20},
      {6.0, 1.0, 15, 25},  {9.0, 1.5, 18, 22}, {4.0, 0.8, 12, 28},
      {8.0, 1.3, 20, 22},  {10.0, 1.8, 18, 20}, {5.0, 1.0, 12, 22},
      {7.0, 1.2, 15, 25},  {3.0, 0.8, 5, 15},  {3.5, 0.8, 6, 15},
  };
  for (const auto& t : trips)
    microtrip(b, t.peak, t.accel, t.accel, t.cruise, t.idle, 0.0);
  b.idle(30);
  return b.build();
}

TimeSeries build_la92() {
  CycleBuilder b;
  b.idle(10);
  const struct {
    double peak, accel, decel, cruise, idle;
  } trips[] = {
      {10.0, 1.5, 1.8, 30, 12}, {14.0, 1.8, 2.0, 40, 10},
      {18.0, 2.0, 2.2, 50, 12}, {24.0, 2.2, 2.5, 60, 10},
      {30.04, 2.4, 3.0, 70, 15}, {22.0, 2.0, 2.4, 55, 10},
      {16.0, 1.8, 2.0, 45, 12}, {12.0, 1.5, 1.8, 35, 10},
      {20.0, 2.0, 2.2, 55, 12}, {26.0, 2.3, 2.8, 65, 10},
      {17.0, 1.8, 2.0, 45, 10}, {13.0, 1.6, 1.8, 35, 12},
      {19.0, 2.0, 2.2, 50, 10}, {23.0, 2.2, 2.6, 60, 12},
      {15.0, 1.7, 1.9, 40, 10}, {11.0, 1.4, 1.6, 30, 15},
  };
  for (const auto& t : trips)
    microtrip(b, t.peak, t.accel, t.decel, t.cruise, t.idle);
  return b.build();
}

TimeSeries build_sc03() {
  CycleBuilder b;
  b.idle(10);
  const struct {
    double peak, accel, cruise, idle;
  } trips[] = {
      {12.0, 2.0, 40, 18}, {24.51, 2.2, 70, 22}, {16.0, 2.0, 50, 18},
      {10.0, 1.8, 35, 20}, {18.0, 2.1, 45, 16},  {14.0, 2.0, 40, 18},
      {20.0, 2.2, 50, 20},
  };
  for (const auto& t : trips)
    microtrip(b, t.peak, t.accel, t.accel, t.cruise, t.idle);
  return b.build();
}

TimeSeries build_wltp3() {
  CycleBuilder b;
  // Low phase: urban stop-and-go.
  b.idle(12);
  const struct {
    double peak, accel, cruise, idle;
  } low[] = {
      {10.0, 1.3, 50, 15}, {14.0, 1.4, 75, 18}, {8.0, 1.2, 35, 12},
      {13.0, 1.3, 65, 20}, {15.3, 1.4, 85, 15}, {11.0, 1.2, 50, 14},
      {9.0, 1.2, 45, 20},  {12.0, 1.3, 55, 25},
  };
  for (const auto& t : low)
    microtrip(b, t.peak, t.accel, t.accel, t.cruise, t.idle);
  // Medium phase.
  const struct {
    double peak, accel, cruise, idle;
  } med[] = {
      {18.0, 1.3, 95, 10}, {21.6, 1.2, 110, 12}, {14.0, 1.2, 60, 10},
  };
  for (const auto& t : med)
    microtrip(b, t.peak, t.accel, t.accel, t.cruise, t.idle);
  // High phase: two long cruises.
  b.ramp_to(25.0, 1.0).cruise_wavy(150, 1.2, 50);
  b.ramp_to(0.0, 1.0).idle(8);
  b.ramp_to(26.8, 0.8).cruise_wavy(130, 1.0, 45);
  // Extra-high phase: motorway climb to the 131 km/h peak.
  b.ramp_to(30.0, 1.0).cruise_wavy(80, 1.2, 40);
  b.ramp_to(36.47, 0.6).cruise_wavy(110, 0.0, 30);
  b.stop(1.3, 6);
  return b.build();
}

TimeSeries build_jc08() {
  CycleBuilder b;
  b.idle(25);
  const struct {
    double peak, accel, cruise, idle;
  } trips[] = {
      {8.0, 0.8, 25, 42},   {13.0, 0.9, 40, 45}, {22.67, 1.0, 70, 50},
      {11.0, 0.9, 35, 45},  {16.0, 1.0, 50, 48}, {9.0, 0.8, 25, 42},
      {14.0, 0.9, 40, 45},  {19.0, 1.0, 55, 50}, {7.0, 0.8, 20, 40},
      {12.0, 0.9, 35, 55},
  };
  for (const auto& t : trips)
    microtrip(b, t.peak, t.accel, t.accel, t.cruise, t.idle, 0.4);
  return b.build();
}

TimeSeries build_artemis_urban() {
  CycleBuilder b;
  b.idle(15);
  const struct {
    double peak, accel, cruise, idle;
  } trips[] = {
      {7.0, 1.8, 20, 33},  {10.0, 2.0, 28, 30}, {15.92, 2.6, 40, 27},
      {5.0, 1.5, 12, 35},  {12.0, 2.2, 30, 30}, {8.0, 1.8, 20, 33},
      {14.0, 2.4, 32, 27}, {6.0, 1.6, 15, 37},  {11.0, 2.0, 26, 30},
      {9.0, 1.8, 22, 33},  {13.0, 2.3, 30, 29}, {7.0, 1.7, 16, 35},
      {10.0, 2.0, 24, 31}, {12.0, 2.2, 26, 40},
  };
  for (const auto& t : trips)
    microtrip(b, t.peak, t.accel, t.accel * 1.2, t.cruise, t.idle, 0.0);
  return b.build();
}

TimeSeries build_artemis_road() {
  CycleBuilder b;
  b.idle(10);
  b.ramp_to(14.0, 1.6).cruise_wavy(130, 1.2, 35);
  b.ramp_to(20.0, 1.2).cruise_wavy(190, 1.5, 45);
  b.ramp_to(12.0, 1.5).cruise(60);
  b.ramp_to(30.86, 1.0).cruise_wavy(120, 0.0, 40);
  b.ramp_to(17.0, 1.4).cruise_wavy(150, 1.2, 40);
  b.ramp_to(0.0, 2.4).idle(25);
  b.ramp_to(19.0, 1.6).cruise_wavy(180, 1.5, 45);
  b.stop(1.8, 12);
  return b.build();
}

}  // namespace

TimeSeries generate(CycleName name) {
  switch (name) {
    case CycleName::kUdds:
      return build_udds();
    case CycleName::kUs06:
      return build_us06();
    case CycleName::kHwfet:
      return build_hwfet();
    case CycleName::kNycc:
      return build_nycc();
    case CycleName::kLa92:
      return build_la92();
    case CycleName::kSc03:
      return build_sc03();
    case CycleName::kWltp3:
      return build_wltp3();
    case CycleName::kJc08:
      return build_jc08();
    case CycleName::kArtemisUrban:
      return build_artemis_urban();
    case CycleName::kArtemisRoad:
      return build_artemis_road();
  }
  throw SimError("unknown drive cycle");
}

TimeSeries load_speed_csv(const std::string& path,
                          const std::string& time_column,
                          const std::string& speed_column, SpeedUnit unit) {
  const CsvData data = read_csv_file(path);
  const std::vector<double> time =
      data.numeric_column(data.column(time_column));
  std::vector<double> speed =
      data.numeric_column(data.column(speed_column));
  OTEM_REQUIRE(time.size() >= 2, "cycle file needs at least two samples");
  const double dt = time[1] - time[0];
  OTEM_REQUIRE(dt > 0.0, "cycle file time column must be increasing");
  for (size_t i = 1; i < time.size(); ++i) {
    OTEM_REQUIRE(std::abs(time[i] - time[i - 1] - dt) < 1e-6 * dt + 1e-9,
                 "cycle file must be uniformly sampled");
  }
  for (double& v : speed) {
    OTEM_REQUIRE(v >= 0.0, "cycle speeds must be non-negative");
    switch (unit) {
      case SpeedUnit::kMetersPerSecond:
        break;
      case SpeedUnit::kKilometersPerHour:
        v = units::kmh_to_mps(v);
        break;
      case SpeedUnit::kMilesPerHour:
        v = units::mph_to_mps(v);
        break;
    }
  }
  return TimeSeries(dt, std::move(speed), time[0]);
}

TimeSeries generate_synthetic(std::uint64_t seed, double duration_s,
                              double max_speed_mps) {
  OTEM_REQUIRE(duration_s > 0.0, "synthetic cycle duration must be positive");
  OTEM_REQUIRE(max_speed_mps > 0.0, "synthetic cycle speed must be positive");
  Rng rng(seed);
  CycleBuilder b;
  b.idle(std::floor(rng.uniform(3.0, 10.0)));
  while (b.elapsed() < duration_s) {
    const double peak = rng.uniform(0.2, 1.0) * max_speed_mps;
    const double accel = rng.uniform(0.8, 2.8);
    const double decel = rng.uniform(1.0, 3.0);
    const double cruise = rng.uniform(10.0, 80.0);
    const double idle_t = rng.uniform(5.0, 25.0);
    microtrip(b, peak, accel, decel, cruise, idle_t,
              rng.uniform(0.0, 1.0));
  }
  return b.build();
}

}  // namespace otem::vehicle
