#include "vehicle/route.h"

#include <cmath>

#include "common/error.h"
#include "common/interp.h"

namespace otem::vehicle {

TimeSeries grade_from_elevation(const TimeSeries& speed,
                                const ElevationProfile& profile) {
  OTEM_REQUIRE(!speed.empty(), "grade for an empty speed trace");
  OTEM_REQUIRE(profile.size() >= 2, "elevation profile needs >= 2 points");
  std::vector<double> dist, elev;
  dist.reserve(profile.size());
  elev.reserve(profile.size());
  for (const auto& [d, e] : profile) {
    dist.push_back(d);
    elev.push_back(e);
  }
  OTEM_REQUIRE(dist.front() == 0.0, "elevation profile must start at 0 m");
  const Interp1D elevation(dist, elev);

  std::vector<double> grade(speed.size(), 0.0);
  double travelled = 0.0;
  for (size_t k = 0; k < speed.size(); ++k) {
    // Slope of the elevation at the current position; the Interp1D
    // derivative is dz/ddist = tan(grade) ~ grade for road slopes.
    grade[k] = std::atan(elevation.derivative(travelled));
    travelled += speed[k] * speed.dt();
  }
  return TimeSeries(speed.dt(), std::move(grade), speed.t0());
}

double elevation_gain_m(const Route& route) {
  OTEM_REQUIRE(!route.speed_mps.empty(), "elevation gain of empty route");
  if (route.grade_rad.empty()) return 0.0;
  OTEM_REQUIRE(route.grade_rad.size() == route.speed_mps.size(),
               "route speed/grade size mismatch");
  double gain = 0.0;
  for (size_t k = 0; k < route.speed_mps.size(); ++k) {
    gain += route.speed_mps[k] * route.speed_mps.dt() *
            std::sin(route.grade_rad[k]);
  }
  return gain;
}

TimeSeries route_power_trace(const Powertrain& powertrain,
                             const Route& route) {
  const TimeSeries& speed = route.speed_mps;
  OTEM_REQUIRE(!speed.empty(), "power trace of empty route");
  const bool flat = route.grade_rad.empty();
  OTEM_REQUIRE(flat || route.grade_rad.size() == speed.size(),
               "route speed/grade size mismatch");

  std::vector<double> out;
  out.reserve(speed.size());
  for (size_t k = 0; k < speed.size(); ++k) {
    const double v = speed[k];
    const double a = k == 0 ? 0.0 : (speed[k] - speed[k - 1]) / speed.dt();
    const double g = flat ? 0.0 : route.grade_rad[k];
    out.push_back(powertrain.power_request(v, a, g));
  }
  return TimeSeries(speed.dt(), std::move(out), speed.t0());
}

}  // namespace otem::vehicle
