#include "ultracap/ultracap_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace otem::ultracap {

BankParams BankParams::from_config(const Config& cfg) {
  BankParams p;
  p.capacitance_f = cfg.get_double("ultracap.capacitance_f", p.capacitance_f);
  p.rated_voltage = cfg.get_double("ultracap.rated_voltage", p.rated_voltage);
  p.min_soe_percent =
      cfg.get_double("ultracap.min_soe_percent", p.min_soe_percent);
  p.max_power_w = cfg.get_double("ultracap.max_power_w", p.max_power_w);
  OTEM_REQUIRE(p.capacitance_f > 0.0, "ultracap capacitance must be positive");
  OTEM_REQUIRE(p.rated_voltage > 0.0, "ultracap voltage must be positive");
  OTEM_REQUIRE(p.min_soe_percent >= 0.0 && p.min_soe_percent < 100.0,
               "ultracap minimum SoE must be in [0, 100)");
  return p;
}

BankModel::BankModel(BankParams params) : params_(params) {
  OTEM_REQUIRE(params_.capacitance_f > 0.0,
               "ultracap capacitance must be positive");
}

double BankModel::voltage(double soe_percent) const {
  const double s = std::clamp(soe_percent, 0.0, 100.0);
  return params_.rated_voltage * std::sqrt(s / 100.0);
}

double BankModel::soe_for_voltage(double v) const {
  OTEM_REQUIRE(v >= 0.0, "ultracap voltage must be non-negative");
  const double ratio = v / params_.rated_voltage;
  return std::clamp(100.0 * ratio * ratio, 0.0, 100.0);
}

double BankModel::stored_energy_j(double soe_percent) const {
  return energy_capacity_j() * std::clamp(soe_percent, 0.0, 100.0) / 100.0;
}

double BankModel::current_for_power(double soe_percent,
                                    double power_w) const {
  const double v = voltage(soe_percent);
  OTEM_REQUIRE(v > 1e-9 || power_w == 0.0,
               "ultracap fully depleted — cannot deliver power");
  return v > 1e-9 ? power_w / v : 0.0;
}

double BankModel::soe_rate(double power_w) const {
  // Eqs. (7)+(9): V I = P, so dSoE/dt = -100 P / E_cap.
  return -100.0 * power_w / energy_capacity_j();
}

double BankModel::step_soe(double soe_percent, double power_w,
                           double dt) const {
  return std::clamp(soe_percent + soe_rate(power_w) * dt, 0.0, 100.0);
}

void BankModel::step_soe_lanes(double* soe_percent, const double* power_w,
                               double dt, size_t n) const {
  const double ecap = energy_capacity_j();
  double* __restrict__ soe = soe_percent;
  const double* __restrict__ p = power_w;
  for (size_t l = 0; l < n; ++l) {
    soe[l] = std::clamp(soe[l] + (-100.0 * p[l] / ecap) * dt, 0.0, 100.0);
  }
}

double BankModel::max_discharge_power(double soe_percent, double dt) const {
  OTEM_REQUIRE(dt > 0.0, "dt must be positive");
  const double headroom_j =
      (std::clamp(soe_percent, 0.0, 100.0) - params_.min_soe_percent) /
      100.0 * energy_capacity_j();
  return std::clamp(headroom_j / dt, 0.0, params_.max_power_w);
}

double BankModel::max_charge_power(double soe_percent, double dt) const {
  OTEM_REQUIRE(dt > 0.0, "dt must be positive");
  const double headroom_j =
      (100.0 - std::clamp(soe_percent, 0.0, 100.0)) / 100.0 *
      energy_capacity_j();
  return std::clamp(headroom_j / dt, 0.0, params_.max_power_w);
}

}  // namespace otem::ultracap
