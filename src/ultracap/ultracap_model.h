// ultracap_model.h — ultracapacitor bank model (paper Eqs. 6-9).
//
// The bank is characterised by its rated capacitance C_cap [F] — the
// quantity the paper sweeps in Table I — and rated voltage V_r. Energy
// capacity E_cap = 1/2 C V_r^2 (Eq. 6); terminal voltage follows
// V = V_r sqrt(SoE/100) (Eq. 8). Following the paper, the internal
// resistance (~2.2 mOhm) and self-heating are neglected, so power maps
// to SoE directly: dSoE/dt = -100 P / E_cap (Eqs. 7+9 combined, since
// V I = P at the terminal).
//
// Stateless like battery::PackModel; SoE is carried by the caller.
// Sign convention: positive power/current = discharge.
#pragma once

#include <cstddef>

#include "common/config.h"

namespace otem::ultracap {

struct BankParams {
  /// Rated capacitance [F] — the paper's sweep variable (5,000-25,000 F).
  double capacitance_f = 25000.0;

  /// Rated (maximum) terminal voltage [V]. The bank is built from
  /// Maxwell BC-class 2.7 V cells [19]; the module-level equivalent
  /// here is chosen so a 25,000 F bank stores ~2 kWh — the energy scale
  /// at which the dual architecture's thermal venting is sustainable
  /// over a US06 run, as the paper's Figs. 1/7 SoE swings imply.
  double rated_voltage = 32.0;

  /// Minimum usable SoE [percent] — paper constraint C5.
  double min_soe_percent = 20.0;

  /// Power rating of the bank/converter path [W] — paper constraint C7.
  double max_power_w = 90000.0;

  /// E_cap [J], Eq. (6).
  double energy_capacity_j() const {
    return 0.5 * capacitance_f * rated_voltage * rated_voltage;
  }

  /// Load overrides with prefix "ultracap." from cfg.
  static BankParams from_config(const Config& cfg);
};

class BankModel {
 public:
  explicit BankModel(BankParams params);

  const BankParams& params() const { return params_; }

  double energy_capacity_j() const { return params_.energy_capacity_j(); }

  /// Terminal voltage [V] at SoE [percent], Eq. (8).
  double voltage(double soe_percent) const;

  /// SoE as a function of terminal voltage (inverse of Eq. 8) [percent].
  double soe_for_voltage(double v) const;

  /// Stored energy [J] at SoE.
  double stored_energy_j(double soe_percent) const;

  /// Terminal current [A] delivering power p at SoE (I = P / V).
  double current_for_power(double soe_percent, double power_w) const;

  /// dSoE/dt [percent/s] at terminal power p [W] (discharge positive).
  double soe_rate(double power_w) const;

  /// New SoE after drawing power p for dt seconds; clamps to [0, 100].
  double step_soe(double soe_percent, double power_w, double dt) const;

  /// Batched step_soe over n lanes, in place. Same expression and
  /// association order as the scalar path (the energy capacity is a
  /// loop invariant either way), so results are bit-identical.
  void step_soe_lanes(double* soe_percent, const double* power_w, double dt,
                      size_t n) const;

  /// Largest discharge power sustainable for dt without crossing the
  /// minimum-SoE floor (>= 0).
  double max_discharge_power(double soe_percent, double dt) const;

  /// Largest charge power acceptable for dt without exceeding 100 % SoE
  /// (>= 0; caller negates for the sign convention).
  double max_charge_power(double soe_percent, double dt) const;

 private:
  BankParams params_;
};

}  // namespace otem::ultracap
