#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/error.h"

namespace otem {

Json& Json::set(const std::string& key, Json value) {
  OTEM_REQUIRE(type_ == Type::kObject, "Json::set on a non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  OTEM_REQUIRE(type_ == Type::kArray, "Json::push on a non-array");
  items_.push_back(std::move(value));
  return *this;
}

Json Json::numbers(const std::vector<double>& values) {
  Json j = array();
  for (double v : values) j.push(Json(v));
  return j;
}

bool Json::as_bool() const {
  OTEM_REQUIRE(type_ == Type::kBool, "Json::as_bool on a non-bool");
  return bool_;
}

double Json::as_number() const {
  OTEM_REQUIRE(type_ == Type::kNumber, "Json::as_number on a non-number");
  return number_;
}

const std::string& Json::as_string() const {
  OTEM_REQUIRE(type_ == Type::kString, "Json::as_string on a non-string");
  return string_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(size_t index) const {
  OTEM_REQUIRE(type_ == Type::kArray, "Json::at on a non-array");
  OTEM_REQUIRE(index < items_.size(), "Json::at index out of range");
  return items_[index];
}

size_t Json::size() const {
  switch (type_) {
    case Type::kArray:
      return items_.size();
    case Type::kObject:
      return members_.size();
    default:
      return 0;
  }
}

namespace {
void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        // Remaining control characters (U+0000–U+001F) must be escaped
        // or the emitted document stops being one well-formed line.
        // The unsigned casts matter: passing a signed char straight to
        // %04x sign-extends, turning high bytes into 8-digit escapes.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent) * depth, ' ');
}
}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber: {
      if (!std::isfinite(number_)) {
        out += "null";
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.12g", number_);
      out += buf;
      return;
    }
    case Type::kString:
      append_escaped(out, string_);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        append_newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Strict recursive-descent JSON reader over a string_view. Errors
/// carry the byte offset so a malformed serve frame can be reported
/// precisely without echoing untrusted bytes back raw.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw SimError("JSON parse error at byte " + std::to_string(pos_) + ": " +
                   what);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (eof() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > Json::kMaxParseDepth) fail("nesting too deep");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json();
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json(false);
      case '"':
        return Json(parse_string());
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      skip_ws();
      arr.push(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected string key in object");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      obj.set(key, parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      code <<= 4;
      if (c >= '0' && c <= '9')
        code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        code |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid \\u escape digit");
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with a low surrogate escape.
            if (next() != '\\' || next() != 'u')
              fail("unpaired UTF-16 surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
              fail("invalid UTF-16 surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    const auto digits = [&] {
      size_t n = 0;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_, ++n;
      return n;
    };
    // Integer part: a lone 0, or a nonzero digit followed by more.
    if (eof()) fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else if (digits() == 0) {
      fail("invalid number");
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (digits() == 0) fail("invalid number: missing fraction digits");
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (digits() == 0) fail("invalid number: missing exponent digits");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return Json(v);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

void write_json_file(const std::string& path, const Json& value) {
  std::ofstream f(path);
  OTEM_REQUIRE(f.good(), "cannot open JSON output file: " + path);
  f << value.dump() << '\n';
}

}  // namespace otem
