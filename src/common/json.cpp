#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/error.h"

namespace otem {

Json& Json::set(const std::string& key, Json value) {
  OTEM_REQUIRE(type_ == Type::kObject, "Json::set on a non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  OTEM_REQUIRE(type_ == Type::kArray, "Json::push on a non-array");
  items_.push_back(std::move(value));
  return *this;
}

Json Json::numbers(const std::vector<double>& values) {
  Json j = array();
  for (double v : values) j.push(Json(v));
  return j;
}

size_t Json::size() const {
  switch (type_) {
    case Type::kArray:
      return items_.size();
    case Type::kObject:
      return members_.size();
    default:
      return 0;
  }
}

namespace {
void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent) * depth, ' ');
}
}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber: {
      if (!std::isfinite(number_)) {
        out += "null";
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.12g", number_);
      out += buf;
      return;
    }
    case Type::kString:
      append_escaped(out, string_);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        append_newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void write_json_file(const std::string& path, const Json& value) {
  std::ofstream f(path);
  OTEM_REQUIRE(f.good(), "cannot open JSON output file: " + path);
  f << value.dump() << '\n';
}

}  // namespace otem
