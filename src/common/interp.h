// interp.h — 1-D and 2-D table interpolation.
//
// Used for empirical maps: motor/inverter efficiency vs (speed, torque),
// DC/DC converter efficiency vs voltage, temperature-dependent parameter
// tables. All tables clamp outside their domain (physically sensible for
// efficiency/limit maps) rather than extrapolating.
#pragma once

#include <cstddef>
#include <vector>

namespace otem {

/// Piecewise-linear interpolation over strictly increasing knots.
class Interp1D {
 public:
  Interp1D() = default;

  /// Build from knot positions `x` (strictly increasing) and values `y`
  /// (same length, >= 2 entries).
  Interp1D(std::vector<double> x, std::vector<double> y);

  /// Interpolated value; clamps to the end values outside [x front, x back].
  double operator()(double x) const;

  /// Derivative dy/dx of the active segment (0 outside the domain).
  double derivative(double x) const;

  bool empty() const { return x_.empty(); }
  double x_min() const { return x_.front(); }
  double x_max() const { return x_.back(); }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

/// Bilinear interpolation on a rectangular grid; clamps outside the domain.
class Interp2D {
 public:
  Interp2D() = default;

  /// `z` is row-major with shape [x.size()][y.size()].
  Interp2D(std::vector<double> x, std::vector<double> y,
           std::vector<double> z);

  double operator()(double x, double y) const;

  bool empty() const { return x_.empty(); }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> z_;  // row-major [x][y]
  double at(size_t i, size_t j) const { return z_[i * y_.size() + j]; }
};

}  // namespace otem
