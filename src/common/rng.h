// rng.h — deterministic pseudo-random number generation.
//
// The library never uses global RNG state or wall-clock seeding: every
// stochastic component (synthetic drive-cycle jitter, prediction-noise
// injection in tests, multi-start optimisation) takes an explicit Rng
// constructed from a caller-supplied seed, so identical builds produce
// identical benchmark rows.
#pragma once

#include <cstdint>

namespace otem {

/// xoshiro256** by Blackman & Vigna — small, fast, high-quality PRNG,
/// seeded through SplitMix64 so that any 64-bit seed (including 0) gives a
/// well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace otem
