// strings.h — small string utilities (trim/split/parse/format helpers).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace otem::strings {

/// Remove leading and trailing whitespace.
std::string trim(std::string_view s);

/// Split `s` on `delim`, trimming each piece. Empty pieces are kept so
/// "a,,b" yields {"a", "", "b"}.
std::vector<std::string> split(std::string_view s, char delim);

/// True when `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse a double; throws otem::SimError with context on failure.
double parse_double(std::string_view s);

/// Parse an integer; throws otem::SimError with context on failure.
long parse_long(std::string_view s);

/// Lower-case an ASCII string.
std::string to_lower(std::string_view s);

/// Concatenate `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// printf-style helper returning std::string ("%.3f" etc.).
std::string format_double(double v, int precision);

/// 16 lower-case hex digits of `v` (fixed width, no prefix).
std::string hex_u64(std::uint64_t v);

/// Parse exactly 16 hex digits back to the value hex_u64 encoded;
/// throws otem::SimError on any other input.
std::uint64_t parse_hex_u64(std::string_view s);

/// Bit-exact double round-trip for checkpoint files: the IEEE-754 bit
/// pattern as 16 hex digits. JSON numbers print with %.12g, which drops
/// low-order bits — resumable state must never pass through that.
std::string hex_double(double v);
double parse_hex_double(std::string_view s);

}  // namespace otem::strings
