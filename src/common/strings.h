// strings.h — small string utilities (trim/split/parse/format helpers).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace otem::strings {

/// Remove leading and trailing whitespace.
std::string trim(std::string_view s);

/// Split `s` on `delim`, trimming each piece. Empty pieces are kept so
/// "a,,b" yields {"a", "", "b"}.
std::vector<std::string> split(std::string_view s, char delim);

/// True when `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse a double; throws otem::SimError with context on failure.
double parse_double(std::string_view s);

/// Parse an integer; throws otem::SimError with context on failure.
long parse_long(std::string_view s);

/// Lower-case an ASCII string.
std::string to_lower(std::string_view s);

/// Concatenate `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// printf-style helper returning std::string ("%.3f" etc.).
std::string format_double(double v, int precision);

}  // namespace otem::strings
