// csv.h — CSV emission for benchmark/experiment outputs.
//
// Benchmarks both print human-readable tables to stdout and can dump the
// underlying series as CSV so figures can be re-plotted externally.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace otem {

/// In-memory rectangular table with a header row; writes RFC-4180-ish CSV
/// (fields containing comma/quote/newline are quoted).
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  size_t columns() const { return header_.size(); }
  size_t rows() const { return rows_.size(); }

  /// Append a row of already-formatted cells; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Append a numeric row formatted with the given precision.
  void add_numeric_row(const std::vector<double>& values, int precision = 6);

  void write(std::ostream& os) const;

  /// Write to a file path; throws otem::SimError if the file cannot be
  /// opened.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parsed CSV contents: first row as header, remaining rows as cells.
struct CsvData {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of the named column (case-insensitive); throws when absent.
  size_t column(const std::string& name) const;

  /// Column values parsed as doubles; throws on non-numeric cells.
  std::vector<double> numeric_column(size_t index) const;
};

/// Parse RFC-4180-ish CSV (quoted fields, embedded commas/quotes;
/// newlines inside quotes are NOT supported). Blank lines are skipped.
CsvData read_csv(std::istream& is);

/// Parse a CSV file; throws otem::SimError if it cannot be opened.
CsvData read_csv_file(const std::string& path);

}  // namespace otem
