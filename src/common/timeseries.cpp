#include "common/timeseries.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace otem {

TimeSeries::TimeSeries(double dt, std::vector<double> values, double t0)
    : dt_(dt), t0_(t0), values_(std::move(values)) {
  OTEM_REQUIRE(dt > 0.0, "TimeSeries sample period must be positive");
}

double TimeSeries::duration() const {
  return values_.empty() ? 0.0
                         : static_cast<double>(values_.size() - 1) * dt_;
}

double TimeSeries::at_time(double t) const {
  OTEM_REQUIRE(!values_.empty(), "at_time on empty TimeSeries");
  const double rel = (t - t0_) / dt_;
  if (rel <= 0.0) return values_.front();
  const double last = static_cast<double>(values_.size() - 1);
  if (rel >= last) return values_.back();
  const size_t k = static_cast<size_t>(rel);
  const double frac = rel - static_cast<double>(k);
  return values_[k] + frac * (values_[k + 1] - values_[k]);
}

double TimeSeries::min() const {
  OTEM_REQUIRE(!values_.empty(), "min on empty TimeSeries");
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::max() const {
  OTEM_REQUIRE(!values_.empty(), "max on empty TimeSeries");
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::mean() const {
  OTEM_REQUIRE(!values_.empty(), "mean on empty TimeSeries");
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double TimeSeries::stddev() const {
  OTEM_REQUIRE(!values_.empty(), "stddev on empty TimeSeries");
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size()));
}

double TimeSeries::rms() const {
  OTEM_REQUIRE(!values_.empty(), "rms on empty TimeSeries");
  double s = 0.0;
  for (double v : values_) s += v * v;
  return std::sqrt(s / static_cast<double>(values_.size()));
}

double TimeSeries::integral() const {
  double s = 0.0;
  for (double v : values_) s += v * dt_;
  return s;
}

double TimeSeries::mean_positive() const {
  double s = 0.0;
  size_t n = 0;
  for (double v : values_) {
    if (v > 0.0) {
      s += v;
      ++n;
    }
  }
  return n == 0 ? 0.0 : s / static_cast<double>(n);
}

TimeSeries TimeSeries::repeated(size_t n) const {
  std::vector<double> out;
  out.reserve(values_.size() * n);
  for (size_t i = 0; i < n; ++i)
    out.insert(out.end(), values_.begin(), values_.end());
  return TimeSeries(dt_, std::move(out), t0_);
}

TimeSeries TimeSeries::resampled(double new_dt) const {
  OTEM_REQUIRE(new_dt > 0.0, "resample period must be positive");
  OTEM_REQUIRE(!values_.empty(), "resample on empty TimeSeries");
  const double dur = duration();
  const size_t n = static_cast<size_t>(std::floor(dur / new_dt)) + 1;
  std::vector<double> out;
  out.reserve(n);
  for (size_t k = 0; k < n; ++k)
    out.push_back(at_time(t0_ + static_cast<double>(k) * new_dt));
  return TimeSeries(new_dt, std::move(out), t0_);
}

}  // namespace otem
