// config.h — flat key/value configuration store.
//
// Examples and benchmarks accept "key=value" overrides (command line or a
// config file with '#' comments) so experiments can be re-parameterised
// without recompiling. Keys are dotted paths, e.g. "battery.capacity_ah".
//
// The store tracks CONSUMPTION: every accessor (has/get_*) marks its key
// as read, and unused_keys() reports overrides nothing ever looked at —
// how the CLI and benches turn a typo like "otem.w2x=5e9" into a loud
// warning instead of a silently-ignored fallback. The consumed set is
// shared between copies of a Config (copies hand the same experiment's
// keys to different subsystems), so a key counts as used no matter which
// copy served the read.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace otem {

class Config {
 public:
  Config();

  /// Parse one "key=value" pair; throws otem::SimError on malformed
  /// input. Re-setting a key already present with a DIFFERENT value
  /// warns through otem::log (last one wins either way) — how a
  /// duplicated override on one command line or serve request fails
  /// loudly instead of silently shadowing.
  void set_pair(std::string_view pair);

  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, double value);

  bool has(const std::string& key) const;

  /// Fetch with fallback — the workhorse accessor for parameter structs.
  double get_double(const std::string& key, double fallback) const;
  long get_long(const std::string& key, long fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Parse a whole file of "key=value" lines ('#' starts a comment).
  static Config from_file(const std::string& path);

  /// Parse argv-style overrides, ignoring entries without '='.
  static Config from_args(int argc, const char* const* argv);

  /// All keys, sorted (for diagnostics / dumping). Does not mark keys
  /// as consumed.
  std::vector<std::string> keys() const;

  /// Keys present in THIS config that no accessor (here or on any copy)
  /// has read yet, sorted. Call after the experiment is wired up to
  /// catch misspelled overrides.
  std::vector<std::string> unused_keys() const;

 private:
  void touch(const std::string& key) const;

  std::map<std::string, std::string> values_;
  // Shared across copies; see the header comment.
  std::shared_ptr<std::set<std::string>> consumed_;
};

}  // namespace otem
