// config.h — flat key/value configuration store.
//
// Examples and benchmarks accept "key=value" overrides (command line or a
// config file with '#' comments) so experiments can be re-parameterised
// without recompiling. Keys are dotted paths, e.g. "battery.capacity_ah".
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace otem {

class Config {
 public:
  Config() = default;

  /// Parse one "key=value" pair; throws otem::SimError on malformed input.
  void set_pair(std::string_view pair);

  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, double value);

  bool has(const std::string& key) const;

  /// Fetch with fallback — the workhorse accessor for parameter structs.
  double get_double(const std::string& key, double fallback) const;
  long get_long(const std::string& key, long fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Parse a whole file of "key=value" lines ('#' starts a comment).
  static Config from_file(const std::string& path);

  /// Parse argv-style overrides, ignoring entries without '='.
  static Config from_args(int argc, const char* const* argv);

  /// All keys, sorted (for diagnostics / dumping).
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace otem
