// constants.h — physical constants shared by the models.
#pragma once

namespace otem::constants {

/// Ideal gas constant R [J/(mol K)] — used in the paper's capacity-fade
/// model (Eq. 5) and in the Arrhenius temperature sensitivity of the
/// battery internal resistance.
inline constexpr double kGasConstant = 8.314462618;

/// Standard gravitational acceleration [m/s^2] — road-load model.
inline constexpr double kGravity = 9.80665;

/// Density of air at ~20 C, sea level [kg/m^3] — aerodynamic drag.
inline constexpr double kAirDensity = 1.2041;

/// Absolute zero offset: 0 C in kelvin.
inline constexpr double kZeroCelsiusK = 273.15;

/// Reference "room" temperature 25 C in kelvin — parameter fits are
/// expressed relative to this temperature.
inline constexpr double kRoomTempK = 298.15;

}  // namespace otem::constants
