// error.h — error handling primitives.
//
// Following the C++ Core Guidelines (E.2/E.3) we use exceptions for error
// signalling and assertions for programmer-contract violations. SimError is
// the single exception type thrown by the library; OTEM_REQUIRE expresses
// preconditions that callers can violate with bad input, OTEM_ENSURE
// expresses internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace otem {

/// Exception thrown by every otem library on invalid input or an
/// unsatisfiable model/solver state.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by the simulator step loop when a cooperative stop
/// (cancellation or deadline — see exec::StopToken) fires mid-mission.
/// Derives from SimError so existing catch sites keep working, but is
/// distinct so callers (the serve daemon's drain path, deadline
/// enforcement) can tell "the work was abandoned on request" from "the
/// model rejected the input". Sinks are finalized before the throw.
class SimCancelled : public SimError {
 public:
  explicit SimCancelled(const std::string& what) : SimError(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* kind, const char* cond,
                               const char* file, int line,
                               const std::string& msg) {
  throw SimError(std::string(kind) + " failed: " + cond + " at " + file + ":" +
                 std::to_string(line) + (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace otem

/// Precondition check: throws otem::SimError when violated.
#define OTEM_REQUIRE(cond, msg)                                             \
  do {                                                                      \
    if (!(cond))                                                            \
      ::otem::detail::raise("precondition", #cond, __FILE__, __LINE__, msg); \
  } while (0)

/// Internal-invariant check: throws otem::SimError when violated.
#define OTEM_ENSURE(cond, msg)                                            \
  do {                                                                    \
    if (!(cond))                                                          \
      ::otem::detail::raise("invariant", #cond, __FILE__, __LINE__, msg); \
  } while (0)
