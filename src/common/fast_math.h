// fast_math.h — branch-free transcendentals for SIMD lane kernels.
//
// The plant's electro-chemical models are exp-bound: open-circuit
// voltage, the two Arrhenius factors (resistance, capacity fade) and
// the RC decay all call exp every step. libm's exp is scalar-only
// (glibc's vectorized libmvec variant is NOT bit-identical to it, so
// auto-vectorizing a loop around std::exp would change results), which
// caps a structure-of-arrays lane loop at scalar speed. This header
// provides one deterministic exp used by BOTH the scalar oracle path
// and the batched lane kernels: pure arithmetic, no tables, no
// branches on the value path, so the compiler can vectorize a lane
// loop around it while every lane still computes exactly the value the
// scalar call computes.
//
// Accuracy: ~2 ulp over the clamped range (degree-13 Taylor on
// |r| <= ln2/2 after 2^k range reduction). NOT a drop-in for std::exp
// at the extremes: arguments are clamped to [-708, 708], so it returns
// exp(+-708) instead of inf/0 beyond that — every caller in this tree
// feeds it arguments in [-25, 5].
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace otem::fastmath {

/// Deterministic, auto-vectorizable exp(x). Identical on the scalar and
/// SIMD paths because every operation (mul/add/div and the int<->double
/// bit casts) is exactly specified by IEEE 754.
inline double exp(double x) {
  // Clamp to the range where the 2^k scale stays a normal double.
  x = x < -708.0 ? -708.0 : x;
  x = x > 708.0 ? 708.0 : x;

  // Range reduction: x = k*ln2 + r, |r| <= ln2/2. The magic-number add
  // rounds x/ln2 to the nearest integer and parks it in the low
  // mantissa bits (1.5 * 2^52 forces the rounding); subtracting the
  // magic recovers it as a double without a branch or a lrint call.
  constexpr double kInvLn2 = 1.4426950408889634074;
  constexpr double kMagic = 6755399441055744.0;  // 1.5 * 2^52
  // ln2 split hi/lo with 32 significant bits in hi, so k*hi is exact
  // for |k| < 2^20 (fdlibm's split).
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  const double kd = x * kInvLn2 + kMagic;
  const auto k = static_cast<std::int32_t>(std::bit_cast<std::int64_t>(kd));
  const double kf = kd - kMagic;
  const double r = (x - kf * kLn2Hi) - kf * kLn2Lo;

  // exp(r) = 1 + r + r^2 * P(r), degree-13 Taylor: truncation ~4e-18
  // relative on |r| <= 0.347, below the final rounding.
  double q = 1.6059043836821613e-10;       // 1/13!
  q = q * r + 2.0876756987868100e-09;      // 1/12!
  q = q * r + 2.5052108385441720e-08;      // 1/11!
  q = q * r + 2.7557319223985888e-07;      // 1/10!
  q = q * r + 2.7557319223985893e-06;      // 1/9!
  q = q * r + 2.4801587301587302e-05;      // 1/8!
  q = q * r + 1.9841269841269841e-04;      // 1/7!
  q = q * r + 1.3888888888888889e-03;      // 1/6!
  q = q * r + 8.3333333333333332e-03;      // 1/5!
  q = q * r + 4.1666666666666664e-02;      // 1/4!
  q = q * r + 1.6666666666666666e-01;      // 1/3!
  q = q * r + 0.5;                         // 1/2!
  const double p = 1.0 + r + (r * r) * q;

  // Scale by 2^k through the exponent field. k is in [-1022, 1022]
  // after the clamp, so the biased exponent stays normal.
  const double scale =
      std::bit_cast<double>(static_cast<std::int64_t>(1023 + k) << 52);
  return p * scale;
}

}  // namespace otem::fastmath
