// units.h — unit conventions and conversion helpers used across the library.
//
// Convention: all internal computation is in SI base/derived units —
//   time        seconds       [s]
//   temperature kelvin        [K]
//   current     ampere        [A]
//   voltage     volt          [V]
//   power       watt          [W]
//   energy      joule         [J]
//   capacitance farad         [F]
//   mass        kilogram      [kg]
//   speed       metres/second [m/s]
//
// State-of-Charge (SoC) and State-of-Energy (SoE) follow the paper's
// convention and are expressed in PERCENT (0..100), not fractions.
// Battery capacity C_bat is in ampere-hours [Ah] as in the paper's Eq. (1);
// the coulomb-counting code converts explicitly.
#pragma once

namespace otem::units {

/// Convert degrees Celsius to kelvin.
constexpr double celsius_to_kelvin(double c) noexcept { return c + 273.15; }

/// Convert kelvin to degrees Celsius.
constexpr double kelvin_to_celsius(double k) noexcept { return k - 273.15; }

/// Convert ampere-hours to coulombs.
constexpr double ah_to_coulomb(double ah) noexcept { return ah * 3600.0; }

/// Convert coulombs to ampere-hours.
constexpr double coulomb_to_ah(double c) noexcept { return c / 3600.0; }

/// Convert watt-hours to joules.
constexpr double wh_to_joule(double wh) noexcept { return wh * 3600.0; }

/// Convert joules to watt-hours.
constexpr double joule_to_wh(double j) noexcept { return j / 3600.0; }

/// Convert kilowatt-hours to joules.
constexpr double kwh_to_joule(double kwh) noexcept { return kwh * 3.6e6; }

/// Convert joules to kilowatt-hours.
constexpr double joule_to_kwh(double j) noexcept { return j / 3.6e6; }

/// Convert miles per hour to metres per second.
constexpr double mph_to_mps(double mph) noexcept { return mph * 0.44704; }

/// Convert metres per second to miles per hour.
constexpr double mps_to_mph(double mps) noexcept { return mps / 0.44704; }

/// Convert kilometres per hour to metres per second.
constexpr double kmh_to_mps(double kmh) noexcept { return kmh / 3.6; }

/// Convert metres per second to kilometres per hour.
constexpr double mps_to_kmh(double mps) noexcept { return mps * 3.6; }

/// Convert metres to miles.
constexpr double m_to_miles(double m) noexcept { return m / 1609.344; }

/// Convert metres to kilometres.
constexpr double m_to_km(double m) noexcept { return m / 1000.0; }

}  // namespace otem::units
