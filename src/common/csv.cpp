#include "common/csv.h"

#include <fstream>
#include <ostream>

#include "common/error.h"
#include "common/strings.h"

namespace otem {

namespace {
std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_row(std::ostream& os, const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) os << ',';
    os << escape(cells[i]);
  }
  os << '\n';
}
}  // namespace

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  OTEM_REQUIRE(!header_.empty(), "CSV table needs at least one column");
}

void CsvTable::add_row(std::vector<std::string> cells) {
  OTEM_REQUIRE(cells.size() == header_.size(),
               "CSV row width does not match header");
  rows_.push_back(std::move(cells));
}

void CsvTable::add_numeric_row(const std::vector<double>& values,
                               int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(strings::format_double(v, precision));
  add_row(std::move(cells));
}

void CsvTable::write(std::ostream& os) const {
  write_row(os, header_);
  for (const auto& row : rows_) write_row(os, row);
}

void CsvTable::write_file(const std::string& path) const {
  std::ofstream f(path);
  OTEM_REQUIRE(f.good(), "cannot open CSV output file: " + path);
  write(f);
}

namespace {
std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}
}  // namespace

size_t CsvData::column(const std::string& name) const {
  const std::string want = strings::to_lower(strings::trim(name));
  for (size_t i = 0; i < header.size(); ++i) {
    if (strings::to_lower(strings::trim(header[i])) == want) return i;
  }
  throw SimError("CSV has no column named '" + name + "'");
}

std::vector<double> CsvData::numeric_column(size_t index) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    OTEM_REQUIRE(index < row.size(), "CSV row too short for column");
    out.push_back(strings::parse_double(row[index]));
  }
  return out;
}

CsvData read_csv(std::istream& is) {
  CsvData data;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (strings::trim(line).empty()) continue;
    auto cells = parse_csv_line(line);
    if (first) {
      data.header = std::move(cells);
      first = false;
    } else {
      data.rows.push_back(std::move(cells));
    }
  }
  OTEM_REQUIRE(!first, "CSV input is empty");
  return data;
}

CsvData read_csv_file(const std::string& path) {
  std::ifstream f(path);
  OTEM_REQUIRE(f.good(), "cannot open CSV input file: " + path);
  return read_csv(f);
}

}  // namespace otem
