#include "common/interp.h"

#include <algorithm>

#include "common/error.h"

namespace otem {

namespace {
// Index of the segment [x[i], x[i+1]] containing q, clamped to valid range.
size_t segment_index(const std::vector<double>& x, double q) {
  if (q <= x.front()) return 0;
  if (q >= x[x.size() - 2]) return x.size() - 2;
  const auto it = std::upper_bound(x.begin(), x.end(), q);
  return static_cast<size_t>(it - x.begin()) - 1;
}

void check_increasing(const std::vector<double>& x, const char* name) {
  for (size_t i = 1; i < x.size(); ++i) {
    OTEM_REQUIRE(x[i] > x[i - 1],
                 std::string(name) + " knots must be strictly increasing");
  }
}
}  // namespace

Interp1D::Interp1D(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  OTEM_REQUIRE(x_.size() >= 2, "Interp1D needs at least two knots");
  OTEM_REQUIRE(x_.size() == y_.size(), "Interp1D x/y size mismatch");
  check_increasing(x_, "Interp1D");
}

double Interp1D::operator()(double x) const {
  OTEM_REQUIRE(!x_.empty(), "Interp1D used before initialisation");
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const size_t i = segment_index(x_, x);
  const double t = (x - x_[i]) / (x_[i + 1] - x_[i]);
  return y_[i] + t * (y_[i + 1] - y_[i]);
}

double Interp1D::derivative(double x) const {
  OTEM_REQUIRE(!x_.empty(), "Interp1D used before initialisation");
  if (x < x_.front() || x > x_.back()) return 0.0;
  const size_t i = segment_index(x_, x);
  return (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]);
}

Interp2D::Interp2D(std::vector<double> x, std::vector<double> y,
                   std::vector<double> z)
    : x_(std::move(x)), y_(std::move(y)), z_(std::move(z)) {
  OTEM_REQUIRE(x_.size() >= 2 && y_.size() >= 2,
               "Interp2D needs at least a 2x2 grid");
  OTEM_REQUIRE(z_.size() == x_.size() * y_.size(),
               "Interp2D grid size mismatch");
  check_increasing(x_, "Interp2D x");
  check_increasing(y_, "Interp2D y");
}

double Interp2D::operator()(double x, double y) const {
  OTEM_REQUIRE(!x_.empty(), "Interp2D used before initialisation");
  const double cx = std::clamp(x, x_.front(), x_.back());
  const double cy = std::clamp(y, y_.front(), y_.back());
  const size_t i = segment_index(x_, cx);
  const size_t j = segment_index(y_, cy);
  const double tx = (cx - x_[i]) / (x_[i + 1] - x_[i]);
  const double ty = (cy - y_[j]) / (y_[j + 1] - y_[j]);
  const double z00 = at(i, j);
  const double z10 = at(i + 1, j);
  const double z01 = at(i, j + 1);
  const double z11 = at(i + 1, j + 1);
  return (1 - tx) * (1 - ty) * z00 + tx * (1 - ty) * z10 +
         (1 - tx) * ty * z01 + tx * ty * z11;
}

}  // namespace otem
